// Sensor-network battery-lifetime study.
//
// Low-power sensor nodes (the paper's 133 MHz StrongARM + 100 kbps radio
// class) re-key their group periodically. This example simulates a fleet
// with a fixed per-node battery budget and asks: how many authenticated
// group re-keyings can each protocol afford before the battery is spent on
// security alone? It reproduces the paper's conclusion from the deployment
// angle: the proposed scheme and its dynamic protocols stretch battery
// life by an order of magnitude over signature-per-message baselines.
#include <cstdio>

#include "energy/profiles.h"
#include "gka/complexity.h"

using namespace idgka;

namespace {

// A AA-class battery dedicates ~100 J to security operations (a few percent
// of its ~10 kJ capacity).
constexpr double kSecurityBudgetJ = 100.0;

double rekey_cost_j(gka::Scheme scheme, std::size_t n, const energy::RadioProfile& radio) {
  return energy::ledger_energy_mj(gka::impl_initial_ledger(scheme, n), energy::strongarm(),
                                  radio) /
         1000.0;
}

}  // namespace

int main() {
  const std::size_t fleet_sizes[] = {10, 50, 100};
  const gka::Scheme schemes[] = {gka::Scheme::kProposed, gka::Scheme::kSsn,
                                 gka::Scheme::kBdEcdsa, gka::Scheme::kBdDsa,
                                 gka::Scheme::kBdSok};

  std::printf("=== Sensor fleet: group re-keyings per %.0f J security budget ===\n\n",
              kSecurityBudgetJ);
  for (const auto* radio : {&energy::radio_100kbps(), &energy::wlan_spectrum24()}) {
    std::printf("radio: %s\n", radio->name.c_str());
    std::printf("  %-12s", "fleet size");
    for (const auto scheme : schemes) std::printf(" %16s", gka::scheme_name(scheme));
    std::printf("\n");
    for (const std::size_t n : fleet_sizes) {
      std::printf("  n=%-10zu", n);
      for (const auto scheme : schemes) {
        const double cost = rekey_cost_j(scheme, n, *radio);
        std::printf(" %16.0f", kSecurityBudgetJ / cost);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Churn-heavy deployment: most events are joins/leaves, not full re-keys.
  std::printf("=== Churn workload: 1 formation + 200 membership events (n~100) ===\n\n");
  const auto& wlan = energy::wlan_spectrum24();
  const auto leave = gka::impl_dynamic_ledgers(gka::DynamicEvent::kLeave, 100);
  const auto join = gka::impl_dynamic_ledgers(gka::DynamicEvent::kJoin, 100);

  const double proposed_j =
      rekey_cost_j(gka::Scheme::kProposed, 100, wlan) +
      100 * energy::ledger_energy_mj(join.at(gka::Role::kOther), energy::strongarm(), wlan) /
          1000.0 +
      100 *
          energy::ledger_energy_mj(leave.at(gka::Role::kEvenSurvivor), energy::strongarm(),
                                   wlan) /
          1000.0;
  const double reexec_j = rekey_cost_j(gka::Scheme::kBdEcdsa, 100, wlan) * 201;

  std::printf("proposed dynamic protocols (passive member): %7.2f J\n", proposed_j);
  std::printf("BD+ECDSA re-execution per event:             %7.2f J\n", reexec_j);
  std::printf("battery-life ratio: %.0fx\n", reexec_j / proposed_j);
  return 0;
}
