// Hierarchical clustering demo: a 100-node ad hoc deployment with bounded
// clusters, a batched churn burst, and the deployment-wide energy roll-up.
//
// Build & run:  ./examples/cluster_demo
#include <cstdio>

#include "cluster/hierarchical_session.h"
#include "energy/profiles.h"

int main() {
  using namespace idgka;

  gka::Authority authority(gka::SecurityProfile::kTest, /*seed=*/2026);

  // 100 nodes, clusters bounded to [6, 20] members, bursts of up to 32
  // membership events coalesced into one rekey round.
  cluster::ClusterConfig cfg;
  cfg.min_cluster = 6;
  cfg.max_cluster = 20;
  cfg.batch_capacity = 32;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 100; ++i) ids.push_back(100 + i);

  cluster::HierarchicalSession session(authority, cfg, ids, /*seed=*/7);
  if (!session.form().success) {
    std::fprintf(stderr, "hierarchical key agreement failed\n");
    return 1;
  }
  std::printf("formed %zu members in %zu clusters:", session.size(), session.cluster_count());
  for (const std::size_t s : session.cluster_sizes()) std::printf(" %zu", s);
  std::printf("\ngroup key: %s...  (all members agree: %s)\n",
              session.group_key().to_hex().substr(0, 24).c_str(),
              session.all_members_agree() ? "yes" : "no");

  // A churn burst: ten arrivals and eight departures, applied as one batch —
  // one head-tier rekey + one downward key distribution for all 18 events.
  for (std::uint32_t i = 0; i < 10; ++i) (void)session.enqueue_join(500 + i);
  for (std::uint32_t i = 0; i < 8; ++i) (void)session.enqueue_leave(110 + 3 * i);
  const cluster::EventSummary burst = session.flush();
  std::printf("\nburst: %zu events in one rekey round (epoch %llu), %zu leaf runs, "
              "%zu splits, %zu merges\n",
              burst.events_applied, static_cast<unsigned long long>(burst.epoch),
              burst.clusters_touched, burst.splits, burst.merges);
  std::printf("now %zu members in %zu clusters, all agree: %s\n", session.size(),
              session.cluster_count(), session.all_members_agree() ? "yes" : "no");

  // Whole-deployment cost under the paper's StrongARM + Spectrum24 model.
  const cluster::AggregateReport report = session.report();
  std::printf("\nlifetime roll-up: %.1f mJ total, head tier %llu mod-exps, "
              "%llu broadcast messages, %.1f kbit transmitted\n",
              report.energy_mj(energy::strongarm(), energy::wlan_spectrum24()),
              static_cast<unsigned long long>(report.head_tier.count(energy::Op::kModExp)),
              static_cast<unsigned long long>(report.traffic.tx_messages),
              static_cast<double>(report.tx_bits()) / 1000.0);
  return 0;
}
