// gka_sim — scenario-driven simulator CLI.
//
// Drives a group through a membership-event script and prints the paper-
// model energy report, so deployment questions ("what does a day of churn
// cost my fleet?") can be answered without writing C++.
//
// Usage:
//   gka_sim [--scheme proposed|bd-sok|bd-ecdsa|bd-dsa|ssn]
//           [--profile paper|test] [--loss RATE] [--seed N]
//           [--radio 100kbps|wlan] EVENT...
// Events:
//   form:ID1,ID2,...      initial group (required first)
//   join:ID               one member joins
//   leave:ID              one member leaves
//   part:ID1,ID2,...      several members leave at once
//
// Example:
//   gka_sim --scheme proposed form:1,2,3,4,5 join:6 leave:2 part:3,4
#include <cstdio>
#include <cstring>
#include <string>

#include "energy/profiles.h"
#include "gka/session.h"

using namespace idgka;

namespace {

std::vector<std::uint32_t> parse_ids(const std::string& csv) {
  std::vector<std::uint32_t> ids;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok = csv.substr(pos, comma == std::string::npos ? csv.npos : comma - pos);
    ids.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return ids;
}

int usage() {
  std::fprintf(stderr,
               "usage: gka_sim [--scheme proposed|bd-sok|bd-ecdsa|bd-dsa|ssn]\n"
               "               [--profile paper|test] [--loss RATE] [--seed N]\n"
               "               [--radio 100kbps|wlan] form:1,2,3 [join:4] [leave:2] "
               "[part:1,3]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  gka::Scheme scheme = gka::Scheme::kProposed;
  gka::SecurityProfile profile = gka::SecurityProfile::kTest;
  double loss = 0.0;
  std::uint64_t seed = 1;
  const energy::RadioProfile* radio = &energy::wlan_spectrum24();
  std::vector<std::string> events;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scheme") {
      const char* v = next();
      if (v == nullptr) return usage();
      const std::string s = v;
      if (s == "proposed") scheme = gka::Scheme::kProposed;
      else if (s == "bd-sok") scheme = gka::Scheme::kBdSok;
      else if (s == "bd-ecdsa") scheme = gka::Scheme::kBdEcdsa;
      else if (s == "bd-dsa") scheme = gka::Scheme::kBdDsa;
      else if (s == "ssn") scheme = gka::Scheme::kSsn;
      else return usage();
    } else if (arg == "--profile") {
      const char* v = next();
      if (v == nullptr) return usage();
      profile = std::strcmp(v, "paper") == 0 ? gka::SecurityProfile::kPaper
                                             : gka::SecurityProfile::kTest;
    } else if (arg == "--loss") {
      const char* v = next();
      if (v == nullptr) return usage();
      loss = std::stod(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage();
      seed = std::stoull(v);
    } else if (arg == "--radio") {
      const char* v = next();
      if (v == nullptr) return usage();
      radio = std::strcmp(v, "100kbps") == 0 ? &energy::radio_100kbps()
                                             : &energy::wlan_spectrum24();
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      events.push_back(arg);
    }
  }
  if (events.empty() || events.front().rfind("form:", 0) != 0) return usage();

  std::printf("scheme=%s profile=%s loss=%.2f radio=%s\n", gka::scheme_name(scheme),
              profile == gka::SecurityProfile::kPaper ? "paper(1024)" : "test(256)", loss,
              radio->name.c_str());
  gka::Authority authority(profile, seed);
  std::unique_ptr<gka::GroupSession> session;

  for (const std::string& event : events) {
    const std::size_t colon = event.find(':');
    const std::string kind = event.substr(0, colon);
    const std::string args = colon == std::string::npos ? "" : event.substr(colon + 1);
    gka::RunResult result;
    if (kind == "form") {
      session = std::make_unique<gka::GroupSession>(authority, scheme, parse_ids(args),
                                                    seed, loss);
      result = session->form();
    } else if (session == nullptr) {
      std::fprintf(stderr, "error: first event must be form:...\n");
      return 2;
    } else if (kind == "join") {
      result = session->join(parse_ids(args).at(0));
    } else if (kind == "leave") {
      result = session->leave(parse_ids(args).at(0));
    } else if (kind == "part") {
      result = session->partition(parse_ids(args));
    } else {
      std::fprintf(stderr, "error: unknown event '%s'\n", kind.c_str());
      return 2;
    }
    if (!result.success) {
      std::fprintf(stderr, "error: event '%s' failed\n", event.c_str());
      return 1;
    }
    std::printf("%-20s members=%2zu rounds=%d retx=%d key=%s...\n", event.c_str(),
                session->size(), result.rounds, result.retransmissions,
                session->key().to_hex().substr(0, 16).c_str());
  }

  std::printf("\nper-node energy (StrongARM + %s):\n", radio->name.c_str());
  double total = 0.0;
  for (const std::uint32_t id : session->member_ids()) {
    const auto& ledger = session->ledger(id);
    const double mj = energy::ledger_energy_mj(ledger, energy::strongarm(), *radio);
    total += mj;
    std::printf("  node %5u: %10.2f mJ  (%llu modexp, %llu tx / %llu rx msgs)\n", id, mj,
                static_cast<unsigned long long>(ledger.count(energy::Op::kModExp)),
                static_cast<unsigned long long>(ledger.tx_messages),
                static_cast<unsigned long long>(ledger.rx_messages));
  }
  std::printf("  group total: %.2f mJ\n", total);
  return 0;
}
