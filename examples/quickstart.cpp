// Quickstart: form a secure group of five wireless nodes with the paper's
// ID-based authenticated GKA, print the agreed key and the per-node energy
// bill on a StrongARM-class device.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "energy/profiles.h"
#include "gka/session.h"

int main() {
  using namespace idgka;

  // 1. The trust authority (PKG): generates the GQ modulus, the BD group
  //    and extracts each member's ID-based secret key. kTest keeps this
  //    instant; use kPaper for the full 1024-bit parameter sizes.
  gka::Authority authority(gka::SecurityProfile::kTest, /*seed=*/2024);

  // 2. Five nodes, identified by 32-bit IDs, form a group.
  gka::GroupSession session(authority, gka::Scheme::kProposed, {11, 22, 33, 44, 55},
                            /*seed=*/42);
  const gka::RunResult result = session.form();
  if (!result.success) {
    std::fprintf(stderr, "key agreement failed\n");
    return 1;
  }

  std::printf("group formed in %d rounds\n", result.rounds);
  std::printf("members:");
  for (const auto id : session.member_ids()) std::printf(" %u", id);
  std::printf("\nshared key: %s...\n", session.key().to_hex().substr(0, 32).c_str());

  // 3. Each node's energy bill under the paper's cost model.
  std::printf("\nper-node energy (StrongARM + Spectrum24 WLAN):\n");
  for (const auto id : session.member_ids()) {
    const auto& ledger = session.ledger(id);
    std::printf("  node %2u: %7.2f mJ  (%llu tx / %llu rx messages)\n", id,
                energy::ledger_energy_mj(ledger, energy::strongarm(),
                                         energy::wlan_spectrum24()),
                static_cast<unsigned long long>(ledger.tx_messages),
                static_cast<unsigned long long>(ledger.rx_messages));
  }

  // 4. Membership changes use the paper's lightweight dynamic protocols.
  if (!session.join(66).success || !session.leave(22).success) {
    std::fprintf(stderr, "dynamic event failed\n");
    return 1;
  }
  std::printf("\nafter join(66) + leave(22), %zu members share key %s...\n",
              session.size(), session.key().to_hex().substr(0, 32).c_str());
  return 0;
}
