// Secure group messaging on top of the agreed key.
//
// Demonstrates the end-to-end purpose of the GKA: once the ring agrees on
// K, members derive an AES-128 session key and exchange authenticated-
// by-construction broadcasts (SealedBox = E_K(payload || sender), the
// paper's identity-check pattern). A member that leaves can no longer read
// the re-keyed traffic — shown explicitly.
#include <cstdio>
#include <string>

#include "gka/session.h"
#include "symc/sealed_box.h"

using namespace idgka;

namespace {

// Chat text rides in a BigInt payload (the SealedBox payload type).
mpint::BigInt encode_text(const std::string& text) {
  return mpint::BigInt::from_bytes_be(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::string decode_text(const mpint::BigInt& payload) {
  const auto bytes = payload.to_bytes_be();
  return std::string(bytes.begin(), bytes.end());
}

bool deliver(const symc::SealedBox& box, const std::vector<std::uint8_t>& wire,
             std::uint32_t sender, std::uint64_t seq, const char* receiver_label) {
  const auto opened = box.open(wire, sender, seq);
  if (!opened.has_value()) {
    std::printf("  [%s] REJECTED message from %u (bad key or identity)\n", receiver_label,
                sender);
    return false;
  }
  std::printf("  [%s] %u says: \"%s\"\n", receiver_label, sender,
              decode_text(*opened).c_str());
  return true;
}

}  // namespace

int main() {
  gka::Authority authority(gka::SecurityProfile::kTest, 3141);
  gka::GroupSession session(authority, gka::Scheme::kProposed, {1, 2, 3, 4}, 59);
  if (!session.form().success) return 1;
  std::printf("chat group {1,2,3,4} established, key %s...\n\n",
              session.key().to_hex().substr(0, 16).c_str());

  // Every member derives the same box from the group key.
  {
    const symc::SealedBox box(session.key());
    std::uint64_t seq = 0;
    const auto hello = box.seal(encode_text("status: all clear"), /*sender=*/1, ++seq);
    deliver(box, hello, 1, seq, "node 2");
    deliver(box, hello, 1, seq, "node 4");

    const auto reply = box.seal(encode_text("ack, moving to waypoint"), /*sender=*/3, ++seq);
    deliver(box, reply, 3, seq, "node 1");
  }

  // Node 4 leaves; the ring re-keys with the paper's Leave protocol.
  const mpint::BigInt old_key = session.key();
  if (!session.leave(4).success) return 1;
  std::printf("\nnode 4 left; group re-keyed to %s...\n\n",
              session.key().to_hex().substr(0, 16).c_str());

  const symc::SealedBox new_box(session.key());
  const symc::SealedBox stale_box(old_key);  // what node 4 still holds
  const auto secret = new_box.seal(encode_text("new rally point: grid 7"), 2, 1);

  std::printf("current member receives the re-keyed broadcast:\n");
  deliver(new_box, secret, 2, 1, "node 3");
  std::printf("departed node 4 tries with the old key:\n");
  deliver(stale_box, secret, 2, 1, "node 4");

  std::printf("\nforward secrecy demonstrated: the departed member cannot decrypt.\n");
  return 0;
}
