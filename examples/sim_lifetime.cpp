// Sensor-field lifetime: run a deployment until the first battery dies.
//
// A 12-node sensor field on a 400 m square, StrongARM CPUs and the paper's
// 100 kbps radio, each node on a small battery with a constant idle draw.
// Nodes wander (random waypoint) in and out of the base station's range, so
// the group continuously rekeys over timed, bursty links — every rekey
// burns transmit/receive/crypto energy until a battery hits zero. The run
// stops at first node death, the classic sensor-network lifetime metric.
#include <cstdio>

#include "sim/scenario.h"

using namespace idgka;

int main() {
  sim::ScenarioConfig cfg;
  cfg.name = "sensor_lifetime";
  cfg.topology = sim::Topology::kHierarchical;
  cfg.profile = gka::SecurityProfile::kTiny;
  cfg.initial_members = 12;
  cfg.base_id = 100;
  cfg.seed = 2026;
  cfg.duration_us = 3600 * sim::kUsPerSec;  // 1 h cap
  cfg.stop_on_first_death = true;

  cfg.cluster.min_cluster = 3;
  cfg.cluster.max_cluster = 6;

  cfg.driver.link = sim::LinkConfig::bursty(0.03);  // 3% bursty radio loss

  cfg.power.capacity_mj = 4000.0;  // 4 J battery budget per node
  cfg.power.idle_mw = 1.0;

  cfg.waypoint.enabled = true;
  cfg.waypoint.field_m = 400.0;
  cfg.waypoint.range_m = 150.0;
  cfg.waypoint.speed_mps = 8.0;
  cfg.waypoint.tick_us = 10 * sim::kUsPerSec;

  std::printf("=== sensor-field lifetime (first battery death) ===\n");
  std::printf("n=%zu nodes, %.0f m field, %.0f m range, %.1f J battery, %.1f mW idle,\n",
              cfg.initial_members, cfg.waypoint.field_m, cfg.waypoint.range_m,
              cfg.power.capacity_mj / 1000.0, cfg.power.idle_mw);
  std::printf("%.0f%% bursty link loss, StrongARM + 100 kbps radio profiles\n\n",
              cfg.driver.link.average_loss() * 100.0);

  const sim::Metrics metrics = sim::ScenarioRunner(cfg).run();

  std::printf("virtual lifetime      %10.1f s%s\n",
              static_cast<double>(metrics.end_time_us) / 1e6,
              metrics.first_death_us ? "  (first node died)" : "  (cap reached, nobody died)");
  if (metrics.first_death_us) {
    std::printf("first death at        %10.1f s\n",
                static_cast<double>(*metrics.first_death_us) / 1e6);
  }
  std::printf("rekeys                %6zu attempted, %zu converged\n", metrics.rekeys_attempted,
              metrics.rekeys_completed);
  std::printf("membership events     %6zu joins, %zu leaves\n", metrics.events_join,
              metrics.events_leave);
  std::printf("bits on air           %10.1f kbit (%llu frames, %llu copies lost)\n",
              static_cast<double>(metrics.bits_on_air) / 1000.0,
              static_cast<unsigned long long>(metrics.frames_on_air),
              static_cast<unsigned long long>(metrics.copies_dropped));
  std::printf("deployment energy     %10.1f mJ\n", metrics.energy_total_mj);
  std::printf("survivors             %6zu members in %zu clusters, agree=%s\n\n",
              metrics.members_final, metrics.clusters_final,
              metrics.all_members_agree ? "yes" : "no");
  std::printf("metrics JSON:\n%s\n", metrics.to_json().c_str());
  return 0;
}
