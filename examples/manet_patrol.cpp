// MANET patrol scenario — the paper's motivating workload.
//
// A patrol of nodes maintains a group key over a lossy wireless channel
// while its membership churns: units join, drop out, the patrol splits
// around an obstacle and the halves re-merge. The example traces every
// membership event, verifies key freshness and prints the cumulative
// energy budget per node — comparing the proposed dynamic protocols
// against what BD re-execution (the baseline) would have cost.
#include <cstdio>
#include <numeric>

#include "energy/profiles.h"
#include "gka/complexity.h"
#include "gka/session.h"

using namespace idgka;

namespace {

double node_mj(const gka::GroupSession& session, std::uint32_t id) {
  return energy::ledger_energy_mj(session.ledger(id), energy::strongarm(),
                                  energy::wlan_spectrum24());
}

void report(const gka::GroupSession& session, const char* event) {
  std::printf("%-28s members=%2zu  key=%s...\n", event, session.size(),
              session.key().to_hex().substr(0, 16).c_str());
}

}  // namespace

int main() {
  gka::Authority authority(gka::SecurityProfile::kTest, 7);

  // A patrol of 8 units on a lossy radio channel (5% frame loss — the
  // protocols retransmit transparently, and the ledger pays for it).
  std::vector<std::uint32_t> unit_ids(8);
  std::iota(unit_ids.begin(), unit_ids.end(), 101U);
  gka::GroupSession patrol(authority, gka::Scheme::kProposed, unit_ids, /*seed=*/99,
                           /*loss_rate=*/0.05);

  if (!patrol.form().success) return 1;
  report(patrol, "patrol formed");

  // Reinforcements arrive one by one.
  for (const std::uint32_t unit : {201U, 202U}) {
    if (!patrol.join(unit).success) return 1;
    report(patrol, "reinforcement joined");
  }

  // A unit's battery dies; it must lose access to future traffic.
  if (!patrol.leave(103).success) return 1;
  report(patrol, "unit 103 dropped");

  // The patrol meets a second squad and merges networks.
  gka::GroupSession squad(authority, gka::Scheme::kProposed, {301, 302, 303, 304},
                          /*seed=*/100);
  if (!squad.form().success) return 1;
  report(squad, "second squad formed");
  if (!patrol.merge(squad).success) return 1;
  report(patrol, "squads merged");

  // The formation splits: a detachment of three peels off (network
  // partition). The remaining group re-keys without them.
  if (!patrol.partition({301, 302, 303}).success) return 1;
  report(patrol, "detachment partitioned away");

  // ------------------------------------------------------------------
  std::printf("\ncumulative energy per node (StrongARM + WLAN):\n");
  double total = 0.0;
  for (const std::uint32_t id : patrol.member_ids()) {
    const double mj = node_mj(patrol, id);
    total += mj;
    std::printf("  node %3u: %8.2f mJ\n", id, mj);
  }
  std::printf("  group total: %.2f mJ, retransmission-capable under %.0f%% loss\n", total,
              5.0);

  // What would the same trace have cost with BD re-execution? (Paper's
  // baseline: every event re-runs authenticated BD+ECDSA at the new size.)
  const std::size_t event_sizes[] = {10, 11, 10, 14, 11};  // sizes after each event
  double reexec_mj = 0.0;
  for (const std::size_t n : event_sizes) {
    reexec_mj += energy::ledger_energy_mj(
        gka::impl_initial_ledger(gka::Scheme::kBdEcdsa, n), energy::strongarm(),
        energy::wlan_spectrum24());
  }
  std::printf("\nBD re-execution baseline for the same five events: %.2f mJ per node\n",
              reexec_mj);
  std::printf("(the dynamic protocols' advantage grows linearly with group size)\n");
  return 0;
}
