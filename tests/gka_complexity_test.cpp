// Formula-vs-instrumented validation.
//
// The Table-1/Figure-1/Table-4/Table-5 benches evaluate closed-form ledgers
// (gka/complexity.h) instead of executing 500-node protocols; these tests
// pin those formulas to reality: for real protocol runs, the instrumented
// per-member ledgers must match the formulas exactly — operation counts at
// any profile, and radio bits at the paper profile (where |p| = |n| = 1024
// makes the paper's wire accounting exact).
#include <gtest/gtest.h>

#include "gka/complexity.h"

namespace idgka::gka {
namespace {

Authority& test_authority() {
  static Authority authority(SecurityProfile::kTest, /*seed=*/2222);
  return authority;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 800) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

void expect_same_ops(const energy::Ledger& got, const energy::Ledger& want,
                     const std::string& what) {
  for (std::size_t i = 0; i < energy::kOpCount; ++i) {
    EXPECT_EQ(got.counts[i], want.counts[i])
        << what << ": op " << energy::op_name(static_cast<energy::Op>(i));
  }
  EXPECT_EQ(got.tx_messages, want.tx_messages) << what << ": tx msgs";
  EXPECT_EQ(got.rx_messages, want.rx_messages) << what << ": rx msgs";
}

struct CountCase {
  Scheme scheme;
  std::size_t n;
};

class InitialCountsTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(InitialCountsTest, InstrumentedOpsEqualFormula) {
  const auto [scheme, n] = GetParam();
  GroupSession session(test_authority(), scheme, make_ids(n), 31);
  ASSERT_TRUE(session.form().success);
  const energy::Ledger want = impl_initial_ledger(scheme, n);
  for (const std::uint32_t id : session.member_ids()) {
    expect_same_ops(session.ledger(id), want,
                    std::string(scheme_name(scheme)) + " n=" + std::to_string(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, InitialCountsTest,
    ::testing::Values(CountCase{Scheme::kProposed, 2}, CountCase{Scheme::kProposed, 3},
                      CountCase{Scheme::kProposed, 7}, CountCase{Scheme::kProposed, 12},
                      CountCase{Scheme::kBdSok, 3}, CountCase{Scheme::kBdSok, 5},
                      CountCase{Scheme::kBdEcdsa, 3}, CountCase{Scheme::kBdEcdsa, 8},
                      CountCase{Scheme::kBdDsa, 3}, CountCase{Scheme::kBdDsa, 6},
                      CountCase{Scheme::kSsn, 3}, CountCase{Scheme::kSsn, 9}),
    [](const ::testing::TestParamInfo<CountCase>& info) {
      std::string name = scheme_name(info.param.scheme);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_n" + std::to_string(info.param.n);
    });

TEST(InitialCounts, MatchPaperTable1Shape) {
  // Our implementation's op counts match the paper's Table 1 entries
  // (except SSN: we measure 2n+3 vs the paper's 2n+4; see EXPERIMENTS.md).
  const std::size_t n = 10;
  using energy::Op;

  const auto prop = impl_initial_ledger(Scheme::kProposed, n);
  EXPECT_EQ(prop.count(Op::kModExp), 3U);
  EXPECT_EQ(prop.count(Op::kSignGenGq), 1U);
  EXPECT_EQ(prop.count(Op::kSignVerGq), 1U);

  const auto sok = impl_initial_ledger(Scheme::kBdSok, n);
  EXPECT_EQ(sok.count(Op::kModExp), 3U);
  EXPECT_EQ(sok.count(Op::kMapToPoint), n - 1);
  EXPECT_EQ(sok.count(Op::kSignVerSok), n - 1);

  const auto ecdsa = impl_initial_ledger(Scheme::kBdEcdsa, n);
  EXPECT_EQ(ecdsa.count(Op::kCertVerifyEcdsa), n - 1);
  EXPECT_EQ(ecdsa.count(Op::kSignVerEcdsa), n - 1);

  const auto ssn = impl_initial_ledger(Scheme::kSsn, n);
  EXPECT_EQ(ssn.count(Op::kModExp), 2 * n + 3);  // paper: 2n+4
  const auto paper_ssn = paper_table1(Scheme::kSsn, n);
  EXPECT_EQ(paper_ssn.exp_count, 2 * n + 4);
  EXPECT_LE(ssn.count(Op::kModExp), paper_ssn.exp_count);
}

TEST(PaperTables, Table1RowsEvaluate) {
  const auto row = paper_table1(Scheme::kBdEcdsa, 50);
  EXPECT_EQ(row.exp_count, 3U);
  EXPECT_EQ(row.msg_rx, 98U);
  EXPECT_EQ(row.cert_rx, 49U);
  EXPECT_EQ(row.cert_ver, 49U);
  EXPECT_EQ(row.sign_ver, 49U);
  const auto prop = paper_table1(Scheme::kProposed, 50);
  EXPECT_EQ(prop.sign_ver, 1U);
  EXPECT_EQ(prop.cert_rx, 0U);
}

TEST(PaperTables, Table4RowsEvaluate) {
  // n=100, m=20, ld=20 — the paper's Table 5 scenario.
  const auto bd_join = paper_table4(DynamicEvent::kJoin, true, 100, 20, 20);
  EXPECT_EQ(bd_join.msg_count, 202U);
  EXPECT_EQ(bd_join.rounds, 2);
  const auto our_join = paper_table4(DynamicEvent::kJoin, false, 100, 20, 20);
  EXPECT_EQ(our_join.msg_count, 5U);
  EXPECT_EQ(our_join.rounds, 3);
  const auto our_leave = paper_table4(DynamicEvent::kLeave, false, 100, 20, 20);
  EXPECT_EQ(our_leave.msg_count, 50U + 98U);  // v + n - 2, v = 50
  const auto our_part = paper_table4(DynamicEvent::kPartition, false, 100, 20, 20);
  EXPECT_EQ(our_part.msg_count, 40U + 60U);  // v + n - 2ld, v = 40
}

// ---------------------------------------------------------------------------
// Dynamic-event role ledgers vs instrumented runs.
// The canonical scenario matches impl_dynamic_ledgers: join into a fresh
// group; leaver/partitioned members at the tail of the ring.
// ---------------------------------------------------------------------------

TEST(DynamicCounts, JoinRoles) {
  const std::size_t n = 6;
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(n), 32);
  ASSERT_TRUE(session.form().success);
  session.reset_ledgers();
  ASSERT_TRUE(session.join(890).success);

  const auto& p = test_authority().params();
  const auto want = impl_dynamic_ledgers(DynamicEvent::kJoin, n, 0, 0,
                                         p.element_bits(), p.gq_t_bits());
  const auto ids = session.member_ids();
  expect_same_ops(session.ledger(ids[0]), want.at(Role::kController), "join U1");
  expect_same_ops(session.ledger(ids[n - 1]), want.at(Role::kBridge), "join Un");
  expect_same_ops(session.ledger(890), want.at(Role::kJoiner), "join joiner");
  for (std::size_t i = 1; i + 1 < n; ++i) {
    expect_same_ops(session.ledger(ids[i]), want.at(Role::kOther), "join other");
  }
}

TEST(DynamicCounts, LeaveRoles) {
  const std::size_t n = 7;
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(n), 33);
  ASSERT_TRUE(session.form().success);
  session.reset_ledgers();
  const auto ids = session.member_ids();
  ASSERT_TRUE(session.leave(ids[n - 1]).success);  // canonical: tail leaves

  const auto& p = test_authority().params();
  const auto want = impl_dynamic_ledgers(DynamicEvent::kLeave, n, 0, 0,
                                         p.element_bits(), p.gq_t_bits());
  for (std::size_t pos = 1; pos <= n - 1; ++pos) {  // survivor positions, 1-based
    const Role role = pos % 2 == 1 ? Role::kOddSurvivor : Role::kEvenSurvivor;
    expect_same_ops(session.ledger(ids[pos - 1]), want.at(role),
                    "leave pos " + std::to_string(pos));
  }
}

TEST(DynamicCounts, PartitionRoles) {
  const std::size_t n = 9;
  const std::size_t ld = 3;
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(n), 34);
  ASSERT_TRUE(session.form().success);
  session.reset_ledgers();
  const auto ids = session.member_ids();
  ASSERT_TRUE(session.partition({ids[n - 3], ids[n - 2], ids[n - 1]}).success);

  const auto& p = test_authority().params();
  const auto want = impl_dynamic_ledgers(DynamicEvent::kPartition, n, 0, ld,
                                         p.element_bits(), p.gq_t_bits());
  for (std::size_t pos = 1; pos <= n - ld; ++pos) {
    const Role role = pos % 2 == 1 ? Role::kOddSurvivor : Role::kEvenSurvivor;
    expect_same_ops(session.ledger(ids[pos - 1]), want.at(role),
                    "partition pos " + std::to_string(pos));
  }
}

TEST(DynamicCounts, MergeRoles) {
  const std::size_t n = 5;
  const std::size_t m = 4;
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(n, 820), 35);
  GroupSession b(test_authority(), Scheme::kProposed, make_ids(m, 840), 36);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  a.reset_ledgers();
  b.reset_ledgers();
  const auto ids_a = a.member_ids();
  const auto ids_b = b.member_ids();
  ASSERT_TRUE(a.merge(b).success);

  const auto& p = test_authority().params();
  const auto want = impl_dynamic_ledgers(DynamicEvent::kMerge, n, m, 0,
                                         p.element_bits(), p.gq_t_bits());
  expect_same_ops(a.ledger(ids_a[0]), want.at(Role::kController), "merge U1");
  expect_same_ops(a.ledger(ids_b[0]), want.at(Role::kBridge), "merge Un+1");
  for (std::size_t i = 1; i < n; ++i) {
    expect_same_ops(a.ledger(ids_a[i]), want.at(Role::kOtherA), "merge otherA");
  }
  for (std::size_t i = 1; i < m; ++i) {
    expect_same_ops(a.ledger(ids_b[i]), want.at(Role::kOtherB), "merge otherB");
  }
}

TEST(SealedBits, MatchesSealedBoxFormat) {
  // 1024-bit payload: 2 + 128 + 4 = 134 bytes -> 144 after PKCS#7.
  EXPECT_EQ(sealed_bits(1024), 144U * 8);
  // 256-bit payload: 2 + 32 + 4 = 38 -> 48.
  EXPECT_EQ(sealed_bits(256), 48U * 8);
  // Exact block multiple still gains a full padding block (PKCS#7).
  EXPECT_EQ(sealed_bits(80), 32U * 8);
}


// ---------------------------------------------------------------------------
// Paper-profile (1024-bit) validation: with |p| = |n| = 1024 the formulas'
// default wire accounting is exact, so the FULL ledger — operations and
// radio bits — must match the instrumented runs bit-for-bit.
// ---------------------------------------------------------------------------

void expect_same_ledger(const energy::Ledger& got, const energy::Ledger& want,
                        const std::string& what) {
  expect_same_ops(got, want, what);
  EXPECT_EQ(got.tx_bits, want.tx_bits) << what << ": tx bits";
  EXPECT_EQ(got.rx_bits, want.rx_bits) << what << ": rx bits";
}

Authority& paper_authority() {
  static Authority authority(SecurityProfile::kPaper, /*seed=*/3333);
  return authority;
}

TEST(PaperProfileBits, InitialGkaLedgersExact) {
  const std::size_t n = 4;
  for (const Scheme scheme : {Scheme::kProposed, Scheme::kBdEcdsa, Scheme::kBdDsa,
                              Scheme::kSsn, Scheme::kBdSok}) {
    GroupSession session(paper_authority(), scheme, make_ids(n, 850), 41);
    ASSERT_TRUE(session.form().success) << scheme_name(scheme);
    const energy::Ledger want = impl_initial_ledger(scheme, n);
    for (const std::uint32_t id : session.member_ids()) {
      expect_same_ledger(session.ledger(id), want, scheme_name(scheme));
    }
  }
}

TEST(PaperProfileBits, DynamicLedgersExact) {
  const std::size_t n = 5;
  GroupSession session(paper_authority(), Scheme::kProposed, make_ids(n, 860), 42);
  ASSERT_TRUE(session.form().success);
  session.reset_ledgers();
  ASSERT_TRUE(session.join(899).success);
  const auto join_want = impl_dynamic_ledgers(DynamicEvent::kJoin, n);
  const auto ids = session.member_ids();
  expect_same_ledger(session.ledger(ids[0]), join_want.at(Role::kController), "U1");
  expect_same_ledger(session.ledger(ids[n - 1]), join_want.at(Role::kBridge), "Un");
  expect_same_ledger(session.ledger(899), join_want.at(Role::kJoiner), "joiner");
  expect_same_ledger(session.ledger(ids[1]), join_want.at(Role::kOther), "other");

  // Leave of the tail member (the joiner) from the now 6-member ring.
  session.reset_ledgers();
  ASSERT_TRUE(session.leave(899).success);
  const auto leave_want = impl_dynamic_ledgers(DynamicEvent::kLeave, n + 1);
  expect_same_ledger(session.ledger(ids[0]), leave_want.at(Role::kOddSurvivor), "odd");
  expect_same_ledger(session.ledger(ids[1]), leave_want.at(Role::kEvenSurvivor), "even");
}

TEST(PaperProfileBits, MergeLedgersExact) {
  const std::size_t n = 3;
  const std::size_t m = 3;
  GroupSession a(paper_authority(), Scheme::kProposed, make_ids(n, 870), 43);
  GroupSession b(paper_authority(), Scheme::kProposed, make_ids(m, 880), 44);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  a.reset_ledgers();
  b.reset_ledgers();
  const auto ids_a = a.member_ids();
  const auto ids_b = b.member_ids();
  ASSERT_TRUE(a.merge(b).success);
  const auto want = impl_dynamic_ledgers(DynamicEvent::kMerge, n, m);
  expect_same_ledger(a.ledger(ids_a[0]), want.at(Role::kController), "merge U1");
  expect_same_ledger(a.ledger(ids_b[0]), want.at(Role::kBridge), "merge Ub");
  expect_same_ledger(a.ledger(ids_a[1]), want.at(Role::kOtherA), "merge otherA");
  expect_same_ledger(a.ledger(ids_b[1]), want.at(Role::kOtherB), "merge otherB");
}

}  // namespace
}  // namespace idgka::gka
