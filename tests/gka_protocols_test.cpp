// Initial group key agreement: all five schemes of Table 1.
//
// Correctness anchor: every member computes the same key, and that key
// equals the BD oracle g^{sum r_i r_{i+1}} computed directly from the
// members' ephemerals (Eq. 3).
#include <gtest/gtest.h>

#include "gka/bd_math.h"
#include "gka/session.h"

namespace idgka::gka {
namespace {

// One authority shared across the suite (parameter generation is the
// expensive part; protocol runs are cheap).
Authority& test_authority() {
  static Authority authority(SecurityProfile::kTest, /*seed=*/12345);
  return authority;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 100) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

BigInt oracle_key(const GroupSession& session) {
  std::vector<BigInt> r;
  for (const MemberCtx& m : session.members()) r.push_back(m.r);
  return bd::direct_key(session.authority().params().group(), r);
}

struct SchemeCase {
  Scheme scheme;
  std::size_t n;
};

class FormTest : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(FormTest, AllMembersAgreeOnBdKey) {
  const auto [scheme, n] = GetParam();
  GroupSession session(test_authority(), scheme, make_ids(n), /*seed=*/1);
  const RunResult result = session.form();
  ASSERT_TRUE(result.success) << scheme_name(scheme) << " n=" << n;
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(result.retransmissions, 0);
  // All members hold the same key (the driver asserts equality internally;
  // double-check through the public API).
  EXPECT_FALSE(session.key().is_zero());
  for (const MemberCtx& m : session.members()) EXPECT_EQ(m.key, session.key());
  // The key is exactly Eq. (3).
  EXPECT_EQ(session.key(), oracle_key(session));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FormTest,
    ::testing::Values(SchemeCase{Scheme::kProposed, 2}, SchemeCase{Scheme::kProposed, 3},
                      SchemeCase{Scheme::kProposed, 5}, SchemeCase{Scheme::kProposed, 9},
                      SchemeCase{Scheme::kBdSok, 2}, SchemeCase{Scheme::kBdSok, 4},
                      SchemeCase{Scheme::kBdEcdsa, 2}, SchemeCase{Scheme::kBdEcdsa, 5},
                      SchemeCase{Scheme::kBdDsa, 2}, SchemeCase{Scheme::kBdDsa, 5},
                      SchemeCase{Scheme::kSsn, 2}, SchemeCase{Scheme::kSsn, 5},
                      SchemeCase{Scheme::kSsn, 8}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string name = scheme_name(info.param.scheme);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_n" + std::to_string(info.param.n);
    });

TEST(FormDeterminism, SameSeedSameKey) {
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(4), 777);
  GroupSession b(test_authority(), Scheme::kProposed, make_ids(4), 777);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  EXPECT_EQ(a.key(), b.key());

  GroupSession c(test_authority(), Scheme::kProposed, make_ids(4), 778);
  ASSERT_TRUE(c.form().success);
  EXPECT_NE(a.key(), c.key());
}

TEST(FormUnderLoss, RetransmissionsRecoverTheRun) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(6), /*seed=*/9,
                       /*loss_rate=*/0.15);
  const RunResult result = session.form();
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.retransmissions, 0);
  EXPECT_EQ(session.key(), oracle_key(session));
  EXPECT_GT(session.network().dropped(), 0U);
}

TEST(FormUnderLoss, KeysStillAgreeAcrossSchemes) {
  for (const Scheme scheme : {Scheme::kBdEcdsa, Scheme::kSsn}) {
    GroupSession session(test_authority(), scheme, make_ids(4), /*seed=*/11,
                         /*loss_rate=*/0.10);
    ASSERT_TRUE(session.form().success) << scheme_name(scheme);
    EXPECT_EQ(session.key(), oracle_key(session));
  }
}

TEST(FormValidation, RejectsTooSmallGroups) {
  EXPECT_THROW(GroupSession(test_authority(), Scheme::kProposed, {1}, 1),
               std::invalid_argument);
}

TEST(FormTraffic, MessageCountsMatchTable1) {
  // Each member transmits 2 and receives 2(n-1) messages (Table 1).
  const std::size_t n = 5;
  for (const Scheme scheme : {Scheme::kProposed, Scheme::kBdSok, Scheme::kBdEcdsa,
                              Scheme::kBdDsa, Scheme::kSsn}) {
    GroupSession session(test_authority(), scheme, make_ids(n), 3);
    ASSERT_TRUE(session.form().success) << scheme_name(scheme);
    for (const std::uint32_t id : session.member_ids()) {
      const auto& ledger = session.ledger(id);
      EXPECT_EQ(ledger.tx_messages, 2U) << scheme_name(scheme);
      EXPECT_EQ(ledger.rx_messages, 2 * (n - 1)) << scheme_name(scheme);
    }
  }
}

TEST(FormKeyMaterial, KeysDifferAcrossSeedsAndRuns) {
  // Same seed + same ids -> identical ephemerals by design (deterministic
  // replay), even across schemes; different seeds must diverge.
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(3), 21);
  GroupSession b(test_authority(), Scheme::kBdEcdsa, make_ids(3), 21);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  EXPECT_EQ(a.key(), b.key());  // deterministic replay property

  GroupSession c(test_authority(), Scheme::kProposed, make_ids(3), 22);
  ASSERT_TRUE(c.form().success);
  EXPECT_NE(a.key(), c.key());

  // Re-forming the same session refreshes the key (DRBG stream advances).
  const BigInt first = a.key();
  ASSERT_TRUE(a.form().success);
  EXPECT_NE(a.key(), first);
}

TEST(BdMath, Lemma1AndReconstruction) {
  const SystemParams& params = test_authority().params();
  hash::HmacDrbg rng(5, "bdmath");
  const std::size_t n = 7;
  std::vector<BigInt> r(n);
  std::vector<BigInt> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = mpint::random_range(rng, BigInt{1}, params.grp.q);
    z[i] = params.gpow(r[i]);
  }
  std::vector<BigInt> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = bd::compute_x(params.group(), z[(i + 1) % n], z[(i + n - 1) % n], r[i]);
  }
  EXPECT_TRUE(bd::lemma1_holds(params.group(), x));
  const BigInt expected = bd::direct_key(params.group(), r);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bd::compute_key(params.group(), z, x, i, r[i]), expected) << "member " << i;
  }
  // Lemma 1 detects a corrupted X.
  x[2] = params.ctx_p->mul(x[2], params.grp.g);
  EXPECT_FALSE(bd::lemma1_holds(params.group(), x));
}

TEST(BdMath, RejectsDegenerateInputs) {
  const SystemParams& params = test_authority().params();
  std::vector<BigInt> one{BigInt{1}};
  EXPECT_THROW((void)bd::direct_key(params.group(), one), std::invalid_argument);
  std::vector<BigInt> z(3, BigInt{1});
  std::vector<BigInt> x(2, BigInt{1});
  EXPECT_THROW((void)bd::compute_key(params.group(), z, x, 0, BigInt{1}), std::invalid_argument);
}

}  // namespace
}  // namespace idgka::gka
