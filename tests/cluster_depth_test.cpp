// Depth-k hierarchy: nested head tiers (heads-of-heads) under churn.
//
// A tiny cluster bound (min=2, max=4) forces the head set past max_cluster
// at modest n, so these suites exercise tier nesting cheaply: tree shape,
// the max_depth budget, key consistency through join/leave/partition/merge
// across depth transitions, run-to-run determinism at equal seeds, and
// monotonic lifetime energy accounting while tiers appear and dissolve.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "cluster/hierarchical_session.h"

namespace idgka::cluster {
namespace {

gka::Authority& tiny_authority() {
  static gka::Authority authority(gka::SecurityProfile::kTiny, /*seed=*/424242);
  return authority;
}

ClusterConfig deep_config(std::size_t max_depth = 0) {
  ClusterConfig cfg;
  cfg.min_cluster = 2;
  cfg.max_cluster = 4;
  cfg.batch_capacity = 8;
  cfg.max_depth = max_depth;
  return cfg;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 1000) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

void expect_consistent(const HierarchicalSession& session, const char* what) {
  ASSERT_TRUE(session.all_members_agree()) << what;
  for (const std::uint32_t id : session.member_ids()) {
    EXPECT_EQ(session.member_key_view(id), session.group_key()) << what << " member " << id;
  }
}

std::uint64_t ledger_weight(const energy::Ledger& ledger) {
  const std::uint64_t ops =
      std::accumulate(ledger.counts.begin(), ledger.counts.end(), std::uint64_t{0});
  return ops + ledger.tx_bits + ledger.rx_bits;
}

TEST(DepthKTest, NestedTierFormsWhenHeadsOverflowMaxCluster) {
  HierarchicalSession session(tiny_authority(), deep_config(), make_ids(30), /*seed=*/7);
  ASSERT_TRUE(session.form().success);

  // 30 members in clusters of <= 4 yields ~10 heads — past max_cluster, so
  // the head tier must itself be sharded (depth >= 3).
  EXPECT_GE(session.depth(), 3U);
  const auto tiers = session.tier_sizes();
  ASSERT_EQ(tiers.size(), session.depth());
  EXPECT_EQ(tiers.front(), 30U);
  for (std::size_t t = 1; t < tiers.size(); ++t) {
    EXPECT_LT(tiers[t], tiers[t - 1]) << "tier " << t << " must shrink";
  }
  expect_consistent(session, "after deep form");
}

TEST(DepthKTest, MaxDepthTwoPinsLegacyFlatHeadTier) {
  HierarchicalSession session(tiny_authority(), deep_config(/*max_depth=*/2), make_ids(30),
                              /*seed=*/7);
  ASSERT_TRUE(session.form().success);
  EXPECT_EQ(session.depth(), 2U);  // head ring stays flat regardless of size
  expect_consistent(session, "after flat form");
}

TEST(DepthKTest, MaxDepthThreeBoundsTreeHeight) {
  // 90 members -> ~30 heads -> ~10 heads-of-heads; unbounded that nests
  // again, but max_depth=3 must stop at three tiers.
  HierarchicalSession session(tiny_authority(), deep_config(/*max_depth=*/3), make_ids(90),
                              /*seed=*/11);
  ASSERT_TRUE(session.form().success);
  EXPECT_EQ(session.depth(), 3U);
  expect_consistent(session, "after bounded form");

  HierarchicalSession unbounded(tiny_authority(), deep_config(), make_ids(90), /*seed=*/11);
  ASSERT_TRUE(unbounded.form().success);
  EXPECT_GE(unbounded.depth(), 4U);
  expect_consistent(unbounded, "after unbounded form");
}

TEST(DepthKTest, ChurnIsDeterministicAcrossIdenticalRuns) {
  HierarchicalSession a(tiny_authority(), deep_config(), make_ids(30), /*seed=*/99);
  HierarchicalSession b(tiny_authority(), deep_config(), make_ids(30), /*seed=*/99);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  EXPECT_EQ(a.group_key(), b.group_key());

  const auto drive = [](HierarchicalSession& s) {
    s.join(5000);
    s.leave(1003);
    s.partition({1010, 1011, 1012, 1013, 1020});
    for (std::uint32_t id = 6000; id < 6012; ++id) s.enqueue_join(id);
    s.flush();
    s.leave(5000);
  };
  drive(a);
  drive(b);

  EXPECT_EQ(a.group_key(), b.group_key());
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_EQ(a.depth(), b.depth());
  EXPECT_EQ(a.tier_sizes(), b.tier_sizes());
  EXPECT_EQ(a.cluster_sizes(), b.cluster_sizes());
  expect_consistent(a, "after deterministic churn");
}

TEST(DepthKTest, DepthCollapsesAndRegrowsUnderChurn) {
  HierarchicalSession session(tiny_authority(), deep_config(), make_ids(30), /*seed=*/3);
  ASSERT_TRUE(session.form().success);
  ASSERT_GE(session.depth(), 3U);

  // Partition down to 8 members: few clusters, flat (or single) head tier.
  const auto ids = session.member_ids();
  std::vector<std::uint32_t> leavers(ids.begin(), ids.begin() + (ids.size() - 8));
  ASSERT_TRUE(session.partition(leavers).success);
  EXPECT_EQ(session.size(), 8U);
  EXPECT_LE(session.depth(), 2U);
  expect_consistent(session, "after collapse");

  // Grow back past the nesting threshold: the deep tree must return.
  for (std::uint32_t id = 9000; id < 9040; ++id) session.enqueue_join(id);
  session.flush();
  EXPECT_EQ(session.size(), 48U);
  EXPECT_GE(session.depth(), 3U);
  expect_consistent(session, "after regrowth");
}

TEST(DepthKTest, MergeAbsorbsDeepSessions) {
  HierarchicalSession left(tiny_authority(), deep_config(), make_ids(24, 1000), /*seed=*/21);
  HierarchicalSession right(tiny_authority(), deep_config(), make_ids(24, 4000), /*seed=*/22);
  ASSERT_TRUE(left.form().success);
  ASSERT_TRUE(right.form().success);
  ASSERT_GE(left.depth(), 3U);
  ASSERT_GE(right.depth(), 3U);

  const auto summary = left.merge(right);
  EXPECT_TRUE(summary.success);
  EXPECT_EQ(left.size(), 48U);
  EXPECT_EQ(right.size(), 0U);
  EXPECT_GE(left.depth(), 3U);
  expect_consistent(left, "after merge");

  std::set<std::uint32_t> members;
  for (const std::uint32_t id : left.member_ids()) members.insert(id);
  for (const std::uint32_t id : make_ids(24, 1000)) EXPECT_TRUE(members.count(id));
  for (const std::uint32_t id : make_ids(24, 4000)) EXPECT_TRUE(members.count(id));
}

TEST(DepthKTest, LeafEventRekeysDeepTree) {
  HierarchicalSession session(tiny_authority(), deep_config(), make_ids(30), /*seed=*/13);
  ASSERT_TRUE(session.form().success);
  ASSERT_GE(session.depth(), 3U);

  const BigInt before = session.group_key();
  const std::uint64_t epoch_before = session.epoch();
  // Pick a plain (non-head) member so only the leaf ring plus the tier path
  // above it should be touched — the group key must still change.
  std::set<std::uint32_t> heads;
  for (const std::uint32_t h : session.cluster_heads()) heads.insert(h);
  std::uint32_t leaver = 0;
  for (const std::uint32_t id : session.member_ids()) {
    if (heads.count(id) == 0) {
      leaver = id;
      break;
    }
  }
  ASSERT_NE(leaver, 0U);
  ASSERT_TRUE(session.leave(leaver).success);
  EXPECT_NE(session.group_key(), before);
  EXPECT_GT(session.epoch(), epoch_before);
  expect_consistent(session, "after leaf leave");
}

TEST(DepthKTest, MemberLedgersStayMonotonicAcrossTierTransitions) {
  HierarchicalSession session(tiny_authority(), deep_config(), make_ids(30), /*seed=*/17);
  ASSERT_TRUE(session.form().success);
  const std::uint32_t tracked = session.cluster_heads().front();  // deep-tier participant
  std::uint64_t last = ledger_weight(session.member_ledger(tracked));
  EXPECT_GT(last, 0U);

  // Collapse below the nesting threshold, then regrow: the tracked head's
  // lifetime ledger must never move backwards even as the nested tier it
  // participated in is dissolved and rebuilt.
  const auto ids = session.member_ids();
  std::vector<std::uint32_t> leavers;
  for (const std::uint32_t id : ids) {
    if (id != tracked && leavers.size() < ids.size() - 8) leavers.push_back(id);
  }
  ASSERT_TRUE(session.partition(leavers).success);
  ASSERT_TRUE(session.contains(tracked));
  std::uint64_t now = ledger_weight(session.member_ledger(tracked));
  EXPECT_GE(now, last);
  last = now;

  for (std::uint32_t id = 9100; id < 9140; ++id) session.enqueue_join(id);
  session.flush();
  ASSERT_GE(session.depth(), 3U);
  now = ledger_weight(session.member_ledger(tracked));
  EXPECT_GE(now, last);
}

TEST(DepthKTest, ReportAggregatesNestedTiers) {
  HierarchicalSession session(tiny_authority(), deep_config(), make_ids(30), /*seed=*/29);
  ASSERT_TRUE(session.form().success);
  ASSERT_GE(session.depth(), 3U);
  const AggregateReport rep = session.report();
  EXPECT_EQ(rep.members, 30U);
  // The roll-up must cover at least the per-member lifetime views.
  energy::Ledger sum;
  for (const std::uint32_t id : session.member_ids()) sum += session.member_ledger(id);
  EXPECT_GE(ledger_weight(rep.total), ledger_weight(sum));
}

}  // namespace
}  // namespace idgka::cluster
