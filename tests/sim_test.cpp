// Discrete-event engine tests: scheduler ordering, link model, battery
// integration, the timed protocol driver over flat and hierarchical
// sessions, and scenario determinism (same seed => bit-identical JSON).
#include <gtest/gtest.h>

#include "sim/battery.h"
#include "sim/driver.h"
#include "sim/link.h"
#include "sim/metrics.h"
#include "sim/scenario.h"
#include "sim/scheduler.h"

namespace idgka::sim {
namespace {

// ---------------------------------------------------------------- Scheduler

TEST(Scheduler, RunsEventsInTimeThenInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.at(200, [&] { order.push_back(3); });
  sched.at(100, [&] { order.push_back(1); });
  sched.at(100, [&] { order.push_back(2); });  // tie: insertion order
  sched.run_until(150);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now(), 150U);
  EXPECT_EQ(sched.pending(), 1U);
  sched.run_until(200);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.executed(), 3U);
}

TEST(Scheduler, EventsMayScheduleWithinTheWindow) {
  Scheduler sched;
  std::vector<SimTime> stamps;
  sched.at(10, [&] {
    stamps.push_back(sched.now());
    sched.after(5, [&] { stamps.push_back(sched.now()); });
  });
  sched.run_until(100);
  EXPECT_EQ(stamps, (std::vector<SimTime>{10, 15}));
  EXPECT_EQ(sched.now(), 100U);
}

// Regression pin: equal-timestamp events run strictly in insertion (FIFO)
// order, including events inserted *while* the timestamp is being drained
// (they append after every already-queued event at that time) and events
// scheduled into the past (clamped to now, still FIFO). The engine
// executor's determinism — run wake-ups are ordinary scheduler events —
// depends on exactly this ordering.
TEST(Scheduler, SameTimestampEventsAreFifo) {
  Scheduler sched;
  std::vector<int> order;
  constexpr int kEvents = 32;
  for (int i = 0; i < kEvents; ++i) {
    sched.at(700, [&order, i] { order.push_back(i); });
  }
  // A same-timestamp cascade scheduled by the FIRST event must run after
  // every pre-queued 700-stamped event, in its own insertion order.
  sched.at(700, [&] {
    sched.at(700, [&] { order.push_back(1000); });
    sched.at(500, [&] { order.push_back(1001); });  // past: clamps to 700
  });
  sched.run_until(700);

  // The 32 pre-queued events run 0..31; the cascade parent (queued after
  // them) then fires and its children append FIFO behind everything.
  std::vector<int> expected;
  for (int i = 0; i < kEvents; ++i) expected.push_back(i);
  expected.push_back(1000);
  expected.push_back(1001);
  EXPECT_EQ(order, expected);
  EXPECT_EQ(sched.next_event_time(), std::nullopt);
}

TEST(Scheduler, NextEventTimeReportsEarliestPending) {
  Scheduler sched;
  EXPECT_EQ(sched.next_event_time(), std::nullopt);
  sched.at(300, [] {});
  sched.at(100, [] {});
  ASSERT_TRUE(sched.next_event_time().has_value());
  EXPECT_EQ(*sched.next_event_time(), 100U);
  sched.run_until(100);
  EXPECT_EQ(*sched.next_event_time(), 300U);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler sched;
  sched.run_until(50);
  SimTime fired = 0;
  sched.at(10, [&] { fired = sched.now(); });  // in the past: runs "now"
  EXPECT_EQ(sched.run_all(), 50U);
  EXPECT_EQ(fired, 50U);
}

// --------------------------------------------------------------- LinkModel

TEST(Link, DelayIsSerializationPlusLatency) {
  LinkConfig cfg;  // 100 kbps, 2 ms latency, no jitter, no loss
  LinkModel link(cfg, 1);
  const auto verdict = link.transmit(1000, 1, 2);
  EXPECT_FALSE(verdict.dropped);
  EXPECT_EQ(verdict.delay_us, 10'000U + 2'000U);  // 1000 bits at 100 kbps
}

TEST(Link, BurstyFactoryHitsTargetAverage) {
  const LinkConfig cfg = LinkConfig::bursty(0.05);
  EXPECT_NEAR(cfg.average_loss(), 0.05, 1e-12);

  LinkModel link(cfg, 42);
  for (int i = 0; i < 20'000; ++i) (void)link.transmit(512, 1, 2);
  const double rate = static_cast<double>(link.copies_dropped()) /
                      static_cast<double>(link.copies_offered());
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.07);
}

TEST(Link, DeterministicUnderSeed) {
  LinkModel a(LinkConfig::bursty(0.2), 7);
  LinkModel b(LinkConfig::bursty(0.2), 7);
  for (int i = 0; i < 500; ++i) {
    const auto va = a.transmit(256, 1, 2);
    const auto vb = b.transmit(256, 1, 2);
    EXPECT_EQ(va.dropped, vb.dropped);
    EXPECT_EQ(va.delay_us, vb.delay_us);
  }
}

TEST(Link, RejectsInvalidConfigs) {
  EXPECT_THROW(LinkConfig::bursty(0.5), std::invalid_argument);
  LinkConfig cfg;
  cfg.bandwidth_bps = 0.0;
  EXPECT_THROW(LinkModel(cfg, 1), std::invalid_argument);
}

// ------------------------------------------------------------- BatteryBank

TEST(Battery, IdleDrainKillsAtCapacity) {
  PowerConfig power;
  power.capacity_mj = 10.0;
  power.idle_mw = 1000.0;  // 1 mJ per ms
  BatteryBank bank(power);
  bank.add_node(1, 0);
  EXPECT_FALSE(bank.tick(1, 5'000));  // 5 mJ consumed
  EXPECT_TRUE(bank.alive(1));
  EXPECT_TRUE(bank.tick(1, 10'000));  // crosses 10 mJ: just died
  EXPECT_FALSE(bank.alive(1));
  EXPECT_EQ(bank.deaths(), 1U);
  EXPECT_EQ(bank.first_death_us().value(), 10'000U);
  // Dead nodes stop draining.
  EXPECT_FALSE(bank.tick(1, 20'000));
  EXPECT_DOUBLE_EQ(bank.consumed_mj(1), 10.0);
}

TEST(Battery, LedgerResetsAreBanked) {
  PowerConfig power;  // infinite capacity
  BatteryBank bank(power);
  bank.add_node(1, 0);
  energy::Ledger big;
  big.tx_bits = 100'000;
  bank.update(1, big, 1'000);
  const double after_big = bank.consumed_mj(1);
  EXPECT_GT(after_big, 0.0);
  // A shrunken ledger means the member's session state was rebuilt; the
  // integral stays continuous — neither dropping the old tenure nor
  // double-counting the share the fresh ledger still holds.
  energy::Ledger small;
  small.tx_bits = 1'000;
  bank.update(1, small, 2'000);
  EXPECT_NEAR(bank.consumed_mj(1), after_big, 1e-9);
  // ...and the fresh tenure accrues on top of the banked one.
  energy::Ledger grown = small;
  grown.tx_bits = 50'000;
  bank.update(1, grown, 3'000);
  EXPECT_GT(bank.consumed_mj(1), after_big);
}

// ---------------------------------------------------------------- Metrics

TEST(Metrics, NearestRankPercentiles) {
  const std::vector<SimTime> sample{40, 10, 30, 20};
  EXPECT_EQ(percentile_us(sample, 50.0), 20U);
  EXPECT_EQ(percentile_us(sample, 90.0), 40U);
  EXPECT_EQ(percentile_us(sample, 100.0), 40U);
  EXPECT_EQ(percentile_us({}, 50.0), 0U);
}

TEST(Metrics, JsonCarriesPerOperationLatencyPercentiles) {
  Metrics metrics;
  metrics.op_latencies_us.all = {400, 100, 300, 200};
  metrics.op_latencies_us.join = {100, 300};
  metrics.op_latencies_us.leave = {200};
  const std::string json = metrics.to_json();
  // Overall percentiles live directly under `latency`, alongside the
  // existing start/end-derived blocks (form latency, latency_us).
  EXPECT_NE(json.find("\"latency\":{\"count\":4,\"p50_us\":200,\"p99_us\":400"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"join\":{\"count\":2,\"p50_us\":100,\"p99_us\":300}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"leave\":{\"count\":1,\"p50_us\":200,\"p99_us\":200}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"partition\":{\"count\":0,\"p50_us\":0,\"p99_us\":0}"),
            std::string::npos)
      << json;
}

// ----------------------------------------------------- Timed flat sessions

TEST(Driver, FlatFormAdvancesVirtualTime) {
  gka::Authority authority(gka::SecurityProfile::kTiny, 2024);
  Scheduler sched;
  DriverConfig cfg;
  ProtocolDriver driver(sched, cfg, 5);
  gka::GroupSession session(authority, gka::Scheme::kProposed, {1, 2, 3, 4, 5, 6}, 42);
  driver.attach(session);

  const OpOutcome formed = driver.form();
  ASSERT_TRUE(formed.success);
  EXPECT_TRUE(session.has_key());
  EXPECT_EQ(formed.retransmissions, 0);  // lossless links
  EXPECT_GE(formed.rounds, 2);
  // Each reliable round costs exactly one timeout on a lossless link.
  EXPECT_EQ(formed.latency_us(),
            static_cast<SimTime>(formed.rounds) * cfg.round_timeout_us);
  EXPECT_GT(driver.frames_on_air(), 0U);
  EXPECT_GT(driver.bits_on_air(), 0U);
  EXPECT_EQ(driver.copies_dropped(), 0U);
  EXPECT_TRUE(driver.agreed());
}

TEST(Driver, FlatRetransmitsThroughBurstyLoss) {
  gka::Authority authority(gka::SecurityProfile::kTiny, 2024);
  Scheduler sched;
  DriverConfig cfg;
  cfg.link = LinkConfig::bursty(0.15);
  ProtocolDriver driver(sched, cfg, 9);
  gka::GroupSession session(authority, gka::Scheme::kProposed, {1, 2, 3, 4, 5, 6, 7, 8}, 42);
  driver.attach(session);

  const OpOutcome formed = driver.form();
  ASSERT_TRUE(formed.success);
  EXPECT_GT(formed.retransmissions, 0);  // loss forced extra attempts
  EXPECT_GT(driver.copies_dropped(), 0U);
  // Retransmission rounds cost additional timeouts.
  EXPECT_GT(formed.latency_us(),
            static_cast<SimTime>(formed.rounds) * cfg.round_timeout_us);

  const OpOutcome joined = driver.join(99);
  EXPECT_TRUE(joined.success);
  const OpOutcome left = driver.leave(3);
  EXPECT_TRUE(left.success);
  EXPECT_TRUE(driver.agreed());
}

// --------------------------------------------- Timed hierarchical sessions

TEST(Driver, HierarchicalChurnOverBurstyLinks) {
  gka::Authority authority(gka::SecurityProfile::kTiny, 2024);
  Scheduler sched;
  DriverConfig cfg;
  cfg.link = LinkConfig::bursty(0.05);
  ProtocolDriver driver(sched, cfg, 17);
  cluster::ClusterConfig cluster_cfg;
  cluster_cfg.min_cluster = 4;
  cluster_cfg.max_cluster = 8;
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 24; ++i) ids.push_back(100 + i);
  cluster::HierarchicalSession session(authority, cluster_cfg, ids, 7);
  driver.attach(session);

  const OpOutcome formed = driver.form();
  ASSERT_TRUE(formed.success);
  EXPECT_GT(formed.latency_us(), 0U);
  EXPECT_TRUE(session.all_members_agree());

  // Churn: joins force splits eventually; the new networks (head-tier
  // rebuilds, split offshoots) must inherit the timed hooks.
  for (std::uint32_t i = 0; i < 6; ++i) {
    const OpOutcome join = driver.join(500 + i);
    ASSERT_TRUE(join.success) << "join " << i;
    EXPECT_GT(join.latency_us(), 0U);
  }
  const OpOutcome part = driver.partition({101, 102, 103});
  ASSERT_TRUE(part.success);
  EXPECT_TRUE(session.all_members_agree());
  EXPECT_GT(driver.copies_dropped(), 0U);

  // member_ledger covers heads (leaf + tier) and plain members (leaf only).
  const auto heads = session.cluster_heads();
  const energy::Ledger head_ledger = session.member_ledger(heads.front());
  EXPECT_GT(head_ledger.tx_bits, 0U);
  EXPECT_THROW((void)session.member_ledger(0xDEAD), std::invalid_argument);
}

// ------------------------------------------------------------- Scenarios

ScenarioConfig churn_scenario() {
  ScenarioConfig cfg;
  cfg.name = "determinism";
  cfg.topology = Topology::kHierarchical;
  cfg.initial_members = 16;
  cfg.base_id = 1000;
  cfg.seed = 77;
  cfg.duration_us = 120 * kUsPerSec;
  cfg.driver.link = LinkConfig::bursty(0.05);
  cfg.cluster.min_cluster = 4;
  cfg.cluster.max_cluster = 8;
  cfg.trace = {
      {5 * kUsPerSec, TraceEvent::Kind::kJoin, {2000}},
      {10 * kUsPerSec, TraceEvent::Kind::kJoin, {2001}},
      {20 * kUsPerSec, TraceEvent::Kind::kLeave, {1003}},
      {40 * kUsPerSec, TraceEvent::Kind::kPartition, {1004, 1005, 1006}},
      {60 * kUsPerSec, TraceEvent::Kind::kMerge, {1004, 1005, 1006}},
  };
  return cfg;
}

TEST(Scenario, SameSeedSameTraceBitIdenticalJson) {
  const ScenarioConfig cfg = churn_scenario();
  const Metrics first = ScenarioRunner(cfg).run();
  const Metrics second = ScenarioRunner(cfg).run();
  EXPECT_FALSE(first.to_json().empty());
  EXPECT_EQ(first.to_json(), second.to_json());

  EXPECT_TRUE(first.form_success);
  EXPECT_EQ(first.rekeys_attempted, 5U);
  EXPECT_EQ(first.rekeys_completed, 5U);
  EXPECT_TRUE(first.all_members_agree);
  EXPECT_EQ(first.members_final, 17U);  // 16 + 2 joins - 1 leave - 3 + 3 re-admitted

  // Per-operation latency percentiles are part of the deterministic JSON:
  // every completed op (form + 5 rekeys) is sampled, split by kind.
  EXPECT_EQ(first.op_latencies_us.all.size(), 6U);
  EXPECT_EQ(first.op_latencies_us.join.size(), 2U);
  EXPECT_EQ(first.op_latencies_us.leave.size(), 1U);
  EXPECT_EQ(first.op_latencies_us.partition.size(), 1U);
  EXPECT_EQ(first.op_latencies_us.merge.size(), 1U);
  EXPECT_GT(percentile_us(first.op_latencies_us.all, 50.0), 0U);
  EXPECT_NE(first.to_json().find("\"latency\":{\"count\":6,"), std::string::npos);
}

TEST(Scenario, DifferentSeedDivergesEventually) {
  ScenarioConfig cfg = churn_scenario();
  const Metrics a = ScenarioRunner(cfg).run();
  cfg.seed = 78;
  const Metrics b = ScenarioRunner(cfg).run();
  // Different loss pattern => different air totals (overwhelmingly likely
  // and — because runs are deterministic — stable for these two seeds).
  EXPECT_NE(a.to_json(), b.to_json());
}

TEST(Scenario, FlatTopologyAndWaypointChurn) {
  ScenarioConfig cfg;
  cfg.name = "waypoint";
  cfg.topology = Topology::kFlat;
  cfg.initial_members = 8;
  cfg.seed = 5;
  cfg.duration_us = 60 * kUsPerSec;
  cfg.waypoint.enabled = true;
  cfg.waypoint.field_m = 600.0;
  cfg.waypoint.range_m = 220.0;
  cfg.waypoint.speed_mps = 40.0;
  cfg.waypoint.tick_us = 5 * kUsPerSec;
  const Metrics metrics = ScenarioRunner(cfg).run();
  EXPECT_TRUE(metrics.form_success);
  EXPECT_GE(metrics.members_final, 2U);
  // With range << field and fast nodes, churn must have happened (stable:
  // the run is deterministic under the fixed seed).
  EXPECT_GT(metrics.events_join + metrics.events_leave, 0U);
  // Operations started inside the window may finish past it; the clock
  // never ends before the configured duration.
  EXPECT_GE(metrics.end_time_us, cfg.duration_us);
}

TEST(Scenario, BatteryDepletionStopsLifetimeRun) {
  ScenarioConfig cfg;
  cfg.name = "lifetime";
  cfg.topology = Topology::kHierarchical;
  cfg.cluster.min_cluster = 2;
  cfg.cluster.max_cluster = 4;
  cfg.initial_members = 8;
  cfg.seed = 3;
  cfg.duration_us = 600 * kUsPerSec;
  cfg.stop_on_first_death = true;
  cfg.power.capacity_mj = 1.0;  // far below one GKA's radio cost
  cfg.power.idle_mw = 1.0;
  const Metrics metrics = ScenarioRunner(cfg).run();
  EXPECT_TRUE(metrics.form_success);
  EXPECT_GE(metrics.deaths, 1U);
  ASSERT_TRUE(metrics.first_death_us.has_value());
  EXPECT_LT(metrics.end_time_us, cfg.duration_us);
  EXPECT_GT(metrics.energy_total_mj, 0.0);
}

}  // namespace
}  // namespace idgka::sim
