// Broadcast-network simulator tests: delivery, byte accounting, loss
// injection, payload container, shared-frame fan-out and byte-level
// adversaries.
#include "net/network.h"

#include <gtest/gtest.h>

#include "wire/codec.h"

namespace idgka::net {
namespace {

Message make_msg(std::uint32_t sender, std::size_t bits = 0) {
  Message m;
  m.sender = sender;
  m.type = "t";
  m.payload.put_u32("id", sender);
  m.declared_bits = bits;
  return m;
}

TEST(Payload, TypedAccessors) {
  Payload p;
  p.put_int("z", mpint::BigInt{42});
  p.put_blob("raw", {1, 2, 3});
  p.put_u32("id", 7);
  EXPECT_EQ(p.get_int("z"), mpint::BigInt{42});
  EXPECT_EQ(p.get_blob("raw").size(), 3U);
  EXPECT_EQ(p.get_u32("id"), 7U);
  EXPECT_TRUE(p.has_int("z"));
  EXPECT_FALSE(p.has_int("nope"));
  EXPECT_TRUE(p.has_u32("id"));
  EXPECT_FALSE(p.has_u32("z"));  // per-kind lookup: "z" is an int field
  EXPECT_FALSE(p.has_blob("id"));
  EXPECT_THROW((void)p.get_int("nope"), std::out_of_range);
  EXPECT_THROW((void)p.get_blob("nope"), std::out_of_range);
  EXPECT_THROW((void)p.get_u32("nope"), std::out_of_range);
}

TEST(Payload, MissingFieldErrorsNameTheFieldAndKind) {
  const Payload p;
  const auto expect_message = [](auto fn, const std::string& needle) {
    try {
      fn();
      FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("gone"), std::string::npos) << e.what();
    }
  };
  expect_message([&] { (void)p.get_int("gone"); }, "int");
  expect_message([&] { (void)p.get_blob("gone"); }, "blob");
  expect_message([&] { (void)p.get_u32("gone"); }, "u32");
}

TEST(Payload, WireBytesAccountsAllFields) {
  Payload p;
  EXPECT_EQ(p.wire_bytes(), 0U);
  p.put_u32("id", 1);
  EXPECT_EQ(p.wire_bytes(), 5U);
  p.put_blob("b", std::vector<std::uint8_t>(10));
  EXPECT_EQ(p.wire_bytes(), 5U + 13U);
  p.put_int("z", mpint::BigInt{0xFFFF});  // 2 bytes + 3 overhead
  EXPECT_EQ(p.wire_bytes(), 5U + 13U + 5U);
}

TEST(Message, DeclaredBitsOverrideSerializedSize) {
  Message m = make_msg(1);
  EXPECT_EQ(m.accounted_bits(), m.payload.wire_bytes() * 8);
  m.declared_bits = 2048;
  EXPECT_EQ(m.accounted_bits(), 2048U);
}

TEST(Network, BroadcastReachesGroupNotSender) {
  Network net;
  for (std::uint32_t id : {1U, 2U, 3U, 4U}) net.add_node(id);
  net.broadcast(make_msg(1, 100), {1, 2, 3});
  EXPECT_EQ(net.pending(1), 0U);  // sender skipped
  EXPECT_EQ(net.pending(2), 1U);
  EXPECT_EQ(net.pending(3), 1U);
  EXPECT_EQ(net.pending(4), 0U);  // not in group
  const auto msgs = net.drain(2);
  ASSERT_EQ(msgs.size(), 1U);
  EXPECT_EQ(msgs[0].sender, 1U);
  EXPECT_EQ(net.pending(2), 0U);  // drain removes
}

TEST(Network, UnicastRequiresRecipient) {
  Network net;
  net.add_node(1);
  net.add_node(2);
  Message m = make_msg(1, 64);
  EXPECT_THROW(net.unicast(m), std::invalid_argument);
  m.recipient = 2;
  net.unicast(m);
  EXPECT_EQ(net.pending(2), 1U);
}

TEST(Network, StatsCountBitsAndMessages) {
  Network net;
  for (std::uint32_t id : {1U, 2U, 3U}) net.add_node(id);
  net.broadcast(make_msg(1, 1000), {1, 2, 3});
  net.broadcast(make_msg(2, 500), {1, 2, 3});
  EXPECT_EQ(net.stats(1).tx_bits, 1000U);
  EXPECT_EQ(net.stats(1).rx_bits, 500U);
  EXPECT_EQ(net.stats(2).tx_bits, 500U);
  EXPECT_EQ(net.stats(2).rx_bits, 1000U);
  EXPECT_EQ(net.stats(3).rx_bits, 1500U);
  EXPECT_EQ(net.stats(3).rx_messages, 2U);
  const auto total = net.total_stats();
  EXPECT_EQ(total.tx_bits, 1500U);
  EXPECT_EQ(total.rx_bits, 3000U);  // two receivers per broadcast
  net.reset_stats();
  EXPECT_EQ(net.stats(1).tx_bits, 0U);
}

TEST(Network, UnknownNodesRejected) {
  Network net;
  net.add_node(1);
  EXPECT_THROW(net.broadcast(make_msg(9), {1}), std::invalid_argument);
  EXPECT_THROW((void)net.drain(9), std::invalid_argument);
  EXPECT_THROW((void)net.stats(9), std::invalid_argument);
  EXPECT_THROW(net.broadcast(make_msg(1), {9}), std::invalid_argument);
}

TEST(Network, LossInjectionDropsDeterministically) {
  Network a(0.5, /*seed=*/42);
  Network b(0.5, /*seed=*/42);
  for (std::uint32_t id : {1U, 2U}) {
    a.add_node(id);
    b.add_node(id);
  }
  std::vector<bool> pattern_a;
  std::vector<bool> pattern_b;
  for (int i = 0; i < 100; ++i) {
    a.broadcast(make_msg(1, 8), {1, 2});
    b.broadcast(make_msg(1, 8), {1, 2});
    pattern_a.push_back(a.pending(2) > 0);
    pattern_b.push_back(b.pending(2) > 0);
    (void)a.drain(2);
    (void)b.drain(2);
  }
  EXPECT_EQ(pattern_a, pattern_b);  // same seed, same drops
  EXPECT_GT(a.dropped(), 20U);      // ~50 expected
  EXPECT_LT(a.dropped(), 80U);
  // Receiver is not charged for dropped frames, but they are counted.
  EXPECT_EQ(a.stats(2).rx_messages + a.dropped(), 100U);
  EXPECT_EQ(a.stats(2).dropped_messages, a.dropped());
  EXPECT_EQ(a.total_stats().dropped_messages, a.dropped());
}

TEST(Network, BroadcastSkipsSenderInGroup) {
  // Regression: a sender listed in its own receiver group is skipped — it
  // is charged tx exactly once and never receives or pays rx for its own
  // frame, with or without loss injection.
  Network net(0.5, /*seed=*/7);
  net.add_node(1);
  net.add_node(2);
  for (int i = 0; i < 50; ++i) net.broadcast(make_msg(1, 8), {1, 2});
  EXPECT_EQ(net.pending(1), 0U);
  EXPECT_EQ(net.stats(1).tx_messages, 50U);
  EXPECT_EQ(net.stats(1).rx_messages, 0U);
  EXPECT_EQ(net.stats(1).rx_bits, 0U);
  EXPECT_EQ(net.stats(1).dropped_messages, 0U);  // no copy ever addressed to 1
}

TEST(Network, UnknownReceiverAlwaysThrowsUnderLoss) {
  // Regression: the unknown-recipient check must not depend on the loss
  // draw — every attempt throws, not just the delivered fraction.
  Network net(0.9, /*seed=*/3);
  net.add_node(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_THROW(net.broadcast(make_msg(1, 8), {9}), std::invalid_argument);
  }
}

TEST(Network, DropObserverSeesEveryLoss) {
  Network net(0.5, /*seed=*/11);
  net.add_node(1);
  net.add_node(2);
  std::uint64_t observed = 0;
  std::uint64_t observed_bits = 0;
  net.set_drop_observer([&](const wire::Frame& f, std::uint32_t to) {
    ++observed;
    observed_bits += f.accounted_bits();
    EXPECT_EQ(to, 2U);
  });
  for (int i = 0; i < 100; ++i) net.broadcast(make_msg(1, 8), {2});
  EXPECT_GT(observed, 0U);
  EXPECT_EQ(observed, net.dropped());
  EXPECT_EQ(observed_bits, net.dropped() * 8);
}

TEST(Network, TransportInterceptsAndDepositDelivers) {
  Network net;
  net.add_node(1);
  net.add_node(2);
  std::vector<std::pair<wire::Frame, std::uint32_t>> in_flight;
  net.set_transport(
      [&](const wire::Frame& f, std::uint32_t to) { in_flight.emplace_back(f, to); });

  net.broadcast(make_msg(1, 64), {2});
  EXPECT_EQ(net.pending(2), 0U);  // intercepted, not delivered
  EXPECT_EQ(net.stats(1).tx_bits, 64U);  // sender charged at hand-off
  ASSERT_EQ(in_flight.size(), 1U);
  EXPECT_EQ(in_flight[0].first.sender(), 1U);

  net.deposit(in_flight[0].first, in_flight[0].second);
  EXPECT_EQ(net.pending(2), 1U);
  EXPECT_EQ(net.stats(2).rx_bits, 64U);
  const auto msgs = net.drain(2);
  ASSERT_EQ(msgs.size(), 1U);  // deposited frame decodes at the receiver
  EXPECT_EQ(msgs[0].sender, 1U);
  EXPECT_EQ(msgs[0].payload.get_u32("id"), 1U);

  // A receiver that departed while the copy was in flight is a drop, not
  // an error.
  net.broadcast(make_msg(1, 64), {2});
  net.remove_node(2);
  ASSERT_EQ(in_flight.size(), 2U);
  net.deposit(in_flight[1].first, in_flight[1].second);
  EXPECT_EQ(net.dropped(), 1U);
}

TEST(Network, BroadcastSharesOneFrameAcrossReceiversAndEncodedBits) {
  // The tentpole invariant: one encode per broadcast, every in-flight copy
  // an O(1) reference to the same buffer.
  Network net;
  for (std::uint32_t id = 1; id <= 5; ++id) net.add_node(id);
  std::vector<wire::Frame> copies;
  net.set_transport([&](const wire::Frame& f, std::uint32_t) { copies.push_back(f); });
  wire::Frame sniffed;
  net.set_frame_sniffer([&](const wire::Frame& f) { sniffed = f; });

  Message m = make_msg(1);
  m.payload.put_int("z", mpint::BigInt::from_hex("deadbeefcafef00d1234"));
  net.broadcast(m, {1, 2, 3, 4, 5});
  ASSERT_EQ(copies.size(), 4U);
  for (const wire::Frame& f : copies) {
    EXPECT_EQ(f.data(), copies[0].data());  // same buffer, not a copy
  }
  EXPECT_EQ(sniffed.data(), copies[0].data());
  EXPECT_GE(copies[0].use_count(), 5L);

  // Codec-true accounting alongside the paper model.
  EXPECT_EQ(net.stats(1).tx_encoded_bits, copies[0].size_bits());
  EXPECT_EQ(net.stats(1).tx_bits, m.accounted_bits());
  net.deposit(copies[0], 2);
  EXPECT_EQ(net.stats(2).rx_encoded_bits, copies[0].size_bits());
}

TEST(Network, FrameTamperRxChargedFromOriginalFrame) {
  // Regression (and byte-level extension) of the tamper accounting rule: a
  // hook that rewrites — or truncates — the copy still charges rx from the
  // frame as transmitted.
  Network net;
  net.add_node(1);
  net.add_node(2);
  net.add_node(3);
  net.set_frame_tamper_hook([](std::vector<std::uint8_t>& bytes, std::uint32_t to) {
    if (to == 2) bytes.resize(bytes.size() / 2);  // truncation attack on node 2
    return true;
  });
  Message m = make_msg(1, /*bits=*/1000);
  m.payload.put_int("z", mpint::BigInt::from_hex("112233445566778899aabbccddeeff"));
  net.broadcast(m, {2, 3});

  // Both receivers paid rx for the full original frame...
  EXPECT_EQ(net.stats(2).rx_bits, 1000U);
  EXPECT_EQ(net.stats(3).rx_bits, 1000U);
  EXPECT_EQ(net.stats(2).rx_encoded_bits, net.stats(3).rx_encoded_bits);

  // ...but the truncated copy fails the strict decode and is discarded.
  EXPECT_TRUE(net.drain(2).empty());
  EXPECT_EQ(net.stats(2).corrupted_frames, 1U);
  EXPECT_EQ(net.corrupted(), 1U);
  const auto intact = net.drain(3);
  ASSERT_EQ(intact.size(), 1U);
  EXPECT_EQ(intact[0].payload.get_int("z"),
            mpint::BigInt::from_hex("112233445566778899aabbccddeeff"));
  EXPECT_EQ(net.stats(3).corrupted_frames, 0U);
}

TEST(Network, TypedTamperRxChargedFromOriginalFrame) {
  // Regression: the typed (decode -> mutate -> re-encode) adapter also pins
  // rx accounting to the original frame, even when the mutation changes the
  // encoded size.
  Network net;
  net.add_node(1);
  net.add_node(2);
  net.set_tamper_hook([](Message& msg, std::uint32_t) {
    net::Payload fat;
    fat.put_u32("id", msg.payload.get_u32("id"));
    fat.put_blob("padding", std::vector<std::uint8_t>(512, 0xAB));  // grows the frame
    msg.payload = fat;
    return true;
  });
  net.broadcast(make_msg(1, /*bits=*/96), {2});
  EXPECT_EQ(net.stats(2).rx_bits, 96U);
  const std::uint64_t original_encoded = net.stats(1).tx_encoded_bits;
  EXPECT_EQ(net.stats(2).rx_encoded_bits, original_encoded);  // not the fat rewrite
  const auto msgs = net.drain(2);
  ASSERT_EQ(msgs.size(), 1U);  // mutated copy still decodes
  EXPECT_EQ(msgs[0].payload.get_blob("padding").size(), 512U);
}

TEST(Network, FrameTamperBitFlipDetectedAtDrain) {
  // Flipping one payload byte keeps the frame structurally valid only if
  // it misses every length field; flipping a length byte must be caught.
  // Either way the receiver never sees a silently-wrong message when the
  // flip lands in the frame structure.
  Network net;
  net.add_node(1);
  net.add_node(2);
  net.set_frame_tamper_hook([](std::vector<std::uint8_t>& bytes, std::uint32_t) {
    bytes[0] ^= 0xFF;  // destroy the magic byte
    return true;
  });
  net.broadcast(make_msg(1, 8), {2});
  EXPECT_EQ(net.pending(2), 1U);  // received...
  EXPECT_TRUE(net.drain(2).empty());  // ...discarded by the strict decoder
  EXPECT_EQ(net.stats(2).corrupted_frames, 1U);
}

TEST(Network, DrainFramesReturnsRawBytes) {
  Network net;
  net.add_node(1);
  net.add_node(2);
  net.broadcast(make_msg(1, 64), {2});
  auto frames = net.drain_frames(2);
  ASSERT_EQ(frames.size(), 1U);
  EXPECT_EQ(net.pending(2), 0U);
  const Message m = wire::decode(frames[0]);
  EXPECT_EQ(m.sender, 1U);
  EXPECT_EQ(m.declared_bits, 64U);
  EXPECT_THROW((void)net.drain_frames(9), std::invalid_argument);
}

TEST(Network, RoundBarrierAndRetryCapHooks) {
  Network net;
  net.await_delivery();  // no barrier installed: no-op
  int barrier_calls = 0;
  net.set_round_barrier([&] { ++barrier_calls; });
  net.await_delivery();
  EXPECT_EQ(barrier_calls, 1);
  EXPECT_FALSE(net.retry_cap().has_value());
  net.set_retry_cap(3);
  EXPECT_EQ(net.retry_cap().value(), 3);
}

TEST(Network, RejectsInvalidLossRate) {
  EXPECT_THROW(Network(-0.1), std::invalid_argument);
  EXPECT_THROW(Network(1.0), std::invalid_argument);
}

TEST(Network, RemoveNodeDropsInboxAndStats) {
  Network net;
  net.add_node(1);
  net.add_node(2);
  net.add_node(3);
  net.broadcast(make_msg(1, 8), {1, 2, 3});
  ASSERT_EQ(net.pending(2), 1U);

  net.remove_node(2);
  EXPECT_FALSE(net.has_node(2));
  EXPECT_EQ(net.node_count(), 2U);
  EXPECT_EQ(net.pending(2), 0U);
  EXPECT_THROW((void)net.stats(2), std::invalid_argument);
  // Departed members no longer count toward the totals...
  EXPECT_EQ(net.total_stats().rx_messages, 1U);
  // ...and broadcasting to a removed recipient is an error.
  EXPECT_THROW(net.broadcast(make_msg(1, 8), {2, 3}), std::invalid_argument);
  // Removing an unknown node is a no-op; re-adding starts fresh.
  net.remove_node(99);
  net.add_node(2);
  EXPECT_EQ(net.stats(2).rx_messages, 0U);
}

}  // namespace
}  // namespace idgka::net
