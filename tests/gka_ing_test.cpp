// ING (Ingemarsson et al. 1982) extension-baseline tests.
#include <gtest/gtest.h>

#include "gka/ing.h"
#include "gka/session.h"

namespace idgka::gka {
namespace {

Authority& test_authority() {
  static Authority authority(SecurityProfile::kTest, /*seed=*/777);
  return authority;
}

std::vector<MemberCtx> make_members(std::size_t n, std::uint64_t seed) {
  std::vector<MemberCtx> members;
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back(
        make_member(test_authority().enroll(3000 + static_cast<std::uint32_t>(i)), seed));
  }
  return members;
}

class IngTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IngTest, AgreesOnProductKey) {
  const std::size_t n = GetParam();
  auto members = make_members(n, 10 + n);
  net::Network network;
  for (const auto& m : members) network.add_node(m.cred.id);

  const RunResult result = run_ing(test_authority().params(), members, network);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, static_cast<int>(n - 1));

  // Oracle: K = g^{prod r_i mod q}.
  const SystemParams& params = test_authority().params();
  BigInt exp{1};
  for (const auto& m : members) exp = mpint::mod_mul(exp, m.r, params.grp.q);
  const BigInt oracle = params.gpow(exp);
  for (const auto& m : members) EXPECT_EQ(m.key, oracle);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IngTest, ::testing::Values(2, 3, 4, 7, 10));

TEST(IngCounts, MatchFormulaLedger) {
  const std::size_t n = 6;
  auto members = make_members(n, 55);
  net::Network network;
  for (const auto& m : members) network.add_node(m.cred.id);
  ASSERT_TRUE(run_ing(test_authority().params(), members, network).success);

  // Traffic is tracked by the network (GroupSession moves it into ledgers);
  // op counts live in the member ledgers directly.
  const energy::Ledger want = ing_ledger(n);
  for (const auto& m : members) {
    EXPECT_EQ(m.ledger.count(energy::Op::kModExp), want.count(energy::Op::kModExp));
    const auto& stats = network.stats(m.cred.id);
    EXPECT_EQ(stats.tx_messages, want.tx_messages);
    EXPECT_EQ(stats.rx_messages, want.rx_messages);
  }
}

TEST(IngCounts, RoundsScaleLinearlyUnlikeBd) {
  // The structural contrast the paper's related-work section draws: ING
  // needs n-1 rounds where BD-family protocols need 2.
  auto members = make_members(9, 77);
  net::Network network;
  for (const auto& m : members) network.add_node(m.cred.id);
  const RunResult r = run_ing(test_authority().params(), members, network);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.rounds, 8);
}

TEST(IngUnderLoss, RetransmissionRecovers) {
  auto members = make_members(5, 88);
  net::Network network(0.1, 42);
  for (const auto& m : members) network.add_node(m.cred.id);
  const RunResult r = run_ing(test_authority().params(), members, network);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.retransmissions, 0);
}

}  // namespace
}  // namespace idgka::gka
