// DSA / ECDSA / SOK signature baselines + certificate infrastructure tests.
#include <gtest/gtest.h>

#include "hash/hmac_drbg.h"
#include "pki/certificate.h"
#include "sig/dsa.h"
#include "sig/ecdsa.h"
#include "sig/sok.h"

namespace idgka::sig {
namespace {

std::span<const std::uint8_t> bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ---------------------------------------------------------------------------
// DSA
// ---------------------------------------------------------------------------

class DsaFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hash::HmacDrbg rng(2001, "dsa-params");
    params_ = new DsaParams(dsa_generate_params(rng, 512, 160, 16));
  }
  static void TearDownTestSuite() {
    delete params_;
    params_ = nullptr;
  }
  static DsaParams* params_;
};

DsaParams* DsaFixture::params_ = nullptr;

TEST_F(DsaFixture, SignVerifyRoundTrip) {
  hash::HmacDrbg rng(1, "dsa");
  const auto kp = dsa_generate_keypair(*params_, rng);
  const auto sig = dsa_sign(*params_, kp, bytes("attack at dawn"), rng);
  EXPECT_TRUE(dsa_verify(*params_, kp.y, bytes("attack at dawn"), sig));
}

TEST_F(DsaFixture, RejectsWrongMessageKeyAndTamper) {
  hash::HmacDrbg rng(2, "dsa");
  const auto kp = dsa_generate_keypair(*params_, rng);
  const auto kp2 = dsa_generate_keypair(*params_, rng);
  const auto sig = dsa_sign(*params_, kp, bytes("m1"), rng);
  EXPECT_FALSE(dsa_verify(*params_, kp.y, bytes("m2"), sig));
  EXPECT_FALSE(dsa_verify(*params_, kp2.y, bytes("m1"), sig));
  auto bad = sig;
  bad.r = (bad.r + BigInt{1}).mod(params_->q);
  EXPECT_FALSE(dsa_verify(*params_, kp.y, bytes("m1"), bad));
  bad = sig;
  bad.s = BigInt{};
  EXPECT_FALSE(dsa_verify(*params_, kp.y, bytes("m1"), bad));
  bad = sig;
  bad.r = params_->q + BigInt{3};
  EXPECT_FALSE(dsa_verify(*params_, kp.y, bytes("m1"), bad));
}

TEST_F(DsaFixture, SignatureSize) {
  EXPECT_EQ(dsa_signature_bits(*params_), 320U);
}

TEST_F(DsaFixture, DistinctSignaturesPerCall) {
  hash::HmacDrbg rng(3, "dsa");
  const auto kp = dsa_generate_keypair(*params_, rng);
  const auto s1 = dsa_sign(*params_, kp, bytes("m"), rng);
  const auto s2 = dsa_sign(*params_, kp, bytes("m"), rng);
  EXPECT_NE(s1.r, s2.r);  // fresh nonce per signature
  EXPECT_TRUE(dsa_verify(*params_, kp.y, bytes("m"), s1));
  EXPECT_TRUE(dsa_verify(*params_, kp.y, bytes("m"), s2));
}

// ---------------------------------------------------------------------------
// DSA batch verification (screening)
// ---------------------------------------------------------------------------

struct DsaBatch {
  std::vector<BigInt> ys;
  std::vector<std::vector<std::uint8_t>> messages;
  std::vector<DsaCommittedSignature> sigs;
};

// n distinct signers, each committing to one distinct message.
DsaBatch make_batch(const DsaParams& params, const mpint::ModContext& ctx_p,
                    std::size_t n, std::uint64_t seed) {
  hash::HmacDrbg rng(seed, "dsa-batch");
  DsaBatch b;
  for (std::size_t i = 0; i < n; ++i) {
    const auto kp = dsa_generate_keypair(params, ctx_p, rng);
    std::vector<std::uint8_t> msg{static_cast<std::uint8_t>(i), 0x42,
                                  static_cast<std::uint8_t>(seed & 0xff)};
    b.sigs.push_back(dsa_sign_committed(params, ctx_p, kp, msg, rng));
    b.ys.push_back(kp.y);
    b.messages.push_back(std::move(msg));
  }
  return b;
}

TEST_F(DsaFixture, BatchVerifyAcceptsAllValid) {
  const mpint::ModContext ctx(params_->p);
  for (const std::size_t n : {1U, 2U, 8U}) {
    const auto b = make_batch(*params_, ctx, n, 100 + n);
    EXPECT_TRUE(dsa_batch_verify(*params_, ctx, b.ys, b.messages, b.sigs))
        << "batch of " << n;
  }
}

TEST_F(DsaFixture, BatchVerifyMatchesIndividualVerdicts) {
  const mpint::ModContext ctx(params_->p);
  const auto b = make_batch(*params_, ctx, 5, 200);
  for (std::size_t i = 0; i < b.sigs.size(); ++i) {
    EXPECT_TRUE(dsa_verify(*params_, ctx, b.ys[i], b.messages[i], b.sigs[i].sig));
  }
  EXPECT_TRUE(dsa_batch_verify(*params_, ctx, b.ys, b.messages, b.sigs));
}

TEST_F(DsaFixture, BatchVerifyRejectsAnySingleForgery) {
  const mpint::ModContext ctx(params_->p);
  const std::size_t n = 6;
  // Each position in turn carries one forged element; the rest stay valid.
  for (std::size_t i = 0; i < n; ++i) {
    auto b = make_batch(*params_, ctx, n, 300);
    b.sigs[i].sig.s = (b.sigs[i].sig.s + BigInt{1}).mod(params_->q);
    EXPECT_FALSE(dsa_batch_verify(*params_, ctx, b.ys, b.messages, b.sigs))
        << "tampered s at " << i;
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto b = make_batch(*params_, ctx, n, 301);
    b.messages[i].push_back(0xFF);
    EXPECT_FALSE(dsa_batch_verify(*params_, ctx, b.ys, b.messages, b.sigs))
        << "tampered message at " << i;
  }
}

TEST_F(DsaFixture, BatchVerifyBindsCommitmentToR) {
  const mpint::ModContext ctx(params_->p);
  auto b = make_batch(*params_, ctx, 4, 400);
  // A commitment inconsistent with sig.r must fail the r == R mod q binding
  // even though r and s still verify individually.
  b.sigs[2].commitment = ctx.mul(b.sigs[2].commitment, params_->g);
  EXPECT_FALSE(dsa_batch_verify(*params_, ctx, b.ys, b.messages, b.sigs));
}

TEST_F(DsaFixture, BatchVerifyRejectsRangeViolations) {
  const mpint::ModContext ctx(params_->p);
  auto b = make_batch(*params_, ctx, 3, 500);
  b.sigs[0].sig.r = BigInt{};  // r = 0 out of [1, q)
  EXPECT_FALSE(dsa_batch_verify(*params_, ctx, b.ys, b.messages, b.sigs));
  b = make_batch(*params_, ctx, 3, 500);
  b.sigs[1].sig.s = params_->q;  // s = q out of [1, q)
  EXPECT_FALSE(dsa_batch_verify(*params_, ctx, b.ys, b.messages, b.sigs));
}

TEST_F(DsaFixture, BatchVerifyRejectsEmptyAndMismatchedSpans) {
  const mpint::ModContext ctx(params_->p);
  const auto b = make_batch(*params_, ctx, 2, 600);
  EXPECT_FALSE(dsa_batch_verify(*params_, ctx, {}, {}, {}));
  EXPECT_FALSE(dsa_batch_verify(*params_, ctx, std::span{b.ys}.first(1), b.messages, b.sigs));
  EXPECT_FALSE(dsa_batch_verify(*params_, ctx, b.ys, std::span{b.messages}.first(1), b.sigs));
}

// ---------------------------------------------------------------------------
// ECDSA
// ---------------------------------------------------------------------------

TEST(Ecdsa, SignVerifyOnSecp160r1) {
  hash::HmacDrbg rng(4, "ecdsa");
  const auto& curve = ec::secp160r1();
  const auto kp = ecdsa_generate_keypair(curve, rng);
  EXPECT_TRUE(curve.is_on_curve(kp.q));
  const auto sig = ecdsa_sign(curve, kp, bytes("wireless"), rng);
  EXPECT_TRUE(ecdsa_verify(curve, kp.q, bytes("wireless"), sig));
  EXPECT_FALSE(ecdsa_verify(curve, kp.q, bytes("wired"), sig));
}

TEST(Ecdsa, SignVerifyOnP256) {
  hash::HmacDrbg rng(5, "ecdsa");
  const auto& curve = ec::p256();
  const auto kp = ecdsa_generate_keypair(curve, rng);
  const auto sig = ecdsa_sign(curve, kp, bytes("modern"), rng);
  EXPECT_TRUE(ecdsa_verify(curve, kp.q, bytes("modern"), sig));
}

TEST(Ecdsa, RejectsTamperAndBadInputs) {
  hash::HmacDrbg rng(6, "ecdsa");
  const auto& curve = ec::secp160r1();
  const auto kp = ecdsa_generate_keypair(curve, rng);
  const auto sig = ecdsa_sign(curve, kp, bytes("m"), rng);
  auto bad = sig;
  bad.s = (bad.s + BigInt{1}).mod(curve.order());
  EXPECT_FALSE(ecdsa_verify(curve, kp.q, bytes("m"), bad));
  bad = sig;
  bad.r = BigInt{};
  EXPECT_FALSE(ecdsa_verify(curve, kp.q, bytes("m"), bad));
  // Public key off the curve must be rejected outright.
  ec::Point off = kp.q;
  off.x = (off.x + BigInt{1}).mod(curve.p());
  EXPECT_FALSE(ecdsa_verify(curve, off, bytes("m"), sig));
  EXPECT_FALSE(ecdsa_verify(curve, ec::Point::at_infinity(), bytes("m"), sig));
}

TEST(Ecdsa, SignatureSize) {
  EXPECT_EQ(ecdsa_signature_bits(ec::secp160r1()), 322U);  // |n| = 161 bits
}

// ---------------------------------------------------------------------------
// SOK (pairing-based ID signature)
// ---------------------------------------------------------------------------

class SokFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hash::HmacDrbg rng(3001, "sok-params");
    params_ = new mpint::SupersingularParams(
        mpint::generate_supersingular_params(rng, 256, 120, 16));
    group_ = new pairing::SsGroup(*params_);
    tate_ = new pairing::TatePairing(*group_);
    pkg_ = new SokPkg(*group_, rng);
  }
  static void TearDownTestSuite() {
    delete pkg_;
    delete tate_;
    delete group_;
    delete params_;
    pkg_ = nullptr;
    tate_ = nullptr;
    group_ = nullptr;
    params_ = nullptr;
  }
  static mpint::SupersingularParams* params_;
  static pairing::SsGroup* group_;
  static pairing::TatePairing* tate_;
  static SokPkg* pkg_;
};

mpint::SupersingularParams* SokFixture::params_ = nullptr;
pairing::SsGroup* SokFixture::group_ = nullptr;
pairing::TatePairing* SokFixture::tate_ = nullptr;
SokPkg* SokFixture::pkg_ = nullptr;

TEST_F(SokFixture, ExtractKeyLiesInSubgroup) {
  const ec::Point s_id = pkg_->extract(77);
  EXPECT_TRUE(group_->curve().is_on_curve(s_id));
  EXPECT_TRUE(group_->curve().mul(group_->q(), s_id).infinity);
}

TEST_F(SokFixture, SignVerifyRoundTrip) {
  hash::HmacDrbg rng(7, "sok");
  const std::uint32_t id = 501;
  const auto sig = sok_sign(*group_, id, pkg_->extract(id), bytes("pair me"), rng);
  EXPECT_TRUE(sok_verify(*tate_, pkg_->public_key(), id, bytes("pair me"), sig));
}

TEST_F(SokFixture, RejectsWrongMessageIdentityAndTamper) {
  hash::HmacDrbg rng(8, "sok");
  const std::uint32_t id = 502;
  const auto sig = sok_sign(*group_, id, pkg_->extract(id), bytes("m"), rng);
  EXPECT_FALSE(sok_verify(*tate_, pkg_->public_key(), id, bytes("m2"), sig));
  EXPECT_FALSE(sok_verify(*tate_, pkg_->public_key(), 503, bytes("m"), sig));
  auto bad = sig;
  bad.s2 = group_->curve().dbl(bad.s2);
  EXPECT_FALSE(sok_verify(*tate_, pkg_->public_key(), id, bytes("m"), bad));
  bad = sig;
  bad.s1 = ec::Point::at_infinity();
  EXPECT_FALSE(sok_verify(*tate_, pkg_->public_key(), id, bytes("m"), bad));
}

TEST_F(SokFixture, ImpostorKeyFails) {
  hash::HmacDrbg rng(9, "sok");
  // Holder of key for id 600 signs claiming id 601.
  const auto sig = sok_sign(*group_, 601, pkg_->extract(600), bytes("m"), rng);
  EXPECT_FALSE(sok_verify(*tate_, pkg_->public_key(), 601, bytes("m"), sig));
}

// ---------------------------------------------------------------------------
// Certificates
// ---------------------------------------------------------------------------

TEST(Certificates, EcdsaIssueVerifyRoundTrip) {
  hash::HmacDrbg rng(10, "pki");
  const auto& curve = ec::secp160r1();
  pki::CertificateAuthority ca(curve, rng);
  const auto kp = ecdsa_generate_keypair(curve, rng);
  auto cert = ca.issue(42, pki::encode_ec_public(curve, kp.q), rng);
  EXPECT_TRUE(ca.verify(cert));
  EXPECT_EQ(cert.subject_id, 42U);
  const auto decoded = pki::decode_ec_public(curve, cert.subject_public_key);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, kp.q);
}

TEST(Certificates, DsaIssueVerifyRoundTrip) {
  hash::HmacDrbg rng(11, "pki");
  const auto params = dsa_generate_params(rng, 512, 160, 12);
  pki::CertificateAuthority ca(params, rng);
  const auto kp = dsa_generate_keypair(params, rng);
  auto cert = ca.issue(7, pki::encode_dsa_public(params, kp.y), rng);
  EXPECT_TRUE(ca.verify(cert));
  const auto decoded = pki::decode_dsa_public(params, cert.subject_public_key);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, kp.y);
}

TEST(Certificates, TamperedCertificateRejected) {
  hash::HmacDrbg rng(12, "pki");
  const auto& curve = ec::secp160r1();
  pki::CertificateAuthority ca(curve, rng);
  const auto kp = ecdsa_generate_keypair(curve, rng);
  auto cert = ca.issue(42, pki::encode_ec_public(curve, kp.q), rng);
  auto bad = cert;
  bad.subject_id = 43;  // re-bind to a different identity
  EXPECT_FALSE(ca.verify(bad));
  bad = cert;
  bad.subject_public_key[5] ^= 0x01;
  EXPECT_FALSE(ca.verify(bad));
  bad = cert;
  bad.sig_s = (bad.sig_s + BigInt{1}).mod(curve.order());
  EXPECT_FALSE(ca.verify(bad));
}

TEST(Certificates, ExpiryWindowEnforced) {
  hash::HmacDrbg rng(13, "pki");
  const auto& curve = ec::secp160r1();
  pki::CertificateAuthority ca(curve, rng);
  const auto kp = ecdsa_generate_keypair(curve, rng);
  auto cert = ca.issue(42, pki::encode_ec_public(curve, kp.q), rng, /*validity=*/100);
  EXPECT_TRUE(ca.verify(cert, cert.not_before + 50));
  EXPECT_FALSE(ca.verify(cert, cert.not_after + 1));
  EXPECT_FALSE(ca.verify(cert, cert.not_before - 1));
}

TEST(Certificates, SerialNumbersIncrease) {
  hash::HmacDrbg rng(14, "pki");
  const auto& curve = ec::secp160r1();
  pki::CertificateAuthority ca(curve, rng);
  const auto kp = ecdsa_generate_keypair(curve, rng);
  const auto c1 = ca.issue(1, pki::encode_ec_public(curve, kp.q), rng);
  const auto c2 = ca.issue(2, pki::encode_ec_public(curve, kp.q), rng);
  EXPECT_LT(c1.serial, c2.serial);
}

TEST(Certificates, WireSizeIsPlausible) {
  hash::HmacDrbg rng(15, "pki");
  const auto& curve = ec::secp160r1();
  pki::CertificateAuthority ca(curve, rng);
  const auto kp = ecdsa_generate_keypair(curve, rng);
  const auto cert = ca.issue(42, pki::encode_ec_public(curve, kp.q), rng);
  // TBS(33 fixed + 41 key) + two ~20-byte scalars: comparable to the paper's
  // 86-byte ECDSA certificate claim.
  EXPECT_GT(cert.wire_size(), 80U);
  EXPECT_LT(cert.wire_size(), 160U);
}

}  // namespace
}  // namespace idgka::sig
