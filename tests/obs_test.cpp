// Observability layer: JSON writer, metrics registry, flight recorder and
// the trace-determinism contract over a full scenario run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/scenario.h"

namespace idgka {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::JsonWriter;
using obs::Registry;

// ------------------------------------------------------------- JsonWriter

TEST(JsonWriter, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.kv("a", 1);
  w.kv("b", std::string_view("x"));
  w.key("c").begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.begin_object().kv("d", true).end_object();
  w.end_array();
  w.key("e").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":[1,2,{"d":true}],"e":null})");
}

TEST(JsonWriter, EscapingAndNumericFormats) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", std::string_view("q\"b\\s\nn\tt\rr\x01z"));
  w.kv("d", 1.2345);          // fixed %.3f
  w.kv("i", std::int64_t{-7});
  w.kv("u", ~std::uint64_t{0});
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"q\\\"b\\\\s\\nn\\tt\\rr\\u0001z\","
            "\"d\":1.234,\"i\":-7,\"u\":18446744073709551615}");
}

TEST(JsonWriter, TakeResetsTheWriter) {
  JsonWriter w;
  w.begin_object().kv("a", 1).end_object();
  EXPECT_EQ(w.take(), R"({"a":1})");
  w.begin_array().value(std::uint64_t{2}).end_array();
  EXPECT_EQ(w.take(), "[2]");
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BucketBoundaries) {
  // Bucket i holds exactly the values of bit width i.
  EXPECT_EQ(Histogram::bucket_index(0), 0U);
  EXPECT_EQ(Histogram::bucket_index(1), 1U);
  EXPECT_EQ(Histogram::bucket_index(2), 2U);
  EXPECT_EQ(Histogram::bucket_index(3), 2U);
  EXPECT_EQ(Histogram::bucket_index(4), 3U);
  EXPECT_EQ(Histogram::bucket_index(1023), 10U);
  EXPECT_EQ(Histogram::bucket_index(1024), 11U);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64U);

  EXPECT_EQ(Histogram::bucket_bounds(0), (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
  EXPECT_EQ(Histogram::bucket_bounds(1), (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(Histogram::bucket_bounds(4), (std::pair<std::uint64_t, std::uint64_t>{8, 15}));
  EXPECT_EQ(Histogram::bucket_bounds(64),
            (std::pair<std::uint64_t, std::uint64_t>{1ULL << 63, ~std::uint64_t{0}}));

  // Every bucket's own bounds index back into it.
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const auto [lo, hi] = Histogram::bucket_bounds(i);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "lo of bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(hi), i) << "hi of bucket " << i;
  }
}

TEST(Histogram, CountsSumsAndExactEndpoints) {
  Histogram h;
  EXPECT_EQ(h.percentile(50.0), 0U);  // empty
  for (std::uint64_t v : {3U, 9U, 17U, 900U, 40000U}) h.record(v);
  EXPECT_EQ(h.count(), 5U);
  EXPECT_EQ(h.sum(), 3U + 9U + 17U + 900U + 40000U);
  EXPECT_EQ(h.min(), 3U);
  EXPECT_EQ(h.max(), 40000U);
  // Endpoints are exact (clamped to the tracked min/max).
  EXPECT_EQ(h.percentile(0.0), 3U);
  EXPECT_EQ(h.percentile(100.0), 40000U);
}

TEST(Histogram, PercentileWithinOneOctave) {
  // Seeded deterministic samples; the estimate must land in the same
  // power-of-two bucket as the exact nearest-rank answer.
  Histogram h;
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t v = x % 100000;
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {10.0, 50.0, 90.0, 99.0}) {
    const std::size_t rank =
        static_cast<std::size_t>(std::ceil(q / 100.0 * samples.size())) - 1;
    const std::uint64_t exact = samples[rank];
    const std::uint64_t est = h.percentile(q);
    EXPECT_EQ(Histogram::bucket_index(est), Histogram::bucket_index(exact))
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
  h.reset();
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.min(), 0U);
  EXPECT_EQ(h.percentile(50.0), 0U);
}

// --------------------------------------------------------------- Registry

TEST(Registry, SnapshotShape) {
  Registry r;
  r.counter("z.last").add(3);
  r.counter("a.first").add(1);
  r.gauge("g").max_of(7);
  r.gauge("g").max_of(5);  // high-watermark keeps 7
  r.histogram("h").record(4);
  r.register_probe("p", [] { return std::uint64_t{42}; });
  EXPECT_EQ(r.snapshot_json(),
            "{\"counters\":{\"a.first\":1,\"z.last\":3},"
            "\"gauges\":{\"g\":7},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4,"
            "\"p50\":4,\"p90\":4,\"p99\":4}},"
            "\"probes\":{\"p\":42}}");
  // Same name -> same instrument; reset zeroes values, not identity.
  Counter& c = r.counter("a.first");
  r.reset();
  EXPECT_EQ(c.value(), 0U);
  c.add(2);
  EXPECT_EQ(r.counter("a.first").value(), 2U);
}

TEST(Registry, LabeledInstrumentsAreDistinctAndSorted) {
  Registry r;
  r.counter("net.drop", "3->7").add(2);
  r.counter("net.drop", "1->2").add(1);
  r.counter("net.drop").add(5);  // unlabeled base coexists
  r.gauge("depth", "g0").set(4);
  r.histogram("lat", "leo").record(8);
  // Same (base, label) -> same instrument.
  EXPECT_EQ(&r.counter("net.drop", "3->7"), &r.counter("net.drop", "3->7"));
  EXPECT_NE(&r.counter("net.drop", "3->7"), &r.counter("net.drop", "1->2"));
  EXPECT_EQ(r.counter("net.drop", "3->7").value(), 2U);
  // Snapshots carry the full `base{label}` names, sorted like everything
  // else (deterministic export order).
  const std::string snap = r.snapshot_json();
  const std::size_t plain = snap.find("\"net.drop\":5");
  const std::size_t l12 = snap.find("\"net.drop{1->2}\":1");
  const std::size_t l37 = snap.find("\"net.drop{3->7}\":2");
  ASSERT_NE(plain, std::string::npos) << snap;
  ASSERT_NE(l12, std::string::npos) << snap;
  ASSERT_NE(l37, std::string::npos) << snap;
  EXPECT_LT(plain, l12);
  EXPECT_LT(l12, l37);
  EXPECT_NE(snap.find("\"depth{g0}\":4"), std::string::npos) << snap;
  EXPECT_NE(snap.find("\"lat{leo}\""), std::string::npos) << snap;
}

TEST(Registry, LabelCardinalityCapCoalescesIntoOverflow) {
  Registry r;
  for (int i = 0; i < 300; ++i) {
    r.counter("burst", "label-" + std::to_string(i)).add(1);
  }
  // The family ledger admits kMaxLabelsPerFamily distinct labels; every
  // label past the cap lands in the shared overflow bucket.
  EXPECT_EQ(r.counter("burst", "overflow").value(),
            300U - Registry::kMaxLabelsPerFamily);
  EXPECT_EQ(r.counter("burst", "label-0").value(), 1U);
  // A capped family does not leak into other families.
  r.counter("other", "fresh").add(1);
  EXPECT_EQ(r.counter("other", "fresh").value(), 1U);
  EXPECT_EQ(r.counter("other", "overflow").value(), 0U);
}

TEST(Registry, SnapshotDeltaSubtraction) {
  Registry r;
  r.counter("c").add(10);
  r.counter("gone").add(3);  // unchanged between snapshots
  r.gauge("g").set(5);
  r.histogram("h").record(100);
  std::uint64_t probe_value = 7;
  r.register_probe("p", [&probe_value] { return probe_value; });

  const obs::Snapshot before = r.snapshot();
  r.counter("c").add(5);
  r.counter("fresh").add(2);
  r.gauge("g").set(9);
  r.histogram("h").record(300);
  r.histogram("h").record(500);
  probe_value = 11;
  const obs::Snapshot after = r.snapshot();

  const obs::Snapshot d = after.delta_since(before);
  // Counters/probes subtract; zero deltas are omitted so the delta lists
  // exactly what the window touched.
  EXPECT_EQ(d.counters.at("c"), 5U);
  EXPECT_EQ(d.counters.at("fresh"), 2U);
  EXPECT_FALSE(d.counters.contains("gone"));
  EXPECT_EQ(d.probes.at("p"), 4U);
  // Gauges are levels: the delta reports the later level.
  EXPECT_EQ(d.gauges.at("g"), 9);
  // Histograms subtract count/sum and keep the later summary stats.
  EXPECT_EQ(d.histograms.at("h").count, 2U);
  EXPECT_EQ(d.histograms.at("h").sum, 800U);
  EXPECT_EQ(d.histograms.at("h").max, 500U);
  // The delta serializes through the same deterministic writer.
  EXPECT_NE(d.to_json().find("\"c\":5"), std::string::npos);
}

TEST(Registry, ScopedSnapshotDeltaMeasuresOnlyItsWindow) {
  Registry r;
  r.counter("work").add(100);  // pre-existing load
  const obs::ScopedSnapshotDelta guard(r);
  r.counter("work").add(7);
  const obs::Snapshot d = guard.delta();
  EXPECT_EQ(d.counters.at("work"), 7U);
  EXPECT_EQ(guard.start().counters.at("work"), 100U);
}

#if IDGKA_OBS

// ---------------------------------------------------------- flight recorder

/// RAII: tracing on + clean recorder for a test, everything off after.
struct TraceFixture {
  TraceFixture() {
    obs::clear();
    obs::set_trace_enabled(true);
  }
  ~TraceFixture() {
    obs::set_trace_enabled(false);
    obs::set_ring_capacity(16384);
    obs::clear();
  }
};

TEST(Trace, SpanNestingOrder) {
  TraceFixture fixture;
  obs::set_thread_track("t0");
  {
    OBS_SPAN("outer", "test");
    OBS_INSTANT("mid", "test");
    { OBS_SPAN_ARG("inner", "test", 5); }
  }
  const std::string dump = obs::dump_recent(16);
  const std::size_t outer_b = dump.find("B test/outer");
  const std::size_t mid = dump.find("i test/mid");
  const std::size_t inner_b = dump.find("B test/inner");
  const std::size_t inner_e = dump.find("E test/inner");
  const std::size_t outer_e = dump.find("E test/outer");
  ASSERT_NE(outer_b, std::string::npos) << dump;
  ASSERT_NE(inner_e, std::string::npos) << dump;
  EXPECT_LT(outer_b, mid);
  EXPECT_LT(mid, inner_b);
  EXPECT_LT(inner_b, inner_e);
  EXPECT_LT(inner_e, outer_e);
  EXPECT_NE(dump.find("arg=5"), std::string::npos);
}

TEST(Trace, RingWrapKeepsLastEvents) {
  TraceFixture fixture;
  obs::set_ring_capacity(4);
  obs::clear();  // apply the capacity to this thread's next ring
  obs::set_thread_track("wrap");
  static const char* const kNames[8] = {"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"};
  for (int i = 0; i < 8; ++i) obs::emit(obs::Phase::kInstant, kNames[i], "test");
  const std::string dump = obs::dump_recent(64);
  // Flight-recorder semantics: only the newest 4 events survive the wrap.
  EXPECT_EQ(dump.find("test/e3"), std::string::npos) << dump;
  for (int i = 4; i < 8; ++i) {
    EXPECT_NE(dump.find(std::string("test/") + kNames[i]), std::string::npos) << dump;
  }
  // Oldest-first within the ring.
  EXPECT_LT(dump.find("test/e4"), dump.find("test/e7"));
}

TEST(Trace, CrossThreadTracksAreDeterministicallyOrdered) {
  TraceFixture fixture;
  // Two producer threads, each with its own named track. Registration
  // order is racy; the export must not depend on it.
  auto produce = [](const char* track, const char* name) {
    obs::set_thread_track(track);
    for (int i = 0; i < 3; ++i) obs::emit(obs::Phase::kInstant, name, "test");
  };
  std::thread a(produce, "track-a", "from-a");
  std::thread b(produce, "track-b", "from-b");
  a.join();
  b.join();
  const std::string json = obs::export_chrome_trace();
  // Deterministic tid assignment by sorted track name: track-a -> 1.
  const std::size_t meta_a = json.find(R"("args":{"name":"track-a"})");
  const std::size_t meta_b = json.find(R"("args":{"name":"track-b"})");
  ASSERT_NE(meta_a, std::string::npos) << json;
  ASSERT_NE(meta_b, std::string::npos) << json;
  EXPECT_LT(meta_a, meta_b);
  EXPECT_NE(json.find(R"("name":"from-a")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"from-b")"), std::string::npos);
}

TEST(Trace, DisabledEmitsNothing) {
  obs::clear();
  ASSERT_FALSE(obs::trace_enabled());
  OBS_INSTANT("ghost", "test");
  { OBS_SPAN("ghost-span", "test"); }
  EXPECT_EQ(obs::dump_recent(16), "");
}

// ------------------------------------------------- scenario trace contract

sim::ScenarioConfig obs_scenario() {
  using sim::kUsPerSec;
  sim::ScenarioConfig cfg;
  cfg.name = "obs-trace";
  cfg.topology = sim::Topology::kHierarchical;
  cfg.initial_members = 12;
  cfg.base_id = 100;
  cfg.seed = 4242;
  cfg.duration_us = 60 * kUsPerSec;
  cfg.driver.link = sim::LinkConfig::bursty(0.05);
  cfg.cluster.min_cluster = 3;
  cfg.cluster.max_cluster = 6;
  cfg.trace = {
      {5 * kUsPerSec, sim::TraceEvent::Kind::kJoin, {200}},
      {15 * kUsPerSec, sim::TraceEvent::Kind::kLeave, {103}},
      {30 * kUsPerSec, sim::TraceEvent::Kind::kPartition, {104, 105}},
      {45 * kUsPerSec, sim::TraceEvent::Kind::kMerge, {104, 105}},
  };
  return cfg;
}

TEST(Trace, ScenarioExportIsBitDeterministicAndSpansEveryLayer) {
  TraceFixture fixture;
  const sim::ScenarioConfig cfg = obs_scenario();

  obs::clear();
  const sim::Metrics first_metrics = sim::ScenarioRunner(cfg).run();
  const std::string first = obs::export_chrome_trace();

  obs::clear();
  const sim::Metrics second_metrics = sim::ScenarioRunner(cfg).run();
  const std::string second = obs::export_chrome_trace();

  ASSERT_TRUE(first_metrics.form_success);
  EXPECT_EQ(first_metrics.to_json(), second_metrics.to_json());
  // The whole point: with the virtual clock installed, two same-seed runs
  // export byte-identical traces.
  EXPECT_EQ(first, second);

  // Spans/instants from every instrumented layer are present.
  for (const char* cat : {"\"cat\":\"wire\"", "\"cat\":\"net\"", "\"cat\":\"engine\"",
                          "\"cat\":\"gka\"", "\"cat\":\"cluster\"", "\"cat\":\"sim\""}) {
    EXPECT_NE(first.find(cat), std::string::npos) << cat;
  }
  for (const char* name :
       {"sim.scenario", "sim.op.form", "cluster.rekey", "gka.round", "net.broadcast",
        "net.deposit", "engine.run", "wire.encode"}) {
    EXPECT_NE(first.find(std::string("\"name\":\"") + name + '"'), std::string::npos)
        << name;
  }
  // Valid Chrome trace-event envelope.
  EXPECT_EQ(first.substr(0, 16), "{\"traceEvents\":[");
  EXPECT_NE(first.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Registry, AbsorbsLayerCountersDuringAScenario) {
  Registry& r = Registry::global();
  r.reset();
  const sim::Metrics metrics = sim::ScenarioRunner(obs_scenario()).run();
  ASSERT_TRUE(metrics.form_success);
  EXPECT_GT(r.counter("wire.encodes").value(), 0U);
  EXPECT_GT(r.counter("wire.decodes").value(), 0U);
  EXPECT_GT(r.counter("net.tx_frames").value(), 0U);
  EXPECT_GT(r.counter("net.rx_copies").value(), 0U);
  EXPECT_GT(r.counter("engine.resumes").value(), 0U);
  EXPECT_GT(r.counter("engine.rounds").value(), 0U);
  EXPECT_GT(r.counter("cluster.rekeys").value(), 0U);
  EXPECT_GT(r.histogram("wire.frame_bytes").count(), 0U);
  // The crypto probes surface mpint::op_counts in the snapshot.
  EXPECT_NE(r.snapshot_json().find("\"crypto.exps\":"), std::string::npos);
  const std::string snap = r.snapshot_json();
  const std::size_t pos = snap.find("\"crypto.exps\":");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE(snap[pos + 14], '0');  // prime generation alone costs exps
}

TEST(Registry, LabeledDimensionsAppearDuringAScenario) {
  Registry& r = Registry::global();
  r.reset();
  const sim::Metrics metrics = sim::ScenarioRunner(obs_scenario()).run();
  ASSERT_TRUE(metrics.form_success);
  const std::string snap = r.snapshot_json();
  // ScenarioRunner labels the hierarchical session with the scenario name,
  // so the cluster counters carry a per-group dimension...
  EXPECT_NE(snap.find("\"cluster.rekeys{obs-trace}\":"), std::string::npos) << snap;
  // ...the engine labels resumes per run...
  EXPECT_NE(snap.find("\"engine.resumes{"), std::string::npos) << snap;
  // ...and the bursty link produces per-link drop counters.
  EXPECT_NE(snap.find("\"net.drop{"), std::string::npos) << snap;
}

// The crash-dump contract: an uncaught exception reaches the terminate
// handler installed by install_crash_dump(), which prints the flight
// recorder to stderr AND — when IDGKA_OBS_CRASH_JSON names a file — leaves
// the same events behind as Chrome trace JSON. The child dies; the parent
// validates the artifact parses and holds the pre-crash events.

// Thrown from a noexcept frame so the exception is genuinely uncaught:
// gtest wraps the death statement in a try/catch that would otherwise
// intercept it before std::terminate.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wterminate"
[[noreturn]] void throw_uncaught() noexcept { throw std::runtime_error("uncaught on purpose"); }
#pragma GCC diagnostic pop

TEST(TraceCrashDumpDeathTest, UncaughtExceptionDumpsStderrBannerAndValidJson) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = testing::TempDir() + "obs_crash_dump.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("IDGKA_OBS_CRASH_JSON", path.c_str(), 1), 0);
  EXPECT_DEATH(
      {
        obs::clear();
        obs::set_trace_enabled(true);  // installs the crash-dump handlers
        obs::set_thread_track("doomed");
        OBS_INSTANT("crash.prelude", "test");
        { OBS_SPAN("crash.scope", "test"); }
        throw_uncaught();
      },
      "obs flight recorder");
  unsetenv("IDGKA_OBS_CRASH_JSON");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "crash handler did not write " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NO_THROW((void)obs::json::parse(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("crash.prelude"), std::string::npos);
  EXPECT_NE(text.find("crash.scope"), std::string::npos);
}

#endif  // IDGKA_OBS

}  // namespace
}  // namespace idgka
