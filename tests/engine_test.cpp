// Event-driven protocol engine tests: RoundTask state machine, Executor
// run multiplexing (timer + frame-arrival resumption, determinism across
// worker counts), the engine-hosted driver, and the multi-group scenario
// runner (M concurrent clusters on one clock).
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "engine/executor.h"
#include "engine/round_task.h"
#include "gka/exchange.h"
#include "gka/session.h"
#include "sim/driver.h"
#include "sim/scenario.h"

namespace idgka {
namespace {

using engine::Executor;
using engine::ProtocolRun;
using engine::RoundTask;

net::Message msg_from(std::uint32_t sender, const char* type = "round") {
  net::Message m;
  m.sender = sender;
  m.type = type;
  m.payload.put_u32("id", sender);
  m.declared_bits = 64;
  return m;
}

std::vector<std::uint32_t> add_nodes(net::Network& net, std::size_t n) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 1; i <= n; ++i) {
    net.add_node(i);
    ids.push_back(i);
  }
  return ids;
}

// ----------------------------------------------------------------- RoundTask

TEST(RoundTask, LosslessRoundWalksTransmitAwaitDone) {
  net::Network net;
  const auto ids = add_nodes(net, 4);
  std::vector<engine::RoundSend> sends;
  for (const auto id : ids) sends.push_back({msg_from(id), ids});

  RoundTask task(net, sends, ids, /*retries=*/4);
  ASSERT_EQ(task.state(), RoundTask::State::kTransmit);
  ASSERT_EQ(task.step(), RoundTask::State::kAwait);  // everything on the air
  EXPECT_EQ(task.attempts(), 1);
  // Lockstep network: delivery already happened; draining completes.
  ASSERT_EQ(task.step(), RoundTask::State::kDone);
  EXPECT_TRUE(task.done());

  const engine::RoundResult result = task.take_result();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.retransmissions, 0);
  for (const auto rx : ids) EXPECT_EQ(result.collected.at(rx).size(), 3U);
}

TEST(RoundTask, NothingToSendCompletesImmediately) {
  net::Network net;
  const auto ids = add_nodes(net, 2);
  const std::vector<engine::RoundSend> sends;  // empty round
  RoundTask task(net, sends, ids, 4);
  EXPECT_EQ(task.step(), RoundTask::State::kDone);
  EXPECT_TRUE(task.take_result().complete);
}

TEST(RoundTask, LossWalksThroughRetransmitState) {
  net::Network net(/*loss_rate=*/0.4, /*seed=*/7);
  const auto ids = add_nodes(net, 5);
  std::vector<engine::RoundSend> sends;
  for (const auto id : ids) sends.push_back({msg_from(id), ids});

  RoundTask task(net, sends, ids, /*retries=*/64);
  bool saw_retransmit = false;
  int steps = 0;
  while (!task.done()) {
    const RoundTask::State state = task.step();
    saw_retransmit = saw_retransmit || state == RoundTask::State::kRetransmit;
    ASSERT_LT(++steps, 1000);
  }
  EXPECT_TRUE(saw_retransmit);
  const engine::RoundResult result = task.take_result();
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.retransmissions, 0);
  EXPECT_GT(task.attempts(), 1);
}

TEST(RoundTask, ShimMatchesDirectStateMachine) {
  // gka::exchange_round is a shim over RoundTask: identically-seeded
  // networks must yield identical collections and retransmission counts.
  auto run_direct = [] {
    net::Network net(0.3, 11);
    const auto ids = add_nodes(net, 4);
    std::vector<engine::RoundSend> sends;
    for (const auto id : ids) sends.push_back({msg_from(id), ids});
    RoundTask task(net, sends, ids, 64);
    while (!task.done()) task.step();
    return task.take_result();
  };
  auto run_shim = [] {
    net::Network net(0.3, 11);
    const auto ids = add_nodes(net, 4);
    std::vector<gka::RoundSend> sends;
    for (const auto id : ids) sends.push_back({msg_from(id), ids});
    return gka::exchange_round(net, sends, ids);
  };
  const engine::RoundResult a = run_direct();
  const gka::RoundResult b = run_shim();
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  ASSERT_EQ(a.collected.size(), b.collected.size());
  for (const auto& [rx, by_sender] : a.collected) {
    ASSERT_TRUE(b.collected.contains(rx));
    EXPECT_EQ(by_sender.size(), b.collected.at(rx).size());
  }
}

// ------------------------------------------------------------------ Executor

TEST(Executor, RunsResumeInVirtualTimeOrder) {
  sim::Scheduler scheduler;
  Executor executor(scheduler);
  std::mutex record_mutex;
  std::vector<std::pair<int, sim::SimTime>> wakes;

  // Distinct wake timestamps: cross-run order within one timestamp is a
  // parallel batch and deliberately unordered.
  for (int i = 0; i < 3; ++i) {
    executor.submit("run" + std::to_string(i), [&, i](ProtocolRun& run) {
      run.sleep_until(100 * (i + 1));
      {
        const std::lock_guard<std::mutex> lock(record_mutex);
        wakes.emplace_back(i, run.now());
      }
      run.sleep_until(1000 - 100 * i);
      const std::lock_guard<std::mutex> lock(record_mutex);
      wakes.emplace_back(i, run.now());
    });
  }
  executor.drain();

  ASSERT_EQ(wakes.size(), 6U);
  const std::vector<std::pair<int, sim::SimTime>> expected{
      {0, 100}, {1, 200}, {2, 300}, {2, 800}, {1, 900}, {0, 1000}};
  EXPECT_EQ(wakes, expected);
  EXPECT_EQ(scheduler.now(), 1000U);
  EXPECT_EQ(executor.resumes(), 9U);  // 3 starts + 6 timer wakes
}

TEST(Executor, SameInstantRunsResumeAsOneBatch) {
  sim::Scheduler scheduler;
  Executor executor(scheduler);
  for (int i = 0; i < 4; ++i) {
    executor.submit("batch", [](ProtocolRun& run) { run.sleep_until(500); });
  }
  executor.drain();
  // All four submitted runs start together, then wake together at t=500.
  EXPECT_EQ(executor.max_batch(), 4U);
  EXPECT_EQ(executor.run_count(), 4U);
}

TEST(Executor, PostedEventsLandBeforeTimerWake) {
  sim::Scheduler scheduler;
  Executor executor(scheduler);
  std::vector<int> order;
  executor.submit("waiter", [&](ProtocolRun& run) {
    executor.post(50, [&] { order.push_back(1); }, nullptr);
    run.sleep_until(100);
    order.push_back(2);
  });
  executor.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Executor, ArrivalSensitiveAwaitResumesWhenChannelQuiet) {
  sim::Scheduler scheduler;
  Executor executor(scheduler);
  sim::SimTime resumed_at = 0;
  executor.submit("arrival", [&](ProtocolRun& run) {
    // Two in-flight "copies"; the await must resume at the later arrival
    // (t=70), not at the full timeout (t=10'000).
    executor.post(30, [] {}, ProtocolRun::current());
    executor.post(70, [] {}, ProtocolRun::current());
    run.await_round(10'000, /*resume_on_arrival=*/true);
    resumed_at = run.now();
  });
  executor.drain();
  EXPECT_EQ(resumed_at, 70U);
  EXPECT_EQ(scheduler.now(), 70U);

  // Quiet channel: an arrival-sensitive await with nothing in flight
  // returns immediately without burning the timeout.
  sim::SimTime quiet_at = 123;
  executor.submit("quiet", [&](ProtocolRun& run) {
    run.await_round(10'000, /*resume_on_arrival=*/true);
    quiet_at = run.now();
  });
  executor.drain();
  EXPECT_EQ(quiet_at, 70U);  // unchanged clock
}

TEST(Executor, TimerOnlyAwaitBurnsFullTimeout) {
  sim::Scheduler scheduler;
  Executor executor(scheduler);
  sim::SimTime resumed_at = 0;
  executor.submit("timer", [&](ProtocolRun& run) {
    executor.post(30, [] {}, ProtocolRun::current());
    run.await_round(10'000, /*resume_on_arrival=*/false);
    resumed_at = run.now();
  });
  executor.drain();
  EXPECT_EQ(resumed_at, 10'000U);
}

TEST(Executor, ExplicitShardCountPreservesScheduleAndCounters) {
  // The same workload on 1, 2 and 4 scheduler shards must produce the
  // identical wake sequence and merged counters — the sharded-executor
  // determinism contract (virtual-time barriers, not racy handoff).
  const auto run_once = [](std::size_t shards) {
    sim::Scheduler scheduler;
    Executor executor(scheduler, shards);
    EXPECT_EQ(executor.shard_count(), shards == 0 ? 1U : shards);
    std::mutex record_mutex;
    std::vector<std::pair<int, sim::SimTime>> wakes;
    for (int i = 0; i < 6; ++i) {
      executor.submit("shard" + std::to_string(i), [&, i](ProtocolRun& run) {
        run.sleep_until(100 * (i + 1));
        {
          const std::lock_guard<std::mutex> lock(record_mutex);
          wakes.emplace_back(i, run.now());
        }
        run.sleep_until(1000 - 100 * i);
        const std::lock_guard<std::mutex> lock(record_mutex);
        wakes.emplace_back(i, run.now());
      });
    }
    executor.drain();
    std::sort(wakes.begin(), wakes.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    return std::make_tuple(wakes, executor.resumes(), executor.max_batch());
  };

  const auto one = run_once(1);
  const auto two = run_once(2);
  const auto four = run_once(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // 6 starts + 11 timer wakes (run 5's second sleep targets the past: no-op).
  EXPECT_EQ(std::get<1>(one), 17U);
}

TEST(Executor, CrossShardPostLandsAtBarrier) {
  // A run on one shard posts a frame-arrival event to a run pinned to the
  // other shard; the inbox handoff must deliver it at the right virtual
  // instant and wake the arrival-sensitive waiter.
  sim::Scheduler scheduler;
  Executor executor(scheduler, 2);
  std::vector<sim::SimTime> arrivals;
  std::mutex arrivals_mutex;

  // Runs are pinned round-robin by id: submit order puts the two runs on
  // different shards, so the sender's deposit takes the inbox handoff.
  ProtocolRun* receiver = nullptr;
  executor.submit("receiver", [&](ProtocolRun& run) {
    receiver = &run;
    run.sleep_until(260);  // the copy is in flight by now (sender posts at 250)
    run.await_round(/*timeout=*/10'000, /*resume_on_arrival=*/true);
    const std::lock_guard<std::mutex> lock(arrivals_mutex);
    arrivals.push_back(run.now());
  });
  executor.submit("sender", [&](ProtocolRun& run) {
    run.sleep_until(250);
    executor.post(
        50,
        [&] {
          const std::lock_guard<std::mutex> lock(arrivals_mutex);
          arrivals.push_back(0);  // the deposit itself
        },
        receiver);
  });
  executor.drain();

  ASSERT_EQ(arrivals.size(), 2U);
  EXPECT_EQ(arrivals[0], 0U);    // deposit ran first...
  EXPECT_EQ(arrivals[1], 300U);  // ...and woke the waiter at t=250+50
  EXPECT_EQ(scheduler.now(), 300U);
}

TEST(Executor, RunBodyExceptionPropagatesFromDrain) {
  sim::Scheduler scheduler;
  Executor executor(scheduler);
  executor.submit("ok", [](ProtocolRun& run) { run.sleep_until(10); });
  executor.submit("boom", [](ProtocolRun&) { throw std::domain_error("boom"); });
  EXPECT_THROW(executor.drain(), std::domain_error);
  // The sibling run still settled before the rethrow.
  EXPECT_EQ(scheduler.now(), 10U);
}

// --------------------------------------------- Engine-hosted timed driver

TEST(EngineDriver, ResumeOnArrivalShortensLatencyNotOutcomes) {
  gka::Authority authority(gka::SecurityProfile::kTiny, 2024);
  const std::vector<std::uint32_t> ids{1, 2, 3, 4, 5, 6};

  auto run_form = [&](bool arrival) {
    sim::Scheduler scheduler;
    sim::DriverConfig cfg;
    cfg.resume_on_arrival = arrival;
    sim::ProtocolDriver driver(scheduler, cfg, 5);
    gka::GroupSession session(authority, gka::Scheme::kProposed, ids, 42);
    driver.attach(session);
    return driver.form();
  };

  const sim::OpOutcome timer_mode = run_form(false);
  const sim::OpOutcome arrival_mode = run_form(true);
  ASSERT_TRUE(timer_mode.success);
  ASSERT_TRUE(arrival_mode.success);
  // Same protocol evolution (loss decided at transmit time)...
  EXPECT_EQ(arrival_mode.rounds, timer_mode.rounds);
  EXPECT_EQ(arrival_mode.retransmissions, timer_mode.retransmissions);
  // ...but arrival-true latency instead of timeout-quantized.
  EXPECT_LT(arrival_mode.latency_us(), timer_mode.latency_us());
  EXPECT_GT(arrival_mode.latency_us(), 0U);

  // Deterministic: a repeat lands on the identical latency.
  EXPECT_EQ(run_form(true).latency_us(), arrival_mode.latency_us());
}

// ------------------------------------------------------------- Multi-group

sim::MultiGroupConfig small_multi() {
  sim::MultiGroupConfig cfg;
  cfg.name = "engine_multi";
  cfg.groups = 3;
  cfg.topology = sim::Topology::kFlat;
  cfg.members_per_group = 6;
  cfg.seed = 99;
  cfg.stagger_us = 15'000;  // overlapping, not identical, schedules
  // Offsets: 0..5 initial members, >= 6 joiners.
  cfg.trace = {
      {sim::SimTime{200'000}, sim::TraceEvent::Kind::kJoin, {6}},
      {sim::SimTime{400'000}, sim::TraceEvent::Kind::kLeave, {1}},
      {sim::SimTime{600'000}, sim::TraceEvent::Kind::kPartition, {2, 3}},
      {sim::SimTime{800'000}, sim::TraceEvent::Kind::kMerge, {2, 3}},
  };
  return cfg;
}

TEST(MultiGroup, ConcurrentGroupsConvergeAndInterleave) {
  const sim::MultiGroupConfig cfg = small_multi();
  const sim::MultiGroupMetrics metrics = sim::MultiGroupRunner(cfg).run();

  ASSERT_EQ(metrics.per_group.size(), 3U);
  for (const sim::Metrics& g : metrics.per_group) {
    EXPECT_TRUE(g.form_success) << g.scenario;
    EXPECT_TRUE(g.all_members_agree) << g.scenario;
    EXPECT_EQ(g.rekeys_attempted, 4U) << g.scenario;
    EXPECT_EQ(g.rekeys_completed, 4U) << g.scenario;
    EXPECT_EQ(g.members_final, 6U) << g.scenario;  // 6 +1 -1 -2 +2
  }
  EXPECT_TRUE(metrics.all_groups_agree());
  EXPECT_EQ(metrics.rekeys_attempted(), 12U);
  EXPECT_DOUBLE_EQ(metrics.convergence(), 1.0);
  // All three groups submitted together -> the first batch is 3 wide:
  // independent protocol runs genuinely interleaved on one clock.
  EXPECT_GE(metrics.max_concurrent_runs, 3U);
  EXPECT_GT(metrics.engine_resumes, 3U);
  EXPECT_GT(metrics.crypto_exps, 0U);
}

TEST(MultiGroup, SameSeedBitIdenticalJson) {
  const sim::MultiGroupConfig cfg = small_multi();
  const std::string first = sim::MultiGroupRunner(cfg).run().to_json();
  const std::string second = sim::MultiGroupRunner(cfg).run().to_json();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(MultiGroup, ShardCountDoesNotChangeMetricsJson) {
  // The whole scenario pipeline over 1, 2 and 4 executor shards: per-group
  // metrics, engine counters, traffic totals — all bit-identical. This is
  // the in-process face of the CI smoke that diffs IDGKA_THREADS=1 vs
  // default at n=4096.
  sim::MultiGroupConfig cfg = small_multi();
  cfg.shards = 1;
  const std::string one = sim::MultiGroupRunner(cfg).run().to_json();
  cfg.shards = 2;
  const std::string two = sim::MultiGroupRunner(cfg).run().to_json();
  cfg.shards = 4;
  const std::string four = sim::MultiGroupRunner(cfg).run().to_json();
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(MultiGroup, DifferentSeedsDiverge) {
  sim::MultiGroupConfig cfg = small_multi();
  const std::string a = sim::MultiGroupRunner(cfg).run().to_json();
  cfg.seed = 100;
  const std::string b = sim::MultiGroupRunner(cfg).run().to_json();
  EXPECT_NE(a, b);
}

TEST(MultiGroup, HierarchicalGroupsRunConcurrently) {
  sim::MultiGroupConfig cfg;
  cfg.name = "engine_multi_hier";
  cfg.groups = 2;
  cfg.topology = sim::Topology::kHierarchical;
  cfg.members_per_group = 12;
  cfg.cluster.min_cluster = 3;
  cfg.cluster.max_cluster = 6;
  cfg.seed = 7;
  cfg.trace = {
      {sim::SimTime{300'000}, sim::TraceEvent::Kind::kJoin, {12}},
      {sim::SimTime{500'000}, sim::TraceEvent::Kind::kLeave, {2}},
  };
  const sim::MultiGroupMetrics metrics = sim::MultiGroupRunner(cfg).run();
  ASSERT_EQ(metrics.per_group.size(), 2U);
  for (const sim::Metrics& g : metrics.per_group) {
    EXPECT_TRUE(g.form_success) << g.scenario;
    EXPECT_TRUE(g.all_members_agree) << g.scenario;
    EXPECT_GT(g.clusters_final, 1U) << g.scenario;
  }
  EXPECT_GE(metrics.max_concurrent_runs, 2U);
}

}  // namespace
}  // namespace idgka
