// Adversarial tests: active tampering against the protocols, and a full
// reproduction of the tau-reuse weakness in the paper's Leave/Partition
// design (DESIGN.md §8).
//
// The tau-reuse attack: even-indexed survivors answer the fresh batch
// challenge c-bar with their *stored* commitment tau (the paper's Round 2:
// "s-bar_i = tau_i * S_Ui^c-bar"). Two such responses under distinct
// challenges c1 != c2 give an eavesdropper
//     s1 / s2 = S^(c1 - c2)  (mod n),
// and since S^e = H(U) is public, Bezout coefficients alpha*(c1-c2) +
// beta*e = 1 recover the member's long-term ID-based secret
//     S = (s1/s2)^alpha * H(U)^beta  (mod n).
// The test executes the attack end-to-end from sniffed broadcasts only,
// then shows the refresh-all-commitments countermeasure blocks it.
#include <gtest/gtest.h>

#include "gka/session.h"
#include "sig/gq.h"
#include "wire/codec.h"

namespace idgka::gka {
namespace {

Authority& test_authority() {
  static Authority authority(SecurityProfile::kTest, /*seed=*/9999);
  return authority;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 2000) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

// ---------------------------------------------------------------------------
// Active tampering: single corrupted broadcasts must abort the run.
// ---------------------------------------------------------------------------

TEST(Tampering, CorruptedRound2ShareFailsBatchVerification) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(5), 1);
  const std::uint32_t victim = session.member_ids()[2];
  session.mutable_network().set_tamper_hook(
      [&](net::Message& msg, std::uint32_t) {
        if (msg.type == "proposed-r2" && msg.sender == victim) {
          // Flip the GQ response s_i: Eq. (2) must reject the whole batch.
          auto s = msg.payload.get_int("s");
          net::Payload fresh;
          fresh.put_u32("id", msg.payload.get_u32("id"));
          fresh.put_int("x", msg.payload.get_int("x"));
          fresh.put_int("s", s + mpint::BigInt{1});
          msg.payload = fresh;
        }
        return true;
      });
  const RunResult result = session.form();
  EXPECT_FALSE(result.success);
}

TEST(Tampering, CorruptedXValueFailsLemma1ForHonestBd) {
  // Replace a Round-2 X with a consistent-looking but wrong value; the
  // signature covers X so the batch check itself must catch it. Tamper the
  // *unsigned* field pair coherently (both x and s would need the secret).
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(4, 2100), 2);
  const std::uint32_t victim = session.member_ids()[1];
  session.mutable_network().set_tamper_hook(
      [&](net::Message& msg, std::uint32_t) {
        if (msg.type == "proposed-r2" && msg.sender == victim) {
          net::Payload fresh;
          fresh.put_u32("id", msg.payload.get_u32("id"));
          fresh.put_int("x", msg.payload.get_int("x") + mpint::BigInt{1});
          fresh.put_int("s", msg.payload.get_int("s"));
          msg.payload = fresh;
        }
        return true;
      });
  EXPECT_FALSE(session.form().success);
}

TEST(Tampering, ForgedEcdsaSignatureRejected) {
  GroupSession session(test_authority(), Scheme::kBdEcdsa, make_ids(4, 2200), 3);
  const std::uint32_t victim = session.member_ids()[0];
  session.mutable_network().set_tamper_hook(
      [&](net::Message& msg, std::uint32_t) {
        if (msg.type == "bd-r2" && msg.sender == victim) {
          net::Payload fresh;
          fresh.put_u32("id", msg.payload.get_u32("id"));
          fresh.put_int("x", msg.payload.get_int("x") + mpint::BigInt{1});
          fresh.put_int("sig_r", msg.payload.get_int("sig_r"));
          fresh.put_int("sig_s", msg.payload.get_int("sig_s"));
          msg.payload = fresh;
        }
        return true;
      });
  EXPECT_FALSE(session.form().success);
}

TEST(Tampering, SsnAuthenticatorForgeryRejected) {
  GroupSession session(test_authority(), Scheme::kSsn, make_ids(4, 2300), 4);
  const std::uint32_t victim = session.member_ids()[3];
  session.mutable_network().set_tamper_hook(
      [&](net::Message& msg, std::uint32_t) {
        if (msg.type == "ssn-r2" && msg.sender == victim) {
          net::Payload fresh;
          fresh.put_u32("id", msg.payload.get_u32("id"));
          fresh.put_int("x", msg.payload.get_int("x") + mpint::BigInt{1});
          fresh.put_int("w", msg.payload.get_int("w"));
          fresh.put_int("a", msg.payload.get_int("a"));
          msg.payload = fresh;
        }
        return true;
      });
  EXPECT_FALSE(session.form().success);
}

TEST(Tampering, JoinSignatureForgeryRejected) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(4, 2400), 5);
  ASSERT_TRUE(session.form().success);
  session.mutable_network().set_tamper_hook(
      [&](net::Message& msg, std::uint32_t) {
        if (msg.type == "join-r1") {
          net::Payload fresh;
          fresh.put_u32("id", msg.payload.get_u32("id"));
          fresh.put_int("z", msg.payload.get_int("z") + mpint::BigInt{1});
          fresh.put_int("sig_s", msg.payload.get_int("sig_s"));
          fresh.put_int("sig_c", msg.payload.get_int("sig_c"));
          msg.payload = fresh;
        }
        return true;
      });
  EXPECT_FALSE(session.join(2490).success);
}

// ---------------------------------------------------------------------------
// The tau-reuse secret-recovery attack (paper weakness, reproduced).
// ---------------------------------------------------------------------------

// Everything the eavesdropper collects from the broadcast medium.
struct SniffedState {
  std::map<std::uint32_t, BigInt> t;      // current commitment t per member
  std::map<std::uint32_t, BigInt> z;      // current z per member
  struct R2 {
    BigInt s;
    BigInt c;  // challenge the eavesdropper computed for that round
  };
  std::vector<std::map<std::uint32_t, R2>> rounds;  // per leave event
};

TEST(TauReuseAttack, RecoversLongTermSecretFromTwoLeaves) {
  Authority& authority = test_authority();
  const SystemParams& params = authority.params();
  const std::size_t n = 6;
  GroupSession session(authority, Scheme::kProposed, make_ids(n, 2500), 6);

  SniffedState sniffed;
  std::vector<std::uint32_t> ring = session.member_ids();
  std::map<std::uint32_t, BigInt> round_s;  // r2 responses of the current event

  // The eavesdropper works from the air interface: it receives the raw
  // frame bytes and parses them itself with the public codec — no typed
  // object ever reaches it.
  session.mutable_network().set_frame_sniffer([&](const wire::Frame& frame) {
    const net::Message msg = wire::decode(frame.bytes());
    if (msg.type == "proposed-r1" || msg.type == "leave-r1") {
      sniffed.t[msg.sender] = msg.payload.get_int("t");
      sniffed.z[msg.sender] = msg.payload.get_int("z");
    } else if (msg.type == "proposed-r2" || msg.type == "leave-r2") {
      round_s[msg.sender] = msg.payload.get_int("s");
    }
  });

  ASSERT_TRUE(session.form().success);
  round_s.clear();

  // The victim: ring position 2 (even-indexed) — it will reuse its stored
  // commitment in every subsequent leave.
  const std::uint32_t victim = ring[1];

  auto harvest = [&](const std::vector<std::uint32_t>& survivors) {
    // Eavesdropper recomputes the shared challenge c-bar = H(T-bar||Z-bar)
    // from sniffed material only.
    BigInt t_prod{1};
    BigInt z_prod{1};
    for (const std::uint32_t id : survivors) {
      t_prod = mpint::mod_mul(t_prod, sniffed.t.at(id), params.gq.n);
      z_prod = mpint::mod_mul(z_prod, sniffed.z.at(id), params.grp.p);
    }
    const BigInt c = sig::gq_challenge(t_prod.to_bytes_be(), z_prod.to_bytes_be());
    std::map<std::uint32_t, SniffedState::R2> round;
    for (const auto& [id, s] : round_s) round[id] = SniffedState::R2{s, c};
    sniffed.rounds.push_back(std::move(round));
    round_s.clear();
  };

  // Two leave events (tail members depart); the victim stays even-indexed.
  ASSERT_TRUE(session.leave(ring[n - 1]).success);
  harvest(session.member_ids());
  ASSERT_TRUE(session.leave(ring[n - 2]).success);
  harvest(session.member_ids());

  const auto& r1 = sniffed.rounds[0].at(victim);
  const auto& r2 = sniffed.rounds[1].at(victim);
  ASSERT_NE(r1.c, r2.c);

  // s1/s2 = S^(c1-c2); Bezout with e recovers S.
  const BigInt d = r1.c - r2.c;
  BigInt alpha, beta;
  const BigInt g = mpint::egcd(d, params.gq.e, alpha, beta);
  ASSERT_TRUE(g.abs().is_one()) << "gcd(c1-c2, e) must be 1 for the attack";
  if (g.negative()) {
    alpha = -alpha;
    beta = -beta;
  }
  const BigInt ratio =
      mpint::mod_mul(r1.s, mpint::mod_inverse(r2.s, params.gq.n), params.gq.n);
  const BigInt h_u = sig::gq_hash_id(params.gq, victim);
  const BigInt recovered = mpint::mod_mul(mpint::mod_exp(ratio, alpha, params.gq.n),
                                          mpint::mod_exp(h_u, beta, params.gq.n),
                                          params.gq.n);

  // The recovered value is the victim's PKG-extracted long-term secret:
  // verify the key equation S^e == H(U) and forge a signature with it.
  EXPECT_EQ(mpint::mod_exp(recovered, params.gq.e, params.gq.n), h_u);
  hash::HmacDrbg rng(1, "forge");
  const sig::GqSigner forger(params.gq, victim, recovered);
  const std::vector<std::uint8_t> msg = {'p', 'w', 'n'};
  EXPECT_TRUE(sig::gq_verify(params.gq, victim, msg, forger.sign(msg, rng)));
}

TEST(TauReuseAttack, RefreshAllCountermeasureBlocksIt) {
  Authority& authority = test_authority();
  const std::size_t n = 6;
  GroupSession session(authority, Scheme::kProposed, make_ids(n, 2600), 7);
  session.set_refresh_all_commitments(true);

  // With the countermeasure, every survivor's t changes each event, so the
  // same tau never answers two distinct challenges.
  std::map<std::uint32_t, std::vector<BigInt>> t_seen;
  session.mutable_network().set_sniffer([&](const net::Message& msg) {
    if (msg.type == "proposed-r1" || msg.type == "leave-r1") {
      t_seen[msg.sender].push_back(msg.payload.get_int("t"));
    }
  });

  ASSERT_TRUE(session.form().success);
  const auto ring = session.member_ids();
  ASSERT_TRUE(session.leave(ring[n - 1]).success);
  ASSERT_TRUE(session.leave(ring[n - 2]).success);

  const std::uint32_t victim = ring[1];  // even-indexed
  // Three commitments observed (form + 2 leaves), all distinct.
  ASSERT_EQ(t_seen.at(victim).size(), 3U);
  EXPECT_NE(t_seen.at(victim)[0], t_seen.at(victim)[1]);
  EXPECT_NE(t_seen.at(victim)[1], t_seen.at(victim)[2]);
}

TEST(TauReuseAttack, DefaultPaperBehaviourReusesCommitments) {
  // Confirms we reproduce the paper faithfully by default: even-indexed
  // survivors broadcast no fresh t (they reuse), odd-indexed do refresh.
  Authority& authority = test_authority();
  GroupSession session(authority, Scheme::kProposed, make_ids(6, 2700), 8);
  std::map<std::uint32_t, int> r1_broadcasts;
  session.mutable_network().set_sniffer([&](const net::Message& msg) {
    if (msg.type == "leave-r1") ++r1_broadcasts[msg.sender];
  });
  ASSERT_TRUE(session.form().success);
  const auto ring = session.member_ids();
  ASSERT_TRUE(session.leave(ring[5]).success);
  EXPECT_EQ(r1_broadcasts.count(ring[0]), 1U);  // odd position 1: refreshes
  EXPECT_EQ(r1_broadcasts.count(ring[1]), 0U);  // even position 2: reuses
  EXPECT_EQ(r1_broadcasts.count(ring[2]), 1U);  // odd position 3
  EXPECT_EQ(r1_broadcasts.count(ring[3]), 0U);  // even position 4
}

}  // namespace
}  // namespace idgka::gka
