// Unit and property tests for the arbitrary-precision integer core.
#include "mpint/bigint.h"

#include <gtest/gtest.h>

#include "mpint/random.h"

namespace idgka::mpint {
namespace {

TEST(BigIntBasics, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.bit_length(), 0U);
}

TEST(BigIntBasics, SmallConstruction) {
  EXPECT_EQ(BigInt{42}.to_dec(), "42");
  EXPECT_EQ(BigInt{-7}.to_dec(), "-7");
  EXPECT_EQ(BigInt{0xFFFFFFFFFFFFFFFFULL}.to_hex(), "ffffffffffffffff");
}

TEST(BigIntBasics, HexRoundTrip) {
  const char* cases[] = {"0",
                         "1",
                         "deadbeef",
                         "ffffffffffffffff",
                         "10000000000000000",
                         "123456789abcdef0123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::from_hex(c).to_hex(), c) << c;
  }
  EXPECT_EQ(BigInt::from_hex("-ff").to_dec(), "-255");
  EXPECT_EQ(BigInt::from_hex("0xAB").to_hex(), "ab");
}

TEST(BigIntBasics, DecRoundTrip) {
  const char* cases[] = {"0", "1", "9", "10", "18446744073709551615", "18446744073709551616",
                         "340282366920938463463374607431768211456",
                         "99999999999999999999999999999999999999999999999999"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::from_dec(c).to_dec(), c) << c;
  }
  EXPECT_EQ(BigInt::from_dec("-123").to_dec(), "-123");
}

TEST(BigIntBasics, FromHexRejectsGarbage) {
  EXPECT_THROW(BigInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec(""), std::invalid_argument);
}

TEST(BigIntBasics, BytesRoundTrip) {
  const BigInt v = BigInt::from_hex("0102030405060708090a0b0c0d0e0f10");
  const auto bytes = v.to_bytes_be();
  EXPECT_EQ(bytes.size(), 16U);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[15], 0x10);
  EXPECT_EQ(BigInt::from_bytes_be(bytes), v);

  // Padding
  const auto padded = BigInt{1}.to_bytes_be(8);
  EXPECT_EQ(padded.size(), 8U);
  EXPECT_EQ(padded[7], 1);
  EXPECT_EQ(padded[0], 0);
}

TEST(BigIntBasics, NegativeZeroNormalizes) {
  const BigInt a = BigInt{5} - BigInt{5};
  EXPECT_TRUE(a.is_zero());
  EXPECT_FALSE(a.negative());
  EXPECT_EQ(-BigInt{}, BigInt{});
}

TEST(BigIntArith, SignedAddSub) {
  const BigInt a = BigInt::from_dec("123456789012345678901234567890");
  const BigInt b = BigInt::from_dec("987654321098765432109876543210");
  EXPECT_EQ((a + b).to_dec(), "1111111110111111111011111111100");
  EXPECT_EQ((b - a).to_dec(), "864197532086419753208641975320");
  EXPECT_EQ((a - b).to_dec(), "-864197532086419753208641975320");
  EXPECT_EQ(a + (-a), BigInt{});
  EXPECT_EQ((-a) + (-b), -(a + b));
}

TEST(BigIntArith, MultiplyCarryChains) {
  const BigInt max64{0xFFFFFFFFFFFFFFFFULL};
  EXPECT_EQ((max64 * max64).to_hex(), "fffffffffffffffe0000000000000001");
  EXPECT_EQ((BigInt::from_hex("ffffffff") * BigInt::from_hex("ffffffff")).to_hex(),
            "fffffffe00000001");
  EXPECT_EQ(BigInt{0} * max64, BigInt{});
}

TEST(BigIntArith, DivisionBasics) {
  EXPECT_EQ((BigInt{100} / BigInt{7}).to_dec(), "14");
  EXPECT_EQ((BigInt{100} % BigInt{7}).to_dec(), "2");
  // Truncated semantics: (-100)/7 == -14 rem -2.
  EXPECT_EQ((BigInt{-100} / BigInt{7}).to_dec(), "-14");
  EXPECT_EQ((BigInt{-100} % BigInt{7}).to_dec(), "-2");
  EXPECT_EQ((BigInt{100} / BigInt{-7}).to_dec(), "-14");
  EXPECT_EQ((BigInt{100} % BigInt{-7}).to_dec(), "2");
  EXPECT_THROW(BigInt{1} / BigInt{}, std::domain_error);
}

TEST(BigIntArith, EuclideanMod) {
  EXPECT_EQ(BigInt{-100}.mod(BigInt{7}).to_dec(), "5");
  EXPECT_EQ(BigInt{100}.mod(BigInt{7}).to_dec(), "2");
  EXPECT_EQ(BigInt{0}.mod(BigInt{7}), BigInt{});
}

TEST(BigIntArith, ShiftRoundTrip) {
  const BigInt v = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  for (std::size_t s : {1U, 7U, 63U, 64U, 65U, 127U, 200U}) {
    EXPECT_EQ((v << s) >> s, v) << "shift " << s;
  }
  EXPECT_EQ(BigInt{1} << 64, BigInt::from_hex("10000000000000000"));
  EXPECT_EQ(BigInt::from_hex("ff") >> 4, BigInt::from_hex("f"));
  EXPECT_EQ(BigInt::from_hex("ff") >> 100, BigInt{});
}

TEST(BigIntArith, Comparisons) {
  EXPECT_LT(BigInt{-5}, BigInt{3});
  EXPECT_LT(BigInt{-5}, BigInt{-3});
  EXPECT_GT(BigInt::from_hex("10000000000000000"), BigInt::from_hex("ffffffffffffffff"));
  EXPECT_EQ(BigInt{7}, BigInt{7});
}

TEST(BigIntArith, BitAccess) {
  const BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64U);
}

// ---------------------------------------------------------------------------
// Property tests: random algebraic identities exercising the Knuth division
// and Karatsuba paths at many operand sizes.
// ---------------------------------------------------------------------------

class BigIntPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigIntPropertyTest, DivModReconstructsDividend) {
  XoshiroRng rng(GetParam());
  const std::size_t bits = 32 + GetParam() * 97 % 4096;
  for (int i = 0; i < 25; ++i) {
    const BigInt a = random_bits(rng, bits);
    const BigInt b = random_bits(rng, 1 + (GetParam() * 31 + static_cast<std::size_t>(i) * 131) % bits);
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    EXPECT_FALSE(r.negative());
  }
}

TEST_P(BigIntPropertyTest, MulCommutesAndDistributes) {
  XoshiroRng rng(GetParam() * 7919);
  const std::size_t bits = 16 + GetParam() * 211 % 3000;
  const BigInt a = random_bits(rng, bits);
  const BigInt b = random_bits(rng, bits / 2 + 1);
  const BigInt c = random_bits(rng, bits / 3 + 1);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ((a + b) * (a - b), a * a - b * b);
}

TEST_P(BigIntPropertyTest, KaratsubaMatchesIdentity) {
  // (a+b)^2 == a^2 + 2ab + b^2 on large operands that cross the Karatsuba
  // threshold in the squaring but not the cross terms.
  XoshiroRng rng(GetParam() * 104729);
  const BigInt a = random_bits(rng, 2500 + GetParam() * 37 % 1500);
  const BigInt b = random_bits(rng, 900 + GetParam() * 53 % 700);
  EXPECT_EQ((a + b) * (a + b), a * a + BigInt{2} * a * b + b * b);
}

TEST_P(BigIntPropertyTest, StringRoundTripsRandom) {
  XoshiroRng rng(GetParam() * 31337);
  const BigInt a = random_bits(rng, 8 + GetParam() * 67 % 2048);
  EXPECT_EQ(BigInt::from_hex(a.to_hex()), a);
  EXPECT_EQ(BigInt::from_dec(a.to_dec()), a);
  EXPECT_EQ(BigInt::from_bytes_be(a.to_bytes_be()), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest, ::testing::Range<std::size_t>(1, 33));

// ---------------------------------------------------------------------------
// Number theory helpers
// ---------------------------------------------------------------------------

TEST(NumberTheory, GcdKnownValues) {
  EXPECT_EQ(gcd(BigInt{12}, BigInt{18}).to_dec(), "6");
  EXPECT_EQ(gcd(BigInt{17}, BigInt{13}).to_dec(), "1");
  EXPECT_EQ(gcd(BigInt{0}, BigInt{5}).to_dec(), "5");
  EXPECT_EQ(gcd(BigInt{-12}, BigInt{18}).to_dec(), "6");
}

TEST(NumberTheory, EgcdBezout) {
  XoshiroRng rng(42);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = random_bits(rng, 200);
    const BigInt b = random_bits(rng, 180);
    BigInt x, y;
    const BigInt g = egcd(a, b, x, y);
    EXPECT_EQ(a * x + b * y, g);
    EXPECT_EQ(g, gcd(a, b));
  }
}

TEST(NumberTheory, ModInverse) {
  EXPECT_EQ(mod_inverse(BigInt{3}, BigInt{7}).to_dec(), "5");
  EXPECT_EQ(mod_inverse(BigInt{10}, BigInt{17}).to_dec(), "12");
  EXPECT_THROW(mod_inverse(BigInt{6}, BigInt{9}), std::domain_error);
  XoshiroRng rng(7);
  const BigInt m = BigInt::from_dec("1000000007");
  for (int i = 0; i < 30; ++i) {
    const BigInt a = random_range(rng, BigInt{1}, m);
    EXPECT_EQ(mod_mul(a, mod_inverse(a, m), m), BigInt{1});
  }
}

TEST(NumberTheory, ModExpKnownValues) {
  EXPECT_EQ(mod_exp(BigInt{2}, BigInt{10}, BigInt{1000}).to_dec(), "24");
  EXPECT_EQ(mod_exp(BigInt{3}, BigInt{0}, BigInt{7}), BigInt{1});
  EXPECT_EQ(mod_exp(BigInt{0}, BigInt{5}, BigInt{7}), BigInt{});
  // Fermat: a^(p-1) = 1 mod p
  const BigInt p = BigInt::from_dec("1000000007");
  EXPECT_EQ(mod_exp(BigInt{123456}, p - BigInt{1}, p), BigInt{1});
}

TEST(NumberTheory, ModExpNegativeExponent) {
  const BigInt p = BigInt::from_dec("1000000007");
  const BigInt a{12345};
  EXPECT_EQ(mod_mul(mod_exp(a, BigInt{-3}, p), mod_exp(a, BigInt{3}, p), p), BigInt{1});
}

TEST(NumberTheory, JacobiSymbol) {
  // (a/7): QRs mod 7 are {1,2,4}.
  EXPECT_EQ(jacobi(BigInt{1}, BigInt{7}), 1);
  EXPECT_EQ(jacobi(BigInt{2}, BigInt{7}), 1);
  EXPECT_EQ(jacobi(BigInt{3}, BigInt{7}), -1);
  EXPECT_EQ(jacobi(BigInt{4}, BigInt{7}), 1);
  EXPECT_EQ(jacobi(BigInt{5}, BigInt{7}), -1);
  EXPECT_EQ(jacobi(BigInt{6}, BigInt{7}), -1);
  EXPECT_EQ(jacobi(BigInt{7}, BigInt{7}), 0);
  EXPECT_THROW((void)jacobi(BigInt{3}, BigInt{8}), std::domain_error);
}

TEST(NumberTheory, SqrtModP3) {
  const BigInt p{103};  // 103 % 4 == 3
  int qr_count = 0;
  for (std::uint64_t a = 1; a < 103; ++a) {
    BigInt root;
    if (sqrt_mod_p3(BigInt{a}, p, root)) {
      ++qr_count;
      EXPECT_EQ(mod_mul(root, root, p), BigInt{a});
    }
  }
  EXPECT_EQ(qr_count, 51);  // (p-1)/2 quadratic residues
}

}  // namespace
}  // namespace idgka::mpint
