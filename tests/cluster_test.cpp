// Hierarchical cluster-based GKA: key consistency under churn at large n,
// cluster-size invariants, event batching, and the aggregate roll-up.
//
// Correctness anchor: after every operation *every* current member's
// decrypted view of the group key (received via its head's SealedBox rekey
// broadcast, or derived locally in single-cluster mode) equals the
// authoritative key derived from the head-tier ring.
#include <gtest/gtest.h>

#include <set>

#include "cluster/hierarchical_session.h"

namespace idgka::cluster {
namespace {

gka::Authority& tiny_authority() {
  static gka::Authority authority(gka::SecurityProfile::kTiny, /*seed=*/424242);
  return authority;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 1000) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

void expect_consistent(const HierarchicalSession& session, const char* what) {
  ASSERT_TRUE(session.all_members_agree()) << what;
  for (const std::uint32_t id : session.member_ids()) {
    EXPECT_EQ(session.member_key_view(id), session.group_key()) << what << " member " << id;
  }
}

void expect_bounds(const HierarchicalSession& session, const char* what) {
  const auto sizes = session.cluster_sizes();
  for (const std::size_t s : sizes) {
    EXPECT_LE(s, session.config().max_cluster) << what;
    if (sizes.size() > 1) EXPECT_GE(s, 2U) << what;
  }
}

TEST(EventQueueTest, CoalescesJoinLeavePairs) {
  EventQueue q;
  q.push({EventType::kJoin, 1});
  q.push({EventType::kJoin, 1});  // duplicate dropped
  EXPECT_EQ(q.size(), 1U);
  q.push({EventType::kLeave, 1});  // cancels the pending join
  EXPECT_TRUE(q.empty());
  q.push({EventType::kLeave, 2});
  q.push({EventType::kJoin, 2});  // existing member departs and re-enrolls
  EXPECT_EQ(q.size(), 2U);
  const auto events = q.drain();
  EXPECT_TRUE(q.empty());
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].type, EventType::kLeave);
  EXPECT_EQ(events[1].type, EventType::kJoin);
}

TEST(EventQueueTest, CoalescesAgainstLatestIntent) {
  // leave, join, leave: the trailing leave cancels the re-enrollment — the
  // member's final intent is to depart, so exactly one leave survives.
  EventQueue q;
  q.push({EventType::kLeave, 7});
  q.push({EventType::kJoin, 7});
  q.push({EventType::kLeave, 7});
  auto events = q.drain();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].type, EventType::kLeave);
  // leave, join, join: the duplicate join is dropped against the latest
  // intent (a second copy would poison the whole batch at flush time).
  q.push({EventType::kLeave, 8});
  q.push({EventType::kJoin, 8});
  q.push({EventType::kJoin, 8});
  events = q.drain();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].type, EventType::kLeave);
  EXPECT_EQ(events[1].type, EventType::kJoin);
}

TEST(Config, ValidatesBounds) {
  gka::Authority& authority = tiny_authority();
  ClusterConfig bad;
  bad.min_cluster = 8;
  bad.max_cluster = 12;  // < 2 * min: a split could underflow
  EXPECT_THROW(HierarchicalSession(authority, bad, make_ids(20), 1), std::invalid_argument);
  ClusterConfig ok;
  EXPECT_THROW(HierarchicalSession(authority, ok, {7}, 1), std::invalid_argument);
  EXPECT_THROW(HierarchicalSession(authority, ok, {7, 7, 8}, 1), std::invalid_argument);
}

TEST(Form, SingleClusterMode) {
  // Below min-split sizes the hierarchy degenerates to one leaf ring and the
  // epoch key is derived locally by every member — no head tier, no rekey
  // broadcast.
  HierarchicalSession session(tiny_authority(), ClusterConfig{}, make_ids(6), 2);
  ASSERT_TRUE(session.form().success);
  EXPECT_EQ(session.cluster_count(), 1U);
  expect_consistent(session, "single-cluster form");

  ASSERT_TRUE(session.join(2000).success);
  ASSERT_TRUE(session.leave(1002).success);
  expect_consistent(session, "single-cluster churn");
}

TEST(Form, ShardingRespectsMinClusterBound) {
  // n barely above min_cluster must not be cut into underflowing shards.
  ClusterConfig cfg;
  cfg.min_cluster = 20;
  cfg.max_cluster = 40;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(31, 900000), 20);
  ASSERT_TRUE(session.form().success);
  EXPECT_EQ(session.cluster_count(), 1U);  // 31 fits one <=40 cluster
  HierarchicalSession wide(tiny_authority(), cfg, make_ids(100, 910000), 21);
  ASSERT_TRUE(wide.form().success);
  for (const std::size_t s : wide.cluster_sizes()) {
    EXPECT_GE(s, cfg.min_cluster);
    EXPECT_LE(s, cfg.max_cluster);
  }
}

TEST(Form, ShardsIntoBoundedClusters) {
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 16;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(64), 3);
  ASSERT_TRUE(session.form().success);
  EXPECT_GT(session.cluster_count(), 1U);
  expect_bounds(session, "form");
  expect_consistent(session, "form n=64");
  EXPECT_EQ(session.size(), 64U);
  // The epoch key is a KDF output, not a ring element of the head tier.
  EXPECT_LE(session.group_key().bit_length(), 128U);
}

TEST(Rekey, KeyFreshnessAcrossEvents) {
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 12;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(24), 4);
  ASSERT_TRUE(session.form().success);
  std::set<std::string> keys;
  keys.insert(session.group_key().to_hex());
  ASSERT_TRUE(session.join(3000).success);
  keys.insert(session.group_key().to_hex());
  ASSERT_TRUE(session.leave(1003).success);
  keys.insert(session.group_key().to_hex());
  ASSERT_TRUE(session.partition({1010, 1011}).success);
  keys.insert(session.group_key().to_hex());
  EXPECT_EQ(keys.size(), 4U);  // every event produced a fresh epoch key
  EXPECT_EQ(session.epoch(), 4U);
}

TEST(Rekey, LeafMembersDoNoExtraExponentiations) {
  // The downward distribution must cost leaf members only symmetric work:
  // an event in one cluster adds zero mod-exps to members of other clusters.
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 12;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(32), 5);
  ASSERT_TRUE(session.form().success);
  ASSERT_GE(session.cluster_count(), 3U);

  // An event in the first cluster must rekey only that cluster and the head
  // tier; the whole-group mod-exp growth stays far below what a flat rekey
  // over all n members would cost.
  const std::uint32_t leaver = 1001;  // lives in the first cluster
  const std::uint64_t exps_before = session.report().total.count(energy::Op::kModExp);
  ASSERT_TRUE(session.leave(leaver).success);
  expect_consistent(session, "after leave");
  const std::uint64_t exps_after = session.report().total.count(energy::Op::kModExp);
  const std::uint64_t delta = exps_after - exps_before;
  EXPECT_GT(delta, 0U);
  // Far fewer than one exponentiation per member would be possible if the
  // whole group rekeyed (a flat BD re-run costs >= n(n+1) mod-exps).
  EXPECT_LT(delta, session.size() * (session.size() + 1) / 2);
}

TEST(Churn, MixedEventsN64) {
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 16;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(64, 10000), 6);
  ASSERT_TRUE(session.form().success);
  expect_consistent(session, "form");

  ASSERT_TRUE(session.join(20000).success);
  expect_consistent(session, "join");
  ASSERT_TRUE(session.leave(10007).success);
  expect_consistent(session, "leave");
  ASSERT_TRUE(session.partition({10010, 10011, 10012, 10013, 10020, 10021}).success);
  expect_consistent(session, "partition");
  expect_bounds(session, "partition");

  // Drain one region hard enough to force cluster merges.
  std::vector<std::uint32_t> mass;
  for (std::uint32_t id = 10030; id < 10060; ++id) mass.push_back(id);
  const EventSummary summary = session.partition(mass);
  ASSERT_TRUE(summary.success);
  EXPECT_GT(summary.merges, 0U);
  expect_consistent(session, "mass partition");
  expect_bounds(session, "mass partition");

  // Grow back enough to force splits.
  EventSummary last{};
  for (std::uint32_t id = 30000; id < 30040; ++id) {
    if (auto flushed = session.enqueue_join(id)) last = *flushed;
  }
  last = session.flush();
  ASSERT_TRUE(last.success);
  expect_consistent(session, "mass join");
  expect_bounds(session, "mass join");
  EXPECT_EQ(session.size(), 64U + 1 - 1 - 6 - 30 + 40);
}

TEST(Churn, MixedEventsN256) {
  ClusterConfig cfg;
  cfg.min_cluster = 8;
  cfg.max_cluster = 32;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(256, 40000), 7);
  ASSERT_TRUE(session.form().success);
  expect_consistent(session, "form n=256");

  for (std::uint32_t i = 0; i < 10; ++i) session.enqueue_join(50000 + i);
  for (std::uint32_t i = 0; i < 10; ++i) session.enqueue_leave(40000 + i * 17);
  ASSERT_TRUE(session.flush().success);
  expect_consistent(session, "batched churn n=256");
  expect_bounds(session, "batched churn n=256");
  EXPECT_EQ(session.size(), 256U);
}

TEST(Churn, MixedEventsN1024WithFiftyEventBurst) {
  // The acceptance scenario: form at n=1024, then a 50-event churn burst —
  // one consistent group key across all members afterwards.
  ClusterConfig cfg;
  cfg.min_cluster = 8;
  cfg.max_cluster = 48;
  cfg.batch_capacity = 64;  // hold the whole burst in one round
  HierarchicalSession session(tiny_authority(), cfg, make_ids(1024, 100000), 8);
  ASSERT_TRUE(session.form().success);
  EXPECT_EQ(session.size(), 1024U);
  EXPECT_GT(session.cluster_count(), 10U);
  expect_consistent(session, "form n=1024");
  const std::uint64_t epoch_before = session.epoch();

  for (std::uint32_t i = 0; i < 25; ++i) session.enqueue_join(200000 + i);
  for (std::uint32_t i = 0; i < 25; ++i) session.enqueue_leave(100000 + i * 37);
  const EventSummary summary = session.flush();
  ASSERT_TRUE(summary.success);
  EXPECT_EQ(summary.events_applied, 50U);
  EXPECT_EQ(session.size(), 1024U);
  EXPECT_EQ(session.epoch(), epoch_before + 1);  // one rekey for the burst
  expect_consistent(session, "after 50-event burst");
  expect_bounds(session, "after 50-event burst");
}

TEST(Churn, SurvivesLossyNetworks) {
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 12;
  cfg.loss_rate = 0.10;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(32, 60000), 9);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.join(70000).success);
  ASSERT_TRUE(session.leave(60003).success);
  expect_consistent(session, "churn at 10% loss");
}

TEST(Batching, CoalescedBurstCostsFewerBroadcasts) {
  // The same 12-event burst, once as a single flushed batch and once as 12
  // sequential events: batching must send fewer broadcast messages (and
  // fewer bits), because the head-tier rekey + downward distribution run
  // once instead of 12 times.
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 12;
  cfg.batch_capacity = 64;

  HierarchicalSession batched(tiny_authority(), cfg, make_ids(48, 300000), 10);
  HierarchicalSession sequential(tiny_authority(), cfg, make_ids(48, 400000), 10);
  ASSERT_TRUE(batched.form().success);
  ASSERT_TRUE(sequential.form().success);

  const std::uint64_t batched_base = batched.report().traffic.tx_messages;
  const std::uint64_t sequential_base = sequential.report().traffic.tx_messages;

  for (std::uint32_t i = 0; i < 6; ++i) batched.enqueue_join(310000 + i);
  for (std::uint32_t i = 0; i < 6; ++i) batched.enqueue_leave(300000 + 2 * i);
  ASSERT_TRUE(batched.flush().success);

  for (std::uint32_t i = 0; i < 6; ++i) ASSERT_TRUE(sequential.join(410000 + i).success);
  for (std::uint32_t i = 0; i < 6; ++i) ASSERT_TRUE(sequential.leave(400000 + 2 * i).success);

  expect_consistent(batched, "batched");
  expect_consistent(sequential, "sequential");
  const std::uint64_t batched_cost = batched.report().traffic.tx_messages - batched_base;
  const std::uint64_t sequential_cost =
      sequential.report().traffic.tx_messages - sequential_base;
  EXPECT_LT(batched_cost, sequential_cost);
  EXPECT_LT(batched_cost * 2, sequential_cost);  // and not marginally: >2x saving
}

TEST(Merge, TwoHierarchiesMerge) {
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 12;
  HierarchicalSession a(tiny_authority(), cfg, make_ids(24, 500000), 11);
  HierarchicalSession b(tiny_authority(), cfg, make_ids(16, 600000), 12);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  const BigInt key_a = a.group_key();
  const BigInt key_b = b.group_key();

  const EventSummary summary = a.merge(b);
  ASSERT_TRUE(summary.success);
  EXPECT_EQ(a.size(), 40U);
  EXPECT_EQ(b.size(), 0U);
  EXPECT_NE(a.group_key(), key_a);
  EXPECT_NE(a.group_key(), key_b);
  expect_consistent(a, "after hierarchy merge");
  expect_bounds(a, "after hierarchy merge");

  EXPECT_THROW((void)a.merge(a), std::invalid_argument);

  // Overlapping member sets are rejected before any state is adopted.
  HierarchicalSession c(tiny_authority(), cfg, make_ids(8, 500010), 15);  // overlaps a
  ASSERT_TRUE(c.form().success);
  EXPECT_THROW((void)a.merge(c), std::invalid_argument);
  EXPECT_EQ(c.size(), 8U);  // untouched by the rejected merge
  expect_consistent(a, "after rejected overlap merge");
}

TEST(Validation, RejectsBadEvents) {
  ClusterConfig cfg;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(8, 700000), 13);
  ASSERT_TRUE(session.form().success);
  EXPECT_THROW((void)session.join(700001), std::invalid_argument);   // already in
  EXPECT_THROW((void)session.leave(999999), std::invalid_argument);  // unknown
  // Draining the whole group below 2 members is rejected up front.
  std::vector<std::uint32_t> all;
  for (std::uint32_t i = 0; i < 7; ++i) all.push_back(700000 + i);
  EXPECT_THROW((void)session.partition(all), std::invalid_argument);
  // A duplicate join mixed into an otherwise-valid batch is rejected up
  // front — before any leaf ring is touched — so the session stays on the
  // current epoch with every view intact.
  const std::uint64_t epoch = session.epoch();
  session.enqueue_leave(700002);
  session.enqueue_join(700004);  // already a member, not departing
  EXPECT_THROW((void)session.flush(), std::invalid_argument);
  EXPECT_EQ(session.epoch(), epoch);
  EXPECT_EQ(session.size(), 8U);
  expect_consistent(session, "after rejected mixed batch");
}

TEST(Report, RollsUpAllTiersAndDepartures) {
  ClusterConfig cfg;
  cfg.min_cluster = 4;
  cfg.max_cluster = 12;
  HierarchicalSession session(tiny_authority(), cfg, make_ids(24, 800000), 14);
  ASSERT_TRUE(session.form().success);
  const AggregateReport after_form = session.report();
  EXPECT_EQ(after_form.members, 24U);
  EXPECT_GT(after_form.clusters, 1U);
  EXPECT_GT(after_form.total.count(energy::Op::kModExp), 0U);
  EXPECT_GT(after_form.head_tier.count(energy::Op::kModExp), 0U);
  EXPECT_GT(after_form.traffic.tx_messages, 0U);
  EXPECT_GT(after_form.tx_bits(), 0U);
  EXPECT_GT(after_form.energy_mj(energy::strongarm(), energy::wlan_spectrum24()), 0.0);

  // Lifetime totals never shrink, even when members depart (their ledgers
  // are retired into the roll-up, and their network counters are dropped).
  ASSERT_TRUE(session.leave(800003).success);
  const AggregateReport after_leave = session.report();
  EXPECT_EQ(after_leave.members, 23U);
  EXPECT_GE(after_leave.total.count(energy::Op::kModExp),
            after_form.total.count(energy::Op::kModExp));
  EXPECT_GE(after_leave.total.tx_messages, after_form.total.tx_messages);
}

}  // namespace
}  // namespace idgka::cluster
