// AES / modes / KDF / SealedBox tests.
#include <gtest/gtest.h>

#include "hash/hmac_drbg.h"
#include "symc/aes.h"
#include "symc/kdf.h"
#include "symc/modes.h"
#include "symc/sealed_box.h"

namespace idgka::symc {
namespace {

using Block = Aes128::Block;

Block block_from_hex(std::string_view s) {
  Block b{};
  for (std::size_t i = 0; i < 16; ++i) {
    auto nib = [&](char c) -> std::uint8_t {
      if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
      return static_cast<std::uint8_t>(c - 'a' + 10);
    };
    b[i] = static_cast<std::uint8_t>((nib(s[2 * i]) << 4) | nib(s[2 * i + 1]));
  }
  return b;
}

TEST(Aes128, Fips197Vector) {
  // FIPS-197 Appendix B.
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block pt = block_from_hex("3243f6a8885a308d313198a2e0370734");
  const Block expect_ct = block_from_hex("3925841d02dc09fbdc118597196a0b32");
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  Block b = pt;
  aes.encrypt_block(b);
  EXPECT_EQ(b, expect_ct);
  aes.decrypt_block(b);
  EXPECT_EQ(b, pt);
}

TEST(Aes128, NistSp800_38aEcbVectors) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  const std::pair<const char*, const char*> cases[] = {
      {"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
      {"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
      {"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
      {"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
  };
  for (const auto& [pt_hex, ct_hex] : cases) {
    Block b = block_from_hex(pt_hex);
    aes.encrypt_block(b);
    EXPECT_EQ(b, block_from_hex(ct_hex)) << pt_hex;
  }
}

TEST(Aes128, DecryptInvertsEncryptRandom) {
  hash::HmacDrbg rng(1, "aes");
  for (int i = 0; i < 50; ++i) {
    Block key{};
    Block pt{};
    rng.fill(key);
    rng.fill(pt);
    Aes128 aes{std::span<const std::uint8_t, 16>(key)};
    Block b = pt;
    aes.encrypt_block(b);
    EXPECT_NE(b, pt);
    aes.decrypt_block(b);
    EXPECT_EQ(b, pt);
  }
}

TEST(Modes, CtrNistVector) {
  const Block key = block_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Block iv = block_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  const Block pt1 = block_from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Block ct1 = block_from_hex("874d6191b620e3261bef6864990db6ce");
  const auto out = ctr_crypt(aes, iv, pt1);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), ct1.begin()));
}

TEST(Modes, CtrRoundTripArbitraryLength) {
  hash::HmacDrbg rng(2, "ctr");
  Block key{};
  Block iv{};
  rng.fill(key);
  rng.fill(iv);
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  for (std::size_t len : {0U, 1U, 15U, 16U, 17U, 100U, 1000U}) {
    std::vector<std::uint8_t> pt(len);
    rng.fill(pt);
    const auto ct = ctr_crypt(aes, iv, pt);
    const auto back = ctr_crypt(aes, iv, ct);
    EXPECT_EQ(back, pt) << "len=" << len;
  }
}

TEST(Modes, CbcRoundTripAndPadding) {
  hash::HmacDrbg rng(3, "cbc");
  Block key{};
  Block iv{};
  rng.fill(key);
  rng.fill(iv);
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  for (std::size_t len : {0U, 1U, 15U, 16U, 17U, 31U, 32U, 257U}) {
    std::vector<std::uint8_t> pt(len);
    rng.fill(pt);
    const auto ct = cbc_encrypt(aes, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0U);
    EXPECT_GT(ct.size(), len);  // always at least one padding byte
    EXPECT_EQ(cbc_decrypt(aes, iv, ct), pt) << "len=" << len;
  }
}

TEST(Modes, CbcRejectsCorruptPadding) {
  hash::HmacDrbg rng(4, "cbc2");
  Block key{};
  Block iv{};
  rng.fill(key);
  rng.fill(iv);
  Aes128 aes{std::span<const std::uint8_t, 16>(key)};
  std::vector<std::uint8_t> pt(20, 0xAB);
  auto ct = cbc_encrypt(aes, iv, pt);
  EXPECT_THROW((void)cbc_decrypt(aes, iv, std::span<const std::uint8_t>(ct.data(), 8)),
               PaddingError);
  EXPECT_THROW((void)cbc_decrypt(aes, iv, std::span<const std::uint8_t>(ct.data(), 0)),
               PaddingError);
}

TEST(Kdf, DistinctKeysForDistinctInputs) {
  const auto k1 = derive_key(mpint::BigInt{12345});
  const auto k2 = derive_key(mpint::BigInt{12346});
  const auto k3 = derive_key(mpint::BigInt{12345}, "other-label");
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_EQ(k1, derive_key(mpint::BigInt{12345}));
}

TEST(Kdf, IvDependsOnContext) {
  const mpint::BigInt k{999};
  EXPECT_NE(derive_iv(k, 1, 0), derive_iv(k, 2, 0));
  EXPECT_NE(derive_iv(k, 1, 0), derive_iv(k, 1, 1));
  EXPECT_EQ(derive_iv(k, 1, 0), derive_iv(k, 1, 0));
}

TEST(SealedBox, SealOpenRoundTrip) {
  const mpint::BigInt group_key = mpint::BigInt::from_hex("abcdef0123456789");
  const SealedBox box(group_key);
  const mpint::BigInt payload = mpint::BigInt::from_dec("987654321987654321");
  const auto sealed = box.seal(payload, /*sender_id=*/7);
  const auto opened = box.open(sealed, /*expected_sender=*/7);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(SealedBox, RejectsWrongSenderIdentity) {
  const SealedBox box(mpint::BigInt{42});
  const auto sealed = box.seal(mpint::BigInt{1000}, 7);
  // Paper's validity check: decrypted identity must match the claimed sender.
  EXPECT_FALSE(box.open(sealed, 8).has_value());
}

TEST(SealedBox, RejectsWrongGroupKey) {
  const SealedBox good(mpint::BigInt{42});
  const SealedBox bad(mpint::BigInt{43});
  const auto sealed = good.seal(mpint::BigInt{1000}, 7);
  EXPECT_FALSE(bad.open(sealed, 7).has_value());
}

TEST(SealedBox, RejectsTamperedCiphertext) {
  const SealedBox box(mpint::BigInt{42});
  auto sealed = box.seal(mpint::BigInt{1000}, 7);
  int rejected = 0;
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    auto copy = sealed;
    copy[i] ^= 0x01;
    if (!box.open(copy, 7).has_value()) ++rejected;
  }
  // CBC + identity suffix: flipping any byte must corrupt either padding or
  // the identity with overwhelming probability. Allow no more than one fluke.
  EXPECT_GE(rejected, static_cast<int>(sealed.size()) - 1);
}

TEST(SealedBox, LargePayloadRoundTrip) {
  const SealedBox box(mpint::BigInt::from_hex("1234567890abcdef1234567890abcdef"));
  hash::HmacDrbg rng(5, "payload");
  const auto payload = mpint::random_bits(rng, 2048);
  const auto sealed = box.seal(payload, 1001, /*sequence=*/5);
  const auto opened = box.open(sealed, 1001, /*sequence=*/5);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
  // Wrong sequence => different IV => garbage.
  EXPECT_FALSE(box.open(sealed, 1001, 6).has_value());
}

}  // namespace
}  // namespace idgka::symc
