// Trace analytics: span reconstruction, attribution and critical paths
// over hand-built Chrome trace documents (exact arithmetic), plus the
// JSON reader the analytics are built on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "obs/trace.h"

namespace idgka {
namespace {

using obs::analysis::Report;
using obs::analysis::Span;
using obs::json::JsonParseError;
using obs::json::JsonValue;

// ------------------------------------------------ synthetic trace builder

std::string ev(const char* name, const char* cat, const char* ph, std::uint64_t ts, int tid) {
  char buf[192];
  std::snprintf(buf, sizeof buf, R"({"name":"%s","cat":"%s","ph":"%s","ts":%llu,"pid":1,"tid":%d})",
                name, cat, ph, static_cast<unsigned long long>(ts), tid);
  return buf;
}

std::string meta(const char* track, int tid) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"%s"}})", tid,
                track);
  return buf;
}

std::string trace_doc(const std::vector<std::string>& events) {
  std::string out = R"({"traceEvents":[)";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ',';
    out += events[i];
  }
  out += R"(],"displayTimeUnit":"ms"})";
  return out;
}

/// One op span with three nested layer spans — every number checked below
/// is exact:
///   sim.op.join [0,100]  self = 100 - 20 - 50 = 30   (cat sim)
///     gka.round [10,30]  self = 20                    (cat gka)
///     cluster.rekey [40,90] self = 50 - 10 = 40       (cat cluster)
///       net.deliver [50,60] self = 10                 (cat net)
std::string nested_op_trace() {
  return trace_doc({
      meta("t", 1),
      ev("sim.op.join", "sim", "B", 0, 1),
      ev("gka.round", "gka", "B", 10, 1),
      ev("gka.round", "gka", "E", 30, 1),
      ev("cluster.rekey", "cluster", "B", 40, 1),
      ev("net.deliver", "net", "B", 50, 1),
      ev("net.deliver", "net", "E", 60, 1),
      ev("cluster.rekey", "cluster", "E", 90, 1),
      ev("done", "sim", "i", 95, 1),
      ev("sim.op.join", "sim", "E", 100, 1),
  });
}

// ------------------------------------------------------------ span trees

TEST(Analysis, BuildSpansReconstructsTreeAndSelfTime) {
  const std::vector<Span> spans = obs::analysis::build_spans(obs::json::parse(nested_op_trace()));
  ASSERT_EQ(spans.size(), 4U);
  // Spans come back in start order.
  EXPECT_EQ(spans[0].name, "sim.op.join");
  EXPECT_EQ(spans[1].name, "gka.round");
  EXPECT_EQ(spans[2].name, "cluster.rekey");
  EXPECT_EQ(spans[3].name, "net.deliver");
  // Tree shape: op is the root, gka and cluster are its children, net
  // nests under cluster.
  EXPECT_EQ(spans[0].parent, Span::kNoParent);
  EXPECT_EQ(spans[1].parent, 0U);
  EXPECT_EQ(spans[2].parent, 0U);
  EXPECT_EQ(spans[3].parent, 2U);
  EXPECT_EQ(spans[0].children, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[3].depth, 2);
  // Durations and exclusive (self) time.
  EXPECT_EQ(spans[0].duration_us(), 100U);
  EXPECT_EQ(spans[0].self_us, 30U);
  EXPECT_EQ(spans[1].self_us, 20U);
  EXPECT_EQ(spans[2].self_us, 40U);
  EXPECT_EQ(spans[3].self_us, 10U);
  for (const Span& s : spans) EXPECT_FALSE(s.truncated);
}

TEST(Analysis, TruncatedSpanClosesAtLastTrackTimestamp) {
  const std::string doc = trace_doc({
      meta("u", 1),
      ev("lost.end", "x", "B", 5, 1),
      ev("tick", "x", "i", 42, 1),  // last event on the track
  });
  const std::vector<Span> spans = obs::analysis::build_spans(obs::json::parse(doc));
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_TRUE(spans[0].truncated);
  EXPECT_EQ(spans[0].end_us, 42U);
}

TEST(Analysis, StrayEndEventsAreDropped) {
  const std::string doc = trace_doc({
      meta("t", 1),
      ev("orphan", "x", "E", 7, 1),  // E with no open B: ring wrapped past it
      ev("real", "x", "B", 10, 1),
      ev("real", "x", "E", 20, 1),
  });
  const std::vector<Span> spans = obs::analysis::build_spans(obs::json::parse(doc));
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_EQ(spans[0].name, "real");
  EXPECT_EQ(spans[0].duration_us(), 10U);
}

TEST(Analysis, TracksNestIndependently) {
  const std::string doc = trace_doc({
      meta("a", 1),
      meta("b", 2),
      ev("outer.a", "x", "B", 0, 1),
      ev("outer.b", "y", "B", 5, 2),   // overlaps track a — NOT a child of it
      ev("outer.b", "y", "E", 50, 2),
      ev("outer.a", "x", "E", 100, 1),
  });
  const std::vector<Span> spans = obs::analysis::build_spans(obs::json::parse(doc));
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_EQ(spans[0].parent, Span::kNoParent);
  EXPECT_EQ(spans[1].parent, Span::kNoParent);
  EXPECT_EQ(spans[0].self_us, 100U);
  EXPECT_EQ(spans[1].self_us, 45U);
}

TEST(Analysis, RejectsNonTraceDocuments) {
  EXPECT_THROW((void)obs::analysis::build_spans(obs::json::parse(R"({"hello":1})")),
               std::invalid_argument);
  EXPECT_THROW((void)obs::analysis::build_spans(obs::json::parse("[1,2]")),
               std::invalid_argument);
}

// ------------------------------------------------------- full report math

TEST(Analysis, ReportAttributesLatencyByLayer) {
  const Report r = obs::analysis::analyze(nested_op_trace());
  EXPECT_EQ(r.span_count, 4U);
  EXPECT_EQ(r.instant_count, 1U);
  EXPECT_EQ(r.truncated_spans, 0U);
  EXPECT_EQ(r.trace_start_us, 0U);
  EXPECT_EQ(r.trace_end_us, 100U);
  // Exclusive time per layer sums to the total traced time.
  ASSERT_TRUE(r.layers.contains("sim"));
  EXPECT_EQ(r.layers.at("sim").self_us, 30U);
  EXPECT_EQ(r.layers.at("gka").self_us, 20U);
  EXPECT_EQ(r.layers.at("cluster").self_us, 40U);
  EXPECT_EQ(r.layers.at("net").self_us, 10U);
  EXPECT_EQ(r.layers.at("cluster").total_us, 50U);  // inclusive
  std::uint64_t total_self = 0;
  for (const auto& [cat, stat] : r.layers) total_self += stat.self_us;
  EXPECT_EQ(total_self, 100U);
}

TEST(Analysis, OpSummaryCarriesBreakdownAndCriticalPath) {
  const Report r = obs::analysis::analyze(nested_op_trace());
  ASSERT_EQ(r.ops.size(), 1U);
  const obs::analysis::OpSummary& op = r.ops.front();
  EXPECT_EQ(op.name, "sim.op.join");
  EXPECT_EQ(op.duration_us, 100U);
  // The op's per-layer breakdown covers its whole subtree and sums to its
  // duration.
  EXPECT_EQ(op.self_us_by_cat.at("sim"), 30U);
  EXPECT_EQ(op.self_us_by_cat.at("gka"), 20U);
  EXPECT_EQ(op.self_us_by_cat.at("cluster"), 40U);
  EXPECT_EQ(op.self_us_by_cat.at("net"), 10U);
  // Critical path follows the longest child at every level:
  // op(100) -> cluster.rekey(50) -> net.deliver(10).
  ASSERT_EQ(op.critical_path.size(), 3U);
  EXPECT_EQ(op.critical_path[0].name, "sim.op.join");
  EXPECT_EQ(op.critical_path[1].name, "cluster.rekey");
  EXPECT_EQ(op.critical_path[2].name, "net.deliver");
  EXPECT_EQ(op.critical_path[1].duration_us, 50U);
}

TEST(Analysis, TopSlowestOrderingAndTopKCap) {
  const Report r2 = obs::analysis::analyze(nested_op_trace(), 2);
  ASSERT_EQ(r2.top_slowest.size(), 2U);
  EXPECT_EQ(r2.spans[r2.top_slowest[0]].name, "sim.op.join");
  EXPECT_EQ(r2.spans[r2.top_slowest[1]].name, "cluster.rekey");
  const Report all = obs::analysis::analyze(nested_op_trace(), 100);
  ASSERT_EQ(all.top_slowest.size(), 4U);  // capped at span count
  for (std::size_t i = 1; i < all.top_slowest.size(); ++i) {
    EXPECT_GE(all.spans[all.top_slowest[i - 1]].duration_us(),
              all.spans[all.top_slowest[i]].duration_us());
  }
}

TEST(Analysis, ReportSerializesToJsonAndMarkdown) {
  const Report r = obs::analysis::analyze(nested_op_trace());
  const std::string json = r.to_json();
  // The report's own JSON parses back and carries the headline numbers.
  const JsonValue doc = obs::json::parse(json);
  EXPECT_EQ(doc.at("spans").as_uint(), 4U);
  EXPECT_TRUE(doc.at("layers").is_object());
  EXPECT_TRUE(doc.at("ops").is_array());
  const std::string md = r.to_markdown();
  EXPECT_NE(md.find("sim.op.join"), std::string::npos);
  EXPECT_NE(md.find("cluster"), std::string::npos);
}

#if IDGKA_OBS
// Round trip: events recorded by the real flight recorder, exported by the
// real exporter, analyzed back — names and nesting must survive.
TEST(Analysis, RoundTripsThroughTheRecorder) {
  obs::clear();
  obs::set_trace_enabled(true);
  obs::set_thread_track("roundtrip");
  {
    OBS_SPAN("sim.op.form", "sim");
    { OBS_SPAN("gka.round", "gka"); }
    OBS_INSTANT("net.drop", "net");
  }
  obs::set_trace_enabled(false);
  const Report r = obs::analysis::analyze(obs::export_chrome_trace());
  obs::clear();
  EXPECT_EQ(r.span_count, 2U);
  EXPECT_EQ(r.instant_count, 1U);
  ASSERT_EQ(r.ops.size(), 1U);
  EXPECT_EQ(r.ops.front().name, "sim.op.form");
  EXPECT_EQ(r.ops.front().track, "roundtrip");
}
#endif  // IDGKA_OBS

// ------------------------------------------------------------ json reader

TEST(JsonReader, ParsesWriterOutputExactly) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("str", "a\"b\\c\n");
  w.kv("u", std::uint64_t{18446744073709551615ULL});
  w.kv("i", std::int64_t{-42});
  w.kv("d", 1.5);
  w.kv("t", true);
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.key("obj").begin_object().kv("nested", 7).end_object();
  w.end_object();
  const JsonValue doc = obs::json::parse(w.take());
  EXPECT_EQ(doc.at("str").as_string(), "a\"b\\c\n");
  EXPECT_EQ(doc.at("u").as_uint(), 18446744073709551615ULL);
  EXPECT_EQ(doc.at("i").as_int(), -42);
  EXPECT_DOUBLE_EQ(doc.at("d").as_double(), 1.5);
  EXPECT_TRUE(doc.at("t").as_bool());
  ASSERT_EQ(doc.at("arr").as_array().size(), 2U);
  EXPECT_EQ(doc.at("arr").as_array()[1].as_uint(), 2U);
  EXPECT_EQ(doc.at("obj").at("nested").as_uint(), 7U);
  // Missing-field behaviour: operator[] is a null value, at() throws.
  EXPECT_TRUE(doc["absent"].is_null());
  EXPECT_THROW((void)doc.at("absent"), std::out_of_range);
}

TEST(JsonReader, StrictnessErrors) {
  EXPECT_THROW((void)obs::json::parse(""), JsonParseError);
  EXPECT_THROW((void)obs::json::parse("{\"a\":1} trailing"), JsonParseError);
  EXPECT_THROW((void)obs::json::parse("{\"a\":1"), JsonParseError);   // unterminated
  EXPECT_THROW((void)obs::json::parse("[1,]"), JsonParseError);       // trailing comma
  EXPECT_THROW((void)obs::json::parse("\"bad\\q\""), JsonParseError); // bad escape
  EXPECT_THROW((void)obs::json::parse("{'a':1}"), JsonParseError);    // single quotes
  try {
    (void)obs::json::parse("[1, x]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GT(e.offset(), 0U);  // error reports where, not just that
  }
}

TEST(JsonReader, TypedAccessorsRejectMismatches) {
  const JsonValue doc = obs::json::parse(R"({"d":1.5,"u":3})");
  EXPECT_THROW((void)doc.at("d").as_uint(), std::logic_error);  // 1.5 is not a count
  EXPECT_THROW((void)doc.at("u").as_string(), std::logic_error);
  EXPECT_DOUBLE_EQ(doc.at("u").as_double(), 3.0);  // numeric widening is fine
}

TEST(JsonReader, FlattenNumbersPathsThroughArraysAndObjects) {
  const auto flat = obs::json::flatten_numbers(
      obs::json::parse(R"({"a":{"b":1,"skip":"str"},"arr":[10,{"c":2.5}],"top":3})"));
  ASSERT_EQ(flat.size(), 4U);
  EXPECT_DOUBLE_EQ(flat.at("a.b"), 1.0);
  EXPECT_DOUBLE_EQ(flat.at("arr.0"), 10.0);
  EXPECT_DOUBLE_EQ(flat.at("arr.1.c"), 2.5);
  EXPECT_DOUBLE_EQ(flat.at("top"), 3.0);
}

}  // namespace
}  // namespace idgka
