// Elliptic-curve arithmetic tests: named-curve constants, group laws,
// scalar-multiplication properties, toy-curve generation.
#include "ec/curve.h"

#include <gtest/gtest.h>

#include "hash/hmac_drbg.h"
#include "mpint/prime.h"

namespace idgka::ec {
namespace {

using mpint::BigInt;

TEST(NamedCurves, Secp160r1GeneratorOnCurveAndOrder) {
  const Curve& c = secp160r1();
  EXPECT_TRUE(c.is_on_curve(c.generator()));
  EXPECT_TRUE(c.mul(c.order(), c.generator()).infinity);
  EXPECT_EQ(c.p().bit_length(), 160U);
  EXPECT_EQ(c.order().bit_length(), 161U);
  EXPECT_TRUE(mpint::is_probable_prime(c.p(), *std::make_unique<hash::HmacDrbg>(1, "pr")));
}

TEST(NamedCurves, P256GeneratorOnCurveAndOrder) {
  const Curve& c = p256();
  EXPECT_TRUE(c.is_on_curve(c.generator()));
  EXPECT_TRUE(c.mul(c.order(), c.generator()).infinity);
  EXPECT_EQ(c.p().bit_length(), 256U);
}

TEST(NamedCurves, P256KnownScalarMultiple) {
  // 2G for P-256 (public test vector).
  const Curve& c = p256();
  const Point two_g = c.mul(BigInt{2}, c.generator());
  EXPECT_EQ(two_g.x.to_hex(), "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(two_g.y.to_hex(), "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

TEST(GroupLaw, IdentityAndInverse) {
  const Curve& c = secp160r1();
  const Point g = c.generator();
  const Point inf = Point::at_infinity();
  EXPECT_EQ(c.add(g, inf), g);
  EXPECT_EQ(c.add(inf, g), g);
  EXPECT_TRUE(c.add(g, c.neg(g)).infinity);
  EXPECT_TRUE(c.is_on_curve(c.neg(g)));
}

TEST(GroupLaw, AddDblConsistency) {
  const Curve& c = secp160r1();
  const Point g = c.generator();
  EXPECT_EQ(c.add(g, g), c.dbl(g));
  const Point g2 = c.dbl(g);
  const Point g3a = c.add(g2, g);
  const Point g3b = c.add(g, g2);
  EXPECT_EQ(g3a, g3b);
  EXPECT_EQ(c.mul(BigInt{3}, g), g3a);
  EXPECT_TRUE(c.is_on_curve(g3a));
}

TEST(GroupLaw, Associativity) {
  const Curve& c = secp160r1();
  hash::HmacDrbg rng(10, "assoc");
  const Point a = c.mul(mpint::random_below(rng, c.order()), c.generator());
  const Point b = c.mul(mpint::random_below(rng, c.order()), c.generator());
  const Point d = c.mul(mpint::random_below(rng, c.order()), c.generator());
  EXPECT_EQ(c.add(c.add(a, b), d), c.add(a, c.add(b, d)));
}

class ScalarMulProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScalarMulProperty, DistributesOverScalarAddition) {
  const Curve& c = secp160r1();
  hash::HmacDrbg rng(static_cast<std::uint64_t>(GetParam()), "smul");
  const BigInt k1 = mpint::random_below(rng, c.order());
  const BigInt k2 = mpint::random_below(rng, c.order());
  const Point lhs = c.mul((k1 + k2).mod(c.order()), c.generator());
  const Point rhs = c.add(c.mul(k1, c.generator()), c.mul(k2, c.generator()));
  EXPECT_EQ(lhs, rhs);
  EXPECT_TRUE(c.is_on_curve(lhs));
}

TEST_P(ScalarMulProperty, MulAddMatchesSeparate) {
  const Curve& c = secp160r1();
  hash::HmacDrbg rng(static_cast<std::uint64_t>(GetParam()) + 100, "muladd");
  const BigInt k1 = mpint::random_below(rng, c.order());
  const BigInt k2 = mpint::random_below(rng, c.order());
  const Point q = c.mul(mpint::random_below(rng, c.order()), c.generator());
  const Point lhs = c.mul_add(k1, k2, q);
  const Point rhs = c.add(c.mul(k1, c.generator()), c.mul(k2, q));
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarMulProperty, ::testing::Range(1, 9));

TEST(ScalarMul, EdgeScalars) {
  const Curve& c = secp160r1();
  const Point g = c.generator();
  EXPECT_TRUE(c.mul(BigInt{}, g).infinity);
  EXPECT_EQ(c.mul(BigInt{1}, g), g);
  EXPECT_EQ(c.mul(c.order() + BigInt{1}, g), g);  // reduction mod n
  EXPECT_EQ(c.mul(BigInt{-1}, g), c.neg(g));
  EXPECT_EQ(c.mul(c.order() - BigInt{1}, g), c.neg(g));
}

TEST(ScalarMul, RawDoesNotReduce) {
  const Curve& c = secp160r1();
  const Point g = c.generator();
  // mul_raw(n + 1) should equal G as well, but computed without reduction.
  EXPECT_EQ(c.mul_raw(c.order() + BigInt{1}, g), g);
  EXPECT_TRUE(c.mul_raw(c.order(), g).infinity);
}

TEST(Curve, RejectsBogusGenerator) {
  const Curve& c = secp160r1();
  EXPECT_THROW(Curve("bad", c.p(), c.a(), c.b(),
                     Point{BigInt{1}, BigInt{2}, false}, c.order(), BigInt{1}),
               std::invalid_argument);
}

TEST(Curve, OnCurveRejectsOffCurvePoints) {
  const Curve& c = secp160r1();
  Point bogus = c.generator();
  bogus.x = (bogus.x + BigInt{1}).mod(c.p());
  EXPECT_FALSE(c.is_on_curve(bogus));
}

TEST(ToyCurve, GeneratedCurveIsSound) {
  hash::HmacDrbg rng(77, "toy");
  const Curve c = generate_toy_curve(rng, 16);
  EXPECT_TRUE(c.is_on_curve(c.generator()));
  EXPECT_TRUE(c.mul(c.order(), c.generator()).infinity);
  // Hasse bound: |#E - (p+1)| <= 2*sqrt(p).
  const BigInt p1 = c.p() + BigInt{1};
  const BigInt diff = (c.order() > p1 ? c.order() - p1 : p1 - c.order());
  EXPECT_LE(diff * diff, BigInt{4} * c.p());
  // Group law holds on the toy curve too.
  const Point g2 = c.dbl(c.generator());
  EXPECT_EQ(c.add(c.generator(), c.generator()), g2);
  EXPECT_TRUE(c.is_on_curve(g2));
}

TEST(ToyCurve, RejectsBadSizes) {
  hash::HmacDrbg rng(78, "toy2");
  EXPECT_THROW(generate_toy_curve(rng, 4), std::invalid_argument);
  EXPECT_THROW(generate_toy_curve(rng, 40), std::invalid_argument);
}

}  // namespace
}  // namespace idgka::ec
