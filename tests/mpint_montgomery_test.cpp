// Tests for Montgomery arithmetic and prime/parameter generation.
#include "mpint/montgomery.h"

#include <gtest/gtest.h>

#include "mpint/prime.h"
#include "mpint/random.h"

namespace idgka::mpint {
namespace {

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(MontgomeryCtx(BigInt{10}), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(BigInt{1}), std::invalid_argument);
}

TEST(Montgomery, MulMatchesNaive) {
  XoshiroRng rng(11);
  for (int i = 0; i < 20; ++i) {
    BigInt m = random_bits(rng, 64 + static_cast<std::size_t>(i) * 64);
    if (m.is_even()) m += BigInt{1};
    const MontgomeryCtx ctx(m);
    for (int j = 0; j < 10; ++j) {
      const BigInt a = random_below(rng, m);
      const BigInt b = random_below(rng, m);
      EXPECT_EQ(ctx.mul(a, b), mod_mul(a, b, m));
    }
  }
}

TEST(Montgomery, PowMatchesSquareAndMultiply) {
  XoshiroRng rng(13);
  for (int i = 0; i < 10; ++i) {
    BigInt m = random_bits(rng, 256);
    if (m.is_even()) m += BigInt{1};
    const MontgomeryCtx ctx(m);
    const BigInt base = random_below(rng, m);
    const BigInt exp = random_bits(rng, 100);
    // Naive reference.
    BigInt want{1};
    for (std::size_t b = exp.bit_length(); b-- > 0;) {
      want = mod_mul(want, want, m);
      if (exp.bit(b)) want = mod_mul(want, base, m);
    }
    EXPECT_EQ(ctx.pow(base, exp), want);
  }
}

TEST(Montgomery, PowEdgeCases) {
  const MontgomeryCtx ctx(BigInt{101});
  EXPECT_EQ(ctx.pow(BigInt{5}, BigInt{0}), BigInt{1});
  EXPECT_EQ(ctx.pow(BigInt{5}, BigInt{1}), BigInt{5});
  EXPECT_EQ(ctx.pow(BigInt{0}, BigInt{5}), BigInt{});
  EXPECT_EQ(ctx.pow(BigInt{100}, BigInt{2}), BigInt{1});  // (-1)^2
}

TEST(Montgomery, PowExponentLaws) {
  XoshiroRng rng(17);
  BigInt m = random_bits(rng, 512);
  if (m.is_even()) m += BigInt{1};
  const MontgomeryCtx ctx(m);
  const BigInt g = random_below(rng, m);
  const BigInt a = random_bits(rng, 128);
  const BigInt b = random_bits(rng, 128);
  // g^(a+b) == g^a * g^b
  EXPECT_EQ(ctx.pow(g, a + b), ctx.mul(ctx.pow(g, a), ctx.pow(g, b)));
  // (g^a)^b == (g^b)^a
  EXPECT_EQ(ctx.pow(ctx.pow(g, a), b), ctx.pow(ctx.pow(g, b), a));
}

TEST(Primality, KnownSmallPrimes) {
  XoshiroRng rng(1);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 97ULL, 997ULL, 7919ULL, 104729ULL}) {
    EXPECT_TRUE(is_probable_prime(BigInt{p}, rng)) << p;
  }
  for (std::uint64_t c : {1ULL, 4ULL, 100ULL, 997ULL * 991ULL, 104729ULL * 7919ULL}) {
    EXPECT_FALSE(is_probable_prime(BigInt{c}, rng)) << c;
  }
}

TEST(Primality, KnownLargePrimeAndComposite) {
  XoshiroRng rng(2);
  // 2^127 - 1 is a Mersenne prime; 2^128 + 1 is composite (known factor 59649589127497217).
  const BigInt mersenne = (BigInt{1} << 127) - BigInt{1};
  EXPECT_TRUE(is_probable_prime(mersenne, rng));
  const BigInt fermat_like = (BigInt{1} << 128) + BigInt{1};
  EXPECT_FALSE(is_probable_prime(fermat_like, rng));
}

TEST(Primality, CarmichaelNumbersRejected) {
  XoshiroRng rng(3);
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 41041ULL, 825265ULL}) {
    EXPECT_FALSE(is_probable_prime(BigInt{c}, rng)) << c;
  }
}

TEST(PrimeGen, GeneratesExactBitLength) {
  XoshiroRng rng(4);
  for (std::size_t bits : {32U, 64U, 128U, 256U}) {
    const BigInt p = generate_prime(rng, bits, 16);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng, 16));
  }
}

TEST(PrimeGen, SchnorrGroupStructure) {
  XoshiroRng rng(5);
  const SchnorrGroup grp = generate_schnorr_group(rng, 256, 128, 12);
  EXPECT_EQ(grp.p.bit_length(), 256U);
  EXPECT_EQ(grp.q.bit_length(), 128U);
  EXPECT_TRUE(is_probable_prime(grp.p, rng, 12));
  EXPECT_TRUE(is_probable_prime(grp.q, rng, 12));
  EXPECT_EQ((grp.p - BigInt{1}).mod(grp.q), BigInt{});
  // g has order exactly q.
  EXPECT_EQ(mod_exp(grp.g, grp.q, grp.p), BigInt{1});
  EXPECT_NE(grp.g, BigInt{1});
}

TEST(PrimeGen, GqModulusInverseKeys) {
  XoshiroRng rng(6);
  const GqModulus key = generate_gq_modulus(rng, 256, BigInt{65537}, 12);
  EXPECT_EQ(key.n.bit_length(), 256U);
  EXPECT_EQ(key.p_prime * key.q_prime, key.n);
  const BigInt phi = (key.p_prime - BigInt{1}) * (key.q_prime - BigInt{1});
  EXPECT_EQ(mod_mul(key.e, key.d, phi), BigInt{1});
  // RSA round trip: (x^e)^d == x mod n.
  const BigInt x = random_below(rng, key.n);
  EXPECT_EQ(mod_exp(mod_exp(x, key.e, key.n), key.d, key.n), x);
}

TEST(PrimeGen, SupersingularParams) {
  XoshiroRng rng(7);
  const SupersingularParams params = generate_supersingular_params(rng, 256, 120, 12);
  EXPECT_EQ(params.p.bit_length(), 256U);
  EXPECT_TRUE(is_probable_prime(params.p, rng, 12));
  EXPECT_TRUE(is_probable_prime(params.q, rng, 12));
  EXPECT_EQ(params.p.low_u64() & 3U, 3U);
  EXPECT_EQ(params.cofactor * params.q, params.p + BigInt{1});
}

TEST(RandomHelpers, RangesRespected) {
  XoshiroRng rng(8);
  const BigInt lo{100};
  const BigInt hi{200};
  for (int i = 0; i < 200; ++i) {
    const BigInt v = random_range(rng, lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LT(v, hi);
  }
  for (int i = 0; i < 50; ++i) {
    const BigInt v = random_bits(rng, 65);
    EXPECT_EQ(v.bit_length(), 65U);
  }
  EXPECT_THROW(random_below(rng, BigInt{}), std::invalid_argument);
  EXPECT_THROW(random_range(rng, hi, lo), std::invalid_argument);
}

TEST(RandomHelpers, UnitIsCoprime) {
  XoshiroRng rng(9);
  const BigInt n{3 * 5 * 7 * 11 * 13};
  for (int i = 0; i < 50; ++i) {
    const BigInt u = random_unit(rng, n);
    EXPECT_TRUE(gcd(u, n).is_one());
  }
}

TEST(RandomHelpers, DeterministicUnderSeed) {
  XoshiroRng a(12345);
  XoshiroRng b(12345);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  XoshiroRng c(54321);
  bool any_diff = false;
  XoshiroRng a2(12345);
  for (int i = 0; i < 10; ++i) any_diff |= a2.next_u64() != c.next_u64();
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace idgka::mpint
