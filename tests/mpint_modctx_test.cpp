// Property tests for the shared modular-arithmetic context layer: ModContext
// exponentiation cross-checked against naive square-and-multiply, the
// even-modulus fallback path, fixed-base comb tables and the process-wide
// operation counters.
#include "mpint/mod_context.h"

#include <gtest/gtest.h>

#include "mpint/random.h"

namespace idgka::mpint {
namespace {

// Reference oracle: plain square-and-multiply over mod_mul.
BigInt naive_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt acc{1};
  acc = acc.mod(m);
  const BigInt b = base.mod(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    acc = mod_mul(acc, acc, m);
    if (exp.bit(i)) acc = mod_mul(acc, b, m);
  }
  return acc;
}

TEST(ModContext, RejectsDegenerateModulus) {
  EXPECT_THROW(ModContext(BigInt{0}), std::invalid_argument);
  EXPECT_THROW(ModContext(BigInt{1}), std::invalid_argument);
  EXPECT_THROW(ModContext(BigInt{-7}), std::invalid_argument);
  EXPECT_NO_THROW(ModContext(BigInt{2}));  // even moduli take the generic path
}

TEST(ModContext, ExpMatchesNaiveOn500RandomTriples) {
  XoshiroRng rng(2026);
  for (int i = 0; i < 500; ++i) {
    // Mixed sizes (1..4 limbs) and parities: every 4th modulus is even, so
    // both the Montgomery and the generic engine are exercised.
    const std::size_t bits = 16 + static_cast<std::size_t>(rng.next_u64() % 240);
    BigInt m = random_bits(rng, bits);
    if (m <= BigInt{1}) m = BigInt{2};
    if (i % 4 == 0) {
      if (m.is_odd()) m += BigInt{1};
    } else if (m.is_even()) {
      m += BigInt{1};
    }
    const BigInt base = random_bits(rng, 8 + static_cast<std::size_t>(rng.next_u64() % 256));
    const BigInt exp = random_bits(rng, 1 + static_cast<std::size_t>(rng.next_u64() % 160));
    const ModContext ctx(m);
    EXPECT_EQ(ctx.montgomery(), m.is_odd());
    EXPECT_EQ(ctx.exp(base, exp), naive_pow(base, exp, m))
        << "triple " << i << ": base=" << base.to_hex() << " exp=" << exp.to_hex()
        << " m=" << m.to_hex();
  }
}

TEST(ModContext, ExpEdgeCases) {
  for (const std::uint64_t mod : {101ULL, 256ULL}) {  // odd + even-fallback
    const BigInt m{mod};
    const ModContext ctx(m);
    EXPECT_EQ(ctx.exp(BigInt{5}, BigInt{0}), BigInt{1});           // exp = 0
    EXPECT_EQ(ctx.exp(BigInt{5}, BigInt{1}), BigInt{5});           // exp = 1
    EXPECT_EQ(ctx.exp(BigInt{0}, BigInt{5}), BigInt{});            // base = 0
    EXPECT_EQ(ctx.exp(BigInt{0}, BigInt{0}), BigInt{1});           // 0^0 = 1
    EXPECT_EQ(ctx.exp(m + BigInt{3}, BigInt{2}), BigInt{9});       // base >= m
    EXPECT_EQ(ctx.exp(-BigInt{1}, BigInt{2}), BigInt{1});          // negative base
  }
  // Negative exponent inverts the base (odd modulus, invertible base).
  const ModContext ctx(BigInt{101});
  EXPECT_EQ(ctx.mul(ctx.exp(BigInt{7}, BigInt{-3}), ctx.exp(BigInt{7}, BigInt{3})), BigInt{1});
  EXPECT_THROW((void)ctx.exp(BigInt{0}, BigInt{-1}), std::domain_error);
}

TEST(ModContext, ExponentLawsAcrossWindowSizes) {
  XoshiroRng rng(31);
  BigInt m = random_bits(rng, 512);
  if (m.is_even()) m += BigInt{1};
  const BigInt g = random_below(rng, m);
  // Exponents wide enough (> 239 bits) that fit_window() keeps the
  // configured width — otherwise w = 5/8 would silently re-test w = 4.
  const BigInt a = random_bits(rng, 300);
  const BigInt b = random_bits(rng, 300);
  const BigInt want = ModContext(m).exp(g, a + b);
  for (const unsigned w : {2U, 4U, 5U, 8U}) {
    const ModContext ctx(m, w);
    EXPECT_EQ(ctx.window_bits(), w);
    EXPECT_EQ(ctx.mul(ctx.exp(g, a), ctx.exp(g, b)), want) << "window " << w;
  }
}

TEST(ModContext, FixedBaseCombMatchesGenericExp) {
  XoshiroRng rng(47);
  for (int rep = 0; rep < 8; ++rep) {
    BigInt m = random_bits(rng, 256 + static_cast<std::size_t>(rep) * 64);
    if (m.is_even()) m += BigInt{1};
    const ModContext ctx(m);
    const BigInt g = random_below(rng, m);
    const std::size_t exp_bits = 160;
    for (const unsigned teeth : {0U, 3U, 6U}) {  // 0 = default
      const FixedBaseTable table = ctx.make_fixed_base(g, exp_bits, teeth);
      EXPECT_TRUE(table.comb_available());
      EXPECT_GT(table.table_bytes(), 0U);
      for (int i = 0; i < 12; ++i) {
        const BigInt e = random_bits(rng, 1 + static_cast<std::size_t>(rng.next_u64() % exp_bits));
        EXPECT_EQ(ctx.exp(table, e), ctx.exp(g, e)) << "teeth " << teeth;
      }
      // Edges: zero, one, all-ones at full width, and overflow fallback.
      EXPECT_EQ(ctx.exp(table, BigInt{0}), BigInt{1});
      EXPECT_EQ(ctx.exp(table, BigInt{1}), g.mod(m));
      const BigInt full = (BigInt{1} << exp_bits) - BigInt{1};
      EXPECT_EQ(ctx.exp(table, full), ctx.exp(g, full));
      const BigInt wide = BigInt{1} << (exp_bits + 5);  // wider than the table
      EXPECT_EQ(ctx.exp(table, wide), ctx.exp(g, wide));
    }
  }
}

TEST(ModContext, FixedBaseEvenModulusFallsBack) {
  const ModContext ctx(BigInt{1000});
  const FixedBaseTable table = ctx.make_fixed_base(BigInt{2}, 64);
  EXPECT_FALSE(table.comb_available());
  EXPECT_EQ(ctx.exp(table, BigInt{10}), BigInt{24});  // 2^10 mod 1000
}

TEST(ModContext, FixedBaseTableRejectsForeignModulus) {
  const ModContext a(BigInt{101});
  const ModContext b(BigInt{103});
  const FixedBaseTable table = a.make_fixed_base(BigInt{5}, 32);
  EXPECT_THROW((void)b.exp(table, BigInt{3}), std::invalid_argument);
}

TEST(ModContext, OpCountersTrackWork) {
  const ModContext ctx(BigInt{101});
  const OpCounts before = op_counts();
  for (int i = 0; i < 7; ++i) (void)ctx.exp(BigInt{5}, BigInt{1 + i});
  (void)ctx.mul(BigInt{5}, BigInt{6});
  const OpCounts after = op_counts();
  EXPECT_EQ(after.exps - before.exps, 7U);
  EXPECT_GT(after.mod_muls, before.mod_muls);
}

// ------------------------------------------------------------ multi-exp ---

TEST(ModContext, MultiExpMatchesNaiveOn500RandomTuples) {
  XoshiroRng rng(7177);
  for (int i = 0; i < 500; ++i) {
    const std::size_t bits = 16 + static_cast<std::size_t>(rng.next_u64() % 240);
    BigInt m = random_bits(rng, bits);
    if (m <= BigInt{1}) m = BigInt{3};
    if (i % 4 == 0) {
      // Every 4th modulus even: the sequential generic fallback.
      if (m.is_odd()) m += BigInt{1};
    } else if (m.is_even()) {
      m += BigInt{1};
    }
    // Arities spanning both engines: 1..8 hits Straus, > 8 hits Pippenger.
    const std::size_t arity = 1 + static_cast<std::size_t>(rng.next_u64() % 24);
    std::vector<BigInt> bases(arity);
    std::vector<BigInt> exps(arity);
    BigInt want{1};
    want = want.mod(m);
    for (std::size_t t = 0; t < arity; ++t) {
      bases[t] = random_bits(rng, 8 + static_cast<std::size_t>(rng.next_u64() % 128));
      // Mixed widths so narrow and wide partitions both fill: some tiny
      // (Pippenger bucket shapes), some > 64 bits (Straus shapes).
      const std::size_t ebits = 1 + static_cast<std::size_t>(rng.next_u64() % 96);
      exps[t] = random_bits(rng, ebits);
      want = mod_mul(want, naive_pow(bases[t], exps[t], m), m);
    }
    const ModContext ctx(m);
    EXPECT_EQ(ctx.multi_exp(bases, exps), want)
        << "tuple " << i << ": arity=" << arity << " m=" << m.to_hex();
  }
}

TEST(ModContext, MultiExpArityOneDegeneratesToExp) {
  XoshiroRng rng(7178);
  BigInt m = random_bits(rng, 256);
  if (m.is_even()) m += BigInt{1};
  const ModContext ctx(m);
  for (int i = 0; i < 20; ++i) {
    const std::vector<BigInt> base{random_below(rng, m)};
    const std::vector<BigInt> exp{random_bits(rng, 200)};
    EXPECT_EQ(ctx.multi_exp(base, exp), ctx.exp(base[0], exp[0]));
  }
}

TEST(ModContext, MultiExpZeroAndNegativeExponents) {
  const ModContext ctx(BigInt{101});
  // Zero exponents drop out entirely.
  {
    const std::vector<BigInt> bases{BigInt{5}, BigInt{7}, BigInt{9}};
    const std::vector<BigInt> exps{BigInt{0}, BigInt{3}, BigInt{0}};
    EXPECT_EQ(ctx.multi_exp(bases, exps), ctx.exp(BigInt{7}, BigInt{3}));
  }
  // All-zero exponents: the empty product.
  {
    const std::vector<BigInt> bases{BigInt{5}};
    const std::vector<BigInt> exps{BigInt{0}};
    EXPECT_EQ(ctx.multi_exp(bases, exps), BigInt{1});
  }
  // A negative exponent swaps in the inverted base: 7^3 * 7^{-3} = 1.
  {
    const std::vector<BigInt> bases{BigInt{7}, BigInt{7}};
    const std::vector<BigInt> exps{BigInt{3}, BigInt{-3}};
    EXPECT_EQ(ctx.multi_exp(bases, exps), BigInt{1});
  }
  // Non-invertible base with a negative exponent still throws.
  {
    const std::vector<BigInt> bases{BigInt{0}};
    const std::vector<BigInt> exps{BigInt{-1}};
    EXPECT_THROW((void)ctx.multi_exp(bases, exps), std::domain_error);
  }
}

TEST(ModContext, MultiExpEvenModulusFallback) {
  XoshiroRng rng(7179);
  const BigInt m{1000};
  const ModContext ctx(m);
  EXPECT_FALSE(ctx.montgomery());
  for (int i = 0; i < 10; ++i) {
    std::vector<BigInt> bases(5);
    std::vector<BigInt> exps(5);
    BigInt want{1};
    for (std::size_t t = 0; t < 5; ++t) {
      bases[t] = random_bits(rng, 32);
      exps[t] = random_bits(rng, 24);
      want = mod_mul(want, naive_pow(bases[t], exps[t], m), m);
    }
    EXPECT_EQ(ctx.multi_exp(bases, exps), want);
  }
}

TEST(ModContext, MultiExpRejectsMismatchedSpans) {
  const ModContext ctx(BigInt{101});
  const std::vector<BigInt> bases{BigInt{2}, BigInt{3}};
  const std::vector<BigInt> exps{BigInt{4}};
  EXPECT_THROW((void)ctx.multi_exp(bases, exps), std::invalid_argument);
}

TEST(ModContext, ProductMatchesSequentialMul) {
  XoshiroRng rng(7180);
  for (const bool odd : {true, false}) {
    BigInt m = random_bits(rng, 192);
    if (m.is_odd() != odd) m += BigInt{1};
    if (m <= BigInt{1}) m = odd ? BigInt{3} : BigInt{4};
    const ModContext ctx(m);
    for (const std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                    std::size_t{17}, std::size_t{64}}) {
      std::vector<BigInt> values(count);
      BigInt want{1};
      want = want.mod(m);
      for (BigInt& v : values) {
        v = random_bits(rng, 8 + static_cast<std::size_t>(rng.next_u64() % 256));
        want = mod_mul(want, v, m);
      }
      EXPECT_EQ(ctx.product(values), want) << "count " << count << " odd " << odd;
    }
  }
}

TEST(ModContext, MultiExpCounterTracksCalls) {
  const ModContext ctx(BigInt{101});
  const std::vector<BigInt> bases{BigInt{3}, BigInt{5}};
  const std::vector<BigInt> exps{BigInt{11}, BigInt{13}};
  const OpCounts before = op_counts();
  (void)ctx.multi_exp(bases, exps);
  (void)ctx.multi_exp(bases, exps);
  const OpCounts after = op_counts();
  EXPECT_EQ(after.multi_exps - before.multi_exps, 2U);
  EXPECT_GT(after.mod_muls, before.mod_muls);
  EXPECT_EQ(after.exps, before.exps);  // joint calls are not plain exps
}

// ------------------------------------------------------------ residues ---

TEST(ModContext, ResidueChainMatchesBigIntOn500RandomTriples) {
  XoshiroRng rng(40406);
  for (int i = 0; i < 500; ++i) {
    // Mixed widths and parities: every 4th modulus is even, so the
    // canonical (non-Montgomery) residue fallback is exercised too.
    const std::size_t bits = 16 + static_cast<std::size_t>(rng.next_u64() % 240);
    BigInt m = random_bits(rng, bits);
    if (m <= BigInt{1}) m = BigInt{2};
    if (i % 4 == 0) {
      if (m.is_odd()) m += BigInt{1};
    } else if (m.is_even()) {
      m += BigInt{1};
    }
    const BigInt a = random_bits(rng, 8 + static_cast<std::size_t>(rng.next_u64() % 256));
    const BigInt b = random_bits(rng, 8 + static_cast<std::size_t>(rng.next_u64() % 256));
    const BigInt e = random_bits(rng, 1 + static_cast<std::size_t>(rng.next_u64() % 160));
    const ModContext ctx(m);

    // Round trip is the identity on canonical values.
    EXPECT_EQ(ctx.from_residue(ctx.to_residue(a)), a.mod(m));

    // add / sub / mul / sqr / exp through the residue domain against the
    // BigInt API (both domains are linear, so +/- commute with conversion).
    const Residue ra = ctx.to_residue(a);
    const Residue rb = ctx.to_residue(b);
    Residue r;
    ctx.add(ra, rb, r);
    EXPECT_EQ(ctx.from_residue(r), (a + b).mod(m)) << "triple " << i << " m=" << m.to_hex();
    ctx.sub(ra, rb, r);
    EXPECT_EQ(ctx.from_residue(r), (a - b).mod(m)) << "triple " << i << " m=" << m.to_hex();
    ctx.mul(ra, rb, r);
    EXPECT_EQ(ctx.from_residue(r), ctx.mul(a, b)) << "triple " << i << " m=" << m.to_hex();
    ctx.sqr(ra, r);
    EXPECT_EQ(ctx.from_residue(r), ctx.mul(a, a)) << "triple " << i << " m=" << m.to_hex();
    ctx.exp(ra, e, r);
    EXPECT_EQ(ctx.from_residue(r), ctx.exp(a, e))
        << "triple " << i << ": a=" << a.to_hex() << " e=" << e.to_hex() << " m=" << m.to_hex();
  }
}

TEST(ModContext, ResidueEdgeCases) {
  for (const std::uint64_t mod : {101ULL, 256ULL}) {  // odd + even-fallback
    const BigInt m{mod};
    const ModContext ctx(m);
    const Residue zero = ctx.to_residue(BigInt{});
    const Residue one = ctx.one_residue();
    const Residue top = ctx.to_residue(m - BigInt{1});  // p - 1
    EXPECT_EQ(ctx.from_residue(zero), BigInt{});
    EXPECT_EQ(ctx.from_residue(one), BigInt{1});
    EXPECT_EQ(ctx.from_residue(ctx.to_residue(m)), BigInt{});         // wraps
    EXPECT_EQ(ctx.from_residue(ctx.to_residue(m + BigInt{5})), BigInt{5});
    Residue r;
    ctx.sqr(top, r);
    EXPECT_EQ(ctx.from_residue(r), BigInt{1});  // (p-1)^2 = 1 mod p
    ctx.mul(top, one, r);
    EXPECT_EQ(ctx.from_residue(r), m - BigInt{1});
    ctx.exp(zero, BigInt{0}, r);
    EXPECT_EQ(ctx.from_residue(r), BigInt{1});  // 0^0 = 1
    ctx.exp(top, BigInt{3}, r);
    EXPECT_EQ(ctx.from_residue(r), ctx.exp(m - BigInt{1}, BigInt{3}));
  }
}

TEST(ModContext, ResidueOpsAreAliasingSafe) {
  XoshiroRng rng(40407);
  BigInt m = random_bits(rng, 512);
  if (m.is_even()) m += BigInt{1};
  const ModContext ctx(m);
  const BigInt a = random_below(rng, m);
  const BigInt e{0x1d3557};
  const Residue ra = ctx.to_residue(a);

  Residue want;
  ctx.add(ra, ra, want);
  Residue r = ra;
  ctx.add(r, r, r);  // out aliases both operands
  EXPECT_EQ(ctx.from_residue(r), ctx.from_residue(want));

  r = ra;
  ctx.sub(r, r, r);
  EXPECT_TRUE(r.is_zero());

  ctx.mul(ra, ra, want);
  r = ra;
  ctx.mul(r, r, r);
  EXPECT_EQ(ctx.from_residue(r), ctx.from_residue(want));

  ctx.sqr(ra, want);
  r = ra;
  ctx.sqr(r, r);
  EXPECT_EQ(ctx.from_residue(r), ctx.from_residue(want));

  ctx.exp(ra, e, want);
  r = ra;
  ctx.exp(r, e, r);
  EXPECT_EQ(ctx.from_residue(r), ctx.from_residue(want));
}

TEST(ModContext, ResidueAccumulationMatchesProductAndMultiExp) {
  XoshiroRng rng(40408);
  BigInt m = random_bits(rng, 384);
  if (m.is_even()) m += BigInt{1};
  const ModContext ctx(m);
  std::vector<BigInt> bases(6);
  std::vector<BigInt> exps(6);
  Residue prod = ctx.one_residue();
  Residue joint = ctx.one_residue();
  for (std::size_t i = 0; i < bases.size(); ++i) {
    bases[i] = random_below(rng, m);
    exps[i] = random_bits(rng, 64);
    Residue term = ctx.to_residue(bases[i]);
    ctx.mul(prod, term, prod);
    ctx.exp(term, exps[i], term);
    ctx.mul(joint, term, joint);
  }
  EXPECT_EQ(ctx.from_residue(prod), ctx.product(bases));
  EXPECT_EQ(ctx.from_residue(joint), ctx.multi_exp(bases, exps));
}

TEST(ModContext, SqrCounterTracksDedicatedKernel) {
  const ModContext ctx(BigInt{101});
  const Residue r = ctx.to_residue(BigInt{7});
  Residue out;
  const OpCounts before = op_counts();
  for (int i = 0; i < 5; ++i) ctx.sqr(r, out);
  ctx.mul(r, r, out);
  const OpCounts mid = op_counts();
  EXPECT_EQ(mid.mod_sqrs - before.mod_sqrs, 5U);  // mul never counts as sqr
  // Square-heavy exponent ladders attribute their squarings to mod_sqrs.
  (void)ctx.exp(BigInt{5}, BigInt{0xffff});
  const OpCounts after = op_counts();
  EXPECT_GT(after.mod_sqrs, mid.mod_sqrs);
  EXPECT_GT(after.mod_muls, mid.mod_muls);
}

TEST(ModContext, ShimMatchesContext) {
  XoshiroRng rng(59);
  BigInt m = random_bits(rng, 192);
  if (m.is_even()) m += BigInt{1};
  const ModContext ctx(m);
  for (int i = 0; i < 20; ++i) {
    const BigInt base = random_below(rng, m);
    const BigInt e = random_bits(rng, 96);
    EXPECT_EQ(mod_exp(base, e, m), ctx.exp(base, e));
  }
}

}  // namespace
}  // namespace idgka::mpint
