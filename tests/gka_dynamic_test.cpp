// Dynamic membership protocols (Section 7): Join, Leave, Merge, Partition.
//
// Correctness anchor: after every event the group key equals the BD oracle
// over the *current* ring with the members' *current* ephemerals — i.e. the
// incremental protocols land on exactly the key a from-scratch BD run with
// the same randomness would produce (Eqs. 6, 9, 11, 13).
#include <gtest/gtest.h>

#include "gka/bd_math.h"
#include "gka/session.h"

namespace idgka::gka {
namespace {

Authority& test_authority() {
  static Authority authority(SecurityProfile::kTest, /*seed=*/54321);
  return authority;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 200) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

BigInt oracle_key(const GroupSession& session) {
  std::vector<BigInt> r;
  for (const MemberCtx& m : session.members()) r.push_back(m.r);
  return bd::direct_key(session.authority().params().group(), r);
}

void expect_consistent(const GroupSession& session, const char* what) {
  ASSERT_FALSE(session.key().is_zero()) << what;
  for (const MemberCtx& m : session.members()) {
    EXPECT_EQ(m.key, session.key()) << what << " member " << m.cred.id;
    EXPECT_EQ(m.ring, session.members().front().ring) << what;
    // Every member agrees on everyone's z (needed for the next event).
    for (const std::uint32_t id : m.ring) {
      EXPECT_EQ(m.z_map.at(id), session.members().front().z_map.at(id)) << what;
    }
  }
  EXPECT_EQ(session.key(), oracle_key(session)) << what;
}

TEST(Join, SingleJoinProducesConsistentRing) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(5), 1);
  ASSERT_TRUE(session.form().success);
  const BigInt before = session.key();

  const RunResult result = session.join(999);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 3);
  EXPECT_EQ(session.size(), 6U);
  EXPECT_NE(session.key(), before);  // key freshness
  expect_consistent(session, "after join");
}

TEST(Join, MinimalGroupOfTwo) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(2), 2);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.join(998).success);
  EXPECT_EQ(session.size(), 3U);
  expect_consistent(session, "join into pair");
}

TEST(Join, SequentialJoins) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(3), 3);
  ASSERT_TRUE(session.form().success);
  for (std::uint32_t id = 900; id < 904; ++id) {
    ASSERT_TRUE(session.join(id).success) << id;
    expect_consistent(session, "sequential join");
  }
  EXPECT_EQ(session.size(), 7U);
}

TEST(Join, RejectsDuplicateId) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(3), 4);
  ASSERT_TRUE(session.form().success);
  EXPECT_THROW((void)session.join(200), std::invalid_argument);
}

TEST(Leave, MiddleMemberLeaves) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(6), 5);
  ASSERT_TRUE(session.form().success);
  const BigInt before = session.key();

  const RunResult result = session.leave(202);  // position 3 in the ring
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(session.size(), 5U);
  EXPECT_NE(session.key(), before);
  expect_consistent(session, "after leave");
}

TEST(Leave, ControllerLeaves) {
  // U_1 itself departs; the survivor ring re-anchors on the next member.
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(5), 6);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.leave(200).success);
  EXPECT_EQ(session.size(), 4U);
  expect_consistent(session, "controller leave");
}

TEST(Leave, LastMemberLeaves) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(5), 7);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.leave(204).success);
  expect_consistent(session, "tail leave");
}

TEST(Leave, DownToMinimumSize) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(4), 8);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.leave(201).success);
  ASSERT_TRUE(session.leave(202).success);
  EXPECT_EQ(session.size(), 2U);
  expect_consistent(session, "two remain");
  EXPECT_THROW((void)session.leave(200), std::invalid_argument);
}

TEST(Leave, ForwardSecrecyKeyChanges) {
  // The departed member must not know the new key: at minimum the key
  // changes and fresh odd-survivor randomness enters the exponent.
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(5), 9);
  ASSERT_TRUE(session.form().success);
  const BigInt old_key = session.key();
  ASSERT_TRUE(session.leave(203).success);
  EXPECT_NE(session.key(), old_key);
}

TEST(Partition, MultipleLeavers) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(9), 10);
  ASSERT_TRUE(session.form().success);
  const RunResult result = session.partition({206, 207, 208});
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(session.size(), 6U);
  expect_consistent(session, "after partition");
}

TEST(Partition, NonContiguousLeavers) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(8), 11);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.partition({201, 204, 206}).success);
  EXPECT_EQ(session.size(), 5U);
  expect_consistent(session, "gappy partition");
}

TEST(Partition, ValidationErrors) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(4), 12);
  ASSERT_TRUE(session.form().success);
  EXPECT_THROW((void)session.partition({201, 202, 203}), std::invalid_argument);
  EXPECT_THROW((void)session.partition({999}), std::invalid_argument);
}

TEST(Merge, TwoGroupsMerge) {
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(4, 300), 13);
  GroupSession b(test_authority(), Scheme::kProposed, make_ids(3, 400), 14);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  const BigInt key_a = a.key();
  const BigInt key_b = b.key();

  const RunResult result = a.merge(b);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 3);
  EXPECT_EQ(a.size(), 7U);
  EXPECT_EQ(b.size(), 0U);
  EXPECT_NE(a.key(), key_a);
  EXPECT_NE(a.key(), key_b);
  expect_consistent(a, "after merge");
}

TEST(Merge, MinimalPairs) {
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(2, 310), 15);
  GroupSession b(test_authority(), Scheme::kProposed, make_ids(2, 410), 16);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  ASSERT_TRUE(a.merge(b).success);
  EXPECT_EQ(a.size(), 4U);
  expect_consistent(a, "pair merge");
}

TEST(Merge, ValidationErrors) {
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(2, 320), 17);
  GroupSession b(test_authority(), Scheme::kBdEcdsa, make_ids(2, 420), 18);
  ASSERT_TRUE(a.form().success);
  EXPECT_THROW((void)a.merge(a), std::invalid_argument);
  EXPECT_THROW((void)a.merge(b), std::invalid_argument);
}

TEST(Lifecycle, MixedEventTrace) {
  // A MANET-style life cycle: form, churn, merge, partition — after every
  // event the whole ring agrees and matches the oracle.
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(4, 500), 19);
  ASSERT_TRUE(session.form().success);
  expect_consistent(session, "form");

  ASSERT_TRUE(session.join(600).success);
  expect_consistent(session, "join 600");

  ASSERT_TRUE(session.leave(501).success);
  expect_consistent(session, "leave 501");

  GroupSession other(test_authority(), Scheme::kProposed, make_ids(3, 700), 20);
  ASSERT_TRUE(other.form().success);
  ASSERT_TRUE(session.merge(other).success);
  expect_consistent(session, "merge");

  ASSERT_TRUE(session.partition({700, 702}).success);
  expect_consistent(session, "partition");

  ASSERT_TRUE(session.join(601).success);
  expect_consistent(session, "join 601");
  // Joiner from a previous event participates in a later leave (covers the
  // commitment-refresh path for members without stored tau).
  ASSERT_TRUE(session.leave(600).success);
  expect_consistent(session, "leave recent joiner's neighbour");
}

TEST(Lifecycle, DynamicEventsUnderLoss) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(5, 520), 21,
                       /*loss_rate=*/0.10);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.join(610).success);
  ASSERT_TRUE(session.leave(522).success);
  expect_consistent(session, "events under loss");
}

TEST(BaselineDynamics, ReExecutionForNonProposedSchemes) {
  // For every baseline scheme the events fall back to a full re-run (the
  // paper's comparison model) and still yield a consistent fresh key.
  for (const Scheme scheme : {Scheme::kBdEcdsa, Scheme::kSsn}) {
    GroupSession session(test_authority(), scheme, make_ids(4, 540), 22);
    ASSERT_TRUE(session.form().success) << scheme_name(scheme);
    const BigInt before = session.key();
    ASSERT_TRUE(session.join(620).success);
    EXPECT_EQ(session.size(), 5U);
    EXPECT_NE(session.key(), before);
    EXPECT_EQ(session.key(), oracle_key(session));
    ASSERT_TRUE(session.leave(620).success);
    EXPECT_EQ(session.size(), 4U);
    EXPECT_EQ(session.key(), oracle_key(session));
  }
}

TEST(Leave, DepartedMemberLeavesNoNetworkState) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(6, 800), 30);
  ASSERT_TRUE(session.form().success);
  ASSERT_TRUE(session.leave(803).success);
  EXPECT_FALSE(session.network().has_node(803));
  ASSERT_TRUE(session.partition({801, 804}).success);
  EXPECT_FALSE(session.network().has_node(801));
  EXPECT_FALSE(session.network().has_node(804));
  // Only current members remain registered.
  EXPECT_EQ(session.network().node_count(), session.size());
}

TEST(Split, MovesMembersIntoFreshSession) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(8, 820), 31);
  ASSERT_TRUE(session.form().success);
  const BigInt before = session.key();

  GroupSession offshoot = session.split({824, 825, 826, 827}, 32);
  EXPECT_EQ(session.size(), 4U);
  EXPECT_EQ(offshoot.size(), 4U);
  expect_consistent(session, "survivors after split");
  expect_consistent(offshoot, "offshoot after split");
  EXPECT_NE(session.key(), before);        // survivors rekeyed
  EXPECT_NE(offshoot.key(), session.key());  // independent rings
  // Moved members are gone from the original network.
  for (const std::uint32_t id : {824U, 825U, 826U, 827U}) {
    EXPECT_FALSE(session.network().has_node(id));
  }
  EXPECT_THROW((void)session.split({828}, 33), std::invalid_argument);
}

TEST(Split, OffshootInheritsLossRate) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(6, 840), 34,
                       /*loss_rate=*/0.10);
  ASSERT_TRUE(session.form().success);
  GroupSession offshoot = session.split({843, 844, 845}, 35);
  EXPECT_DOUBLE_EQ(offshoot.loss_rate(), 0.10);
  expect_consistent(offshoot, "lossy offshoot");
}

TEST(Merge, RejectsOverlappingMemberSets) {
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(3, 860), 36);
  GroupSession b(test_authority(), Scheme::kProposed, make_ids(3, 861), 37);  // shares 861, 862
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  EXPECT_THROW((void)a.merge(b), std::invalid_argument);
  EXPECT_EQ(a.size(), 3U);
  EXPECT_EQ(b.size(), 3U);  // both untouched
}

TEST(BaselineDynamics, MergeByReExecution) {
  GroupSession a(test_authority(), Scheme::kBdEcdsa, make_ids(3, 560), 23);
  GroupSession b(test_authority(), Scheme::kBdEcdsa, make_ids(2, 580), 24);
  ASSERT_TRUE(a.form().success);
  ASSERT_TRUE(b.form().success);
  ASSERT_TRUE(a.merge(b).success);
  EXPECT_EQ(a.size(), 5U);
  EXPECT_EQ(a.key(), oracle_key(a));
}

// Regression: move-construction and move-assignment are both defined (the
// authority is held by pointer so assignment can rebind it) and a session
// survives a full move round-trip with its ring state and liveness intact.
TEST(Session, MoveRoundTripPreservesRingState) {
  GroupSession original(test_authority(), Scheme::kProposed, make_ids(4, 900), 91);
  ASSERT_TRUE(original.form().success);
  const BigInt key = original.key();
  const auto ids = original.member_ids();

  GroupSession moved(std::move(original));  // move-construct
  EXPECT_EQ(moved.key(), key);
  EXPECT_EQ(moved.member_ids(), ids);
  EXPECT_EQ(&moved.authority(), &test_authority());

  GroupSession target(test_authority(), Scheme::kProposed, make_ids(3, 950), 92);
  target = std::move(moved);  // move-assign over a live session
  EXPECT_EQ(target.key(), key);
  EXPECT_EQ(target.member_ids(), ids);
  expect_consistent(target, "after move round-trip");

  // The moved-to session is fully operational: run a membership event and
  // land on the BD oracle key for the new ring.
  ASSERT_TRUE(target.join(980).success);
  EXPECT_EQ(target.size(), 5U);
  EXPECT_EQ(target.key(), oracle_key(target));
  ASSERT_TRUE(target.leave(901).success);
  EXPECT_EQ(target.key(), oracle_key(target));
}

}  // namespace
}  // namespace idgka::gka
