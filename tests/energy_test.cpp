// Energy-model tests: the paper's Tables 2 and 3 constants, the Eq.-4
// extrapolation rule and ledger pricing.
#include "energy/profiles.h"

#include <gtest/gtest.h>

namespace idgka::energy {
namespace {

TEST(Profiles, StrongArmMatchesPaperTable2) {
  const CpuProfile& sa = strongarm();
  EXPECT_DOUBLE_EQ(sa.mj(Op::kModExp), 9.1);
  EXPECT_DOUBLE_EQ(sa.ms(Op::kModExp), 37.92);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kMapToPoint), 18.4);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kTatePairing), 47.0);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kScalarMul), 8.8);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignGenDsa), 9.1);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignGenEcdsa), 8.8);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignGenSok), 17.6);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignGenGq), 18.2);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignVerDsa), 11.1);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignVerEcdsa), 10.9);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignVerSok), 137.7);
  EXPECT_DOUBLE_EQ(sa.mj(Op::kSignVerGq), 18.2);
}

TEST(Profiles, PentiumMatchesPaperTimingColumn) {
  const CpuProfile& p3 = pentium3_450();
  EXPECT_DOUBLE_EQ(p3.ms(Op::kModExp), 8.8);
  EXPECT_DOUBLE_EQ(p3.ms(Op::kMapToPoint), 17.78);
  EXPECT_DOUBLE_EQ(p3.ms(Op::kTatePairing), 44.4);
  EXPECT_DOUBLE_EQ(p3.ms(Op::kSignVerSok), 133.2);
}

TEST(Profiles, RadioMatchesPaperTable3) {
  EXPECT_DOUBLE_EQ(radio_100kbps().tx_uj_per_bit, 10.8);
  EXPECT_DOUBLE_EQ(radio_100kbps().rx_uj_per_bit, 7.51);
  EXPECT_DOUBLE_EQ(wlan_spectrum24().tx_uj_per_bit, 0.66);
  EXPECT_DOUBLE_EQ(wlan_spectrum24().rx_uj_per_bit, 0.31);
}

TEST(Profiles, Eq4ExtrapolationReproducesPaperRows) {
  // alpha = gamma / 8.8 * 37.92; beta = 240 mW * alpha.
  const auto tate = extrapolate_from_p3(44.4);
  EXPECT_NEAR(tate.strongarm_ms, 191.3, 0.5);   // paper: 191.5
  EXPECT_NEAR(tate.strongarm_mj, 45.9, 1.2);    // paper: 47.0
  const auto map2pt = extrapolate_from_p3(17.78);
  EXPECT_NEAR(map2pt.strongarm_ms, 76.6, 0.2);  // paper: 76.67
  EXPECT_NEAR(map2pt.strongarm_mj, 18.4, 0.1);  // paper: 18.4
  const auto sok_ver = extrapolate_from_p3(133.2);
  EXPECT_NEAR(sok_ver.strongarm_ms, 573.9, 1.0);  // paper: 573.75
  EXPECT_NEAR(sok_ver.strongarm_mj, 137.7, 0.3);  // paper: 137.7
  const auto base = extrapolate_from_p3(8.8);
  EXPECT_NEAR(base.strongarm_ms, 37.92, 1e-9);    // self-consistent
  EXPECT_NEAR(base.strongarm_mj, 9.1, 0.01);
}

TEST(Profiles, PaperCommunicationRowsFromPerBitCosts) {
  // Table 3 cross-check: bits x per-bit = the printed mJ values.
  EXPECT_NEAR(263 * 8 * radio_100kbps().tx_uj_per_bit / 1000.0, 22.72, 0.01);
  EXPECT_NEAR(263 * 8 * radio_100kbps().rx_uj_per_bit / 1000.0, 15.80, 0.01);
  EXPECT_NEAR(86 * 8 * radio_100kbps().tx_uj_per_bit / 1000.0, 7.43, 0.01);
  EXPECT_NEAR(wire::kGqSigBits * radio_100kbps().tx_uj_per_bit / 1000.0, 12.79, 0.01);
  EXPECT_NEAR(wire::kSokSigBits * wlan_spectrum24().tx_uj_per_bit / 1000.0, 0.256, 0.001);
}

TEST(Ledger, RecordAndAccumulate) {
  Ledger a;
  a.record(Op::kModExp, 3);
  a.record(Op::kSignGenGq);
  a.tx_bits = 100;
  Ledger b;
  b.record(Op::kModExp);
  b.rx_bits = 50;
  a += b;
  EXPECT_EQ(a.count(Op::kModExp), 4U);
  EXPECT_EQ(a.count(Op::kSignGenGq), 1U);
  EXPECT_EQ(a.tx_bits, 100U);
  EXPECT_EQ(a.rx_bits, 50U);
}

TEST(Ledger, EnergyPricing) {
  Ledger l;
  l.record(Op::kModExp, 2);     // 18.2 mJ
  l.record(Op::kSignVerSok);    // 137.7 mJ
  l.tx_bits = 1000;             // 10.8 mJ on the 100kbps radio
  l.rx_bits = 1000;             // 7.51 mJ
  const double compute = ledger_compute_mj(l, strongarm());
  EXPECT_NEAR(compute, 18.2 + 137.7, 1e-9);
  const double comm = ledger_comm_mj(l, radio_100kbps());
  EXPECT_NEAR(comm, 10.8 + 7.51, 1e-9);
  EXPECT_NEAR(ledger_energy_mj(l, strongarm(), radio_100kbps()), compute + comm, 1e-9);
  // Timing.
  EXPECT_NEAR(ledger_compute_ms(l, strongarm()), 2 * 37.92 + 573.75, 1e-9);
}

TEST(Ledger, OpNamesCoverAllOps) {
  for (std::size_t i = 0; i < kOpCount; ++i) {
    EXPECT_FALSE(op_name(static_cast<Op>(i)).empty());
  }
}

}  // namespace
}  // namespace idgka::energy
