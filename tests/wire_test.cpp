// Canonical wire codec tests: byte-exact round trips over a large seeded
// random message corpus, a fixed golden vector locking the format, strict
// rejection of a malformed-frame corpus (the seed corpus for fuzzing), and
// the shared-frame semantics the transport relies on.
#include "wire/codec.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "wire/frame_pool.h"

namespace idgka::wire {
namespace {

using mpint::BigInt;
using net::Message;

std::vector<std::uint8_t> varint(std::uint64_t v) {
  std::vector<std::uint8_t> out;
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

std::vector<std::uint8_t> frame_bytes(const Message& msg) {
  const Frame f = encode(msg);
  return std::vector<std::uint8_t>(f.bytes().begin(), f.bytes().end());
}

Message small_msg() {
  Message m;
  m.sender = 7;
  m.type = "t";
  m.payload.put_u32("id", 7);
  return m;
}

Message rich_msg() {
  Message m;
  m.sender = 1'000'000;
  m.recipient = 42;
  m.type = "join-r2";
  m.declared_bits = 2080;
  m.payload.put_int("z", BigInt::from_hex("ffeeddccbbaa99887766554433221100"));
  m.payload.put_int("zero", BigInt{0});
  m.payload.put_blob("cert", {0xDE, 0xAD, 0xBE, 0xEF});
  m.payload.put_blob("empty", {});
  m.payload.put_u32("id", 0xA1B2C3D4);
  return m;
}

// ------------------------------------------------------------ round trips ---

TEST(WireCodec, GoldenVectorLocksTheFormat) {
  // sender 7, no recipient, declared 0, type "t", one u32 field id=7.
  const std::vector<std::uint8_t> expected = {
      kMagic, kVersion, 0x00,              // header
      0x07,                                // sender
      0x00,                                // declared_bits
      0x01, 't',                           // type
      0x01,                                // field count
      kKindU32, 0x02, 'i', 'd',            // field tag + name
      0x00, 0x00, 0x00, 0x07,              // value, big-endian
  };
  EXPECT_EQ(frame_bytes(small_msg()), expected);
  EXPECT_EQ(decode(expected), small_msg());
}

TEST(WireCodec, RichMessageRoundTripsBitExact) {
  const Message m = rich_msg();
  const Frame f = encode(m);
  const Message back = decode(f);
  EXPECT_TRUE(back == m);
  EXPECT_EQ(frame_bytes(back), frame_bytes(m));  // canonical: unique encoding
  EXPECT_EQ(f.accounted_bits(), m.accounted_bits());
  EXPECT_EQ(f.sender(), m.sender);
  EXPECT_NO_THROW(assert_roundtrip(m, f));
}

TEST(WireCodec, PropertyThousandSeededRandomMessagesRoundTrip) {
  std::mt19937_64 rng(0xC0DECULL);
  const auto uniform = [&](std::uint64_t bound) { return rng() % bound; };
  for (int iter = 0; iter < 1000; ++iter) {
    Message m;
    m.sender = static_cast<std::uint32_t>(rng());
    if (uniform(2) == 0) m.recipient = static_cast<std::uint32_t>(rng());
    m.type.assign(uniform(24), 'a');
    for (auto& c : m.type) c = static_cast<char>('a' + uniform(26));
    if (uniform(2) == 0) m.declared_bits = uniform(1ULL << 20);

    const auto name = [&](const char* prefix, int i) {
      std::string n = std::string(prefix) + std::to_string(i);
      for (std::uint64_t j = uniform(8); j > 0; --j) {
        n.push_back(static_cast<char>('a' + uniform(26)));
      }
      return n;
    };
    for (int i = static_cast<int>(uniform(6)); i > 0; --i) {
      // Bias toward crypto-sized values; include zero and tiny ones.
      const std::size_t bytes = uniform(3) == 0 ? uniform(4) : uniform(256);
      std::vector<std::uint8_t> mag(bytes);
      for (auto& b : mag) b = static_cast<std::uint8_t>(rng());
      if (!mag.empty()) mag[0] |= 1;  // minimal bytes: nonzero leading byte
      m.payload.put_int(name("i", i), BigInt::from_bytes_be(mag));
    }
    for (int i = static_cast<int>(uniform(4)); i > 0; --i) {
      std::vector<std::uint8_t> blob(uniform(300));
      for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
      m.payload.put_blob(name("b", i), std::move(blob));
    }
    for (int i = static_cast<int>(uniform(4)); i > 0; --i) {
      m.payload.put_u32(name("u", i), static_cast<std::uint32_t>(rng()));
    }

    const Frame f = encode(m);
    const Message back = decode(f);
    ASSERT_TRUE(back == m) << "iter " << iter;
    ASSERT_EQ(frame_bytes(back), frame_bytes(m)) << "iter " << iter;
    ASSERT_NO_THROW(assert_roundtrip(m, f)) << "iter " << iter;
  }
}

TEST(WireCodec, PeekParsesHeaderWithoutPayload) {
  const Message m = rich_msg();
  const Header h = peek(encode(m).bytes());
  EXPECT_EQ(h.sender, m.sender);
  EXPECT_EQ(h.recipient, m.recipient);
  EXPECT_EQ(h.type, m.type);
  EXPECT_EQ(h.declared_bits, m.declared_bits);
  EXPECT_EQ(h.field_count, 5U);
  EXPECT_THROW((void)peek(std::span<const std::uint8_t>()), DecodeError);
}

// ------------------------------------------------------- shared semantics ---

TEST(WireFrame, CopiesShareOneBuffer) {
  const Frame f = encode(rich_msg());
  EXPECT_EQ(f.use_count(), 1L);
  const Frame copy = f;
  EXPECT_EQ(copy.data(), f.data());
  EXPECT_EQ(f.use_count(), 2L);
  EXPECT_EQ(copy.size_bits(), f.size() * 8);
  const Frame empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.use_count(), 0L);
}

TEST(WireFrame, EncodeRecyclesBuffersThroughThePool) {
  const Message msg = rich_msg();
  // Prime: at least one buffer must be parked once its frame drops.
  const FramePoolStats before_prime = frame_pool_stats();
  { const Frame f = encode(msg); }
  const FramePoolStats primed = frame_pool_stats();
  EXPECT_GT(primed.returns, before_prime.returns);

  // Steady state on one thread: encode -> drop -> encode must hit the
  // stripe's free list, not the allocator.
  { const Frame f = encode(msg); }
  const FramePoolStats after = frame_pool_stats();
  EXPECT_GT(after.hits, primed.hits);
  EXPECT_GT(after.returns, primed.returns);

  // A held frame pins its buffer: the pool's bytes must stay intact and
  // byte-identical however many pooled encodes happen in between.
  const Frame held = encode(msg);
  const std::vector<std::uint8_t> snapshot(held.bytes().begin(), held.bytes().end());
  for (int i = 0; i < 32; ++i) { const Frame scratch = encode(msg); }
  EXPECT_TRUE(std::equal(held.bytes().begin(), held.bytes().end(), snapshot.begin(),
                         snapshot.end()));
}

TEST(WireCodec, AssertRoundtripCatchesAccountingDrift) {
  const Message m = small_msg();
  const Frame f = encode(m);
  // A layer that rewrites accounting must be caught, not absorbed.
  const Frame drifted(std::vector<std::uint8_t>(f.bytes().begin(), f.bytes().end()),
                      f.accounted_bits() + 1, f.sender());
  EXPECT_THROW(assert_roundtrip(m, drifted), std::logic_error);
  Message other = m;
  other.payload.put_u32("extra", 1);
  EXPECT_THROW(assert_roundtrip(other, f), std::logic_error);
}

// ---------------------------------------------------------- encode errors ---

TEST(WireCodec, EncodeRejectsUnencodableMessages) {
  Message m = small_msg();
  m.payload.put_int("neg", BigInt{-5});
  EXPECT_THROW((void)encode(m), std::invalid_argument);

  Message empty_name = small_msg();
  empty_name.payload.put_int("", BigInt{1});
  EXPECT_THROW((void)encode(empty_name), std::invalid_argument);

  Message long_name = small_msg();
  long_name.payload.put_u32(std::string(256, 'n'), 1);
  EXPECT_THROW((void)encode(long_name), std::invalid_argument);

  Message long_type = small_msg();
  long_type.type = std::string(256, 't');
  EXPECT_THROW((void)encode(long_type), std::invalid_argument);

  Message huge_declared = small_msg();
  huge_declared.declared_bits = (1ULL << 48) + 1;
  EXPECT_THROW((void)encode(huge_declared), std::invalid_argument);

  // A duplicate name within a kind would encode into a frame every strict
  // receiver rejects; it must fail at the sender.
  Message dup = small_msg();
  dup.payload.put_int("z", BigInt{1});
  dup.payload.put_int("z", BigInt{2});
  EXPECT_THROW((void)encode(dup), std::invalid_argument);
}

// ------------------------------------------------------- malformed corpus ---

TEST(WireCorpus, TruncationAtEveryBoundaryThrows) {
  const std::vector<std::uint8_t> full = frame_bytes(rich_msg());
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW((void)decode(std::span(full.data(), len)), DecodeError) << "len " << len;
  }
  EXPECT_NO_THROW((void)decode(full));
}

TEST(WireCorpus, HeaderCorruptionsThrow) {
  const std::vector<std::uint8_t> good = frame_bytes(small_msg());

  auto mutated = good;
  mutated[0] = 0x00;  // bad magic
  EXPECT_THROW((void)decode(mutated), DecodeError);

  mutated = good;
  mutated[1] = kVersion + 1;  // unsupported version
  EXPECT_THROW((void)decode(mutated), DecodeError);

  mutated = good;
  mutated[2] = 0x80;  // unknown flag bit
  EXPECT_THROW((void)decode(mutated), DecodeError);

  // Flags promise a recipient the frame does not carry: the varint reader
  // then walks into the type bytes and the strict structure check fails.
  mutated = good;
  mutated[2] = kFlagRecipient;
  EXPECT_THROW((void)decode(mutated), DecodeError);
}

TEST(WireCorpus, NonMinimalVarintThrows) {
  // sender 7 padded to two varint bytes (0x87 0x00).
  std::vector<std::uint8_t> bad = {kMagic, kVersion, 0x00, 0x87, 0x00, 0x00, 0x01, 't', 0x00};
  EXPECT_THROW((void)decode(bad), DecodeError);
}

TEST(WireCorpus, VarintOverflowThrows) {
  // 10 continuation bytes encode > 64 bits in the sender field.
  std::vector<std::uint8_t> bad = {kMagic, kVersion, 0x00};
  for (int i = 0; i < 9; ++i) bad.push_back(0xFF);
  bad.push_back(0x7F);
  EXPECT_THROW((void)decode(bad), DecodeError);
}

TEST(WireCorpus, SenderBeyond32BitsThrows) {
  std::vector<std::uint8_t> bad = {kMagic, kVersion, 0x00};
  const auto sender = varint(1ULL << 32);
  bad.insert(bad.end(), sender.begin(), sender.end());
  bad.insert(bad.end(), {0x00, 0x01, 't', 0x00});
  EXPECT_THROW((void)decode(bad), DecodeError);
}

TEST(WireCorpus, LengthOverflowThrows) {
  // Blob length claims far more bytes than the frame holds.
  std::vector<std::uint8_t> bad = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't', 0x01,
                                   kKindBlob, 0x01, 'b'};
  const auto len = varint(1ULL << 40);
  bad.insert(bad.end(), len.begin(), len.end());
  EXPECT_THROW((void)decode(bad), DecodeError);
}

TEST(WireCorpus, TrailingGarbageThrows) {
  auto bad = frame_bytes(rich_msg());
  bad.push_back(0x00);
  EXPECT_THROW((void)decode(bad), DecodeError);
}

TEST(WireCorpus, DuplicateTagThrows) {
  std::vector<std::uint8_t> bad = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't', 0x02,
                                   kKindU32, 0x02, 'i', 'd', 0, 0, 0, 1,
                                   kKindU32, 0x02, 'i', 'd', 0, 0, 0, 2};
  EXPECT_THROW((void)decode(bad), DecodeError);
  // The same name under different kinds is NOT a duplicate.
  std::vector<std::uint8_t> ok = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't', 0x02,
                                  kKindInt, 0x02, 'i', 'd', 0x01, 0x09,
                                  kKindU32, 0x02, 'i', 'd', 0, 0, 0, 2};
  const Message m = decode(ok);
  EXPECT_EQ(m.payload.get_int("id"), BigInt{9});
  EXPECT_EQ(m.payload.get_u32("id"), 2U);
}

TEST(WireCorpus, KindOrderAndUnknownKindThrow) {
  // u32 before int violates the canonical kind order.
  std::vector<std::uint8_t> out_of_order = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't',
                                            0x02,
                                            kKindU32, 0x01, 'u', 0, 0, 0, 1,
                                            kKindInt, 0x01, 'i', 0x01, 0x09};
  EXPECT_THROW((void)decode(out_of_order), DecodeError);

  std::vector<std::uint8_t> unknown_kind = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't',
                                            0x01, 0x04, 0x01, 'x', 0x00};
  EXPECT_THROW((void)decode(unknown_kind), DecodeError);

  std::vector<std::uint8_t> empty_name = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't',
                                          0x01, kKindInt, 0x00, 0x00};
  EXPECT_THROW((void)decode(empty_name), DecodeError);
}

TEST(WireCorpus, NonMinimalIntegerThrows) {
  // Integer value 9 encoded with a leading zero byte.
  std::vector<std::uint8_t> bad = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't', 0x01,
                                   kKindInt, 0x01, 'i', 0x02, 0x00, 0x09};
  EXPECT_THROW((void)decode(bad), DecodeError);
  // Zero is the empty magnitude, and that is the only valid zero.
  std::vector<std::uint8_t> zero_ok = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't', 0x01,
                                       kKindInt, 0x01, 'i', 0x00};
  EXPECT_TRUE(decode(zero_ok).payload.get_int("i").is_zero());
  std::vector<std::uint8_t> zero_bad = {kMagic, kVersion, 0x00, 0x01, 0x00, 0x01, 't', 0x01,
                                        kKindInt, 0x01, 'i', 0x01, 0x00};
  EXPECT_THROW((void)decode(zero_bad), DecodeError);
}

TEST(WireCorpus, RandomMutationsNeverCrashOrMisbehave) {
  // Fuzz seed corpus: any single mutation of a valid frame either still
  // decodes (the flip landed inside a value) or throws DecodeError —
  // nothing else, ever.
  const std::vector<std::uint8_t> good = frame_bytes(rich_msg());
  std::mt19937_64 rng(0xF0220ULL);
  for (int iter = 0; iter < 2000; ++iter) {
    auto bytes = good;
    switch (rng() % 3) {
      case 0:  // single random byte rewrite
        bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
        break;
      case 1:  // random truncation
        bytes.resize(rng() % bytes.size());
        break;
      default:  // random extension
        for (std::uint64_t i = rng() % 16 + 1; i > 0; --i) {
          bytes.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
    }
    try {
      const Message m = decode(bytes);
      // A surviving decode must itself round-trip canonically.
      ASSERT_NO_THROW((void)encode(m)) << "iter " << iter;
    } catch (const DecodeError&) {
      // rejected cleanly
    }
  }
}

}  // namespace
}  // namespace idgka::wire
