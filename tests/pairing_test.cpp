// F_p^2 arithmetic, supersingular-group and Tate-pairing tests.
// Bilinearity + non-degeneracy are the load-bearing properties for the SOK
// ID-based signature baseline.
#include "pairing/tate.h"

#include <gtest/gtest.h>

#include "hash/hmac_drbg.h"

namespace idgka::pairing {
namespace {

using mpint::BigInt;

class PairingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hash::HmacDrbg rng(4242, "pairing-params");
    // Small-but-real parameters keep the suite fast; all algebraic
    // properties are size-independent.
    params_ = new mpint::SupersingularParams(
        mpint::generate_supersingular_params(rng, 256, 120, 16));
    group_ = new SsGroup(*params_);
    tate_ = new TatePairing(*group_);
  }
  static void TearDownTestSuite() {
    delete tate_;
    delete group_;
    delete params_;
    tate_ = nullptr;
    group_ = nullptr;
    params_ = nullptr;
  }

  static mpint::SupersingularParams* params_;
  static SsGroup* group_;
  static TatePairing* tate_;
};

mpint::SupersingularParams* PairingFixture::params_ = nullptr;
SsGroup* PairingFixture::group_ = nullptr;
TatePairing* PairingFixture::tate_ = nullptr;

TEST(Fp2Arithmetic, FieldAxioms) {
  const Fp2Ctx f(BigInt{103});  // 103 % 4 == 3
  const Fp2 a = f.make(BigInt{17}, BigInt{42});
  const Fp2 b = f.make(BigInt{88}, BigInt{5});
  const Fp2 c = f.make(BigInt{3}, BigInt{99});
  EXPECT_EQ(f.mul(a, b), f.mul(b, a));
  EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
  EXPECT_EQ(f.mul(a, f.one()), a);
  EXPECT_EQ(f.sqr(a), f.mul(a, a));
  EXPECT_EQ(f.mul(a, f.inv(a)), f.one());
  EXPECT_THROW((void)f.inv(Fp2{}), std::domain_error);
}

TEST(Fp2Arithmetic, ISquaredIsMinusOne) {
  const Fp2Ctx f(BigInt{103});
  const Fp2 i = f.make(BigInt{}, BigInt{1});
  EXPECT_EQ(f.mul(i, i), f.make(BigInt{102}, BigInt{}));  // -1 mod 103
}

TEST(Fp2Arithmetic, ConjAndNormInFp) {
  const Fp2Ctx f(BigInt{103});
  const Fp2 a = f.make(BigInt{17}, BigInt{42});
  const Fp2 norm = f.mul(a, f.conj(a));
  EXPECT_TRUE(norm.im.is_zero());  // a * conj(a) lies in F_p
}

TEST(Fp2Arithmetic, PowMatchesRepeatedMul) {
  const Fp2Ctx f(BigInt{103});
  const Fp2 a = f.make(BigInt{17}, BigInt{42});
  Fp2 acc = f.one();
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(f.pow(a, BigInt{e}), acc) << e;
    acc = f.mul(acc, a);
  }
}

TEST(Fp2Arithmetic, RejectsWrongPrimeShape) {
  EXPECT_THROW(Fp2Ctx(BigInt{101}), std::invalid_argument);  // 101 % 4 == 1
}

TEST_F(PairingFixture, GroupGeneratorHasOrderQ) {
  const auto& c = group_->curve();
  EXPECT_TRUE(c.is_on_curve(c.generator()));
  EXPECT_TRUE(c.mul(group_->q(), c.generator()).infinity);
  EXPECT_FALSE(c.generator().infinity);
}

TEST_F(PairingFixture, MapToPointLandsInSubgroup) {
  for (const char* label : {"alice", "bob", "carol", "u-1234"}) {
    const ec::Point pt = group_->map_to_point(std::string_view{label});
    EXPECT_FALSE(pt.infinity);
    EXPECT_TRUE(group_->curve().is_on_curve(pt));
    EXPECT_TRUE(group_->curve().mul(group_->q(), pt).infinity) << label;
  }
  // Deterministic.
  EXPECT_EQ(group_->map_to_point(std::string_view{"alice"}),
            group_->map_to_point(std::string_view{"alice"}));
  EXPECT_NE(group_->map_to_point(std::string_view{"alice"}),
            group_->map_to_point(std::string_view{"bob"}));
}

TEST_F(PairingFixture, PairingValueHasOrderQ) {
  const ec::Point g = group_->generator();
  const Fp2 e = tate_->pair(g, g);
  const Fp2Ctx& f = group_->fp2();
  EXPECT_FALSE(e.is_one());  // non-degeneracy on the distorted pair
  EXPECT_TRUE(f.pow(e, group_->q()).is_one());
}

TEST_F(PairingFixture, Bilinearity) {
  hash::HmacDrbg rng(7, "bilinear");
  const ec::Point g = group_->generator();
  const auto& curve = group_->curve();
  const Fp2Ctx& f = group_->fp2();
  const Fp2 base = tate_->pair(g, g);
  for (int trial = 0; trial < 3; ++trial) {
    const BigInt a = mpint::random_range(rng, BigInt{1}, group_->q());
    const BigInt b = mpint::random_range(rng, BigInt{1}, group_->q());
    const Fp2 lhs = tate_->pair(curve.mul(a, g), curve.mul(b, g));
    const Fp2 rhs = f.pow(base, mpint::mod_mul(a, b, group_->q()));
    EXPECT_EQ(lhs, rhs) << "trial " << trial;
  }
}

TEST_F(PairingFixture, LinearityInEachArgument) {
  hash::HmacDrbg rng(8, "linear");
  const ec::Point g = group_->generator();
  const auto& curve = group_->curve();
  const Fp2Ctx& f = group_->fp2();
  const BigInt a = mpint::random_range(rng, BigInt{1}, group_->q());
  const ec::Point p1 = curve.mul(a, g);
  const ec::Point q1 = group_->map_to_point(std::string_view{"argtest"});
  // e(P, Q1 + Q2) == e(P, Q1) * e(P, Q2)
  const ec::Point q2 = curve.mul(BigInt{5}, q1);
  const Fp2 lhs = tate_->pair(p1, curve.add(q1, q2));
  const Fp2 rhs = f.mul(tate_->pair(p1, q1), tate_->pair(p1, q2));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingFixture, InfinityArgumentsGiveIdentity) {
  const ec::Point g = group_->generator();
  EXPECT_TRUE(tate_->pair(ec::Point::at_infinity(), g).is_one());
  EXPECT_TRUE(tate_->pair(g, ec::Point::at_infinity()).is_one());
}

TEST_F(PairingFixture, PairingDistinguishesPoints) {
  // e(aG, G) != e(bG, G) for a != b — needed for signature soundness.
  const ec::Point g = group_->generator();
  const auto& curve = group_->curve();
  const Fp2 e2 = tate_->pair(curve.mul(BigInt{2}, g), g);
  const Fp2 e3 = tate_->pair(curve.mul(BigInt{3}, g), g);
  EXPECT_NE(e2, e3);
}

}  // namespace
}  // namespace idgka::pairing
