// GQ ID-based signature variant tests: soundness, forgery rejection and the
// Eq.-2 batch verification that the proposed GKA depends on.
#include "sig/gq.h"

#include <gtest/gtest.h>

#include "hash/hmac_drbg.h"

namespace idgka::sig {
namespace {

std::span<const std::uint8_t> bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

class GqFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hash::HmacDrbg rng(1001, "gq-params");
    pkg_ = new GqPkg(rng, /*modulus_bits=*/512, /*mr_rounds=*/16);
  }
  static void TearDownTestSuite() {
    delete pkg_;
    pkg_ = nullptr;
  }
  static GqPkg* pkg_;
};

GqPkg* GqFixture::pkg_ = nullptr;

TEST_F(GqFixture, HashIdIsUnitAndDeterministic) {
  const BigInt h1 = gq_hash_id(pkg_->params(), 42);
  EXPECT_EQ(h1, gq_hash_id(pkg_->params(), 42));
  EXPECT_NE(h1, gq_hash_id(pkg_->params(), 43));
  EXPECT_TRUE(mpint::gcd(h1, pkg_->params().n).is_one());
  EXPECT_LT(h1, pkg_->params().n);
}

TEST_F(GqFixture, SharedContextMustMatchModulus) {
  const auto wrong = std::make_shared<const mpint::ModContext>(pkg_->params().n + BigInt{2});
  EXPECT_THROW(GqSigner(pkg_->params(), 1, pkg_->extract(1), wrong), std::invalid_argument);
  const GqSignature sig{BigInt{1}, BigInt{1}};
  EXPECT_THROW((void)gq_verify(pkg_->params(), *wrong, 1, bytes("m"), sig),
               std::invalid_argument);
  const std::uint32_t id = 1;
  const BigInt s{1};
  EXPECT_THROW((void)gq_batch_verify(pkg_->params(), *wrong, {&id, 1}, {&s, 1}, BigInt{1},
                                     bytes("z")),
               std::invalid_argument);
}

TEST_F(GqFixture, ExtractSatisfiesKeyEquation) {
  // S_ID^e == H(ID) mod n.
  const BigInt s_id = pkg_->extract(7);
  const BigInt lhs = mpint::mod_exp(s_id, pkg_->params().e, pkg_->params().n);
  EXPECT_EQ(lhs, gq_hash_id(pkg_->params(), 7));
}

TEST_F(GqFixture, SignVerifyRoundTrip) {
  hash::HmacDrbg rng(2, "sign");
  const std::uint32_t id = 1234;
  const GqSigner signer(pkg_->params(), id, pkg_->extract(id));
  const auto sig = signer.sign(bytes("hello group"), rng);
  EXPECT_TRUE(gq_verify(pkg_->params(), id, bytes("hello group"), sig));
}

TEST_F(GqFixture, VerifyRejectsWrongMessage) {
  hash::HmacDrbg rng(3, "sign");
  const GqSigner signer(pkg_->params(), 1, pkg_->extract(1));
  const auto sig = signer.sign(bytes("msg-a"), rng);
  EXPECT_FALSE(gq_verify(pkg_->params(), 1, bytes("msg-b"), sig));
}

TEST_F(GqFixture, VerifyRejectsWrongIdentity) {
  hash::HmacDrbg rng(4, "sign");
  const GqSigner signer(pkg_->params(), 1, pkg_->extract(1));
  const auto sig = signer.sign(bytes("msg"), rng);
  EXPECT_FALSE(gq_verify(pkg_->params(), 2, bytes("msg"), sig));
}

TEST_F(GqFixture, VerifyRejectsTamperedSignature) {
  hash::HmacDrbg rng(5, "sign");
  const GqSigner signer(pkg_->params(), 1, pkg_->extract(1));
  auto sig = signer.sign(bytes("msg"), rng);
  sig.s = (sig.s + BigInt{1}).mod(pkg_->params().n);
  EXPECT_FALSE(gq_verify(pkg_->params(), 1, bytes("msg"), sig));
}

TEST_F(GqFixture, VerifyRejectsOutOfRangeS) {
  GqSignature sig{pkg_->params().n + BigInt{5}, BigInt{17}};
  EXPECT_FALSE(gq_verify(pkg_->params(), 1, bytes("msg"), sig));
  sig.s = BigInt{};
  EXPECT_FALSE(gq_verify(pkg_->params(), 1, bytes("msg"), sig));
}

TEST_F(GqFixture, SignerWithWrongSecretFailsVerification) {
  hash::HmacDrbg rng(6, "sign");
  // Signer claims identity 9 but holds the key for identity 8.
  const GqSigner impostor(pkg_->params(), 9, pkg_->extract(8));
  const auto sig = impostor.sign(bytes("msg"), rng);
  EXPECT_FALSE(gq_verify(pkg_->params(), 9, bytes("msg"), sig));
}

// --- Batch verification (the protocol's Eq. 2 shape) ---------------------

struct BatchInputs {
  std::vector<std::uint32_t> ids;
  std::vector<BigInt> s;
  BigInt c;
  std::vector<std::uint8_t> z;
};

BatchInputs make_batch(const GqPkg& pkg, std::size_t n, std::uint64_t seed) {
  hash::HmacDrbg rng(seed, "batch");
  BatchInputs b;
  b.z = {0xde, 0xad, 0xbe, 0xef};
  std::vector<GqSigner> signers;
  std::vector<GqSigner::Commitment> commits;
  BigInt t_prod{1};
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::uint32_t>(100 + i);
    b.ids.push_back(id);
    signers.emplace_back(pkg.params(), id, pkg.extract(id));
    commits.push_back(signers.back().commit(rng));
    t_prod = mpint::mod_mul(t_prod, commits.back().t, pkg.params().n);
  }
  b.c = gq_challenge(t_prod.to_bytes_be(), b.z);
  for (std::size_t i = 0; i < n; ++i) {
    b.s.push_back(signers[i].respond(commits[i], b.c));
  }
  return b;
}

class GqBatchTest : public GqFixture, public ::testing::WithParamInterface<std::size_t> {};

TEST_P(GqBatchTest, AcceptsHonestBatch) {
  const auto b = make_batch(*pkg_, GetParam(), 10 + GetParam());
  EXPECT_TRUE(gq_batch_verify(pkg_->params(), b.ids, b.s, b.c, b.z));
}

TEST_P(GqBatchTest, RejectsSingleCorruptedShare) {
  auto b = make_batch(*pkg_, GetParam(), 20 + GetParam());
  const std::size_t victim = GetParam() / 2;
  b.s[victim] = (b.s[victim] + BigInt{1}).mod(pkg_->params().n);
  EXPECT_FALSE(gq_batch_verify(pkg_->params(), b.ids, b.s, b.c, b.z));
}

TEST_P(GqBatchTest, RejectsWrongZ) {
  auto b = make_batch(*pkg_, GetParam(), 30 + GetParam());
  b.z.push_back(0x00);
  EXPECT_FALSE(gq_batch_verify(pkg_->params(), b.ids, b.s, b.c, b.z));
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GqBatchTest, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST_F(GqFixture, BatchRejectsMismatchedArity) {
  auto b = make_batch(*pkg_, 3, 99);
  b.ids.pop_back();
  EXPECT_FALSE(gq_batch_verify(pkg_->params(), b.ids, b.s, b.c, b.z));
  EXPECT_FALSE(gq_batch_verify(pkg_->params(), {}, {}, b.c, b.z));
}

TEST_F(GqFixture, BatchRejectsSwappedIdentities) {
  auto b = make_batch(*pkg_, 3, 101);
  std::swap(b.ids[0], b.ids[1]);
  // The product of H(U_i) is invariant under permutation, but each s_i was
  // bound to its own secret; swapping only ids keeps the product equal, so
  // the batch equation still holds (the batch binds the *set*, not order).
  EXPECT_TRUE(gq_batch_verify(pkg_->params(), b.ids, b.s, b.c, b.z));
  // Replacing an identity with one outside the signer set must fail.
  b.ids[0] = 999;
  EXPECT_FALSE(gq_batch_verify(pkg_->params(), b.ids, b.s, b.c, b.z));
}

TEST_F(GqFixture, SignatureBitsMatchPaperShape) {
  // |s| = |n|, |c| = 160 -> 1184 bits for the 1024-bit paper profile.
  GqParams paper_like{BigInt{1} << 1023, BigInt{65537}};
  paper_like.n += BigInt{1};  // 1024-bit odd stand-in
  EXPECT_EQ(gq_signature_bits(paper_like), 1024U + 160U);
}

}  // namespace
}  // namespace idgka::sig
