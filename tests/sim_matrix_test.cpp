// Scenario-matrix runner: cell coverage, same-seed determinism, scoped
// registry deltas and the baseline comparison thresholds.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "obs/json_reader.h"
#include "obs/registry.h"
#include "sim/matrix.h"

namespace idgka {
namespace {

using obs::json::JsonValue;
using sim::ChurnLevel;
using sim::CompareResult;
using sim::CompareThresholds;
using sim::LinkClass;
using sim::MatrixConfig;
using sim::MatrixReport;
using sim::MatrixRunner;

/// Test-sized sweep that still spans every axis the issue cares about:
/// 2 topologies x 3 link classes (manet/leo/geo) x 2 loss models x 1 churn
/// level = 12 cells.
MatrixConfig small_config() {
  MatrixConfig cfg;
  cfg.name = "matrix-test";
  cfg.seed = 77;
  cfg.members = 8;
  cfg.duration_us = 90 * sim::kUsPerSec;
  cfg.loss_models = {{"clean", 0.0, false}, {"bursty10", 0.10, true}};
  cfg.churn_levels = {{"calm", 2}};
  return cfg;
}

TEST(Matrix, SweepCoversEveryCellAndConverges) {
  obs::Registry::global().reset();
  const MatrixReport report = MatrixRunner(small_config()).run();
  ASSERT_EQ(report.cells.size(), 12U);  // 2 topo x 3 link x 2 loss x 1 churn
  std::set<std::string> ids;
  for (const sim::MatrixCell& cell : report.cells) {
    ids.insert(cell.id);
    EXPECT_EQ(cell.id, cell.topology + "/" + cell.link_class + "/" + cell.loss_model + "/" +
                           cell.churn);
    // Every environment — including GEO at ~250 ms with bursty loss — must
    // still form a group and agree on the key.
    EXPECT_TRUE(cell.metrics.form_success) << cell.id;
    EXPECT_TRUE(cell.metrics.all_members_agree) << cell.id;
    EXPECT_GT(cell.latency_p50_us, 0U) << cell.id;
    EXPECT_LE(cell.latency_p50_us, cell.latency_p90_us) << cell.id;
    EXPECT_LE(cell.latency_p90_us, cell.latency_p99_us) << cell.id;
    EXPECT_LE(cell.latency_p99_us, cell.latency_max_us) << cell.id;
  }
  EXPECT_EQ(ids.size(), report.cells.size());  // ids are unique
  // Propagation delay dominates op latency: the same sweep under GEO must
  // be slower than under MANET (the comparative claim the matrix exists
  // to surface).
  const auto p50 = [&](const std::string& id) {
    for (const sim::MatrixCell& cell : report.cells) {
      if (cell.id == id) return cell.latency_p50_us;
    }
    ADD_FAILURE() << "no cell " << id;
    return sim::SimTime{0};
  };
  EXPECT_LT(p50("flat/manet/clean/calm"), p50("flat/geo/clean/calm"));

#if IDGKA_OBS
  // The scoped delta attributes labeled increments to the cell that caused
  // them: hierarchical cells carry per-group rekey labels, lossy cells
  // carry per-link drop counters.
  bool saw_labeled_rekey = false;
  bool saw_labeled_drop = false;
  for (const sim::MatrixCell& cell : report.cells) {
    for (const auto& [name, v] : cell.delta.counters) {
      if (name.rfind("cluster.rekeys{", 0) == 0 && cell.topology == "hier") {
        saw_labeled_rekey = true;
        // The label is this cell's scenario, not another cell's.
        EXPECT_NE(name.find(cell.id), std::string::npos) << name << " in " << cell.id;
      }
      if (name.rfind("net.drop{", 0) == 0) {
        saw_labeled_drop = true;
        EXPECT_NE(cell.loss_model, "clean") << name << " leaked into " << cell.id;
      }
    }
  }
  EXPECT_TRUE(saw_labeled_rekey);
  EXPECT_TRUE(saw_labeled_drop);
#endif
}

TEST(Matrix, SameSeedReportIsByteIdentical) {
  // The registry is process-global and histogram summaries are cumulative,
  // so run-twice determinism is defined over a reset registry (the CI
  // smoke job gets it for free: fresh process per run).
  obs::Registry::global().reset();
  const std::string first = MatrixRunner(small_config()).run().to_json();
  obs::Registry::global().reset();
  const std::string second = MatrixRunner(small_config()).run().to_json();
  EXPECT_EQ(first, second);

  // And the JSON is a parseable report with the full cell set.
  const JsonValue doc = obs::json::parse(first);
  EXPECT_EQ(doc.at("matrix").as_string(), "matrix-test");
  EXPECT_EQ(doc.at("seed").as_uint(), 77U);
  ASSERT_EQ(doc.at("cells").as_array().size(), 12U);
  const JsonValue& cell = doc.at("cells").as_array().front();
  EXPECT_TRUE(cell.at("latency").at("p50_us").is_number());
  EXPECT_TRUE(cell.at("metrics").at("rekeys").at("convergence").is_number());
  EXPECT_TRUE(cell.at("delta").is_object());
}

TEST(Matrix, MarkdownListsEveryCell) {
  obs::Registry::global().reset();
  const MatrixReport report = MatrixRunner(small_config()).run();
  const std::string md = report.to_markdown();
  EXPECT_NE(md.find("| cell |"), std::string::npos);
  for (const sim::MatrixCell& cell : report.cells) {
    EXPECT_NE(md.find("| " + cell.id + " |"), std::string::npos) << cell.id;
  }
}

TEST(Matrix, ChurnTraceIsDeterministicAndOrdered) {
  const MatrixConfig cfg = small_config();
  const ChurnLevel level{"churny", 8};
  const std::vector<sim::TraceEvent> a = MatrixRunner::churn_trace(level, cfg);
  const std::vector<sim::TraceEvent> b = MatrixRunner::churn_trace(level, cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_us, b[i].at_us);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].ids, b[i].ids);
  }
  // Events land strictly inside the scenario window, in time order.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GT(a[i].at_us, 0U);
    EXPECT_LT(a[i].at_us, cfg.duration_us);
    if (i > 0) EXPECT_GE(a[i].at_us, a[i - 1].at_us);
  }
  // A calmer level generates fewer events.
  EXPECT_GT(a.size(), MatrixRunner::churn_trace({"calm", 2}, cfg).size());
}

// ------------------------------------------------------- baseline compare
//
// compare() unit tests run on hand-built report JSON so every threshold
// edge is exact; the self-comparison test below covers the real shape.

std::string report_doc(const std::vector<std::string>& cells) {
  std::string out = R"({"matrix":"t","seed":1,"members":8,"cells":[)";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out += ',';
    out += cells[i];
  }
  return out + "]}";
}

std::string cell_doc(const std::string& id, std::uint64_t p50, std::uint64_t p90,
                     std::uint64_t p99, std::uint64_t dropped, double convergence,
                     std::uint64_t retries) {
  std::string delta = retries == 0
                          ? std::string(R"({"counters":{}})")
                          : R"({"counters":{"cluster.rekey_retries":)" + std::to_string(retries) +
                                "}}";
  return R"({"id":")" + id + R"(","latency":{"p50_us":)" + std::to_string(p50) +
         R"(,"p90_us":)" + std::to_string(p90) + R"(,"p99_us":)" + std::to_string(p99) +
         R"(,"max_us":)" + std::to_string(p99) + R"(},"metrics":{"air":{"copies_dropped":)" +
         std::to_string(dropped) + R"(},"rekeys":{"convergence":)" + std::to_string(convergence) +
         R"(}},"delta":)" + delta + "}";
}

TEST(MatrixCompare, IdenticalReportsPass) {
  const JsonValue doc =
      obs::json::parse(report_doc({cell_doc("c1", 10'000, 20'000, 30'000, 100, 1.0, 5)}));
  const CompareResult r = sim::compare(doc, doc);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_TRUE(r.missing_cells.empty());
  EXPECT_TRUE(r.new_cells.empty());
}

TEST(MatrixCompare, LatencyGrowthBeyondSlackAndPctRegresses) {
  const JsonValue base =
      obs::json::parse(report_doc({cell_doc("c1", 10'000, 20'000, 30'000, 0, 1.0, 0)}));
  // p90 +30% (and +6 ms, beyond the 2 ms slack) with default 10% threshold.
  const JsonValue cur =
      obs::json::parse(report_doc({cell_doc("c1", 10'000, 26'000, 30'000, 0, 1.0, 0)}));
  const CompareResult r = sim::compare(base, cur);
  ASSERT_EQ(r.regressions.size(), 1U);
  EXPECT_EQ(r.regressions[0].cell, "c1");
  EXPECT_EQ(r.regressions[0].field, "p90_us");
  EXPECT_DOUBLE_EQ(r.regressions[0].baseline, 20'000.0);
  EXPECT_DOUBLE_EQ(r.regressions[0].current, 26'000.0);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.to_markdown().find("p90_us"), std::string::npos);
}

TEST(MatrixCompare, SlackAbsorbsSmallAbsoluteGrowth) {
  // +1.5 ms on p50 is a 15% jump but sits inside the 2 ms absolute slack —
  // percentage thresholds must not fire on tiny baselines.
  const JsonValue base =
      obs::json::parse(report_doc({cell_doc("c1", 10'000, 20'000, 30'000, 0, 1.0, 0)}));
  const JsonValue cur =
      obs::json::parse(report_doc({cell_doc("c1", 11'500, 20'000, 30'000, 0, 1.0, 0)}));
  EXPECT_TRUE(sim::compare(base, cur).ok());
}

TEST(MatrixCompare, CounterAndConvergenceRegressions) {
  const JsonValue base =
      obs::json::parse(report_doc({cell_doc("c1", 10'000, 20'000, 30'000, 100, 1.0, 2)}));
  // Drops +30% (> 25% and > slack 4), retries 2 -> 12, convergence 1 -> 0.5.
  const JsonValue cur =
      obs::json::parse(report_doc({cell_doc("c1", 10'000, 20'000, 30'000, 130, 0.5, 12)}));
  const CompareResult r = sim::compare(base, cur);
  std::set<std::string> fields;
  for (const sim::Regression& reg : r.regressions) fields.insert(reg.field);
  EXPECT_TRUE(fields.contains("copies_dropped"));
  EXPECT_TRUE(fields.contains("cluster.rekey_retries"));
  EXPECT_TRUE(fields.contains("convergence"));
}

TEST(MatrixCompare, MissingCellFailsNewCellDoesNot) {
  const JsonValue base = obs::json::parse(report_doc(
      {cell_doc("c1", 1000, 2000, 3000, 0, 1.0, 0), cell_doc("c2", 1000, 2000, 3000, 0, 1.0, 0)}));
  const JsonValue cur = obs::json::parse(report_doc(
      {cell_doc("c1", 1000, 2000, 3000, 0, 1.0, 0), cell_doc("c3", 1000, 2000, 3000, 0, 1.0, 0)}));
  const CompareResult r = sim::compare(base, cur);
  ASSERT_EQ(r.missing_cells, (std::vector<std::string>{"c2"}));
  ASSERT_EQ(r.new_cells, (std::vector<std::string>{"c3"}));
  EXPECT_FALSE(r.ok());  // a vanished cell is a regression...
  const CompareResult only_new = sim::compare(
      obs::json::parse(report_doc({cell_doc("c1", 1000, 2000, 3000, 0, 1.0, 0)})), cur);
  EXPECT_TRUE(only_new.ok());  // ...a new cell is not
}

TEST(MatrixCompare, RejectsNonReportDocuments) {
  const JsonValue report =
      obs::json::parse(report_doc({cell_doc("c1", 1000, 2000, 3000, 0, 1.0, 0)}));
  EXPECT_THROW((void)sim::compare(obs::json::parse(R"({"bench":"x"})"), report),
               std::invalid_argument);
  EXPECT_THROW((void)sim::compare(report, obs::json::parse("[]")), std::invalid_argument);
}

TEST(MatrixCompare, RealReportSelfComparisonPasses) {
  obs::Registry::global().reset();
  MatrixConfig cfg = small_config();
  // Single-cell sweep: this test exercises shape compatibility between
  // MatrixReport::to_json() and compare(), not the full matrix again.
  cfg.topologies = {sim::Topology::kHierarchical};
  cfg.link_classes = {LinkClass::manet()};
  cfg.loss_models = {{"bursty10", 0.10, true}};
  const JsonValue doc = obs::json::parse(MatrixRunner(cfg).run().to_json());
  const CompareResult r = sim::compare(doc, doc, CompareThresholds{});
  EXPECT_TRUE(r.ok()) << r.to_markdown();
  EXPECT_TRUE(r.new_cells.empty());
}

}  // namespace
}  // namespace idgka
