// SHA-256 / HMAC / HMAC-DRBG tests against published vectors.
#include <gtest/gtest.h>

#include "hash/hmac.h"
#include "hash/hmac_drbg.h"
#include "hash/sha256.h"

namespace idgka::hash {
namespace {

std::string hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (const auto b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex(Sha256::digest(std::string_view{""})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(Sha256::digest(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex(Sha256::digest(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finalize(), Sha256::digest(std::string_view{msg})) << "split=" << split;
  }
}

TEST(Sha256, BoundarySizes) {
  // Exercise padding around the 55/56/64-byte boundaries.
  for (std::size_t len : {55U, 56U, 57U, 63U, 64U, 65U, 119U, 120U, 128U}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(std::string_view{msg});
    Sha256 b;
    for (char c : msg) b.update(std::string_view(&c, 1));
    EXPECT_EQ(a.finalize(), b.finalize()) << "len=" << len;
  }
}

TEST(Hmac, Rfc4231Vectors) {
  // Case 1
  std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha256(key, Sha256::digest(std::string_view{""}))) .size(), 64U);
  const std::string_view data1 = "Hi There";
  EXPECT_EQ(hex(hmac_sha256(key, std::span<const std::uint8_t>(
                                     reinterpret_cast<const std::uint8_t*>(data1.data()),
                                     data1.size()))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");

  // Case 2: key "Jefe", data "what do ya want for nothing?"
  const std::string_view key2 = "Jefe";
  const std::string_view data2 = "what do ya want for nothing?";
  EXPECT_EQ(hex(hmac_sha256(
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(key2.data()), key2.size()),
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(data2.data()), data2.size()))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");

  // Case 6: 131-byte key (exceeds block size, must be hashed first).
  std::vector<std::uint8_t> key6(131, 0xaa);
  const std::string_view data6 = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(hex(hmac_sha256(key6, std::span<const std::uint8_t>(
                                      reinterpret_cast<const std::uint8_t*>(data6.data()),
                                      data6.size()))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacDrbg, DeterministicUnderSeed) {
  HmacDrbg a(42, "test");
  HmacDrbg b(42, "test");
  std::array<std::uint8_t, 64> buf_a{};
  std::array<std::uint8_t, 64> buf_b{};
  a.fill(buf_a);
  b.fill(buf_b);
  EXPECT_EQ(buf_a, buf_b);

  HmacDrbg c(42, "other-label");
  std::array<std::uint8_t, 64> buf_c{};
  c.fill(buf_c);
  EXPECT_NE(buf_a, buf_c);

  HmacDrbg d(43, "test");
  std::array<std::uint8_t, 64> buf_d{};
  d.fill(buf_d);
  EXPECT_NE(buf_a, buf_d);
}

TEST(HmacDrbg, StreamContinuityAndReseed) {
  HmacDrbg a(7, "x");
  std::array<std::uint8_t, 32> first{};
  std::array<std::uint8_t, 32> second{};
  a.fill(first);
  a.fill(second);
  EXPECT_NE(first, second);

  HmacDrbg b(7, "x");
  std::array<std::uint8_t, 32> again{};
  b.fill(again);
  EXPECT_EQ(first, again);
  const std::array<std::uint8_t, 4> extra{1, 2, 3, 4};
  b.reseed(extra);
  b.fill(again);
  EXPECT_NE(second, again);
}

TEST(HmacDrbg, ActsAsRngForBigInts) {
  HmacDrbg drbg(99, "bigint");
  const auto v = mpint::random_bits(drbg, 256);
  EXPECT_EQ(v.bit_length(), 256U);
  // Different draws differ.
  EXPECT_NE(mpint::random_bits(drbg, 256), v);
}

}  // namespace
}  // namespace idgka::hash
