// Reliable-round exchange tests: completion, retransmission accounting,
// unicast routing, retry-cap behaviour.
#include "gka/exchange.h"

#include <gtest/gtest.h>

#include "wire/codec.h"

namespace idgka::gka {
namespace {

net::Message msg_from(std::uint32_t sender, const char* type = "t") {
  net::Message m;
  m.sender = sender;
  m.type = type;
  m.payload.put_u32("id", sender);
  m.declared_bits = 64;
  return m;
}

std::vector<std::uint32_t> nodes(net::Network& net, std::size_t n) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 1; i <= n; ++i) {
    net.add_node(i);
    ids.push_back(i);
  }
  return ids;
}

TEST(ExchangeRound, LosslessBroadcastCompletesFirstAttempt) {
  net::Network net;
  const auto ids = nodes(net, 4);
  std::vector<RoundSend> sends;
  for (const auto id : ids) sends.push_back(RoundSend{msg_from(id), ids});
  const RoundResult r = exchange_round(net, sends, ids);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.retransmissions, 0);
  for (const auto rx : ids) {
    EXPECT_EQ(r.collected.at(rx).size(), 3U);  // everyone except self
    EXPECT_FALSE(r.collected.at(rx).contains(rx));
  }
}

TEST(ExchangeRound, UnicastOnlyReachesRecipient) {
  net::Network net;
  const auto ids = nodes(net, 3);
  net::Message m = msg_from(1);
  m.recipient = 3;
  const RoundResult r = exchange_round(net, {RoundSend{m, {}}}, ids);
  ASSERT_TRUE(r.complete);
  EXPECT_TRUE(r.collected.at(3).contains(1));
  EXPECT_TRUE(!r.collected.contains(2) || r.collected.at(2).empty());
}

TEST(ExchangeRound, LossTriggersRetransmissionUntilComplete) {
  net::Network net(0.4, /*seed=*/7);
  const auto ids = nodes(net, 5);
  std::vector<RoundSend> sends;
  for (const auto id : ids) sends.push_back(RoundSend{msg_from(id), ids});
  const RoundResult r = exchange_round(net, sends, ids);
  ASSERT_TRUE(r.complete);
  EXPECT_GT(r.retransmissions, 0);
  for (const auto rx : ids) EXPECT_EQ(r.collected.at(rx).size(), 4U);
  EXPECT_GT(net.dropped(), 0U);
}

TEST(ExchangeRound, RetryCapGivesIncompleteResult) {
  net::Network net;
  const auto ids = nodes(net, 3);
  // A byte-level adversary jams every frame from node 2 to node 3,
  // selecting its target from the frame header alone.
  net.set_frame_tamper_hook([](std::vector<std::uint8_t>& bytes, std::uint32_t rx) {
    return !(wire::peek(bytes).sender == 2 && rx == 3);
  });
  std::vector<RoundSend> sends;
  for (const auto id : ids) sends.push_back(RoundSend{msg_from(id), ids});
  const RoundResult r = exchange_round(net, sends, ids, /*max_retries=*/5);
  EXPECT_FALSE(r.complete);
  EXPECT_GT(r.retransmissions, 0);
  // Other traffic still went through.
  EXPECT_TRUE(r.collected.at(3).contains(1));
}

TEST(ExchangeRound, FirstCopyWinsOnDuplicates) {
  net::Network net(0.3, /*seed=*/21);
  const auto ids = nodes(net, 4);
  std::vector<RoundSend> sends;
  for (const auto id : ids) sends.push_back(RoundSend{msg_from(id), ids});
  const RoundResult r = exchange_round(net, sends, ids);
  ASSERT_TRUE(r.complete);
  // Retransmissions rebroadcast to all; receivers keep exactly one copy per
  // sender even though the radio delivered (and charged) several.
  for (const auto rx : ids) EXPECT_EQ(r.collected.at(rx).size(), 3U);
  std::uint64_t rx_msgs = 0;
  for (const auto rx : ids) rx_msgs += net.stats(rx).rx_messages;
  EXPECT_GT(rx_msgs, 12U);  // more deliveries than kept copies
}

TEST(ExchangeRound, SenderOrderPreserved) {
  // The proposed protocol needs U_1 to transmit last; exchange_round sends
  // in the given order within each attempt.
  net::Network net;
  const auto ids = nodes(net, 3);
  std::vector<std::uint32_t> tx_order;
  net.set_sniffer([&](const net::Message& m) { tx_order.push_back(m.sender); });
  std::vector<RoundSend> sends;
  sends.push_back(RoundSend{msg_from(2), ids});
  sends.push_back(RoundSend{msg_from(3), ids});
  sends.push_back(RoundSend{msg_from(1), ids});  // controller last
  ASSERT_TRUE(exchange_round(net, sends, ids).complete);
  EXPECT_EQ(tx_order, (std::vector<std::uint32_t>{2, 3, 1}));
}

}  // namespace
}  // namespace idgka::gka
