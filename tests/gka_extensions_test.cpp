// Extension features: key confirmation round, refresh-all countermeasure
// cost, parallel-runner determinism.
#include <gtest/gtest.h>

#include "gka/complexity.h"
#include "gka/proposed.h"
#include "gka/session.h"
#include "net/parallel.h"

namespace idgka::gka {
namespace {

Authority& test_authority() {
  static Authority authority(SecurityProfile::kTest, /*seed=*/4242);
  return authority;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

TEST(KeyConfirmation, AddsOneRoundAndStillAgrees) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(5, 4000), 1);
  session.set_key_confirmation(true);
  const RunResult result = session.form();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 3);  // 2 GKA rounds + confirmation
  for (const auto& m : session.members()) EXPECT_EQ(m.key, session.key());
  // Hash work recorded: 2 blocks own tag + 2 per verified peer.
  EXPECT_EQ(session.ledger(4000).count(energy::Op::kHashBlock), 2U + 2U * 4U);
}

TEST(KeyConfirmation, TamperedTagAbortsTheRun) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(4, 4100), 2);
  session.set_key_confirmation(true);
  session.mutable_network().set_tamper_hook([&](net::Message& msg, std::uint32_t) {
    if (msg.type == "proposed-kc" && msg.sender == 4102) {
      auto tag = msg.payload.get_blob("tag");
      tag[0] ^= 0xFF;
      net::Payload fresh;
      fresh.put_blob("tag", tag);
      msg.payload = fresh;
    }
    return true;
  });
  EXPECT_FALSE(session.form().success);
}

TEST(KeyConfirmation, OffByDefault) {
  GroupSession session(test_authority(), Scheme::kProposed, make_ids(3, 4200), 3);
  const RunResult result = session.form();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.rounds, 2);
  EXPECT_EQ(session.ledger(4200).count(energy::Op::kHashBlock), 0U);
}

TEST(RefreshAllCountermeasure, CostsExtraCommitmentsOnly) {
  // Default policy: even survivors reuse tau. Countermeasure: they refresh
  // (one extra mod-exp inside SignGen... the commitment t' = tau'^e) and
  // broadcast a Round-1 message.
  const std::size_t n = 6;
  GroupSession base(test_authority(), Scheme::kProposed, make_ids(n, 4300), 4);
  GroupSession hard(test_authority(), Scheme::kProposed, make_ids(n, 4400), 4);
  hard.set_refresh_all_commitments(true);
  ASSERT_TRUE(base.form().success);
  ASSERT_TRUE(hard.form().success);
  base.reset_ledgers();
  hard.reset_ledgers();
  ASSERT_TRUE(base.leave(base.member_ids().back()).success);
  ASSERT_TRUE(hard.leave(hard.member_ids().back()).success);

  // Even-indexed survivor (position 2): with the countermeasure it also
  // broadcasts a Round-1 refresh (one extra tx + one extra z mod-exp).
  const auto& l_base = base.ledger(base.member_ids()[1]);
  const auto& l_hard = hard.ledger(hard.member_ids()[1]);
  EXPECT_EQ(l_base.count(energy::Op::kModExp) + 1, l_hard.count(energy::Op::kModExp));
  EXPECT_EQ(l_base.tx_messages + 1, l_hard.tx_messages);
  // Keys still agree and stay consistent.
  for (const auto& m : hard.members()) EXPECT_EQ(m.key, hard.key());
}

TEST(ParallelRunner, SingleAndMultiThreadedRunsIdentical) {
  // Determinism across schedules: the parallel verification phase cannot
  // change any output (per-node DRBGs, share-nothing writes).
  GroupSession a(test_authority(), Scheme::kProposed, make_ids(8, 4500), 5);
  ASSERT_TRUE(a.form().success);
  // worker_count() is latched once; instead exercise determinism across
  // repeated multi-threaded runs.
  for (int i = 0; i < 3; ++i) {
    GroupSession b(test_authority(), Scheme::kProposed, make_ids(8, 4500), 5);
    ASSERT_TRUE(b.form().success);
    EXPECT_EQ(a.key(), b.key());
  }
}

TEST(ParallelRunner, ForEachCoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(257);
  net::parallel_for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Zero and single-element cases.
  net::parallel_for_each(0, [&](std::size_t) { FAIL(); });
  int single = 0;
  net::parallel_for_each(1, [&](std::size_t) { ++single; });
  EXPECT_EQ(single, 1);
}

TEST(ParallelRunner, PropagatesExceptions) {
  EXPECT_THROW(net::parallel_for_each(64,
                                      [&](std::size_t i) {
                                        if (i == 33) throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
}

}  // namespace
}  // namespace idgka::gka
