// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "energy/profiles.h"
#include "gka/complexity.h"
#include "gka/session.h"

namespace idgka::bench {

inline std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 1000) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

/// Per-node total energy (J) for the initial GKA of `scheme` at size n under
/// the formula ledgers (validated == instrumented by the test suite).
inline double initial_energy_j(gka::Scheme scheme, std::size_t n,
                               const energy::RadioProfile& radio) {
  const energy::Ledger ledger = gka::impl_initial_ledger(scheme, n);
  return energy::ledger_energy_mj(ledger, energy::strongarm(), radio) / 1000.0;
}

inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace idgka::bench

// ---------------------------------------------------------------------------
// Opt-in heap-allocation counter.
//
// Define IDGKA_BENCH_COUNT_ALLOCS before including this header — from exactly
// ONE translation unit of the bench executable — to replace the global
// operator new/delete with counting wrappers. Replaceable allocation
// functions must not be inline ([replacement.functions]), so the definitions
// below are plain externals: the single-TU rule keeps the ODR happy while
// still interposing every allocation in the whole binary, including the
// linked-in library code under test. heap_alloc_count() deltas around a
// steady-state loop then measure allocations per operation (the residue
// engine's zero-alloc gate in bench_ablation_mpint).
// ---------------------------------------------------------------------------
#ifdef IDGKA_BENCH_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace idgka::bench {

namespace alloc_detail {
inline std::atomic<std::uint64_t> g_news{0};
}  // namespace alloc_detail

/// Number of operator-new calls since process start.
inline std::uint64_t heap_alloc_count() {
  return alloc_detail::g_news.load(std::memory_order_relaxed);
}

}  // namespace idgka::bench

void* operator new(std::size_t size) {
  idgka::bench::alloc_detail::g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // IDGKA_BENCH_COUNT_ALLOCS

namespace idgka::bench {

/// Peak resident set size (VmHWM) of this process in kB, from
/// /proc/self/status; 0 where procfs is unavailable. Every bench JSON
/// artifact reports it so memory regressions at scale are visible in CI
/// (bench_compare ignores it by default — it is a report, not a gate).
inline std::size_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::size_t kb = 0;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace idgka::bench
