// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "energy/profiles.h"
#include "gka/complexity.h"
#include "gka/session.h"

namespace idgka::bench {

inline std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base = 1000) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

/// Per-node total energy (J) for the initial GKA of `scheme` at size n under
/// the formula ledgers (validated == instrumented by the test suite).
inline double initial_energy_j(gka::Scheme scheme, std::size_t n,
                               const energy::RadioProfile& radio) {
  const energy::Ledger ledger = gka::impl_initial_ledger(scheme, n);
  return energy::ledger_energy_mj(ledger, energy::strongarm(), radio) / 1000.0;
}

inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace idgka::bench
