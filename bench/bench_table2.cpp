// Table 2 reproduction: computational energy / timing cost of the
// cryptographic primitives.
//
// Prints the paper's per-op table (StrongARM mJ + ms, P-III-450 ms, and the
// Eq.-4 extrapolation), then google-benchmark measurements of *this
// implementation* of every primitive on the build host — the paper's shape
// check is the ratio structure (e.g. SOK verification >> everything else).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ec/curve.h"
#include "energy/profiles.h"
#include "hash/hmac_drbg.h"
#include "mpint/mod_context.h"
#include "mpint/prime.h"
#include "pairing/tate.h"
#include "sig/dsa.h"
#include "sig/ecdsa.h"
#include "sig/gq.h"
#include "sig/sok.h"

using namespace idgka;

namespace {

// Shared fixtures at the paper's parameter sizes.
struct Fixtures {
  hash::HmacDrbg rng{20240612, "bench-table2"};
  mpint::SchnorrGroup grp = mpint::generate_schnorr_group(rng, 1024, 160, 24);
  mpint::ModContext mont{grp.p};
  mpint::GqModulus gq_mod = mpint::generate_gq_modulus(rng, 1024, mpint::BigInt{65537}, 24);
  sig::GqPkg gq_pkg{mpint::GqModulus(gq_mod)};
  mpint::SupersingularParams ss =
      mpint::generate_supersingular_params(rng, 512, 160, 24);
  pairing::SsGroup ss_group{ss};
  pairing::TatePairing tate{ss_group};
  sig::SokPkg sok_pkg{ss_group, rng};
  sig::DsaParams dsa = sig::dsa_generate_params(rng, 1024, 160, 24);
  sig::DsaKeyPair dsa_key = sig::dsa_generate_keypair(dsa, rng);
  sig::EcdsaKeyPair ec_key = sig::ecdsa_generate_keypair(ec::secp160r1(), rng);
};

Fixtures& fx() {
  static Fixtures f;
  return f;
}

const std::vector<std::uint8_t> kMsg = {'t', 'a', 'b', 'l', 'e', '2'};

void BM_ModExp1024(benchmark::State& state) {
  auto& f = fx();
  const auto base = mpint::random_below(f.rng, f.grp.p);
  const auto exp = mpint::random_below(f.rng, f.grp.q);
  for (auto _ : state) benchmark::DoNotOptimize(f.mont.exp(base, exp));
}
BENCHMARK(BM_ModExp1024);

void BM_TatePairing(benchmark::State& state) {
  auto& f = fx();
  const auto p = f.ss_group.generator();
  const auto q = f.ss_group.map_to_point(std::string_view{"other"});
  for (auto _ : state) benchmark::DoNotOptimize(f.tate.pair(p, q));
}
BENCHMARK(BM_TatePairing);

void BM_ScalarMul160(benchmark::State& state) {
  auto& f = fx();
  const auto& curve = ec::secp160r1();
  const auto k = mpint::random_below(f.rng, curve.order());
  for (auto _ : state) benchmark::DoNotOptimize(curve.mul(k, curve.generator()));
}
BENCHMARK(BM_ScalarMul160);

void BM_SignGenDsa(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) benchmark::DoNotOptimize(sig::dsa_sign(f.dsa, f.dsa_key, kMsg, f.rng));
}
BENCHMARK(BM_SignGenDsa);

void BM_SignVerDsa(benchmark::State& state) {
  auto& f = fx();
  const auto sig = sig::dsa_sign(f.dsa, f.dsa_key, kMsg, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::dsa_verify(f.dsa, f.dsa_key.y, kMsg, sig));
  }
}
BENCHMARK(BM_SignVerDsa);

void BM_SignGenEcdsa(benchmark::State& state) {
  auto& f = fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::ecdsa_sign(ec::secp160r1(), f.ec_key, kMsg, f.rng));
  }
}
BENCHMARK(BM_SignGenEcdsa);

void BM_SignVerEcdsa(benchmark::State& state) {
  auto& f = fx();
  const auto sig = sig::ecdsa_sign(ec::secp160r1(), f.ec_key, kMsg, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::ecdsa_verify(ec::secp160r1(), f.ec_key.q, kMsg, sig));
  }
}
BENCHMARK(BM_SignVerEcdsa);

void BM_SignGenSok(benchmark::State& state) {
  auto& f = fx();
  const auto key = f.sok_pkg.extract(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::sok_sign(f.ss_group, 42, key, kMsg, f.rng));
  }
}
BENCHMARK(BM_SignGenSok);

void BM_SignVerSok(benchmark::State& state) {
  auto& f = fx();
  const auto key = f.sok_pkg.extract(42);
  const auto sig = sig::sok_sign(f.ss_group, 42, key, kMsg, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::sok_verify(f.tate, f.sok_pkg.public_key(), 42, kMsg, sig));
  }
}
BENCHMARK(BM_SignVerSok);

void BM_SignGenGq(benchmark::State& state) {
  auto& f = fx();
  const sig::GqSigner signer(f.gq_pkg.params(), 42, f.gq_pkg.extract(42));
  for (auto _ : state) benchmark::DoNotOptimize(signer.sign(kMsg, f.rng));
}
BENCHMARK(BM_SignGenGq);

void BM_SignVerGq(benchmark::State& state) {
  auto& f = fx();
  const sig::GqSigner signer(f.gq_pkg.params(), 42, f.gq_pkg.extract(42));
  const auto sig = signer.sign(kMsg, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig::gq_verify(f.gq_pkg.params(), 42, kMsg, sig));
  }
}
BENCHMARK(BM_SignVerGq);

void print_paper_table() {
  using energy::Op;
  const auto& sa = energy::strongarm();
  const auto& p3 = energy::pentium3_450();
  std::printf("=== Table 2: Computational Energy Cost (paper model) ===\n");
  std::printf("%-18s %14s %14s %14s\n", "operation", "StrongARM mJ", "StrongARM ms",
              "P-III 450 ms");
  const Op ops[] = {Op::kModExp,      Op::kMapToPoint,  Op::kTatePairing, Op::kScalarMul,
                    Op::kSignGenDsa,  Op::kSignGenEcdsa, Op::kSignGenSok,  Op::kSignGenGq,
                    Op::kSignVerDsa,  Op::kSignVerEcdsa, Op::kSignVerSok,  Op::kSignVerGq};
  for (const Op op : ops) {
    std::printf("%-18s %14.2f %14.2f %14.2f\n", std::string(energy::op_name(op)).c_str(),
                sa.mj(op), sa.ms(op), p3.ms(op));
  }
  // Eq. (4) sanity: extrapolating the P-III Tate timing reproduces the
  // paper's StrongARM figures.
  const auto tate = energy::extrapolate_from_p3(44.4);
  std::printf("\nEq.(4) check: Tate 44.4 ms (P-III) -> %.1f ms / %.1f mJ StrongARM "
              "(paper: 191.5 ms / 47.0 mJ)\n\n",
              tate.strongarm_ms, tate.strongarm_mj);
  std::printf("--- measured timings of this implementation on the build host follow ---\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_paper_table();
  // Register MapToPoint late (it uses std::string concatenation fixed below).
  benchmark::RegisterBenchmark("BM_MapToPoint", [](benchmark::State& state) {
    auto& f = fx();
    std::uint32_t ctr = 0;
    for (auto _ : state) {
      std::array<std::uint8_t, 4> id{};
      for (int i = 0; i < 4; ++i) id[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(ctr >> (24 - i * 8));
      ++ctr;
      benchmark::DoNotOptimize(f.ss_group.map_to_point(id));
    }
  });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
