// Table 1 reproduction: complexity analysis for authenticated BD GKA.
//
// Prints the paper's per-member complexity rows next to the counts measured
// from real instrumented protocol runs at the paper parameter sizes.
#include <cstdio>

#include "bench_util.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

struct Column {
  gka::Scheme scheme;
  const char* header;
};

void print_row(const char* label, const std::vector<std::string>& cells) {
  std::printf("%-14s", label);
  for (const auto& c : cells) std::printf(" | %-12s", c.c_str());
  std::printf("\n");
}

std::string sym(std::uint64_t v) { return std::to_string(v); }

}  // namespace

int main() {
  const std::size_t n = 10;  // measured group size (counts scale per the formulas)
  std::printf("=== Table 1: Complexity Analysis for Authenticated BD GKA ===\n");
  std::printf("per-member costs; paper formulas evaluated at n=%zu, next to measured runs\n\n",
              n);

  const Column columns[] = {
      {gka::Scheme::kProposed, "Proposed"},  {gka::Scheme::kBdSok, "BD+SOK"},
      {gka::Scheme::kBdEcdsa, "BD+ECDSA"},   {gka::Scheme::kBdDsa, "BD+DSA"},
      {gka::Scheme::kSsn, "SSN"},
  };

  gka::Authority authority(gka::SecurityProfile::kPaper, 20240612);

  std::vector<gka::Table1Row> paper;
  std::vector<energy::Ledger> measured;
  for (const Column& col : columns) {
    paper.push_back(gka::paper_table1(col.scheme, n));
    gka::GroupSession session(authority, col.scheme, make_ids(n), 7);
    if (!session.form().success) {
      std::fprintf(stderr, "protocol run failed for %s\n", col.header);
      return 1;
    }
    measured.push_back(session.ledger(session.member_ids().front()));
  }

  auto cells = [&](auto&& get) {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < std::size(columns); ++i) out.push_back(get(i));
    return out;
  };
  using energy::Op;

  print_row("", cells([&](std::size_t i) { return std::string(columns[i].header); }));
  rule('-', 90);
  print_row("Exp. (paper)",
            cells([&](std::size_t i) { return paper[i].exponentiations; }));
  print_row("Exp. (ours)", cells([&](std::size_t i) {
              return sym(measured[i].count(Op::kModExp));
            }));
  print_row("Msg Tx", cells([&](std::size_t i) { return sym(measured[i].tx_messages); }));
  print_row("Msg Rx", cells([&](std::size_t i) { return sym(measured[i].rx_messages); }));
  print_row("Cert Ver (p)", cells([&](std::size_t i) { return sym(paper[i].cert_ver); }));
  print_row("Cert Ver (o)", cells([&](std::size_t i) {
              return sym(measured[i].count(Op::kCertVerifyDsa) +
                         measured[i].count(Op::kCertVerifyEcdsa));
            }));
  print_row("MapToPt (p)", cells([&](std::size_t i) { return sym(paper[i].map_to_point); }));
  print_row("MapToPt (o)", cells([&](std::size_t i) {
              return sym(measured[i].count(Op::kMapToPoint));
            }));
  print_row("SignGen (p)", cells([&](std::size_t i) { return sym(paper[i].sign_gen); }));
  print_row("SignGen (o)", cells([&](std::size_t i) {
              return sym(measured[i].count(Op::kSignGenDsa) +
                         measured[i].count(Op::kSignGenEcdsa) +
                         measured[i].count(Op::kSignGenSok) +
                         measured[i].count(Op::kSignGenGq));
            }));
  print_row("SignVer (p)", cells([&](std::size_t i) { return sym(paper[i].sign_ver); }));
  print_row("SignVer (o)", cells([&](std::size_t i) {
              return sym(measured[i].count(Op::kSignVerDsa) +
                         measured[i].count(Op::kSignVerEcdsa) +
                         measured[i].count(Op::kSignVerSok) +
                         measured[i].count(Op::kSignVerGq));
            }));
  rule('-', 90);
  std::printf("(p) = paper row, (o) = measured from an instrumented run at |p|=|n|=1024.\n");
  std::printf("SSN note: our concrete SSN realisation measures 2n+3 = %zu exponentiations\n",
              2 * n + 3);
  std::printf("against the paper's 2n+4 accounting (see EXPERIMENTS.md).\n");
  return 0;
}
