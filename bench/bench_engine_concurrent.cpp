// Concurrent multi-group engine bench: 16 independent 32-member groups —
// each forming and churning through joins/leaves/partition/merge — run (a)
// sequentially, one standalone driver after another, and (b) concurrently
// as engine::ProtocolRuns multiplexed over ONE scheduler, their rounds
// interleaved by virtual-time events and resumed in parallel batches
// across the worker pool.
//
// Asserts (exit non-zero on failure):
//   * every group converges in both modes (form + all rekeys, keys agree);
//   * the concurrent run is deterministic: same seed => bit-identical
//     multi-group metrics JSON on a repeat, different seed => different
//     JSON; CI additionally diffs the --metrics-out file across
//     IDGKA_THREADS=1 and default-thread runs for cross-schedule identity;
//   * rounds genuinely interleave: the widest same-instant resume batch
//     equals the group count;
//   * with >= 2 workers, concurrent aggregate wall time beats the 16
//     sequential runs by >= 1.5x (the gate is skipped — reported but not
//     enforced — on single-worker hosts, where no wall-time win exists).
//
// Writes BENCH_engine.json; `--metrics-out FILE` additionally writes the
// deterministic multi-group metrics JSON alone (no wall times) for
// cross-thread-count diffing. `--members-per-group N` scales each group
// (CI's cross-thread smoke runs 16x256 = 4096 members); `--metrics-only`
// skips the sequential baseline and wall-time gates — the scaled smoke
// checks schedule identity, not speedup.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "bench_util.h"
#include "net/parallel.h"
#include "sim/scenario.h"

using namespace idgka;

namespace {

constexpr std::size_t kGroups = 16;
constexpr std::size_t kMembers = 32;
constexpr std::uint64_t kSeed = 20260730;

sim::MultiGroupConfig make_config(std::uint64_t seed, std::size_t members) {
  sim::MultiGroupConfig cfg;
  cfg.name = "engine_concurrent";
  cfg.groups = kGroups;
  cfg.topology = sim::Topology::kFlat;
  cfg.profile = gka::SecurityProfile::kTiny;
  cfg.members_per_group = members;
  cfg.seed = seed;
  cfg.stagger_us = 500 * sim::kUsPerMs;  // overlapping, not identical, schedules
  // Offsets: 0..members-1 initial members; >= members joiners.
  cfg.trace = {
      {5 * sim::kUsPerSec, sim::TraceEvent::Kind::kJoin,
       {static_cast<std::uint32_t>(members)}},
      {10 * sim::kUsPerSec, sim::TraceEvent::Kind::kLeave, {3}},
      {15 * sim::kUsPerSec, sim::TraceEvent::Kind::kPartition, {4, 5, 6}},
      {20 * sim::kUsPerSec, sim::TraceEvent::Kind::kMerge, {4, 5, 6}},
  };
  return cfg;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The sequential baseline: the same 16 groups with identical per-group
/// seeds (MultiGroupConfig's own derivation helpers, so both legs run the
/// same RNG streams), each on its own standalone driver and scheduler, one
/// after another. Returns aggregate wall ms; `converged` collects
/// per-group success.
double run_sequential(const sim::MultiGroupConfig& cfg, bool& converged) {
  converged = true;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t g = 0; g < cfg.groups; ++g) {
    gka::Authority authority(cfg.profile, cfg.authority_seed(g));
    sim::Scheduler scheduler;
    sim::ProtocolDriver driver(scheduler, cfg.driver, cfg.driver_seed(g));
    std::vector<std::uint32_t> ids(cfg.members_per_group);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ids[i] = cfg.group_base_id(g) + static_cast<std::uint32_t>(i);
    }
    gka::GroupSession session(authority, cfg.cluster.scheme, ids, cfg.session_seed(g));
    driver.attach(session);

    const sim::SimTime start = static_cast<sim::SimTime>(g) * cfg.stagger_us;
    scheduler.run_until(start);
    converged = converged && driver.form().success;
    for (const sim::TraceEvent& event : cfg.trace) {
      scheduler.run_until(event.at_us + start);
      const std::uint32_t id = cfg.group_base_id(g) + event.ids.front();
      std::vector<std::uint32_t> batch;
      for (const std::uint32_t offset : event.ids) {
        batch.push_back(cfg.group_base_id(g) + offset);
      }
      sim::OpOutcome outcome;
      switch (event.kind) {
        case sim::TraceEvent::Kind::kJoin:
          outcome = driver.join(id);
          break;
        case sim::TraceEvent::Kind::kLeave:
          outcome = driver.leave(id);
          break;
        case sim::TraceEvent::Kind::kPartition:
          outcome = driver.partition(batch);
          break;
        case sim::TraceEvent::Kind::kMerge:
          outcome = driver.admit(batch);
          break;
      }
      converged = converged && outcome.success;
    }
    converged = converged && driver.agreed();
  }
  return ms_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  const char* metrics_out = nullptr;
  std::size_t members = kMembers;
  bool metrics_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--members-per-group") == 0 && i + 1 < argc) {
      members = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-only") == 0) {
      metrics_only = true;
    }
  }

  const std::size_t workers = net::worker_count();
  std::printf("=== Engine concurrency: %zu groups x %zu members, one scheduler ===\n",
              kGroups, members);
  std::printf("kTiny parameters, flat proposed scheme, %zu worker thread(s)\n\n", workers);

  const sim::MultiGroupConfig cfg = make_config(kSeed, members);

  if (metrics_only) {
    // The scaled cross-thread smoke: one concurrent run, convergence
    // checked, deterministic metrics written for cmp across IDGKA_THREADS.
    const sim::MultiGroupMetrics metrics = sim::MultiGroupRunner(cfg).run();
    const bool converged = metrics.all_groups_agree() && metrics.convergence() == 1.0;
    std::printf("concurrent leg converged=%s (n=%zu)\n", converged ? "yes" : "NO",
                kGroups * members);
    if (metrics_out != nullptr) {
      std::ofstream mout(metrics_out);
      mout << metrics.to_json() << '\n';
      std::printf("wrote %s (deterministic metrics only)\n", metrics_out);
    }
    return converged ? 0 : 1;
  }

  bool seq_converged = false;
  const double seq_ms = run_sequential(cfg, seq_converged);
  std::printf("%-34s %10.1f ms  converged=%s\n", "sequential (16 standalone drivers)",
              seq_ms, seq_converged ? "yes" : "NO");

  auto t0 = std::chrono::steady_clock::now();
  const sim::MultiGroupMetrics metrics = sim::MultiGroupRunner(cfg).run();
  const double conc_ms = ms_since(t0);
  const bool conc_converged = metrics.all_groups_agree() && metrics.convergence() == 1.0;
  std::printf("%-34s %10.1f ms  converged=%s\n", "concurrent (one engine::Executor)",
              conc_ms, conc_converged ? "yes" : "NO");

  const sim::MultiGroupMetrics repeat = sim::MultiGroupRunner(cfg).run();
  const bool deterministic = metrics.to_json() == repeat.to_json();
  const sim::MultiGroupMetrics other_seed =
      sim::MultiGroupRunner(make_config(kSeed + 1, members)).run();
  const bool seeds_diverge = metrics.to_json() != other_seed.to_json();

  const double speedup = conc_ms > 0.0 ? seq_ms / conc_ms : 0.0;
  const bool interleaved = metrics.max_concurrent_runs >= kGroups;
  // Enforce the wall-time gate only where a win is physically possible:
  // both the worker pool AND the hardware must offer >= 2 lanes (an
  // IDGKA_THREADS override cannot conjure cores, and the IDGKA_THREADS=1
  // determinism leg is a correctness run, not a performance one).
  const unsigned hw = std::thread::hardware_concurrency();
  const bool enforce_speedup = workers >= 2 && hw >= 2;
  const bool speedup_ok = !enforce_speedup || speedup >= 1.5;

  std::printf("\nspeedup %.2fx (gate >= 1.5x %s at %zu workers)\n", speedup,
              enforce_speedup ? "ENFORCED" : "reported only", workers);
  std::printf("deterministic repeat: %s | seeds diverge: %s | max concurrent runs: %zu/%zu\n",
              deterministic ? "yes" : "NO", seeds_diverge ? "yes" : "NO",
              metrics.max_concurrent_runs, kGroups);
  std::printf("engine resumes: %llu | aggregate rekeys: %zu/%zu | p50 %.1f ms | p99 %.1f ms\n",
              static_cast<unsigned long long>(metrics.engine_resumes),
              metrics.rekeys_completed(), metrics.rekeys_attempted(),
              static_cast<double>(sim::percentile_us(metrics.all_op_latencies_us(), 50.0)) /
                  1000.0,
              static_cast<double>(sim::percentile_us(metrics.all_op_latencies_us(), 99.0)) /
                  1000.0);

  std::ofstream out("BENCH_engine.json");
  char head[512];
  std::snprintf(head, sizeof head,
                "{\"bench\":\"engine_concurrent\",\"groups\":%zu,\"members_per_group\":%zu,"
                "\"workers\":%zu,\"sequential_wall_ms\":%.1f,\"concurrent_wall_ms\":%.1f,"
                "\"speedup\":%.2f,\"speedup_gate\":{\"required\":1.5,\"enforced\":%s,"
                "\"pass\":%s},\"deterministic_repeat\":%s,\"seeds_diverge\":%s,"
                "\"interleaved\":%s,\"peak_rss_kb\":%zu,\"metrics\":",
                kGroups, members, workers, seq_ms, conc_ms, speedup,
                enforce_speedup ? "true" : "false", speedup_ok ? "true" : "false",
                deterministic ? "true" : "false", seeds_diverge ? "true" : "false",
                interleaved ? "true" : "false", bench::peak_rss_kb());
  out << head << metrics.to_json() << "}\n";
  out.close();
  std::printf("\nwrote BENCH_engine.json\n");

  if (metrics_out != nullptr) {
    // Wall-time-free metrics for cross-IDGKA_THREADS diffing in CI.
    std::ofstream mout(metrics_out);
    mout << metrics.to_json() << '\n';
    std::printf("wrote %s (deterministic metrics only)\n", metrics_out);
  }

  const bool ok =
      seq_converged && conc_converged && deterministic && seeds_diverge && interleaved &&
      speedup_ok;
  if (!ok) {
    std::printf("FAILED: convergence/determinism/interleaving/speedup gate violated\n");
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
