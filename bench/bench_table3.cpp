// Table 3 reproduction: communication energy cost of certificates and
// signatures on the 100 kbps transceiver and the Spectrum24 WLAN card.
#include <cstdio>

#include "bench_util.h"

using namespace idgka;

namespace {

struct Item {
  const char* label;
  std::size_t bits;
  double paper_tx_100k_mj;  // paper column for cross-checking
  double paper_rx_100k_mj;
  double paper_tx_wlan_mj;
  double paper_rx_wlan_mj;
};

}  // namespace

int main() {
  namespace wire = energy::wire;
  const auto& radio = energy::radio_100kbps();
  const auto& wlan = energy::wlan_spectrum24();

  std::printf("=== Table 3: Communication Energy Cost ===\n");
  std::printf("per-bit: 100kbps tx %.2f / rx %.2f uJ;  WLAN tx %.2f / rx %.2f uJ\n\n",
              radio.tx_uj_per_bit, radio.rx_uj_per_bit, wlan.tx_uj_per_bit,
              wlan.rx_uj_per_bit);

  const Item items[] = {
      {"263-B DSA cert", wire::kDsaCertBits, 22.72, 15.80, 1.38, 0.64},
      {"86-B ECDSA cert", wire::kEcdsaCertBits, 7.43, 5.17, 0.45, 0.21},
      {"DSA/ECDSA sig", wire::kDsaSigBits, 3.46, 2.40, 0.21, 0.10},
      {"SOK sig", wire::kSokSigBits, 4.19, 2.91, 0.26, 0.12},
      {"GQ sig", wire::kGqSigBits, 12.79, 8.89, 0.78, 0.36},
  };

  std::printf("%-16s %6s | %9s %9s | %9s %9s | %s\n", "item", "bits", "tx100k mJ",
              "rx100k mJ", "txWLAN mJ", "rxWLAN mJ", "paper(tx100k/rx100k/txW/rxW)");
  bench::rule('-', 110);
  for (const Item& item : items) {
    const double bits = static_cast<double>(item.bits);
    std::printf("%-16s %6zu | %9.2f %9.2f | %9.3f %9.3f | %.2f / %.2f / %.2f / %.2f\n",
                item.label, item.bits, bits * radio.tx_uj_per_bit / 1000.0,
                bits * radio.rx_uj_per_bit / 1000.0, bits * wlan.tx_uj_per_bit / 1000.0,
                bits * wlan.rx_uj_per_bit / 1000.0, item.paper_tx_100k_mj,
                item.paper_rx_100k_mj, item.paper_tx_wlan_mj, item.paper_rx_wlan_mj);
  }
  bench::rule('-', 110);
  std::printf("computed = bits x per-bit cost; the right column repeats the paper's "
              "printed values for comparison.\n");
  return 0;
}
