// Ablation A: GQ batch verification vs individual verification.
//
// This is the design choice that makes the proposed protocol O(1) in
// verification: Eq. (2) checks all n Round-2 signatures with one
// exponentiation pair. The ablation measures wall-clock for both paths at
// several group sizes and prints the energy-model consequence.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "energy/profiles.h"
#include "hash/hmac_drbg.h"
#include "sig/gq.h"

using namespace idgka;

namespace {

struct BatchFixture {
  sig::GqParams params;
  std::vector<std::uint32_t> ids;
  std::vector<sig::BigInt> s_values;
  std::vector<sig::GqSignature> individual;
  std::vector<std::vector<std::uint8_t>> messages;
  sig::BigInt c;
  std::vector<std::uint8_t> z;
};

BatchFixture make_fixture(std::size_t n) {
  static hash::HmacDrbg rng(99, "ablation-batch");
  static const sig::GqPkg pkg = [] {
    hash::HmacDrbg prng(7, "ablation-params");
    return sig::GqPkg(prng, 1024, 24);
  }();

  BatchFixture f;
  f.params = pkg.params();
  f.z = {0x01, 0x02, 0x03};
  std::vector<sig::GqSigner> signers;
  std::vector<sig::GqSigner::Commitment> commits;
  sig::BigInt t_prod{1};
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::uint32_t>(3000 + i);
    f.ids.push_back(id);
    signers.emplace_back(f.params, id, pkg.extract(id));
    commits.push_back(signers.back().commit(rng));
    t_prod = mpint::mod_mul(t_prod, commits.back().t, f.params.n);
  }
  f.c = sig::gq_challenge(t_prod.to_bytes_be(), f.z);
  for (std::size_t i = 0; i < n; ++i) {
    f.s_values.push_back(signers[i].respond(commits[i], f.c));
    // Individual-verification arm: one standalone signature per member.
    f.messages.push_back({static_cast<std::uint8_t>(i)});
    f.individual.push_back(signers[i].sign(f.messages.back(), rng));
  }
  return f;
}

void BM_BatchVerify(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sig::gq_batch_verify(f.params, f.ids, f.s_values, f.c, f.z));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BatchVerify)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_IndividualVerify(benchmark::State& state) {
  const auto f = make_fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bool all = true;
    for (std::size_t i = 0; i < f.ids.size(); ++i) {
      all &= sig::gq_verify(f.params, f.ids[i], f.messages[i], f.individual[i]);
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IndividualVerify)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation A: batch vs individual GQ verification ===\n");
  std::printf("energy model: batch = 1 x 18.2 mJ per member regardless of n;\n");
  std::printf("individual  = (n-1) x 18.2 mJ per member "
              "(n=100: 18.2 mJ vs 1801.8 mJ, 99x).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
