// Wire codec and shared-frame transport microbench.
//
// Measures (1) encode/decode throughput for representative protocol
// messages, and (2) broadcast fan-out cost per receiver: the shared-frame
// path (encode once, O(1) buffer reference per receiver) against the
// legacy per-receiver deep copy of the typed message it replaced. Writes
// BENCH_wire.json (a CI artifact) and exits non-zero when any receiver's
// copy of a broadcast is not a reference to the sender's one encoded
// buffer — the structural acceptance gate that fan-out is O(1) per
// receiver — or when any message shape decodes below the throughput
// floor, which catches an accidental quadratic (or per-byte re-scan) in
// the single-pass decoder while staying an order of magnitude under real
// hardware numbers. The fine-grained timing comparison is advisory (CI
// runners are too noisy to gate a build on a nanosecond race).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mpint/random.h"
#include "net/network.h"
#include "wire/codec.h"

using namespace idgka;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

net::Message bd_r2_msg(mpint::Rng& rng, std::size_t bits) {
  net::Message m;
  m.sender = 1;
  m.type = "bd-r2";
  m.payload.put_u32("id", 1);
  m.payload.put_int("x", mpint::random_bits(rng, bits));
  m.payload.put_int("sig_r", mpint::random_bits(rng, 160));
  m.payload.put_int("sig_s", mpint::random_bits(rng, 160));
  m.declared_bits = 32 + bits + 320;
  return m;
}

net::Message table_msg(mpint::Rng& rng, std::size_t entries, std::size_t bits) {
  net::Message m;
  m.sender = 1;
  m.type = "join-r2";
  m.payload.put_u32("tbl_n", static_cast<std::uint32_t>(entries));
  for (std::size_t i = 0; i < entries; ++i) {
    m.payload.put_u32("tbl_id" + std::to_string(i), static_cast<std::uint32_t>(100 + i));
    m.payload.put_int("tbl_z" + std::to_string(i), mpint::random_bits(rng, bits));
    m.payload.put_int("tbl_t" + std::to_string(i), mpint::random_bits(rng, bits));
  }
  return m;
}

net::Message rekey_msg(mpint::Rng& rng) {
  net::Message m;
  m.sender = 1;
  m.type = "cluster-rekey";
  std::vector<std::uint8_t> sealed(64);
  rng.fill(sealed);
  m.payload.put_blob("sealed_key", std::move(sealed));
  return m;
}

struct CodecRow {
  std::string name;
  std::size_t frame_bytes = 0;
  double encode_mb_s = 0.0;
  double decode_mb_s = 0.0;
};

CodecRow codec_throughput(const std::string& name, const net::Message& msg, int iters) {
  CodecRow row;
  row.name = name;
  const wire::Frame probe = wire::encode(msg);
  row.frame_bytes = probe.size();

  auto t0 = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int i = 0; i < iters; ++i) sink += wire::encode(msg).size();
  const double enc_s = seconds_since(t0);
  row.encode_mb_s = static_cast<double>(sink) / enc_s / 1e6;

  t0 = std::chrono::steady_clock::now();
  std::size_t fields = 0;
  for (int i = 0; i < iters; ++i) fields += wire::decode(probe).payload.ints().size();
  const double dec_s = seconds_since(t0);
  row.decode_mb_s = static_cast<double>(row.frame_bytes) * iters / dec_s / 1e6;
  if (fields == SIZE_MAX) std::printf("?");  // defeat dead-code elimination
  return row;
}

struct FanoutRow {
  std::size_t receivers = 0;
  double shared_ns_per_rx = 0.0;
  double deep_copy_ns_per_rx = 0.0;
};

FanoutRow fanout(const net::Message& msg, std::size_t receivers, int broadcasts) {
  FanoutRow row;
  row.receivers = receivers;

  // Shared-frame path: the real Network::broadcast, encode once + O(1)
  // frame reference per receiver (drained between rounds so inboxes do not
  // grow unboundedly).
  net::Network network;
  std::vector<std::uint32_t> group;
  for (std::uint32_t id = 1; id <= receivers + 1; ++id) {
    network.add_node(id);
    group.push_back(id);
  }
  net::Message m = msg;
  m.sender = 1;

  // Structural acceptance gate: every receiver's copy of one broadcast
  // must reference the same encoded buffer — a shared frame, not a copy.
  network.broadcast(m, group);
  const std::uint8_t* buffer = nullptr;
  for (std::uint32_t id = 2; id <= receivers + 1; ++id) {
    const auto frames = network.drain_frames(id);
    if (frames.size() != 1) {
      std::printf("FAILED: receiver %u holds %zu frames\n", id, frames.size());
      std::exit(1);
    }
    if (buffer == nullptr) buffer = frames[0].data();
    if (frames[0].data() != buffer) {
      std::printf("FAILED: receiver %u got a copied buffer, not the shared frame\n", id);
      std::exit(1);
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int i = 0; i < broadcasts; ++i) {
    network.broadcast(m, group);
    for (std::uint32_t id = 2; id <= receivers + 1; ++id) {
      sink += network.drain_frames(id).size();
    }
  }
  const double shared_s = seconds_since(t0);
  row.shared_ns_per_rx = shared_s * 1e9 / (static_cast<double>(broadcasts) * receivers);

  // Legacy path this replaced: one deep copy of the typed message (BigInt
  // payload vectors and all) per receiver.
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < broadcasts; ++i) {
    for (std::size_t r = 0; r < receivers; ++r) {
      net::Message copy = m;
      sink += copy.payload.ints().size();
    }
  }
  const double deep_s = seconds_since(t0);
  row.deep_copy_ns_per_rx = deep_s * 1e9 / (static_cast<double>(broadcasts) * receivers);
  if (sink == SIZE_MAX) std::printf("?");
  return row;
}

}  // namespace

int main() {
  std::printf("=== Wire codec + shared-frame fan-out ===\n\n");
  mpint::XoshiroRng rng(0xB37C4);

  std::vector<CodecRow> codec_rows;
  codec_rows.push_back(codec_throughput("bd_r2_1024", bd_r2_msg(rng, 1024), 20'000));
  codec_rows.push_back(codec_throughput("table_24x256", table_msg(rng, 24, 256), 5'000));
  codec_rows.push_back(codec_throughput("cluster_rekey_64B", rekey_msg(rng), 50'000));

  std::printf("%-20s %10s %14s %14s\n", "message", "frame B", "encode MB/s", "decode MB/s");
  for (const auto& row : codec_rows) {
    std::printf("%-20s %10zu %14.1f %14.1f\n", row.name.c_str(), row.frame_bytes,
                row.encode_mb_s, row.decode_mb_s);
  }

  std::printf("\n%-10s %20s %20s\n", "receivers", "shared ns/rx", "deep-copy ns/rx");
  const net::Message fan_msg = bd_r2_msg(rng, 1024);
  std::vector<FanoutRow> fan_rows;
  for (const std::size_t receivers : {16UL, 64UL, 256UL}) {
    fan_rows.push_back(fanout(fan_msg, receivers, 500));
    const auto& row = fan_rows.back();
    std::printf("%-10zu %20.1f %20.1f\n", row.receivers, row.shared_ns_per_rx,
                row.deep_copy_ns_per_rx);
  }

  std::ofstream out("BENCH_wire.json");
  out << "{\"bench\":\"wire\",\"codec\":[";
  for (std::size_t i = 0; i < codec_rows.size(); ++i) {
    if (i > 0) out << ',';
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"message\":\"%s\",\"frame_bytes\":%zu,\"encode_mb_s\":%.1f,"
                  "\"decode_mb_s\":%.1f}",
                  codec_rows[i].name.c_str(), codec_rows[i].frame_bytes,
                  codec_rows[i].encode_mb_s, codec_rows[i].decode_mb_s);
    out << buf;
  }
  out << "],\"fanout\":[";
  for (std::size_t i = 0; i < fan_rows.size(); ++i) {
    if (i > 0) out << ',';
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"receivers\":%zu,\"shared_ns_per_rx\":%.1f,\"deep_copy_ns_per_rx\":%.1f}",
                  fan_rows[i].receivers, fan_rows[i].shared_ns_per_rx,
                  fan_rows[i].deep_copy_ns_per_rx);
    out << buf;
  }
  char rss[64];
  std::snprintf(rss, sizeof rss, "],\"peak_rss_kb\":%zu}\n", idgka::bench::peak_rss_kb());
  out << rss;
  out.close();
  std::printf("\nwrote BENCH_wire.json\n");

  // Hard gates: the structural shared-buffer check inside fanout() (exit 1
  // on a copied buffer) and the decode throughput floor below. The floor
  // sits ~8x under the slowest shape on commodity hardware, so it only
  // trips on a complexity regression, not on scheduler noise.
  constexpr double kDecodeFloorMbS = 40.0;
  bool ok = true;
  for (const auto& row : codec_rows) {
    if (row.decode_mb_s < kDecodeFloorMbS) {
      std::printf("FAILED: %s decodes at %.1f MB/s (< %.0f MB/s floor)\n", row.name.c_str(),
                  row.decode_mb_s, kDecodeFloorMbS);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("every fan-out width delivered one shared buffer per broadcast (O(1) ref)\n");
  std::printf("every message shape decodes above %.0f MB/s\n", kDecodeFloorMbS);
  return 0;
}
