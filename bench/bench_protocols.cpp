// Library wall-clock benchmark: full protocol executions (all members
// simulated in-process, real cryptography) across schemes and group sizes,
// plus the dynamic events and the ING extension baseline.
//
// This measures the *implementation* (kTest parameter profile so the sweep
// stays fast); the paper-model energy numbers come from bench_fig1 /
// bench_table5.
#include <benchmark/benchmark.h>

#include "gka/ing.h"
#include "gka/session.h"

using namespace idgka;

namespace {

gka::Authority& authority() {
  static gka::Authority a(gka::SecurityProfile::kTest, 808);
  return a;
}

std::vector<std::uint32_t> make_ids(std::size_t n, std::uint32_t base) {
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = base + static_cast<std::uint32_t>(i);
  return ids;
}

void BM_Form(benchmark::State& state, gka::Scheme scheme) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    gka::GroupSession session(authority(), scheme, make_ids(n, 5000), seed++);
    const auto result = session.form();
    if (!result.success) state.SkipWithError("protocol failed");
    benchmark::DoNotOptimize(session.key());
  }
  state.SetComplexityN(state.range(0));
}

void BM_FormUnderLoss(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    gka::GroupSession session(authority(), gka::Scheme::kProposed, make_ids(n, 5100),
                              seed++, /*loss_rate=*/0.1);
    if (!session.form().success) state.SkipWithError("protocol failed");
  }
}

void BM_Join(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gka::GroupSession session(authority(), gka::Scheme::kProposed, make_ids(n, 5200), 9);
  if (!session.form().success) return;
  std::uint32_t next = 60000;
  for (auto _ : state) {
    if (!session.join(next++).success) state.SkipWithError("join failed");
  }
}

void BM_JoinLeaveCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  gka::GroupSession session(authority(), gka::Scheme::kProposed, make_ids(n, 5300), 10);
  if (!session.form().success) return;
  std::uint32_t next = 70000;
  for (auto _ : state) {
    if (!session.join(next).success) state.SkipWithError("join failed");
    if (!session.leave(next).success) state.SkipWithError("leave failed");
    ++next;
  }
}

void BM_Ing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 40;
  for (auto _ : state) {
    std::vector<gka::MemberCtx> members;
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(gka::make_member(
          authority().enroll(5400 + static_cast<std::uint32_t>(i)), seed));
    }
    ++seed;
    net::Network network;
    for (const auto& m : members) network.add_node(m.cred.id);
    const auto result = gka::run_ing(authority().params(), members, network);
    if (!result.success) state.SkipWithError("ing failed");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("BM_Form/Proposed",
                               [](benchmark::State& s) { BM_Form(s, gka::Scheme::kProposed); })
      ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Complexity();
  benchmark::RegisterBenchmark("BM_Form/SSN",
                               [](benchmark::State& s) { BM_Form(s, gka::Scheme::kSsn); })
      ->Arg(4)->Arg(8)->Arg(16);
  benchmark::RegisterBenchmark("BM_Form/BD_ECDSA",
                               [](benchmark::State& s) { BM_Form(s, gka::Scheme::kBdEcdsa); })
      ->Arg(4)->Arg(8)->Arg(16);
  benchmark::RegisterBenchmark("BM_Form/BD_DSA",
                               [](benchmark::State& s) { BM_Form(s, gka::Scheme::kBdDsa); })
      ->Arg(4)->Arg(8);
  benchmark::RegisterBenchmark("BM_Form/BD_SOK",
                               [](benchmark::State& s) { BM_Form(s, gka::Scheme::kBdSok); })
      ->Arg(4)->Arg(8);
  benchmark::RegisterBenchmark("BM_FormUnderLoss10pct", BM_FormUnderLoss)->Arg(8);
  benchmark::RegisterBenchmark("BM_Join", BM_Join)->Arg(8)->Arg(16);
  benchmark::RegisterBenchmark("BM_JoinLeaveCycle", BM_JoinLeaveCycle)->Arg(8);
  benchmark::RegisterBenchmark("BM_Ing", BM_Ing)->Arg(4)->Arg(8)->Arg(16);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
