// Observability overhead: what do the OBS_* macro sites cost?
//
// Runs the n=256 hierarchical churn scenario (the bench_sim_scale workload)
// in two legs:
//
//   * runtime_off  — instrumentation compiled in, tracing disabled: every
//     site pays one relaxed load + branch (plus the registry counters);
//   * full_trace   — tracing enabled, virtual-clock spans from every layer;
//     the exported Chrome trace is written to obs_trace.json.
//
// The legs are INTERLEAVED A/B repetitions (off, on, off, on, ...) so slow
// drift — thermal ramp-up, allocator growth, a noisy CI neighbour — lands
// on both legs evenly instead of biasing whichever leg happens to run
// last; the primary statistic is the median over repetitions (robust to a
// single descheduled run), with the min kept as a secondary field.
//
// The same source also builds under -DIDGKA_OBS=0 (the compiled-out build),
// where it emits a single `compiled_out` leg. Passing
// `--baseline <BENCH_obs.json from that build>` to the normal binary gates
// the contract: runtime-off wall time must stay within 2% of compiled-out
// (median vs median; exits non-zero past the gate).
//
// Results go to BENCH_obs.json (a CI artifact).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/json_writer.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/scenario.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

constexpr std::size_t kMembers = 256;
constexpr int kRepeats = 5;
constexpr double kGatePct = 2.0;

sim::ScenarioConfig make_config() {
  sim::ScenarioConfig cfg;
  cfg.name = "obs_overhead_n" + std::to_string(kMembers);
  cfg.topology = sim::Topology::kHierarchical;
  cfg.initial_members = kMembers;
  cfg.base_id = 10'000;
  cfg.seed = 424242;
  cfg.duration_us = 600 * sim::kUsPerSec;
  cfg.driver.link = sim::LinkConfig::bursty(0.05);
  cfg.cluster.min_cluster = 8;
  cfg.cluster.max_cluster = 24;

  std::uint32_t next_id = 90'000;
  sim::SimTime t = 20 * sim::kUsPerSec;
  for (int i = 0; i < 4; ++i) {
    cfg.trace.push_back({t, sim::TraceEvent::Kind::kJoin, {next_id++}});
    t += 20 * sim::kUsPerSec;
    cfg.trace.push_back(
        {t, sim::TraceEvent::Kind::kLeave, {cfg.base_id + 1 + static_cast<std::uint32_t>(i)}});
    t += 20 * sim::kUsPerSec;
  }
  const std::vector<std::uint32_t> squad{cfg.base_id + 20, cfg.base_id + 21, cfg.base_id + 22,
                                         cfg.base_id + 23};
  cfg.trace.push_back({t, sim::TraceEvent::Kind::kPartition, squad});
  t += 40 * sim::kUsPerSec;
  cfg.trace.push_back({t, sim::TraceEvent::Kind::kMerge, squad});
  return cfg;
}

struct Leg {
  std::string name;
  std::vector<double> wall_ms;
  [[nodiscard]] double min_ms() const {
    double best = wall_ms.front();
    for (const double w : wall_ms) best = best < w ? best : w;
    return best;
  }
  [[nodiscard]] double median_ms() const {
    std::vector<double> s = wall_ms;
    std::sort(s.begin(), s.end());
    const std::size_t n = s.size();
    return n % 2 == 1 ? s[n / 2] : (s[n / 2 - 1] + s[n / 2]) / 2.0;
  }
};

/// One timed scenario run under the current trace setting.
double run_once(const sim::ScenarioConfig& cfg, const char* leg_name) {
  const auto t0 = std::chrono::steady_clock::now();
  const sim::Metrics metrics = sim::ScenarioRunner(cfg).run();
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  if (!metrics.form_success || !metrics.all_members_agree) {
    std::fprintf(stderr, "FAILED: scenario did not converge in leg %s\n", leg_name);
    std::exit(1);
  }
  return ms;
}

/// Minimal extraction of `"<leg>"` ... `"wall_ms_median":<double>` from a
/// BENCH_obs.json written by this program (any build). Falls back to
/// wall_ms_min for baselines written before the median rework.
double baseline_ms(const std::string& path, const char* leg) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAILED: cannot read baseline %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::size_t at = text.find(std::string("\"name\":\"") + leg + '"');
  if (at == std::string::npos) {
    std::fprintf(stderr, "FAILED: baseline %s has no %s leg\n", path.c_str(), leg);
    std::exit(1);
  }
  for (const char* key : {"\"wall_ms_median\":", "\"wall_ms_min\":"}) {
    const std::size_t pos = text.find(key, at);
    if (pos != std::string::npos) {
      return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
    }
  }
  std::fprintf(stderr, "FAILED: baseline %s leg %s has no wall_ms field\n", path.c_str(), leg);
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  std::printf("=== Observability overhead: n=%zu churn scenario, median of %d (interleaved) ===\n",
              kMembers, kRepeats);

  const sim::ScenarioConfig cfg = make_config();
  std::vector<Leg> legs;
#if IDGKA_OBS
  // Interleaved A/B: every repetition runs both legs back to back, so any
  // drift over the bench's lifetime hits both legs symmetrically.
  Leg off;
  off.name = "runtime_off";
  Leg full;
  full.name = "full_trace";
  obs::set_trace_enabled(false);
  (void)sim::ScenarioRunner(cfg).run();  // warm-up: lazy statics, allocator
  for (int i = 0; i < kRepeats; ++i) {
    obs::set_trace_enabled(false);
    off.wall_ms.push_back(run_once(cfg, off.name.c_str()));

    obs::clear();
    obs::set_trace_enabled(true);
    full.wall_ms.push_back(run_once(cfg, full.name.c_str()));
    obs::set_trace_enabled(false);
    if (i == kRepeats - 1 && obs::export_chrome_trace_file("obs_trace.json")) {
      std::printf("  wrote obs_trace.json (last repetition's flight recorder)\n");
    }
    obs::clear();
  }
  legs.push_back(std::move(off));
  legs.push_back(std::move(full));
#else
  Leg leg;
  leg.name = "compiled_out";
  (void)sim::ScenarioRunner(cfg).run();  // warm-up
  for (int i = 0; i < kRepeats; ++i) leg.wall_ms.push_back(run_once(cfg, leg.name.c_str()));
  legs.push_back(std::move(leg));
#endif
  for (const Leg& leg : legs) {
    std::printf("  %-12s median %8.1f ms (min %8.1f) over %d runs\n", leg.name.c_str(),
                leg.median_ms(), leg.min_ms(), kRepeats);
  }

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "obs_overhead");
#if IDGKA_OBS
  w.kv("mode", "full");
#else
  w.kv("mode", "compiled-out");
#endif
  w.kv("n", kMembers);
  w.kv("interleaved", true);
  w.key("legs").begin_array();
  for (const Leg& leg : legs) {
    w.begin_object();
    w.kv("name", leg.name);
    w.kv("wall_ms_median", leg.median_ms());
    w.kv("wall_ms_min", leg.min_ms());
    w.key("wall_ms_runs").begin_array();
    for (const double ms : leg.wall_ms) w.value(ms);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  int rc = 0;
#if IDGKA_OBS
  if (!baseline_path.empty()) {
    const double off_ms = legs.front().median_ms();
    const double base_ms = baseline_ms(baseline_path, "compiled_out");
    const double overhead_pct = (off_ms - base_ms) / base_ms * 100.0;
    std::printf("  runtime-off vs compiled-out: %.1f ms vs %.1f ms (%+.2f%%, gate %.1f%%)\n",
                off_ms, base_ms, overhead_pct, kGatePct);
    w.key("baseline").begin_object();
    w.kv("wall_ms_median", base_ms);
    w.kv("overhead_pct", overhead_pct);
    w.kv("gate_pct", kGatePct);
    w.end_object();
    if (overhead_pct > kGatePct) {
      std::fprintf(stderr, "FAILED: runtime-off overhead %.2f%% exceeds %.1f%% gate\n",
                   overhead_pct, kGatePct);
      rc = 1;
    }
  }
#else
  (void)baseline_path;
#endif
  w.end_object();

  std::ofstream out("BENCH_obs.json");
  out << w.take() << '\n';
  std::printf("wrote BENCH_obs.json (%zu legs)\n", legs.size());
  return rc;
}
