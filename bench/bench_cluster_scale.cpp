// Flat GroupSession vs depth-k hierarchical session at scale.
//
// For each group size: wall time, total broadcast volume and total energy of
// the initial key agreement, then the *per-event* cost of a small churn
// burst (half joins, half leaves), plus the tree shape (depth, cluster
// count) the hierarchy settled on. The flat protocol's per-event broadcast
// volume grows linearly with n (every event rekeys the whole ring); the
// hierarchical session keeps events cluster-local plus a tier path whose
// rings are all bounded by max_cluster, so its per-event volume is
// sub-linear at every scale. Flat runs are capped at n=256 to keep the
// sweep minutes-long; the default hierarchy sweep continues to 4096 (the
// head set passes max_cluster there, so the depth-3 nesting path runs in
// CI every day).
//
// `--full` additionally runs
//   * n=65536 real members end to end (form + churn), and
//   * a 1M-leaf synthetic deployment: the upper tiers are REAL — one
//     hierarchical session over all ~35.7k cluster-head ids — while the
//     leaf tier is one real exemplar cluster measured and scaled by the
//     cluster count (every leaf cluster is an independent ring of the
//     same size, so bits/energy extrapolate exactly; wall time does not
//     and is reported for the measured parts only).
//
// Writes BENCH_cluster.json (rows + tree shapes + peak_rss_kb). The
// deterministic fields (bits, energy, depth, cluster counts) are pure
// functions of the seed and gate in CI via bench_compare --ignore _ms.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/hierarchical_session.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

constexpr std::size_t kChurnEvents = 8;  // 4 joins + 4 leaves
constexpr std::size_t kFlatCap = 256;

struct Row {
  std::string mode;
  std::size_t n = 0;
  double form_ms = 0.0;
  double form_kbits = 0.0;
  double form_mj = 0.0;
  double event_ms = 0.0;
  double event_kbits = 0.0;
  double event_mj = 0.0;
  std::size_t depth = 1;     // session tiers (1 = flat ring)
  std::size_t clusters = 1;  // leaf clusters
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

double ledger_total_mj(const energy::Ledger& ledger) {
  return energy::ledger_energy_mj(ledger, energy::strongarm(), energy::wlan_spectrum24());
}

Row run_flat(gka::Authority& authority, std::size_t n) {
  Row row;
  row.mode = "flat";
  row.n = n;
  gka::GroupSession session(authority, gka::Scheme::kProposed, make_ids(n, 10000), 1);
  auto t0 = std::chrono::steady_clock::now();
  if (!session.form().success) return row;
  row.form_ms = ms_since(t0);

  const auto sum_ledgers = [&] {
    energy::Ledger total;
    for (const std::uint32_t id : session.member_ids()) total += session.ledger(id);
    return total;
  };
  energy::Ledger after_form = sum_ledgers();
  row.form_kbits = static_cast<double>(after_form.tx_bits) / 1000.0;
  row.form_mj = ledger_total_mj(after_form);

  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChurnEvents / 2; ++i) {
    if (!session.join(90000 + static_cast<std::uint32_t>(i)).success) return row;
    if (!session.leave(10001 + static_cast<std::uint32_t>(i)).success) return row;
  }
  row.event_ms = ms_since(t0) / kChurnEvents;
  // Departed members' ledgers are dropped by the session; the survivor sum
  // still dominates and the comparison is conservative *against* the
  // hierarchy (which retains every retired ledger in its roll-up).
  const energy::Ledger after_churn = sum_ledgers();
  row.event_kbits =
      static_cast<double>(after_churn.tx_bits - after_form.tx_bits) / 1000.0 / kChurnEvents;
  row.event_mj = (ledger_total_mj(after_churn) - row.form_mj) / kChurnEvents;
  return row;
}

Row run_hierarchical(gka::Authority& authority, std::size_t n) {
  Row row;
  row.mode = "hier";
  row.n = n;
  cluster::ClusterConfig cfg;
  cfg.min_cluster = 8;
  cfg.max_cluster = 48;
  cluster::HierarchicalSession session(authority, cfg, make_ids(n, 10000), 1);
  auto t0 = std::chrono::steady_clock::now();
  if (!session.form().success) return row;
  row.form_ms = ms_since(t0);
  row.depth = session.depth();
  row.clusters = session.cluster_count();
  const cluster::AggregateReport after_form = session.report();
  row.form_kbits = static_cast<double>(after_form.total.tx_bits) / 1000.0;
  row.form_mj = after_form.energy_mj(energy::strongarm(), energy::wlan_spectrum24());

  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChurnEvents / 2; ++i) {
    if (!session.join(90000 + static_cast<std::uint32_t>(i)).success) return row;
    if (!session.leave(10001 + static_cast<std::uint32_t>(i)).success) return row;
  }
  row.event_ms = ms_since(t0) / kChurnEvents;
  const cluster::AggregateReport after_churn = session.report();
  row.event_kbits =
      static_cast<double>(after_churn.total.tx_bits - after_form.total.tx_bits) / 1000.0 /
      kChurnEvents;
  row.event_mj = (after_churn.energy_mj(energy::strongarm(), energy::wlan_spectrum24()) -
                  row.form_mj) /
                 kChurnEvents;
  return row;
}

/// The 1M-leaf synthetic deployment: real upper tiers over every cluster
/// head, one real exemplar leaf cluster scaled by the cluster count.
struct SyntheticRow {
  std::size_t leaves = 0;          // total leaf members represented
  std::size_t leaf_clusters = 0;   // independent leaf rings
  std::size_t leaf_size = 0;       // members per leaf ring (exemplar size)
  std::size_t depth = 0;           // full-tree depth (leaf tier + head tiers)
  std::size_t head_clusters = 0;   // leaf clusters of the real head session
  double head_form_ms = 0.0;       // measured: the real upper tiers
  double leaf_form_ms = 0.0;       // measured: one exemplar leaf ring
  double est_form_gbits = 0.0;     // exact extrapolation (rings independent)
  double est_form_j = 0.0;
};

SyntheticRow run_synthetic_million(gka::Authority& authority) {
  SyntheticRow row;
  cluster::ClusterConfig cfg;
  cfg.min_cluster = 8;
  cfg.max_cluster = 48;
  row.leaf_size = cfg.target_size();                   // 28
  row.leaf_clusters = 1'000'000 / row.leaf_size;       // 35'714
  row.leaves = row.leaf_clusters * row.leaf_size;      // 999'992

  // One real leaf ring: every leaf cluster is an independent ring of this
  // size with its own broadcast domain, so its bits/energy scale exactly.
  gka::GroupSession leaf(authority, gka::Scheme::kProposed, make_ids(row.leaf_size, 10000), 1);
  auto t0 = std::chrono::steady_clock::now();
  if (!leaf.form().success) return row;
  row.leaf_form_ms = ms_since(t0);
  energy::Ledger leaf_total;
  for (const std::uint32_t id : leaf.member_ids()) leaf_total += leaf.ledger(id);

  // The real upper tiers: a depth-k hierarchy over every head id.
  cluster::HierarchicalSession heads(authority, cfg, make_ids(row.leaf_clusters, 2'000'000), 1);
  t0 = std::chrono::steady_clock::now();
  if (!heads.form().success) return row;
  row.head_form_ms = ms_since(t0);
  row.depth = 1 + heads.depth();  // leaf tier + the measured head tree
  row.head_clusters = heads.cluster_count();
  const cluster::AggregateReport head_report = heads.report();

  const double total_bits = static_cast<double>(leaf_total.tx_bits) * row.leaf_clusters +
                            static_cast<double>(head_report.total.tx_bits);
  const double total_mj =
      ledger_total_mj(leaf_total) * row.leaf_clusters +
      head_report.energy_mj(energy::strongarm(), energy::wlan_spectrum24());
  row.est_form_gbits = total_bits / 1e9;
  row.est_form_j = total_mj / 1000.0;
  return row;
}

void print_row(const Row& row) {
  std::printf("%-6s %8zu %9.1f %11.1f %10.1f %9.2f %11.2f %9.3f %6zu %9zu\n",
              row.mode.c_str(), row.n, row.form_ms, row.form_kbits, row.form_mj, row.event_ms,
              row.event_kbits, row.event_mj, row.depth, row.clusters);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  std::printf("=== Cluster scaling: flat ring vs depth-k hierarchy ===\n");
  std::printf("kTiny parameter profile; churn burst = %zu events (joins+leaves);\n",
              kChurnEvents);
  std::printf("energy: StrongARM CPU + Spectrum24 WLAN radio, whole deployment%s\n\n",
              full ? "; --full (65k real + 1M synthetic)" : "");
  std::printf("%-6s %8s %9s %11s %10s %9s %11s %9s %6s %9s\n", "mode", "n", "form ms",
              "form kbit", "form mJ", "event ms", "event kbit", "event mJ", "depth",
              "clusters");
  rule('-', 98);

  gka::Authority authority(gka::SecurityProfile::kTiny, 4711);
  std::vector<Row> rows;
  std::vector<std::size_t> sweep = {32, 64, 128, 256, 512, 1024, 4096};
  if (full) sweep.push_back(65536);
  for (const std::size_t n : sweep) {
    if (n <= kFlatCap) {
      rows.push_back(run_flat(authority, n));
      print_row(rows.back());
    }
    rows.push_back(run_hierarchical(authority, n));
    print_row(rows.back());
  }
  rule('-', 98);

  SyntheticRow synth;
  if (full) {
    std::printf("\n--- 1M-leaf synthetic deployment (real upper tiers, scaled leaf tier) ---\n");
    synth = run_synthetic_million(authority);
    std::printf("leaves %zu in %zu clusters of %zu | full-tree depth %zu\n", synth.leaves,
                synth.leaf_clusters, synth.leaf_size, synth.depth);
    std::printf("measured: head tiers formed in %.1f s (%zu head-tier clusters); "
                "exemplar leaf ring in %.1f ms\n",
                synth.head_form_ms / 1000.0, synth.head_clusters, synth.leaf_form_ms);
    std::printf("extrapolated initial agreement: %.2f Gbit on air, %.1f J deployment-wide\n",
                synth.est_form_gbits, synth.est_form_j);
  }

  std::ofstream out("BENCH_cluster.json");
  out << "{\"bench\":\"cluster_scale\",\"full\":" << (full ? "true" : "false") << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ',';
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "{\"mode\":\"%s\",\"n\":%zu,\"form_ms\":%.1f,\"form_kbits\":%.1f,"
                  "\"form_mj\":%.1f,\"event_ms\":%.2f,\"event_kbits\":%.2f,"
                  "\"event_mj\":%.3f,\"depth\":%zu,\"clusters\":%zu}",
                  rows[i].mode.c_str(), rows[i].n, rows[i].form_ms, rows[i].form_kbits,
                  rows[i].form_mj, rows[i].event_ms, rows[i].event_kbits, rows[i].event_mj,
                  rows[i].depth, rows[i].clusters);
    out << buf;
  }
  out << ']';
  if (full) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  ",\"synthetic_1m\":{\"leaves\":%zu,\"leaf_clusters\":%zu,\"leaf_size\":%zu,"
                  "\"depth\":%zu,\"head_clusters\":%zu,\"head_form_ms\":%.1f,"
                  "\"leaf_form_ms\":%.1f,\"est_form_gbits\":%.2f,\"est_form_j\":%.1f}",
                  synth.leaves, synth.leaf_clusters, synth.leaf_size, synth.depth,
                  synth.head_clusters, synth.head_form_ms, synth.leaf_form_ms,
                  synth.est_form_gbits, synth.est_form_j);
    out << buf;
  }
  char rss[64];
  std::snprintf(rss, sizeof rss, ",\"peak_rss_kb\":%zu}\n", peak_rss_kb());
  out << rss;
  out.close();
  std::printf("\nwrote BENCH_cluster.json (peak RSS %.1f MB)\n",
              static_cast<double>(peak_rss_kb()) / 1024.0);

  std::printf("per-event broadcast volume: flat grows ~linearly with n; hierarchical is\n"
              "bounded by the cluster size + tier path (sub-linear), which is what makes\n"
              "n=65k-1M churny deployments feasible.\n");
  return 0;
}
