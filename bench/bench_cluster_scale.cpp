// Flat GroupSession vs hierarchical cluster-based session at scale.
//
// For each group size: wall time, total broadcast volume and total energy of
// the initial key agreement, then the *per-event* cost of a small churn
// burst (half joins, half leaves). The flat protocol's per-event broadcast
// volume grows linearly with n (every event rekeys the whole ring); the
// hierarchical session keeps events cluster-local plus an O(#clusters) head
// tier, so its per-event volume is sub-linear. Flat runs are capped at
// n=256 to keep the sweep minutes-long; the hierarchy continues to 1024.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "cluster/hierarchical_session.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

constexpr std::size_t kChurnEvents = 8;  // 4 joins + 4 leaves
constexpr std::size_t kFlatCap = 256;

struct Row {
  double form_ms = 0.0;
  double form_kbits = 0.0;
  double form_mj = 0.0;
  double event_ms = 0.0;
  double event_kbits = 0.0;
  double event_mj = 0.0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

double ledger_total_mj(const energy::Ledger& ledger) {
  return energy::ledger_energy_mj(ledger, energy::strongarm(), energy::wlan_spectrum24());
}

Row run_flat(gka::Authority& authority, std::size_t n) {
  Row row;
  gka::GroupSession session(authority, gka::Scheme::kProposed, make_ids(n, 10000), 1);
  auto t0 = std::chrono::steady_clock::now();
  if (!session.form().success) return row;
  row.form_ms = ms_since(t0);

  const auto sum_ledgers = [&] {
    energy::Ledger total;
    for (const std::uint32_t id : session.member_ids()) total += session.ledger(id);
    return total;
  };
  energy::Ledger after_form = sum_ledgers();
  row.form_kbits = static_cast<double>(after_form.tx_bits) / 1000.0;
  row.form_mj = ledger_total_mj(after_form);

  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChurnEvents / 2; ++i) {
    if (!session.join(90000 + static_cast<std::uint32_t>(i)).success) return row;
    if (!session.leave(10001 + static_cast<std::uint32_t>(i)).success) return row;
  }
  row.event_ms = ms_since(t0) / kChurnEvents;
  // Departed members' ledgers are dropped by the session; the survivor sum
  // still dominates and the comparison is conservative *against* the
  // hierarchy (which retains every retired ledger in its roll-up).
  const energy::Ledger after_churn = sum_ledgers();
  row.event_kbits =
      static_cast<double>(after_churn.tx_bits - after_form.tx_bits) / 1000.0 / kChurnEvents;
  row.event_mj = (ledger_total_mj(after_churn) - row.form_mj) / kChurnEvents;
  return row;
}

Row run_hierarchical(gka::Authority& authority, std::size_t n) {
  Row row;
  cluster::ClusterConfig cfg;
  cfg.min_cluster = 8;
  cfg.max_cluster = 48;
  cluster::HierarchicalSession session(authority, cfg, make_ids(n, 10000), 1);
  auto t0 = std::chrono::steady_clock::now();
  if (!session.form().success) return row;
  row.form_ms = ms_since(t0);
  const cluster::AggregateReport after_form = session.report();
  row.form_kbits = static_cast<double>(after_form.total.tx_bits) / 1000.0;
  row.form_mj = after_form.energy_mj(energy::strongarm(), energy::wlan_spectrum24());

  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kChurnEvents / 2; ++i) {
    if (!session.join(90000 + static_cast<std::uint32_t>(i)).success) return row;
    if (!session.leave(10001 + static_cast<std::uint32_t>(i)).success) return row;
  }
  row.event_ms = ms_since(t0) / kChurnEvents;
  const cluster::AggregateReport after_churn = session.report();
  row.event_kbits =
      static_cast<double>(after_churn.total.tx_bits - after_form.total.tx_bits) / 1000.0 /
      kChurnEvents;
  row.event_mj = (after_churn.energy_mj(energy::strongarm(), energy::wlan_spectrum24()) -
                  row.form_mj) /
                 kChurnEvents;
  return row;
}

void print_row(const char* scheme, std::size_t n, const Row& row) {
  std::printf("%-14s %6zu %10.1f %11.1f %10.1f %11.2f %13.2f %11.3f\n", scheme, n, row.form_ms,
              row.form_kbits, row.form_mj, row.event_ms, row.event_kbits, row.event_mj);
}

}  // namespace

int main() {
  std::printf("=== Cluster scaling: flat ring vs hierarchical clusters ===\n");
  std::printf("kTiny parameter profile; churn burst = %zu events (joins+leaves);\n",
              kChurnEvents);
  std::printf("energy: StrongARM CPU + Spectrum24 WLAN radio, whole deployment\n\n");
  std::printf("%-14s %6s %10s %11s %10s %11s %13s %11s\n", "scheme", "n", "form ms",
              "form kbit", "form mJ", "event ms", "event kbit", "event mJ");
  rule('-', 94);

  gka::Authority authority(gka::SecurityProfile::kTiny, 4711);
  for (const std::size_t n : {32UL, 64UL, 128UL, 256UL, 512UL, 1024UL}) {
    if (n <= kFlatCap) {
      print_row("flat", n, run_flat(authority, n));
    } else {
      std::printf("%-14s %6zu %10s   (skipped: quadratic rekey volume)\n", "flat", n, "-");
    }
    print_row("hierarchical", n, run_hierarchical(authority, n));
  }
  rule('-', 94);
  std::printf("\nper-event broadcast volume: flat grows ~linearly with n; hierarchical is\n"
              "bounded by the cluster size + head tier (sub-linear), which is what makes\n"
              "n=1000+ churny deployments feasible.\n");
  return 0;
}
