// Discrete-event simulation at scale: hierarchical GKA over timed, bursty
// links, with determinism verification.
//
// For n in {64, 256} and average link loss in {0, 5%} (Gilbert–Elliott
// bursts), runs a fixed churn trace through the scenario engine twice with
// the same seed, checks the two metrics JSON blobs are bit-identical, and
// reports rekey convergence, latency percentiles and bits on air. Results
// are written to BENCH_sim.json (a CI artifact). Exits non-zero when a run
// is non-deterministic or converges below 99% — the acceptance bar.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/scenario.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

sim::ScenarioConfig make_config(std::size_t n, double loss) {
  sim::ScenarioConfig cfg;
  cfg.name = "sim_scale_n" + std::to_string(n) + "_loss" + std::to_string(static_cast<int>(loss * 100));
  cfg.topology = sim::Topology::kHierarchical;
  cfg.initial_members = n;
  cfg.base_id = 10'000;
  cfg.seed = 424242;
  cfg.duration_us = 600 * sim::kUsPerSec;
  cfg.driver.link = sim::LinkConfig::bursty(loss);
  cfg.cluster.min_cluster = 8;
  cfg.cluster.max_cluster = 24;

  // Churn: a join/leave mix, one batch departure and its re-admission —
  // every event is a rekey that must converge through retransmission.
  std::uint32_t next_id = 90'000;
  sim::SimTime t = 20 * sim::kUsPerSec;
  for (int i = 0; i < 4; ++i) {
    cfg.trace.push_back({t, sim::TraceEvent::Kind::kJoin, {next_id++}});
    t += 20 * sim::kUsPerSec;
    cfg.trace.push_back(
        {t, sim::TraceEvent::Kind::kLeave, {cfg.base_id + 1 + static_cast<std::uint32_t>(i)}});
    t += 20 * sim::kUsPerSec;
  }
  const std::vector<std::uint32_t> squad{cfg.base_id + 20, cfg.base_id + 21, cfg.base_id + 22,
                                         cfg.base_id + 23};
  cfg.trace.push_back({t, sim::TraceEvent::Kind::kPartition, squad});
  t += 40 * sim::kUsPerSec;
  cfg.trace.push_back({t, sim::TraceEvent::Kind::kMerge, squad});
  return cfg;
}

struct BenchRow {
  std::size_t n = 0;
  double loss = 0.0;
  double wall_ms = 0.0;
  bool deterministic = false;
  sim::Metrics metrics;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("=== Discrete-event sim scale: hierarchical GKA over timed bursty links ===\n");
  std::printf("kTiny parameters; per-config: one churn trace (10 rekeys), run twice with\n");
  std::printf("the same seed to verify bit-identical metrics JSON\n\n");
  std::printf("%6s %6s %9s %7s %12s %12s %12s %11s %6s\n", "n", "loss", "wall ms", "rekeys",
              "converge", "p50 ms", "p99 ms", "air kbit", "ident");
  rule('-', 92);

  std::vector<BenchRow> rows;
  bool ok = true;
  for (const std::size_t n : {64UL, 256UL}) {
    for (const double loss : {0.0, 0.05}) {
      BenchRow row;
      row.n = n;
      row.loss = loss;
      const sim::ScenarioConfig cfg = make_config(n, loss);
      const auto t0 = std::chrono::steady_clock::now();
      row.metrics = sim::ScenarioRunner(cfg).run();
      row.wall_ms = ms_since(t0);
      const sim::Metrics repeat = sim::ScenarioRunner(cfg).run();
      row.deterministic = row.metrics.to_json() == repeat.to_json();

      std::printf("%6zu %5.0f%% %9.1f %3zu/%-3zu %11.1f%% %12.1f %12.1f %11.1f %6s\n", n,
                  loss * 100.0, row.wall_ms, row.metrics.rekeys_completed,
                  row.metrics.rekeys_attempted, row.metrics.convergence() * 100.0,
                  static_cast<double>(sim::percentile_us(row.metrics.rekey_latencies_us, 50.0)) /
                      1000.0,
                  static_cast<double>(sim::percentile_us(row.metrics.rekey_latencies_us, 99.0)) /
                      1000.0,
                  static_cast<double>(row.metrics.bits_on_air) / 1000.0,
                  row.deterministic ? "yes" : "NO");
      ok = ok && row.deterministic && row.metrics.form_success &&
           row.metrics.convergence() >= 0.99 && row.metrics.all_members_agree;
      rows.push_back(std::move(row));
    }
  }
  rule('-', 92);

  std::ofstream out("BENCH_sim.json");
  out << "{\"bench\":\"sim_scale\",\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ',';
    char head[160];
    std::snprintf(head, sizeof head,
                  "{\"n\":%zu,\"loss\":%.2f,\"wall_ms\":%.1f,\"deterministic\":%s,\"metrics\":",
                  rows[i].n, rows[i].loss, rows[i].wall_ms,
                  rows[i].deterministic ? "true" : "false");
    out << head << rows[i].metrics.to_json() << '}';
  }
  out << "]}\n";
  out.close();
  std::printf("\nwrote BENCH_sim.json (%zu runs)\n", rows.size());

  if (!ok) {
    std::printf("FAILED: a run was non-deterministic, did not form, or converged < 99%%\n");
    return 1;
  }
  std::printf("all runs deterministic, all rekeys >= 99%% converged\n");
  return 0;
}
