// Table 4 reproduction: complexity of the dynamic protocols (BD
// re-execution vs the proposed Join/Leave/Merge/Partition).
//
// Paper rows are printed for n=100, m=20, ld=20; measured totals come from
// instrumented runs at a smaller group (totals follow the same formulas,
// which the test suite validates per-role).
#include <cstdio>

#include "bench_util.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

struct Measured {
  int rounds = 0;
  std::uint64_t msgs = 0;
  std::uint64_t sign_gen = 0;
  std::uint64_t sign_ver = 0;
};

Measured sum_event(const gka::GroupSession& session, const gka::RunResult& result) {
  Measured m;
  m.rounds = result.rounds;
  using energy::Op;
  for (const auto& member : session.members()) {
    m.msgs += member.ledger.tx_messages;
    m.sign_gen += member.ledger.count(Op::kSignGenGq) + member.ledger.count(Op::kSignGenEcdsa);
    m.sign_ver += member.ledger.count(Op::kSignVerGq) + member.ledger.count(Op::kSignVerEcdsa);
  }
  return m;
}

}  // namespace

int main() {
  const std::size_t n = 100;
  const std::size_t m = 20;
  const std::size_t ld = 20;
  std::printf("=== Table 4: Complexity Analysis of Dynamic Protocols ===\n");
  std::printf("paper formulas at n=%zu, m=%zu, ld=%zu; measured at n=10, m=4, ld=3\n\n", n, m,
              ld);

  std::printf("%-22s %6s %10s %-22s %8s %9s\n", "protocol", "rounds", "msgs", "exps",
              "signGen", "signVer");
  rule('-', 86);
  for (const auto event : {gka::DynamicEvent::kJoin, gka::DynamicEvent::kLeave,
                           gka::DynamicEvent::kMerge, gka::DynamicEvent::kPartition}) {
    for (const bool baseline : {true, false}) {
      const auto row = gka::paper_table4(event, baseline, n, m, ld);
      std::printf("%-4s %-17s %6d %5llu (%s) %-22s %8llu %9llu\n",
                  baseline ? "BD" : "Ours", gka::dynamic_event_name(event), row.rounds,
                  static_cast<unsigned long long>(row.msg_count), row.msgs.c_str(),
                  row.exps.c_str(), static_cast<unsigned long long>(row.sign_gen),
                  static_cast<unsigned long long>(row.sign_ver));
    }
  }
  rule('-', 86);

  // Instrumented runs (proposed scheme) at a small group.
  gka::Authority authority(gka::SecurityProfile::kPaper, 31337);
  std::printf("\nmeasured (proposed scheme, instrumented run, totals across members):\n");

  {
    gka::GroupSession s(authority, gka::Scheme::kProposed, make_ids(10), 1);
    (void)s.form();
    s.reset_ledgers();
    const auto r = s.join(2000);
    const auto meas = sum_event(s, r);
    std::printf("  join      n=10 : rounds=%d msgs=%llu signGen=%llu signVer=%llu\n",
                meas.rounds, static_cast<unsigned long long>(meas.msgs),
                static_cast<unsigned long long>(meas.sign_gen),
                static_cast<unsigned long long>(meas.sign_ver));
  }
  {
    gka::GroupSession s(authority, gka::Scheme::kProposed, make_ids(10, 1100), 2);
    (void)s.form();
    s.reset_ledgers();
    const auto ids = s.member_ids();
    const auto r = s.leave(ids.back());
    const auto meas = sum_event(s, r);
    std::printf("  leave     n=10 : rounds=%d msgs=%llu signGen=%llu signVer=%llu "
                "(formula v+n-2 = %d)\n",
                meas.rounds, static_cast<unsigned long long>(meas.msgs),
                static_cast<unsigned long long>(meas.sign_gen),
                static_cast<unsigned long long>(meas.sign_ver),
                static_cast<int>((10 - 1 + 1) / 2 + 10 - 2));
  }
  {
    gka::GroupSession a(authority, gka::Scheme::kProposed, make_ids(6, 1200), 3);
    gka::GroupSession b(authority, gka::Scheme::kProposed, make_ids(4, 1300), 4);
    (void)a.form();
    (void)b.form();
    a.reset_ledgers();
    b.reset_ledgers();
    const auto r = a.merge(b);
    const auto meas = sum_event(a, r);
    std::printf("  merge  6+4     : rounds=%d msgs=%llu signGen=%llu signVer=%llu\n",
                meas.rounds, static_cast<unsigned long long>(meas.msgs),
                static_cast<unsigned long long>(meas.sign_gen),
                static_cast<unsigned long long>(meas.sign_ver));
  }
  {
    gka::GroupSession s(authority, gka::Scheme::kProposed, make_ids(10, 1400), 5);
    (void)s.form();
    s.reset_ledgers();
    const auto ids = s.member_ids();
    const auto r = s.partition({ids[7], ids[8], ids[9]});
    const auto meas = sum_event(s, r);
    std::printf("  partition ld=3 : rounds=%d msgs=%llu signGen=%llu signVer=%llu "
                "(formula v+n-2ld = %d)\n",
                meas.rounds, static_cast<unsigned long long>(meas.msgs),
                static_cast<unsigned long long>(meas.sign_gen),
                static_cast<unsigned long long>(meas.sign_ver), static_cast<int>((10 - 3 + 1) / 2 + 10 - 6));
  }
  std::printf("\nnote: our join measures 4 protocol messages against the paper's "
              "count of 5 (see EXPERIMENTS.md).\n");
  return 0;
}
