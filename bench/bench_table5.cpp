// Table 5 reproduction: per-role energy of the dynamic protocols at
// n=100, m=20, ld=20 (StrongARM + Spectrum24 WLAN).
//
// Proposed-protocol roles are priced from the validated formula ledgers;
// the BD baseline re-executes the full authenticated BD+ECDSA over the
// post-event group. The paper's printed joule figures are repeated in the
// right-hand column.
#include <cstdio>

#include "bench_util.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

double role_j(const std::map<gka::Role, energy::Ledger>& ledgers, gka::Role role) {
  return energy::ledger_energy_mj(ledgers.at(role), energy::strongarm(),
                                  energy::wlan_spectrum24()) /
         1000.0;
}

double reexec_j(std::size_t group_size) {
  return initial_energy_j(gka::Scheme::kBdEcdsa, group_size, energy::wlan_spectrum24());
}

void row(const char* proto, const char* role, double joules, const char* paper) {
  std::printf("%-14s %-26s %10.4f J   (paper: %s)\n", proto, role, joules, paper);
}

}  // namespace

int main() {
  const std::size_t n = 100;
  const std::size_t m = 20;
  const std::size_t ld = 20;

  std::printf("=== Table 5: Energy Cost for Dynamic Protocols ===\n");
  std::printf("n=%zu, m=%zu, ld=%zu; StrongARM + Spectrum24 WLAN\n\n", n, m, ld);

  // --- Join ---------------------------------------------------------------
  row("BD Join", "U1 - Un (re-execute, n+1)", reexec_j(n + 1), "1.234 J");
  row("BD Join", "Un+1", reexec_j(n + 1), "2.31 J");
  const auto join = gka::impl_dynamic_ledgers(gka::DynamicEvent::kJoin, n);
  row("Our Join", "U1", role_j(join, gka::Role::kController), "0.039 J");
  row("Our Join", "Un", role_j(join, gka::Role::kBridge), "0.049 J");
  row("Our Join", "Un+1", role_j(join, gka::Role::kJoiner), "0.057 J");
  row("Our Join", "Others", role_j(join, gka::Role::kOther), "1.34 mJ");
  std::printf("\n");

  // --- Leave --------------------------------------------------------------
  row("BD Leave", "remaining users (n-1)", reexec_j(n - 1), "1.179 J");
  const auto leave = gka::impl_dynamic_ledgers(gka::DynamicEvent::kLeave, n);
  row("Our Leave", "Uj, j odd", role_j(leave, gka::Role::kOddSurvivor), "0.160 J");
  row("Our Leave", "Uk, k even", role_j(leave, gka::Role::kEvenSurvivor), "0.150 J");
  std::printf("\n");

  // --- Merge --------------------------------------------------------------
  row("BD Merge", "group A users (n+m)", reexec_j(n + m), "1.660 J");
  row("BD Merge", "group B users (n+m)", reexec_j(n + m), "2.532 J");
  const auto merge = gka::impl_dynamic_ledgers(gka::DynamicEvent::kMerge, n, m);
  row("Our Merge", "U1", role_j(merge, gka::Role::kController), "0.079 J");
  row("Our Merge", "Un+1", role_j(merge, gka::Role::kBridge), "0.079 J");
  row("Our Merge", "Others", role_j(merge, gka::Role::kOtherA), "0.986 mJ");
  std::printf("\n");

  // --- Partition ----------------------------------------------------------
  row("BD Partition", "remaining users (n-ld)", reexec_j(n - ld), "0.942 J");
  const auto part = gka::impl_dynamic_ledgers(gka::DynamicEvent::kPartition, n, 0, ld);
  row("Our Partition", "Uj, j odd", role_j(part, gka::Role::kOddSurvivor), "0.142 J");
  row("Our Partition", "Uk, k even", role_j(part, gka::Role::kEvenSurvivor), "0.132 J");

  std::printf("\nHeadline reproduced: the proposed dynamic protocols cost 1-2 orders of\n");
  std::printf("magnitude less energy than re-executing authenticated BD.\n");
  std::printf("Known deltas vs the paper (documented in EXPERIMENTS.md): our Join U1\n");
  std::printf("additionally publishes its refreshed z1' (one extra mod-exp, ~9.1 mJ),\n");
  std::printf("and passive members are charged every broadcast they hear.\n");
  return 0;
}
