// Ablation B: multiprecision-arithmetic design choices.
//
// Two parts:
//
//  1. Context-vs-shim comparison (always runs, writes BENCH_crypto.json):
//     per-call mpint::mod_exp (the seed behaviour — Montgomery constants
//     re-derived on every call) vs a shared ModContext vs the fixed-base
//     comb table, at 256/1024-bit moduli. The 1024-bit fixed-base row is the
//     acceptance gate: the process exits non-zero below a 2.5x speedup.
//
//  2. The Google-Benchmark microsuite (windowed Montgomery vs naive
//     square-and-multiply, Karatsuba crossover, mod-mul, inverse). Runs only
//     when benchmark CLI arguments are given, e.g.
//       ./bench_ablation_mpint --benchmark_filter=.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "hash/hmac_drbg.h"
#include "mpint/mod_context.h"
#include "mpint/random.h"

using namespace idgka;
using mpint::BigInt;

namespace {

BigInt random_odd(std::size_t bits, std::uint64_t seed) {
  hash::HmacDrbg rng(seed, "ablation-mpint");
  BigInt m = mpint::random_bits(rng, bits);
  if (m.is_even()) m += BigInt{1};
  return m;
}

// ------------------------------------------------------------------------
// Part 1: context-vs-shim comparison + BENCH_crypto.json
// ------------------------------------------------------------------------

struct CryptoRow {
  std::size_t bits = 0;
  double shim_us = 0.0;        // per-call mod_exp (seed behaviour)
  double ctx_us = 0.0;         // shared ModContext, windowed exp
  double fixed_us = 0.0;       // shared ModContext + fixed-base comb
  double table_build_us = 0.0; // one-time comb precomputation
  std::size_t table_kib = 0;
  unsigned teeth = 0;

  [[nodiscard]] double speedup_ctx() const { return shim_us / ctx_us; }
  [[nodiscard]] double speedup_fixed() const { return shim_us / fixed_us; }
};

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Best-of-N per-op time: the gate below hard-fails CI, so each variant takes
// the minimum over repetitions to shed scheduler noise on shared runners.
template <typename F>
double best_of(int reps, int iters, F&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double us = us_since(t0) / iters;
    if (r == 0 || us < best) best = us;
  }
  return best;
}

CryptoRow run_comparison(std::size_t bits, int iters, int reps) {
  CryptoRow row;
  row.bits = bits;
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "ctx-vs-shim");
  const BigInt g = mpint::random_below(rng, m);
  std::vector<BigInt> exps;
  exps.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) exps.push_back(mpint::random_bits(rng, bits));

  BigInt sink;
  // Seed behaviour: every call pays the full context derivation.
  row.shim_us = best_of(reps, iters, [&] {
    for (const BigInt& e : exps) sink = mpint::mod_exp(g, e, m);
    benchmark::DoNotOptimize(sink);
  });

  // Shared context, windowed exponentiation.
  const mpint::ModContext ctx(m);
  row.ctx_us = best_of(reps, iters, [&] {
    for (const BigInt& e : exps) sink = ctx.exp(g, e);
    benchmark::DoNotOptimize(sink);
  });

  // Fixed-base comb on top of the shared context.
  auto t0 = std::chrono::steady_clock::now();
  const mpint::FixedBaseTable table = ctx.make_fixed_base(g, bits);
  row.table_build_us = us_since(t0);
  row.table_kib = table.table_bytes() / 1024;
  row.teeth = table.teeth();
  row.fixed_us = best_of(reps, iters, [&] {
    for (const BigInt& e : exps) sink = ctx.exp(table, e);
    benchmark::DoNotOptimize(sink);
  });

  // Cross-check: all three paths must agree on the last exponent.
  if (ctx.exp(table, exps.back()) != mpint::mod_exp(g, exps.back(), m)) {
    std::fprintf(stderr, "FATAL: fixed-base result disagrees with mod_exp at %zu bits\n",
                 bits);
    std::exit(2);
  }
  return row;
}

int run_crypto_bench() {
  std::printf("=== ModContext vs per-call mod_exp (seed shim), fixed-base comb ===\n");
  std::printf("%6s %12s %12s %12s %9s %9s %10s %8s\n", "bits", "shim us/op", "ctx us/op",
              "fixed us/op", "ctx x", "fixed x", "build us", "tbl KiB");

  std::vector<CryptoRow> rows;
  rows.push_back(run_comparison(256, 96, 5));
  rows.push_back(run_comparison(1024, 24, 5));
  for (const CryptoRow& r : rows) {
    std::printf("%6zu %12.1f %12.1f %12.1f %8.2fx %8.2fx %10.1f %8zu\n", r.bits, r.shim_us,
                r.ctx_us, r.fixed_us, r.speedup_ctx(), r.speedup_fixed(), r.table_build_us,
                r.table_kib);
  }

  std::ofstream out("BENCH_crypto.json");
  out << "{\"bench\":\"crypto_context\",\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CryptoRow& r = rows[i];
    if (i > 0) out << ',';
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "{\"bits\":%zu,\"shim_us_op\":%.2f,\"ctx_us_op\":%.2f,"
                  "\"fixed_base_us_op\":%.2f,\"speedup_ctx\":%.2f,"
                  "\"speedup_fixed_base\":%.2f,\"comb_teeth\":%u,"
                  "\"table_kib\":%zu,\"table_build_us\":%.1f}",
                  r.bits, r.shim_us, r.ctx_us, r.fixed_us, r.speedup_ctx(),
                  r.speedup_fixed(), r.teeth, r.table_kib, r.table_build_us);
    out << buf;
  }
  out << "]}\n";
  out.close();
  std::printf("\nwrote BENCH_crypto.json (%zu rows)\n", rows.size());

  const double gate = rows.back().speedup_fixed();
  if (gate < 2.5) {
    std::printf("FAILED: 1024-bit fixed-base speedup %.2fx < 2.5x acceptance bar\n", gate);
    return 1;
  }
  std::printf("1024-bit fixed-base speedup %.2fx >= 2.5x acceptance bar\n", gate);
  return 0;
}

// ------------------------------------------------------------------------
// Part 2: Google-Benchmark microsuite
// ------------------------------------------------------------------------

void BM_ModContextExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  const mpint::ModContext ctx(m);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.exp(base, exp));
}
BENCHMARK(BM_ModContextExp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FixedBaseExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  const mpint::ModContext ctx(m);
  const mpint::FixedBaseTable table = ctx.make_fixed_base(base, bits);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.exp(table, exp));
}
BENCHMARK(BM_FixedBaseExp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_PerCallShimExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_exp(base, exp, m));
}
BENCHMARK(BM_PerCallShimExp)->Arg(256)->Arg(512)->Arg(1024);

void BM_NaiveSquareMultiply(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  for (auto _ : state) {
    BigInt acc{1};
    for (std::size_t i = exp.bit_length(); i-- > 0;) {
      acc = mpint::mod_mul(acc, acc, m);
      if (exp.bit(i)) acc = mpint::mod_mul(acc, base, m);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_NaiveSquareMultiply)->Arg(256)->Arg(512)->Arg(1024);

void BM_Multiply(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  hash::HmacDrbg rng(3, "mul");
  const BigInt a = mpint::random_bits(rng, bits);
  const BigInt b = mpint::random_bits(rng, bits);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
// 1536 limbs*64 = below Karatsuba threshold; larger sizes cross it.
BENCHMARK(BM_Multiply)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_ModMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 4);
  hash::HmacDrbg rng(5, "modmul");
  const BigInt a = mpint::random_below(rng, m);
  const BigInt b = mpint::random_below(rng, m);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_mul(a, b, m));
}
BENCHMARK(BM_ModMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModContextMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 4);
  hash::HmacDrbg rng(5, "modmul");
  const BigInt a = mpint::random_below(rng, m);
  const BigInt b = mpint::random_below(rng, m);
  const mpint::ModContext ctx(m);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.mul(a, b));
}
BENCHMARK(BM_ModContextMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModInverse(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 6);
  hash::HmacDrbg rng(7, "inv");
  BigInt a = mpint::random_below(rng, m);
  while (!mpint::gcd(a, m).is_one()) a = mpint::random_below(rng, m);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_inverse(a, m));
}
BENCHMARK(BM_ModInverse)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_crypto_bench();
  if (rc != 0) return rc;
  if (argc > 1) {  // microsuite only on request (e.g. --benchmark_filter=.)
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
