// Ablation B: multiprecision-arithmetic design choices.
//
// Two parts:
//
//  1. Context-vs-shim comparison (always runs, writes BENCH_crypto.json):
//     per-call mpint::mod_exp (the seed behaviour — Montgomery constants
//     re-derived on every call) vs a shared ModContext vs the fixed-base
//     comb table, at 256/1024-bit moduli. The 1024-bit fixed-base row is the
//     acceptance gate: the process exits non-zero below a 2.5x speedup.
//     Also races the dedicated Montgomery squaring kernel against the
//     general CIOS multiply at 1024/2048 bits (gate: >= 1.25x) and proves
//     steady-state ModContext::exp allocation-free via the operator-new
//     interposer in bench_util.h (gate: 0 heap allocs/op).
//
//  2. The Google-Benchmark microsuite (windowed Montgomery vs naive
//     square-and-multiply, Karatsuba crossover, mod-mul, inverse). Runs only
//     when benchmark CLI arguments are given, e.g.
//       ./bench_ablation_mpint --benchmark_filter=.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

// Interpose global operator new/delete for this binary: the residue-engine
// section gates on steady-state ModContext::exp performing zero heap
// allocations per op, measured via bench::heap_alloc_count() deltas.
#define IDGKA_BENCH_COUNT_ALLOCS
#include "bench_util.h"
#include "hash/hmac_drbg.h"
#include "mpint/mod_context.h"
#include "mpint/random.h"

using namespace idgka;
using mpint::BigInt;

namespace {

BigInt random_odd(std::size_t bits, std::uint64_t seed) {
  hash::HmacDrbg rng(seed, "ablation-mpint");
  BigInt m = mpint::random_bits(rng, bits);
  if (m.is_even()) m += BigInt{1};
  return m;
}

// ------------------------------------------------------------------------
// Part 1: context-vs-shim comparison + BENCH_crypto.json
// ------------------------------------------------------------------------

struct CryptoRow {
  std::size_t bits = 0;
  double shim_us = 0.0;        // per-call mod_exp (seed behaviour)
  double ctx_us = 0.0;         // shared ModContext, windowed exp
  double fixed_us = 0.0;       // shared ModContext + fixed-base comb
  double table_build_us = 0.0; // one-time comb precomputation
  std::size_t table_kib = 0;
  unsigned teeth = 0;
  std::uint64_t ctx_mod_muls_op = 0;  // deterministic mod-mul count per ctx.exp

  [[nodiscard]] double speedup_ctx() const { return shim_us / ctx_us; }
  [[nodiscard]] double speedup_fixed() const { return shim_us / fixed_us; }
};

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Best-of-N per-op time: the gate below hard-fails CI, so each variant takes
// the minimum over repetitions to shed scheduler noise on shared runners.
template <typename F>
double best_of(int reps, int iters, F&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const double us = us_since(t0) / iters;
    if (r == 0 || us < best) best = us;
  }
  return best;
}

CryptoRow run_comparison(std::size_t bits, int iters, int reps) {
  CryptoRow row;
  row.bits = bits;
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "ctx-vs-shim");
  const BigInt g = mpint::random_below(rng, m);
  std::vector<BigInt> exps;
  exps.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) exps.push_back(mpint::random_bits(rng, bits));

  BigInt sink;
  // Seed behaviour: every call pays the full context derivation.
  row.shim_us = best_of(reps, iters, [&] {
    for (const BigInt& e : exps) sink = mpint::mod_exp(g, e, m);
    benchmark::DoNotOptimize(sink);
  });

  // Shared context, windowed exponentiation.
  const mpint::ModContext ctx(m);
  row.ctx_us = best_of(reps, iters, [&] {
    for (const BigInt& e : exps) sink = ctx.exp(g, e);
    benchmark::DoNotOptimize(sink);
  });

  // Fixed-base comb on top of the shared context.
  auto t0 = std::chrono::steady_clock::now();
  const mpint::FixedBaseTable table = ctx.make_fixed_base(g, bits);
  row.table_build_us = us_since(t0);
  row.table_kib = table.table_bytes() / 1024;
  row.teeth = table.teeth();
  row.fixed_us = best_of(reps, iters, [&] {
    for (const BigInt& e : exps) sink = ctx.exp(table, e);
    benchmark::DoNotOptimize(sink);
  });

  // Cross-check: all three paths must agree on the last exponent.
  if (ctx.exp(table, exps.back()) != mpint::mod_exp(g, exps.back(), m)) {
    std::fprintf(stderr, "FATAL: fixed-base result disagrees with mod_exp at %zu bits\n",
                 bits);
    std::exit(2);
  }

  // Deterministic cost model: the counter delta for one windowed exp.
  const mpint::OpCounts c0 = mpint::op_counts();
  sink = ctx.exp(g, exps.back());
  benchmark::DoNotOptimize(sink);
  row.ctx_mod_muls_op = mpint::op_counts().mod_muls - c0.mod_muls;
  return row;
}

// ------------------------------------------------------------------------
// Multi-exponentiation: joint evaluation vs a chain of independent exps.
// ------------------------------------------------------------------------

struct MultiExpRow {
  const char* engine = "";  // "straus" (interleaved) or "pippenger" (buckets)
  std::size_t arity = 0;
  double seq_us = 0.0;    // prod of arity independent ctx.exp calls
  double joint_us = 0.0;  // one ctx.multi_exp call
  std::uint64_t seq_mod_muls = 0;    // deterministic counts for one op
  std::uint64_t joint_mod_muls = 0;

  [[nodiscard]] double speedup() const { return seq_us / joint_us; }
};

MultiExpRow run_multi_exp(const char* engine, std::size_t arity, std::size_t mod_bits,
                          std::size_t exp_bits, int iters, int reps) {
  MultiExpRow row;
  row.engine = engine;
  row.arity = arity;
  const BigInt m = random_odd(mod_bits, 11);
  hash::HmacDrbg rng(12, "multi-exp");
  const mpint::ModContext ctx(m);
  std::vector<BigInt> bases(arity);
  std::vector<BigInt> exps(arity);
  for (BigInt& b : bases) b = mpint::random_below(rng, m);
  for (BigInt& e : exps) e = mpint::random_bits(rng, exp_bits);

  const auto sequential = [&] {
    BigInt acc = ctx.exp(bases[0], exps[0]);
    for (std::size_t t = 1; t < arity; ++t) acc = ctx.mul(acc, ctx.exp(bases[t], exps[t]));
    return acc;
  };

  BigInt sink;
  row.seq_us = best_of(reps, iters, [&] {
    for (int i = 0; i < iters; ++i) sink = sequential();
    benchmark::DoNotOptimize(sink);
  });
  row.joint_us = best_of(reps, iters, [&] {
    for (int i = 0; i < iters; ++i) sink = ctx.multi_exp(bases, exps);
    benchmark::DoNotOptimize(sink);
  });

  // Deterministic mod-mul counts for one op of each flavour, and the
  // equivalence cross-check that makes the wall-clock race meaningful.
  const mpint::OpCounts c0 = mpint::op_counts();
  const BigInt seq = sequential();
  const mpint::OpCounts c1 = mpint::op_counts();
  const BigInt joint = ctx.multi_exp(bases, exps);
  const mpint::OpCounts c2 = mpint::op_counts();
  row.seq_mod_muls = c1.mod_muls - c0.mod_muls;
  row.joint_mod_muls = c2.mod_muls - c1.mod_muls;
  if (seq != joint) {
    std::fprintf(stderr, "FATAL: multi_exp disagrees with sequential exps at arity %zu\n",
                 arity);
    std::exit(2);
  }
  return row;
}

// ------------------------------------------------------------------------
// Residue kernels: dedicated squaring vs general CIOS multiply, and the
// zero-allocation contract of steady-state exponentiation.
// ------------------------------------------------------------------------

struct ResidueRow {
  std::size_t bits = 0;
  double mul_us = 0.0;           // ctx.mul(a, b, out) — general CIOS kernel
  double sqr_us = 0.0;           // ctx.sqr(a, out) — dedicated squaring kernel
  double exp_allocs_per_op = 0.0;  // heap allocations per steady-state ctx.exp

  [[nodiscard]] double speedup_sqr() const { return mul_us / sqr_us; }
};

ResidueRow run_residue_kernels(std::size_t bits, int iters, int reps) {
  ResidueRow row;
  row.bits = bits;
  const BigInt m = random_odd(bits, 21);
  hash::HmacDrbg rng(22, "residue-kernels");
  const BigInt ga = mpint::random_below(rng, m);
  const BigInt gb = mpint::random_below(rng, m);
  const mpint::ModContext ctx(m);

  const mpint::Residue a = ctx.to_residue(ga);
  const mpint::Residue b = ctx.to_residue(gb);

  // Correctness first: the squaring kernel must agree with mul(a, a).
  mpint::Residue via_mul(ctx);
  mpint::Residue via_sqr(ctx);
  ctx.mul(a, a, via_mul);
  ctx.sqr(a, via_sqr);
  if (ctx.from_residue(via_mul) != ctx.from_residue(via_sqr)) {
    std::fprintf(stderr, "FATAL: mont_sqr disagrees with mont_mul(a, a) at %zu bits\n",
                 bits);
    std::exit(2);
  }

  // Chained in place so every iteration sees a fresh operand; both loops pay
  // the same per-call counter fold, so the ratio isolates the kernels.
  mpint::Residue acc(ctx);
  row.mul_us = best_of(reps, iters, [&] {
    acc = a;
    for (int i = 0; i < iters; ++i) ctx.mul(acc, b, acc);
    benchmark::DoNotOptimize(acc);
  });
  row.sqr_us = best_of(reps, iters, [&] {
    acc = a;
    for (int i = 0; i < iters; ++i) ctx.sqr(acc, acc);
    benchmark::DoNotOptimize(acc);
  });

  // Zero-allocation contract: after one warm-up exp (thread-local arena pool
  // grabbed, output residue sized), further exps must not touch the heap.
  const BigInt e = mpint::random_bits(rng, bits);
  mpint::Residue out(ctx);
  ctx.exp(a, e, out);  // warm-up
  constexpr int kAllocProbeOps = 64;
  const std::uint64_t allocs0 = bench::heap_alloc_count();
  for (int i = 0; i < kAllocProbeOps; ++i) ctx.exp(a, e, out);
  row.exp_allocs_per_op =
      static_cast<double>(bench::heap_alloc_count() - allocs0) / kAllocProbeOps;
  benchmark::DoNotOptimize(out);
  return row;
}

int run_crypto_bench() {
  std::printf("=== ModContext vs per-call mod_exp (seed shim), fixed-base comb ===\n");
  std::printf("%6s %12s %12s %12s %9s %9s %10s %8s\n", "bits", "shim us/op", "ctx us/op",
              "fixed us/op", "ctx x", "fixed x", "build us", "tbl KiB");

  std::vector<CryptoRow> rows;
  rows.push_back(run_comparison(256, 96, 5));
  rows.push_back(run_comparison(1024, 24, 5));
  for (const CryptoRow& r : rows) {
    std::printf("%6zu %12.1f %12.1f %12.1f %8.2fx %8.2fx %10.1f %8zu\n", r.bits, r.shim_us,
                r.ctx_us, r.fixed_us, r.speedup_ctx(), r.speedup_fixed(), r.table_build_us,
                r.table_kib);
  }

  std::printf("\n=== Joint multi-exponentiation vs sequential exp chains ===\n");
  std::printf("%-10s %6s %12s %12s %9s %10s %11s\n", "engine", "arity", "seq us/op",
              "joint us/op", "joint x", "seq muls", "joint muls");
  std::vector<MultiExpRow> multi;
  multi.push_back(run_multi_exp("straus", 4, 1024, 256, 16, 5));
  multi.push_back(run_multi_exp("pippenger", 32, 1024, 256, 4, 5));
  for (const MultiExpRow& r : multi) {
    std::printf("%-10s %6zu %12.1f %12.1f %8.2fx %10llu %11llu\n", r.engine, r.arity,
                r.seq_us, r.joint_us, r.speedup(),
                static_cast<unsigned long long>(r.seq_mod_muls),
                static_cast<unsigned long long>(r.joint_mod_muls));
  }

  std::printf("\n=== Residue kernels: dedicated squaring vs general mont_mul ===\n");
  std::printf("%6s %12s %12s %9s %14s\n", "bits", "mul us/op", "sqr us/op", "sqr x",
              "exp allocs/op");
  std::vector<ResidueRow> residue;
  residue.push_back(run_residue_kernels(1024, 200000, 7));
  residue.push_back(run_residue_kernels(2048, 60000, 7));
  for (const ResidueRow& r : residue) {
    std::printf("%6zu %12.4f %12.4f %8.2fx %14.2f\n", r.bits, r.mul_us, r.sqr_us,
                r.speedup_sqr(), r.exp_allocs_per_op);
  }

  std::ofstream out("BENCH_crypto.json");
  out << "{\"bench\":\"crypto_context\",\"runs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CryptoRow& r = rows[i];
    if (i > 0) out << ',';
    char buf[360];
    std::snprintf(buf, sizeof buf,
                  "{\"bits\":%zu,\"shim_us_op\":%.2f,\"ctx_us_op\":%.2f,"
                  "\"fixed_base_us_op\":%.2f,\"speedup_ctx\":%.2f,"
                  "\"speedup_fixed_base\":%.2f,\"comb_teeth\":%u,"
                  "\"table_kib\":%zu,\"table_build_us\":%.1f,"
                  "\"ctx_mod_muls_op\":%llu}",
                  r.bits, r.shim_us, r.ctx_us, r.fixed_us, r.speedup_ctx(),
                  r.speedup_fixed(), r.teeth, r.table_kib, r.table_build_us,
                  static_cast<unsigned long long>(r.ctx_mod_muls_op));
    out << buf;
  }
  out << "],\"multi_exp\":[";
  for (std::size_t i = 0; i < multi.size(); ++i) {
    const MultiExpRow& r = multi[i];
    if (i > 0) out << ',';
    char buf[280];
    std::snprintf(buf, sizeof buf,
                  "{\"engine\":\"%s\",\"arity\":%zu,\"seq_us_op\":%.1f,"
                  "\"joint_us_op\":%.1f,\"speedup\":%.2f,"
                  "\"seq_mod_muls\":%llu,\"joint_mod_muls\":%llu}",
                  r.engine, r.arity, r.seq_us, r.joint_us, r.speedup(),
                  static_cast<unsigned long long>(r.seq_mod_muls),
                  static_cast<unsigned long long>(r.joint_mod_muls));
    out << buf;
  }
  out << "],\"residue\":[";
  for (std::size_t i = 0; i < residue.size(); ++i) {
    const ResidueRow& r = residue[i];
    if (i > 0) out << ',';
    char buf[200];
    // _us fields are host timing (CI-ignored); allocs_per_op is exact.
    std::snprintf(buf, sizeof buf,
                  "{\"bits\":%zu,\"mont_mul_us\":%.4f,\"mont_sqr_us\":%.4f,"
                  "\"mont_sqr_speedup\":%.2f,\"exp_allocs_per_op\":%.2f}",
                  r.bits, r.mul_us, r.sqr_us, r.speedup_sqr(), r.exp_allocs_per_op);
    out << buf;
  }
  out << "]}\n";
  out.close();
  std::printf("\nwrote BENCH_crypto.json (%zu + %zu + %zu rows)\n", rows.size(),
              multi.size(), residue.size());

  const double gate = rows.back().speedup_fixed();
  if (gate < 2.5) {
    std::printf("FAILED: 1024-bit fixed-base speedup %.2fx < 2.5x acceptance bar\n", gate);
    return 1;
  }
  std::printf("1024-bit fixed-base speedup %.2fx >= 2.5x acceptance bar\n", gate);
  if (multi[0].speedup() < 1.5) {
    std::printf("FAILED: arity-4 joint multi-exp %.2fx < 1.5x acceptance bar\n",
                multi[0].speedup());
    return 1;
  }
  std::printf("arity-4 joint multi-exp %.2fx >= 1.5x acceptance bar\n", multi[0].speedup());
  if (multi[1].speedup() < 2.0) {
    std::printf("FAILED: width-32 bucket multi-exp %.2fx < 2x acceptance bar\n",
                multi[1].speedup());
    return 1;
  }
  std::printf("width-32 bucket multi-exp %.2fx >= 2x acceptance bar\n", multi[1].speedup());
  for (const ResidueRow& r : residue) {
    if (r.speedup_sqr() < 1.25) {
      std::printf("FAILED: %zu-bit mont_sqr %.2fx < 1.25x acceptance bar\n", r.bits,
                  r.speedup_sqr());
      return 1;
    }
    std::printf("%zu-bit mont_sqr %.2fx >= 1.25x acceptance bar\n", r.bits,
                r.speedup_sqr());
    if (r.exp_allocs_per_op != 0.0) {
      std::printf("FAILED: %zu-bit steady-state exp performs %.2f heap allocs/op (want 0)\n",
                  r.bits, r.exp_allocs_per_op);
      return 1;
    }
    std::printf("%zu-bit steady-state exp: 0 heap allocs/op\n", r.bits);
  }
  return 0;
}

// ------------------------------------------------------------------------
// Part 2: Google-Benchmark microsuite
// ------------------------------------------------------------------------

void BM_ModContextExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  const mpint::ModContext ctx(m);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.exp(base, exp));
}
BENCHMARK(BM_ModContextExp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_FixedBaseExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  const mpint::ModContext ctx(m);
  const mpint::FixedBaseTable table = ctx.make_fixed_base(base, bits);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.exp(table, exp));
}
BENCHMARK(BM_FixedBaseExp)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_PerCallShimExp(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_exp(base, exp, m));
}
BENCHMARK(BM_PerCallShimExp)->Arg(256)->Arg(512)->Arg(1024);

void BM_NaiveSquareMultiply(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  for (auto _ : state) {
    BigInt acc{1};
    for (std::size_t i = exp.bit_length(); i-- > 0;) {
      acc = mpint::mod_mul(acc, acc, m);
      if (exp.bit(i)) acc = mpint::mod_mul(acc, base, m);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_NaiveSquareMultiply)->Arg(256)->Arg(512)->Arg(1024);

void BM_Multiply(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  hash::HmacDrbg rng(3, "mul");
  const BigInt a = mpint::random_bits(rng, bits);
  const BigInt b = mpint::random_bits(rng, bits);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
// 1536 limbs*64 = below Karatsuba threshold; larger sizes cross it.
BENCHMARK(BM_Multiply)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_ModMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 4);
  hash::HmacDrbg rng(5, "modmul");
  const BigInt a = mpint::random_below(rng, m);
  const BigInt b = mpint::random_below(rng, m);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_mul(a, b, m));
}
BENCHMARK(BM_ModMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModContextMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 4);
  hash::HmacDrbg rng(5, "modmul");
  const BigInt a = mpint::random_below(rng, m);
  const BigInt b = mpint::random_below(rng, m);
  const mpint::ModContext ctx(m);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.mul(a, b));
}
BENCHMARK(BM_ModContextMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModInverse(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 6);
  hash::HmacDrbg rng(7, "inv");
  BigInt a = mpint::random_below(rng, m);
  while (!mpint::gcd(a, m).is_one()) a = mpint::random_below(rng, m);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_inverse(a, m));
}
BENCHMARK(BM_ModInverse)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  const int rc = run_crypto_bench();
  if (rc != 0) return rc;
  if (argc > 1) {  // microsuite only on request (e.g. --benchmark_filter=.)
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
