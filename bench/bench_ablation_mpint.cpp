// Ablation B: multiprecision-arithmetic design choices.
//
// Sensitivity of the numeric substrate underlying every protocol cost:
//  * Montgomery windowed exponentiation vs naive square-and-multiply,
//  * Karatsuba vs schoolbook multiplication across operand sizes,
//  * modular reduction via Knuth division (the mod-mul primitive).
#include <benchmark/benchmark.h>

#include "hash/hmac_drbg.h"
#include "mpint/montgomery.h"
#include "mpint/random.h"

using namespace idgka;
using mpint::BigInt;

namespace {

BigInt random_odd(std::size_t bits, std::uint64_t seed) {
  hash::HmacDrbg rng(seed, "ablation-mpint");
  BigInt m = mpint::random_bits(rng, bits);
  if (m.is_even()) m += BigInt{1};
  return m;
}

void BM_MontgomeryPow(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  const mpint::MontgomeryCtx ctx(m);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.pow(base, exp));
}
BENCHMARK(BM_MontgomeryPow)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_NaiveSquareMultiply(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 1);
  hash::HmacDrbg rng(2, "pow");
  const BigInt base = mpint::random_below(rng, m);
  const BigInt exp = mpint::random_bits(rng, bits);
  for (auto _ : state) {
    BigInt acc{1};
    for (std::size_t i = exp.bit_length(); i-- > 0;) {
      acc = mpint::mod_mul(acc, acc, m);
      if (exp.bit(i)) acc = mpint::mod_mul(acc, base, m);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_NaiveSquareMultiply)->Arg(256)->Arg(512)->Arg(1024);

void BM_Multiply(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  hash::HmacDrbg rng(3, "mul");
  const BigInt a = mpint::random_bits(rng, bits);
  const BigInt b = mpint::random_bits(rng, bits);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
// 1536 limbs*64 = below Karatsuba threshold; larger sizes cross it.
BENCHMARK(BM_Multiply)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)->Arg(16384);

void BM_ModMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 4);
  hash::HmacDrbg rng(5, "modmul");
  const BigInt a = mpint::random_below(rng, m);
  const BigInt b = mpint::random_below(rng, m);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_mul(a, b, m));
}
BENCHMARK(BM_ModMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_MontgomeryMul(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 4);
  hash::HmacDrbg rng(5, "modmul");
  const BigInt a = mpint::random_below(rng, m);
  const BigInt b = mpint::random_below(rng, m);
  const mpint::MontgomeryCtx ctx(m);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.mul(a, b));
}
BENCHMARK(BM_MontgomeryMul)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModInverse(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const BigInt m = random_odd(bits, 6);
  hash::HmacDrbg rng(7, "inv");
  BigInt a = mpint::random_below(rng, m);
  while (!mpint::gcd(a, m).is_one()) a = mpint::random_below(rng, m);
  for (auto _ : state) benchmark::DoNotOptimize(mpint::mod_inverse(a, m));
}
BENCHMARK(BM_ModInverse)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
