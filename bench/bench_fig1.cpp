// Figure 1 reproduction: total per-node energy of the five authenticated
// GKA protocols on the StrongARM, for both transceivers, n in {10,50,100,500}.
//
// Energies come from the formula ledgers (validated == instrumented by the
// test suite) priced with the paper's Tables 2-3 constants — exactly the
// paper's methodology. A log-scale ASCII chart mirrors the figure.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace idgka;
using namespace idgka::bench;

namespace {

struct Series {
  gka::Scheme scheme;
  const energy::RadioProfile* radio;
  char tag;  // the paper's curve label (a)...(j)
  const char* label;
};

}  // namespace

int main() {
  const std::size_t sizes[] = {10, 50, 100, 500};
  const auto& radio = energy::radio_100kbps();
  const auto& wlan = energy::wlan_spectrum24();

  const Series series[] = {
      {gka::Scheme::kBdEcdsa, &radio, 'a', "BD w/ ECDSA, 100kbps"},
      {gka::Scheme::kBdEcdsa, &wlan, 'b', "BD w/ ECDSA, WLAN"},
      {gka::Scheme::kBdDsa, &radio, 'c', "BD w/ DSA, 100kbps"},
      {gka::Scheme::kBdDsa, &wlan, 'd', "BD w/ DSA, WLAN"},
      {gka::Scheme::kBdSok, &radio, 'e', "BD w/ SOK, 100kbps"},
      {gka::Scheme::kBdSok, &wlan, 'f', "BD w/ SOK, WLAN"},
      {gka::Scheme::kSsn, &radio, 'g', "SSN, 100kbps"},
      {gka::Scheme::kSsn, &wlan, 'h', "SSN, WLAN"},
      {gka::Scheme::kProposed, &radio, 'i', "Proposed, 100kbps"},
      {gka::Scheme::kProposed, &wlan, 'j', "Proposed, WLAN"},
  };

  std::printf("=== Figure 1: Energy Consumption Costs (J per node, StrongARM) ===\n\n");
  std::printf("%-26s", "series");
  for (const std::size_t n : sizes) std::printf("   n=%-8zu", n);
  std::printf("\n");
  rule('-', 80);
  double chart[10][4];
  for (std::size_t si = 0; si < std::size(series); ++si) {
    const Series& s = series[si];
    std::printf("(%c) %-22s", s.tag, s.label);
    for (std::size_t ni = 0; ni < std::size(sizes); ++ni) {
      chart[si][ni] = initial_energy_j(s.scheme, sizes[ni], *s.radio);
      std::printf("  %10.4f", chart[si][ni]);
    }
    std::printf("\n");
  }
  rule('-', 80);

  // Cross-validate one cell against an instrumented run (n = 10).
  {
    gka::Authority authority(gka::SecurityProfile::kPaper, 77);
    gka::GroupSession session(authority, gka::Scheme::kProposed, make_ids(10), 5);
    if (!session.form().success) {
      std::fprintf(stderr, "validation run failed\n");
      return 1;
    }
    const double measured =
        energy::ledger_energy_mj(session.ledger(session.member_ids().front()),
                                 energy::strongarm(), wlan) /
        1000.0;
    std::printf("\ninstrumented cross-check, proposed @ n=10 (WLAN): %.4f J "
                "(formula: %.4f J)\n",
                measured, chart[9][0]);
  }

  // ASCII log-scale chart (energy on log10 axis, like the paper's figure).
  std::printf("\nlog-scale chart (each column = one n; rows from 100 J down to 0.01 J)\n\n");
  for (double level = 2.0; level >= -2.0; level -= 0.25) {
    std::printf("%8.2f J |", std::pow(10.0, level));
    for (std::size_t ni = 0; ni < std::size(sizes); ++ni) {
      char cell[11] = "          ";
      for (std::size_t si = 0; si < std::size(series); ++si) {
        const double lg = std::log10(chart[si][ni]);
        if (lg <= level && lg > level - 0.25) {
          // place the curve tag; collisions keep the cheaper protocol visible
          for (int pos = 0; pos < 10; ++pos) {
            if (cell[pos] == ' ') {
              cell[pos] = static_cast<char>('a' + static_cast<int>(si));
              break;
            }
          }
        }
      }
      std::printf(" %s", cell);
    }
    std::printf("\n");
  }
  std::printf("%10s |", "");
  for (const std::size_t n : sizes) std::printf(" n=%-8zu", n);
  std::printf("\n\nPaper's claim reproduced: curves (i)/(j) — the proposed scheme — sit "
              "lowest for both radios at every n.\n");

  // Machine-readable series for plotting.
  std::printf("\nCSV: scheme,radio,n,joules\n");
  for (const Series& s : series) {
    for (const std::size_t n : sizes) {
      std::printf("%s,%s,%zu,%.6f\n", gka::scheme_name(s.scheme), s.radio->name.c_str(), n,
                  initial_energy_j(s.scheme, n, *s.radio));
    }
  }
  return 0;
}
