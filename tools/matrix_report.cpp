// matrix_report: run the scenario-matrix sweep and compare reports.
//
// Usage:
//   matrix_report run [--out report.json] [--md report.md] [--seed N]
//                     [--members N] [--small]
//   matrix_report compare <baseline.json> <current.json>
//                     [--latency-pct X] [--counter-pct X]
//
// `run` sweeps {topology x link class (manet/leo/geo) x loss model x
// churn} with sim::MatrixRunner and writes the comparative report (JSON
// and/or markdown; markdown goes to stdout when neither file is given).
// --small shrinks the sweep to a CI-sized smoke matrix (2 link classes,
// 2 loss models, 1 churn level).
//
// `compare` diffs a current report against a committed baseline with the
// regression thresholds from sim::CompareThresholds; prints the verdict
// as markdown and exits 1 when a regression (or a missing cell) is found.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/matrix.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool write_file(const char* path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

int usage() {
  std::fprintf(stderr,
               "usage: matrix_report run [--out report.json] [--md report.md] [--seed N]\n"
               "                         [--members N] [--small]\n"
               "       matrix_report compare <baseline.json> <current.json>\n"
               "                         [--latency-pct X] [--counter-pct X]\n");
  return 2;
}

int run_sweep(int argc, char** argv) {
  idgka::sim::MatrixConfig cfg;
  const char* out_json = nullptr;
  const char* out_md = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_json = argv[++i];
    } else if (std::strcmp(argv[i], "--md") == 0 && i + 1 < argc) {
      out_md = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--members") == 0 && i + 1 < argc) {
      cfg.members = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--small") == 0) {
      cfg.name = "matrix-smoke";
      cfg.members = 8;
      cfg.link_classes = {idgka::sim::LinkClass::manet(), idgka::sim::LinkClass::leo()};
      cfg.loss_models = {{"clean", 0.0, false}, {"bursty10", 0.10, true}};
      cfg.churn_levels = {{"calm", 4}};
    } else {
      return usage();
    }
  }
  const idgka::sim::MatrixReport report = idgka::sim::MatrixRunner(cfg).run();
  if (out_json != nullptr && !write_file(out_json, report.to_json() + "\n")) {
    std::fprintf(stderr, "matrix_report: cannot write %s\n", out_json);
    return 1;
  }
  if (out_md != nullptr && !write_file(out_md, report.to_markdown())) {
    std::fprintf(stderr, "matrix_report: cannot write %s\n", out_md);
    return 1;
  }
  if (out_json == nullptr && out_md == nullptr) std::cout << report.to_markdown();
  return 0;
}

int run_compare(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  idgka::sim::CompareThresholds thresholds;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--latency-pct") == 0 && i + 1 < argc) {
      thresholds.latency_pct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--counter-pct") == 0 && i + 1 < argc) {
      thresholds.counter_pct = std::strtod(argv[++i], nullptr);
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      return usage();
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) return usage();

  std::string baseline_text;
  std::string current_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "matrix_report: cannot read %s\n", baseline_path);
    return 1;
  }
  if (!read_file(current_path, current_text)) {
    std::fprintf(stderr, "matrix_report: cannot read %s\n", current_path);
    return 1;
  }
  const idgka::sim::CompareResult result =
      idgka::sim::compare(idgka::obs::json::parse(baseline_text),
                          idgka::obs::json::parse(current_text), thresholds);
  std::cout << result.to_markdown();
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "run") == 0) return run_sweep(argc, argv);
    if (std::strcmp(argv[1], "compare") == 0) return run_compare(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "matrix_report: %s\n", e.what());
    return 1;
  }
  return usage();
}
