// trace_report: latency attribution and critical paths from an exported
// Chrome trace.
//
// Usage:
//   trace_report <trace.json> [--json] [--top N]
//
// Reads a trace exported by obs::export_chrome_trace_file (any build — the
// sim examples export one when IDGKA_OBS_TRACE_FILE is set, tests via
// obs_test fixtures) and prints the analysis: per-layer latency
// attribution, per-operation summaries with critical paths, and the top-N
// slowest spans. Markdown by default; --json emits the deterministic JSON
// report instead. Exits non-zero on unreadable or malformed input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/analysis.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage() {
  std::fprintf(stderr, "usage: trace_report <trace.json> [--json] [--top N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool as_json = false;
  std::size_t top_k = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();

  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "trace_report: cannot read %s\n", path);
    return 1;
  }
  try {
    const idgka::obs::analysis::Report report = idgka::obs::analysis::analyze(text, top_k);
    std::cout << (as_json ? report.to_json() : report.to_markdown()) << "\n";
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_report: %s: %s\n", path, e.what());
    return 1;
  }
  return 0;
}
