// bench_compare: diff a bench JSON against a committed baseline.
//
// Usage:
//   bench_compare <baseline.json> <current.json> [--pct X] [--ignore SUB]...
//
// Flattens every numeric leaf of both documents into "path -> value" maps
// (obs::json::flatten_numbers) and compares them. Paths containing
// "wall_ms" (host timing) or "peak_rss" (host memory) — never comparable
// across machines — are ignored by default; --ignore adds more substrings. The sim/engine bench metrics
// outside those paths are pure functions of the seeds, so the default
// tolerance is exact equality; --pct X tolerates X percent relative drift
// for noisy fields. Exits 1 on any difference beyond tolerance, printing
// one line per offending path.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_reader.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <current.json> [--pct X] [--ignore SUB]...\n");
  return 2;
}

bool ignored(const std::string& path, const std::vector<std::string>& ignores) {
  for (const std::string& sub : ignores) {
    if (path.find(sub) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  double pct = 0.0;
  std::vector<std::string> ignores = {"wall_ms", "peak_rss"};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pct") == 0 && i + 1 < argc) {
      pct = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--ignore") == 0 && i + 1 < argc) {
      ignores.emplace_back(argv[++i]);
    } else if (argv[i][0] == '-') {
      return usage();
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      return usage();
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) return usage();

  std::string baseline_text;
  std::string current_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", baseline_path);
    return 1;
  }
  if (!read_file(current_path, current_text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", current_path);
    return 1;
  }

  std::map<std::string, double> baseline;
  std::map<std::string, double> current;
  try {
    baseline = idgka::obs::json::flatten_numbers(idgka::obs::json::parse(baseline_text));
    current = idgka::obs::json::flatten_numbers(idgka::obs::json::parse(current_text));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 1;
  }

  int differences = 0;
  for (const auto& [path, base] : baseline) {
    if (ignored(path, ignores)) continue;
    const auto it = current.find(path);
    if (it == current.end()) {
      std::printf("MISSING  %s (baseline %.6g)\n", path.c_str(), base);
      ++differences;
      continue;
    }
    const double cur = it->second;
    const double diff = std::fabs(cur - base);
    const double allowed = std::fabs(base) * pct / 100.0;
    if (diff > allowed + 1e-12) {
      std::printf("DIFFER   %s baseline %.6g current %.6g\n", path.c_str(), base, cur);
      ++differences;
    }
  }
  for (const auto& [path, cur] : current) {
    if (ignored(path, ignores)) continue;
    if (!baseline.contains(path)) {
      std::printf("NEW      %s (current %.6g)\n", path.c_str(), cur);
      ++differences;
    }
  }
  if (differences == 0) {
    std::printf("bench_compare: %s matches baseline (%zu fields compared)\n", current_path,
                baseline.size());
    return 0;
  }
  std::printf("bench_compare: %d difference(s) vs %s\n", differences, baseline_path);
  return 1;
}
