// Event-driven protocol engine: many concurrent ProtocolRuns, one clock.
//
// The Executor multiplexes any number of resumable protocol executions
// (ProtocolRun) over a single discrete-event sim::Scheduler. Run wake-ups
// are ordinary scheduler events, so the engine inherits the scheduler's
// determinism guarantee — equal-timestamp events fire in insertion (FIFO)
// order — and a whole multi-group simulation stays a pure function of its
// seeds. drain() is the engine's main loop:
//
//   1. resume every currently-runnable run as one batch — in parallel
//      across net::parallel_for_each workers (IDGKA_THREADS=1 serializes
//      the batch without changing any result, which CI exploits to catch
//      schedule-dependent nondeterminism);
//   2. when no run is runnable, execute all scheduler events at the next
//      timestamp (frame deposits, timer wakes) — these mark runs runnable;
//   3. repeat until every run finished.
//
// Parallel batch safety: a run body only touches its own group's
// state (sessions, networks, link models) plus this executor, whose
// mutable state — including the shared Scheduler — is guarded by one
// mutex. Post-order between runs in a batch is not deterministic, but
// events of different runs touch disjoint networks and one run's posts
// keep their relative order, so per-group results never depend on the
// interleaving (the engine test suite and CI assert this).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/protocol_run.h"
#include "sim/scheduler.h"

namespace idgka::engine {

class Executor {
 public:
  /// The scheduler must outlive the executor. While any run is live, every
  /// access to the scheduler must go through this executor (post / now /
  /// drain); between drains the host thread may use it directly.
  explicit Executor(sim::Scheduler& scheduler);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers a run; its body starts executing at the next drain(). The
  /// returned reference is valid only until the drain() that finishes the
  /// run returns (finished runs are reaped once no queued event references
  /// them) — don't hold it across drains.
  ProtocolRun& submit(std::string name, ProtocolRun::Body body);

  /// Drives every submitted run to completion, interleaving their awaits
  /// by virtual-time events. Call from the host thread only (never from a
  /// run body). Rethrows the first run-body exception after all runs
  /// settle. Pending scheduler events beyond the last run's completion
  /// (straggler frames) stay queued, exactly like the blocking layer left
  /// them.
  void drain();

  /// Thread-safe event scheduling at now + delay. `owner` (may be null)
  /// attributes the event to a run for frame-arrival resumption: the
  /// event counts as one in-flight copy of that run until executed.
  /// Templated so the deposit closure and the in-flight accounting fold
  /// into one scheduler event (this sits on the per-copy hot path).
  ///
  /// Straggler events may stay queued in the scheduler past the
  /// executor's death (the scheduler outlives it by contract); the
  /// liveness token makes the engine-accounting half a no-op then — `fn`
  /// still runs and must guard its own captures (the sim transport's
  /// weak network token does).
  template <typename Fn>
  void post(sim::SimTime delay, Fn&& fn, ProtocolRun* owner) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (owner != nullptr) bump_in_flight(owner);
    scheduler_.after(delay, [this, fn = std::forward<Fn>(fn), owner,
                             alive = std::weak_ptr<const bool>(alive_)] {
      fn();
      if (owner != nullptr && !alive.expired()) settle_in_flight(owner);
    });
  }

  /// Thread-safe clock read.
  [[nodiscard]] sim::SimTime now() const;

  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }

  // --- Engine bookkeeping (for tests, benches and metrics) ---
  /// Total run resumptions performed.
  [[nodiscard]] std::uint64_t resumes() const;
  /// Widest same-instant batch of runs resumed together — > 1 proves that
  /// independent protocol runs genuinely interleaved on this clock.
  [[nodiscard]] std::size_t max_batch() const;
  /// Total runs ever submitted (finished runs are reaped once no queued
  /// event references them, so this is a counter, not a live-list size).
  [[nodiscard]] std::size_t run_count() const;

 private:
  friend class ProtocolRun;

  /// Marks a run runnable (mutex held). No-op when already queued/done.
  void make_runnable(ProtocolRun* run);
  /// Schedules a timer wake for `run` at `when` (mutex held): counted in
  /// pending_wakes_ and guarded by the liveness token.
  void schedule_wake(ProtocolRun* run, sim::SimTime when, std::uint64_t epoch);
  /// Timer-event wake; ignores stale epochs (mutex held via drain).
  void wake_from_timer(ProtocolRun* run, std::uint64_t epoch);
  /// In-flight copy accounting (bump under the mutex; settle runs inside
  /// drain's event execution and may resume an arrival-sensitive await).
  static void bump_in_flight(ProtocolRun* owner);
  void settle_in_flight(ProtocolRun* owner);
  /// Resumes one run and blocks until it parks or finishes.
  void step(ProtocolRun* run);

  sim::Scheduler& scheduler_;
  mutable std::mutex mutex_;
  std::condition_variable host_cv_;  ///< signalled when a run parks/finishes
  bool shutdown_ = false;
  std::uint64_t next_id_ = 0;
  std::uint64_t resumes_ = 0;
  std::size_t max_batch_ = 0;
  std::size_t submitted_ = 0;
  /// Expires with the executor; queued straggler events consult it before
  /// touching engine accounting state.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  /// Live runs. A finished run is reaped at the end of drain() once no
  /// queued event still references it (in-flight deposits and pending
  /// timer wakes both count), so long op-by-op scenarios stay O(live).
  std::vector<std::unique_ptr<ProtocolRun>> runs_;
  std::vector<ProtocolRun*> runnable_;
};

}  // namespace idgka::engine
