// Event-driven protocol engine: many concurrent ProtocolRuns, one virtual
// clock, sharded across OS worker threads.
//
// The Executor multiplexes any number of resumable protocol executions
// (ProtocolRun) over discrete-event sim::Scheduler shards — one scheduler
// (and one mutex) per shard, runs pinned to shards by id, shard 0 aliasing
// the caller's external scheduler so single-shard behaviour is exactly the
// historical single-scheduler engine. Run wake-ups are ordinary scheduler
// events, so the engine inherits the scheduler's determinism guarantee —
// equal-timestamp events fire in insertion (FIFO) order per shard — and a
// whole multi-group simulation stays a pure function of its seeds.
//
// drain() is the engine's main loop, a sequence of virtual-time barriers:
//
//   1. resume every currently-runnable run as one global batch — each
//      shard's slice resumes sequentially on that shard's worker thread,
//      different shards in parallel (IDGKA_THREADS=1 collapses to one
//      shard and strictly sequential resumption without changing any
//      result, which CI exploits to catch schedule-dependent
//      nondeterminism);
//   2. when no run is runnable, pick the globally earliest pending
//      timestamp T across all shards and execute every shard's events at
//      <= T in parallel (frame deposits, timer wakes) — these mark runs
//      runnable — then advance every shard clock to T;
//   3. repeat until every run finished.
//
// Because every barrier resumes the same global batch and executes the
// same global event set regardless of how runs are spread over shards, all
// engine metrics (resumes, max batch, per-run event order) are bit
// identical for every IDGKA_THREADS value.
//
// Parallel batch safety: a run body only touches its own group's state
// (sessions, networks, link models) plus this executor. Events a run posts
// or awaits live in its own shard's scheduler; the rare cross-shard post
// (a run posting on behalf of a run pinned elsewhere) is parked in the
// target shard's mutex-striped inbox and folded into its queue — in
// deterministic (time, owner, arrival) order — at the next barrier.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/protocol_run.h"
#include "sim/scheduler.h"

namespace idgka::engine {

class Executor {
 public:
  /// The scheduler must outlive the executor and becomes shard 0. While
  /// any run is live, every access to it must go through this executor
  /// (post / now / drain); between drains the host thread may use it
  /// directly. `shards` = 0 sizes the shard set from net::worker_count()
  /// (the IDGKA_THREADS environment variable); shards beyond the first own
  /// private schedulers created here.
  explicit Executor(sim::Scheduler& scheduler, std::size_t shards = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Registers a run; its body starts executing at the next drain(). The
  /// returned reference is valid only until the drain() that finishes the
  /// run returns (finished runs are reaped once no queued event references
  /// them) — don't hold it across drains.
  ProtocolRun& submit(std::string name, ProtocolRun::Body body);

  /// Drives every submitted run to completion, interleaving their awaits
  /// by virtual-time events. Call from the host thread only (never from a
  /// run body). Rethrows the first run-body exception after all runs
  /// settle. Pending scheduler events beyond the last run's completion
  /// (straggler frames) stay queued, exactly like the blocking layer left
  /// them.
  void drain();

  /// Thread-safe event scheduling at now + delay. `owner` (may be null)
  /// attributes the event to a run for frame-arrival resumption: the
  /// event counts as one in-flight copy of that run until executed, and
  /// the event lands in the owner's shard (null owner posts to shard 0).
  /// Templated so the deposit closure and the in-flight accounting fold
  /// into one scheduler event (this sits on the per-copy hot path).
  ///
  /// Straggler events may stay queued in the scheduler past the
  /// executor's death (the scheduler outlives it by contract); the
  /// liveness token makes the engine-accounting half a no-op then — `fn`
  /// still runs and must guard its own captures (the sim transport's
  /// weak network token does).
  template <typename Fn>
  void post(sim::SimTime delay, Fn&& fn, ProtocolRun* owner) {
    Shard& shard = owner != nullptr ? *shards_[owner->shard_idx_] : *shards_.front();
    if (owner != nullptr) owner->in_flight_.fetch_add(1, std::memory_order_relaxed);
    auto event = [this, fn = std::forward<Fn>(fn), owner,
                  alive = std::weak_ptr<const bool>(alive_)] {
      fn();
      if (owner != nullptr && !alive.expired()) settle_in_flight(owner);
    };
    ProtocolRun* cur = ProtocolRun::current();
    if (cur == nullptr || shards_[cur->shard_idx_].get() == &shard) {
      // Same-shard post (or a host-thread post while no phase is running):
      // insert directly under the shard mutex.
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.sched->after(delay, std::move(event));
    } else {
      // Cross-shard frame handoff: the target shard's scheduler may be
      // executing events on another thread right now, so park the event in
      // the shard's striped inbox; drain() folds inboxes into the queues
      // at the next virtual-time barrier. All shard clocks agree while any
      // run executes, so `when` is the same absolute time a same-shard
      // post would have produced.
      const sim::SimTime when = shards_[cur->shard_idx_]->sched->now() + delay;
      const std::lock_guard<std::mutex> lock(shard.inbox_mutex);
      shard.inbox.push_back({when, owner != nullptr ? owner->id_ : 0, std::move(event)});
    }
  }

  /// Thread-safe clock read (shard 0 — the frontier between drains, and
  /// equal to every other shard clock during one).
  [[nodiscard]] sim::SimTime now() const { return scheduler_.now(); }

  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }

  // --- Engine bookkeeping (for tests, benches and metrics) ---
  /// Total run resumptions performed — per-shard counters merged on read,
  /// identical for every shard count (each barrier resumes the same global
  /// batch regardless of sharding).
  [[nodiscard]] std::uint64_t resumes() const;
  /// Widest same-instant batch of runs resumed together across all shards
  /// — > 1 proves that independent protocol runs genuinely interleaved on
  /// this clock.
  [[nodiscard]] std::size_t max_batch() const;
  /// Total runs ever submitted (finished runs are reaped once no queued
  /// event references them, so this is a counter, not a live-list size).
  [[nodiscard]] std::size_t run_count() const;
  /// Scheduler events executed, summed over all shards.
  [[nodiscard]] std::uint64_t events_executed() const;
  /// Number of scheduler shards (1 unless IDGKA_THREADS/`shards` say more).
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  friend class ProtocolRun;

  /// One event-queue shard: a scheduler, the runs pinned to it, and the
  /// mutex guarding both. Shard 0 wraps the external scheduler.
  struct Shard {
    sim::Scheduler* sched = nullptr;
    std::unique_ptr<sim::Scheduler> owned;  ///< backing store, shards > 0
    std::mutex mutex;
    std::condition_variable host_cv;  ///< signalled when a run parks/finishes
    std::vector<ProtocolRun*> runnable;
    std::vector<ProtocolRun*> batch;  ///< this shard's slice of the current barrier
    std::uint64_t resumes = 0;  ///< steps performed here, merged on read
    /// Cross-shard posts parked until the next barrier (see post()).
    struct InboxEntry {
      sim::SimTime when;
      std::uint64_t owner_id;
      std::function<void()> fn;
    };
    std::mutex inbox_mutex;
    std::vector<InboxEntry> inbox;
  };

  /// Marks a run runnable (its shard mutex held). No-op when already
  /// queued/done.
  void make_runnable(ProtocolRun* run);
  /// Schedules a timer wake for `run` at `when` (its shard mutex held):
  /// counted in pending_wakes_ and guarded by the liveness token.
  void schedule_wake(ProtocolRun* run, sim::SimTime when, std::uint64_t epoch);
  /// Timer-event wake; ignores stale epochs (shard mutex held via drain).
  void wake_from_timer(ProtocolRun* run, std::uint64_t epoch);
  /// In-flight copy accounting (settle runs inside drain's event execution
  /// — owner shard mutex held — and may resume an arrival-sensitive await).
  void settle_in_flight(ProtocolRun* owner);
  /// Resumes one run and blocks until it parks or finishes.
  void step(ProtocolRun* run);

  /// Runs `phase(shard_index)` for every shard — inline for one shard,
  /// otherwise shard 0 on the calling (host) thread and the rest on the
  /// persistent shard workers; returns after all complete (rethrows the
  /// first phase exception).
  void run_phase(const std::function<void(std::size_t)>& phase);
  void ensure_workers();
  void shard_worker(std::size_t shard_idx);
  /// Folds parked cross-shard posts into their shards' queues in
  /// deterministic (when, owner, arrival) order. Barrier-only (host).
  void drain_inboxes();

  sim::Scheduler& scheduler_;  ///< == *shards_[0]->sched
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Guards the run list and submission counters (never taken while a
  /// shard mutex is held; shard mutexes nest inside it).
  mutable std::mutex mutex_;
  std::atomic<bool> shutdown_{false};
  std::uint64_t next_id_ = 0;
  std::size_t max_batch_ = 0;
  std::size_t submitted_ = 0;
  /// Expires with the executor; queued straggler events consult it before
  /// touching engine accounting state.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  /// Live runs. A finished run is reaped at the end of drain() once no
  /// queued event still references it (in-flight deposits and pending
  /// timer wakes both count), so long op-by-op scenarios stay O(live).
  std::vector<std::unique_ptr<ProtocolRun>> runs_;

  // --- Persistent shard-worker pool (lazy; only with > 1 shard) ---
  std::vector<std::thread> shard_threads_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;  ///< workers: new phase available
  std::condition_variable pool_done_cv_;  ///< host: all workers finished
  const std::function<void(std::size_t)>* phase_ = nullptr;
  std::uint64_t phase_gen_ = 0;
  std::size_t phase_remaining_ = 0;
  bool pool_stop_ = false;
  std::exception_ptr phase_error_;
};

}  // namespace idgka::engine
