// One resumable protocol execution.
//
// A ProtocolRun hosts a blocking protocol body (a membership operation, or
// a whole per-group scenario script) on its own cooperative thread. The
// body runs unmodified protocol code; whenever that code needs the medium
// to deliver (a reliable round's await, a scenario sleeping until its next
// trace event) the run *yields*: it parks its thread and hands control
// back to the engine::Executor, which resumes it later on a virtual-time
// timer event — or earlier, when the last in-flight frame copy the run
// posted lands (frame-arrival resumption, opt-in per await).
//
// Exactly one of {the executor's resume machinery, the run body} executes
// at any time per run. Runs are pinned to executor shards (run id modulo
// shard count); all of a run's park/wake state is guarded by its shard's
// mutex, and within a shard runs resume strictly sequentially — parallelism
// comes from resuming different shards' batches on different OS threads,
// which is safe because a run only ever touches its own sessions/networks
// plus the executor's locked state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "sim/scheduler.h"

namespace idgka::engine {

class Executor;

/// Thrown inside a yielded run when its executor is torn down before the
/// body finished; unwinds the body. Deliberately not derived from
/// std::exception so protocol-level catch blocks never swallow it.
struct RunAborted {};

class ProtocolRun {
 public:
  /// kReady: queued for (re)start; kRunning: body executing on the run
  /// thread; kWaiting: parked until a timer/arrival event; kFinished: body
  /// returned or threw.
  enum class State { kReady, kRunning, kWaiting, kFinished };
  using Body = std::function<void(ProtocolRun&)>;

  ~ProtocolRun();
  ProtocolRun(const ProtocolRun&) = delete;
  ProtocolRun& operator=(const ProtocolRun&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] Executor& executor() { return exec_; }

  // --- Callable only from the run body (on the run thread) ---

  /// Current virtual time (lock-free read of this run's shard clock; all
  /// shard clocks agree whenever any run body executes).
  [[nodiscard]] sim::SimTime now() const;

  /// Yields until virtual time `when`; no-op when `when` is not in the
  /// future. Resumed by a timer event.
  void sleep_until(sim::SimTime when);

  /// Yields one reliable-round await: resumed by a timer event at
  /// now + timeout — or earlier, when `resume_on_arrival` and every frame
  /// copy this run has posted through Executor::post() has landed (the
  /// channel is quiet, so draining now sees everything that will ever
  /// arrive and an incomplete round can retransmit immediately).
  void await_round(sim::SimTime timeout, bool resume_on_arrival);

  /// The run executing on the calling thread; nullptr on the host thread.
  /// Lets layers below the engine (the sim driver's network hooks) route a
  /// blocking wait through the owning run without threading a handle down
  /// the protocol call stack.
  [[nodiscard]] static ProtocolRun* current();

 private:
  friend class Executor;
  ProtocolRun(Executor& exec, std::uint64_t id, std::size_t shard_idx, std::string name,
              Body body);

  void thread_main();
  /// Parks the run thread until the executor resumes it (the run's shard
  /// mutex held by the caller); throws RunAborted on shutdown.
  void park(std::unique_lock<std::mutex>& lock);

  Executor& exec_;
  const std::uint64_t id_;
  /// Shard this run is pinned to (id % shard count), fixed for life: every
  /// event the run posts or awaits lives in that shard's scheduler.
  const std::size_t shard_idx_;
  const std::string name_;
  Body body_;
  std::thread thread_;

  // --- Guarded by the owning shard's mutex (atomics below are readable
  // --- cross-thread without it; transitions still happen under the mutex)
  std::atomic<State> state_{State::kReady};
  bool go_ = false;  ///< run thread may execute (handoff flag)
  bool queued_ = false;  ///< already in the shard's runnable queue
  std::condition_variable cv_;  ///< run thread waits here for go_
  /// Invalidates stale timer wakes: a timer event only resumes the run if
  /// it still carries the epoch the await registered.
  std::uint64_t wake_epoch_ = 0;
  /// Frame copies posted by this run still in flight (posted, not yet
  /// executed by the scheduler). Atomic because a cross-shard post bumps it
  /// from a foreign shard's thread without taking this shard's mutex.
  std::atomic<std::uint64_t> in_flight_{0};
  /// Timer wake events still queued in the scheduler (stale ones
  /// included); the run cannot be reaped while any remain.
  std::atomic<std::uint64_t> pending_wakes_{0};
  /// The current await resumes early when in_flight_ drains to zero.
  bool arrival_sensitive_ = false;
  std::exception_ptr error_;
#if IDGKA_OBS
  /// Per-run resume dimension (`engine.resumes{<run-name>}`), resolved
  /// once at submit so the resume hot path stays a relaxed atomic add.
  obs::Counter* resumes_counter_ = nullptr;
#endif
};

}  // namespace idgka::engine
