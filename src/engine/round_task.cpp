#include "engine/round_task.h"

#include <algorithm>

#include "obs/trace.h"

namespace idgka::engine {

RoundTask::RoundTask(net::Network& network, const std::vector<RoundSend>& sends,
                     const std::vector<std::uint32_t>& receivers, int retries)
    : network_(network), sends_(sends), receivers_(receivers), retries_(retries) {
  // Collection policy: a timed medium can deliver a straggler duplicate
  // from an earlier round during this round's drain window; collecting an
  // off-label message would feed the wrong payload schema into the
  // protocol, so those are ignored and retransmission covers the gap. A
  // straggler carrying the *same* label (a previous operation's run of
  // this round) is indistinguishable to a real receiver and is
  // deliberately collected — the paper's protocols bind freshness into the
  // challenge verification, which rejects the stale data and fails the run
  // rather than agreeing on a mixed-epoch key.
  for (const RoundSend& send : sends_) {
    round_label_.emplace(send.message.sender, &send.message.type);
  }
  OBS_COUNT("engine.rounds", 1);
#if IDGKA_OBS
  // Round span: kBegin here, kEnd when the machine reaches kDone (or from
  // the destructor when an exception unwinds the round mid-flight).
  if (obs::trace_enabled()) {
    span_open_ = true;
    obs::emit(obs::Phase::kBegin, "gka.round", "gka",
              static_cast<std::uint64_t>(sends_.size()));
  }
#endif
}

RoundTask::~RoundTask() { close_span(); }

void RoundTask::close_span() {
#if IDGKA_OBS
  if (span_open_) {
    span_open_ = false;
    obs::emit(obs::Phase::kEnd, "gka.round", "gka");
  }
#endif
}

bool RoundTask::on_label(const net::Message& msg) const {
  const auto it = round_label_.find(msg.sender);
  return it != round_label_.end() && *it->second == msg.type;
}

bool RoundTask::expects(std::uint32_t receiver, const RoundSend& send) const {
  if (send.message.sender == receiver) return false;
  if (send.message.recipient.has_value()) return *send.message.recipient == receiver;
  return std::find(send.group.begin(), send.group.end(), receiver) != send.group.end();
}

bool RoundTask::missing_somewhere(const RoundSend& send) const {
  for (const std::uint32_t rx : receivers_) {
    const auto it = result_.collected.find(rx);
    if (!expects(rx, send)) continue;
    if (it == result_.collected.end() || !it->second.contains(send.message.sender)) {
      return true;
    }
  }
  return false;
}

bool RoundTask::transmit_missing() {
  bool sent_any = false;
  for (const RoundSend& send : sends_) {
    if (!missing_somewhere(send)) continue;
    sent_any = true;
    if (attempt_ > 0) {
      ++result_.retransmissions;
      OBS_COUNT("engine.retransmissions", 1);
    }
    if (send.message.recipient.has_value()) {
      network_.unicast(send.message);
    } else {
      network_.broadcast(send.message, send.group);
    }
  }
  return sent_any;
}

void RoundTask::drain_all() {
  // Keep the first on-label copy of each (sender, receiver) pair.
  for (const std::uint32_t rx : receivers_) {
    for (net::Message& msg : network_.drain(rx)) {
      if (!on_label(msg)) continue;  // straggler from an earlier round
      result_.collected[rx].try_emplace(msg.sender, std::move(msg));
    }
  }
}

RoundTask::State RoundTask::step() {
  switch (state_) {
    case State::kTransmit:
    case State::kRetransmit:
      if (!transmit_missing()) {
        result_.complete = true;
        state_ = State::kDone;
        close_span();
        break;
      }
      ++attempt_;
      OBS_INSTANT_ARG("round.transmit", "gka", static_cast<std::uint64_t>(attempt_));
      state_ = State::kAwait;
      break;

    case State::kAwait: {
      // The caller let the medium deliver; drain and decide.
      state_ = State::kDrain;
      drain_all();
      OBS_INSTANT("round.drain", "gka");
      bool all_done = true;
      for (const RoundSend& send : sends_) {
        if (missing_somewhere(send)) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        result_.complete = true;
        state_ = State::kDone;
        close_span();
      } else if (attempt_ > retries_) {
        state_ = State::kDone;  // incomplete after cap
        close_span();
      } else {
        state_ = State::kRetransmit;
        OBS_INSTANT_ARG("round.retransmit", "gka", static_cast<std::uint64_t>(attempt_));
      }
      break;
    }

    case State::kDrain:
    case State::kDone:
      break;  // terminal / transient; nothing to advance
  }
  return state_;
}

}  // namespace idgka::engine
