#include "engine/executor.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/parallel.h"
#include "obs/trace.h"

namespace idgka::engine {

namespace {
thread_local ProtocolRun* t_current_run = nullptr;
}  // namespace

// ------------------------------------------------------------- ProtocolRun

ProtocolRun::ProtocolRun(Executor& exec, std::uint64_t id, std::string name, Body body)
    : exec_(exec), id_(id), name_(std::move(name)), body_(std::move(body)) {
#if IDGKA_OBS
  resumes_counter_ = &obs::Registry::global().counter("engine.resumes", name_);
#endif
  thread_ = std::thread([this] { thread_main(); });
}

ProtocolRun::~ProtocolRun() {
  if (thread_.joinable()) thread_.join();
}

ProtocolRun* ProtocolRun::current() { return t_current_run; }

void ProtocolRun::thread_main() {
  std::unique_lock<std::mutex> lock(exec_.mutex_);
  cv_.wait(lock, [this] { return go_ || exec_.shutdown_; });
  if (exec_.shutdown_) {
    state_ = State::kFinished;
    go_ = false;
    exec_.host_cv_.notify_all();
    return;
  }
  state_ = State::kRunning;
  lock.unlock();

  t_current_run = this;
#if IDGKA_OBS
  // Deterministic export track: run ids are assigned in submission order,
  // so the track name — unlike the OS thread id or the ring registration
  // order — is a pure function of the workload.
  if (obs::trace_enabled()) {
    obs::set_thread_track(name_ + "#" + std::to_string(id_));
  }
#endif
  {
    // Scoped so the span's end event is emitted while this run still has
    // the floor (before the host thread can resume and advance the clock).
    OBS_SPAN("engine.run", "engine");
    try {
      body_(*this);
    } catch (const RunAborted&) {
      // Executor teardown unwound the body; nothing to record.
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  t_current_run = nullptr;
  body_ = nullptr;  // release captured state promptly

  lock.lock();
  state_ = State::kFinished;
  go_ = false;
  exec_.host_cv_.notify_all();
}

void ProtocolRun::park(std::unique_lock<std::mutex>& lock) {
  // Emitted before the handoff (and the resume instant after it): both
  // land while this run has the floor, so their virtual timestamps are
  // deterministic.
  OBS_INSTANT("engine.park", "engine");
  state_ = State::kWaiting;
  go_ = false;
  exec_.host_cv_.notify_all();
  cv_.wait(lock, [this] { return go_ || exec_.shutdown_; });
  if (exec_.shutdown_) throw RunAborted{};
  state_ = State::kRunning;
  OBS_INSTANT("engine.resume", "engine");
}

sim::SimTime ProtocolRun::now() const { return exec_.now(); }

void ProtocolRun::sleep_until(sim::SimTime when) {
  std::unique_lock<std::mutex> lock(exec_.mutex_);
  if (when <= exec_.scheduler_.now()) return;
  arrival_sensitive_ = false;
  exec_.schedule_wake(this, when, ++wake_epoch_);
  park(lock);
}

void ProtocolRun::await_round(sim::SimTime timeout, bool resume_on_arrival) {
  std::unique_lock<std::mutex> lock(exec_.mutex_);
  if (resume_on_arrival && in_flight_ == 0) {
    // Channel already quiet: nothing this run posted is still in flight,
    // so nothing more will ever arrive for this await — drain immediately
    // (an incomplete round then retransmits without burning a timeout).
    return;
  }
  arrival_sensitive_ = resume_on_arrival;
  exec_.schedule_wake(this, exec_.scheduler_.now() + timeout, ++wake_epoch_);
  park(lock);
  arrival_sensitive_ = false;
}

// ---------------------------------------------------------------- Executor

Executor::Executor(sim::Scheduler& scheduler) : scheduler_(scheduler) {}

Executor::~Executor() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (const auto& run : runs_) run->cv_.notify_all();
  }
  for (const auto& run : runs_) {
    if (run->thread_.joinable()) run->thread_.join();
  }
}

ProtocolRun& Executor::submit(std::string name, ProtocolRun::Body body) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) throw std::logic_error("engine::Executor: submit after shutdown");
  runs_.emplace_back(new ProtocolRun(*this, next_id_++, std::move(name), std::move(body)));
  ++submitted_;
  ProtocolRun* run = runs_.back().get();
  make_runnable(run);
  return *run;
}

void Executor::make_runnable(ProtocolRun* run) {
  if (run->queued_ || run->state_ == ProtocolRun::State::kFinished ||
      run->state_ == ProtocolRun::State::kRunning) {
    return;
  }
  run->queued_ = true;
  runnable_.push_back(run);
}

void Executor::schedule_wake(ProtocolRun* run, sim::SimTime when, std::uint64_t epoch) {
  ++run->pending_wakes_;
  scheduler_.at(when, [this, run, epoch, alive = std::weak_ptr<const bool>(alive_)] {
    if (alive.expired()) return;  // straggler outliving the executor
    --run->pending_wakes_;
    wake_from_timer(run, epoch);
  });
}

void Executor::wake_from_timer(ProtocolRun* run, std::uint64_t epoch) {
  // Runs inside drain()'s event execution, mutex held. A stale epoch means
  // the await this timer belonged to was already resumed (frame arrival).
  if (epoch != run->wake_epoch_ || run->state_ != ProtocolRun::State::kWaiting) return;
  make_runnable(run);
}

void Executor::step(ProtocolRun* run) {
#if IDGKA_OBS
  // Same semantics as the aggregate engine.resumes bump in drain(), broken
  // out by run name; the counter was cached at submit (relaxed add only).
  run->resumes_counter_->add(1);
#endif
  std::unique_lock<std::mutex> lock(mutex_);
  run->go_ = true;
  run->cv_.notify_one();
  host_cv_.wait(lock, [run] { return !run->go_; });
}

void Executor::drain() {
  if (ProtocolRun::current() != nullptr) {
    throw std::logic_error("engine::Executor: drain() called from a run body");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!runnable_.empty()) {
      std::vector<ProtocolRun*> batch;
      batch.swap(runnable_);
      for (ProtocolRun* run : batch) run->queued_ = false;
      max_batch_ = std::max(max_batch_, batch.size());
      resumes_ += batch.size();
      // Mirror the engine bookkeeping into the process-wide registry (same
      // semantics as resumes()/max_batch(), summed over all executors).
      OBS_COUNT("engine.resumes", batch.size());
      OBS_COUNT("engine.batches", 1);
#if IDGKA_OBS
      {
        static obs::Gauge& max_batch_gauge =
            obs::Registry::global().gauge("engine.max_batch");
        max_batch_gauge.max_of(static_cast<std::int64_t>(batch.size()));
      }
#endif
      OBS_INSTANT_ARG("engine.batch", "engine", batch.size());
      lock.unlock();
      // The whole same-instant batch resumes across the worker pool; with
      // IDGKA_THREADS=1 this degenerates to strictly sequential resumption
      // in queue order — bit-identical results either way.
      if (batch.size() == 1) {
        step(batch.front());
      } else {
        net::parallel_for_each(batch.size(),
                               [this, &batch](std::size_t i) { step(batch[i]); });
      }
      lock.lock();
      continue;
    }
    const bool all_finished =
        std::all_of(runs_.begin(), runs_.end(), [](const auto& run) {
          return run->state_ == ProtocolRun::State::kFinished;
        });
    if (all_finished) break;
    if (scheduler_.pending() > 0) {
      // Execute every event at the next timestamp (frame deposits, timer
      // wakes — including same-timestamp cascades). Wake events mark runs
      // runnable; the next iteration resumes them as one batch.
      scheduler_.run_until(*scheduler_.next_event_time());
      continue;
    }
    throw std::logic_error(
        "engine::Executor: all runs waiting but no pending events (lost wakeup?)");
  }

  // Keep the first body error for rethrow and clear ALL of them — a stale
  // error must never be re-attributed to a later, unrelated drain.
  std::exception_ptr first_error;
  for (const auto& run : runs_) {
    if (run->error_) {
      if (!first_error) first_error = run->error_;
      run->error_ = nullptr;
    }
  }
  // Reap finished runs no queued event references any more (straggler
  // deposits and stale timer wakes both hold ProtocolRun pointers); the
  // rest keep their objects until those events fire or the executor dies.
  std::vector<std::unique_ptr<ProtocolRun>> reaped;
  const auto referenced = [](const std::unique_ptr<ProtocolRun>& run) {
    return run->in_flight_ > 0 || run->pending_wakes_ > 0;
  };
  for (auto it = runs_.begin(); it != runs_.end();) {
    if (!referenced(*it)) {
      reaped.push_back(std::move(*it));
      it = runs_.erase(it);
    } else {
      ++it;
    }
  }
  lock.unlock();
  // Join thread handles outside the mutex (a finishing thread briefly
  // re-acquires it on its way out).
  for (const auto& run : runs_) {
    if (run->thread_.joinable()) run->thread_.join();
  }
  for (const auto& run : reaped) {
    if (run->thread_.joinable()) run->thread_.join();
  }
  reaped.clear();
  if (first_error) std::rethrow_exception(first_error);
}

void Executor::bump_in_flight(ProtocolRun* owner) { ++owner->in_flight_; }

void Executor::settle_in_flight(ProtocolRun* owner) {
  --owner->in_flight_;
  if (owner->in_flight_ == 0 && owner->arrival_sensitive_ &&
      owner->state_ == ProtocolRun::State::kWaiting) {
    ++owner->wake_epoch_;  // invalidate the pending timeout wake
    make_runnable(owner);
  }
}

sim::SimTime Executor::now() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return scheduler_.now();
}

std::uint64_t Executor::resumes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resumes_;
}

std::size_t Executor::max_batch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_batch_;
}

std::size_t Executor::run_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

}  // namespace idgka::engine
