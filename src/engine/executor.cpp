#include "engine/executor.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "net/parallel.h"
#include "obs/trace.h"

namespace idgka::engine {

namespace {
thread_local ProtocolRun* t_current_run = nullptr;

constexpr std::size_t kMaxShards = 16;
}  // namespace

// ------------------------------------------------------------- ProtocolRun

ProtocolRun::ProtocolRun(Executor& exec, std::uint64_t id, std::size_t shard_idx,
                         std::string name, Body body)
    : exec_(exec), id_(id), shard_idx_(shard_idx), name_(std::move(name)),
      body_(std::move(body)) {
#if IDGKA_OBS
  resumes_counter_ = &obs::Registry::global().counter("engine.resumes", name_);
#endif
  thread_ = std::thread([this] { thread_main(); });
}

ProtocolRun::~ProtocolRun() {
  if (thread_.joinable()) thread_.join();
}

ProtocolRun* ProtocolRun::current() { return t_current_run; }

void ProtocolRun::thread_main() {
  Executor::Shard& shard = *exec_.shards_[shard_idx_];
  std::unique_lock<std::mutex> lock(shard.mutex);
  cv_.wait(lock, [this] {
    return go_ || exec_.shutdown_.load(std::memory_order_relaxed);
  });
  if (exec_.shutdown_.load(std::memory_order_relaxed)) {
    state_.store(State::kFinished, std::memory_order_relaxed);
    go_ = false;
    shard.host_cv.notify_all();
    return;
  }
  state_.store(State::kRunning, std::memory_order_relaxed);
  lock.unlock();

  t_current_run = this;
#if IDGKA_OBS
  // Deterministic export track: run ids are assigned in submission order,
  // so the track name — unlike the OS thread id or the ring registration
  // order — is a pure function of the workload.
  if (obs::trace_enabled()) {
    obs::set_thread_track(name_ + "#" + std::to_string(id_));
  }
#endif
  {
    // Scoped so the span's end event is emitted while this run still has
    // the floor (before the host thread can resume and advance the clock).
    OBS_SPAN("engine.run", "engine");
    try {
      body_(*this);
    } catch (const RunAborted&) {
      // Executor teardown unwound the body; nothing to record.
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  t_current_run = nullptr;
  body_ = nullptr;  // release captured state promptly

  lock.lock();
  state_.store(State::kFinished, std::memory_order_relaxed);
  go_ = false;
  shard.host_cv.notify_all();
}

void ProtocolRun::park(std::unique_lock<std::mutex>& lock) {
  // Emitted before the handoff (and the resume instant after it): both
  // land while this run has the floor, so their virtual timestamps are
  // deterministic.
  OBS_INSTANT("engine.park", "engine");
  Executor::Shard& shard = *exec_.shards_[shard_idx_];
  state_.store(State::kWaiting, std::memory_order_relaxed);
  go_ = false;
  shard.host_cv.notify_all();
  cv_.wait(lock, [this] {
    return go_ || exec_.shutdown_.load(std::memory_order_relaxed);
  });
  if (exec_.shutdown_.load(std::memory_order_relaxed)) throw RunAborted{};
  state_.store(State::kRunning, std::memory_order_relaxed);
  OBS_INSTANT("engine.resume", "engine");
}

sim::SimTime ProtocolRun::now() const { return exec_.shards_[shard_idx_]->sched->now(); }

void ProtocolRun::sleep_until(sim::SimTime when) {
  Executor::Shard& shard = *exec_.shards_[shard_idx_];
  std::unique_lock<std::mutex> lock(shard.mutex);
  if (when <= shard.sched->now()) return;
  arrival_sensitive_ = false;
  exec_.schedule_wake(this, when, ++wake_epoch_);
  park(lock);
}

void ProtocolRun::await_round(sim::SimTime timeout, bool resume_on_arrival) {
  Executor::Shard& shard = *exec_.shards_[shard_idx_];
  std::unique_lock<std::mutex> lock(shard.mutex);
  if (resume_on_arrival && in_flight_.load(std::memory_order_relaxed) == 0) {
    // Channel already quiet: nothing this run posted is still in flight,
    // so nothing more will ever arrive for this await — drain immediately
    // (an incomplete round then retransmits without burning a timeout).
    return;
  }
  arrival_sensitive_ = resume_on_arrival;
  exec_.schedule_wake(this, shard.sched->now() + timeout, ++wake_epoch_);
  park(lock);
  arrival_sensitive_ = false;
}

// ---------------------------------------------------------------- Executor

Executor::Executor(sim::Scheduler& scheduler, std::size_t shards) : scheduler_(scheduler) {
  std::size_t count = shards != 0 ? shards : net::worker_count();
  count = std::max<std::size_t>(1, std::min(count, kMaxShards));
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    auto shard = std::make_unique<Shard>();
    if (s == 0) {
      shard->sched = &scheduler_;
    } else {
      shard->owned = std::make_unique<sim::Scheduler>();
      shard->sched = shard->owned.get();
    }
    shards_.push_back(std::move(shard));
  }
}

Executor::~Executor() {
  shutdown_.store(true, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& run : runs_) {
      // Acquire/release the run's shard mutex so a thread entering a cv
      // wait either sees shutdown_ in the predicate or gets the notify.
      const std::lock_guard<std::mutex> shard_lock(shards_[run->shard_idx_]->mutex);
      run->cv_.notify_all();
    }
  }
  for (const auto& run : runs_) {
    if (run->thread_.joinable()) run->thread_.join();
  }
  if (!shard_threads_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(pool_mutex_);
      pool_stop_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& t : shard_threads_) t.join();
  }
}

ProtocolRun& Executor::submit(std::string name, ProtocolRun::Body body) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_.load(std::memory_order_relaxed)) {
    throw std::logic_error("engine::Executor: submit after shutdown");
  }
  const std::uint64_t id = next_id_++;
  const std::size_t shard_idx = static_cast<std::size_t>(id % shards_.size());
  runs_.emplace_back(new ProtocolRun(*this, id, shard_idx, std::move(name), std::move(body)));
  ++submitted_;
  ProtocolRun* run = runs_.back().get();
  {
    const std::lock_guard<std::mutex> shard_lock(shards_[shard_idx]->mutex);
    make_runnable(run);
  }
  return *run;
}

void Executor::make_runnable(ProtocolRun* run) {
  const ProtocolRun::State state = run->state_.load(std::memory_order_relaxed);
  if (run->queued_ || state == ProtocolRun::State::kFinished ||
      state == ProtocolRun::State::kRunning) {
    return;
  }
  run->queued_ = true;
  shards_[run->shard_idx_]->runnable.push_back(run);
}

void Executor::schedule_wake(ProtocolRun* run, sim::SimTime when, std::uint64_t epoch) {
  run->pending_wakes_.fetch_add(1, std::memory_order_relaxed);
  shards_[run->shard_idx_]->sched->at(
      when, [this, run, epoch, alive = std::weak_ptr<const bool>(alive_)] {
        if (alive.expired()) return;  // straggler outliving the executor
        run->pending_wakes_.fetch_sub(1, std::memory_order_relaxed);
        wake_from_timer(run, epoch);
      });
}

void Executor::wake_from_timer(ProtocolRun* run, std::uint64_t epoch) {
  // Runs inside drain()'s event execution, shard mutex held. A stale epoch
  // means the await this timer belonged to was already resumed (arrival).
  if (epoch != run->wake_epoch_ ||
      run->state_.load(std::memory_order_relaxed) != ProtocolRun::State::kWaiting) {
    return;
  }
  make_runnable(run);
}

void Executor::step(ProtocolRun* run) {
#if IDGKA_OBS
  // Same semantics as the aggregate engine.resumes bump in drain(), broken
  // out by run name; the counter was cached at submit (relaxed add only).
  run->resumes_counter_->add(1);
#endif
  Shard& shard = *shards_[run->shard_idx_];
  std::unique_lock<std::mutex> lock(shard.mutex);
  run->go_ = true;
  run->cv_.notify_one();
  shard.host_cv.wait(lock, [run] { return !run->go_; });
}

void Executor::ensure_workers() {
  if (!shard_threads_.empty() || shards_.size() == 1) return;
  shard_threads_.reserve(shards_.size() - 1);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    shard_threads_.emplace_back([this, s] { shard_worker(s); });
  }
}

void Executor::shard_worker(std::size_t shard_idx) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(pool_mutex_);
  for (;;) {
    pool_cv_.wait(lock, [&] { return pool_stop_ || phase_gen_ != seen; });
    if (pool_stop_) return;
    seen = phase_gen_;
    const std::function<void(std::size_t)>* phase = phase_;
    lock.unlock();
    try {
      (*phase)(shard_idx);
    } catch (...) {
      lock.lock();
      if (!phase_error_) phase_error_ = std::current_exception();
      lock.unlock();
    }
    lock.lock();
    if (--phase_remaining_ == 0) pool_done_cv_.notify_all();
  }
}

void Executor::run_phase(const std::function<void(std::size_t)>& phase) {
  if (shards_.size() == 1) {
    phase(0);
    return;
  }
  ensure_workers();
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    phase_ = &phase;
    phase_remaining_ = shards_.size() - 1;
    ++phase_gen_;
  }
  pool_cv_.notify_all();
  std::exception_ptr host_error;
  try {
    phase(0);
  } catch (...) {
    host_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(pool_mutex_);
  pool_done_cv_.wait(lock, [this] { return phase_remaining_ == 0; });
  std::exception_ptr error = host_error ? host_error : phase_error_;
  phase_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void Executor::drain_inboxes() {
  for (auto& shard : shards_) {
    std::vector<Shard::InboxEntry> pending;
    {
      const std::lock_guard<std::mutex> lock(shard->inbox_mutex);
      pending.swap(shard->inbox);
    }
    if (pending.empty()) continue;
    // Arrival order across posting shards is scheduling noise; (when,
    // owner, arrival) puts the fold-in order — and therefore the FIFO
    // tie-break downstream — back under the workload's control.
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Shard::InboxEntry& a, const Shard::InboxEntry& b) {
                       return a.when != b.when ? a.when < b.when : a.owner_id < b.owner_id;
                     });
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto& entry : pending) shard->sched->at(entry.when, std::move(entry.fn));
  }
}

void Executor::drain() {
  if (ProtocolRun::current() != nullptr) {
    throw std::logic_error("engine::Executor: drain() called from a run body");
  }
  // Between drains the host may advance the external scheduler (shard 0)
  // directly; bring every shard clock to that frontier so the first resumed
  // run reads the same virtual time from any shard.
  sim::SimTime frontier = 0;
  for (const auto& shard : shards_) frontier = std::max(frontier, shard->sched->now());
  for (const auto& shard : shards_) shard->sched->advance_to(frontier);

  for (;;) {
    drain_inboxes();
    // Collect the global same-instant batch: each shard's runnable slice.
    std::size_t total = 0;
    for (auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      shard->batch.clear();
      shard->batch.swap(shard->runnable);
      for (ProtocolRun* run : shard->batch) run->queued_ = false;
      total += shard->batch.size();
    }
    if (total > 0) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        max_batch_ = std::max(max_batch_, total);
      }
      // Mirror the engine bookkeeping into the process-wide registry (same
      // semantics as resumes()/max_batch(), summed over all executors).
      OBS_COUNT("engine.resumes", total);
      OBS_COUNT("engine.batches", 1);
#if IDGKA_OBS
      {
        static obs::Gauge& max_batch_gauge =
            obs::Registry::global().gauge("engine.max_batch");
        max_batch_gauge.max_of(static_cast<std::int64_t>(total));
      }
#endif
      OBS_INSTANT_ARG("engine.batch", "engine", total);
      // Each shard resumes its slice sequentially in queue order; shards
      // run on their own worker threads. With one shard this degenerates
      // to strictly sequential resumption — bit-identical results either
      // way.
      run_phase([this](std::size_t s) {
        Shard& shard = *shards_[s];
        for (ProtocolRun* run : shard.batch) step(run);
        shard.resumes += shard.batch.size();
      });
      continue;
    }
    bool all_finished;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      all_finished = std::all_of(runs_.begin(), runs_.end(), [](const auto& run) {
        return run->state_.load(std::memory_order_relaxed) == ProtocolRun::State::kFinished;
      });
    }
    if (all_finished) break;
    // Globally earliest pending timestamp across all shards.
    std::optional<sim::SimTime> next;
    for (auto& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      if (const auto t = shard->sched->next_event_time()) {
        next = next.has_value() ? std::min(*next, *t) : *t;
      }
    }
    if (next.has_value()) {
      // Execute every shard's events at the barrier timestamp (frame
      // deposits, timer wakes — including same-timestamp cascades), then
      // advance every shard clock to it (run_until's trailing advance).
      // Wake events mark runs runnable; the next iteration resumes them
      // as one global batch.
      const sim::SimTime barrier = *next;
      run_phase([this, barrier](std::size_t s) {
        Shard& shard = *shards_[s];
        const std::lock_guard<std::mutex> lock(shard.mutex);
        shard.sched->run_until(barrier);
      });
      continue;
    }
    throw std::logic_error(
        "engine::Executor: all runs waiting but no pending events (lost wakeup?)");
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // Keep the first body error for rethrow and clear ALL of them — a stale
  // error must never be re-attributed to a later, unrelated drain.
  std::exception_ptr first_error;
  for (const auto& run : runs_) {
    if (run->error_) {
      if (!first_error) first_error = run->error_;
      run->error_ = nullptr;
    }
  }
  // Reap finished runs no queued event references any more (straggler
  // deposits and stale timer wakes both hold ProtocolRun pointers); the
  // rest keep their objects until those events fire or the executor dies.
  std::vector<std::unique_ptr<ProtocolRun>> reaped;
  const auto referenced = [](const std::unique_ptr<ProtocolRun>& run) {
    return run->in_flight_.load(std::memory_order_relaxed) > 0 ||
           run->pending_wakes_.load(std::memory_order_relaxed) > 0;
  };
  for (auto it = runs_.begin(); it != runs_.end();) {
    if (!referenced(*it)) {
      reaped.push_back(std::move(*it));
      it = runs_.erase(it);
    } else {
      ++it;
    }
  }
  lock.unlock();
  // Join thread handles outside the mutex (a finishing thread briefly
  // re-acquires its shard mutex on its way out).
  for (const auto& run : runs_) {
    if (run->thread_.joinable()) run->thread_.join();
  }
  for (const auto& run : reaped) {
    if (run->thread_.joinable()) run->thread_.join();
  }
  reaped.clear();
  if (first_error) std::rethrow_exception(first_error);
}

void Executor::settle_in_flight(ProtocolRun* owner) {
  // Owner's shard mutex held (its scheduler events execute under it).
  if (owner->in_flight_.fetch_sub(1, std::memory_order_relaxed) == 1 &&
      owner->arrival_sensitive_ &&
      owner->state_.load(std::memory_order_relaxed) == ProtocolRun::State::kWaiting) {
    ++owner->wake_epoch_;  // invalidate the pending timeout wake
    make_runnable(owner);
  }
}

std::uint64_t Executor::resumes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->resumes;
  }
  return total;
}

std::size_t Executor::max_batch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_batch_;
}

std::size_t Executor::run_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

std::uint64_t Executor::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->sched->executed();
  }
  return total;
}

}  // namespace idgka::engine
