// Resumable reliable-round state machine.
//
// One RoundTask is one protocol round run to completion over a lossy
// broadcast medium: every sender transmits, the task waits for the medium
// to deliver, receivers drain, and senders whose message failed to reach
// some receiver retransmit until every inbox is complete or the retry cap
// is hit. The paper's protocols assume exactly this reliability layer
// ("if equation (2) is incorrect, then all members will retransmit again").
//
// Unlike a blocking loop, the task never waits itself: step() advances
// through kTransmit -> kAwait -> kDrain -> kRetransmit/kDone and *returns*
// at kAwait, handing the wait to the caller. Two callers exist:
//
//   * gka::exchange_round — the synchronous shim: loops step() and maps
//     each kAwait onto Network::await_delivery(), reproducing the seed
//     blocking behaviour exactly;
//   * engine::Executor — resumes the owning ProtocolRun on virtual-time
//     timer events (and, opportunistically, when the last in-flight frame
//     copy lands), so many rounds of many groups interleave on one clock.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"

namespace idgka::engine {

/// One sender's contribution to a round.
struct RoundSend {
  net::Message message;
  /// Receiver set for the broadcast (ring or subgroup).
  std::vector<std::uint32_t> group;
};

/// Result of a reliable round: per-receiver, per-sender message map.
struct RoundResult {
  bool complete = false;
  int retransmissions = 0;
  /// collected[receiver][sender] = message.
  std::map<std::uint32_t, std::map<std::uint32_t, net::Message>> collected;
};

class RoundTask {
 public:
  /// Explicit round states. kAwait is the only state in which the task
  /// expects the caller to let the medium deliver before stepping again;
  /// kRetransmit is the observable "drained but incomplete, attempts
  /// remain" state between a failed drain and the next transmit.
  enum class State { kTransmit, kAwait, kDrain, kRetransmit, kDone };

  /// `sends` and `receivers` must outlive the task (the callers keep both
  /// on their stack frames). `retries` is the resolved retransmission
  /// budget — resolve precedence with Network::effective_retry_cap()
  /// *before* constructing the task; the task itself never consults the
  /// network's cap.
  RoundTask(net::Network& network, const std::vector<RoundSend>& sends,
            const std::vector<std::uint32_t>& receivers, int retries);
  ~RoundTask();

  /// Advances the machine: transmits missing sends (kTransmit/kRetransmit)
  /// or drains inboxes and checks completion (after an await). Returns the
  /// state the task is now parked in — kAwait (caller must let the medium
  /// deliver, then call step() again), kRetransmit (call step() again to
  /// retransmit; an engine caller may interpose scheduling here), or kDone.
  State step();

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool done() const { return state_ == State::kDone; }
  /// Attempts transmitted so far (1 = first transmit, no retransmission).
  [[nodiscard]] int attempts() const { return attempt_; }

  /// Moves the result out; only meaningful once done().
  [[nodiscard]] RoundResult take_result() { return std::move(result_); }

 private:
  [[nodiscard]] bool on_label(const net::Message& msg) const;
  [[nodiscard]] bool expects(std::uint32_t receiver, const RoundSend& send) const;
  [[nodiscard]] bool missing_somewhere(const RoundSend& send) const;
  /// Transmits every send still missing at one or more receivers; returns
  /// whether anything went on the air.
  bool transmit_missing();
  void drain_all();
  /// Ends the round's trace span exactly once (reaching kDone, or unwind).
  void close_span();

  net::Network& network_;
  const std::vector<RoundSend>& sends_;
  const std::vector<std::uint32_t>& receivers_;
  int retries_;
  int attempt_ = 0;
  State state_ = State::kTransmit;
  bool span_open_ = false;  ///< trace span began in the ctor, not yet ended
  /// Round label each sender transmits under (sender -> message type); a
  /// drained message off its sender's label is a straggler duplicate from
  /// an earlier round and is ignored (see the collection-policy note in
  /// round_task.cpp).
  std::map<std::uint32_t, const std::string*> round_label_;
  RoundResult result_;
};

}  // namespace idgka::engine
