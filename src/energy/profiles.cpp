#include "energy/profiles.h"

namespace idgka::energy {

namespace {

constexpr double kStrongArmPowerMw = 240.0;  // Carman et al.
constexpr double kP3BaselineMs = 8.8;        // MIRACL mod-exp on P-III 450
constexpr double kStrongArmModExpMs = 37.92;

// Symmetric/hash per-block costs. The paper only states these are "orders of
// magnitude lower than modular exponentiations" (citing Carman et al. and
// Hodjat-Verbauwhede); we charge ~1.6 uJ per AES block and ~1.0 uJ per
// SHA-256 block on the StrongARM, consistent with those reports. They are
// negligible against the 9.1 mJ mod-exp, exactly as the paper assumes.
constexpr double kAesBlockMj = 0.0016;
constexpr double kHashBlockMj = 0.0010;

CpuProfile make_strongarm() {
  CpuProfile p;
  p.name = "StrongARM-133MHz";
  auto set = [&](Op op, double mj, double ms) {
    p.op_mj[static_cast<std::size_t>(op)] = mj;
    p.op_ms[static_cast<std::size_t>(op)] = ms;
  };
  // Paper Table 2 (mJ, ms).
  set(Op::kModExp, 9.1, 37.92);
  set(Op::kMapToPoint, 18.4, 76.67);
  set(Op::kTatePairing, 47.0, 191.5);
  set(Op::kScalarMul, 8.8, 36.67);
  set(Op::kSignGenDsa, 9.1, 37.92);
  set(Op::kSignGenEcdsa, 8.8, 36.67);
  set(Op::kSignGenSok, 17.6, 73.33);
  set(Op::kSignGenGq, 18.2, 75.83);
  set(Op::kSignVerDsa, 11.1, 46.33);
  set(Op::kSignVerEcdsa, 10.9, 45.42);
  set(Op::kSignVerSok, 137.7, 573.75);
  set(Op::kSignVerGq, 18.2, 75.83);
  // A certificate check is one signature verification under the CA's
  // algorithm (the paper's baselines use same-algorithm CAs).
  set(Op::kCertVerifyDsa, 11.1, 46.33);
  set(Op::kCertVerifyEcdsa, 10.9, 45.42);
  set(Op::kSymEncBlock, kAesBlockMj, kAesBlockMj / kStrongArmPowerMw * 1000.0);
  set(Op::kSymDecBlock, kAesBlockMj, kAesBlockMj / kStrongArmPowerMw * 1000.0);
  set(Op::kHashBlock, kHashBlockMj, kHashBlockMj / kStrongArmPowerMw * 1000.0);
  return p;
}

CpuProfile make_p3() {
  CpuProfile p;
  p.name = "PentiumIII-450MHz";
  auto set = [&](Op op, double ms) {
    p.op_ms[static_cast<std::size_t>(op)] = ms;
    // The paper does not price P-III energy; keep a nominal 8 W figure so
    // the profile is still usable in what-if sweeps.
    p.op_mj[static_cast<std::size_t>(op)] = ms * 8.0;
  };
  // Paper Table 2 (P-III 450 MHz ms column).
  set(Op::kModExp, 8.8);
  set(Op::kMapToPoint, 17.78);
  set(Op::kTatePairing, 44.4);
  set(Op::kScalarMul, 8.5);
  set(Op::kSignGenDsa, 8.8);
  set(Op::kSignGenEcdsa, 8.5);
  set(Op::kSignGenSok, 17.0);
  set(Op::kSignGenGq, 17.6);
  set(Op::kSignVerDsa, 10.75);
  set(Op::kSignVerEcdsa, 10.5);
  set(Op::kSignVerSok, 133.2);
  set(Op::kSignVerGq, 17.6);
  set(Op::kCertVerifyDsa, 10.75);
  set(Op::kCertVerifyEcdsa, 10.5);
  set(Op::kSymEncBlock, 0.0002);
  set(Op::kSymDecBlock, 0.0002);
  set(Op::kHashBlock, 0.0001);
  return p;
}

}  // namespace

const CpuProfile& strongarm() {
  static const CpuProfile p = make_strongarm();
  return p;
}

const CpuProfile& pentium3_450() {
  static const CpuProfile p = make_p3();
  return p;
}

const RadioProfile& radio_100kbps() {
  static const RadioProfile r{"100kbps-transceiver", 10.8, 7.51};
  return r;
}

const RadioProfile& wlan_spectrum24() {
  static const RadioProfile r{"Spectrum24-WLAN", 0.66, 0.31};
  return r;
}

Extrapolated extrapolate_from_p3(double p3_ms) {
  const double sa_ms = p3_ms / kP3BaselineMs * kStrongArmModExpMs;
  return Extrapolated{sa_ms, kStrongArmPowerMw * sa_ms / 1000.0};
}

double ledger_compute_mj(const Ledger& ledger, const CpuProfile& cpu) {
  double total = 0.0;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    total += static_cast<double>(ledger.counts[i]) * cpu.op_mj[i];
  }
  return total;
}

double ledger_compute_ms(const Ledger& ledger, const CpuProfile& cpu) {
  double total = 0.0;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    total += static_cast<double>(ledger.counts[i]) * cpu.op_ms[i];
  }
  return total;
}

double ledger_comm_mj(const Ledger& ledger, const RadioProfile& radio) {
  return (static_cast<double>(ledger.tx_bits) * radio.tx_uj_per_bit +
          static_cast<double>(ledger.rx_bits) * radio.rx_uj_per_bit) /
         1000.0;
}

double ledger_energy_mj(const Ledger& ledger, const CpuProfile& cpu,
                        const RadioProfile& radio) {
  return ledger_compute_mj(ledger, cpu) + ledger_comm_mj(ledger, radio);
}

}  // namespace idgka::energy
