// Device energy profiles reproducing Tables 2 and 3 of the paper.
//
// Computational costs: 133 MHz StrongARM SA-1110 (240 mW) with per-op mJ
// figures; the paper derives them from the Carman et al. modular-exp cost
// (9.1 mJ) plus MIRACL P-III-450 timings extrapolated with Eq. (4):
//   alpha_ms = (gamma_ms / 8.8 ms) * 37.92 ms,  beta_mJ = 240 mW * alpha.
// Communication costs: 100 kbps radio transceiver (10.8 / 7.51 uJ per bit
// tx / rx) and the IEEE 802.11 Spectrum24 WLAN card (0.66 / 0.31 uJ/bit).
#pragma once

#include <array>
#include <string>

#include "energy/ops.h"

namespace idgka::energy {

/// Microprocessor profile: energy per operation (mJ) + timing (ms).
struct CpuProfile {
  std::string name;
  std::array<double, kOpCount> op_mj{};
  std::array<double, kOpCount> op_ms{};

  [[nodiscard]] double mj(Op op) const { return op_mj[static_cast<std::size_t>(op)]; }
  [[nodiscard]] double ms(Op op) const { return op_ms[static_cast<std::size_t>(op)]; }
};

/// Radio transceiver profile: energy per transmitted/received bit (uJ).
struct RadioProfile {
  std::string name;
  double tx_uj_per_bit = 0.0;
  double rx_uj_per_bit = 0.0;
};

/// 133 MHz "StrongARM" SA-1110 (paper Table 2, mJ + ms columns).
[[nodiscard]] const CpuProfile& strongarm();
/// Pentium III 450 MHz (paper Table 2 timing column; energy not defined by
/// the paper, extrapolated at the P-III's ~8 W as a reference only).
[[nodiscard]] const CpuProfile& pentium3_450();

/// 100 kbps radio transceiver module (paper Table 3).
[[nodiscard]] const RadioProfile& radio_100kbps();
/// IEEE 802.11 Spectrum24 LA-4121 WLAN card (paper Table 3).
[[nodiscard]] const RadioProfile& wlan_spectrum24();

/// Eq. (4): extrapolates a P-III-450 timing (ms) to StrongARM ms and mJ.
struct Extrapolated {
  double strongarm_ms;
  double strongarm_mj;
};
[[nodiscard]] Extrapolated extrapolate_from_p3(double p3_ms);

/// Total energy (mJ) a node spends according to a ledger:
///   sum(op counts * cpu cost) + tx_bits*tx_uJ/bit/1000 + rx_bits*rx/1000.
[[nodiscard]] double ledger_energy_mj(const Ledger& ledger, const CpuProfile& cpu,
                                      const RadioProfile& radio);

/// Computation-only energy (mJ).
[[nodiscard]] double ledger_compute_mj(const Ledger& ledger, const CpuProfile& cpu);
/// Communication-only energy (mJ).
[[nodiscard]] double ledger_comm_mj(const Ledger& ledger, const RadioProfile& radio);
/// Computation time (ms) on the given CPU.
[[nodiscard]] double ledger_compute_ms(const Ledger& ledger, const CpuProfile& cpu);

/// Paper Table 3 item sizes (bits) used for message accounting.
namespace wire {
inline constexpr std::size_t kDsaCertBits = 263 * 8;
inline constexpr std::size_t kEcdsaCertBits = 86 * 8;
inline constexpr std::size_t kDsaSigBits = 320;
inline constexpr std::size_t kEcdsaSigBits = 320;
inline constexpr std::size_t kSokSigBits = 388;
inline constexpr std::size_t kGqSigBits = 1184;
inline constexpr std::size_t kIdBits = 32;
inline constexpr std::size_t kGroupElementBits = 1024;  ///< z, X (|p| = 1024)
inline constexpr std::size_t kGqModulusBits = 1024;     ///< t (|n| = 1024)
}  // namespace wire

}  // namespace idgka::energy
