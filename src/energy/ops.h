// Operation taxonomy for energy accounting.
//
// The paper prices protocols by counting primitive operations (Table 1 / 4)
// and multiplying by per-operation energy constants (Tables 2 / 3). The
// protocols in src/gka record every such operation they perform into a
// per-node Ledger; device profiles then convert the ledger into joules.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace idgka::energy {

/// Primitive operations the paper's cost model distinguishes.
enum class Op : std::uint8_t {
  kModExp = 0,      ///< modular exponentiation (BD / SSN / DH steps)
  kMapToPoint,      ///< hash-to-curve (pairing schemes)
  kTatePairing,     ///< one Tate pairing evaluation
  kScalarMul,       ///< EC scalar multiplication (outside sign/verify units)
  kSignGenDsa,
  kSignGenEcdsa,
  kSignGenSok,
  kSignGenGq,
  kSignVerDsa,
  kSignVerEcdsa,
  kSignVerSok,
  kSignVerGq,       ///< one GQ verification; the batch check costs one unit
  kCertVerifyDsa,   ///< DSA-signed certificate check
  kCertVerifyEcdsa, ///< ECDSA-signed certificate check
  kSymEncBlock,     ///< one AES block encryption
  kSymDecBlock,     ///< one AES block decryption
  kHashBlock,       ///< one compression-function call (64-byte block)
  kCount
};

inline constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

[[nodiscard]] constexpr std::string_view op_name(Op op) {
  constexpr std::array<std::string_view, kOpCount> kNames = {
      "ModExp",      "MapToPoint",  "TatePairing", "ScalarMul",
      "SignGenDSA",  "SignGenECDSA", "SignGenSOK",  "SignGenGQ",
      "SignVerDSA",  "SignVerECDSA", "SignVerSOK",  "SignVerGQ",
      "CertVerifyDSA", "CertVerifyECDSA", "SymEncBlock", "SymDecBlock",
      "HashBlock"};
  return kNames[static_cast<std::size_t>(op)];
}

/// Per-node operation + traffic ledger.
struct Ledger {
  std::array<std::uint64_t, kOpCount> counts{};
  std::uint64_t tx_bits = 0;
  std::uint64_t rx_bits = 0;
  std::uint64_t tx_messages = 0;
  std::uint64_t rx_messages = 0;

  void record(Op op, std::uint64_t n = 1) { counts[static_cast<std::size_t>(op)] += n; }
  [[nodiscard]] std::uint64_t count(Op op) const {
    return counts[static_cast<std::size_t>(op)];
  }

  Ledger& operator+=(const Ledger& o) {
    for (std::size_t i = 0; i < kOpCount; ++i) counts[i] += o.counts[i];
    tx_bits += o.tx_bits;
    rx_bits += o.rx_bits;
    tx_messages += o.tx_messages;
    rx_messages += o.rx_messages;
    return *this;
  }
};

}  // namespace idgka::energy
