// The supersingular curve E: y^2 = x^3 + x over F_p, p % 4 == 3.
//
// #E(F_p) = p + 1; parameters are generated with a prime q | p + 1
// (mpint::generate_supersingular_params), giving an order-q subgroup G1 on
// which the SOK-family ID-based signature operates. The distortion map
// phi(x, y) = (-x, i y) maps G1 into a linearly independent group over
// F_p^2, making the modified Tate pairing e(P, phi(Q)) non-degenerate on
// G1 x G1.
#pragma once

#include <memory>

#include "ec/curve.h"
#include "mpint/prime.h"
#include "pairing/fp2.h"

namespace idgka::pairing {

/// Pairing group: curve + subgroup generator + field contexts.
class SsGroup {
 public:
  /// Builds the group from generated parameters; derives a generator of the
  /// order-q subgroup deterministically from the parameters.
  explicit SsGroup(mpint::SupersingularParams params);

  [[nodiscard]] const mpint::SupersingularParams& params() const { return params_; }
  [[nodiscard]] const ec::Curve& curve() const { return *curve_; }
  [[nodiscard]] const ec::Point& generator() const { return curve_->generator(); }
  [[nodiscard]] const BigInt& q() const { return params_.q; }
  [[nodiscard]] const BigInt& p() const { return params_.p; }
  [[nodiscard]] const Fp2Ctx& fp2() const { return fp2_; }

  /// Hashes arbitrary bytes onto the order-q subgroup (MapToPoint).
  /// Never returns the point at infinity.
  [[nodiscard]] ec::Point map_to_point(std::span<const std::uint8_t> data) const;
  [[nodiscard]] ec::Point map_to_point(std::string_view label) const;

 private:
  mpint::SupersingularParams params_;
  Fp2Ctx fp2_;
  std::unique_ptr<ec::Curve> curve_;
};

}  // namespace idgka::pairing
