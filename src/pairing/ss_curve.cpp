#include "pairing/ss_curve.h"

#include <stdexcept>

#include "hash/sha256.h"

namespace idgka::pairing {

namespace {

// Finds a curve point (x, y) with x derived from `data` and a counter, then
// clears the cofactor to land in the order-q subgroup.
ec::Point hash_to_subgroup(const mpint::SupersingularParams& params, const ec::Curve* curve,
                           std::span<const std::uint8_t> data) {
  for (std::uint32_t counter = 0;; ++counter) {
    hash::Sha256 h;
    h.update(std::string_view{"idgka-map2point|"});
    h.update(data);
    std::array<std::uint8_t, 4> ctr_be{};
    for (int i = 0; i < 4; ++i) ctr_be[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(counter >> (24 - i * 8));
    h.update(ctr_be);
    // Expand to enough bytes for x by chaining digests.
    std::vector<std::uint8_t> xbytes;
    auto digest = h.finalize();
    while (xbytes.size() * 8 < params.p.bit_length() + 64) {
      xbytes.insert(xbytes.end(), digest.begin(), digest.end());
      digest = hash::Sha256::digest(digest);
    }
    const BigInt x = BigInt::from_bytes_be(xbytes).mod(params.p);
    // rhs = x^3 + x
    const BigInt rhs = (mpint::mod_mul(mpint::mod_mul(x, x, params.p), x, params.p) + x)
                           .mod(params.p);
    if (rhs.is_zero()) continue;  // would give 2-torsion point
    BigInt y;
    if (!mpint::sqrt_mod_p3(curve->field(), rhs, y)) continue;
    ec::Point pt{x, y, false};
    // Clear the cofactor; the result has order q (or is O if pt was in the
    // complementary subgroup — retry then).
    pt = curve->mul_raw(params.cofactor, pt);
    if (pt.infinity) continue;
    return pt;
  }
}

}  // namespace

SsGroup::SsGroup(mpint::SupersingularParams params)
    : params_(std::move(params)), fp2_(params_.p) {
  // Bootstrap: build a temporary curve with a throwaway generator to obtain
  // scalar multiplication, then derive the real subgroup generator.
  // y^2 = x^3 + x  =>  a = 1, b = 0. The point (0, 0) is on the curve (it is
  // the 2-torsion point), which we use purely as a constructor placeholder.
  ec::Curve bootstrap("ss-bootstrap", params_.p, BigInt{1}, BigInt{}, ec::Point{BigInt{}, BigInt{}, false},
                      params_.q, params_.cofactor);
  const std::string_view label = "idgka-ss-generator";
  const ec::Point g = hash_to_subgroup(
      params_, &bootstrap,
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(label.data()),
                                    label.size()));
  curve_ = std::make_unique<ec::Curve>("ss", params_.p, BigInt{1}, BigInt{}, g, params_.q,
                                       params_.cofactor);
  if (!curve_->mul(params_.q, g).infinity) {
    throw std::logic_error("SsGroup: generator does not have order q");
  }
}

ec::Point SsGroup::map_to_point(std::span<const std::uint8_t> data) const {
  return hash_to_subgroup(params_, curve_.get(), data);
}

ec::Point SsGroup::map_to_point(std::string_view label) const {
  return map_to_point(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
}

}  // namespace idgka::pairing
