// Quadratic extension field F_p^2 = F_p[i] / (i^2 + 1) for p % 4 == 3.
//
// The modified Tate pairing on the supersingular curve y^2 = x^3 + x takes
// values in F_p^2; the distortion map phi(x, y) = (-x, i*y) moves the second
// pairing argument into the twist. p % 4 == 3 guarantees -1 is a
// non-residue, so the polynomial i^2 + 1 is irreducible.
#pragma once

#include "mpint/bigint.h"
#include "mpint/mod_context.h"

namespace idgka::pairing {

using mpint::BigInt;

/// Element re + im*i of F_p^2.
struct Fp2 {
  BigInt re;
  BigInt im;
  bool operator==(const Fp2& o) const = default;
  [[nodiscard]] bool is_one() const { return re.is_one() && im.is_zero(); }
  [[nodiscard]] bool is_zero() const { return re.is_zero() && im.is_zero(); }
};

/// Arithmetic context bound to a fixed prime p (p % 4 == 3).
class Fp2Ctx {
 public:
  explicit Fp2Ctx(BigInt p);

  [[nodiscard]] const BigInt& p() const { return p_; }
  /// Cached modular context for the base field F_p — the seam for callers
  /// doing exponentiation-shaped F_p work next to the pairing. Derived once
  /// per group; single field multiplies stay on schoolbook mul + reduce,
  /// which measures faster than a Montgomery round trip at these sizes.
  [[nodiscard]] const mpint::ModContext& fp() const { return fctx_; }

  [[nodiscard]] Fp2 one() const { return Fp2{BigInt{1}, BigInt{}}; }
  [[nodiscard]] Fp2 make(BigInt re, BigInt im) const;

  [[nodiscard]] Fp2 add(const Fp2& a, const Fp2& b) const;
  [[nodiscard]] Fp2 sub(const Fp2& a, const Fp2& b) const;
  [[nodiscard]] Fp2 mul(const Fp2& a, const Fp2& b) const;
  [[nodiscard]] Fp2 sqr(const Fp2& a) const;
  [[nodiscard]] Fp2 conj(const Fp2& a) const;
  /// Multiplicative inverse; throws std::domain_error on zero.
  [[nodiscard]] Fp2 inv(const Fp2& a) const;
  /// a^e for e >= 0 (square-and-multiply).
  [[nodiscard]] Fp2 pow(const Fp2& a, const BigInt& e) const;
  /// Frobenius a^p = conj(a) in this representation.
  [[nodiscard]] Fp2 frobenius(const Fp2& a) const { return conj(a); }

 private:
  [[nodiscard]] BigInt fadd(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt fsub(const BigInt& a, const BigInt& b) const;
  [[nodiscard]] BigInt fmul(const BigInt& a, const BigInt& b) const;

  BigInt p_;
  mpint::ModContext fctx_;  // per-field context (Montgomery constants)
};

}  // namespace idgka::pairing
