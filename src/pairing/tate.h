// Modified Tate pairing on the supersingular curve via Miller's algorithm.
//
// e(P, Q) = f_{q,P}(phi(Q))^((p^2-1)/q), where phi(x, y) = (-x, i y) is the
// distortion map. Both arguments live in the order-q subgroup G1 of
// E(F_p): y^2 = x^3 + x. Denominator elimination applies: vertical-line
// values lie in F_p and are annihilated by the final exponentiation, so the
// Miller loop only accumulates the tangent/secant line values.
#pragma once

#include "ec/curve.h"
#include "pairing/ss_curve.h"

namespace idgka::pairing {

/// Tate pairing engine bound to an SsGroup.
class TatePairing {
 public:
  explicit TatePairing(const SsGroup& group);

  /// e(P, Q) for P, Q in the order-q subgroup. Identity element when either
  /// argument is the point at infinity.
  [[nodiscard]] Fp2 pair(const ec::Point& p_pt, const ec::Point& q_pt) const;

  /// Value group element equality (pairing values are already reduced).
  [[nodiscard]] const Fp2Ctx& fp2() const { return group_.fp2(); }
  /// The underlying pairing group.
  [[nodiscard]] const SsGroup& group() const { return group_; }

 private:
  // Evaluates the line through (tangent at T, or chord T->P) at phi(Q) and
  // multiplies it into f.
  struct MillerState;

  const SsGroup& group_;
  mpint::BigInt final_exp_;  // (p^2 - 1) / q
};

}  // namespace idgka::pairing
