#include "pairing/fp2.h"

#include <stdexcept>

namespace idgka::pairing {

Fp2Ctx::Fp2Ctx(BigInt p) : p_(std::move(p)), fctx_(p_) {
  if ((p_.low_u64() & 3U) != 3U) {
    throw std::invalid_argument("Fp2Ctx: requires p % 4 == 3");
  }
}

BigInt Fp2Ctx::fadd(const BigInt& a, const BigInt& b) const {
  BigInt r = a + b;
  if (r >= p_) r -= p_;
  return r;
}

BigInt Fp2Ctx::fsub(const BigInt& a, const BigInt& b) const {
  BigInt r = a - b;
  if (r.negative()) r += p_;
  return r;
}

BigInt Fp2Ctx::fmul(const BigInt& a, const BigInt& b) const { return (a * b).mod(p_); }

Fp2 Fp2Ctx::make(BigInt re, BigInt im) const { return Fp2{re.mod(p_), im.mod(p_)}; }

Fp2 Fp2Ctx::add(const Fp2& a, const Fp2& b) const {
  return Fp2{fadd(a.re, b.re), fadd(a.im, b.im)};
}

Fp2 Fp2Ctx::sub(const Fp2& a, const Fp2& b) const {
  return Fp2{fsub(a.re, b.re), fsub(a.im, b.im)};
}

Fp2 Fp2Ctx::mul(const Fp2& a, const Fp2& b) const {
  // Karatsuba-style: (a0 + a1 i)(b0 + b1 i) with i^2 = -1.
  const BigInt t0 = fmul(a.re, b.re);
  const BigInt t1 = fmul(a.im, b.im);
  const BigInt t2 = fmul(fadd(a.re, a.im), fadd(b.re, b.im));
  return Fp2{fsub(t0, t1), fsub(fsub(t2, t0), t1)};
}

Fp2 Fp2Ctx::sqr(const Fp2& a) const {
  // (a0 + a1 i)^2 = (a0+a1)(a0-a1) + 2 a0 a1 i.
  const BigInt cross = fmul(a.re, a.im);
  return Fp2{fmul(fadd(a.re, a.im), fsub(a.re, a.im)), fadd(cross, cross)};
}

Fp2 Fp2Ctx::conj(const Fp2& a) const {
  return Fp2{a.re, a.im.is_zero() ? BigInt{} : p_ - a.im};
}

Fp2 Fp2Ctx::inv(const Fp2& a) const {
  // (a0 - a1 i) / (a0^2 + a1^2)
  const BigInt norm = fadd(fmul(a.re, a.re), fmul(a.im, a.im));
  if (norm.is_zero()) throw std::domain_error("Fp2Ctx::inv: zero element");
  const BigInt ninv = fctx_.inv(norm);
  const Fp2 c = conj(a);
  return Fp2{fmul(c.re, ninv), fmul(c.im, ninv)};
}

Fp2 Fp2Ctx::pow(const Fp2& a, const BigInt& e) const {
  if (e.negative()) return pow(inv(a), -e);
  Fp2 result = one();
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    result = sqr(result);
    if (e.bit(i)) result = mul(result, a);
  }
  return result;
}

}  // namespace idgka::pairing
