#include "pairing/tate.h"

namespace idgka::pairing {

namespace {

using mpint::BigInt;
using mpint::mod_inverse;
using mpint::mod_mul;

// Affine working point over F_p.
struct AffPt {
  BigInt x;
  BigInt y;
  bool infinity = false;
};

}  // namespace

TatePairing::TatePairing(const SsGroup& group) : group_(group) {
  const BigInt& p = group_.p();
  final_exp_ = (p * p - BigInt{1}) / group_.q();
}

Fp2 TatePairing::pair(const ec::Point& p_pt, const ec::Point& q_pt) const {
  const Fp2Ctx& f2 = group_.fp2();
  if (p_pt.infinity || q_pt.infinity) return f2.one();

  const BigInt& p = group_.p();
  const BigInt& q = group_.q();

  // phi(Q) = (-xQ, i*yQ): evaluate lines at this point.
  const BigInt& yq = q_pt.y;

  auto fmul = [&](const BigInt& a, const BigInt& b) { return mod_mul(a, b, p); };
  auto fsub = [&](const BigInt& a, const BigInt& b) { return (a - b).mod(p); };
  auto fadd = [&](const BigInt& a, const BigInt& b) {
    BigInt r = a + b;
    if (r >= p) r -= p;
    return r;
  };

  // Line through T with slope lambda evaluated at phi(Q) = (-xQ, i yQ):
  //   l = i yQ - yT - lambda*(-xQ - xT) = (lambda*(xQ + xT) - yT) + yQ * i.
  Fp2 f = f2.one();
  AffPt t{p_pt.x, p_pt.y, false};

  const std::size_t bits = q.bit_length();
  for (std::size_t i = bits - 1; i-- > 0;) {
    // --- Doubling step: f = f^2 * l_{T,T}(phiQ); T = 2T.
    f = f2.sqr(f);
    if (!t.infinity) {
      if (t.y.is_zero()) {
        // Tangent is vertical: value in F_p, killed by final exponentiation.
        t.infinity = true;
      } else {
        // lambda = (3 xT^2 + 1) / (2 yT)   [a = 1 for y^2 = x^3 + x]
        const BigInt num = fadd(fmul(BigInt{3}, fmul(t.x, t.x)), BigInt{1});
        const BigInt lambda = fmul(num, mod_inverse(fadd(t.y, t.y), p));
        // l(phiQ) = i yQ - yT + lambda (xQ + xT)
        const BigInt re = fsub(fmul(lambda, fadd(q_pt.x, t.x)), t.y);
        f = f2.mul(f, Fp2{re, yq});
        // T = 2T
        const BigInt x3 = fsub(fmul(lambda, lambda), fadd(t.x, t.x));
        const BigInt y3 = fsub(fmul(lambda, fsub(t.x, x3)), t.y);
        t = AffPt{x3, y3, false};
      }
    }
    // --- Addition step when exponent bit set: f = f * l_{T,P}(phiQ); T += P.
    if (q.bit(i)) {
      if (!t.infinity) {
        if (t.x == p_pt.x && t.y != p_pt.y) {
          // Chord is vertical: F_p value, killed by final exponentiation.
          t.infinity = true;
        } else if (t.x == p_pt.x) {
          // T == P: tangent line (same as doubling slope).
          const BigInt num = fadd(fmul(BigInt{3}, fmul(t.x, t.x)), BigInt{1});
          const BigInt lambda = fmul(num, mod_inverse(fadd(t.y, t.y), p));
          const BigInt re = fsub(fmul(lambda, fadd(q_pt.x, t.x)), t.y);
          f = f2.mul(f, Fp2{re, yq});
          const BigInt x3 = fsub(fmul(lambda, lambda), fadd(t.x, t.x));
          const BigInt y3 = fsub(fmul(lambda, fsub(t.x, x3)), t.y);
          t = AffPt{x3, y3, false};
        } else {
          const BigInt lambda = fmul(fsub(p_pt.y, t.y), mod_inverse(fsub(p_pt.x, t.x), p));
          const BigInt re = fsub(fmul(lambda, fadd(q_pt.x, t.x)), t.y);
          f = f2.mul(f, Fp2{re, yq});
          const BigInt x3 = fsub(fsub(fmul(lambda, lambda), t.x), p_pt.x);
          const BigInt y3 = fsub(fmul(lambda, fsub(t.x, x3)), t.y);
          t = AffPt{x3, y3, false};
        }
      } else {
        // T was infinity: T += P just restarts at P; line l_{O,P} is the
        // vertical through P (F_p value) — skipped.
        t = AffPt{p_pt.x, p_pt.y, false};
      }
    }
  }

  return f2.pow(f, final_exp_);
}

}  // namespace idgka::pairing
