// HMAC-DRBG (NIST SP 800-90A) over SHA-256.
//
// The library's cryptographic randomness source. Deterministic under a fixed
// seed, which the network simulator exploits: each protocol node gets an
// independent DRBG derived from (master seed, node id), making entire
// multi-party protocol executions reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "hash/hmac.h"
#include "mpint/random.h"

namespace idgka::hash {

/// Deterministic random bit generator implementing mpint::Rng.
class HmacDrbg final : public mpint::Rng {
 public:
  /// Instantiates from seed material (entropy || nonce || personalization).
  explicit HmacDrbg(std::span<const std::uint8_t> seed);
  /// Convenience: seeds from a string label.
  explicit HmacDrbg(std::string_view label);
  /// Convenience: seeds from a 64-bit value and a domain-separation label.
  HmacDrbg(std::uint64_t seed, std::string_view label);

  void fill(std::span<std::uint8_t> out) override;

  /// Mixes additional entropy/context into the state.
  void reseed(std::span<const std::uint8_t> material);

 private:
  void update(std::span<const std::uint8_t> provided);

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 32> v_{};
};

}  // namespace idgka::hash
