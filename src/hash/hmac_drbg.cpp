#include "hash/hmac_drbg.h"

#include <algorithm>
#include <vector>

namespace idgka::hash {

HmacDrbg::HmacDrbg(std::span<const std::uint8_t> seed) {
  key_.fill(0x00);
  v_.fill(0x01);
  update(seed);
}

HmacDrbg::HmacDrbg(std::string_view label)
    : HmacDrbg(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(label.data()), label.size())) {}

HmacDrbg::HmacDrbg(std::uint64_t seed, std::string_view label) {
  key_.fill(0x00);
  v_.fill(0x01);
  std::vector<std::uint8_t> material;
  material.reserve(8 + label.size());
  for (int i = 7; i >= 0; --i) material.push_back(static_cast<std::uint8_t>(seed >> (i * 8)));
  material.insert(material.end(), label.begin(), label.end());
  update(material);
}

void HmacDrbg::update(std::span<const std::uint8_t> provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  std::vector<std::uint8_t> buf(v_.begin(), v_.end());
  buf.push_back(0x00);
  buf.insert(buf.end(), provided.begin(), provided.end());
  key_ = hmac_sha256(key_, buf);
  v_ = hmac_sha256(key_, v_);
  if (!provided.empty()) {
    buf.assign(v_.begin(), v_.end());
    buf.push_back(0x01);
    buf.insert(buf.end(), provided.begin(), provided.end());
    key_ = hmac_sha256(key_, buf);
    v_ = hmac_sha256(key_, v_);
  }
}

void HmacDrbg::reseed(std::span<const std::uint8_t> material) { update(material); }

void HmacDrbg::fill(std::span<std::uint8_t> out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    v_ = hmac_sha256(key_, v_);
    const std::size_t take = std::min(v_.size(), out.size() - produced);
    std::copy_n(v_.begin(), take, out.begin() + static_cast<std::ptrdiff_t>(produced));
    produced += take;
  }
  update({});
}

}  // namespace idgka::hash
