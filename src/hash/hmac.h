// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/sha256.h"

namespace idgka::hash {

/// HMAC-SHA256 of `data` under `key`.
[[nodiscard]] Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                                         std::span<const std::uint8_t> data);

}  // namespace idgka::hash
