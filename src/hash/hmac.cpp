#include "hash/hmac.h"

namespace idgka::hash {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 64> k_block{};
  if (key.size() > 64) {
    const auto d = Sha256::digest(key);
    std::copy(d.begin(), d.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad).update(data);
  const auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad).update(inner_digest);
  return outer.finalize();
}

}  // namespace idgka::hash
