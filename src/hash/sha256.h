// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the hash H(.) used by the GQ signature variant, the batch
// challenge c = H(T || Z), DSA/ECDSA/SOK message digests, MapToPoint, and the
// KDF that turns Burmester-Desmedt group keys into AES keys.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace idgka::hash {

/// Incremental SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  /// Absorbs bytes; may be called repeatedly.
  Sha256& update(std::span<const std::uint8_t> data);
  Sha256& update(std::string_view s);

  /// Finalizes and returns the digest. The object must not be reused after.
  [[nodiscard]] Digest finalize();

  /// One-shot convenience.
  static Digest digest(std::span<const std::uint8_t> data);
  static Digest digest(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Concatenation helper used throughout the protocol messages.
std::vector<std::uint8_t> concat(std::initializer_list<std::span<const std::uint8_t>> parts);

}  // namespace idgka::hash
