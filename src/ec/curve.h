// Short-Weierstrass elliptic curve arithmetic over prime fields.
//
// Substrate for the certificate-based ECDSA baseline ("BD with ECDSA") that
// the paper compares against. Points are affine externally; scalar
// multiplication runs on Jacobian coordinates internally with a 4-bit window.
#pragma once

#include <optional>
#include <string>

#include "mpint/bigint.h"
#include "mpint/mod_context.h"
#include "mpint/random.h"
#include "mpint/residue.h"

namespace idgka::ec {

using mpint::BigInt;

/// Affine point; infinity is represented by `infinity == true`.
struct Point {
  BigInt x;
  BigInt y;
  bool infinity = false;

  [[nodiscard]] static Point at_infinity() { return Point{{}, {}, true}; }
  bool operator==(const Point& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

/// y^2 = x^3 + a*x + b over F_p with base point G of prime order n and
/// cofactor h.
class Curve {
 public:
  Curve(std::string name, BigInt p, BigInt a, BigInt b, Point g, BigInt n, BigInt h);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const BigInt& p() const { return p_; }
  [[nodiscard]] const BigInt& a() const { return a_; }
  [[nodiscard]] const BigInt& b() const { return b_; }
  [[nodiscard]] const Point& generator() const { return g_; }
  [[nodiscard]] const BigInt& order() const { return n_; }
  [[nodiscard]] const BigInt& cofactor() const { return h_; }
  /// Field element byte width.
  [[nodiscard]] std::size_t field_bytes() const { return (p_.bit_length() + 7) / 8; }
  /// Cached modular context for the base field F_p. All Jacobian ladder
  /// arithmetic runs in its residue domain (Montgomery form for the odd
  /// field primes): coordinates convert once per point operation at the
  /// affine boundary, and every field add/sub/mul/sqr in between is a raw
  /// limb kernel — no division-based reduction, no heap traffic.
  [[nodiscard]] const mpint::ModContext& field() const { return fctx_; }

  /// Is `pt` on the curve (infinity counts as on-curve)?
  [[nodiscard]] bool is_on_curve(const Point& pt) const;

  /// Point addition (complete for distinct/equal/infinity operands).
  [[nodiscard]] Point add(const Point& p1, const Point& p2) const;
  /// Point doubling.
  [[nodiscard]] Point dbl(const Point& pt) const;
  /// Additive inverse.
  [[nodiscard]] Point neg(const Point& pt) const;
  /// Scalar multiplication k*P, k any sign (negative k uses -P).
  /// The scalar is reduced modulo the group order first.
  [[nodiscard]] Point mul(const BigInt& k, const Point& pt) const;
  /// Scalar multiplication without order reduction (for points whose order
  /// is not n, e.g. cofactor clearing in MapToPoint).
  [[nodiscard]] Point mul_raw(const BigInt& k, const Point& pt) const;
  /// k1*G + k2*Q via interleaved ladder (ECDSA verification shape).
  [[nodiscard]] Point mul_add(const BigInt& k1, const BigInt& k2, const Point& q) const;

 private:
  // Jacobian coordinates (X, Y, Z): x = X/Z^2, y = Y/Z^3; infinity Z == 0.
  // Coordinates live in fctx_'s residue domain for the whole ladder.
  struct Jac {
    mpint::Residue x;
    mpint::Residue y;
    mpint::Residue z;
  };
  [[nodiscard]] Jac jac_inf() const;
  [[nodiscard]] Jac to_jac(const Point& pt) const;
  [[nodiscard]] Point from_jac(const Jac& j) const;
  [[nodiscard]] Jac jac_dbl(const Jac& p1) const;
  [[nodiscard]] Jac jac_add(const Jac& p1, const Jac& p2) const;

  std::string name_;
  BigInt p_, a_, b_;
  Point g_;
  BigInt n_, h_;
  mpint::ModContext fctx_;  // per-curve field context (Montgomery constants)
  mpint::Residue a_r_, b_r_;  // curve coefficients in the residue domain
};

/// Named curves used by the benchmarks and baselines.
/// SEC 2 secp160r1 — the paper's "160-bit ECDSA".
[[nodiscard]] const Curve& secp160r1();
/// NIST P-256 — a modern reference point for the ablation benches.
[[nodiscard]] const Curve& p256();

/// Brute-force-counted toy curve with prime order over a `bits`-bit prime
/// (bits <= 28). Used to run very large simulated groups where operation
/// *counts*, not cryptographic strength, are what the energy model consumes.
[[nodiscard]] Curve generate_toy_curve(mpint::Rng& rng, std::size_t bits);

}  // namespace idgka::ec
