#include "ec/curve.h"

#include <array>
#include <stdexcept>

#include "mpint/prime.h"

namespace idgka::ec {

Curve::Curve(std::string name, BigInt p, BigInt a, BigInt b, Point g, BigInt n, BigInt h)
    : name_(std::move(name)),
      p_(std::move(p)),
      a_(std::move(a)),
      b_(std::move(b)),
      g_(std::move(g)),
      n_(std::move(n)),
      h_(std::move(h)),
      fctx_(p_),
      a_r_(fctx_.to_residue(a_)),
      b_r_(fctx_.to_residue(b_)) {
  if (!is_on_curve(g_)) throw std::invalid_argument("Curve: generator not on curve");
}

// All point arithmetic below runs in fctx_'s residue domain (Montgomery form
// for the odd field primes): a Jacobian coordinate is converted once at the
// affine boundary and every field operation in between is a raw limb kernel
// — adds/subs with one conditional modulus correction, mont_mul/mont_sqr for
// products — with no division-based reduction and no heap traffic.
using mpint::Residue;

bool Curve::is_on_curve(const Point& pt) const {
  if (pt.infinity) return true;
  const Residue x = fctx_.to_residue(pt.x);
  const Residue y = fctx_.to_residue(pt.y);
  Residue lhs;
  fctx_.sqr(y, lhs);  // y^2
  Residue rhs;
  fctx_.sqr(x, rhs);
  fctx_.mul(rhs, x, rhs);  // x^3
  Residue t;
  fctx_.mul(a_r_, x, t);
  fctx_.add(rhs, t, rhs);
  fctx_.add(rhs, b_r_, rhs);  // x^3 + a*x + b
  return lhs == rhs;
}

Point Curve::neg(const Point& pt) const {
  if (pt.infinity) return pt;
  return Point{pt.x, pt.y.is_zero() ? BigInt{} : p_ - pt.y, false};
}

Curve::Jac Curve::jac_inf() const {
  return Jac{fctx_.one_residue(), fctx_.one_residue(), Residue(fctx_)};
}

Curve::Jac Curve::to_jac(const Point& pt) const {
  if (pt.infinity) return jac_inf();
  return Jac{fctx_.to_residue(pt.x), fctx_.to_residue(pt.y), fctx_.one_residue()};
}

Point Curve::from_jac(const Jac& j) const {
  if (j.z.is_zero()) return Point::at_infinity();
  const Residue z_inv = fctx_.to_residue(fctx_.inv(fctx_.from_residue(j.z)));
  Residue z2;
  fctx_.sqr(z_inv, z2);
  Residue x;
  fctx_.mul(j.x, z2, x);
  Residue y;
  fctx_.mul(z2, z_inv, y);  // z^-3
  fctx_.mul(j.y, y, y);
  return Point{fctx_.from_residue(x), fctx_.from_residue(y), false};
}

Curve::Jac Curve::jac_dbl(const Jac& p1) const {
  if (p1.z.is_zero() || p1.y.is_zero()) return jac_inf();
  // dbl-2007-bl style (general a).
  Residue xx, yy, yyyy, zz, s, m, t, u;
  fctx_.sqr(p1.x, xx);
  fctx_.sqr(p1.y, yy);
  fctx_.sqr(yy, yyyy);
  fctx_.sqr(p1.z, zz);
  // S = 2*((X+YY)^2 - XX - YYYY)
  fctx_.add(p1.x, yy, t);
  fctx_.sqr(t, t);
  fctx_.sub(t, xx, s);
  fctx_.sub(s, yyyy, s);
  fctx_.add(s, s, s);
  // M = 3*XX + a*ZZ^2
  fctx_.add(xx, xx, m);
  fctx_.add(m, xx, m);
  fctx_.sqr(zz, t);
  fctx_.mul(a_r_, t, t);
  fctx_.add(m, t, m);
  // X3 = M^2 - 2*S
  Jac out;
  fctx_.sqr(m, out.x);
  fctx_.add(s, s, t);
  fctx_.sub(out.x, t, out.x);
  // Y3 = M*(S - X3) - 8*YYYY
  fctx_.sub(s, out.x, t);
  fctx_.mul(m, t, t);
  fctx_.add(yyyy, yyyy, u);
  fctx_.add(u, u, u);
  fctx_.add(u, u, u);
  fctx_.sub(t, u, out.y);
  // Z3 = (Y+Z)^2 - YY - ZZ
  fctx_.add(p1.y, p1.z, u);
  fctx_.sqr(u, u);
  fctx_.sub(u, yy, u);
  fctx_.sub(u, zz, out.z);
  return out;
}

Curve::Jac Curve::jac_add(const Jac& p1, const Jac& p2) const {
  if (p1.z.is_zero()) return p2;
  if (p2.z.is_zero()) return p1;
  Residue z1z1, z2z2, u1, u2, s1, s2, t;
  fctx_.sqr(p1.z, z1z1);
  fctx_.sqr(p2.z, z2z2);
  fctx_.mul(p1.x, z2z2, u1);
  fctx_.mul(p2.x, z1z1, u2);
  fctx_.mul(p2.z, z2z2, s1);
  fctx_.mul(p1.y, s1, s1);
  fctx_.mul(p1.z, z1z1, s2);
  fctx_.mul(p2.y, s2, s2);
  if (u1 == u2) {
    if (s1 == s2) return jac_dbl(p1);
    return jac_inf();  // P + (-P) = O
  }
  Residue h, i, j, r, v;
  fctx_.sub(u2, u1, h);
  fctx_.add(h, h, i);
  fctx_.sqr(i, i);  // I = (2H)^2
  fctx_.mul(h, i, j);
  fctx_.sub(s2, s1, r);
  fctx_.add(r, r, r);
  fctx_.mul(u1, i, v);
  // X3 = R^2 - J - 2*V
  Jac out;
  fctx_.sqr(r, out.x);
  fctx_.sub(out.x, j, out.x);
  fctx_.add(v, v, t);
  fctx_.sub(out.x, t, out.x);
  // Y3 = R*(V - X3) - 2*S1*J
  fctx_.sub(v, out.x, t);
  fctx_.mul(r, t, t);
  fctx_.mul(s1, j, v);
  fctx_.add(v, v, v);
  fctx_.sub(t, v, out.y);
  // Z3 = ((Z1 + Z2)^2 - Z1Z1 - Z2Z2) * H
  fctx_.add(p1.z, p2.z, t);
  fctx_.sqr(t, t);
  fctx_.sub(t, z1z1, t);
  fctx_.sub(t, z2z2, t);
  fctx_.mul(t, h, out.z);
  return out;
}

Point Curve::add(const Point& p1, const Point& p2) const {
  return from_jac(jac_add(to_jac(p1), to_jac(p2)));
}

Point Curve::dbl(const Point& pt) const { return from_jac(jac_dbl(to_jac(pt))); }

Point Curve::mul(const BigInt& k_in, const Point& pt) const {
  return mul_raw(k_in.mod(n_), pt);
}

Point Curve::mul_raw(const BigInt& k_in, const Point& pt) const {
  BigInt k = k_in;
  if (k.negative()) return mul_raw(-k, neg(pt));
  if (k.is_zero() || pt.infinity) return Point::at_infinity();

  // 4-bit window over Jacobian coordinates.
  const Jac base = to_jac(pt);
  std::array<Jac, 16> table;
  table[0] = jac_inf();
  table[1] = base;
  for (std::size_t i = 2; i < 16; ++i) table[i] = jac_add(table[i - 1], base);

  Jac acc = jac_inf();
  const std::size_t windows = (k.bit_length() + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    acc = jac_dbl(acc);
    acc = jac_dbl(acc);
    acc = jac_dbl(acc);
    acc = jac_dbl(acc);
    std::size_t digit = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      if (k.bit(w * 4 + b)) digit |= 1ULL << b;
    }
    if (digit != 0) acc = jac_add(acc, table[digit]);
  }
  return from_jac(acc);
}

Point Curve::mul_add(const BigInt& k1, const BigInt& k2, const Point& q) const {
  // Shamir's trick: simultaneous ladder over G and Q.
  const Jac jg = to_jac(g_);
  const Jac jq = to_jac(q);
  const Jac jgq = jac_add(jg, jq);
  const BigInt a = k1.mod(n_);
  const BigInt b = k2.mod(n_);
  const std::size_t bits = std::max(a.bit_length(), b.bit_length());
  Jac acc = jac_inf();
  for (std::size_t i = bits; i-- > 0;) {
    acc = jac_dbl(acc);
    const bool ba = a.bit(i);
    const bool bb = b.bit(i);
    if (ba && bb) acc = jac_add(acc, jgq);
    else if (ba) acc = jac_add(acc, jg);
    else if (bb) acc = jac_add(acc, jq);
  }
  return from_jac(acc);
}

const Curve& secp160r1() {
  static const Curve curve = [] {
    const BigInt p = BigInt::from_hex("ffffffffffffffffffffffffffffffff7fffffff");
    const BigInt a = p - BigInt{3};
    const BigInt b = BigInt::from_hex("1c97befc54bd7a8b65acf89f81d4d4adc565fa45");
    const Point g{BigInt::from_hex("4a96b5688ef573284664698968c38bb913cbfc82"),
                  BigInt::from_hex("23a628553168947d59dcc912042351377ac5fb32"), false};
    const BigInt n = BigInt::from_hex("0100000000000000000001f4c8f927aed3ca752257");
    return Curve("secp160r1", p, a, b, g, n, BigInt{1});
  }();
  return curve;
}

const Curve& p256() {
  static const Curve curve = [] {
    const BigInt p = BigInt::from_hex(
        "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
    const BigInt a = p - BigInt{3};
    const BigInt b = BigInt::from_hex(
        "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
    const Point g{BigInt::from_hex(
                      "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
                  BigInt::from_hex(
                      "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
                  false};
    const BigInt n = BigInt::from_hex(
        "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
    return Curve("P-256", p, a, b, g, n, BigInt{1});
  }();
  return curve;
}

Curve generate_toy_curve(mpint::Rng& rng, std::size_t bits) {
  if (bits < 8 || bits > 28) {
    throw std::invalid_argument("generate_toy_curve: bits must be in [8, 28]");
  }
  const BigInt p = mpint::generate_prime(rng, bits, 24);
  const std::uint64_t pu = p.low_u64();
  while (true) {
    const std::uint64_t a = mpint::random_below(rng, p).low_u64();
    const std::uint64_t b = mpint::random_below(rng, p).low_u64();
    // Reject singular curves: 4a^3 + 27b^2 == 0 mod p.
    const unsigned __int128 disc =
        (static_cast<unsigned __int128>(4) * a % pu * a % pu * a +
         static_cast<unsigned __int128>(27) * b % pu * b) % pu;
    if (disc == 0) continue;

    // Count points directly: infinity + (2 per quadratic-residue RHS,
    // 1 per zero RHS). Equivalent to #E = p + 1 + sum_x chi(x^3+ax+b).
    std::uint64_t count = 1;
    std::uint64_t first_x = 0;
    bool have_point = false;
    std::uint64_t first_y = 0;
    for (std::uint64_t x = 0; x < pu; ++x) {
      const unsigned __int128 rhs128 =
          ((static_cast<unsigned __int128>(x) * x % pu * x) +
           (static_cast<unsigned __int128>(a) * x) + b) % pu;
      const std::uint64_t rhs = static_cast<std::uint64_t>(rhs128);
      if (rhs == 0) {
        ++count;  // one point with y == 0
        continue;
      }
      const int chi = mpint::jacobi(BigInt{rhs}, p);
      if (chi == 1) {
        count += 2;
        if (!have_point) {
          BigInt root;
          // p was chosen freely; only use sqrt when p % 4 == 3, otherwise
          // search y directly (p is tiny).
          if ((pu & 3U) == 3U && mpint::sqrt_mod_p3(BigInt{rhs}, p, root)) {
            first_x = x;
            first_y = root.low_u64();
            have_point = true;
          } else if ((pu & 3U) != 3U) {
            for (std::uint64_t y = 1; y < pu; ++y) {
              if (static_cast<unsigned __int128>(y) * y % pu == rhs) {
                first_x = x;
                first_y = y;
                have_point = true;
                break;
              }
            }
          }
        }
      }
    }
    const BigInt order{count};
    if (!have_point) continue;
    if (!mpint::is_probable_prime(order, rng, 24)) continue;

    const Point g{BigInt{first_x}, BigInt{first_y}, false};
    Curve curve("toy" + std::to_string(bits), p, BigInt{a}, BigInt{b}, g, order, BigInt{1});
    // Sanity: n*G == O.
    if (!curve.mul(order, g).infinity) continue;
    return curve;
  }
}

}  // namespace idgka::ec
