#include "ec/curve.h"

#include <array>
#include <stdexcept>

#include "mpint/prime.h"

namespace idgka::ec {

Curve::Curve(std::string name, BigInt p, BigInt a, BigInt b, Point g, BigInt n, BigInt h)
    : name_(std::move(name)),
      p_(std::move(p)),
      a_(std::move(a)),
      b_(std::move(b)),
      g_(std::move(g)),
      n_(std::move(n)),
      h_(std::move(h)),
      fctx_(p_) {
  if (!is_on_curve(g_)) throw std::invalid_argument("Curve: generator not on curve");
}

BigInt Curve::fadd(const BigInt& x, const BigInt& y) const {
  BigInt r = x + y;
  if (r >= p_) r -= p_;
  return r;
}

BigInt Curve::fsub(const BigInt& x, const BigInt& y) const {
  BigInt r = x - y;
  if (r.negative()) r += p_;
  return r;
}

// Measured (bench_sim_scale): for the small fields the curves live in, one
// schoolbook multiply + reduction beats the context's to/from-Montgomery
// round trip per single multiply, so fmul stays off the context; fctx_
// serves the exponentiation-shaped work (square roots in MapToPoint).
BigInt Curve::fmul(const BigInt& x, const BigInt& y) const { return (x * y).mod(p_); }

bool Curve::is_on_curve(const Point& pt) const {
  if (pt.infinity) return true;
  const BigInt lhs = fmul(pt.y, pt.y);
  const BigInt rhs = fadd(fadd(fmul(fmul(pt.x, pt.x), pt.x), fmul(a_, pt.x)), b_);
  return lhs == rhs;
}

Point Curve::neg(const Point& pt) const {
  if (pt.infinity) return pt;
  return Point{pt.x, pt.y.is_zero() ? BigInt{} : p_ - pt.y, false};
}

Curve::Jac Curve::to_jac(const Point& pt) const {
  if (pt.infinity) return Jac{BigInt{1}, BigInt{1}, BigInt{}};
  return Jac{pt.x, pt.y, BigInt{1}};
}

Point Curve::from_jac(const Jac& j) const {
  if (j.z.is_zero()) return Point::at_infinity();
  const BigInt z_inv = fctx_.inv(j.z);
  const BigInt z2 = fmul(z_inv, z_inv);
  return Point{fmul(j.x, z2), fmul(j.y, fmul(z2, z_inv)), false};
}

Curve::Jac Curve::jac_dbl(const Jac& p1) const {
  if (p1.z.is_zero() || p1.y.is_zero()) return Jac{BigInt{1}, BigInt{1}, BigInt{}};
  // dbl-2007-bl style (general a).
  const BigInt xx = fmul(p1.x, p1.x);
  const BigInt yy = fmul(p1.y, p1.y);
  const BigInt yyyy = fmul(yy, yy);
  const BigInt zz = fmul(p1.z, p1.z);
  // S = 2*((X+YY)^2 - XX - YYYY)
  const BigInt t = fmul(fadd(p1.x, yy), fadd(p1.x, yy));
  const BigInt s = fadd(fsub(fsub(t, xx), yyyy), fsub(fsub(t, xx), yyyy));
  // M = 3*XX + a*ZZ^2
  const BigInt m = fadd(fadd(fadd(xx, xx), xx), fmul(a_, fmul(zz, zz)));
  const BigInt x3 = fsub(fmul(m, m), fadd(s, s));
  BigInt y3 = fsub(fmul(m, fsub(s, x3)), fadd(fadd(fadd(yyyy, yyyy), fadd(yyyy, yyyy)),
                                              fadd(fadd(yyyy, yyyy), fadd(yyyy, yyyy))));
  // Z3 = (Y+Z)^2 - YY - ZZ
  const BigInt u = fmul(fadd(p1.y, p1.z), fadd(p1.y, p1.z));
  const BigInt z3 = fsub(fsub(u, yy), zz);
  return Jac{x3, y3, z3};
}

Curve::Jac Curve::jac_add(const Jac& p1, const Jac& p2) const {
  if (p1.z.is_zero()) return p2;
  if (p2.z.is_zero()) return p1;
  const BigInt z1z1 = fmul(p1.z, p1.z);
  const BigInt z2z2 = fmul(p2.z, p2.z);
  const BigInt u1 = fmul(p1.x, z2z2);
  const BigInt u2 = fmul(p2.x, z1z1);
  const BigInt s1 = fmul(p1.y, fmul(p2.z, z2z2));
  const BigInt s2 = fmul(p2.y, fmul(p1.z, z1z1));
  if (u1 == u2) {
    if (s1 == s2) return jac_dbl(p1);
    return Jac{BigInt{1}, BigInt{1}, BigInt{}};  // P + (-P) = O
  }
  const BigInt h = fsub(u2, u1);
  const BigInt i = fmul(fadd(h, h), fadd(h, h));
  const BigInt j = fmul(h, i);
  const BigInt r = fadd(fsub(s2, s1), fsub(s2, s1));
  const BigInt v = fmul(u1, i);
  const BigInt x3 = fsub(fsub(fmul(r, r), j), fadd(v, v));
  const BigInt y3 = fsub(fmul(r, fsub(v, x3)), fadd(fmul(s1, j), fmul(s1, j)));
  const BigInt z3 = fmul(fsub(fsub(fmul(fadd(p1.z, p2.z), fadd(p1.z, p2.z)), z1z1), z2z2), h);
  return Jac{x3, y3, z3};
}

Point Curve::add(const Point& p1, const Point& p2) const {
  return from_jac(jac_add(to_jac(p1), to_jac(p2)));
}

Point Curve::dbl(const Point& pt) const { return from_jac(jac_dbl(to_jac(pt))); }

Point Curve::mul(const BigInt& k_in, const Point& pt) const {
  return mul_raw(k_in.mod(n_), pt);
}

Point Curve::mul_raw(const BigInt& k_in, const Point& pt) const {
  BigInt k = k_in;
  if (k.negative()) return mul_raw(-k, neg(pt));
  if (k.is_zero() || pt.infinity) return Point::at_infinity();

  // 4-bit window over Jacobian coordinates.
  const Jac base = to_jac(pt);
  std::array<Jac, 16> table;
  table[0] = Jac{BigInt{1}, BigInt{1}, BigInt{}};
  table[1] = base;
  for (std::size_t i = 2; i < 16; ++i) table[i] = jac_add(table[i - 1], base);

  Jac acc{BigInt{1}, BigInt{1}, BigInt{}};
  const std::size_t windows = (k.bit_length() + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    acc = jac_dbl(acc);
    acc = jac_dbl(acc);
    acc = jac_dbl(acc);
    acc = jac_dbl(acc);
    std::size_t digit = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      if (k.bit(w * 4 + b)) digit |= 1ULL << b;
    }
    if (digit != 0) acc = jac_add(acc, table[digit]);
  }
  return from_jac(acc);
}

Point Curve::mul_add(const BigInt& k1, const BigInt& k2, const Point& q) const {
  // Shamir's trick: simultaneous ladder over G and Q.
  const Jac jg = to_jac(g_);
  const Jac jq = to_jac(q);
  const Jac jgq = jac_add(jg, jq);
  const BigInt a = k1.mod(n_);
  const BigInt b = k2.mod(n_);
  const std::size_t bits = std::max(a.bit_length(), b.bit_length());
  Jac acc{BigInt{1}, BigInt{1}, BigInt{}};
  for (std::size_t i = bits; i-- > 0;) {
    acc = jac_dbl(acc);
    const bool ba = a.bit(i);
    const bool bb = b.bit(i);
    if (ba && bb) acc = jac_add(acc, jgq);
    else if (ba) acc = jac_add(acc, jg);
    else if (bb) acc = jac_add(acc, jq);
  }
  return from_jac(acc);
}

const Curve& secp160r1() {
  static const Curve curve = [] {
    const BigInt p = BigInt::from_hex("ffffffffffffffffffffffffffffffff7fffffff");
    const BigInt a = p - BigInt{3};
    const BigInt b = BigInt::from_hex("1c97befc54bd7a8b65acf89f81d4d4adc565fa45");
    const Point g{BigInt::from_hex("4a96b5688ef573284664698968c38bb913cbfc82"),
                  BigInt::from_hex("23a628553168947d59dcc912042351377ac5fb32"), false};
    const BigInt n = BigInt::from_hex("0100000000000000000001f4c8f927aed3ca752257");
    return Curve("secp160r1", p, a, b, g, n, BigInt{1});
  }();
  return curve;
}

const Curve& p256() {
  static const Curve curve = [] {
    const BigInt p = BigInt::from_hex(
        "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
    const BigInt a = p - BigInt{3};
    const BigInt b = BigInt::from_hex(
        "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
    const Point g{BigInt::from_hex(
                      "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
                  BigInt::from_hex(
                      "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"),
                  false};
    const BigInt n = BigInt::from_hex(
        "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
    return Curve("P-256", p, a, b, g, n, BigInt{1});
  }();
  return curve;
}

Curve generate_toy_curve(mpint::Rng& rng, std::size_t bits) {
  if (bits < 8 || bits > 28) {
    throw std::invalid_argument("generate_toy_curve: bits must be in [8, 28]");
  }
  const BigInt p = mpint::generate_prime(rng, bits, 24);
  const std::uint64_t pu = p.low_u64();
  while (true) {
    const std::uint64_t a = mpint::random_below(rng, p).low_u64();
    const std::uint64_t b = mpint::random_below(rng, p).low_u64();
    // Reject singular curves: 4a^3 + 27b^2 == 0 mod p.
    const unsigned __int128 disc =
        (static_cast<unsigned __int128>(4) * a % pu * a % pu * a +
         static_cast<unsigned __int128>(27) * b % pu * b) % pu;
    if (disc == 0) continue;

    // Count points directly: infinity + (2 per quadratic-residue RHS,
    // 1 per zero RHS). Equivalent to #E = p + 1 + sum_x chi(x^3+ax+b).
    std::uint64_t count = 1;
    std::uint64_t first_x = 0;
    bool have_point = false;
    std::uint64_t first_y = 0;
    for (std::uint64_t x = 0; x < pu; ++x) {
      const unsigned __int128 rhs128 =
          ((static_cast<unsigned __int128>(x) * x % pu * x) +
           (static_cast<unsigned __int128>(a) * x) + b) % pu;
      const std::uint64_t rhs = static_cast<std::uint64_t>(rhs128);
      if (rhs == 0) {
        ++count;  // one point with y == 0
        continue;
      }
      const int chi = mpint::jacobi(BigInt{rhs}, p);
      if (chi == 1) {
        count += 2;
        if (!have_point) {
          BigInt root;
          // p was chosen freely; only use sqrt when p % 4 == 3, otherwise
          // search y directly (p is tiny).
          if ((pu & 3U) == 3U && mpint::sqrt_mod_p3(BigInt{rhs}, p, root)) {
            first_x = x;
            first_y = root.low_u64();
            have_point = true;
          } else if ((pu & 3U) != 3U) {
            for (std::uint64_t y = 1; y < pu; ++y) {
              if (static_cast<unsigned __int128>(y) * y % pu == rhs) {
                first_x = x;
                first_y = y;
                have_point = true;
                break;
              }
            }
          }
        }
      }
    }
    const BigInt order{count};
    if (!have_point) continue;
    if (!mpint::is_probable_prime(order, rng, 24)) continue;

    const Point g{BigInt{first_x}, BigInt{first_y}, false};
    Curve curve("toy" + std::to_string(bits), p, BigInt{a}, BigInt{b}, g, order, BigInt{1});
    // Sanity: n*G == O.
    if (!curve.mul(order, g).infinity) continue;
    return curve;
  }
}

}  // namespace idgka::ec
