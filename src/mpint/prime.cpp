#include "mpint/prime.h"

#include <array>
#include <stdexcept>

#include "mpint/mod_context.h"

namespace idgka::mpint {

namespace {

// Primes below 1000 for cheap pre-sieving of Miller-Rabin candidates.
constexpr std::array<std::uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151,
    157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
    257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359,
    367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463,
    467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563, 569, 571, 577, 587, 593,
    599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809, 811, 821, 823, 827,
    829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953,
    967, 971, 977, 983, 991, 997};

// n mod d for small d without allocating.
std::uint64_t mod_small(const BigInt& n, std::uint64_t d) {
  unsigned __int128 rem = 0;
  for (std::size_t i = n.limb_count(); i-- > 0;) {
    rem = ((rem << 64) | n.limb(i)) % d;
  }
  return static_cast<std::uint64_t>(rem);
}

}  // namespace

bool is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n.negative() || n < BigInt{2}) return false;
  for (const std::uint32_t p : kSmallPrimes) {
    if (n == BigInt{static_cast<std::uint64_t>(p)}) return true;
    if (mod_small(n, p) == 0) return false;
  }
  // n is odd and > 1000 here.
  const BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (d.is_even()) {
    d >>= 1;
    ++s;
  }

  const ModContext ctx(n);
  for (int round = 0; round < rounds; ++round) {
    const BigInt a = random_range(rng, BigInt{2}, n_minus_1);
    BigInt x = ctx.exp(a, d);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = ctx.mul(x, x);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(Rng& rng, std::size_t bits, int mr_rounds) {
  if (bits < 2) throw std::invalid_argument("generate_prime: bits must be >= 2");
  while (true) {
    BigInt candidate = random_bits(rng, bits);
    if (candidate.is_even()) candidate += BigInt{1};
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, rng, mr_rounds)) return candidate;
  }
}

SchnorrGroup generate_schnorr_group(Rng& rng, std::size_t p_bits, std::size_t q_bits,
                                    int mr_rounds) {
  if (q_bits + 2 > p_bits) {
    throw std::invalid_argument("generate_schnorr_group: p_bits must exceed q_bits");
  }
  SchnorrGroup grp;
  grp.q = generate_prime(rng, q_bits, mr_rounds);
  while (true) {
    // p = k*q + 1 with |p| == p_bits.
    BigInt k = random_bits(rng, p_bits - q_bits);
    if (k.is_odd()) k += BigInt{1};  // keep p odd: even k makes kq even, +1 odd
    BigInt p = k * grp.q + BigInt{1};
    if (p.bit_length() != p_bits) continue;
    if (!is_probable_prime(p, rng, mr_rounds)) continue;
    grp.p = std::move(p);
    // Generator of the order-q subgroup.
    const BigInt exponent = (grp.p - BigInt{1}) / grp.q;
    const ModContext ctx(grp.p);
    while (true) {
      const BigInt h = random_range(rng, BigInt{2}, grp.p - BigInt{1});
      BigInt g = ctx.exp(h, exponent);
      if (!g.is_one()) {
        grp.g = std::move(g);
        return grp;
      }
    }
  }
}

GqModulus generate_gq_modulus(Rng& rng, std::size_t modulus_bits, const BigInt& e,
                              int mr_rounds) {
  if (modulus_bits < 32 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("generate_gq_modulus: modulus_bits must be even and >= 32");
  }
  const std::size_t half = modulus_bits / 2;
  GqModulus key;
  key.e = e;
  while (true) {
    // Force the top two bits of each factor so |p'q'| == modulus_bits exactly.
    auto gen_factor = [&] {
      while (true) {
        BigInt f = random_bits(rng, half);
        if (!f.bit(half - 2)) f += BigInt{1} << (half - 2);
        if (f.is_even()) f += BigInt{1};
        if (f.bit_length() == half && is_probable_prime(f, rng, mr_rounds)) return f;
      }
    };
    key.p_prime = gen_factor();
    key.q_prime = gen_factor();
    if (key.p_prime == key.q_prime) continue;
    const BigInt phi = (key.p_prime - BigInt{1}) * (key.q_prime - BigInt{1});
    if (!gcd(key.e, phi).is_one()) continue;
    key.n = key.p_prime * key.q_prime;
    if (key.n.bit_length() != modulus_bits) continue;
    key.d = mod_inverse(key.e, phi);
    return key;
  }
}

SupersingularParams generate_supersingular_params(Rng& rng, std::size_t p_bits,
                                                  std::size_t q_bits, int mr_rounds) {
  if (q_bits + 2 > p_bits) {
    throw std::invalid_argument("generate_supersingular_params: p_bits must exceed q_bits");
  }
  SupersingularParams params;
  params.q = generate_prime(rng, q_bits, mr_rounds);
  while (true) {
    BigInt c = random_bits(rng, p_bits - q_bits);
    // p = c*q - 1 must be odd => c*q even => force c even.
    if (c.is_odd()) c += BigInt{1};
    BigInt p = c * params.q - BigInt{1};
    if (p.bit_length() != p_bits) continue;
    if ((p.low_u64() & 3U) != 3U) continue;  // need p % 4 == 3
    if (!is_probable_prime(p, rng, mr_rounds)) continue;
    params.p = std::move(p);
    params.cofactor = std::move(c);
    return params;
  }
}

}  // namespace idgka::mpint
