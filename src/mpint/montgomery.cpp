#include "mpint/montgomery.h"

#include <stdexcept>

namespace idgka::mpint {

namespace {

using u128 = unsigned __int128;
using Limb = BigInt::Limb;

// -n^{-1} mod 2^64 via Newton iteration (n odd).
Limb neg_inv64(Limb n) {
  Limb x = n;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2 - n * x;
  return ~x + 1;  // -(n^{-1})
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(BigInt modulus) : n_(std::move(modulus)) {
  if (n_.is_even() || n_ <= BigInt{1}) {
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
  }
  n_limbs_ = n_.limbs();
  k_ = n_limbs_.size();
  n0_inv_ = neg_inv64(n_limbs_[0]);
  rr_ = (BigInt{1} << (2 * 64 * k_)).mod(n_);
  one_mont_ = to_mont(BigInt{1});
}

std::vector<Limb> MontgomeryCtx::mont_mul(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b) const {
  // CIOS (coarsely integrated operand scanning), Koc et al.
  std::vector<Limb> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    Limb carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 s = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    u128 s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<Limb>(s);
    t[k_ + 1] = static_cast<Limb>(s >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const Limb m = t[0] * n0_inv_;
    s = static_cast<u128>(m) * n_limbs_[0] + t[0];
    carry = static_cast<Limb>(s >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      s = static_cast<u128>(m) * n_limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    s = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<Limb>(s);
    t[k_] = t[k_ + 1] + static_cast<Limb>(s >> 64);
    t[k_ + 1] = 0;
  }

  // Conditional final subtraction: result may be in [0, 2n).
  std::vector<Limb> r(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_));
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (r[i] != n_limbs_[i]) {
        ge = r[i] > n_limbs_[i];
        break;
      }
    }
  }
  if (ge) {
    Limb borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const Limb ni = n_limbs_[i];
      const Limb before = r[i];
      const Limb after = before - ni - borrow;
      borrow = (before < ni || (before == ni && borrow != 0)) ? 1 : 0;
      r[i] = after;
    }
  }
  return r;
}

std::vector<Limb> MontgomeryCtx::to_mont(const BigInt& a) const {
  std::vector<Limb> al = a.mod(n_).limbs();
  al.resize(k_, 0);
  std::vector<Limb> rr = rr_.limbs();
  rr.resize(k_, 0);
  return mont_mul(al, rr);
}

BigInt MontgomeryCtx::from_mont(const std::vector<Limb>& a) const {
  std::vector<Limb> one(k_, 0);
  one[0] = 1;
  return BigInt::from_limbs(mont_mul(a, one));
}

BigInt MontgomeryCtx::mul(const BigInt& a, const BigInt& b) const {
  return from_mont(mont_mul(to_mont(a), to_mont(b)));
}

BigInt MontgomeryCtx::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.negative()) throw std::domain_error("MontgomeryCtx::pow: negative exponent");
  if (exp.is_zero()) return BigInt{1}.mod(n_);

  const std::vector<Limb> b = to_mont(base);

  // Precompute b^0..b^15 in Montgomery form (fixed 4-bit window).
  std::vector<std::vector<Limb>> table(16);
  table[0] = one_mont_;
  table[1] = b;
  for (std::size_t i = 2; i < 16; ++i) table[i] = mont_mul(table[i - 1], b);

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;
  std::vector<Limb> acc = one_mont_;
  bool started = false;
  for (std::size_t w = windows; w-- > 0;) {
    if (started) {
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
    }
    std::size_t digit = 0;
    for (std::size_t bitidx = 0; bitidx < 4; ++bitidx) {
      if (exp.bit(w * 4 + bitidx)) digit |= 1ULL << bitidx;
    }
    if (digit != 0) {
      acc = mont_mul(acc, table[digit]);
      started = true;
    } else if (started) {
      // nothing to multiply
    }
  }
  if (!started) return BigInt{1}.mod(n_);  // exp was zero (handled above), defensive
  return from_mont(acc);
}

BigInt MontgomeryCtx::inv(const BigInt& a) const { return mod_inverse(a, n_); }

BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (m.negative()) throw std::domain_error("mod_exp: negative modulus");
  if (exp.negative()) {
    // base^{-e} = (base^{-1})^{e}
    return mod_exp(mod_inverse(base, m), -exp, m);
  }
  if (m.is_one()) return BigInt{};
  if (m.is_odd()) {
    return MontgomeryCtx(m).pow(base.mod(m), exp);
  }
  // Even modulus: plain square-and-multiply (rare path; used only in tests).
  BigInt result{1};
  BigInt b = base.mod(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = mod_mul(result, result, m);
    if (exp.bit(i)) result = mod_mul(result, b, m);
  }
  return result;
}

}  // namespace idgka::mpint
