// Primality testing and parameter generation.
//
// Supplies every number-theoretic parameter the protocols need:
//  * random primes (GQ modulus factors p', q'),
//  * Schnorr groups p = kq + 1 with generator g of order q (the BD / DSA
//    group of the paper: |p| = 1024, |q| = 160),
//  * pairing-friendly supersingular primes p = cq - 1 with p % 4 == 3,
//  * RSA-type GQ key material (n = p'q', e, d with ed == 1 mod phi(n)).
#pragma once

#include <cstdint>

#include "mpint/bigint.h"
#include "mpint/random.h"

namespace idgka::mpint {

/// Miller-Rabin with `rounds` random bases plus a small-prime sieve.
/// Error probability <= 4^-rounds for odd composites.
[[nodiscard]] bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 32);

/// Random prime with exactly `bits` bits.
[[nodiscard]] BigInt generate_prime(Rng& rng, std::size_t bits, int mr_rounds = 32);

/// Schnorr group: prime q of `q_bits` bits, prime p = kq + 1 of `p_bits`
/// bits, generator g of order q in Z_p^*.
struct SchnorrGroup {
  BigInt p;
  BigInt q;
  BigInt g;
};
[[nodiscard]] SchnorrGroup generate_schnorr_group(Rng& rng, std::size_t p_bits,
                                                  std::size_t q_bits, int mr_rounds = 32);

/// GQ / RSA-type key material: n = p'q' with |n| = modulus_bits, public
/// exponent e coprime to phi(n), d = e^{-1} mod phi(n).
struct GqModulus {
  BigInt n;
  BigInt e;
  BigInt d;        // master secret (PKG only)
  BigInt p_prime;  // factor (PKG only)
  BigInt q_prime;  // factor (PKG only)
};
[[nodiscard]] GqModulus generate_gq_modulus(Rng& rng, std::size_t modulus_bits,
                                            const BigInt& e = BigInt{65537},
                                            int mr_rounds = 32);

/// Supersingular pairing parameters: prime q (group order, `q_bits` bits) and
/// prime p = c*q - 1 with |p| = p_bits and p % 4 == 3 (so y^2 = x^3 + x is
/// supersingular over F_p with #E(F_p) = p + 1 divisible by q).
struct SupersingularParams {
  BigInt p;
  BigInt q;
  BigInt cofactor;  // (p + 1) / q
};
[[nodiscard]] SupersingularParams generate_supersingular_params(Rng& rng, std::size_t p_bits,
                                                                std::size_t q_bits,
                                                                int mr_rounds = 32);

}  // namespace idgka::mpint
