// Montgomery-form modular arithmetic for odd moduli — compatibility wrapper.
//
// The implementation lives in mpint::ModContext (mod_context.h), the shared
// per-modulus context layer: cached Montgomery constants, k-ary windowed
// exponentiation over the allocation-free residue kernels (raw-limb CIOS
// multiply plus the dedicated squaring kernel) and optional fixed-base comb
// tables. MontgomeryCtx remains as the historical odd-modulus-only facade;
// new code should hold a ModContext (and a FixedBaseTable for
// repeated-generator exponentiation) directly — chained computations should
// prefer the Residue API (ModContext::to_residue / mul / sqr / exp), which
// converts once per chain instead of per call. Constructing a context is
// O(size^2); callers cache one context per long-lived modulus (see
// gka::SystemParams).
#pragma once

#include <stdexcept>

#include "mpint/bigint.h"
#include "mpint/mod_context.h"

namespace idgka::mpint {

/// Reusable Montgomery context for a fixed odd modulus.
class MontgomeryCtx {
 public:
  /// Throws std::invalid_argument unless modulus is odd and > 1.
  explicit MontgomeryCtx(BigInt modulus) : ctx_(require_odd(std::move(modulus))) {}

  [[nodiscard]] const BigInt& modulus() const { return ctx_.modulus(); }

  /// (a * b) mod n. Accepts any a, b (reduced internally).
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const { return ctx_.mul(a, b); }

  /// base^exp mod n, exp >= 0. Fixed-window Montgomery ladder.
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exp) const {
    if (exp.negative()) throw std::domain_error("MontgomeryCtx::pow: negative exponent");
    return ctx_.exp(base, exp);
  }

  /// a^(-1) mod n; throws std::domain_error if not invertible.
  [[nodiscard]] BigInt inv(const BigInt& a) const { return ctx_.inv(a); }

  /// The underlying shared context (for callers migrating off the wrapper).
  [[nodiscard]] const ModContext& context() const { return ctx_; }

 private:
  static BigInt require_odd(BigInt modulus) {
    if (modulus.is_even() || modulus <= BigInt{1}) {
      throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
    }
    return modulus;
  }

  ModContext ctx_;
};

}  // namespace idgka::mpint
