// Montgomery-form modular arithmetic for odd moduli.
//
// All heavy exponentiation in the repository (GQ signatures, BD key
// agreement, DSA, SSN) goes through MontgomeryCtx::pow, a CIOS Montgomery
// multiplier with a fixed 4-bit window. Constructing a context is O(size^2);
// callers cache one context per long-lived modulus (see gka::SystemParams).
#pragma once

#include <cstdint>
#include <vector>

#include "mpint/bigint.h"

namespace idgka::mpint {

/// Reusable Montgomery context for a fixed odd modulus.
class MontgomeryCtx {
 public:
  /// Throws std::invalid_argument unless modulus is odd and > 1.
  explicit MontgomeryCtx(BigInt modulus);

  [[nodiscard]] const BigInt& modulus() const { return n_; }

  /// (a * b) mod n. Accepts any non-negative a, b < n.
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^exp mod n, exp >= 0. Fixed 4-bit-window ladder.
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exp) const;

  /// a^(-1) mod n; throws std::domain_error if not invertible.
  [[nodiscard]] BigInt inv(const BigInt& a) const;

 private:
  using Limb = BigInt::Limb;

  [[nodiscard]] std::vector<Limb> to_mont(const BigInt& a) const;
  [[nodiscard]] BigInt from_mont(const std::vector<Limb>& a) const;
  // CIOS multiply of two Montgomery-form operands (length k_ each).
  [[nodiscard]] std::vector<Limb> mont_mul(const std::vector<Limb>& a,
                                           const std::vector<Limb>& b) const;

  BigInt n_;
  std::vector<Limb> n_limbs_;
  std::size_t k_ = 0;   // limb count of the modulus
  Limb n0_inv_ = 0;     // -n^{-1} mod 2^64
  BigInt rr_;           // R^2 mod n, R = 2^(64k)
  std::vector<Limb> one_mont_;  // R mod n
};

}  // namespace idgka::mpint
