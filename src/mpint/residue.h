// Residue — fixed-width limb storage for one modular-arithmetic operand.
//
// A Residue is the in-domain representation used by ModContext's hot paths:
// for an odd (Montgomery) modulus it holds the Montgomery form a*R mod n, for
// an even modulus the canonical value a mod n. Its storage is a fixed-capacity
// inline limb array sized at construction from the owning context's limb
// count, so every arithmetic step (mont_mul, mont_sqr, exp ladders, comb
// walks) runs without touching the heap; moduli wider than kInlineLimbs
// (2048 bits) spill to a single heap block allocated once at construction,
// never per operation.
//
// Residues are plain value types: copy/move/compare work limb-wise, and a
// Residue is only meaningful with the ModContext that produced it (the
// context checks the limb count and trusts the caller on modulus identity,
// matching the FixedBaseTable contract). Conversions happen exactly once at
// the domain boundary — ModContext::to_residue / from_residue — and all
// in-domain operations (ModContext::mul/sqr/exp over Residue&) are
// aliasing-safe: `ctx.mul(r, r, r)` squares in place.
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <memory>

#include "mpint/bigint.h"

namespace idgka::mpint {

class ModContext;

/// Fixed-capacity modular residue; see file comment for the domain contract.
class Residue {
 public:
  using Limb = BigInt::Limb;
  /// Widest modulus (in limbs) stored inline: 2048 bits. Wider moduli take
  /// one heap block at construction and stay allocation-free afterwards.
  static constexpr std::size_t kInlineLimbs = 32;

  /// Empty residue (size 0); assign from a sized one before use.
  Residue() = default;

  /// Zero-valued residue sized for `ctx` (ctx.limb_count() limbs).
  explicit Residue(const ModContext& ctx);

  Residue(const Residue& o) { assign(o.limbs(), o.k_); }
  Residue& operator=(const Residue& o) {
    if (this != &o) assign(o.limbs(), o.k_);
    return *this;
  }
  Residue(Residue&& o) noexcept = default;
  Residue& operator=(Residue&& o) noexcept = default;

  /// Limb count (the owning context's modulus width); 0 when empty.
  [[nodiscard]] std::size_t size() const { return k_; }
  [[nodiscard]] bool empty() const { return k_ == 0; }

  /// Raw little-endian limbs; exactly size() limbs are meaningful.
  [[nodiscard]] Limb* limbs() { return heap_ ? heap_.get() : inline_.data(); }
  [[nodiscard]] const Limb* limbs() const {
    return heap_ ? heap_.get() : inline_.data();
  }

  /// Does this residue represent 0? (Zero maps to zero in both domains.)
  [[nodiscard]] bool is_zero() const {
    for (std::size_t i = 0; i < k_; ++i) {
      if (limbs()[i] != 0) return false;
    }
    return true;
  }

  /// Limb-wise equality: two residues of one context compare equal iff they
  /// represent the same element (both domains keep a unique representative).
  bool operator==(const Residue& o) const {
    return k_ == o.k_ && std::memcmp(limbs(), o.limbs(), k_ * sizeof(Limb)) == 0;
  }

 private:
  friend class ModContext;

  /// (Re)sizes to `k` limbs, zero-filled. Allocates only when k exceeds the
  /// inline capacity — and then only once per growth, never per operation.
  void resize(std::size_t k) {
    if (k > kInlineLimbs && (heap_ == nullptr || k > k_)) {
      heap_ = std::make_unique<Limb[]>(k);
    }
    k_ = k;
    std::memset(limbs(), 0, k_ * sizeof(Limb));
  }

  void assign(const Limb* src, std::size_t k) {
    if (k > kInlineLimbs && (heap_ == nullptr || k > k_)) {
      heap_ = std::make_unique<Limb[]>(k);
    }
    k_ = k;
    std::memcpy(limbs(), src, k_ * sizeof(Limb));
  }

  std::size_t k_ = 0;
  std::array<Limb, kInlineLimbs> inline_{};
  std::unique_ptr<Limb[]> heap_;  // engaged only for > kInlineLimbs moduli
};

}  // namespace idgka::mpint
