#include "mpint/mod_context.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "obs/trace.h"

namespace idgka::mpint {

namespace {

using u128 = unsigned __int128;
using Limb = BigInt::Limb;

std::atomic<std::uint64_t> g_exps{0};
std::atomic<std::uint64_t> g_mod_muls{0};
std::atomic<std::uint64_t> g_multi_exps{0};

// -n^{-1} mod 2^64 via Newton iteration (n odd).
Limb neg_inv64(Limb n) {
  Limb x = n;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2 - n * x;
  return ~x + 1;  // -(n^{-1})
}

unsigned clamp_window(unsigned w) { return w < 2 ? 2 : (w > 8 ? 8 : w); }

// Shrink the window for short exponents so the 2^w-entry table pays for
// itself (thresholds follow the usual bits-per-window break-even points).
unsigned fit_window(unsigned w, std::size_t exp_bits) {
  const unsigned cap = exp_bits <= 23 ? 2 : exp_bits <= 79 ? 3 : exp_bits <= 239 ? 4 : w;
  return cap < w ? cap : w;
}

// Left-to-right (MSB-first) fixed-window scan shared by both
// exponentiation engines: w squarings per window, then one multiply by
// `table[digit]`. `table[j]` must hold base^j; sqr/mul are the engine
// primitives. Returns {accumulator, started}; started == false means the
// exponent was zero.
template <typename T, typename Sqr, typename Mul>
std::pair<T, bool> scan_windows(const BigInt& e, unsigned w, const std::vector<T>& table,
                                Sqr&& sqr, Mul&& mul) {
  const std::size_t windows = (e.bit_length() + w - 1) / w;
  T acc{};
  bool started = false;
  for (std::size_t win = windows; win-- > 0;) {
    if (started) {
      for (unsigned s = 0; s < w; ++s) acc = sqr(acc);
    }
    std::size_t digit = 0;
    for (unsigned b = 0; b < w; ++b) {
      if (e.bit(win * w + b)) digit |= std::size_t{1} << b;
    }
    if (digit != 0) {
      if (started) {
        acc = mul(acc, table[digit]);
      } else {
        acc = table[digit];
        started = true;
      }
    }
  }
  return {std::move(acc), started};
}

}  // namespace

OpCounts op_counts() {
  return OpCounts{g_exps.load(std::memory_order_relaxed),
                  g_mod_muls.load(std::memory_order_relaxed),
                  g_multi_exps.load(std::memory_order_relaxed)};
}

#if IDGKA_OBS
namespace {
/// Surfaces the crypto op counters in obs::Registry snapshots as probes —
/// read lazily at snapshot time, zero cost on the arithmetic hot path.
const bool g_crypto_probes = [] {
  obs::Registry::global().register_probe(
      "crypto.exps", [] { return g_exps.load(std::memory_order_relaxed); });
  obs::Registry::global().register_probe(
      "crypto.mod_muls", [] { return g_mod_muls.load(std::memory_order_relaxed); });
  obs::Registry::global().register_probe(
      "crypto.multi_exps", [] { return g_multi_exps.load(std::memory_order_relaxed); });
  return true;
}();
}  // namespace
#endif

std::size_t FixedBaseTable::table_bytes() const {
  std::size_t total = 0;
  for (const auto& entry : table_) total += entry.size() * sizeof(Limb);
  return total;
}

ModContext::ModContext(BigInt modulus, unsigned window_bits) : n_(std::move(modulus)) {
  if (n_ <= BigInt{1}) {
    throw std::invalid_argument("ModContext: modulus must be > 1");
  }
  window_ = window_bits == 0 ? (n_.bit_length() >= 512 ? 5 : 4) : clamp_window(window_bits);
  mont_ = n_.is_odd();
  if (!mont_) return;  // generic path needs nothing precomputed
  n_limbs_ = n_.limbs();
  k_ = n_limbs_.size();
  n0_inv_ = neg_inv64(n_limbs_[0]);
  rr_ = (BigInt{1} << (2 * 64 * k_)).mod(n_);
  std::uint64_t muls = 0;
  one_mont_ = to_mont(BigInt{1}, muls);
}

std::vector<Limb> ModContext::mont_mul(const std::vector<Limb>& a,
                                       const std::vector<Limb>& b) const {
  // CIOS (coarsely integrated operand scanning), Koc et al.
  std::vector<Limb> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    Limb carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 s = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    u128 s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<Limb>(s);
    t[k_ + 1] = static_cast<Limb>(s >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const Limb m = t[0] * n0_inv_;
    s = static_cast<u128>(m) * n_limbs_[0] + t[0];
    carry = static_cast<Limb>(s >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      s = static_cast<u128>(m) * n_limbs_[j] + t[j] + carry;
      t[j - 1] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    s = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<Limb>(s);
    t[k_] = t[k_ + 1] + static_cast<Limb>(s >> 64);
    t[k_ + 1] = 0;
  }

  // Conditional final subtraction: result may be in [0, 2n).
  std::vector<Limb> r(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_));
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (r[i] != n_limbs_[i]) {
        ge = r[i] > n_limbs_[i];
        break;
      }
    }
  }
  if (ge) {
    Limb borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const Limb ni = n_limbs_[i];
      const Limb before = r[i];
      const Limb after = before - ni - borrow;
      borrow = (before < ni || (before == ni && borrow != 0)) ? 1 : 0;
      r[i] = after;
    }
  }
  return r;
}

std::vector<Limb> ModContext::to_mont(const BigInt& a, std::uint64_t& muls) const {
  // Operands are usually already in [0, n); skip the division then.
  std::vector<Limb> al = (!a.negative() && a < n_) ? a.limbs() : a.mod(n_).limbs();
  al.resize(k_, 0);
  std::vector<Limb> rr = rr_.limbs();
  rr.resize(k_, 0);
  ++muls;
  return mont_mul(al, rr);
}

BigInt ModContext::from_mont(const std::vector<Limb>& a, std::uint64_t& muls) const {
  std::vector<Limb> one(k_, 0);
  one[0] = 1;
  ++muls;
  return BigInt::from_limbs(mont_mul(a, one));
}

BigInt ModContext::mul(const BigInt& a, const BigInt& b) const {
  std::uint64_t muls = 0;
  BigInt r;
  if (mont_) {
    ++muls;
    r = from_mont(mont_mul(to_mont(a, muls), to_mont(b, muls)), muls);
  } else {
    ++muls;
    r = (a * b).mod(n_);
  }
  g_mod_muls.fetch_add(muls, std::memory_order_relaxed);
  return r;
}

BigInt ModContext::inv(const BigInt& a) const { return mod_inverse(a, n_); }

BigInt ModContext::exp_mont(const BigInt& base, const BigInt& e, std::uint64_t& muls) const {
  const std::size_t bits = e.bit_length();
  if (bits == 0) return BigInt{1}.mod(n_);
  return from_mont(exp_mont_core(to_mont(base, muls), e, muls), muls);
}

std::vector<Limb> ModContext::exp_mont_core(const std::vector<Limb>& base_m, const BigInt& e,
                                            std::uint64_t& muls) const {
  const std::size_t bits = e.bit_length();
  if (bits == 0) return one_mont_;

  // Sliding-window exponentiation over odd powers only: the table holds
  // base^1, base^3, ..., base^(2^w - 1), which halves the precompute cost
  // versus a full 2^w table, and windows are anchored on set bits so runs
  // of zeros cost squarings alone.
  const unsigned w = fit_window(window_, bits);
  const std::size_t tsize = std::size_t{1} << (w - 1);
  std::vector<std::vector<Limb>> odd(tsize);
  odd[0] = base_m;
  if (tsize > 1) {
    ++muls;
    const std::vector<Limb> sq = mont_mul(odd[0], odd[0]);
    for (std::size_t j = 1; j < tsize; ++j) {
      ++muls;
      odd[j] = mont_mul(odd[j - 1], sq);
    }
  }

  std::vector<Limb> acc;
  bool started = false;
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!e.bit(static_cast<std::size_t>(i))) {
      ++muls;
      acc = mont_mul(acc, acc);
      --i;
      continue;
    }
    // Longest window of at most w bits ending on a set bit: [j, i].
    std::ptrdiff_t j = i - static_cast<std::ptrdiff_t>(w) + 1;
    if (j < 0) j = 0;
    while (!e.bit(static_cast<std::size_t>(j))) ++j;
    std::size_t digit = 0;
    for (std::ptrdiff_t b = i; b >= j; --b) {
      digit = (digit << 1) | (e.bit(static_cast<std::size_t>(b)) ? 1U : 0U);
    }
    if (started) {
      for (std::ptrdiff_t b = i; b >= j; --b) {
        ++muls;
        acc = mont_mul(acc, acc);
      }
      ++muls;
      acc = mont_mul(acc, odd[digit >> 1]);
    } else {
      acc = odd[digit >> 1];
      started = true;
    }
    i = j - 1;
  }
  return acc;
}

BigInt ModContext::exp_generic(const BigInt& base, const BigInt& e,
                               std::uint64_t& muls) const {
  const std::size_t bits = e.bit_length();
  if (bits == 0) return BigInt{1}.mod(n_);

  const unsigned w = fit_window(window_, bits);
  std::vector<BigInt> table(std::size_t{1} << w);
  table[0] = BigInt{1};
  table[1] = base.mod(n_);
  for (std::size_t j = 2; j < table.size(); ++j) {
    ++muls;
    table[j] = (table[j - 1] * table[1]).mod(n_);
  }

  auto [acc, started] = scan_windows(
      e, w, table,
      [&](const BigInt& a) {
        ++muls;
        return (a * a).mod(n_);
      },
      [&](const BigInt& a, const BigInt& b) {
        ++muls;
        return (a * b).mod(n_);
      });
  return started ? acc : BigInt{1};  // unreachable fallback: bits > 0 here
}

BigInt ModContext::exp_any(const BigInt& base, const BigInt& e, std::uint64_t& muls) const {
  if (e.negative()) return exp_any(mod_inverse(base, n_), -e, muls);
  return mont_ ? exp_mont(base, e, muls) : exp_generic(base, e, muls);
}

BigInt ModContext::exp(const BigInt& base, const BigInt& e) const {
  std::uint64_t muls = 0;
  BigInt r = exp_any(base, e, muls);
  g_exps.fetch_add(1, std::memory_order_relaxed);
  g_mod_muls.fetch_add(muls, std::memory_order_relaxed);
  return r;
}

namespace {

// Bits [pos, pos + w) of |e| as a window digit.
std::size_t exp_digit(const BigInt& e, std::size_t pos, unsigned w) {
  std::size_t digit = 0;
  for (unsigned b = 0; b < w; ++b) {
    if (e.bit(pos + b)) digit |= std::size_t{1} << b;
  }
  return digit;
}

std::size_t max_exp_bits(std::span<const BigInt* const> exps) {
  std::size_t bits = 0;
  for (const BigInt* e : exps) bits = std::max(bits, e->bit_length());
  return bits;
}

}  // namespace

// Shamir/Straus interleaved joint exponentiation: one shared squaring chain
// over the widest exponent, with a per-base window table. Per window
// position: w squarings plus at most one table multiply per base.
std::vector<Limb> ModContext::straus_mont(std::span<const std::vector<Limb>* const> bases,
                                          std::span<const BigInt* const> exps,
                                          std::uint64_t& muls) const {
  const std::size_t arity = bases.size();
  if (arity == 1) return exp_mont_core(*bases[0], *exps[0], muls);
  const std::size_t bits = max_exp_bits(exps);
  const unsigned w = fit_window(window_, bits);
  const std::size_t windows = (bits + w - 1) / w;

  // tables[t][j] = base_t^j (j >= 1) in the Montgomery domain, built lazily
  // up to the largest window digit that exponent actually produces — a term
  // with a short or sparse exponent pays only for the powers it uses.
  std::vector<std::vector<std::vector<Limb>>> tables(arity);
  for (std::size_t t = 0; t < arity; ++t) {
    std::size_t max_digit = 0;
    for (std::size_t win = 0; win < windows; ++win) {
      max_digit = std::max(max_digit, exp_digit(*exps[t], win * w, w));
    }
    auto& table = tables[t];
    table.resize(max_digit + 1);
    if (max_digit >= 1) table[1] = *bases[t];
    for (std::size_t j = 2; j < table.size(); ++j) {
      ++muls;
      table[j] = mont_mul(table[j - 1], table[1]);
    }
  }

  std::vector<Limb> acc;
  bool started = false;
  for (std::size_t win = windows; win-- > 0;) {
    if (started) {
      for (unsigned s = 0; s < w; ++s) {
        ++muls;
        acc = mont_mul(acc, acc);
      }
    }
    for (std::size_t t = 0; t < arity; ++t) {
      const std::size_t digit = exp_digit(*exps[t], win * w, w);
      if (digit == 0) continue;
      if (started) {
        ++muls;
        acc = mont_mul(acc, tables[t][digit]);
      } else {
        acc = tables[t][digit];
        started = true;
      }
    }
  }
  return started ? acc : one_mont_;
}

// Pippenger bucket aggregation for wide products: per c-bit window, each
// base lands in the bucket of its digit, and the window sum
// prod_j bucket[j]^j falls out of one suffix-product sweep — per-window
// cost is O(n + 2^c) multiplies instead of O(n * c) squarings.
std::vector<Limb> ModContext::pippenger_mont(std::span<const std::vector<Limb>* const> bases,
                                             std::span<const BigInt* const> exps,
                                             std::uint64_t& muls) const {
  const std::size_t n = bases.size();
  const std::size_t bits = max_exp_bits(exps);

  // Window width by direct cost argmin. Per window: ~n bucket fills, up to
  // min(n, buckets) running-product multiplies, and — because the suffix
  // sweep must touch every index below the highest occupied bucket — up to
  // `buckets` window-sum multiplies.
  unsigned c = 1;
  std::uint64_t best_cost = ~0ULL;
  for (unsigned cand = 1; cand <= 16 && (std::size_t{1} << cand) <= 4 * n + 4; ++cand) {
    const std::uint64_t windows = (bits + cand - 1) / cand;
    const std::uint64_t buckets = (std::size_t{1} << cand) - 1;
    const std::uint64_t cost =
        windows * (n + std::min<std::uint64_t>(n, buckets) + buckets);
    if (cost < best_cost) {
      best_cost = cost;
      c = cand;
    }
  }

  const std::size_t windows = (bits + c - 1) / c;
  std::vector<std::vector<Limb>> bucket(std::size_t{1} << c);
  std::vector<Limb> acc;
  bool started = false;
  for (std::size_t win = windows; win-- > 0;) {
    if (started) {
      for (unsigned s = 0; s < c; ++s) {
        ++muls;
        acc = mont_mul(acc, acc);
      }
    }
    for (auto& b : bucket) b.clear();
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t digit = exp_digit(*exps[t], win * c, c);
      if (digit == 0) continue;
      if (bucket[digit].empty()) {
        bucket[digit] = *bases[t];
      } else {
        ++muls;
        bucket[digit] = mont_mul(bucket[digit], *bases[t]);
      }
    }
    // prod_j bucket[j]^j == prod of running suffix products.
    std::vector<Limb> running;
    std::vector<Limb> wsum;
    for (std::size_t j = bucket.size(); j-- > 1;) {
      if (!bucket[j].empty()) {
        if (running.empty()) {
          running = bucket[j];
        } else {
          ++muls;
          running = mont_mul(running, bucket[j]);
        }
      }
      if (running.empty()) continue;
      if (wsum.empty()) {
        wsum = running;
      } else {
        ++muls;
        wsum = mont_mul(wsum, running);
      }
    }
    if (wsum.empty()) continue;
    if (started) {
      ++muls;
      acc = mont_mul(acc, wsum);
    } else {
      acc = std::move(wsum);
      started = true;
    }
  }
  return started ? acc : one_mont_;
}

BigInt ModContext::multi_exp(std::span<const BigInt> bases, std::span<const BigInt> exps) const {
  if (bases.size() != exps.size()) {
    throw std::invalid_argument("ModContext::multi_exp: bases/exps size mismatch");
  }
  std::uint64_t muls = 0;
  BigInt r;
  if (!mont_) {
    // Even-modulus fallback: sequential generic exponentiation.
    r = BigInt{1}.mod(n_);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (exps[i].is_zero()) continue;
      ++muls;
      r = (r * exp_any(bases[i], exps[i], muls)).mod(n_);
    }
  } else {
    // Terms with negative exponents swap in the inverted base; zero
    // exponents drop out. Everything else is partitioned by exponent width.
    std::vector<BigInt> inverted;
    inverted.reserve(bases.size());
    std::vector<std::vector<Limb>> mont_bases(bases.size());
    std::vector<const std::vector<Limb>*> narrow_b, wide_b;
    std::vector<const BigInt*> narrow_e, wide_e;
    constexpr std::size_t kNarrowBits = 64;
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (exps[i].is_zero()) continue;
      const BigInt* e = &exps[i];
      if (e->negative()) {
        inverted.push_back(-exps[i]);
        mont_bases[i] = to_mont(mod_inverse(bases[i], n_), muls);
        e = &inverted.back();
      } else {
        mont_bases[i] = to_mont(bases[i], muls);
      }
      if (e->bit_length() <= kNarrowBits) {
        narrow_b.push_back(&mont_bases[i]);
        narrow_e.push_back(e);
      } else {
        wide_b.push_back(&mont_bases[i]);
        wide_e.push_back(e);
      }
    }
    std::vector<Limb> acc = one_mont_;
    bool have = false;
    for (const bool narrow : {true, false}) {
      const auto& b = narrow ? narrow_b : wide_b;
      const auto& e = narrow ? narrow_e : wide_e;
      if (b.empty()) continue;
      std::vector<Limb> part = b.size() <= 8 ? straus_mont(b, e, muls)
                                             : pippenger_mont(b, e, muls);
      if (have) {
        ++muls;
        acc = mont_mul(acc, part);
      } else {
        acc = std::move(part);
        have = true;
      }
    }
    r = from_mont(acc, muls);
  }
  g_multi_exps.fetch_add(1, std::memory_order_relaxed);
  g_mod_muls.fetch_add(muls, std::memory_order_relaxed);
  return r;
}

BigInt ModContext::product(std::span<const BigInt> values) const {
  std::uint64_t muls = 0;
  BigInt r;
  if (values.empty()) {
    r = BigInt{1}.mod(n_);
  } else if (mont_) {
    // Conversion-free Montgomery chain: mont_mul over canonical residues
    // accumulates an R^{-(k-1)} deficit across k factors, cancelled by a
    // single multiply with R^k (i.e. the Montgomery form of R^{k-1}) — so
    // a k-term product costs k + O(log k) multiplies, not 2k.
    const auto canon = [this](const BigInt& v) {
      std::vector<Limb> l = (!v.negative() && v < n_) ? v.limbs() : v.mod(n_).limbs();
      l.resize(k_, 0);
      return l;
    };
    std::vector<Limb> acc = canon(values[0]);
    for (std::size_t i = 1; i < values.size(); ++i) {
      ++muls;
      acc = mont_mul(acc, canon(values[i]));
    }
    const std::uint64_t deficit = values.size() - 1;
    if (deficit > 0) {
      std::vector<Limb> rr = rr_.limbs();
      rr.resize(k_, 0);
      const std::vector<Limb> fix = exp_mont_core(rr, BigInt{deficit}, muls);
      ++muls;
      acc = mont_mul(acc, fix);
    }
    r = BigInt::from_limbs(acc);
  } else {
    r = values[0].mod(n_);
    for (std::size_t i = 1; i < values.size(); ++i) {
      ++muls;
      r = (r * values[i]).mod(n_);
    }
  }
  g_mod_muls.fetch_add(muls, std::memory_order_relaxed);
  return r;
}

BigInt ModContext::exp_comb(const FixedBaseTable& table, const BigInt& e,
                            std::uint64_t& muls) const {
  const std::size_t d = table.block_;
  std::vector<Limb> acc;
  bool started = false;
  for (std::size_t k = d; k-- > 0;) {
    if (started) {
      ++muls;
      acc = mont_mul(acc, acc);
    }
    std::size_t digit = 0;
    for (unsigned tooth = 0; tooth < table.teeth_; ++tooth) {
      if (e.bit(tooth * d + k)) digit |= std::size_t{1} << tooth;
    }
    if (digit != 0) {
      if (started) {
        ++muls;
        acc = mont_mul(acc, table.table_[digit]);
      } else {
        acc = table.table_[digit];
        started = true;
      }
    }
  }
  if (!started) return BigInt{1}.mod(n_);  // e == 0
  return from_mont(acc, muls);
}

BigInt ModContext::exp(const FixedBaseTable& table, const BigInt& e) const {
  if (table.mod_fingerprint_ != n_.limbs()) {
    throw std::invalid_argument("ModContext::exp: fixed-base table from another modulus");
  }
  std::uint64_t muls = 0;
  BigInt r;
  if (table.comb_available() && mont_ && !e.negative() &&
      e.bit_length() <= table.bits_) {
    r = exp_comb(table, e, muls);
  } else {
    r = exp_any(table.base_, e, muls);
  }
  g_exps.fetch_add(1, std::memory_order_relaxed);
  g_mod_muls.fetch_add(muls, std::memory_order_relaxed);
  return r;
}

FixedBaseTable ModContext::make_fixed_base(const BigInt& base, std::size_t max_exp_bits,
                                           unsigned teeth) const {
  FixedBaseTable t;
  t.base_ = base.mod(n_);
  t.mod_fingerprint_ = n_.limbs();
  t.bits_ = max_exp_bits == 0 ? 1 : max_exp_bits;
  if (!mont_) return t;  // comb unavailable; exp() falls back to the ladder

  const unsigned h = teeth == 0 ? 6 : (teeth > 8 ? 8 : teeth);
  t.teeth_ = h;
  t.block_ = (t.bits_ + h - 1) / h;

  std::uint64_t muls = 0;
  // P[i] = base^(2^(i*d)) in Montgomery form.
  std::vector<std::vector<Limb>> p(h);
  p[0] = to_mont(t.base_, muls);
  for (unsigned i = 1; i < h; ++i) {
    p[i] = p[i - 1];
    for (std::size_t s = 0; s < t.block_; ++s) {
      ++muls;
      p[i] = mont_mul(p[i], p[i]);
    }
  }
  // T[j] = prod over set bits i of j: P[i]; filled via lowest-set-bit split.
  t.table_.assign(std::size_t{1} << h, {});
  t.table_[0] = one_mont_;
  for (std::size_t j = 1; j < t.table_.size(); ++j) {
    unsigned low = 0;
    while (((j >> low) & 1U) == 0) ++low;
    const std::size_t rest = j & (j - 1);
    if (rest == 0) {
      t.table_[j] = p[low];
    } else {
      ++muls;
      t.table_[j] = mont_mul(t.table_[rest], p[low]);
    }
  }
  g_mod_muls.fetch_add(muls, std::memory_order_relaxed);
  return t;
}

bool sqrt_mod_p3(const ModContext& ctx, const BigInt& a, BigInt& out) {
  const BigInt& p = ctx.modulus();
  if ((p.low_u64() & 3U) != 3U) {
    throw std::domain_error("sqrt_mod_p3: requires p % 4 == 3");
  }
  const BigInt candidate = ctx.exp(a.mod(p), (p + BigInt{1}) >> 2);
  if (ctx.mul(candidate, candidate) != a.mod(p)) return false;
  out = candidate;
  return true;
}

BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (m.negative()) throw std::domain_error("mod_exp: negative modulus");
  if (m.is_one()) return BigInt{};
  // Compatibility shim: every call pays a full context derivation. Hot paths
  // construct a ModContext once and reuse it.
  return ModContext(m).exp(base, exp);
}

}  // namespace idgka::mpint
