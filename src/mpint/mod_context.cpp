#include "mpint/mod_context.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "obs/trace.h"

namespace idgka::mpint {

namespace {

using u128 = unsigned __int128;
using Limb = BigInt::Limb;

std::atomic<std::uint64_t> g_exps{0};
std::atomic<std::uint64_t> g_mod_muls{0};
std::atomic<std::uint64_t> g_mod_sqrs{0};
std::atomic<std::uint64_t> g_multi_exps{0};

// -n^{-1} mod 2^64 via Newton iteration (n odd).
Limb neg_inv64(Limb n) {
  Limb x = n;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2 - n * x;
  return ~x + 1;  // -(n^{-1})
}

unsigned clamp_window(unsigned w) { return w < 2 ? 2 : (w > 8 ? 8 : w); }

// Shrink the window for short exponents so the 2^w-entry table pays for
// itself (thresholds follow the usual bits-per-window break-even points).
unsigned fit_window(unsigned w, std::size_t exp_bits) {
  const unsigned cap = exp_bits <= 23 ? 2 : exp_bits <= 79 ? 3 : exp_bits <= 239 ? 4 : w;
  return cap < w ? cap : w;
}

// ------------------------------------------------------------------ arena
//
// Thread-local bump allocator backing every Montgomery working set: window
// tables, CIOS scratch, conversion temporaries. The pool is one fixed block
// allocated at first use per thread; frames mark/release a watermark, so a
// steady-state exponentiation — any nesting of exp/mul/sqr/comb walks —
// performs zero heap allocations. A frame that overflows the pool (only the
// widest Pippenger bucket sets) falls back to individually heap-allocated
// blocks released with the frame. Pool storage never moves, so pointers
// handed out by an outer frame stay valid across nested frames.

constexpr std::size_t kPoolLimbs = 16384;  // 128 KiB per thread

class LimbArena {
 public:
  Limb* alloc(std::size_t n) {
    if (pool_.empty()) pool_.resize(kPoolLimbs);  // once per thread
    if (top_ + n <= pool_.size()) {
      Limb* p = pool_.data() + top_;
      top_ += n;
      return p;
    }
    overflow_.push_back(std::make_unique<Limb[]>(n));
    return overflow_.back().get();
  }

 private:
  friend class ArenaFrame;
  std::vector<Limb> pool_;  // sized once, never resized: stable pointers
  std::size_t top_ = 0;
  std::vector<std::unique_ptr<Limb[]>> overflow_;
};

/// RAII watermark over the thread arena; everything alloc()ed through the
/// frame is released at scope exit. Buffers are NOT zero-initialized.
class ArenaFrame {
 public:
  explicit ArenaFrame(LimbArena& a)
      : arena_(a), top_(a.top_), overflow_(a.overflow_.size()) {}
  ~ArenaFrame() {
    arena_.top_ = top_;
    arena_.overflow_.resize(overflow_);
  }
  ArenaFrame(const ArenaFrame&) = delete;
  ArenaFrame& operator=(const ArenaFrame&) = delete;

  Limb* alloc(std::size_t n) { return arena_.alloc(n); }

 private:
  LimbArena& arena_;
  std::size_t top_;
  std::size_t overflow_;
};

LimbArena& tls_arena() {
  static thread_local LimbArena arena;
  return arena;
}

// Conditional final subtraction shared by both Montgomery kernels: the
// reduced value is t[0..k) plus carry limb `hi` (0 or 1) and lies in
// [0, 2n); writes the canonical representative to out. `out` may alias the
// kernel operands but never `t` (which lives in scratch).
void reduce_once(const Limb* t, Limb hi, const Limb* n, std::size_t k, Limb* out) {
  bool ge = hi != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = k; i-- > 0;) {
      if (t[i] != n[i]) {
        ge = t[i] > n[i];
        break;
      }
    }
  }
  if (!ge) {
    std::memcpy(out, t, k * sizeof(Limb));
    return;
  }
  Limb borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const Limb ti = t[i];
    const Limb ni = n[i];
    out[i] = ti - ni - borrow;
    borrow = (ti < ni || (ti == ni && borrow != 0)) ? 1 : 0;
  }
}

// Left-to-right (MSB-first) fixed-window scan used by the generic
// (even-modulus) engine: w squarings per window, then one multiply by
// `table[digit]`. Returns {accumulator, started}; started == false means
// the exponent was zero.
template <typename T, typename Sqr, typename Mul>
std::pair<T, bool> scan_windows(const BigInt& e, unsigned w, const std::vector<T>& table,
                                Sqr&& sqr, Mul&& mul) {
  const std::size_t windows = (e.bit_length() + w - 1) / w;
  T acc{};
  bool started = false;
  for (std::size_t win = windows; win-- > 0;) {
    if (started) {
      for (unsigned s = 0; s < w; ++s) acc = sqr(acc);
    }
    std::size_t digit = 0;
    for (unsigned b = 0; b < w; ++b) {
      if (e.bit(win * w + b)) digit |= std::size_t{1} << b;
    }
    if (digit != 0) {
      if (started) {
        acc = mul(acc, table[digit]);
      } else {
        acc = table[digit];
        started = true;
      }
    }
  }
  return {std::move(acc), started};
}

void check_residue(const ModContext& ctx, const Residue& r) {
  if (r.size() != ctx.limb_count()) {
    throw std::invalid_argument("ModContext: residue sized for another context");
  }
}

}  // namespace

OpCounts op_counts() {
  return OpCounts{g_exps.load(std::memory_order_relaxed),
                  g_mod_muls.load(std::memory_order_relaxed),
                  g_mod_sqrs.load(std::memory_order_relaxed),
                  g_multi_exps.load(std::memory_order_relaxed)};
}

#if IDGKA_OBS
namespace {
/// Surfaces the crypto op counters in obs::Registry snapshots as probes —
/// read lazily at snapshot time, zero cost on the arithmetic hot path.
const bool g_crypto_probes = [] {
  obs::Registry::global().register_probe(
      "crypto.exps", [] { return g_exps.load(std::memory_order_relaxed); });
  obs::Registry::global().register_probe(
      "crypto.mod_muls", [] { return g_mod_muls.load(std::memory_order_relaxed); });
  obs::Registry::global().register_probe(
      "crypto.mod_sqrs", [] { return g_mod_sqrs.load(std::memory_order_relaxed); });
  obs::Registry::global().register_probe(
      "crypto.multi_exps", [] { return g_multi_exps.load(std::memory_order_relaxed); });
  return true;
}();
}  // namespace
#endif

Residue::Residue(const ModContext& ctx) { resize(ctx.limb_count()); }

void ModContext::fold(const Ops& ops) const {
  if (ops.muls != 0) g_mod_muls.fetch_add(ops.muls, std::memory_order_relaxed);
  if (ops.sqrs != 0) g_mod_sqrs.fetch_add(ops.sqrs, std::memory_order_relaxed);
}

ModContext::ModContext(BigInt modulus, unsigned window_bits) : n_(std::move(modulus)) {
  if (n_ <= BigInt{1}) {
    throw std::invalid_argument("ModContext: modulus must be > 1");
  }
  window_ = window_bits == 0 ? (n_.bit_length() >= 512 ? 5 : 4) : clamp_window(window_bits);
  mont_ = n_.is_odd();
  if (!mont_) return;  // generic path needs nothing precomputed
  n_limbs_ = n_.limbs();
  k_ = n_limbs_.size();
  n0_inv_ = neg_inv64(n_limbs_[0]);
  rr_ = (BigInt{1} << (2 * 64 * k_)).mod(n_);
  rr_limbs_ = rr_.limbs();
  rr_limbs_.resize(k_, 0);
  // one_mont_ = 1 * R mod n.
  one_mont_.assign(k_, 0);
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  Limb* one = frame.alloc(k_);
  std::memset(one, 0, k_ * sizeof(Limb));
  one[0] = 1;
  mont_mul_raw(one, rr_limbs_.data(), one_mont_.data(), scratch);
}

// ------------------------------------------------------------ raw kernels

void ModContext::mont_mul_raw(const Limb* a, const Limb* b, Limb* out,
                              Limb* scratch) const {
  // CIOS (coarsely integrated operand scanning), Koc et al.
  // scratch never aliases the operands and the modulus is never written, so
  // the restrict qualifiers let stores to t keep a/b/n limbs in registers.
  Limb* __restrict t = scratch;  // k_ + 2 limbs used
  std::memset(t, 0, (k_ + 2) * sizeof(Limb));
  const Limb* __restrict n = n_limbs_.data();
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    const Limb ai = a[i];
    Limb carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 s = static_cast<u128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    u128 s = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<Limb>(s);
    t[k_ + 1] = static_cast<Limb>(s >> 64);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64
    const Limb m = t[0] * n0_inv_;
    s = static_cast<u128>(m) * n[0] + t[0];
    carry = static_cast<Limb>(s >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      s = static_cast<u128>(m) * n[j] + t[j] + carry;
      t[j - 1] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    s = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<Limb>(s);
    t[k_] = t[k_ + 1] + static_cast<Limb>(s >> 64);
    t[k_ + 1] = 0;
  }
  reduce_once(t, t[k_], n, k_, out);
}

void ModContext::mont_sqr_raw(const Limb* a, Limb* out, Limb* scratch) const {
  // Operand-scanning squaring: compute the off-diagonal products once,
  // double them, add the diagonal, then run a separated (SOS) Montgomery
  // reduction over the double-width result. Versus the general CIOS product
  // this trades 2k^2 limb multiplications for ~1.5k^2 + k.
  const std::size_t k = k_;
  Limb* __restrict t = scratch;  // 2k + 2 limbs used
  const Limb* __restrict n = n_limbs_.data();

  // Off-diagonal cross products a[i]*a[j], j > i. Row 0 writes t[1 .. k-1]
  // fresh (nothing to accumulate — skipping the reads also makes the
  // full-width memset unnecessary); row i >= 1 accumulates into t[2i+1 ..
  // i+k-1], all written by earlier rows, and its final carry lands in
  // t[i+k] — untouched so far, so a plain store suffices.
  {
    const Limb a0 = a[0];
    Limb carry = 0;
    for (std::size_t j = 1; j < k; ++j) {
      const u128 s = static_cast<u128>(a0) * a[j] + carry;
      t[j] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    t[k] = carry;
  }
  for (std::size_t i = 1; i + 1 < k; ++i) {
    const Limb ai = a[i];
    Limb carry = 0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const u128 s = static_cast<u128>(ai) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
    t[i + k] = carry;
  }
  // The rows above covered t[1 .. 2k-2]; only these four were never written.
  t[0] = 0;
  t[2 * k - 1] = 0;
  t[2 * k] = 0;
  t[2 * k + 1] = 0;

  // Each cross product appears twice in the square: double the partial sum
  // (one-bit left shift — cross terms occupy t[1 .. 2k-2], so nothing
  // shifts out of t[2k-1]) and add the diagonal a[i]^2 terms, fused into a
  // single pass over even/odd limb pairs. a^2 < n^2 fits in 2k limbs, so
  // both the final shift bit and the final diagonal carry are zero.
  Limb top_bit = 0;
  Limb carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    Limb lo = t[2 * i];
    const Limb lo_top = lo >> 63;
    lo = (lo << 1) | top_bit;
    Limb hi = t[2 * i + 1];
    top_bit = hi >> 63;
    hi = (hi << 1) | lo_top;
    u128 s = static_cast<u128>(a[i]) * a[i] + lo + carry;
    t[2 * i] = static_cast<Limb>(s);
    s = static_cast<u128>(hi) + static_cast<Limb>(s >> 64);
    t[2 * i + 1] = static_cast<Limb>(s);
    carry = static_cast<Limb>(s >> 64);
  }

  // Separated Montgomery reduction: k rounds of t += (t[i] * n' mod 2^64)
  // * n << 64i, each zeroing limb i; the reduced value is t / R = t[k ..
  // 2k]. Round i's carry lands at t[i+k], and any overflow there belongs at
  // t[i+k+1] — exactly round i+1's carry position — so a single held limb
  // forwards it without the data-dependent ripple walk (and its
  // mispredicted branch) a generic SOS loop needs.
  Limb hold = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const Limb m = t[i] * n0_inv_;
    Limb c = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 s = static_cast<u128>(m) * n[j] + t[i + j] + c;
      t[i + j] = static_cast<Limb>(s);
      c = static_cast<Limb>(s >> 64);
    }
    const u128 s = static_cast<u128>(t[i + k]) + c + hold;
    t[i + k] = static_cast<Limb>(s);
    hold = static_cast<Limb>(s >> 64);
  }
  // The running total stays below 2 R^2, so the final hold stops at t[2k].
  t[2 * k] += hold;
  reduce_once(t + k, t[2 * k], n, k, out);
}

void ModContext::load_canonical(const BigInt& a, Limb* out) const {
  // Operands are usually already in [0, n); skip the division then.
  if (!a.negative() && a < n_) {
    a.copy_limbs_to(out, k_);
  } else {
    a.mod(n_).copy_limbs_to(out, k_);
  }
}

void ModContext::to_mont_raw(const BigInt& a, Limb* out, Limb* scratch, Ops& ops) const {
  ArenaFrame frame(tls_arena());
  Limb* tmp = frame.alloc(k_);
  load_canonical(a, tmp);
  ++ops.muls;
  mont_mul_raw(tmp, rr_limbs_.data(), out, scratch);
}

BigInt ModContext::from_mont_raw(const Limb* a, Limb* scratch, Ops& ops) const {
  ArenaFrame frame(tls_arena());
  Limb* one = frame.alloc(k_);
  std::memset(one, 0, k_ * sizeof(Limb));
  one[0] = 1;
  Limb* res = frame.alloc(k_);
  ++ops.muls;
  mont_mul_raw(a, one, res, scratch);
  return BigInt::from_limbs(res, k_);
}

// ------------------------------------------------------- exponentiation

void ModContext::exp_mont_raw(const Limb* base, const BigInt& e, Limb* out,
                              Ops& ops) const {
  const std::size_t bits = e.bit_length();
  if (bits == 0) {
    std::memcpy(out, one_mont_.data(), k_ * sizeof(Limb));
    return;
  }

  // Sliding-window exponentiation over odd powers only: the table holds
  // base^1, base^3, ..., base^(2^w - 1), which halves the precompute cost
  // versus a full 2^w table, and windows are anchored on set bits so runs
  // of zeros cost squarings alone. `out` may alias `base`: the base is
  // copied into the table before the accumulator is first written.
  const unsigned w = fit_window(window_, bits);
  const std::size_t tsize = std::size_t{1} << (w - 1);
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  Limb* odd = frame.alloc(tsize * k_);  // odd + j*k_ holds base^(2j+1)
  std::memcpy(odd, base, k_ * sizeof(Limb));
  if (tsize > 1) {
    Limb* sq = frame.alloc(k_);
    ++ops.sqrs;
    mont_sqr_raw(odd, sq, scratch);
    for (std::size_t j = 1; j < tsize; ++j) {
      ++ops.muls;
      mont_mul_raw(odd + (j - 1) * k_, sq, odd + j * k_, scratch);
    }
  }

  Limb* acc = out;
  bool started = false;
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(bits) - 1;
  while (i >= 0) {
    if (!e.bit(static_cast<std::size_t>(i))) {
      ++ops.sqrs;
      mont_sqr_raw(acc, acc, scratch);
      --i;
      continue;
    }
    // Longest window of at most w bits ending on a set bit: [j, i].
    std::ptrdiff_t j = i - static_cast<std::ptrdiff_t>(w) + 1;
    if (j < 0) j = 0;
    while (!e.bit(static_cast<std::size_t>(j))) ++j;
    std::size_t digit = 0;
    for (std::ptrdiff_t b = i; b >= j; --b) {
      digit = (digit << 1) | (e.bit(static_cast<std::size_t>(b)) ? 1U : 0U);
    }
    if (started) {
      for (std::ptrdiff_t b = i; b >= j; --b) {
        ++ops.sqrs;
        mont_sqr_raw(acc, acc, scratch);
      }
      ++ops.muls;
      mont_mul_raw(acc, odd + (digit >> 1) * k_, acc, scratch);
    } else {
      std::memcpy(acc, odd + (digit >> 1) * k_, k_ * sizeof(Limb));
      started = true;
    }
    i = j - 1;
  }
}

BigInt ModContext::exp_mont(const BigInt& base, const BigInt& e, Ops& ops) const {
  if (e.bit_length() == 0) return BigInt{1}.mod(n_);
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  Limb* acc = frame.alloc(k_);
  to_mont_raw(base, acc, scratch, ops);
  exp_mont_raw(acc, e, acc, ops);
  return from_mont_raw(acc, scratch, ops);
}

BigInt ModContext::exp_generic(const BigInt& base, const BigInt& e, Ops& ops) const {
  const std::size_t bits = e.bit_length();
  if (bits == 0) return BigInt{1}.mod(n_);

  const unsigned w = fit_window(window_, bits);
  std::vector<BigInt> table(std::size_t{1} << w);
  table[0] = BigInt{1};
  table[1] = base.mod(n_);
  for (std::size_t j = 2; j < table.size(); ++j) {
    ++ops.muls;
    table[j] = (table[j - 1] * table[1]).mod(n_);
  }

  auto [acc, started] = scan_windows(
      e, w, table,
      [&](const BigInt& a) {
        ++ops.sqrs;
        return (a * a).mod(n_);
      },
      [&](const BigInt& a, const BigInt& b) {
        ++ops.muls;
        return (a * b).mod(n_);
      });
  return started ? acc : BigInt{1};  // unreachable fallback: bits > 0 here
}

BigInt ModContext::exp_any(const BigInt& base, const BigInt& e, Ops& ops) const {
  if (e.negative()) return exp_any(mod_inverse(base, n_), -e, ops);
  return mont_ ? exp_mont(base, e, ops) : exp_generic(base, e, ops);
}

BigInt ModContext::exp(const BigInt& base, const BigInt& e) const {
  Ops ops;
  BigInt r = exp_any(base, e, ops);
  g_exps.fetch_add(1, std::memory_order_relaxed);
  fold(ops);
  return r;
}

BigInt ModContext::mul(const BigInt& a, const BigInt& b) const {
  Ops ops;
  BigInt r;
  if (mont_) {
    ArenaFrame frame(tls_arena());
    Limb* scratch = frame.alloc(2 * k_ + 2);
    Limb* am = frame.alloc(k_);
    Limb* bm = frame.alloc(k_);
    to_mont_raw(a, am, scratch, ops);
    to_mont_raw(b, bm, scratch, ops);
    ++ops.muls;
    mont_mul_raw(am, bm, am, scratch);
    r = from_mont_raw(am, scratch, ops);
  } else {
    ++ops.muls;
    r = (a * b).mod(n_);
  }
  fold(ops);
  return r;
}

BigInt ModContext::inv(const BigInt& a) const { return mod_inverse(a, n_); }

// ---------------------------------------------------- multi-exponentiation

namespace {

// Bits [pos, pos + w) of |e| as a window digit.
std::size_t exp_digit(const BigInt& e, std::size_t pos, unsigned w) {
  std::size_t digit = 0;
  for (unsigned b = 0; b < w; ++b) {
    if (e.bit(pos + b)) digit |= std::size_t{1} << b;
  }
  return digit;
}

std::size_t max_exp_bits(std::span<const BigInt* const> exps) {
  std::size_t bits = 0;
  for (const BigInt* e : exps) bits = std::max(bits, e->bit_length());
  return bits;
}

}  // namespace

// Shamir/Straus interleaved joint exponentiation: one shared squaring chain
// over the widest exponent, with a per-base window table. Per window
// position: w squarings plus at most one table multiply per base.
void ModContext::straus_mont(std::span<const Residue* const> bases,
                             std::span<const BigInt* const> exps, Limb* out,
                             Ops& ops) const {
  const std::size_t arity = bases.size();
  if (arity == 1) {
    exp_mont_raw(bases[0]->limbs(), *exps[0], out, ops);
    return;
  }
  const std::size_t bits = max_exp_bits(exps);
  const unsigned w = fit_window(window_, bits);
  const std::size_t windows = (bits + w - 1) / w;

  // tables[t] + j*k_ = base_t^j (j >= 1) in the Montgomery domain, built
  // lazily up to the largest window digit that exponent actually produces —
  // a term with a short or sparse exponent pays only for the powers it uses.
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  std::vector<Limb*> tables(arity, nullptr);
  for (std::size_t t = 0; t < arity; ++t) {
    std::size_t max_digit = 0;
    for (std::size_t win = 0; win < windows; ++win) {
      max_digit = std::max(max_digit, exp_digit(*exps[t], win * w, w));
    }
    if (max_digit == 0) continue;
    Limb* table = frame.alloc((max_digit + 1) * k_);
    tables[t] = table;
    std::memcpy(table + k_, bases[t]->limbs(), k_ * sizeof(Limb));
    for (std::size_t j = 2; j <= max_digit; ++j) {
      ++ops.muls;
      mont_mul_raw(table + (j - 1) * k_, table + k_, table + j * k_, scratch);
    }
  }

  bool started = false;
  for (std::size_t win = windows; win-- > 0;) {
    if (started) {
      for (unsigned s = 0; s < w; ++s) {
        ++ops.sqrs;
        mont_sqr_raw(out, out, scratch);
      }
    }
    for (std::size_t t = 0; t < arity; ++t) {
      const std::size_t digit = exp_digit(*exps[t], win * w, w);
      if (digit == 0) continue;
      if (started) {
        ++ops.muls;
        mont_mul_raw(out, tables[t] + digit * k_, out, scratch);
      } else {
        std::memcpy(out, tables[t] + digit * k_, k_ * sizeof(Limb));
        started = true;
      }
    }
  }
  if (!started) std::memcpy(out, one_mont_.data(), k_ * sizeof(Limb));
}

// Pippenger bucket aggregation for wide products: per c-bit window, each
// base lands in the bucket of its digit, and the window sum
// prod_j bucket[j]^j falls out of one suffix-product sweep — per-window
// cost is O(n + 2^c) multiplies instead of O(n * c) squarings.
void ModContext::pippenger_mont(std::span<const Residue* const> bases,
                                std::span<const BigInt* const> exps, Limb* out,
                                Ops& ops) const {
  const std::size_t n = bases.size();
  const std::size_t bits = max_exp_bits(exps);

  // Window width by direct cost argmin. Per window: ~n bucket fills, up to
  // min(n, buckets) running-product multiplies, and — because the suffix
  // sweep must touch every index below the highest occupied bucket — up to
  // `buckets` window-sum multiplies.
  unsigned c = 1;
  std::uint64_t best_cost = ~0ULL;
  for (unsigned cand = 1; cand <= 16 && (std::size_t{1} << cand) <= 4 * n + 4; ++cand) {
    const std::uint64_t windows = (bits + cand - 1) / cand;
    const std::uint64_t buckets = (std::size_t{1} << cand) - 1;
    const std::uint64_t cost =
        windows * (n + std::min<std::uint64_t>(n, buckets) + buckets);
    if (cost < best_cost) {
      best_cost = cost;
      c = cand;
    }
  }

  const std::size_t windows = (bits + c - 1) / c;
  const std::size_t nbuckets = std::size_t{1} << c;
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  Limb* bucket = frame.alloc(nbuckets * k_);
  Limb* occupied = frame.alloc(nbuckets);  // 0/1 flags, limb-sized for arena reuse
  Limb* running = frame.alloc(k_);
  Limb* wsum = frame.alloc(k_);
  bool started = false;
  for (std::size_t win = windows; win-- > 0;) {
    if (started) {
      for (unsigned s = 0; s < c; ++s) {
        ++ops.sqrs;
        mont_sqr_raw(out, out, scratch);
      }
    }
    std::memset(occupied, 0, nbuckets * sizeof(Limb));
    for (std::size_t t = 0; t < n; ++t) {
      const std::size_t digit = exp_digit(*exps[t], win * c, c);
      if (digit == 0) continue;
      Limb* slot = bucket + digit * k_;
      if (occupied[digit] == 0) {
        std::memcpy(slot, bases[t]->limbs(), k_ * sizeof(Limb));
        occupied[digit] = 1;
      } else {
        ++ops.muls;
        mont_mul_raw(slot, bases[t]->limbs(), slot, scratch);
      }
    }
    // prod_j bucket[j]^j == prod of running suffix products.
    bool have_running = false;
    bool have_wsum = false;
    for (std::size_t j = nbuckets; j-- > 1;) {
      if (occupied[j] != 0) {
        if (!have_running) {
          std::memcpy(running, bucket + j * k_, k_ * sizeof(Limb));
          have_running = true;
        } else {
          ++ops.muls;
          mont_mul_raw(running, bucket + j * k_, running, scratch);
        }
      }
      if (!have_running) continue;
      if (!have_wsum) {
        std::memcpy(wsum, running, k_ * sizeof(Limb));
        have_wsum = true;
      } else {
        ++ops.muls;
        mont_mul_raw(wsum, running, wsum, scratch);
      }
    }
    if (!have_wsum) continue;
    if (started) {
      ++ops.muls;
      mont_mul_raw(out, wsum, out, scratch);
    } else {
      std::memcpy(out, wsum, k_ * sizeof(Limb));
      started = true;
    }
  }
  if (!started) std::memcpy(out, one_mont_.data(), k_ * sizeof(Limb));
}

BigInt ModContext::multi_exp(std::span<const BigInt> bases, std::span<const BigInt> exps) const {
  if (bases.size() != exps.size()) {
    throw std::invalid_argument("ModContext::multi_exp: bases/exps size mismatch");
  }
  Ops ops;
  BigInt r;
  if (!mont_) {
    // Even-modulus fallback: sequential generic exponentiation.
    r = BigInt{1}.mod(n_);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (exps[i].is_zero()) continue;
      ++ops.muls;
      r = (r * exp_any(bases[i], exps[i], ops)).mod(n_);
    }
  } else {
    // Terms with negative exponents swap in the inverted base; zero
    // exponents drop out. Everything else is partitioned by exponent width:
    // narrow exponents (<= 64 bits) and wide ones run as separate joint
    // products so a batch of small scalars never pays wide-ladder squarings.
    std::vector<BigInt> inverted;
    inverted.reserve(bases.size());
    std::vector<Residue> mont_bases(bases.size());
    std::vector<const Residue*> narrow_b, wide_b;
    std::vector<const BigInt*> narrow_e, wide_e;
    constexpr std::size_t kNarrowBits = 64;
    ArenaFrame frame(tls_arena());
    Limb* scratch = frame.alloc(2 * k_ + 2);
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (exps[i].is_zero()) continue;
      const BigInt* e = &exps[i];
      mont_bases[i].resize(k_);
      if (e->negative()) {
        inverted.push_back(-exps[i]);
        to_mont_raw(mod_inverse(bases[i], n_), mont_bases[i].limbs(), scratch, ops);
        e = &inverted.back();
      } else {
        to_mont_raw(bases[i], mont_bases[i].limbs(), scratch, ops);
      }
      if (e->bit_length() <= kNarrowBits) {
        narrow_b.push_back(&mont_bases[i]);
        narrow_e.push_back(e);
      } else {
        wide_b.push_back(&mont_bases[i]);
        wide_e.push_back(e);
      }
    }
    Limb* acc = frame.alloc(k_);
    Limb* part = frame.alloc(k_);
    bool have = false;
    for (const bool narrow : {true, false}) {
      const auto& b = narrow ? narrow_b : wide_b;
      const auto& e = narrow ? narrow_e : wide_e;
      if (b.empty()) continue;
      if (b.size() <= 8) {
        straus_mont(b, e, part, ops);
      } else {
        pippenger_mont(b, e, part, ops);
      }
      if (have) {
        ++ops.muls;
        mont_mul_raw(acc, part, acc, scratch);
      } else {
        std::memcpy(acc, part, k_ * sizeof(Limb));
        have = true;
      }
    }
    if (!have) std::memcpy(acc, one_mont_.data(), k_ * sizeof(Limb));
    r = from_mont_raw(acc, scratch, ops);
  }
  g_multi_exps.fetch_add(1, std::memory_order_relaxed);
  fold(ops);
  return r;
}

BigInt ModContext::product(std::span<const BigInt> values) const {
  Ops ops;
  BigInt r;
  if (values.empty()) {
    r = BigInt{1}.mod(n_);
  } else if (mont_) {
    // Conversion-free Montgomery chain: mont_mul over canonical residues
    // accumulates an R^{-(k-1)} deficit across k factors, cancelled by a
    // single multiply with R^k (i.e. the Montgomery form of R^{k-1}) — so
    // a k-term product costs k + O(log k) multiplies, not 2k.
    ArenaFrame frame(tls_arena());
    Limb* scratch = frame.alloc(2 * k_ + 2);
    Limb* acc = frame.alloc(k_);
    Limb* tmp = frame.alloc(k_);
    load_canonical(values[0], acc);
    for (std::size_t i = 1; i < values.size(); ++i) {
      load_canonical(values[i], tmp);
      ++ops.muls;
      mont_mul_raw(acc, tmp, acc, scratch);
    }
    const std::uint64_t deficit = values.size() - 1;
    if (deficit > 0) {
      Limb* fix = frame.alloc(k_);
      exp_mont_raw(rr_limbs_.data(), BigInt{deficit}, fix, ops);
      ++ops.muls;
      mont_mul_raw(acc, fix, acc, scratch);
    }
    r = BigInt::from_limbs(acc, k_);
  } else {
    r = values[0].mod(n_);
    for (std::size_t i = 1; i < values.size(); ++i) {
      ++ops.muls;
      r = (r * values[i]).mod(n_);
    }
  }
  fold(ops);
  return r;
}

// ------------------------------------------------------- fixed-base comb

void ModContext::exp_comb_raw(const FixedBaseTable& table, const BigInt& e, Limb* out,
                              Ops& ops) const {
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  const std::size_t d = table.block_;
  bool started = false;
  for (std::size_t pos = d; pos-- > 0;) {
    if (started) {
      ++ops.sqrs;
      mont_sqr_raw(out, out, scratch);
    }
    std::size_t digit = 0;
    for (unsigned tooth = 0; tooth < table.teeth_; ++tooth) {
      if (e.bit(tooth * d + pos)) digit |= std::size_t{1} << tooth;
    }
    if (digit != 0) {
      if (started) {
        ++ops.muls;
        mont_mul_raw(out, table.entry(digit), out, scratch);
      } else {
        std::memcpy(out, table.entry(digit), k_ * sizeof(Limb));
        started = true;
      }
    }
  }
  if (!started) std::memcpy(out, one_mont_.data(), k_ * sizeof(Limb));  // e == 0
}

BigInt ModContext::exp_comb(const FixedBaseTable& table, const BigInt& e,
                            Ops& ops) const {
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  Limb* acc = frame.alloc(k_);
  exp_comb_raw(table, e, acc, ops);
  return from_mont_raw(acc, scratch, ops);
}

BigInt ModContext::exp(const FixedBaseTable& table, const BigInt& e) const {
  if (table.mod_fingerprint_ != n_.limbs()) {
    throw std::invalid_argument("ModContext::exp: fixed-base table from another modulus");
  }
  Ops ops;
  BigInt r;
  if (table.comb_available() && mont_ && !e.negative() &&
      e.bit_length() <= table.bits_) {
    r = exp_comb(table, e, ops);
  } else {
    r = exp_any(table.base_, e, ops);
  }
  g_exps.fetch_add(1, std::memory_order_relaxed);
  fold(ops);
  return r;
}

FixedBaseTable ModContext::make_fixed_base(const BigInt& base, std::size_t max_exp_bits,
                                           unsigned teeth) const {
  FixedBaseTable t;
  t.base_ = base.mod(n_);
  t.mod_fingerprint_ = n_.limbs();
  t.bits_ = max_exp_bits == 0 ? 1 : max_exp_bits;
  if (!mont_) return t;  // comb unavailable; exp() falls back to the ladder

  const unsigned h = teeth == 0 ? 6 : (teeth > 8 ? 8 : teeth);
  t.teeth_ = h;
  t.block_ = (t.bits_ + h - 1) / h;
  t.stride_ = k_;

  Ops ops;
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  // P[i] = base^(2^(i*d)) in Montgomery form.
  Limb* p = frame.alloc(h * k_);
  to_mont_raw(t.base_, p, scratch, ops);
  for (unsigned i = 1; i < h; ++i) {
    Limb* pi = p + i * k_;
    std::memcpy(pi, p + (i - 1) * k_, k_ * sizeof(Limb));
    for (std::size_t s = 0; s < t.block_; ++s) {
      ++ops.sqrs;
      mont_sqr_raw(pi, pi, scratch);
    }
  }
  // T[j] = prod over set bits i of j: P[i]; filled via lowest-set-bit split.
  t.table_.assign((std::size_t{1} << h) * k_, 0);
  Limb* tab = t.table_.data();
  std::memcpy(tab, one_mont_.data(), k_ * sizeof(Limb));
  for (std::size_t j = 1; j < (std::size_t{1} << h); ++j) {
    unsigned low = 0;
    while (((j >> low) & 1U) == 0) ++low;
    const std::size_t rest = j & (j - 1);
    if (rest == 0) {
      std::memcpy(tab + j * k_, p + low * k_, k_ * sizeof(Limb));
    } else {
      ++ops.muls;
      mont_mul_raw(tab + rest * k_, p + low * k_, tab + j * k_, scratch);
    }
  }
  fold(ops);
  return t;
}

// ----------------------------------------------------------- residue API

Residue ModContext::to_residue(const BigInt& a) const {
  Residue r;
  r.resize(limb_count());
  if (mont_) {
    Ops ops;
    ArenaFrame frame(tls_arena());
    Limb* scratch = frame.alloc(2 * k_ + 2);
    to_mont_raw(a, r.limbs(), scratch, ops);
    fold(ops);
  } else if (!a.negative() && a < n_) {
    a.copy_limbs_to(r.limbs(), r.size());
  } else {
    a.mod(n_).copy_limbs_to(r.limbs(), r.size());
  }
  return r;
}

BigInt ModContext::from_residue(const Residue& r) const {
  check_residue(*this, r);
  if (!mont_) return BigInt::from_limbs(r.limbs(), r.size());
  Ops ops;
  ArenaFrame frame(tls_arena());
  Limb* scratch = frame.alloc(2 * k_ + 2);
  BigInt out = from_mont_raw(r.limbs(), scratch, ops);
  fold(ops);
  return out;
}

Residue ModContext::one_residue() const {
  Residue r;
  if (mont_) {
    r.assign(one_mont_.data(), k_);
  } else {
    r.resize(limb_count());
    r.limbs()[0] = 1;  // n > 1, so 1 is canonical
  }
  return r;
}

void ModContext::add(const Residue& a, const Residue& b, Residue& out) const {
  check_residue(*this, a);
  check_residue(*this, b);
  // Works identically in both domains (Montgomery form and canonical values
  // are linear); the even-modulus path has no precomputed n_limbs_, so take
  // the limbs straight from the modulus.
  const std::size_t k = limb_count();
  const Limb* n = mont_ ? n_limbs_.data() : n_.limbs().data();
  if (out.size() != k) out.resize(k);
  const Limb* pa = a.limbs();
  const Limb* pb = b.limbs();
  Limb* po = out.limbs();
  Limb carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 s = static_cast<u128>(pa[i]) + pb[i] + carry;
    po[i] = static_cast<Limb>(s);
    carry = static_cast<Limb>(s >> 64);
  }
  // Operands are < n, so the sum is < 2n: reduce_once settles it (and is
  // safe with t == out — it decides before it writes).
  reduce_once(po, carry, n, k, po);
}

void ModContext::sub(const Residue& a, const Residue& b, Residue& out) const {
  check_residue(*this, a);
  check_residue(*this, b);
  const std::size_t k = limb_count();
  const Limb* n = mont_ ? n_limbs_.data() : n_.limbs().data();
  if (out.size() != k) out.resize(k);
  const Limb* pa = a.limbs();
  const Limb* pb = b.limbs();
  Limb* po = out.limbs();
  Limb borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const Limb ai = pa[i];
    const Limb bi = pb[i];
    po[i] = ai - bi - borrow;
    borrow = (ai < bi || (ai == bi && borrow != 0)) ? 1 : 0;
  }
  if (borrow != 0) {  // a < b: wrap back into [0, n) by adding the modulus
    Limb carry = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const u128 s = static_cast<u128>(po[i]) + n[i] + carry;
      po[i] = static_cast<Limb>(s);
      carry = static_cast<Limb>(s >> 64);
    }
  }
}

void ModContext::mul(const Residue& a, const Residue& b, Residue& out) const {
  check_residue(*this, a);
  check_residue(*this, b);
  Ops ops;
  if (mont_) {
    if (out.size() != k_) out.resize(k_);
    ++ops.muls;
    // Single-kernel call: a small stack buffer beats even the bump arena
    // (no TLS access, no frame bookkeeping) for inline-width moduli.
    if (k_ <= Residue::kInlineLimbs) {
      Limb scratch[2 * Residue::kInlineLimbs + 2];
      mont_mul_raw(a.limbs(), b.limbs(), out.limbs(), scratch);
    } else {
      ArenaFrame frame(tls_arena());
      mont_mul_raw(a.limbs(), b.limbs(), out.limbs(), frame.alloc(2 * k_ + 2));
    }
  } else {
    // Even-modulus fallback: schoolbook through BigInt (may allocate).
    ++ops.muls;
    const BigInt r =
        (BigInt::from_limbs(a.limbs(), a.size()) * BigInt::from_limbs(b.limbs(), b.size()))
            .mod(n_);
    out.resize(limb_count());
    r.copy_limbs_to(out.limbs(), out.size());
  }
  fold(ops);
}

void ModContext::sqr(const Residue& a, Residue& out) const {
  check_residue(*this, a);
  Ops ops;
  if (mont_) {
    if (out.size() != k_) out.resize(k_);
    ++ops.sqrs;
    if (k_ <= Residue::kInlineLimbs) {
      Limb scratch[2 * Residue::kInlineLimbs + 2];
      mont_sqr_raw(a.limbs(), out.limbs(), scratch);
    } else {
      ArenaFrame frame(tls_arena());
      mont_sqr_raw(a.limbs(), out.limbs(), frame.alloc(2 * k_ + 2));
    }
  } else {
    ++ops.sqrs;
    const BigInt v = BigInt::from_limbs(a.limbs(), a.size());
    const BigInt r = (v * v).mod(n_);
    out.resize(limb_count());
    r.copy_limbs_to(out.limbs(), out.size());
  }
  fold(ops);
}

void ModContext::exp(const Residue& base, const BigInt& e, Residue& out) const {
  check_residue(*this, base);
  Ops ops;
  if (mont_ && !e.negative()) {
    if (out.size() != k_) out.resize(k_);
    exp_mont_raw(base.limbs(), e, out.limbs(), ops);
  } else {
    // Negative exponent or even modulus: round-trip through BigInt.
    BigInt b;
    if (mont_) {
      ArenaFrame frame(tls_arena());
      Limb* scratch = frame.alloc(2 * k_ + 2);
      b = from_mont_raw(base.limbs(), scratch, ops);
      const BigInt r = exp_any(b, e, ops);
      if (out.size() != k_) out.resize(k_);
      to_mont_raw(r, out.limbs(), scratch, ops);
    } else {
      b = BigInt::from_limbs(base.limbs(), base.size());
      const BigInt r = exp_any(b, e, ops);
      out.resize(limb_count());
      r.copy_limbs_to(out.limbs(), out.size());
    }
  }
  g_exps.fetch_add(1, std::memory_order_relaxed);
  fold(ops);
}

void ModContext::exp(const FixedBaseTable& table, const BigInt& e, Residue& out) const {
  if (table.mod_fingerprint_ != n_.limbs()) {
    throw std::invalid_argument("ModContext::exp: fixed-base table from another modulus");
  }
  Ops ops;
  if (table.comb_available() && mont_ && !e.negative() &&
      e.bit_length() <= table.bits_) {
    if (out.size() != k_) out.resize(k_);
    exp_comb_raw(table, e, out.limbs(), ops);
  } else {
    const BigInt r = exp_any(table.base_, e, ops);
    if (mont_) {
      if (out.size() != k_) out.resize(k_);
      ArenaFrame frame(tls_arena());
      Limb* scratch = frame.alloc(2 * k_ + 2);
      to_mont_raw(r, out.limbs(), scratch, ops);
    } else {
      out.resize(limb_count());
      r.copy_limbs_to(out.limbs(), out.size());
    }
  }
  g_exps.fetch_add(1, std::memory_order_relaxed);
  fold(ops);
}

// ------------------------------------------------------------- utilities

bool sqrt_mod_p3(const ModContext& ctx, const BigInt& a, BigInt& out) {
  const BigInt& p = ctx.modulus();
  if ((p.low_u64() & 3U) != 3U) {
    throw std::domain_error("sqrt_mod_p3: requires p % 4 == 3");
  }
  const BigInt candidate = ctx.exp(a.mod(p), (p + BigInt{1}) >> 2);
  if (ctx.mul(candidate, candidate) != a.mod(p)) return false;
  out = candidate;
  return true;
}

BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (m.negative()) throw std::domain_error("mod_exp: negative modulus");
  if (m.is_one()) return BigInt{};
  // Compatibility shim: every call pays a full context derivation. Hot paths
  // construct a ModContext once and reuse it.
  return ModContext(m).exp(base, exp);
}

}  // namespace idgka::mpint
