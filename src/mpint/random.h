// Randomness interface used across the library.
//
// Crypto code never touches a concrete generator: protocols take an `Rng&`,
// which in production is the HMAC-DRBG (hash/hmac_drbg.h) and in tests is
// either the DRBG with a fixed seed or the fast SplitMix/xoshiro generator
// below. Deterministic seeding is what makes whole protocol runs repeatable
// (the simulator derives one Rng per node from a master seed).
#pragma once

#include <cstdint>
#include <span>

#include "mpint/bigint.h"

namespace idgka::mpint {

/// Abstract byte-stream randomness source.
class Rng {
 public:
  virtual ~Rng() = default;
  /// Fills `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) from 53 random bits (loss draws, jitter,
  /// waypoint positions — one definition so every module agrees bit-for-bit).
  double next_double();
};

/// xoshiro256** — fast, high-quality, NON-cryptographic. For tests and
/// simulation-side randomness (topology shuffles, loss injection) only.
class XoshiroRng final : public Rng {
 public:
  explicit XoshiroRng(std::uint64_t seed);
  void fill(std::span<std::uint8_t> out) override;

 private:
  std::uint64_t next();
  std::uint64_t s_[4];
};

/// Uniform integer with exactly `bits` bits (top bit forced to 1) for
/// bits >= 1.
[[nodiscard]] BigInt random_bits(Rng& rng, std::size_t bits);

/// Uniform integer in [0, bound) via rejection sampling; bound > 0.
[[nodiscard]] BigInt random_below(Rng& rng, const BigInt& bound);

/// Uniform integer in [lo, hi); requires lo < hi.
[[nodiscard]] BigInt random_range(Rng& rng, const BigInt& lo, const BigInt& hi);

/// Uniform unit in [1, n) with gcd(x, n) == 1 (rejection).
[[nodiscard]] BigInt random_unit(Rng& rng, const BigInt& n);

}  // namespace idgka::mpint
