#include "mpint/bigint.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace idgka::mpint {

namespace {

using u128 = unsigned __int128;

constexpr std::size_t kKaratsubaThreshold = 24;  // limbs

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace



void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::from_limbs(std::vector<Limb> limbs) {
  BigInt r;
  r.limbs_ = std::move(limbs);
  r.normalize();
  return r;
}

BigInt BigInt::from_limbs(const Limb* limbs, std::size_t k) {
  BigInt r;
  r.limbs_.assign(limbs, limbs + k);
  r.normalize();
  return r;
}

void BigInt::copy_limbs_to(Limb* out, std::size_t k) const {
  if (!limbs_.empty()) std::memcpy(out, limbs_.data(), limbs_.size() * sizeof(Limb));
  std::memset(out + limbs_.size(), 0, (k - limbs_.size()) * sizeof(Limb));
}

BigInt BigInt::from_hex(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) s.remove_prefix(2);
  if (s.empty()) throw std::invalid_argument("BigInt::from_hex: empty string");
  BigInt r;
  r.limbs_.assign((s.size() * 4 + 63) / 64, 0);
  std::size_t bitpos = 0;
  for (std::size_t i = s.size(); i-- > 0;) {
    const int d = hex_digit(s[i]);
    if (d < 0) throw std::invalid_argument("BigInt::from_hex: bad digit");
    r.limbs_[bitpos / 64] |= static_cast<Limb>(d) << (bitpos % 64);
    bitpos += 4;
  }
  r.normalize();
  r.negative_ = neg && !r.limbs_.empty();
  return r;
}

BigInt BigInt::from_dec(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) throw std::invalid_argument("BigInt::from_dec: empty string");
  BigInt r;
  for (char c : s) {
    if (c < '0' || c > '9') throw std::invalid_argument("BigInt::from_dec: bad digit");
    // r = r * 10 + digit, done limb-wise to avoid full multiplies.
    Limb carry = static_cast<Limb>(c - '0');
    for (auto& limb : r.limbs_) {
      const u128 t = static_cast<u128>(limb) * 10 + carry;
      limb = static_cast<Limb>(t);
      carry = static_cast<Limb>(t >> 64);
    }
    if (carry != 0) r.limbs_.push_back(carry);
  }
  r.normalize();
  r.negative_ = neg && !r.limbs_.empty();
  return r;
}

BigInt BigInt::from_bytes_be(std::span<const std::uint8_t> bytes) {
  // Mirror of the wire encoder's magnitude writer: every full 8-byte group
  // below the (possibly partial) top group is one byte-swapped bulk load,
  // so decoding a 1024-bit value costs 16 loads, not 128 shifts.
  BigInt r;
  r.limbs_.assign((bytes.size() + 7) / 8, 0);
  const std::uint8_t* p = bytes.data() + bytes.size();
  std::size_t limb = 0;
  std::size_t full = bytes.size() / 8;
  while (full-- > 0) {
    std::uint64_t w;
    p -= 8;
    std::memcpy(&w, p, 8);
    r.limbs_[limb++] = static_cast<Limb>(__builtin_bswap64(w));
  }
  const std::size_t head = bytes.size() & 7;
  for (std::size_t i = 0; i < head; ++i) {
    r.limbs_[limb] |= static_cast<Limb>(bytes[i]) << ((head - 1 - i) * 8);
  }
  r.normalize();
  return r;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  if (negative_) out.push_back('-');
  bool started = false;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int d = static_cast<int>((limbs_[i] >> shift) & 0xF);
      if (!started && d == 0) continue;
      started = true;
      out.push_back(kDigits[d]);
    }
  }
  return out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  std::vector<Limb> mag = limbs_;
  std::string digits;
  while (!mag.empty()) {
    // Divide magnitude by 10^19 (largest power of ten in a limb).
    constexpr Limb kChunk = 10000000000000000000ULL;
    Limb rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      const u128 cur = (static_cast<u128>(rem) << 64) | mag[i];
      mag[i] = static_cast<Limb>(cur / kChunk);
      rem = static_cast<Limb>(cur % kChunk);
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int i = 0; i < 19; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
      if (mag.empty() && rem == 0) break;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::vector<std::uint8_t> BigInt::to_bytes_be(std::size_t min_len) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t len = std::max(nbytes, min_len);
  std::vector<std::uint8_t> out(len, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out[len - 1 - i] = static_cast<std::uint8_t>(limbs_[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::size_t top = 64 - static_cast<std::size_t>(__builtin_clzll(limbs_.back()));
  return (limbs_.size() - 1) * 64 + top;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb_idx = i / 64;
  if (limb_idx >= limbs_.size()) return false;
  return ((limbs_[limb_idx] >> (i % 64)) & 1U) != 0U;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

int BigInt::cmp_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering BigInt::operator<=>(const BigInt& o) const {
  if (negative_ != o.negative_) {
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const int c = cmp_mag(*this, o);
  const int signed_c = negative_ ? -c : c;
  if (signed_c < 0) return std::strong_ordering::less;
  if (signed_c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::vector<BigInt::Limb> BigInt::add_mag(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<Limb> r(big.size() + 1, 0);
  Limb carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    u128 t = static_cast<u128>(big[i]) + carry;
    if (i < small.size()) t += small[i];
    r[i] = static_cast<Limb>(t);
    carry = static_cast<Limb>(t >> 64);
  }
  r[big.size()] = carry;
  while (!r.empty() && r.back() == 0) r.pop_back();
  return r;
}

std::vector<BigInt::Limb> BigInt::sub_mag(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  std::vector<Limb> r(a.size(), 0);
  Limb borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Limb bi = i < b.size() ? b[i] : 0;
    const Limb t = a[i] - bi - borrow;
    borrow = (a[i] < bi || (a[i] == bi && borrow != 0)) ? 1 : 0;
    r[i] = t;
  }
  assert(borrow == 0 && "sub_mag requires |a| >= |b|");
  while (!r.empty() && r.back() == 0) r.pop_back();
  return r;
}

std::vector<BigInt::Limb> BigInt::mul_school(std::span<const Limb> a, std::span<const Limb> b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> r(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    Limb carry = 0;
    const Limb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const u128 t = static_cast<u128>(ai) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<Limb>(t);
      carry = static_cast<Limb>(t >> 64);
    }
    r[i + b.size()] = carry;
  }
  while (!r.empty() && r.back() == 0) r.pop_back();
  return r;
}

std::vector<BigInt::Limb> BigInt::mul_karatsuba(std::span<const Limb> a, std::span<const Limb> b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return mul_school(a, b);
  }
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  const auto a_lo = a.subspan(0, std::min(half, a.size()));
  const auto a_hi = half < a.size() ? a.subspan(half) : std::span<const Limb>{};
  const auto b_lo = b.subspan(0, std::min(half, b.size()));
  const auto b_hi = half < b.size() ? b.subspan(half) : std::span<const Limb>{};

  BigInt alo = from_limbs({a_lo.begin(), a_lo.end()});
  BigInt ahi = from_limbs({a_hi.begin(), a_hi.end()});
  BigInt blo = from_limbs({b_lo.begin(), b_lo.end()});
  BigInt bhi = from_limbs({b_hi.begin(), b_hi.end()});

  BigInt z0 = from_limbs(mul_karatsuba(alo.limbs_, blo.limbs_));
  BigInt z2 = from_limbs(mul_karatsuba(ahi.limbs_, bhi.limbs_));
  BigInt asum = alo + ahi;
  BigInt bsum = blo + bhi;
  BigInt z1 = from_limbs(mul_karatsuba(asum.limbs_, bsum.limbs_)) - z0 - z2;

  BigInt result = (z2 << (2 * half * 64)) + (z1 << (half * 64)) + z0;
  return result.limbs_;
}

std::vector<BigInt::Limb> BigInt::mul_mag(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  return mul_karatsuba(a, b);
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt r;
  if (negative_ == o.negative_) {
    r.limbs_ = add_mag(limbs_, o.limbs_);
    r.negative_ = negative_;
  } else {
    const int c = cmp_mag(*this, o);
    if (c == 0) return BigInt{};
    if (c > 0) {
      r.limbs_ = sub_mag(limbs_, o.limbs_);
      r.negative_ = negative_;
    } else {
      r.limbs_ = sub_mag(o.limbs_, limbs_);
      r.negative_ = o.negative_;
    }
  }
  r.normalize();
  return r;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt r;
  r.limbs_ = mul_mag(limbs_, o.limbs_);
  r.negative_ = (negative_ != o.negative_) && !r.limbs_.empty();
  return r;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigInt r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      r.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  r.normalize();
  return r;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt{};
  BigInt r;
  r.negative_ = negative_;
  r.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
    r.limbs_[i] = bit_shift == 0 ? limbs_[i + limb_shift] : (limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      r.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  r.normalize();
  return r;
}

namespace {

// Knuth Algorithm D on 64-bit limbs. Inputs are normalized magnitudes with
// v.size() >= 2 and u >= v. Produces quotient and remainder magnitudes.
void divmod_knuth(std::vector<BigInt::Limb> u, std::vector<BigInt::Limb> v,
                  std::vector<BigInt::Limb>& q, std::vector<BigInt::Limb>& r) {
  using Limb = BigInt::Limb;
  const std::size_t n = v.size();
  const std::size_t m = u.size() - n;

  // D1: normalize so the divisor's top bit is set.
  const int shift = __builtin_clzll(v.back());
  if (shift != 0) {
    Limb carry = 0;
    for (auto& limb : v) {
      const Limb next = limb >> (64 - shift);
      limb = (limb << shift) | carry;
      carry = next;
    }
    carry = 0;
    for (auto& limb : u) {
      const Limb next = limb >> (64 - shift);
      limb = (limb << shift) | carry;
      carry = next;
    }
    u.push_back(carry);
  } else {
    u.push_back(0);
  }

  q.assign(m + 1, 0);
  const Limb v1 = v[n - 1];
  const Limb v2 = v[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top three dividend limbs.
    const u128 top = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = top / v1;
    u128 rhat = top % v1;
    while (qhat > ~static_cast<Limb>(0) ||
           qhat * v2 > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat > ~static_cast<Limb>(0)) break;
    }

    // D4: multiply-and-subtract u[j..j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 prod = qhat * v[i] + carry;
      carry = prod >> 64;
      const Limb sub = static_cast<Limb>(prod);
      const u128 diff = static_cast<u128>(u[j + i]) - sub - borrow;
      u[j + i] = static_cast<Limb>(diff);
      borrow = (diff >> 64) & 1U;
    }
    const u128 diff = static_cast<u128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<Limb>(diff);
    const bool negative = ((diff >> 64) & 1U) != 0U;

    // D5/D6: add back when the estimate was one too large.
    if (negative) {
      --qhat;
      Limb c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(u[j + i]) + v[i] + c;
        u[j + i] = static_cast<Limb>(sum);
        c = static_cast<Limb>(sum >> 64);
      }
      u[j + n] += c;
    }
    q[j] = static_cast<Limb>(qhat);
  }

  // D8: denormalize the remainder.
  r.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  if (shift != 0) {
    for (std::size_t i = 0; i < n; ++i) {
      r[i] >>= shift;
      if (i + 1 < n) r[i] |= r[i + 1] << (64 - shift);
      else r[i] |= (u[n] << (64 - shift));
    }
  }
  while (!q.empty() && q.back() == 0) q.pop_back();
  while (!r.empty() && r.back() == 0) r.pop_back();
}

}  // namespace

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  if (b.is_zero()) throw std::domain_error("BigInt: division by zero");
  const int c = cmp_mag(a, b);
  if (c < 0) {
    r = a;
    q = BigInt{};
    return;
  }
  BigInt quotient;
  BigInt remainder;
  if (b.limbs_.size() == 1) {
    const Limb d = b.limbs_[0];
    quotient.limbs_.assign(a.limbs_.size(), 0);
    Limb rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const u128 cur = (static_cast<u128>(rem) << 64) | a.limbs_[i];
      quotient.limbs_[i] = static_cast<Limb>(cur / d);
      rem = static_cast<Limb>(cur % d);
    }
    if (rem != 0) remainder.limbs_.push_back(rem);
  } else {
    divmod_knuth(a.limbs_, b.limbs_, quotient.limbs_, remainder.limbs_);
  }
  quotient.normalize();
  remainder.normalize();
  quotient.negative_ = (a.negative_ != b.negative_) && !quotient.limbs_.empty();
  remainder.negative_ = a.negative_ && !remainder.limbs_.empty();
  q = std::move(quotient);
  r = std::move(remainder);
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q;
  BigInt r;
  divmod(*this, o, q, r);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q;
  BigInt r;
  divmod(*this, o, q, r);
  return r;
}

BigInt BigInt::mod(const BigInt& m) const {
  if (m.is_zero()) throw std::domain_error("BigInt::mod: zero modulus");
  BigInt r = *this % m;
  if (r.negative()) r += m.abs();
  return r;
}

BigInt gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.abs();
  BigInt y = b.abs();
  while (!y.is_zero()) {
    BigInt t = x.mod(y);
    x = std::move(y);
    y = std::move(t);
  }
  return x;
}

BigInt egcd(const BigInt& a, const BigInt& b, BigInt& x, BigInt& y) {
  // Iterative extended Euclid on signed values.
  BigInt old_r = a, r = b;
  BigInt old_s = 1, s = 0;
  BigInt old_t = 0, t = 1;
  while (!r.is_zero()) {
    BigInt q, rem;
    BigInt::divmod(old_r, r, q, rem);
    old_r = std::exchange(r, std::move(rem));
    BigInt tmp_s = old_s - q * s;
    old_s = std::exchange(s, std::move(tmp_s));
    BigInt tmp_t = old_t - q * t;
    old_t = std::exchange(t, std::move(tmp_t));
  }
  x = std::move(old_s);
  y = std::move(old_t);
  return old_r;
}

BigInt mod_inverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt{0}) throw std::domain_error("mod_inverse: modulus must be positive");
  BigInt x;
  BigInt y;
  const BigInt g = egcd(a.mod(m), m, x, y);
  if (!(g.abs().is_one())) throw std::domain_error("mod_inverse: not invertible");
  // Fix sign conventions: g may be -1 when inputs are negative.
  if (g.negative()) x = -x;
  return x.mod(m);
}

BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).mod(m);
}

int jacobi(const BigInt& a_in, const BigInt& n_in) {
  if (n_in.is_even() || n_in.negative()) {
    throw std::domain_error("jacobi: n must be odd and positive");
  }
  BigInt a = a_in.mod(n_in);
  BigInt n = n_in;
  int result = 1;
  while (!a.is_zero()) {
    while (a.is_even()) {
      a >>= 1;
      const std::uint64_t n_mod_8 = n.low_u64() & 7U;
      if (n_mod_8 == 3 || n_mod_8 == 5) result = -result;
    }
    std::swap(a, n);
    if ((a.low_u64() & 3U) == 3 && (n.low_u64() & 3U) == 3) result = -result;
    a = a.mod(n);
  }
  return n.is_one() ? result : 0;
}

bool sqrt_mod_p3(const BigInt& a, const BigInt& p, BigInt& out) {
  if ((p.low_u64() & 3U) != 3U) {
    throw std::domain_error("sqrt_mod_p3: requires p % 4 == 3");
  }
  const BigInt candidate = mod_exp(a.mod(p), (p + BigInt{1}) >> 2, p);
  if (mod_mul(candidate, candidate, p) != a.mod(p)) return false;
  out = candidate;
  return true;
}

}  // namespace idgka::mpint
