// ModContext — the shared modular-arithmetic context layer.
//
// Every protocol in the repository (BD, ING, SSN, the proposed GKA, GQ/DSA
// signatures, EC field arithmetic, the pairing field) bottoms out in modular
// multiplication and exponentiation. A ModContext is an immutable per-modulus
// object that derives everything expensive exactly once — Montgomery
// constants (n', R^2, limb count) for odd moduli — and exposes:
//
//   * mul/exp/inv with a fixed k-ary window (k = 4 or 5, chosen from the
//     modulus size, overridable) running entirely in the Montgomery domain;
//   * a residue-domain API (to_residue/from_residue plus mul/sqr/exp over
//     Residue operands) for callers that chain many operations: one
//     conversion in and one out per chain, fixed-width limb storage, and a
//     heap-allocation-free steady state — working sets come from a
//     thread-local limb arena, operands from the Residue's inline array;
//   * a dedicated squaring kernel (operand-scanning with doubled
//     off-diagonal terms + separate Montgomery reduction) that every
//     exponentiation ladder uses for its squaring chain, at ~3/4 the
//     low-level multiply count of the general CIOS product;
//   * an optional fixed-base comb table (make_fixed_base / exp overload) for
//     the repeated-generator case — the GKA hot path, where every member
//     exponentiates the same g — trading O(2^teeth) precomputed entries for
//     ~teeth-fold fewer multiplications per call;
//   * an even-modulus fallback (generic windowed exponentiation over
//     schoolbook mod-mul) so the layer covers the full mod_exp contract.
//
// Long-lived callers (gka::SystemParams, sig::GqPkg, ec::Curve,
// pairing::Fp2Ctx, pki::CertificateAuthority) construct contexts once and
// thread `const ModContext&` down; mpint::mod_exp remains as a compatibility
// shim that builds a transient context per call. The context is the single
// seam for any future backend swap (GMP, SIMD limb kernels).
//
// The layer also keeps process-wide operation counters (exponentiations,
// low-level modular multiplications and — separately — modular squarings,
// folded in once per public call) so the simulation metrics can separate
// crypto cost from event-loop cost and attribute the squaring-kernel
// discount. Totals are order-independent sums and therefore deterministic
// under multithreaded protocol runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpint/bigint.h"
#include "mpint/residue.h"

namespace idgka::mpint {

/// Process-wide crypto work counters (monotonic totals; take two snapshots
/// and subtract to attribute work to a region).
struct OpCounts {
  std::uint64_t exps = 0;        ///< public exponentiation calls
  std::uint64_t mod_muls = 0;    ///< low-level general modular multiplications
  std::uint64_t mod_sqrs = 0;    ///< low-level modular squarings (dedicated kernel)
  std::uint64_t multi_exps = 0;  ///< public joint multi-exponentiation calls
};

/// Snapshot of the process-wide counters.
[[nodiscard]] OpCounts op_counts();

class ModContext;

/// Precomputed comb table for one (context, base, exponent-width) triple.
/// Built by ModContext::make_fixed_base; consumed by the exp overload.
/// Copyable value type; entries live in the Montgomery domain of the owning
/// context's modulus (a modulus fingerprint is kept and checked on use) and
/// are stored as one flat limb array — entry j occupies limbs
/// [j*stride, (j+1)*stride).
class FixedBaseTable {
 public:
  [[nodiscard]] const BigInt& base() const { return base_; }
  /// Widest exponent (in bits) the comb covers; wider falls back to the
  /// generic ladder.
  [[nodiscard]] std::size_t max_exp_bits() const { return bits_; }
  [[nodiscard]] unsigned teeth() const { return teeth_; }
  /// True when the comb is usable (odd modulus); false means every exp via
  /// this table takes the generic path.
  [[nodiscard]] bool comb_available() const { return teeth_ != 0; }
  /// Memory footprint of the precomputed entries.
  [[nodiscard]] std::size_t table_bytes() const { return table_.size() * sizeof(Limb); }

 private:
  friend class ModContext;
  using Limb = BigInt::Limb;

  [[nodiscard]] const Limb* entry(std::size_t j) const { return table_.data() + j * stride_; }

  BigInt base_;
  std::vector<Limb> mod_fingerprint_;  // limbs of the modulus it was built for
  std::size_t bits_ = 0;               // exponent coverage
  std::size_t block_ = 0;              // comb block size d = ceil(bits / teeth)
  std::size_t stride_ = 0;             // limbs per entry (= modulus limb count)
  unsigned teeth_ = 0;                 // 0 = comb unavailable
  std::vector<Limb> table_;            // 2^teeth entries, flat, Montgomery domain
};

/// Immutable per-modulus modular-arithmetic context. Valid for any modulus
/// > 1; odd moduli get the Montgomery fast path, even moduli a generic one.
class ModContext {
 public:
  /// `window_bits` = 0 picks automatically (4, or 5 for moduli >= 512 bits);
  /// explicit values are clamped to [2, 8]. The value is an upper bound —
  /// exp() shrinks the window for short exponents so the 2^w-entry table
  /// pays for itself. Throws std::invalid_argument unless modulus > 1.
  explicit ModContext(BigInt modulus, unsigned window_bits = 0);

  [[nodiscard]] const BigInt& modulus() const { return n_; }
  [[nodiscard]] unsigned window_bits() const { return window_; }
  /// True when the Montgomery fast path is active (odd modulus).
  [[nodiscard]] bool montgomery() const { return mont_; }
  /// Limb count of a Residue for this context (modulus width in limbs).
  [[nodiscard]] std::size_t limb_count() const { return mont_ ? k_ : n_.limb_count(); }

  // ------------------------------------------------------------ BigInt API

  /// (a * b) mod n for any a, b (reduced internally).
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^e mod n. Negative e inverts the base first (throws
  /// std::domain_error when not invertible). Fixed k-ary window.
  [[nodiscard]] BigInt exp(const BigInt& base, const BigInt& e) const;

  /// Fixed-base exponentiation through a comb table built by
  /// make_fixed_base. Falls back to the generic ladder when the exponent is
  /// negative or wider than the table, or the comb is unavailable. Throws
  /// std::invalid_argument when the table belongs to a different modulus.
  [[nodiscard]] BigInt exp(const FixedBaseTable& table, const BigInt& e) const;

  /// a^(-1) mod n; throws std::domain_error if not invertible.
  [[nodiscard]] BigInt inv(const BigInt& a) const;

  /// Joint multi-exponentiation: prod_i bases[i]^{exps[i]} mod n, evaluated
  /// in one pass instead of |bases| independent exp() calls. Terms are split
  /// by exponent width: narrow exponents (<= 64 bits — the BD ring's small
  /// integer powers, batch-verification scalars) go through Pippenger bucket
  /// aggregation, wide ones through Shamir/Straus interleaving with shared
  /// squarings (arity <= 8) or Pippenger (wider). Runs Montgomery-native for
  /// odd moduli; even moduli fall back to sequential generic exponentiation.
  /// Zero exponents drop their term; negative exponents invert the base
  /// first (throws std::domain_error when not invertible), matching exp().
  /// Throws std::invalid_argument when the span sizes differ.
  [[nodiscard]] BigInt multi_exp(std::span<const BigInt> bases,
                                 std::span<const BigInt> exps) const;

  /// prod_i values[i] mod n. Montgomery-native for odd moduli: operands stay
  /// canonical and a single R^(k-1) fix-up cancels the accumulated deficit,
  /// so a width-n product costs ~n low-level multiplications instead of the
  /// ~4n of chained mul() calls — with no per-term conversions or heap
  /// traffic regardless of width.
  [[nodiscard]] BigInt product(std::span<const BigInt> values) const;

  /// Builds a comb table for repeated exponentiation of `base` with
  /// exponents up to `max_exp_bits` bits. `teeth` = 0 picks the default (6:
  /// 64 entries, ~6x fewer multiplications than the plain ladder). Entry
  /// count is 2^teeth; teeth is clamped to [1, 8].
  [[nodiscard]] FixedBaseTable make_fixed_base(const BigInt& base,
                                               std::size_t max_exp_bits,
                                               unsigned teeth = 0) const;

  // ----------------------------------------------------------- Residue API
  //
  // One conversion in (to_residue) and one out (from_residue) bracket an
  // arbitrarily long chain of in-domain operations; every operation below
  // is heap-allocation-free in steady state (Montgomery moduli up to
  // Residue::kInlineLimbs) and aliasing-safe — out may be a or b.

  /// Converts a (any sign/size; reduced internally) into the context's
  /// residue domain.
  [[nodiscard]] Residue to_residue(const BigInt& a) const;

  /// Converts a residue back to a canonical BigInt in [0, n).
  [[nodiscard]] BigInt from_residue(const Residue& r) const;

  /// The residue representing 1.
  [[nodiscard]] Residue one_residue() const;

  /// out = a + b in the residue domain. Both domains (Montgomery and
  /// canonical) are linear, so this is one limb addition plus at most one
  /// conditional subtraction of the modulus — no division, no allocation.
  void add(const Residue& a, const Residue& b, Residue& out) const;

  /// out = a - b in the residue domain (limb subtraction, conditional
  /// add-back of the modulus).
  void sub(const Residue& a, const Residue& b, Residue& out) const;

  /// out = a * b in the residue domain.
  void mul(const Residue& a, const Residue& b, Residue& out) const;

  /// out = a^2 in the residue domain, through the dedicated squaring kernel
  /// (~3/4 the limb multiplications of the general product).
  void sqr(const Residue& a, Residue& out) const;

  /// out = base^e in the residue domain. Negative e round-trips through
  /// BigInt inversion (throws std::domain_error when not invertible); e >= 0
  /// stays entirely in-domain and allocation-free.
  void exp(const Residue& base, const BigInt& e, Residue& out) const;

  /// out = comb-table base^e in the residue domain (same fallback rules as
  /// the BigInt overload; the fallback converts through BigInt).
  void exp(const FixedBaseTable& table, const BigInt& e, Residue& out) const;

 private:
  using Limb = BigInt::Limb;

  /// Per-call work accumulator; public entry points fold it into the
  /// process-wide counters exactly once.
  struct Ops {
    std::uint64_t muls = 0;
    std::uint64_t sqrs = 0;
  };
  void fold(const Ops& ops) const;

  // Raw Montgomery kernels (odd moduli). All pointers reference k_-limb
  // little-endian magnitudes unless noted; `out` may alias any input.
  // `scratch` must hold at least 2*k_ + 2 limbs.
  void mont_mul_raw(const Limb* a, const Limb* b, Limb* out, Limb* scratch) const;
  void mont_sqr_raw(const Limb* a, Limb* out, Limb* scratch) const;
  // Loads |a| mod n into the k_-limb `out` (canonical domain, no R factor).
  void load_canonical(const BigInt& a, Limb* out) const;
  // out = canonical(a) * R mod n (the Montgomery conversion).
  void to_mont_raw(const BigInt& a, Limb* out, Limb* scratch, Ops& ops) const;
  // Canonicalizes a Montgomery-domain value back into a BigInt.
  [[nodiscard]] BigInt from_mont_raw(const Limb* a, Limb* scratch, Ops& ops) const;
  // Montgomery-domain exponentiation core: out = base^e (e >= 1), all raw.
  void exp_mont_raw(const Limb* base, const BigInt& e, Limb* out, Ops& ops) const;
  [[nodiscard]] BigInt exp_mont(const BigInt& base, const BigInt& e, Ops& ops) const;
  [[nodiscard]] BigInt exp_comb(const FixedBaseTable& table, const BigInt& e,
                                Ops& ops) const;
  void exp_comb_raw(const FixedBaseTable& table, const BigInt& e, Limb* out,
                    Ops& ops) const;
  // Generic path (even moduli): windowed square-and-multiply over mod_mul.
  [[nodiscard]] BigInt exp_generic(const BigInt& base, const BigInt& e, Ops& ops) const;
  [[nodiscard]] BigInt exp_any(const BigInt& base, const BigInt& e, Ops& ops) const;
  // Multi-exponentiation engines over Montgomery-domain bases (odd moduli).
  // Both require every term's exponent to be positive; results land in the
  // k_-limb `out`.
  void straus_mont(std::span<const Residue* const> bases,
                   std::span<const BigInt* const> exps, Limb* out, Ops& ops) const;
  void pippenger_mont(std::span<const Residue* const> bases,
                      std::span<const BigInt* const> exps, Limb* out, Ops& ops) const;

  BigInt n_;
  bool mont_ = false;
  unsigned window_ = 4;
  std::vector<Limb> n_limbs_;
  std::size_t k_ = 0;            // limb count of the modulus
  Limb n0_inv_ = 0;              // -n^{-1} mod 2^64 (Montgomery only)
  BigInt rr_;                    // R^2 mod n, R = 2^(64k)
  std::vector<Limb> rr_limbs_;   // R^2 mod n, zero-padded to k_ limbs
  std::vector<Limb> one_mont_;   // R mod n (k_ limbs)
};

/// Square root modulo a prime p with p % 4 == 3, through a caller-cached
/// context for p (the bigint.h overload derives a transient context per
/// call). On success sets `out` and returns true.
bool sqrt_mod_p3(const ModContext& ctx, const BigInt& a, BigInt& out);

}  // namespace idgka::mpint
