// ModContext — the shared modular-arithmetic context layer.
//
// Every protocol in the repository (BD, ING, SSN, the proposed GKA, GQ/DSA
// signatures, EC field arithmetic, the pairing field) bottoms out in modular
// multiplication and exponentiation. A ModContext is an immutable per-modulus
// object that derives everything expensive exactly once — Montgomery
// constants (n', R^2, limb count) for odd moduli — and exposes:
//
//   * mul/exp/inv with a fixed k-ary window (k = 4 or 5, chosen from the
//     modulus size, overridable) running entirely in the Montgomery domain;
//   * an optional fixed-base comb table (make_fixed_base / exp overload) for
//     the repeated-generator case — the GKA hot path, where every member
//     exponentiates the same g — trading O(2^teeth) precomputed entries for
//     ~teeth-fold fewer multiplications per call;
//   * an even-modulus fallback (generic windowed exponentiation over
//     schoolbook mod-mul) so the layer covers the full mod_exp contract.
//
// Long-lived callers (gka::SystemParams, sig::GqPkg, ec::Curve,
// pairing::Fp2Ctx, pki::CertificateAuthority) construct contexts once and
// thread `const ModContext&` down; mpint::mod_exp remains as a compatibility
// shim that builds a transient context per call. The context is the single
// seam for any future backend swap (GMP, fixed-width limbs, SIMD).
//
// The layer also keeps process-wide operation counters (exponentiations and
// low-level modular multiplications, folded in once per public call) so the
// simulation metrics can separate crypto cost from event-loop cost. Totals
// are order-independent sums and therefore deterministic under multithreaded
// protocol runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpint/bigint.h"

namespace idgka::mpint {

/// Process-wide crypto work counters (monotonic totals; take two snapshots
/// and subtract to attribute work to a region).
struct OpCounts {
  std::uint64_t exps = 0;        ///< public exponentiation calls
  std::uint64_t mod_muls = 0;    ///< low-level modular multiplications
  std::uint64_t multi_exps = 0;  ///< public joint multi-exponentiation calls
};

/// Snapshot of the process-wide counters.
[[nodiscard]] OpCounts op_counts();

class ModContext;

/// Precomputed comb table for one (context, base, exponent-width) triple.
/// Built by ModContext::make_fixed_base; consumed by the exp overload.
/// Copyable value type; entries live in the Montgomery domain of the owning
/// context's modulus (a modulus fingerprint is kept and checked on use).
class FixedBaseTable {
 public:
  [[nodiscard]] const BigInt& base() const { return base_; }
  /// Widest exponent (in bits) the comb covers; wider falls back to the
  /// generic ladder.
  [[nodiscard]] std::size_t max_exp_bits() const { return bits_; }
  [[nodiscard]] unsigned teeth() const { return teeth_; }
  /// True when the comb is usable (odd modulus); false means every exp via
  /// this table takes the generic path.
  [[nodiscard]] bool comb_available() const { return teeth_ != 0; }
  /// Memory footprint of the precomputed entries.
  [[nodiscard]] std::size_t table_bytes() const;

 private:
  friend class ModContext;
  using Limb = BigInt::Limb;

  BigInt base_;
  std::vector<Limb> mod_fingerprint_;  // limbs of the modulus it was built for
  std::size_t bits_ = 0;               // exponent coverage
  std::size_t block_ = 0;              // comb block size d = ceil(bits / teeth)
  unsigned teeth_ = 0;                 // 0 = comb unavailable
  std::vector<std::vector<Limb>> table_;  // [2^teeth] Montgomery-domain entries
};

/// Immutable per-modulus modular-arithmetic context. Valid for any modulus
/// > 1; odd moduli get the Montgomery fast path, even moduli a generic one.
class ModContext {
 public:
  /// `window_bits` = 0 picks automatically (4, or 5 for moduli >= 512 bits);
  /// explicit values are clamped to [2, 8]. The value is an upper bound —
  /// exp() shrinks the window for short exponents so the 2^w-entry table
  /// pays for itself. Throws std::invalid_argument unless modulus > 1.
  explicit ModContext(BigInt modulus, unsigned window_bits = 0);

  [[nodiscard]] const BigInt& modulus() const { return n_; }
  [[nodiscard]] unsigned window_bits() const { return window_; }
  /// True when the Montgomery fast path is active (odd modulus).
  [[nodiscard]] bool montgomery() const { return mont_; }

  /// (a * b) mod n for any a, b (reduced internally).
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;

  /// base^e mod n. Negative e inverts the base first (throws
  /// std::domain_error when not invertible). Fixed k-ary window.
  [[nodiscard]] BigInt exp(const BigInt& base, const BigInt& e) const;

  /// Fixed-base exponentiation through a comb table built by
  /// make_fixed_base. Falls back to the generic ladder when the exponent is
  /// negative or wider than the table, or the comb is unavailable. Throws
  /// std::invalid_argument when the table belongs to a different modulus.
  [[nodiscard]] BigInt exp(const FixedBaseTable& table, const BigInt& e) const;

  /// a^(-1) mod n; throws std::domain_error if not invertible.
  [[nodiscard]] BigInt inv(const BigInt& a) const;

  /// Joint multi-exponentiation: prod_i bases[i]^{exps[i]} mod n, evaluated
  /// in one pass instead of |bases| independent exp() calls. Terms are split
  /// by exponent width: narrow exponents (<= 64 bits — the BD ring's small
  /// integer powers, batch-verification scalars) go through Pippenger bucket
  /// aggregation, wide ones through Shamir/Straus interleaving with shared
  /// squarings (arity <= 8) or Pippenger (wider). Runs Montgomery-native for
  /// odd moduli; even moduli fall back to sequential generic exponentiation.
  /// Zero exponents drop their term; negative exponents invert the base
  /// first (throws std::domain_error when not invertible), matching exp().
  /// Throws std::invalid_argument when the span sizes differ.
  [[nodiscard]] BigInt multi_exp(std::span<const BigInt> bases,
                                 std::span<const BigInt> exps) const;

  /// prod_i values[i] mod n. Montgomery-native for odd moduli: each operand
  /// is converted once, so a width-n product costs ~2n low-level
  /// multiplications instead of the ~4n of chained mul() calls.
  [[nodiscard]] BigInt product(std::span<const BigInt> values) const;

  /// Builds a comb table for repeated exponentiation of `base` with
  /// exponents up to `max_exp_bits` bits. `teeth` = 0 picks the default (6:
  /// 64 entries, ~6x fewer multiplications than the plain ladder). Entry
  /// count is 2^teeth; teeth is clamped to [1, 8].
  [[nodiscard]] FixedBaseTable make_fixed_base(const BigInt& base,
                                               std::size_t max_exp_bits,
                                               unsigned teeth = 0) const;

 private:
  using Limb = BigInt::Limb;

  // Montgomery machinery (odd moduli). `muls` accumulates the number of
  // low-level multiplications locally; public entry points fold it into the
  // process-wide counter once per call.
  [[nodiscard]] std::vector<Limb> to_mont(const BigInt& a, std::uint64_t& muls) const;
  [[nodiscard]] BigInt from_mont(const std::vector<Limb>& a, std::uint64_t& muls) const;
  [[nodiscard]] std::vector<Limb> mont_mul(const std::vector<Limb>& a,
                                           const std::vector<Limb>& b) const;
  [[nodiscard]] BigInt exp_mont(const BigInt& base, const BigInt& e,
                                std::uint64_t& muls) const;
  // Sliding-window core over a Montgomery-domain base; result stays in the
  // Montgomery domain. Requires e >= 1.
  [[nodiscard]] std::vector<Limb> exp_mont_core(const std::vector<Limb>& base_m,
                                                const BigInt& e, std::uint64_t& muls) const;
  [[nodiscard]] BigInt exp_comb(const FixedBaseTable& table, const BigInt& e,
                                std::uint64_t& muls) const;
  // Generic path (even moduli): windowed square-and-multiply over mod_mul.
  [[nodiscard]] BigInt exp_generic(const BigInt& base, const BigInt& e,
                                   std::uint64_t& muls) const;
  [[nodiscard]] BigInt exp_any(const BigInt& base, const BigInt& e,
                               std::uint64_t& muls) const;
  // Multi-exponentiation engines over Montgomery-domain bases (odd moduli).
  // Both require every term's exponent to be positive.
  [[nodiscard]] std::vector<Limb> straus_mont(
      std::span<const std::vector<Limb>* const> bases, std::span<const BigInt* const> exps,
      std::uint64_t& muls) const;
  [[nodiscard]] std::vector<Limb> pippenger_mont(
      std::span<const std::vector<Limb>* const> bases, std::span<const BigInt* const> exps,
      std::uint64_t& muls) const;

  BigInt n_;
  bool mont_ = false;
  unsigned window_ = 4;
  std::vector<Limb> n_limbs_;
  std::size_t k_ = 0;           // limb count of the modulus
  Limb n0_inv_ = 0;             // -n^{-1} mod 2^64 (Montgomery only)
  BigInt rr_;                   // R^2 mod n, R = 2^(64k)
  std::vector<Limb> one_mont_;  // R mod n
};

/// Square root modulo a prime p with p % 4 == 3, through a caller-cached
/// context for p (the bigint.h overload derives a transient context per
/// call). On success sets `out` and returns true.
bool sqrt_mod_p3(const ModContext& ctx, const BigInt& a, BigInt& out);

}  // namespace idgka::mpint
