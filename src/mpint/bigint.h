// Arbitrary-precision integer arithmetic.
//
// This is the numeric substrate for every cryptographic scheme in the
// repository: the GQ ID-based signature (1024-bit RSA-type modulus), the
// Burmester-Desmedt group (1024-bit prime field), DSA, ECDSA field/scalar
// arithmetic and the supersingular pairing field.
//
// Representation: sign-magnitude with 64-bit little-endian limbs. The
// magnitude is always normalized (no trailing zero limbs); zero has an empty
// limb vector and positive sign.
#pragma once

#include <compare>
#include <type_traits>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace idgka::mpint {

/// Arbitrary-precision signed integer.
class BigInt {
 public:
  using Limb = std::uint64_t;

  /// Constructs zero.
  BigInt() = default;
  /// Constructs from any built-in integer (sign-magnitude).
  template <typename T>
    requires std::is_integral_v<T>
  BigInt(T v) {  // NOLINT(google-explicit-constructor): numeric literal use
    if constexpr (std::is_signed_v<T>) {
      if (v < 0) {
        negative_ = true;
        limbs_.push_back(static_cast<Limb>(-static_cast<std::int64_t>(v)));
        return;
      }
    }
    if (v != 0) limbs_.push_back(static_cast<Limb>(v));
  }

  /// Parses a hexadecimal string, optionally prefixed with '-' or "0x".
  /// Throws std::invalid_argument on malformed input.
  static BigInt from_hex(std::string_view s);
  /// Parses a decimal string, optionally prefixed with '-'.
  static BigInt from_dec(std::string_view s);
  /// Interprets big-endian bytes as a non-negative integer.
  static BigInt from_bytes_be(std::span<const std::uint8_t> bytes);

  /// Lower-case hex without prefix ("0" for zero, leading '-' if negative).
  [[nodiscard]] std::string to_hex() const;
  /// Decimal representation.
  [[nodiscard]] std::string to_dec() const;
  /// Big-endian bytes of the magnitude, left-padded with zeros to at least
  /// `min_len` bytes. The sign is discarded; zero encodes as `min_len` zero
  /// bytes (empty if min_len == 0).
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be(std::size_t min_len = 0) const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_one() const { return !negative_ && limbs_.size() == 1 && limbs_[0] == 1; }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1U) != 0U; }
  [[nodiscard]] bool is_even() const { return !is_odd(); }
  [[nodiscard]] bool negative() const { return negative_; }

  /// Number of significant bits of the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;
  /// Value of magnitude bit `i` (false beyond bit_length()).
  [[nodiscard]] bool bit(std::size_t i) const;
  /// Number of significant limbs.
  [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }
  /// Limb `i` of the magnitude (0 beyond limb_count()).
  [[nodiscard]] Limb limb(std::size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }
  /// Least-significant 64 bits of the magnitude.
  [[nodiscard]] Limb low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  [[nodiscard]] BigInt abs() const;

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& o) const;
  /// Remainder with the sign of the dividend (C semantics).
  BigInt operator%(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }
  BigInt& operator/=(const BigInt& o) { return *this = *this / o; }
  BigInt& operator%=(const BigInt& o) { return *this = *this % o; }
  BigInt& operator<<=(std::size_t b) { return *this = *this << b; }
  BigInt& operator>>=(std::size_t b) { return *this = *this >> b; }

  bool operator==(const BigInt& o) const = default;
  std::strong_ordering operator<=>(const BigInt& o) const;

  /// Simultaneous quotient and remainder (truncated semantics).
  /// Throws std::domain_error on division by zero.
  static void divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);

  /// Euclidean remainder: result always in [0, |m|). Throws on m == 0.
  [[nodiscard]] BigInt mod(const BigInt& m) const;

  /// Internal access for performance-sensitive callers (Montgomery kernels).
  [[nodiscard]] const std::vector<Limb>& limbs() const { return limbs_; }
  /// Writes the magnitude into `out[0, k)`, zero-padded — the allocation-free
  /// exit into fixed-width limb buffers (Residue storage, arena scratch).
  /// Requires limb_count() <= k; the sign is discarded.
  void copy_limbs_to(Limb* out, std::size_t k) const;
  /// Builds a non-negative value from raw little-endian limbs (normalizes).
  static BigInt from_limbs(std::vector<Limb> limbs);
  /// Raw-buffer overload: copies `k` limbs (trailing zeros fine).
  static BigInt from_limbs(const Limb* limbs, std::size_t k);

 private:
  static int cmp_mag(const BigInt& a, const BigInt& b);
  static std::vector<Limb> add_mag(const std::vector<Limb>& a, const std::vector<Limb>& b);
  // Requires |a| >= |b|.
  static std::vector<Limb> sub_mag(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mul_mag(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> mul_school(std::span<const Limb> a, std::span<const Limb> b);
  static std::vector<Limb> mul_karatsuba(std::span<const Limb> a, std::span<const Limb> b);
  void normalize();

  bool negative_ = false;
  std::vector<Limb> limbs_;  // little-endian magnitude
};

/// Greatest common divisor of |a| and |b| (binary GCD).
[[nodiscard]] BigInt gcd(const BigInt& a, const BigInt& b);

/// Extended GCD: returns g = gcd(a, b) and sets x, y with a*x + b*y == g.
BigInt egcd(const BigInt& a, const BigInt& b, BigInt& x, BigInt& y);

/// Modular inverse of a modulo m (m > 0). Throws std::domain_error when
/// gcd(a, m) != 1.
[[nodiscard]] BigInt mod_inverse(const BigInt& a, const BigInt& m);

/// (a * b) mod m with full-width intermediate.
[[nodiscard]] BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);

/// base^exp mod m for exp >= 0, m > 0. Uses Montgomery exponentiation for odd
/// m and square-and-multiply otherwise.
[[nodiscard]] BigInt mod_exp(const BigInt& base, const BigInt& exp, const BigInt& m);

/// Jacobi symbol (a/n) for odd positive n; returns -1, 0 or 1.
[[nodiscard]] int jacobi(const BigInt& a, const BigInt& n);

/// Square root modulo a prime p with p % 4 == 3 (the only case the library
/// needs; used by MapToPoint on the supersingular curve). Returns nullopt-like
/// empty result via bool: on success sets `out` and returns true.
bool sqrt_mod_p3(const BigInt& a, const BigInt& p, BigInt& out);

}  // namespace idgka::mpint
