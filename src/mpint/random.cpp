#include "mpint/random.h"

#include <array>
#include <bit>
#include <stdexcept>

namespace idgka::mpint {

std::uint64_t Rng::next_u64() {
  std::array<std::uint8_t, 8> buf{};
  fill(buf);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf[static_cast<std::size_t>(i)];
  return v;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

XoshiroRng::XoshiroRng(std::uint64_t seed) {
  // SplitMix64 expansion of the seed, per Blackman & Vigna's reference.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9E3779B97f4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    s = z ^ (z >> 31);
  }
}

std::uint64_t XoshiroRng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

void XoshiroRng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
}

BigInt random_bits(Rng& rng, std::size_t bits) {
  if (bits == 0) throw std::invalid_argument("random_bits: bits must be >= 1");
  std::vector<std::uint8_t> buf((bits + 7) / 8);
  rng.fill(buf);
  const std::size_t excess = buf.size() * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xFF >> excess);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> excess);  // force top bit
  return BigInt::from_bytes_be(buf);
}

BigInt random_below(Rng& rng, const BigInt& bound) {
  if (bound <= BigInt{0}) throw std::invalid_argument("random_below: bound must be > 0");
  const std::size_t bits = bound.bit_length();
  std::vector<std::uint8_t> buf((bits + 7) / 8);
  const std::size_t excess = buf.size() * 8 - bits;
  while (true) {
    rng.fill(buf);
    buf[0] &= static_cast<std::uint8_t>(0xFF >> excess);
    BigInt v = BigInt::from_bytes_be(buf);
    if (v < bound) return v;
  }
}

BigInt random_range(Rng& rng, const BigInt& lo, const BigInt& hi) {
  if (!(lo < hi)) throw std::invalid_argument("random_range: requires lo < hi");
  return lo + random_below(rng, hi - lo);
}

BigInt random_unit(Rng& rng, const BigInt& n) {
  while (true) {
    BigInt v = random_range(rng, BigInt{1}, n);
    if (gcd(v, n).is_one()) return v;
  }
}

}  // namespace idgka::mpint
