#include "symc/sealed_box.h"

#include "symc/kdf.h"
#include "symc/modes.h"

namespace idgka::symc {

namespace {

void put_u32_be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void put_u16_be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

SealedBox::SealedBox(const mpint::BigInt& group_key)
    : group_key_(group_key), cipher_(derive_key(group_key)) {}

std::vector<std::uint8_t> SealedBox::seal(const mpint::BigInt& payload, std::uint32_t sender_id,
                                          std::uint64_t sequence) const {
  // plaintext = len(payload):u16 || payload || sender_id:u32
  std::vector<std::uint8_t> pt;
  const auto payload_bytes = payload.to_bytes_be();
  put_u16_be(pt, static_cast<std::uint16_t>(payload_bytes.size()));
  pt.insert(pt.end(), payload_bytes.begin(), payload_bytes.end());
  put_u32_be(pt, sender_id);
  return cbc_encrypt(cipher_, derive_iv(group_key_, sender_id, sequence), pt);
}

std::optional<mpint::BigInt> SealedBox::open(std::span<const std::uint8_t> box,
                                             std::uint32_t expected_sender,
                                             std::uint64_t sequence) const {
  std::vector<std::uint8_t> pt;
  try {
    pt = cbc_decrypt(cipher_, derive_iv(group_key_, expected_sender, sequence), box);
  } catch (const PaddingError&) {
    return std::nullopt;
  }
  if (pt.size() < 6) return std::nullopt;
  const std::size_t payload_len = (static_cast<std::size_t>(pt[0]) << 8) | pt[1];
  if (pt.size() != 2 + payload_len + 4) return std::nullopt;
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < 4; ++i) id = (id << 8) | pt[2 + payload_len + i];
  if (id != expected_sender) return std::nullopt;
  return mpint::BigInt::from_bytes_be(
      std::span<const std::uint8_t>(pt.data() + 2, payload_len));
}

}  // namespace idgka::symc
