#include "symc/modes.h"

#include <algorithm>

namespace idgka::symc {

std::vector<std::uint8_t> ctr_crypt(const Aes128& cipher, const Aes128::Block& iv,
                                    std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  Aes128::Block counter = iv;
  std::size_t offset = 0;
  while (offset < out.size()) {
    Aes128::Block keystream = counter;
    cipher.encrypt_block(keystream);
    const std::size_t take = std::min(Aes128::kBlockSize, out.size() - offset);
    for (std::size_t i = 0; i < take; ++i) out[offset + i] ^= keystream[i];
    offset += take;
    // Big-endian increment.
    for (std::size_t i = Aes128::kBlockSize; i-- > 0;) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

std::vector<std::uint8_t> cbc_encrypt(const Aes128& cipher, const Aes128::Block& iv,
                                      std::span<const std::uint8_t> plaintext) {
  const std::size_t pad = Aes128::kBlockSize - plaintext.size() % Aes128::kBlockSize;
  std::vector<std::uint8_t> buf(plaintext.begin(), plaintext.end());
  buf.insert(buf.end(), pad, static_cast<std::uint8_t>(pad));

  Aes128::Block chain = iv;
  for (std::size_t offset = 0; offset < buf.size(); offset += Aes128::kBlockSize) {
    Aes128::Block block;
    for (std::size_t i = 0; i < Aes128::kBlockSize; ++i) {
      block[i] = static_cast<std::uint8_t>(buf[offset + i] ^ chain[i]);
    }
    cipher.encrypt_block(block);
    std::copy(block.begin(), block.end(), buf.begin() + static_cast<std::ptrdiff_t>(offset));
    chain = block;
  }
  return buf;
}

std::vector<std::uint8_t> cbc_decrypt(const Aes128& cipher, const Aes128::Block& iv,
                                      std::span<const std::uint8_t> ciphertext) {
  if (ciphertext.empty() || ciphertext.size() % Aes128::kBlockSize != 0) {
    throw PaddingError();
  }
  std::vector<std::uint8_t> buf(ciphertext.begin(), ciphertext.end());
  Aes128::Block chain = iv;
  for (std::size_t offset = 0; offset < buf.size(); offset += Aes128::kBlockSize) {
    Aes128::Block block;
    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(offset), Aes128::kBlockSize,
                block.begin());
    const Aes128::Block next_chain = block;
    cipher.decrypt_block(block);
    for (std::size_t i = 0; i < Aes128::kBlockSize; ++i) {
      buf[offset + i] = static_cast<std::uint8_t>(block[i] ^ chain[i]);
    }
    chain = next_chain;
  }
  const std::uint8_t pad = buf.back();
  if (pad == 0 || pad > Aes128::kBlockSize || pad > buf.size()) throw PaddingError();
  for (std::size_t i = buf.size() - pad; i < buf.size(); ++i) {
    if (buf[i] != pad) throw PaddingError();
  }
  buf.resize(buf.size() - pad);
  return buf;
}

}  // namespace idgka::symc
