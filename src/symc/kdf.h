// Key derivation from group keys.
//
// The GKA protocols agree on a group element K in Z_p^*; the dynamic
// protocols and applications need a 128-bit AES key. We derive it as
// SHA-256(label || K_bytes) truncated, an HKDF-extract-style step.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "mpint/bigint.h"
#include "symc/aes.h"

namespace idgka::symc {

/// Derives an AES-128 key from a group element with domain separation.
[[nodiscard]] std::array<std::uint8_t, Aes128::kKeySize> derive_key(
    const mpint::BigInt& group_key, std::string_view label = "idgka-v1");

/// Derives a deterministic CTR/CBC IV from context (sender id, sequence).
[[nodiscard]] Aes128::Block derive_iv(const mpint::BigInt& group_key, std::uint32_t sender,
                                      std::uint64_t sequence);

}  // namespace idgka::symc
