// The paper's E_K(m || ID) construction.
//
// Every dynamic protocol distributes key material as EK(K* || U_i): the
// recipient decrypts and checks that the embedded identity matches the
// expected sender, which is the paper's (lightweight) validity check. We
// reproduce exactly that wire format: AES-128-CBC over (payload || id),
// with open() verifying the trailing identity.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mpint/bigint.h"
#include "symc/aes.h"

namespace idgka::symc {

/// Identity-checked symmetric encryption under a group-element key.
class SealedBox {
 public:
  /// Binds the box to a group key (any BigInt; an AES key is derived).
  explicit SealedBox(const mpint::BigInt& group_key);

  /// E_K(payload || sender_id). `sequence` diversifies the IV.
  [[nodiscard]] std::vector<std::uint8_t> seal(const mpint::BigInt& payload,
                                               std::uint32_t sender_id,
                                               std::uint64_t sequence = 0) const;

  /// Decrypts and verifies the embedded identity equals `expected_sender`.
  /// Returns std::nullopt when decryption fails or the identity mismatches
  /// (the paper's "check if the identity is decrypted correctly").
  [[nodiscard]] std::optional<mpint::BigInt> open(std::span<const std::uint8_t> box,
                                                  std::uint32_t expected_sender,
                                                  std::uint64_t sequence = 0) const;

 private:
  mpint::BigInt group_key_;
  Aes128 cipher_;
};

}  // namespace idgka::symc
