// AES-128 block cipher (FIPS 197), from scratch.
//
// The dynamic membership protocols (Section 7 of the paper) distribute
// re-keying material encrypted under the current group key with a symmetric
// cipher E_K(.); this is that cipher. Table-based implementation — the
// simulator threat model does not include cache-timing side channels.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace idgka::symc {

/// AES-128 with a fixed expanded key schedule.
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  using Block = std::array<std::uint8_t, kBlockSize>;

  /// Expands the 16-byte key.
  explicit Aes128(std::span<const std::uint8_t, kKeySize> key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(Block& block) const;
  /// Decrypts one 16-byte block in place.
  void decrypt_block(Block& block) const;

 private:
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_{};
};

}  // namespace idgka::symc
