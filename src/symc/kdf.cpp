#include "symc/kdf.h"

#include <algorithm>
#include <vector>

#include "hash/sha256.h"

namespace idgka::symc {

std::array<std::uint8_t, Aes128::kKeySize> derive_key(const mpint::BigInt& group_key,
                                                      std::string_view label) {
  hash::Sha256 h;
  h.update(label);
  h.update(std::string_view{"|key|"});
  const auto bytes = group_key.to_bytes_be();
  h.update(bytes);
  const auto digest = h.finalize();
  std::array<std::uint8_t, Aes128::kKeySize> key{};
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

Aes128::Block derive_iv(const mpint::BigInt& group_key, std::uint32_t sender,
                        std::uint64_t sequence) {
  hash::Sha256 h;
  h.update(std::string_view{"idgka-v1|iv|"});
  std::array<std::uint8_t, 12> ctx{};
  for (int i = 0; i < 4; ++i) ctx[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(sender >> (24 - i * 8));
  for (int i = 0; i < 8; ++i) ctx[static_cast<std::size_t>(4 + i)] = static_cast<std::uint8_t>(sequence >> (56 - i * 8));
  h.update(ctx);
  const auto bytes = group_key.to_bytes_be();
  h.update(bytes);
  const auto digest = h.finalize();
  Aes128::Block iv{};
  std::copy_n(digest.begin(), iv.size(), iv.begin());
  return iv;
}

}  // namespace idgka::symc
