#include "symc/aes.h"

#include <cstring>

namespace idgka::symc {

namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16};

constexpr std::array<std::uint8_t, 256> make_inv_sbox() {
  std::array<std::uint8_t, 256> inv{};
  for (std::size_t i = 0; i < 256; ++i) inv[kSbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}
constexpr std::array<std::uint8_t, 256> kInvSbox = make_inv_sbox();

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  while (b != 0) {
    if ((b & 1) != 0) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

}  // namespace

Aes128::Aes128(std::span<const std::uint8_t, kKeySize> key) {
  std::memcpy(round_keys_[0].data(), key.data(), kKeySize);
  std::uint8_t rcon = 0x01;
  for (std::size_t round = 1; round <= 10; ++round) {
    const auto& prev = round_keys_[round - 1];
    auto& cur = round_keys_[round];
    // First word: RotWord + SubWord + Rcon.
    cur[0] = static_cast<std::uint8_t>(prev[0] ^ kSbox[prev[13]] ^ rcon);
    cur[1] = static_cast<std::uint8_t>(prev[1] ^ kSbox[prev[14]]);
    cur[2] = static_cast<std::uint8_t>(prev[2] ^ kSbox[prev[15]]);
    cur[3] = static_cast<std::uint8_t>(prev[3] ^ kSbox[prev[12]]);
    for (std::size_t i = 4; i < 16; ++i) {
      cur[i] = static_cast<std::uint8_t>(prev[i] ^ cur[i - 4]);
    }
    rcon = xtime(rcon);
  }
}

void Aes128::encrypt_block(Block& b) const {
  auto add_round_key = [&](std::size_t r) {
    for (std::size_t i = 0; i < 16; ++i) b[i] ^= round_keys_[r][i];
  };
  auto sub_bytes = [&] {
    for (auto& x : b) x = kSbox[x];
  };
  auto shift_rows = [&] {
    Block t = b;
    // Row r (bytes r, r+4, r+8, r+12) rotates left by r.
    for (std::size_t r = 1; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) b[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
    }
  };
  auto mix_columns = [&] {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::uint8_t a0 = b[4 * c], a1 = b[4 * c + 1], a2 = b[4 * c + 2], a3 = b[4 * c + 3];
      b[4 * c + 0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
      b[4 * c + 1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
      b[4 * c + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
      b[4 * c + 3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (std::size_t round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

void Aes128::decrypt_block(Block& b) const {
  auto add_round_key = [&](std::size_t r) {
    for (std::size_t i = 0; i < 16; ++i) b[i] ^= round_keys_[r][i];
  };
  auto inv_sub_bytes = [&] {
    for (auto& x : b) x = kInvSbox[x];
  };
  auto inv_shift_rows = [&] {
    Block t = b;
    for (std::size_t r = 1; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) b[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
    }
  };
  auto inv_mix_columns = [&] {
    for (std::size_t c = 0; c < 4; ++c) {
      const std::uint8_t a0 = b[4 * c], a1 = b[4 * c + 1], a2 = b[4 * c + 2], a3 = b[4 * c + 3];
      b[4 * c + 0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9));
      b[4 * c + 1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13));
      b[4 * c + 2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11));
      b[4 * c + 3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14));
    }
  };

  add_round_key(10);
  for (std::size_t round = 9; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

}  // namespace idgka::symc
