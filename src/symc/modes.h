// Block-cipher modes of operation over Aes128: CTR and CBC with PKCS#7.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "symc/aes.h"

namespace idgka::symc {

/// Thrown by CBC decryption on malformed padding.
class PaddingError : public std::runtime_error {
 public:
  PaddingError() : std::runtime_error("symc: bad PKCS#7 padding") {}
};

/// CTR keystream encryption/decryption (symmetric). The 16-byte IV is the
/// initial counter block; the counter increments big-endian.
[[nodiscard]] std::vector<std::uint8_t> ctr_crypt(const Aes128& cipher,
                                                  const Aes128::Block& iv,
                                                  std::span<const std::uint8_t> data);

/// CBC encryption with PKCS#7 padding.
[[nodiscard]] std::vector<std::uint8_t> cbc_encrypt(const Aes128& cipher,
                                                    const Aes128::Block& iv,
                                                    std::span<const std::uint8_t> plaintext);

/// CBC decryption; throws PaddingError on invalid padding or length.
[[nodiscard]] std::vector<std::uint8_t> cbc_decrypt(const Aes128& cipher,
                                                    const Aes128::Block& iv,
                                                    std::span<const std::uint8_t> ciphertext);

}  // namespace idgka::symc
