// Per-node protocol runtime state.
//
// Each member is an independent actor: it owns its credentials, its DRBG
// (seeded per-node, so runs are reproducible), its energy ledger, and its
// view of the ring (everyone's z / t values and the agreed key). Protocol
// drivers only ever let a member compute from its own state plus messages
// it received — the simulator enforces the paper's information flow.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "energy/ops.h"
#include "gka/params.h"
#include "hash/hmac_drbg.h"

namespace idgka::gka {

/// Runtime state of one protocol participant.
struct MemberCtx {
  MemberCredentials cred;
  std::unique_ptr<hash::HmacDrbg> rng;
  energy::Ledger ledger;

  // --- Ring state (established by a successful protocol run) ---
  /// Own BD ephemeral r_i.
  BigInt r;
  /// Own GQ commitment (tau secret, t = tau^e public) — the proposed
  /// scheme's Leave/Partition reuse stored tau/t for even-indexed members.
  BigInt tau;
  BigInt t;
  /// Current ring (member ids in ring order). Identical across members.
  std::vector<std::uint32_t> ring;
  /// Everyone's z_j = g^{r_j}.
  std::map<std::uint32_t, BigInt> z_map;
  /// Everyone's GQ commitment t_j (proposed scheme only).
  std::map<std::uint32_t, BigInt> t_map;
  /// The agreed group key.
  BigInt key;

  [[nodiscard]] std::uint32_t id() const { return cred.id; }
  /// Position of this member in `ring`; throws if absent.
  [[nodiscard]] std::size_t ring_index() const;
  /// Position of `member_id` in `ring`; throws if absent.
  [[nodiscard]] std::size_t ring_index_of(std::uint32_t member_id) const;
};

/// Creates a member with a DRBG derived from (seed, id).
[[nodiscard]] MemberCtx make_member(MemberCredentials cred, std::uint64_t seed);

/// Outcome of one protocol execution.
struct RunResult {
  bool success = false;
  /// Communication rounds used (excluding retransmissions).
  int rounds = 0;
  /// Number of extra broadcast attempts caused by message loss.
  int retransmissions = 0;
  /// The agreed key (validated identical across members by the driver).
  BigInt key;
};

}  // namespace idgka::gka
