#include "gka/ssn.h"

#include <atomic>
#include <stdexcept>

#include "energy/profiles.h"
#include "gka/bd_math.h"
#include "net/parallel.h"
#include "hash/sha256.h"

namespace idgka::gka {

namespace {

using energy::Op;

// c_i = H(U_i || z_i || X_i || Z), non-zero.
BigInt authenticator_challenge(std::uint32_t id, const BigInt& z, const BigInt& x,
                               const BigInt& z_prod) {
  hash::Sha256 h;
  h.update(std::string_view{"idgka-ssn-chal|"});
  std::array<std::uint8_t, 4> id_be{};
  for (int i = 0; i < 4; ++i) id_be[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(id >> (24 - i * 8));
  h.update(id_be);
  h.update(z.to_bytes_be());
  h.update(x.to_bytes_be());
  h.update(z_prod.to_bytes_be());
  BigInt c = BigInt::from_bytes_be(h.finalize());
  if (c.is_zero()) c = BigInt{1};
  return c;
}

}  // namespace

RunResult run_ssn(const SystemParams& params, std::span<MemberCtx> members,
                  net::Network& network) {
  RunResult result;
  const std::size_t n = members.size();
  if (n < 2) throw std::invalid_argument("run_ssn: need at least 2 members");

  std::vector<std::uint32_t> ring;
  ring.reserve(n);
  for (const MemberCtx& m : members) ring.push_back(m.cred.id);

  const gka::GroupCtx grp = params.group();
  const std::size_t z_bits = params.element_bits();
  const std::size_t n_bits = params.gq_t_bits();

  // ---------------------------------------------------------------- Round 1
  std::vector<RoundSend> round1;
  round1.reserve(n);
  for (MemberCtx& m : members) {
    m.ring = ring;
    m.r = mpint::random_range(*m.rng, BigInt{1}, params.grp.q);
    m.ledger.record(Op::kModExp);  // z_i
    const BigInt z = params.gpow(m.r);
    m.z_map.clear();
    m.t_map.clear();
    m.z_map[m.cred.id] = z;

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = "ssn-r1";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("z", z);
    msg.declared_bits = energy::wire::kIdBits + z_bits;
    round1.push_back(RoundSend{std::move(msg), ring});
  }
  const RoundResult r1 = exchange_round(network, round1, ring);
  result.retransmissions += r1.retransmissions;
  if (!r1.complete) return result;
  ++result.rounds;
  for (MemberCtx& m : members) {
    for (const auto& [sender, msg] : r1.collected.at(m.cred.id)) {
      m.z_map[sender] = msg.payload.get_int("z");
    }
  }

  // ---------------------------------------------------------------- Round 2
  struct LocalR2 {
    BigInt x;
    BigInt z_prod;
  };
  std::vector<LocalR2> locals(n);
  std::vector<RoundSend> round2;
  round2.reserve(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    MemberCtx& m = members[idx];
    const std::size_t i = m.ring_index();
    m.ledger.record(Op::kModExp);  // X_i
    locals[idx].x = bd::compute_x(grp, m.z_map.at(ring[(i + 1) % n]),
                                  m.z_map.at(ring[(i + n - 1) % n]), m.r);
    BigInt z_prod{1};
    for (const std::uint32_t id : ring) z_prod = params.ctx_p->mul(z_prod, m.z_map.at(id));
    locals[idx].z_prod = z_prod;

    const BigInt c =
        authenticator_challenge(m.cred.id, m.z_map.at(m.cred.id), locals[idx].x, z_prod);
    const BigInt rho = mpint::random_unit(*m.rng, params.gq.n);
    m.ledger.record(Op::kModExp);  // w_i = h^{rho}
    const BigInt w = params.hpow(rho);
    m.ledger.record(Op::kModExp);  // w_i^{c_i}
    const BigInt a = params.ctx_n->mul(m.cred.gq_secret, params.ctx_n->exp(w, c));

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = "ssn-r2";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("x", locals[idx].x);
    msg.payload.put_int("w", w);
    msg.payload.put_int("a", a);
    msg.declared_bits = energy::wire::kIdBits + z_bits + 2 * n_bits;
    round2.push_back(RoundSend{std::move(msg), ring});
  }
  const RoundResult r2 = exchange_round(network, round2, ring);
  result.retransmissions += r2.retransmissions;
  if (!r2.complete) return result;
  ++result.rounds;

  // ------------------------------------------- Verification + Key
  std::atomic<bool> all_ok{true};
  net::parallel_for_each(n, [&](std::size_t idx) {
    MemberCtx& m = members[idx];
    const std::size_t own = m.ring_index();
    std::vector<BigInt> x_ring(n);
    x_ring[own] = locals[idx].x;

    for (const auto& [sender, msg] : r2.collected.at(m.cred.id)) {
      const std::size_t j = m.ring_index_of(sender);
      const BigInt x_j = msg.payload.get_int("x");
      const BigInt& w_j = msg.payload.get_int("w");
      const BigInt& a_j = msg.payload.get_int("a");
      x_ring[j] = x_j;
      const BigInt c_j = authenticator_challenge(sender, m.z_map.at(sender), x_j,
                                                 locals[idx].z_prod);
      // a_j^e == H(U_j) * w_j^{c_j * e} mod n  —  two exponentiations.
      m.ledger.record(Op::kModExp, 2);
      const BigInt lhs = params.ctx_n->exp(a_j, params.gq.e);
      const BigInt rhs = params.ctx_n->mul(sig::gq_hash_id(params.gq, sender),
                                           params.ctx_n->exp(w_j, c_j * params.gq.e));
      if (lhs != rhs) {
        all_ok.store(false, std::memory_order_relaxed);
        return;
      }
    }

    m.ledger.record(Op::kModExp);  // key reconstruction
    std::vector<BigInt> z_ring(n);
    for (std::size_t j = 0; j < n; ++j) z_ring[j] = m.z_map.at(ring[j]);
    m.key = bd::compute_key(grp, z_ring, x_ring, own, m.r);
  });
  if (!all_ok.load()) return result;
  for (const MemberCtx& m : members) {
    if (m.key != members[0].key) {
      throw std::logic_error("run_ssn: members disagree on the key");
    }
  }

  result.success = true;
  result.key = members[0].key;
  return result;
}

}  // namespace idgka::gka
