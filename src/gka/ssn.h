// Saeednia-Safavi-Naini-style ID-based conference key protocol (the paper's
// fifth comparison column).
//
// The paper uses SSN '98 only through its complexity profile: ID-based
// (no certificates, no explicit signatures), 2 messages transmitted and
// 2(n-1) received per member, and O(n) exponentiations per member (2n+4 in
// Table 1). We implement a concrete BD-shaped protocol with GQ-style
// ID-based implicit authentication that realises exactly this profile:
//
//   Round 1: U_i broadcasts z_i = g^{r_i} mod p.                  [1 exp]
//   Round 2: U_i computes X_i = (z_{i+1}/z_{i-1})^{r_i},          [1 exp]
//            c_i = H(U_i || z_i || X_i || Z),
//            w_i = h^{rho_i} mod n,                               [1 exp]
//            a_i = S_{U_i} * w_i^{c_i} mod n,                     [1 exp]
//            broadcasts U_i || X_i || w_i || a_i.
//   Verify:  for every j != i:
//            a_j^e  ==  H(U_j) * w_j^{c_j * e}  (mod n)           [2 exps]
//   Key:     Eq. (3) reconstruction.                              [1 exp]
//
// Soundness sketch: a_j = S_j * w_j^{c_j} with S_j^e = H(U_j) mod n, so the
// check holds iff the sender knows the PKG-extracted S_j; c_j binds the
// authenticator to (z_j, X_j, Z). Per-member exponentiations: 5 + 2(n-1) =
// 2n + 3, one below the paper's 2n + 4 accounting — recorded as-measured
// and compared against the paper's formula in EXPERIMENTS.md.
#pragma once

#include <span>

#include "gka/exchange.h"
#include "gka/member.h"

namespace idgka::gka {

/// Executes the SSN-style protocol. Uses the GQ credentials (the SSN scheme
/// is ID-based over the same RSA-type modulus).
[[nodiscard]] RunResult run_ssn(const SystemParams& params, std::span<MemberCtx> members,
                                net::Network& network);

}  // namespace idgka::gka
