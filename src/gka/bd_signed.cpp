#include "gka/bd_signed.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "energy/profiles.h"
#include "gka/bd_math.h"
#include "net/parallel.h"

namespace idgka::gka {

namespace {

using energy::Op;

// The signed statement m_i = U_i || z_i || X_i || prod_j z_j.
std::vector<std::uint8_t> signed_statement(std::uint32_t id, const BigInt& z, const BigInt& x,
                                           const BigInt& z_prod) {
  std::vector<std::uint8_t> out;
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(id >> (i * 8)));
  auto append = [&out](const BigInt& v) {
    const auto b = v.to_bytes_be();
    out.push_back(static_cast<std::uint8_t>(b.size() >> 8));
    out.push_back(static_cast<std::uint8_t>(b.size()));
    out.insert(out.end(), b.begin(), b.end());
  };
  append(z);
  append(x);
  append(z_prod);
  return out;
}

std::vector<std::uint8_t> serialize_cert(const pki::Certificate& cert) {
  auto bytes = cert.tbs_bytes();
  const auto r = cert.sig_r.to_bytes_be();
  const auto s = cert.sig_s.to_bytes_be();
  bytes.push_back(static_cast<std::uint8_t>(r.size()));
  bytes.insert(bytes.end(), r.begin(), r.end());
  bytes.push_back(static_cast<std::uint8_t>(s.size()));
  bytes.insert(bytes.end(), s.begin(), s.end());
  return bytes;
}

}  // namespace

const char* bd_auth_name(BdAuth auth) {
  switch (auth) {
    case BdAuth::kSok:
      return "BD+SOK";
    case BdAuth::kEcdsa:
      return "BD+ECDSA";
    case BdAuth::kDsa:
      return "BD+DSA";
  }
  return "BD+?";
}

RunResult run_bd_signed(const Authority& authority, BdAuth auth, std::span<MemberCtx> members,
                        net::Network& network) {
  RunResult result;
  const SystemParams& params = authority.params();
  const gka::GroupCtx grp = params.group();
  const std::size_t n = members.size();
  if (n < 2) throw std::invalid_argument("run_bd_signed: need at least 2 members");

  std::vector<std::uint32_t> ring;
  ring.reserve(n);
  for (const MemberCtx& m : members) ring.push_back(m.cred.id);

  const bool cert_based = auth == BdAuth::kEcdsa || auth == BdAuth::kDsa;
  const std::size_t z_bits = params.element_bits();
  const std::size_t cert_bits = auth == BdAuth::kEcdsa ? energy::wire::kEcdsaCertBits
                                                       : energy::wire::kDsaCertBits;

  // ---------------------------------------------------------------- Round 1
  // Broadcast U_i || z_i (and the certificate for the cert-based variants).
  std::vector<RoundSend> round1;
  round1.reserve(n);
  for (MemberCtx& m : members) {
    m.ring = ring;
    m.r = mpint::random_range(*m.rng, BigInt{1}, params.grp.q);
    m.ledger.record(Op::kModExp);  // z_i
    const BigInt z = params.gpow(m.r);
    m.z_map.clear();
    m.t_map.clear();
    m.z_map[m.cred.id] = z;

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = "bd-r1";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("z", z);
    std::size_t bits = energy::wire::kIdBits + z_bits;
    if (cert_based) {
      const pki::Certificate& cert =
          auth == BdAuth::kEcdsa ? m.cred.ecdsa_cert : m.cred.dsa_cert;
      msg.payload.put_blob("cert", serialize_cert(cert));
      bits += cert_bits;  // paper Table 3 certificate sizes
    }
    msg.declared_bits = bits;
    round1.push_back(RoundSend{std::move(msg), ring});
  }
  const RoundResult r1 = exchange_round(network, round1, ring);
  result.retransmissions += r1.retransmissions;
  if (!r1.complete) return result;
  ++result.rounds;

  // Certificate verification: n-1 per member (paper Table 1 "Cert Ver").
  for (MemberCtx& m : members) {
    for (const auto& [sender, msg] : r1.collected.at(m.cred.id)) {
      m.z_map[sender] = msg.payload.get_int("z");
      if (cert_based) {
        m.ledger.record(auth == BdAuth::kEcdsa ? Op::kCertVerifyEcdsa : Op::kCertVerifyDsa);
      }
    }
  }
  // Actual cryptographic certificate checks (outside the per-member loop
  // above only in accounting terms — every member performs them; we run the
  // real checks once per (member, peer) pair below).
  if (cert_based) {
    const pki::CertificateAuthority& ca =
        auth == BdAuth::kEcdsa ? authority.ecdsa_ca() : authority.dsa_ca();
    for (MemberCtx& m : members) {
      for (const MemberCtx& peer : members) {
        if (peer.cred.id == m.cred.id) continue;
        const pki::Certificate& cert =
            auth == BdAuth::kEcdsa ? peer.cred.ecdsa_cert : peer.cred.dsa_cert;
        if (!ca.verify(cert)) return result;
      }
    }
  }

  // ---------------------------------------------------------------- Round 2
  // X_i + signature over U_i || z_i || X_i || Z.
  struct LocalR2 {
    BigInt x;
    BigInt z_prod;
  };
  std::vector<LocalR2> locals(n);
  std::vector<RoundSend> round2;
  round2.reserve(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    MemberCtx& m = members[idx];
    const std::size_t i = m.ring_index();
    const BigInt& z_next = m.z_map.at(ring[(i + 1) % n]);
    const BigInt& z_prev = m.z_map.at(ring[(i + n - 1) % n]);
    m.ledger.record(Op::kModExp);  // X_i
    locals[idx].x = bd::compute_x(grp, z_next, z_prev, m.r);
    std::vector<BigInt> z_vals;
    z_vals.reserve(n);
    for (const std::uint32_t id : ring) z_vals.push_back(m.z_map.at(id));
    const BigInt z_prod = params.ctx_p->product(z_vals);
    locals[idx].z_prod = z_prod;

    const auto statement =
        signed_statement(m.cred.id, m.z_map.at(m.cred.id), locals[idx].x, z_prod);

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = "bd-r2";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("x", locals[idx].x);
    std::size_t sig_bits = 0;
    switch (auth) {
      case BdAuth::kSok: {
        m.ledger.record(Op::kSignGenSok);
        const auto sig = sig::sok_sign(authority.ss_group(), m.cred.id, m.cred.sok_secret,
                                       statement, *m.rng);
        msg.payload.put_int("s1x", sig.s1.x);
        msg.payload.put_int("s1y", sig.s1.y);
        msg.payload.put_int("s2x", sig.s2.x);
        msg.payload.put_int("s2y", sig.s2.y);
        sig_bits = energy::wire::kSokSigBits;
        break;
      }
      case BdAuth::kEcdsa: {
        m.ledger.record(Op::kSignGenEcdsa);
        const auto sig = sig::ecdsa_sign(authority.curve(), m.cred.ecdsa_key, statement, *m.rng);
        msg.payload.put_int("sig_r", sig.r);
        msg.payload.put_int("sig_s", sig.s);
        sig_bits = energy::wire::kEcdsaSigBits;
        break;
      }
      case BdAuth::kDsa: {
        m.ledger.record(Op::kSignGenDsa);
        // The commitment R = g^k rides along so receivers can fold all n-1
        // checks into one dsa_batch_verify; the paper accounting
        // (declared_bits) still prices the classic r||s signature.
        const auto sig = sig::dsa_sign_committed(authority.dsa_params(), authority.dsa_ctx(),
                                                 m.cred.dsa_key, statement, *m.rng);
        msg.payload.put_int("sig_r", sig.sig.r);
        msg.payload.put_int("sig_s", sig.sig.s);
        msg.payload.put_int("sig_rr", sig.commitment);
        sig_bits = energy::wire::kDsaSigBits;
        break;
      }
    }
    msg.declared_bits = energy::wire::kIdBits + z_bits + sig_bits;
    round2.push_back(RoundSend{std::move(msg), ring});
  }
  const RoundResult r2 = exchange_round(network, round2, ring);
  result.retransmissions += r2.retransmissions;
  if (!r2.complete) return result;
  ++result.rounds;

  // ------------------------------------------- Verification + Key
  // n-1 signature verifications per member: the quadratic phase, run
  // fork-join parallel across the share-nothing simulated nodes.
  std::atomic<bool> all_ok{true};
  net::parallel_for_each(n, [&](std::size_t idx) {
    MemberCtx& m = members[idx];
    const std::size_t own = m.ring_index();
    std::vector<BigInt> x_ring(n);
    x_ring[own] = locals[idx].x;

    // DSA signatures accumulate here and verify in one batch below.
    std::vector<BigInt> dsa_ys;
    std::vector<std::vector<std::uint8_t>> dsa_statements;
    std::vector<sig::DsaCommittedSignature> dsa_sigs;

    for (const auto& [sender, msg] : r2.collected.at(m.cred.id)) {
      const std::size_t j = m.ring_index_of(sender);
      const BigInt x_j = msg.payload.get_int("x");
      x_ring[j] = x_j;
      const auto statement = signed_statement(sender, m.z_map.at(sender), x_j,
                                              locals[idx].z_prod);
      bool ok = false;
      switch (auth) {
        case BdAuth::kSok: {
          // Verification maps the claimed identity onto the curve
          // (paper Table 1: n-1 MapToPoint per member) and checks two
          // pairings (charged as the SOK verify unit).
          m.ledger.record(Op::kMapToPoint);
          m.ledger.record(Op::kSignVerSok);
          sig::SokSignature sig;
          sig.s1 = ec::Point{msg.payload.get_int("s1x"), msg.payload.get_int("s1y"), false};
          sig.s2 = ec::Point{msg.payload.get_int("s2x"), msg.payload.get_int("s2y"), false};
          ok = sig::sok_verify(authority.tate(), authority.sok_public_key(), sender,
                               statement, sig);
          break;
        }
        case BdAuth::kEcdsa: {
          m.ledger.record(Op::kSignVerEcdsa);
          const auto peer_it =
              std::find_if(members.begin(), members.end(),
                           [&](const MemberCtx& p) { return p.cred.id == sender; });
          const auto pub = pki::decode_ec_public(authority.curve(),
                                                 peer_it->cred.ecdsa_cert.subject_public_key);
          ok = pub.has_value() &&
               sig::ecdsa_verify(authority.curve(), *pub, statement,
                                 sig::EcdsaSignature{msg.payload.get_int("sig_r"),
                                                     msg.payload.get_int("sig_s")});
          break;
        }
        case BdAuth::kDsa: {
          m.ledger.record(Op::kSignVerDsa);
          const auto peer_it =
              std::find_if(members.begin(), members.end(),
                           [&](const MemberCtx& p) { return p.cred.id == sender; });
          const auto pub = pki::decode_dsa_public(authority.dsa_params(),
                                                  peer_it->cred.dsa_cert.subject_public_key);
          ok = pub.has_value();
          if (ok) {
            dsa_ys.push_back(*pub);
            dsa_statements.push_back(statement);
            dsa_sigs.push_back(sig::DsaCommittedSignature{
                sig::DsaSignature{msg.payload.get_int("sig_r"), msg.payload.get_int("sig_s")},
                msg.payload.get_int("sig_rr")});
          }
          break;
        }
      }
      if (!ok) {
        all_ok.store(false, std::memory_order_relaxed);
        return;
      }
    }
    // One screening batch replaces the n-1 independent DSA checks (the
    // kSignVerDsa ledger records above keep the paper's per-peer
    // accounting).
    if (auth == BdAuth::kDsa &&
        !sig::dsa_batch_verify(authority.dsa_params(), authority.dsa_ctx(), dsa_ys,
                               dsa_statements, dsa_sigs)) {
      all_ok.store(false, std::memory_order_relaxed);
      return;
    }

    // Key reconstruction.
    m.ledger.record(Op::kModExp);
    std::vector<BigInt> z_ring(n);
    for (std::size_t j = 0; j < n; ++j) z_ring[j] = m.z_map.at(ring[j]);
    m.key = bd::compute_key(grp, z_ring, x_ring, own, m.r);
  });
  if (!all_ok.load()) return result;
  for (const MemberCtx& m : members) {
    if (m.key != members[0].key) {
      throw std::logic_error("run_bd_signed: members disagree on the key");
    }
  }

  result.success = true;
  result.key = members[0].key;
  return result;
}

}  // namespace idgka::gka
