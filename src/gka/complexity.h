// Closed-form complexity/energy formulas.
//
// Two families:
//  * paper_table1 / paper_table4 — the rows exactly as printed in the paper
//    (for side-by-side reproduction output).
//  * impl_*_ledger — per-member operation + traffic ledgers predicted for
//    THIS implementation, using the paper's wire-size accounting (Table 3
//    footnotes). Tests assert these formulas equal the instrumented ledgers
//    of real protocol runs; the Figure-1 / Table-5 benches then evaluate
//    them at any group size instantly (the paper itself prices counts, not
//    wall-clock measurements).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "energy/ops.h"
#include "energy/profiles.h"
#include "gka/session.h"

namespace idgka::gka {

// ---------------------------------------------------------------------------
// Paper rows (verbatim formulas)
// ---------------------------------------------------------------------------

/// One column of Table 1 (per-member costs of the initial GKA).
struct Table1Row {
  std::string exponentiations;  ///< "3" or "2n+4" (symbolic, as printed)
  std::uint64_t exp_count = 0;  ///< evaluated at n
  std::uint64_t msg_tx = 0;
  std::uint64_t msg_rx = 0;
  std::uint64_t cert_tx = 0;
  std::uint64_t cert_rx = 0;
  std::uint64_t cert_ver = 0;
  std::uint64_t map_to_point = 0;
  std::uint64_t sign_gen = 0;
  std::uint64_t sign_ver = 0;
};
[[nodiscard]] Table1Row paper_table1(Scheme scheme, std::size_t n);

/// One row of Table 4 (dynamic protocol costs, as printed).
struct Table4Row {
  int rounds = 0;
  std::string msgs;          ///< symbolic, e.g. "2n+2"
  std::uint64_t msg_count = 0;
  std::string exps;          ///< symbolic with the paper's footnote semantics
  std::uint64_t sign_gen = 0;
  std::uint64_t sign_ver = 0;
};
enum class DynamicEvent { kJoin, kLeave, kMerge, kPartition };
[[nodiscard]] const char* dynamic_event_name(DynamicEvent event);
/// `baseline` true => the re-executed "BD with ECDSA" row; false => proposed.
/// Parameters: n current size, m merging users, ld leaving users, v odd
/// survivors (paper notation).
[[nodiscard]] Table4Row paper_table4(DynamicEvent event, bool baseline, std::size_t n,
                                     std::size_t m, std::size_t ld);

// ---------------------------------------------------------------------------
// Implementation-model ledgers (validated against instrumented runs)
// ---------------------------------------------------------------------------

/// Per-member predicted ledger for the initial GKA of `scheme` at size n.
/// Identical for every member (all schemes are symmetric).
[[nodiscard]] energy::Ledger impl_initial_ledger(Scheme scheme, std::size_t n);

/// Dynamic-event roles (proposed scheme).
enum class Role {
  kController,   ///< U_1
  kBridge,       ///< U_n (join) / U_{n+1} (merge: the B controller)
  kJoiner,       ///< U_{n+1} in join
  kOddSurvivor,  ///< odd-indexed survivor in leave/partition
  kEvenSurvivor,
  kOtherA,       ///< non-controller member of group A in merge
  kOtherB,
  kOther,        ///< passive member (join)
};
[[nodiscard]] const char* role_name(Role role);

/// Predicted per-member ledgers for a proposed-scheme dynamic event.
/// Keyed by role; missing roles do not participate in that event.
///  - join:      kController, kBridge, kJoiner, kOther (n = pre-join size)
///  - leave:     kOddSurvivor, kEvenSurvivor (n = pre-leave size)
///  - merge:     kController, kBridge, kOtherA, kOtherB (n, m = group sizes)
///  - partition: kOddSurvivor, kEvenSurvivor (ld = number leaving)
/// `z_bits`/`gq_bits` select the wire sizes (default: the paper's 1024-bit
/// accounting; tests pass the active profile's sizes).
[[nodiscard]] std::map<Role, energy::Ledger> impl_dynamic_ledgers(
    DynamicEvent event, std::size_t n, std::size_t m = 0, std::size_t ld = 0,
    std::size_t z_bits = energy::wire::kGroupElementBits,
    std::size_t gq_bits = energy::wire::kGqModulusBits);

/// Wire-size model shared by the formulas (paper Table 3 accounting):
/// the sealed-box size in bits for a payload of `payload_bits`.
[[nodiscard]] std::size_t sealed_bits(std::size_t payload_bits);

}  // namespace idgka::gka
