// Burmester-Desmedt ring computations shared by every protocol variant.
//
// Ring of n members with ephemerals r_0..r_{n-1} (indices mod n):
//   z_i = g^{r_i}                                  (Round 1)
//   X_i = (z_{i+1} / z_{i-1})^{r_i}                (Round 2)
//   K   = g^{sum_i r_i r_{i+1}}                    (Eq. 3)
// Member i reconstructs K as
//   K = z_{i-1}^{n r_i} * X_i^{n-1} * X_{i+1}^{n-2} * ... * X_{i+n-2}
// and Lemma 1 gives the consistency check  prod_i X_i == 1 (mod p).
//
// All arithmetic flows through the caller's GroupCtx (params.group()): one
// shared ModContext per modulus plus the generator's fixed-base comb table —
// nothing here re-derives per-modulus state.
#pragma once

#include <span>
#include <vector>

#include "gka/params.h"

namespace idgka::gka::bd {

/// X = (z_next / z_prev)^r mod p.
[[nodiscard]] BigInt compute_x(const GroupCtx& grp, const BigInt& z_next,
                               const BigInt& z_prev, const BigInt& r);

/// Member `index`'s reconstruction of the group key from the full rings of
/// z and X values (both in ring order, size n).
[[nodiscard]] BigInt compute_key(const GroupCtx& grp, std::span<const BigInt> z,
                                 std::span<const BigInt> x, std::size_t index,
                                 const BigInt& r);

/// Lemma 1: prod_i X_i == 1 (mod p).
[[nodiscard]] bool lemma1_holds(const GroupCtx& grp, std::span<const BigInt> x);

/// Test oracle: the key computed directly from all ephemerals,
/// g^{r_0 r_1 + r_1 r_2 + ... + r_{n-1} r_0} mod p.
[[nodiscard]] BigInt direct_key(const GroupCtx& grp, std::span<const BigInt> r);

}  // namespace idgka::gka::bd
