// Authenticated Burmester-Desmedt baselines (paper Table 1, columns 2-4).
//
// The intuitive authentication of BD: each member signs
//   m_i = U_i || z_i || X_i || prod_j z_j
// in Round 2 and verifies the n-1 peer signatures. Variants:
//   * kSok:   ID-based SOK-family signature (pairing verification,
//             n-1 MapToPoint operations per member, no certificates).
//   * kEcdsa: certificate-based 160-bit ECDSA — certificates travel with
//             Round 1 and each member verifies n-1 of them.
//   * kDsa:   certificate-based 1024-bit DSA, same structure.
#pragma once

#include <span>

#include "gka/exchange.h"
#include "gka/member.h"

namespace idgka::gka {

/// Which signature scheme authenticates the BD run.
enum class BdAuth { kSok, kEcdsa, kDsa };

[[nodiscard]] const char* bd_auth_name(BdAuth auth);

/// Executes authenticated BD among `members`. Requires the Authority the
/// members were enrolled with (verification needs the CA / SOK public key).
[[nodiscard]] RunResult run_bd_signed(const Authority& authority, BdAuth auth,
                                      std::span<MemberCtx> members, net::Network& network);

}  // namespace idgka::gka
