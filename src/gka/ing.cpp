#include "gka/ing.h"

#include <stdexcept>

#include "energy/profiles.h"

namespace idgka::gka {

namespace {

using energy::Op;

}  // namespace

RunResult run_ing(const SystemParams& params, std::span<MemberCtx> members,
                  net::Network& network) {
  RunResult result;
  const std::size_t n = members.size();
  if (n < 2) throw std::invalid_argument("run_ing: need at least 2 members");

  std::vector<std::uint32_t> ring;
  ring.reserve(n);
  for (const MemberCtx& m : members) ring.push_back(m.cred.id);
  const std::size_t z_bits = params.element_bits();

  // Each member's current intermediate value: starts at g^{r_i}.
  std::vector<BigInt> inflight(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemberCtx& m = members[i];
    m.ring = ring;
    m.z_map.clear();
    m.t_map.clear();
    m.r = mpint::random_range(*m.rng, BigInt{1}, params.grp.q);
    m.ledger.record(Op::kModExp);
    inflight[i] = params.gpow(m.r);
  }

  // Rounds 1..n-1: pass around the ring, exponentiating along the way.
  // In round k, member i forwards the value that originated at i-k+1.
  for (std::size_t round = 1; round < n; ++round) {
    std::vector<RoundSend> sends;
    sends.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      net::Message msg;
      msg.sender = members[i].cred.id;
      msg.recipient = ring[(i + 1) % n];
      msg.type = "ing-r" + std::to_string(round);
      msg.payload.put_int("v", inflight[i]);
      msg.declared_bits = energy::wire::kIdBits + z_bits;
      sends.push_back(RoundSend{std::move(msg), {}});
    }
    const RoundResult rr = exchange_round(network, sends, ring);
    result.retransmissions += rr.retransmissions;
    if (!rr.complete) return result;
    ++result.rounds;

    // Each member exponentiates what it received. In the final round this
    // is the key computation; before that, the value is forwarded on.
    std::vector<BigInt> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      MemberCtx& m = members[i];
      const BigInt& received =
          rr.collected.at(m.cred.id).at(ring[(i + n - 1) % n]).payload.get_int("v");
      m.ledger.record(Op::kModExp);
      next[i] = params.ctx_p->exp(received, m.r);
    }
    inflight = std::move(next);
  }

  for (std::size_t i = 0; i < n; ++i) members[i].key = inflight[i];
  for (const MemberCtx& m : members) {
    if (m.key != members[0].key) {
      throw std::logic_error("run_ing: members disagree on the key");
    }
  }
  result.success = true;
  result.key = members[0].key;
  return result;
}

energy::Ledger ing_ledger(std::size_t n) {
  if (n < 2) throw std::invalid_argument("ing_ledger: n >= 2");
  energy::Ledger l;
  l.record(energy::Op::kModExp, n);  // initial z + one per round
  const std::size_t msg_bits = energy::wire::kIdBits + energy::wire::kGroupElementBits;
  l.tx_messages = n - 1;
  l.rx_messages = n - 1;
  l.tx_bits = (n - 1) * msg_bits;
  l.rx_bits = (n - 1) * msg_bits;
  return l;
}

}  // namespace idgka::gka
