// The paper's proposed ID-based authenticated GKA protocol (Section 4).
//
// Two rounds over the broadcast network:
//   Round 1: U_i draws r_i in Z_q^*, tau_i in Z_n^*, broadcasts
//            m_i = U_i || z_i || t_i  with z_i = g^{r_i}, t_i = tau_i^e.
//   Round 2: U_i computes X_i = (z_{i+1}/z_{i-1})^{r_i},
//            Z = prod z_j mod p, T = prod t_j mod n, c = H(T || Z),
//            s_i = tau_i * S_{U_i}^c, broadcasts m'_i = U_i || X_i || s_i
//            (U_1, the trusted controller, broadcasts last).
//   Verify:  batch equation (2) with the stored (Z, c), then Lemma 1
//            (prod X_i == 1), then K = z_{i-1}^{n r_i} * prod X^... (Eq. 3).
// On a failed check the members retransmit (driven by exchange_round and
// the retry loop here).
#pragma once

#include <span>

#include "gka/exchange.h"
#include "gka/member.h"

namespace idgka::gka {

/// Optional protocol extensions (not in the 2006 paper; see DESIGN.md).
struct ProposedOptions {
  /// Adds a third round of explicit key confirmation: every member
  /// broadcasts HMAC_{K'}(U_i) and verifies the n-1 peer tags, upgrading
  /// implicit agreement to mutual confirmation (Katz-Yung style).
  bool key_confirmation = false;
};

/// Executes the proposed protocol among `members` (>= 2). On success every
/// member's ring/z_map/t_map/key state is updated in place.
[[nodiscard]] RunResult run_proposed(const SystemParams& params,
                                     std::span<MemberCtx> members, net::Network& network,
                                     const ProposedOptions& options = {});

}  // namespace idgka::gka
