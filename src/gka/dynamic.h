// The four authenticated dynamic membership protocols (Section 7).
//
// All four use symmetric re-keying under the current group key (SealedBox =
// the paper's E_K(payload || identity) with the identity-match validity
// check) so that most members perform no exponentiations at all:
//
//   Join (3 rounds):  U_{n+1} broadcasts a signed z_{n+1}; U_1 re-keys
//     K* = K * (z_2 z_n)^{-r_1} (z_2 z_{n+1})^{r_1'}  (Eq. 5) and U_n forms
//     the DH bridge K_{U_n U_{n+1}} = g^{r_n r_{n+1}}; everyone computes
//     K' = K* * K_{U_n U_{n+1}}  (Eq. 6).
//   Leave (2 rounds):  odd-indexed survivors refresh (r, tau); everyone
//     recomputes X' over the survivor ring, signs with the shared batch
//     challenge (Eq. 10) and reconstructs the new key (Eq. 11).
//   Merge (3 rounds):  the two controllers bridge the rings (Eqs. 7-9);
//     K' = K*_A * K*_B.
//   Partition (2 rounds):  Leave generalized to a set of departures
//     (Eqs. 12-13).
//
// Deviations from the paper, documented in DESIGN.md §5:
//  * U_1 additionally broadcasts z_1' = g^{r_1'} during Join (the paper
//    refreshes r_1 without publishing the new z, which would leave the ring
//    state inconsistent for subsequent events).
//  * The Join/Merge bridge messages carry the ring's (id, z, t) tables as
//    metadata so joining/merged members can take part in later events.
//  * Leave/Partition re-use the stored GQ commitment tau of even-indexed
//    survivors exactly as the paper specifies; note that answering two
//    different challenges with one tau leaks S_U (see DESIGN.md §8 —
//    reproduced faithfully, flagged as a protocol weakness).
#pragma once

#include <span>
#include <vector>

#include "gka/exchange.h"
#include "gka/member.h"

namespace idgka::gka {

/// Join: `members` is the current group in ring order (>= 2), `joiner` the
/// enrolled new member. On success all states (including joiner's) hold the
/// new ring and key.
[[nodiscard]] RunResult run_join(const SystemParams& params, std::span<MemberCtx> members,
                                 MemberCtx& joiner, net::Network& network);

/// Leave: removes `leaver_id` from the ring. `members` is the current group
/// including the leaver; survivor states are updated, the leaver's state is
/// invalidated. Requires >= 3 members (2 must remain).
/// `refresh_all_commitments` is the countermeasure to the tau-reuse
/// weakness (DESIGN.md §8): every survivor draws a fresh GQ commitment
/// instead of only the odd-indexed ones (costs |even| extra mod-exps).
[[nodiscard]] RunResult run_leave(const SystemParams& params, std::span<MemberCtx> members,
                                  std::uint32_t leaver_id, net::Network& network,
                                  bool refresh_all_commitments = false);

/// Partition: removes all of `leaver_ids`. Requires >= 2 survivors.
[[nodiscard]] RunResult run_partition(const SystemParams& params,
                                      std::span<MemberCtx> members,
                                      const std::vector<std::uint32_t>& leaver_ids,
                                      net::Network& network,
                                      bool refresh_all_commitments = false);

/// Merge: combines two groups (each with an agreed key) into one ring
/// A || B. Controller roles: group_a[0] is U_1, group_b[0] is U_{n+1}.
[[nodiscard]] RunResult run_merge(const SystemParams& params, std::span<MemberCtx> group_a,
                                  std::span<MemberCtx> group_b, net::Network& network);

}  // namespace idgka::gka
