#include "gka/complexity.h"

#include <stdexcept>

namespace idgka::gka {

namespace {

using energy::Ledger;
using energy::Op;
namespace wire = energy::wire;

// Paper accounting sizes (bits).
constexpr std::size_t kZ = wire::kGroupElementBits;  // 1024
constexpr std::size_t kT = wire::kGqModulusBits;     // 1024
constexpr std::size_t kId = wire::kIdBits;           // 32
constexpr std::size_t kGqSig = wire::kGqSigBits;     // 1184 = |n| + 160

}  // namespace

std::size_t sealed_bits(std::size_t payload_bits) {
  // SealedBox wire format: 2-byte length + payload + 4-byte identity,
  // PKCS#7-padded to the AES block size (at least one padding byte).
  const std::size_t payload_bytes = (payload_bits + 7) / 8;
  const std::size_t raw = 2 + payload_bytes + 4;
  const std::size_t padded = ((raw / 16) + 1) * 16;
  return padded * 8;
}

// ---------------------------------------------------------------------------
// Paper rows
// ---------------------------------------------------------------------------

Table1Row paper_table1(Scheme scheme, std::size_t n) {
  Table1Row row;
  row.msg_tx = 2;
  row.msg_rx = 2 * (n - 1);
  switch (scheme) {
    case Scheme::kProposed:
      row.exponentiations = "3";
      row.exp_count = 3;
      row.sign_gen = 1;
      row.sign_ver = 1;
      break;
    case Scheme::kBdSok:
      row.exponentiations = "3";
      row.exp_count = 3;
      row.map_to_point = n - 1;
      row.sign_gen = 1;
      row.sign_ver = n - 1;
      break;
    case Scheme::kBdEcdsa:
    case Scheme::kBdDsa:
      row.exponentiations = "3";
      row.exp_count = 3;
      row.cert_tx = 1;
      row.cert_rx = n - 1;
      row.cert_ver = n - 1;
      row.sign_gen = 1;
      row.sign_ver = n - 1;
      break;
    case Scheme::kSsn:
      row.exponentiations = "2n+4";
      row.exp_count = 2 * n + 4;
      break;
  }
  return row;
}

const char* dynamic_event_name(DynamicEvent event) {
  switch (event) {
    case DynamicEvent::kJoin:
      return "Join";
    case DynamicEvent::kLeave:
      return "Leave";
    case DynamicEvent::kMerge:
      return "Merge";
    case DynamicEvent::kPartition:
      return "Partition";
  }
  return "?";
}

Table4Row paper_table4(DynamicEvent event, bool baseline, std::size_t n, std::size_t m,
                       std::size_t ld) {
  Table4Row row;
  if (baseline) {
    // Re-executed BD with ECDSA (paper's accounting, per Amir et al. / Kim
    // et al. evaluation).
    row.rounds = 2;
    switch (event) {
      case DynamicEvent::kJoin:
        row.msgs = "2n+2";
        row.msg_count = 2 * n + 2;
        row.sign_ver = n + 3;
        break;
      case DynamicEvent::kLeave:
        row.msgs = "2n-2";
        row.msg_count = 2 * n - 2;
        row.sign_ver = n + 1;
        break;
      case DynamicEvent::kMerge:
        row.msgs = "2n+2m";
        row.msg_count = 2 * n + 2 * m;
        row.sign_ver = n + m + 2;
        break;
      case DynamicEvent::kPartition:
        row.msgs = "2n-2ld";
        row.msg_count = 2 * n - 2 * ld;
        row.sign_ver = n - ld + 2;
        break;
    }
    row.exps = "3 (all users)";
    row.sign_gen = 2;
    return row;
  }
  // Proposed dynamic protocols.
  const std::size_t v_leave = (n - 1 + 1) / 2;       // odd survivors, leaver last
  const std::size_t v_part = (n - ld + 1) / 2;       // odd survivors, leavers last
  switch (event) {
    case DynamicEvent::kJoin:
      row.rounds = 3;
      row.msgs = "5";
      row.msg_count = 5;
      row.exps = "2 (U1, Un+1 only)";
      break;
    case DynamicEvent::kLeave:
      row.rounds = 2;
      row.msgs = "v+n-2";
      row.msg_count = v_leave + n - 2;
      row.exps = "3 (odd) / 2 (even)";
      break;
    case DynamicEvent::kMerge:
      row.rounds = 3;
      row.msgs = "6(k-1)";
      row.msg_count = 6;  // k = 2 merging groups
      row.exps = "4 (U1, Un+1 only)";
      break;
    case DynamicEvent::kPartition:
      row.rounds = 2;
      row.msgs = "v+n-2ld";
      row.msg_count = v_part + n - 2 * ld;
      row.exps = "3 (odd) / 2 (even)";
      break;
  }
  row.sign_gen = 1;
  row.sign_ver = 1;
  return row;
}

// ---------------------------------------------------------------------------
// Implementation-model ledgers
// ---------------------------------------------------------------------------

energy::Ledger impl_initial_ledger(Scheme scheme, std::size_t n) {
  if (n < 2) throw std::invalid_argument("impl_initial_ledger: n >= 2");
  Ledger l;
  std::size_t r1_bits = 0;
  std::size_t r2_bits = 0;
  switch (scheme) {
    case Scheme::kProposed:
      l.record(Op::kModExp, 3);
      l.record(Op::kSignGenGq);
      l.record(Op::kSignVerGq);
      r1_bits = kId + kZ + kT;
      r2_bits = kId + kZ + kT;  // X_i + s_i (s is |n| bits)
      break;
    case Scheme::kBdSok:
      l.record(Op::kModExp, 3);
      l.record(Op::kSignGenSok);
      l.record(Op::kSignVerSok, n - 1);
      l.record(Op::kMapToPoint, n - 1);
      r1_bits = kId + kZ;
      r2_bits = kId + kZ + wire::kSokSigBits;
      break;
    case Scheme::kBdEcdsa:
      l.record(Op::kModExp, 3);
      l.record(Op::kSignGenEcdsa);
      l.record(Op::kSignVerEcdsa, n - 1);
      l.record(Op::kCertVerifyEcdsa, n - 1);
      r1_bits = kId + kZ + wire::kEcdsaCertBits;
      r2_bits = kId + kZ + wire::kEcdsaSigBits;
      break;
    case Scheme::kBdDsa:
      l.record(Op::kModExp, 3);
      l.record(Op::kSignGenDsa);
      l.record(Op::kSignVerDsa, n - 1);
      l.record(Op::kCertVerifyDsa, n - 1);
      r1_bits = kId + kZ + wire::kDsaCertBits;
      r2_bits = kId + kZ + wire::kDsaSigBits;
      break;
    case Scheme::kSsn:
      // 5 own exponentiations + 2 per verified peer (see ssn.h).
      l.record(Op::kModExp, 5 + 2 * (n - 1));
      r1_bits = kId + kZ;
      r2_bits = kId + kZ + 2 * kT;  // X + w + a
      break;
  }
  l.tx_messages = 2;
  l.rx_messages = 2 * (n - 1);
  l.tx_bits = r1_bits + r2_bits;
  l.rx_bits = (n - 1) * (r1_bits + r2_bits);
  return l;
}

const char* role_name(Role role) {
  switch (role) {
    case Role::kController:
      return "U1 (controller)";
    case Role::kBridge:
      return "Un / Un+1 (bridge)";
    case Role::kJoiner:
      return "Un+1 (joiner)";
    case Role::kOddSurvivor:
      return "odd-indexed survivor";
    case Role::kEvenSurvivor:
      return "even-indexed survivor";
    case Role::kOtherA:
      return "group-A member";
    case Role::kOtherB:
      return "group-B member";
    case Role::kOther:
      return "other member";
  }
  return "?";
}

std::map<Role, energy::Ledger> impl_dynamic_ledgers(DynamicEvent event, std::size_t n,
                                                    std::size_t m, std::size_t ld,
                                                    std::size_t z_bits, std::size_t gq_bits) {
  std::map<Role, Ledger> out;
  const std::size_t kZv = z_bits;
  const std::size_t kTv = gq_bits;
  const std::size_t kGqSigV = gq_bits + 160;
  const std::size_t sealed = sealed_bits(kZv);
  const std::size_t sealed_blocks = sealed / 128;  // AES blocks per sealed box

  switch (event) {
    case DynamicEvent::kJoin: {
      // Message sizes (paper accounting).
      const std::size_t m_r1 = kId + kZv + kGqSigV;           // joiner's intro
      const std::size_t m_u1 = kId + sealed + kZv;           // E_K(K*||U1) + z1'
      const std::size_t m_un = kId + kZv + kGqSigV + sealed;  // E_K(bridge||Un) + zn + sig
      const std::size_t m_relay = kId + sealed;             // E_bridge(K*||Un)

      Ledger u1;
      u1.record(Op::kSignVerGq);
      u1.record(Op::kModExp, 3);  // two Eq.-5 terms + refreshed z1'
      u1.record(Op::kSymEncBlock, sealed_blocks);
      u1.record(Op::kSymDecBlock, sealed_blocks);
      u1.tx_messages = 1;
      u1.tx_bits = m_u1;
      u1.rx_messages = 2;
      u1.rx_bits = m_r1 + m_un;
      out[Role::kController] = u1;

      Ledger un;
      un.record(Op::kSignVerGq);
      un.record(Op::kModExp, 1);  // DH bridge
      un.record(Op::kSignGenGq);
      un.record(Op::kSymEncBlock, 2 * sealed_blocks);
      un.record(Op::kSymDecBlock, sealed_blocks);
      un.tx_messages = 2;
      un.tx_bits = m_un + m_relay;
      un.rx_messages = 2;
      un.rx_bits = m_r1 + m_u1;
      out[Role::kBridge] = un;

      Ledger joiner;
      joiner.record(Op::kModExp, 2);  // z_{n+1} + DH bridge
      joiner.record(Op::kSignGenGq);
      joiner.record(Op::kSignVerGq);
      joiner.record(Op::kSymDecBlock, sealed_blocks);
      joiner.tx_messages = 1;
      joiner.tx_bits = m_r1;
      joiner.rx_messages = 2;
      joiner.rx_bits = m_un + m_relay;
      out[Role::kJoiner] = joiner;

      Ledger other;
      other.record(Op::kSymDecBlock, 2 * sealed_blocks);
      other.rx_messages = 3;
      other.rx_bits = m_r1 + m_u1 + m_un;
      out[Role::kOther] = other;
      (void)n;
      break;
    }
    case DynamicEvent::kLeave:
    case DynamicEvent::kPartition: {
      const std::size_t departing = event == DynamicEvent::kLeave ? 1 : ld;
      if (departing + 2 > n) throw std::invalid_argument("impl_dynamic_ledgers: too many leavers");
      const std::size_t survivors = n - departing;
      // Canonical scenario (used by tests and benches): the departing
      // members occupy the last ring positions, so the odd survivors are
      // positions 1, 3, 5, ... among the first `survivors` members.
      const std::size_t v = (survivors + 1) / 2;
      const std::size_t r1_msg = kId + kZv + kTv;
      const std::size_t r2_msg = kId + kZv + kTv;  // X + s

      Ledger odd;
      odd.record(Op::kModExp, 3);  // z', X', key
      odd.record(Op::kSignGenGq);
      odd.record(Op::kSignVerGq);
      odd.tx_messages = 2;
      odd.tx_bits = r1_msg + r2_msg;
      odd.rx_messages = (v - 1) + (survivors - 1);
      odd.rx_bits = (v - 1) * r1_msg + (survivors - 1) * r2_msg;
      out[Role::kOddSurvivor] = odd;

      Ledger even;
      even.record(Op::kModExp, 2);  // X', key
      even.record(Op::kSignGenGq);
      even.record(Op::kSignVerGq);
      even.tx_messages = 1;
      even.tx_bits = r2_msg;
      even.rx_messages = v + (survivors - 1);
      even.rx_bits = v * r1_msg + (survivors - 1) * r2_msg;
      out[Role::kEvenSurvivor] = even;
      break;
    }
    case DynamicEvent::kMerge: {
      const std::size_t m1_msg = kId + 2 * kZv + kGqSigV;  // z_new + z_last + sig
      const std::size_t m2_msg = kId + 2 * sealed;
      const std::size_t m3_msg = kId + sealed;

      Ledger ctrl;
      ctrl.record(Op::kModExp, 4);  // z', DH, two Eq.-7 terms
      ctrl.record(Op::kSignGenGq);
      ctrl.record(Op::kSignVerGq);
      ctrl.record(Op::kSymEncBlock, 3 * sealed_blocks);
      ctrl.record(Op::kSymDecBlock, sealed_blocks);
      ctrl.tx_messages = 3;
      ctrl.tx_bits = m1_msg + m2_msg + m3_msg;
      ctrl.rx_messages = 2;
      ctrl.rx_bits = m1_msg + m2_msg;
      out[Role::kController] = ctrl;
      out[Role::kBridge] = ctrl;  // the B controller is symmetric

      Ledger other;
      other.record(Op::kSymDecBlock, 2 * sealed_blocks);
      other.rx_messages = 4;
      other.rx_bits = 2 * m1_msg + m2_msg + m3_msg;
      out[Role::kOtherA] = other;
      out[Role::kOtherB] = other;
      (void)m;
      break;
    }
  }
  return out;
}

}  // namespace idgka::gka
