#include "gka/params.h"

#include "hash/hmac_drbg.h"

namespace idgka::gka {

ProfileSizes profile_sizes(SecurityProfile profile) {
  switch (profile) {
    case SecurityProfile::kPaper:
      return ProfileSizes{1024, 160, 1024, 512, 160};
    case SecurityProfile::kTest:
      return ProfileSizes{256, 160, 256, 256, 120};
    case SecurityProfile::kTiny:
      return ProfileSizes{192, 128, 192, 192, 96};
  }
  return ProfileSizes{256, 160, 256, 256, 120};
}

Authority::Authority(SecurityProfile profile, std::uint64_t seed)
    : rng_(std::make_unique<hash::HmacDrbg>(seed, "idgka-authority")) {
  const ProfileSizes sizes = profile_sizes(profile);
  const int mr = profile == SecurityProfile::kPaper ? 32 : 16;

  params_.profile = profile;
  params_.grp = mpint::generate_schnorr_group(*rng_, sizes.p_bits, sizes.q_bits, mr);
  gq_pkg_ = std::make_unique<sig::GqPkg>(*rng_, sizes.gq_bits, mr);
  params_.gq = gq_pkg_->params();
  params_.ctx_p = std::make_shared<const mpint::ModContext>(params_.grp.p);
  params_.ctx_n = std::make_shared<const mpint::ModContext>(params_.gq.n);
  // Fixed-base comb tables: every member exponentiates the same g (mod p,
  // exponents mod q) and the same SSN base h (mod n, exponents up to |n|).
  params_.g_comb = std::make_shared<const mpint::FixedBaseTable>(
      params_.ctx_p->make_fixed_base(params_.grp.g, params_.grp.q.bit_length()));
  params_.h_ssn = sig::gq_hash_id(params_.gq, 0xFFFFFFFFU);  // reserved "system" id
  params_.h_comb = std::make_shared<const mpint::FixedBaseTable>(
      params_.ctx_n->make_fixed_base(params_.h_ssn, params_.gq.n.bit_length()));

  ss_group_ = std::make_unique<pairing::SsGroup>(
      mpint::generate_supersingular_params(*rng_, sizes.ss_p_bits, sizes.ss_q_bits, mr));
  tate_ = std::make_unique<pairing::TatePairing>(*ss_group_);
  sok_pkg_ = std::make_unique<sig::SokPkg>(*ss_group_, *rng_);

  dsa_params_ = sig::dsa_generate_params(*rng_, sizes.p_bits, sizes.q_bits, mr);
  dsa_ctx_ = std::make_shared<const mpint::ModContext>(dsa_params_.p);
  curve_ = &ec::secp160r1();
  dsa_ca_ = std::make_unique<pki::CertificateAuthority>(dsa_params_, dsa_ctx_, *rng_);
  ecdsa_ca_ = std::make_unique<pki::CertificateAuthority>(*curve_, *rng_);
}

MemberCredentials Authority::enroll(std::uint32_t id) {
  MemberCredentials cred;
  cred.id = id;
  cred.gq_secret = gq_pkg_->extract(id);
  cred.sok_secret = sok_pkg_->extract(id);
  cred.dsa_key = sig::dsa_generate_keypair(dsa_params_, *dsa_ctx_, *rng_);
  cred.dsa_cert = dsa_ca_->issue(id, pki::encode_dsa_public(dsa_params_, cred.dsa_key.y), *rng_);
  cred.ecdsa_key = sig::ecdsa_generate_keypair(*curve_, *rng_);
  cred.ecdsa_cert =
      ecdsa_ca_->issue(id, pki::encode_ec_public(*curve_, cred.ecdsa_key.q), *rng_);
  return cred;
}

}  // namespace idgka::gka
