// GroupSession — the library's top-level public API.
//
// A session owns a set of enrolled members, a simulated broadcast network
// and a protocol scheme. `form()` runs the initial group key agreement;
// `join/leave/partition/merge` handle membership events — with the paper's
// dynamic protocols under Scheme::kProposed, and by re-executing the full
// GKA (the paper's baseline behaviour) under every other scheme.
//
// Energy: every member accumulates an energy::Ledger (crypto operations +
// paper-accounted radio bits); pair it with a CpuProfile/RadioProfile from
// src/energy to price a trace.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gka/member.h"
#include "net/network.h"

namespace idgka::gka {

/// Protocol variant (the five columns of Table 1).
enum class Scheme { kProposed, kBdSok, kBdEcdsa, kBdDsa, kSsn };

[[nodiscard]] const char* scheme_name(Scheme scheme);

class GroupSession {
 public:
  /// Creates a session over `ids` (becomes the ring order). Members are
  /// enrolled with `authority`. Deterministic under `seed`.
  GroupSession(Authority& authority, Scheme scheme, std::vector<std::uint32_t> ids,
               std::uint64_t seed, double loss_rate = 0.0);

  /// Sessions are move-only (the network and member DRBGs are unique).
  /// Both move operations are defined and leave the moved-from session
  /// empty-but-destructible; the authority is held by pointer so
  /// move-assignment can rebind it.
  GroupSession(GroupSession&&) = default;
  GroupSession& operator=(GroupSession&&) = default;
  GroupSession(const GroupSession&) = delete;
  GroupSession& operator=(const GroupSession&) = delete;

  /// Runs the initial GKA among the current members.
  RunResult form();
  /// Adds a member (paper Join under kProposed; re-execution otherwise).
  RunResult join(std::uint32_t new_id);
  /// Removes a member (paper Leave / re-execution).
  RunResult leave(std::uint32_t id);
  /// Removes several members at once (paper Partition / re-execution).
  RunResult partition(const std::vector<std::uint32_t>& leaver_ids);
  /// Merges `other` into this session (paper Merge / re-execution). The
  /// other session is drained (becomes empty).
  RunResult merge(GroupSession& other);
  /// Splits `moved_ids` off into a freshly formed session (ring-state hook
  /// for hierarchical clustering): the survivors rekey via partition(), the
  /// moved members run a new GKA among themselves under `seed`. Requires
  /// >= 2 moved members and >= 2 survivors; throws std::runtime_error if
  /// either protocol run fails.
  GroupSession split(const std::vector<std::uint32_t>& moved_ids, std::uint64_t seed);

  [[nodiscard]] Scheme scheme() const { return scheme_; }
  [[nodiscard]] double loss_rate() const { return loss_rate_; }
  [[nodiscard]] const BigInt& key() const;
  [[nodiscard]] std::vector<std::uint32_t> member_ids() const;
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool has_key() const;

  /// Cumulative per-member energy ledger (ops + radio bits).
  [[nodiscard]] const energy::Ledger& ledger(std::uint32_t id) const;
  /// Mutable ledger access for layers that run extra crypto on behalf of a
  /// member (e.g. the cluster rekey distribution).
  [[nodiscard]] energy::Ledger& mutable_ledger(std::uint32_t id);
  /// Folds network traffic that occurred outside a protocol run (e.g.
  /// cluster-layer broadcasts on this session's network) into the member
  /// ledgers and re-snapshots the counters.
  void sync_traffic() { absorb_traffic(); }
  /// Zeroes all ledgers and network counters (e.g. between experiments).
  void reset_ledgers();

  [[nodiscard]] const net::Network& network() const { return *network_; }
  /// Mutable access for failure-injection and eavesdropping experiments.
  [[nodiscard]] net::Network& mutable_network() { return *network_; }

  /// Hook applied to this session's network immediately and to the network
  /// of any session split() creates, before it carries protocol traffic.
  /// The discrete-event driver (src/sim) uses it to install timed transport
  /// / round-barrier hooks on every network the protocols touch.
  using NetworkHook = std::function<void(net::Network&)>;
  void set_network_hook(NetworkHook hook);

  /// Countermeasure policy for the tau-reuse weakness (DESIGN.md §8): when
  /// enabled, Leave/Partition refresh every survivor's GQ commitment.
  void set_refresh_all_commitments(bool enabled) { refresh_all_commitments_ = enabled; }
  /// Extension: adds an explicit key-confirmation round to form() under
  /// Scheme::kProposed (see gka/proposed.h).
  void set_key_confirmation(bool enabled) { key_confirmation_ = enabled; }
  [[nodiscard]] const Authority& authority() const { return *authority_; }

  /// Direct member access for tests/benches (ring order).
  [[nodiscard]] const std::vector<MemberCtx>& members() const { return members_; }

 private:
  RunResult reexecute();
  void snapshot_traffic();
  void absorb_traffic();
  MemberCtx* find(std::uint32_t id);

  Authority* authority_;  ///< never null; pointer (not reference) so moves rebind
  Scheme scheme_;
  std::uint64_t seed_;
  double loss_rate_;
  std::unique_ptr<net::Network> network_;
  std::vector<MemberCtx> members_;  // ring order
  std::map<std::uint32_t, net::TrafficStats> traffic_snapshot_;
  NetworkHook network_hook_;
  bool refresh_all_commitments_ = false;
  bool key_confirmation_ = false;
};

}  // namespace idgka::gka
