#include "gka/session.h"

#include <algorithm>
#include <stdexcept>

#include "gka/bd_signed.h"
#include "gka/dynamic.h"
#include "gka/proposed.h"
#include "gka/ssn.h"

namespace idgka::gka {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kProposed:
      return "Proposed (BD + GQ batch)";
    case Scheme::kBdSok:
      return "BD + SOK";
    case Scheme::kBdEcdsa:
      return "BD + ECDSA";
    case Scheme::kBdDsa:
      return "BD + DSA";
    case Scheme::kSsn:
      return "SSN";
  }
  return "?";
}

GroupSession::GroupSession(Authority& authority, Scheme scheme,
                           std::vector<std::uint32_t> ids, std::uint64_t seed,
                           double loss_rate)
    : authority_(&authority),
      scheme_(scheme),
      seed_(seed),
      loss_rate_(loss_rate),
      network_(std::make_unique<net::Network>(loss_rate, seed)) {
  if (ids.size() < 2) throw std::invalid_argument("GroupSession: need at least 2 members");
  members_.reserve(ids.size());
  for (const std::uint32_t id : ids) {
    members_.push_back(make_member(authority_->enroll(id), seed_));
    network_->add_node(id);
  }
  snapshot_traffic();
}

MemberCtx* GroupSession::find(std::uint32_t id) {
  for (MemberCtx& m : members_) {
    if (m.cred.id == id) return &m;
  }
  return nullptr;
}

void GroupSession::snapshot_traffic() {
  traffic_snapshot_.clear();
  for (const MemberCtx& m : members_) {
    if (network_->has_node(m.cred.id)) {
      traffic_snapshot_[m.cred.id] = network_->stats(m.cred.id);
    }
  }
}

void GroupSession::absorb_traffic() {
  for (MemberCtx& m : members_) {
    if (!network_->has_node(m.cred.id)) continue;
    const net::TrafficStats now = network_->stats(m.cred.id);
    const net::TrafficStats before = traffic_snapshot_.contains(m.cred.id)
                                         ? traffic_snapshot_.at(m.cred.id)
                                         : net::TrafficStats{};
    m.ledger.tx_bits += now.tx_bits - before.tx_bits;
    m.ledger.rx_bits += now.rx_bits - before.rx_bits;
    m.ledger.tx_messages += now.tx_messages - before.tx_messages;
    m.ledger.rx_messages += now.rx_messages - before.rx_messages;
  }
  snapshot_traffic();
}

RunResult GroupSession::form() {
  snapshot_traffic();
  RunResult result;
  switch (scheme_) {
    case Scheme::kProposed:
      result = run_proposed(authority_->params(), members_, *network_,
                            ProposedOptions{key_confirmation_});
      break;
    case Scheme::kBdSok:
      result = run_bd_signed(*authority_, BdAuth::kSok, members_, *network_);
      break;
    case Scheme::kBdEcdsa:
      result = run_bd_signed(*authority_, BdAuth::kEcdsa, members_, *network_);
      break;
    case Scheme::kBdDsa:
      result = run_bd_signed(*authority_, BdAuth::kDsa, members_, *network_);
      break;
    case Scheme::kSsn:
      result = run_ssn(authority_->params(), members_, *network_);
      break;
  }
  absorb_traffic();
  return result;
}

RunResult GroupSession::reexecute() { return form(); }

RunResult GroupSession::join(std::uint32_t new_id) {
  if (find(new_id) != nullptr) throw std::invalid_argument("join: id already in group");
  MemberCtx joiner = make_member(authority_->enroll(new_id), seed_);
  network_->add_node(new_id);

  if (scheme_ != Scheme::kProposed) {
    members_.push_back(std::move(joiner));
    return reexecute();
  }

  snapshot_traffic();
  RunResult result = run_join(authority_->params(), members_, joiner, *network_);
  members_.push_back(std::move(joiner));
  absorb_traffic();
  if (!result.success) members_.back().key = BigInt{};
  return result;
}

RunResult GroupSession::leave(std::uint32_t id) {
  if (find(id) == nullptr) throw std::invalid_argument("leave: id not in group");
  if (members_.size() < 3) throw std::invalid_argument("leave: group would drop below 2");

  if (scheme_ != Scheme::kProposed) {
    std::erase_if(members_, [&](const MemberCtx& m) { return m.cred.id == id; });
    network_->remove_node(id);
    for (MemberCtx& m : members_) {
      m.ring.clear();  // ring rebuilt by re-execution
    }
    return reexecute();
  }

  snapshot_traffic();
  RunResult result = run_leave(authority_->params(), members_, id, *network_,
                               refresh_all_commitments_);
  absorb_traffic();
  if (result.success) {
    std::erase_if(members_, [&](const MemberCtx& m) { return m.cred.id == id; });
    network_->remove_node(id);
  }
  return result;
}

RunResult GroupSession::partition(const std::vector<std::uint32_t>& leaver_ids) {
  for (const std::uint32_t id : leaver_ids) {
    if (find(id) == nullptr) throw std::invalid_argument("partition: id not in group");
  }
  if (members_.size() < leaver_ids.size() + 2) {
    throw std::invalid_argument("partition: group would drop below 2");
  }

  if (scheme_ != Scheme::kProposed) {
    std::erase_if(members_, [&](const MemberCtx& m) {
      return std::find(leaver_ids.begin(), leaver_ids.end(), m.cred.id) != leaver_ids.end();
    });
    for (const std::uint32_t id : leaver_ids) network_->remove_node(id);
    for (MemberCtx& m : members_) m.ring.clear();
    return reexecute();
  }

  snapshot_traffic();
  RunResult result = run_partition(authority_->params(), members_, leaver_ids,
                                   *network_, refresh_all_commitments_);
  absorb_traffic();
  if (result.success) {
    std::erase_if(members_, [&](const MemberCtx& m) {
      return std::find(leaver_ids.begin(), leaver_ids.end(), m.cred.id) != leaver_ids.end();
    });
    for (const std::uint32_t id : leaver_ids) network_->remove_node(id);
  }
  return result;
}

RunResult GroupSession::merge(GroupSession& other) {
  if (&other == this) throw std::invalid_argument("merge: cannot merge with self");
  if (other.scheme_ != scheme_ || other.authority_ != authority_) {
    throw std::invalid_argument("merge: sessions must share scheme and authority");
  }
  for (const MemberCtx& m : other.members_) {
    if (find(m.cred.id) != nullptr) {
      throw std::invalid_argument("merge: member id present in both groups");
    }
  }
  // Move the other session's members onto this network; their old inboxes
  // and counters (already absorbed into ledgers) are dropped.
  other.absorb_traffic();
  for (MemberCtx& m : other.members_) {
    network_->add_node(m.cred.id);
    other.network_->remove_node(m.cred.id);
  }

  if (scheme_ != Scheme::kProposed) {
    for (MemberCtx& m : other.members_) {
      m.ring.clear();
      members_.push_back(std::move(m));
    }
    other.members_.clear();
    for (MemberCtx& m : members_) m.ring.clear();
    return reexecute();
  }

  snapshot_traffic();
  for (const MemberCtx& m : other.members_) {
    traffic_snapshot_[m.cred.id] = network_->stats(m.cred.id);
  }
  RunResult result =
      run_merge(authority_->params(), members_, other.members_, *network_);
  for (MemberCtx& m : other.members_) members_.push_back(std::move(m));
  other.members_.clear();
  absorb_traffic();
  return result;
}

void GroupSession::set_network_hook(NetworkHook hook) {
  network_hook_ = std::move(hook);
  if (network_hook_) network_hook_(*network_);
}

GroupSession GroupSession::split(const std::vector<std::uint32_t>& moved_ids,
                                 std::uint64_t seed) {
  if (moved_ids.size() < 2) throw std::invalid_argument("split: need >= 2 moved members");
  GroupSession offshoot(*authority_, scheme_, moved_ids, seed, loss_rate_);
  if (network_hook_) offshoot.set_network_hook(network_hook_);
  if (!partition(moved_ids).success) {
    throw std::runtime_error("split: survivor rekey failed");
  }
  if (!offshoot.form().success) {
    throw std::runtime_error("split: offshoot key agreement failed");
  }
  return offshoot;
}

const BigInt& GroupSession::key() const {
  if (members_.empty()) throw std::logic_error("GroupSession: no members");
  return members_.front().key;
}

bool GroupSession::has_key() const {
  return !members_.empty() && !members_.front().key.is_zero();
}

std::vector<std::uint32_t> GroupSession::member_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(members_.size());
  for (const MemberCtx& m : members_) ids.push_back(m.cred.id);
  return ids;
}

const energy::Ledger& GroupSession::ledger(std::uint32_t id) const {
  for (const MemberCtx& m : members_) {
    if (m.cred.id == id) return m.ledger;
  }
  throw std::invalid_argument("GroupSession::ledger: unknown id");
}

energy::Ledger& GroupSession::mutable_ledger(std::uint32_t id) {
  MemberCtx* m = find(id);
  if (m == nullptr) throw std::invalid_argument("GroupSession::mutable_ledger: unknown id");
  return m->ledger;
}

void GroupSession::reset_ledgers() {
  for (MemberCtx& m : members_) m.ledger = energy::Ledger{};
  snapshot_traffic();
}

}  // namespace idgka::gka
