#include "gka/dynamic.h"

#include <algorithm>
#include <stdexcept>

#include "energy/profiles.h"
#include "gka/bd_math.h"
#include "symc/sealed_box.h"

namespace idgka::gka {

namespace {

using energy::Op;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> id_z_bytes(std::uint32_t id, const BigInt& z) {
  std::vector<std::uint8_t> out;
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(id >> (i * 8)));
  const auto zb = z.to_bytes_be();
  out.insert(out.end(), zb.begin(), zb.end());
  return out;
}

std::vector<std::uint8_t> blob_z_bytes(const std::vector<std::uint8_t>& blob, const BigInt& z) {
  std::vector<std::uint8_t> out = blob;
  const auto zb = z.to_bytes_be();
  out.insert(out.end(), zb.begin(), zb.end());
  return out;
}

// Seals payload under `key` and charges the AES blocks to the ledger.
std::vector<std::uint8_t> seal_counted(MemberCtx& m, const BigInt& key, const BigInt& payload,
                                       std::uint64_t sequence) {
  const symc::SealedBox box(key);
  auto sealed = box.seal(payload, m.cred.id, sequence);
  m.ledger.record(Op::kSymEncBlock, sealed.size() / symc::Aes128::kBlockSize);
  return sealed;
}

// Opens a sealed payload, charging AES blocks; empty optional on failure.
std::optional<BigInt> open_counted(MemberCtx& m, const BigInt& key,
                                   std::span<const std::uint8_t> sealed,
                                   std::uint32_t expected_sender, std::uint64_t sequence) {
  m.ledger.record(Op::kSymDecBlock, sealed.size() / symc::Aes128::kBlockSize);
  const symc::SealedBox box(key);
  return box.open(sealed, expected_sender, sequence);
}

// K* = key * (za zb)^ea * (zc zd)^eb (Eq. 5 and its merge analogues) as one
// Montgomery residue chain: every intermediate stays in the residue domain,
// with a single conversion out at the end.
BigInt rekey_star(const mpint::ModContext& ctx, const BigInt& key, const BigInt& za,
                  const BigInt& zb, const BigInt& ea, const BigInt& zc, const BigInt& zd,
                  const BigInt& eb) {
  mpint::Residue term = ctx.to_residue(za);
  mpint::Residue tmp = ctx.to_residue(zb);
  ctx.mul(term, tmp, term);
  ctx.exp(term, ea, term);
  mpint::Residue acc = ctx.to_residue(key);
  ctx.mul(acc, term, acc);
  term = ctx.to_residue(zc);
  tmp = ctx.to_residue(zd);
  ctx.mul(term, tmp, term);
  ctx.exp(term, eb, term);
  ctx.mul(acc, term, acc);
  return ctx.from_residue(acc);
}

// Ring-state table carried as metadata on bridge messages (see header).
void put_ring_table(net::Payload& payload, const MemberCtx& m) {
  payload.put_u32("tbl_n", static_cast<std::uint32_t>(m.ring.size()));
  for (std::size_t i = 0; i < m.ring.size(); ++i) {
    const std::uint32_t id = m.ring[i];
    payload.put_u32("tbl_id" + std::to_string(i), id);
    payload.put_int("tbl_z" + std::to_string(i), m.z_map.at(id));
    const auto t_it = m.t_map.find(id);
    payload.put_int("tbl_t" + std::to_string(i),
                    t_it == m.t_map.end() ? BigInt{} : t_it->second);
  }
}

struct RingTable {
  std::vector<std::uint32_t> ids;
  std::map<std::uint32_t, BigInt> z;
  std::map<std::uint32_t, BigInt> t;
};

RingTable get_ring_table(const net::Payload& payload) {
  RingTable tbl;
  const std::uint32_t n = payload.get_u32("tbl_n");
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t id = payload.get_u32("tbl_id" + std::to_string(i));
    tbl.ids.push_back(id);
    tbl.z[id] = payload.get_int("tbl_z" + std::to_string(i));
    tbl.t[id] = payload.get_int("tbl_t" + std::to_string(i));
  }
  return tbl;
}

MemberCtx* find_member(std::span<MemberCtx> members, std::uint32_t id) {
  for (MemberCtx& m : members) {
    if (m.cred.id == id) return &m;
  }
  return nullptr;
}

void check_ring_order(std::span<MemberCtx> members) {
  if (members.empty()) throw std::invalid_argument("dynamic: empty member span");
  const auto& ring = members[0].ring;
  if (ring.size() != members.size()) {
    throw std::invalid_argument("dynamic: member span does not match ring");
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].cred.id != ring[i]) {
      throw std::invalid_argument("dynamic: member span must be in ring order");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Join protocol (3 rounds)
// ---------------------------------------------------------------------------

RunResult run_join(const SystemParams& params, std::span<MemberCtx> members,
                   MemberCtx& joiner, net::Network& network) {
  RunResult result;
  check_ring_order(members);
  const std::size_t n = members.size();
  if (n < 2) throw std::invalid_argument("run_join: need at least 2 current members");
  if (!network.has_node(joiner.cred.id)) network.add_node(joiner.cred.id);

  MemberCtx& u1 = members[0];
  MemberCtx& un = members[n - 1];
  const std::vector<std::uint32_t> old_ring = u1.ring;
  std::vector<std::uint32_t> everyone = old_ring;
  everyone.push_back(joiner.cred.id);
  const BigInt old_key = u1.key;
  const std::size_t z_bits = params.element_bits();
  const std::size_t sig_bits = params.gq_s_bits() + 160;

  // ---------------- Round 1: the joiner introduces itself (signed).
  joiner.r = mpint::random_range(*joiner.rng, BigInt{1}, params.grp.q);
  joiner.ledger.record(Op::kModExp);
  const BigInt z_new = params.gpow(joiner.r);
  joiner.tau = BigInt{};  // no stored commitment yet; refreshed at next leave
  joiner.t = BigInt{};

  joiner.ledger.record(Op::kSignGenGq);
  const sig::GqSigner joiner_signer(params.gq, joiner.cred.id, joiner.cred.gq_secret, params.ctx_n);
  const auto sig_r1 = joiner_signer.sign(id_z_bytes(joiner.cred.id, z_new), *joiner.rng);

  net::Message m_r1;
  m_r1.sender = joiner.cred.id;
  m_r1.type = "join-r1";
  m_r1.payload.put_u32("id", joiner.cred.id);
  m_r1.payload.put_int("z", z_new);
  m_r1.payload.put_int("sig_s", sig_r1.s);
  m_r1.payload.put_int("sig_c", sig_r1.c);
  m_r1.declared_bits = energy::wire::kIdBits + z_bits + sig_bits;
  const RoundResult r1 = exchange_round(network, {RoundSend{m_r1, old_ring}}, old_ring);
  result.retransmissions += r1.retransmissions;
  if (!r1.complete) return result;
  ++result.rounds;

  // Every existing member takes z_{n+1} from its own received copy.
  for (MemberCtx& m : members) {
    m.z_map[joiner.cred.id] =
        r1.collected.at(m.cred.id).at(joiner.cred.id).payload.get_int("z");
  }
  // Verification helper bound to a member's received copy of m_{n+1}.
  auto verify_joiner_intro = [&](MemberCtx& m) {
    const net::Message& rx = r1.collected.at(m.cred.id).at(joiner.cred.id);
    m.ledger.record(Op::kSignVerGq);
    const sig::GqSignature s{rx.payload.get_int("sig_s"), rx.payload.get_int("sig_c")};
    return sig::gq_verify(params.gq, *params.ctx_n, joiner.cred.id,
                          id_z_bytes(joiner.cred.id, rx.payload.get_int("z")), s);
  };

  // ---------------- Round 2.
  // (1) U_1: verify, re-key K*, publish E_K(K* || U_1) and its refreshed z.
  if (!verify_joiner_intro(u1)) return result;
  const BigInt r1_old = u1.r;
  const BigInt r1_new = mpint::random_range(*u1.rng, BigInt{1}, params.grp.q);
  const BigInt& z2 = u1.z_map.at(old_ring[1 % n]);
  const BigInt& zn = u1.z_map.at(old_ring[n - 1]);
  // K* = K * (z2 zn)^{-r1} * (z2 z_{n+1})^{r1'}   (Eq. 5)
  u1.ledger.record(Op::kModExp, 2);
  const BigInt k_star = rekey_star(*params.ctx_p, old_key, z2, zn, params.grp.q - r1_old,
                                   z2, u1.z_map.at(joiner.cred.id), r1_new);
  u1.r = r1_new;
  // Deviation (DESIGN.md): publish z1' so the ring stays consistent.
  u1.ledger.record(Op::kModExp);
  const BigInt z1_new = params.gpow(r1_new);

  net::Message m_u1;
  m_u1.sender = u1.cred.id;
  m_u1.type = "join-r2-u1";
  m_u1.payload.put_u32("id", u1.cred.id);
  const auto ek_kstar = seal_counted(u1, old_key, k_star, /*sequence=*/0);
  const std::size_t sealed_sz_bits = ek_kstar.size() * 8;
  m_u1.payload.put_blob("ek_kstar", ek_kstar);
  m_u1.payload.put_int("z1_new", z1_new);
  m_u1.declared_bits = energy::wire::kIdBits + sealed_sz_bits + z_bits;

  // (2) U_n: verify, DH-bridge to the joiner, sign its message.
  if (!verify_joiner_intro(un)) return result;
  un.ledger.record(Op::kModExp);
  const BigInt k_bridge =
      params.ctx_p->exp(un.z_map.at(joiner.cred.id), un.r);  // g^{r_n r_{n+1}}
  const auto ek_bridge = seal_counted(un, old_key, k_bridge, /*sequence=*/0);
  un.ledger.record(Op::kSignGenGq);
  const sig::GqSigner un_signer(params.gq, un.cred.id, un.cred.gq_secret, params.ctx_n);
  const auto sig_un = un_signer.sign(blob_z_bytes(ek_bridge, un.z_map.at(un.cred.id)), *un.rng);

  net::Message m_un;
  m_un.sender = un.cred.id;
  m_un.type = "join-r2-un";
  m_un.payload.put_u32("id", un.cred.id);
  m_un.payload.put_blob("ek_bridge", ek_bridge);
  m_un.payload.put_int("zn", un.z_map.at(un.cred.id));
  m_un.payload.put_int("sig_s", sig_un.s);
  m_un.payload.put_int("sig_c", sig_un.c);
  m_un.declared_bits = energy::wire::kIdBits + z_bits + sig_bits +
                       static_cast<std::size_t>(ek_bridge.size()) * 8;

  std::vector<RoundSend> r2_sends;
  r2_sends.push_back(RoundSend{m_u1, old_ring});
  r2_sends.push_back(RoundSend{m_un, everyone});
  const RoundResult r2 = exchange_round(network, r2_sends, everyone);
  result.retransmissions += r2.retransmissions;
  if (!r2.complete) return result;
  ++result.rounds;

  // ---------------- Round 3.
  // (1) The joiner verifies sigma'_n (from its received copy) and computes
  //     the DH bridge.
  const net::Message& m_un_at_joiner = r2.collected.at(joiner.cred.id).at(un.cred.id);
  joiner.ledger.record(Op::kSignVerGq);
  {
    const sig::GqSignature s{m_un_at_joiner.payload.get_int("sig_s"),
                             m_un_at_joiner.payload.get_int("sig_c")};
    if (!sig::gq_verify(params.gq, *params.ctx_n, un.cred.id,
                        blob_z_bytes(m_un_at_joiner.payload.get_blob("ek_bridge"),
                                     m_un_at_joiner.payload.get_int("zn")),
                        s)) {
      return result;
    }
  }
  joiner.ledger.record(Op::kModExp);
  const BigInt k_bridge_joiner =
      params.ctx_p->exp(m_un_at_joiner.payload.get_int("zn"), joiner.r);

  // (2) U_n relays K* (decrypted from its received copy of m'_1) to the
  //     joiner under the bridge key, plus the ring table (metadata).
  const net::Message& m_u1_at_un = r2.collected.at(un.cred.id).at(u1.cred.id);
  const auto k_star_at_un = open_counted(un, old_key, m_u1_at_un.payload.get_blob("ek_kstar"),
                                         u1.cred.id, /*sequence=*/0);
  if (!k_star_at_un.has_value()) return result;

  net::Message m_relay;
  m_relay.sender = un.cred.id;
  m_relay.recipient = joiner.cred.id;
  m_relay.type = "join-r3";
  m_relay.payload.put_u32("id", un.cred.id);
  m_relay.payload.put_blob("ek_kstar_bridge",
                           seal_counted(un, k_bridge, *k_star_at_un, /*sequence=*/1));
  m_relay.declared_bits = energy::wire::kIdBits + sealed_sz_bits;
  {
    // The relay carries the post-join ring table; build it from U_n's view.
    MemberCtx un_view = MemberCtx{};  // shallow helper for table building
    un_view.ring = everyone;
    un_view.z_map = un.z_map;
    un_view.z_map[u1.cred.id] = m_u1_at_un.payload.get_int("z1_new");
    un_view.t_map = un.t_map;
    put_ring_table(m_relay.payload, un_view);
  }
  const RoundResult r3 = exchange_round(network, {RoundSend{m_relay, {}}}, {joiner.cred.id});
  result.retransmissions += r3.retransmissions;
  if (!r3.complete) return result;
  ++result.rounds;

  // ---------------- Key computation.
  // Joiner: K' = K* * K_bridge, from its received relay copy.
  const net::Message& m_relay_at_joiner = r3.collected.at(joiner.cred.id).at(un.cred.id);
  const auto k_star_at_joiner =
      open_counted(joiner, k_bridge_joiner,
                   m_relay_at_joiner.payload.get_blob("ek_kstar_bridge"), un.cred.id,
                   /*sequence=*/1);
  if (!k_star_at_joiner.has_value()) return result;
  const BigInt new_key = params.ctx_p->mul(*k_star_at_joiner, k_bridge_joiner);

  // Existing members: decrypt K* (their copy of m'_1) and the bridge key
  // (their copy of m''_n).
  for (MemberCtx& m : members) {
    BigInt k_star_m;
    BigInt bridge_m;
    const auto& inbox = r2.collected.at(m.cred.id);
    if (m.cred.id == u1.cred.id) {
      k_star_m = k_star;
      const auto opened = open_counted(m, old_key,
                                       inbox.at(un.cred.id).payload.get_blob("ek_bridge"),
                                       un.cred.id, 0);
      if (!opened.has_value()) return result;
      bridge_m = *opened;
    } else if (m.cred.id == un.cred.id) {
      k_star_m = *k_star_at_un;
      bridge_m = k_bridge;
    } else {
      const auto opened_star = open_counted(
          m, old_key, inbox.at(u1.cred.id).payload.get_blob("ek_kstar"), u1.cred.id, 0);
      const auto opened_bridge = open_counted(
          m, old_key, inbox.at(un.cred.id).payload.get_blob("ek_bridge"), un.cred.id, 0);
      if (!opened_star.has_value() || !opened_bridge.has_value()) return result;
      k_star_m = *opened_star;
      bridge_m = *opened_bridge;
    }
    m.key = params.ctx_p->mul(k_star_m, bridge_m);
    if (m.key != new_key) throw std::logic_error("run_join: key mismatch");
    m.ring = everyone;
    if (m.cred.id != u1.cred.id) {
      m.z_map[u1.cred.id] = inbox.at(u1.cred.id).payload.get_int("z1_new");
    } else {
      m.z_map[u1.cred.id] = z1_new;
    }
  }

  // Joiner state: ring table from the relay.
  const RingTable tbl = get_ring_table(m_relay_at_joiner.payload);
  joiner.ring = tbl.ids;
  joiner.z_map = tbl.z;
  joiner.t_map.clear();
  for (const auto& [id, t] : tbl.t) {
    if (!t.is_zero()) joiner.t_map[id] = t;
  }
  joiner.z_map[joiner.cred.id] = z_new;
  joiner.key = new_key;

  result.success = true;
  result.key = new_key;
  return result;
}

// ---------------------------------------------------------------------------
// Partition protocol (2 rounds); Leave is the single-departure special case.
// ---------------------------------------------------------------------------

namespace {

RunResult run_departure(const SystemParams& params, std::span<MemberCtx> members,
                        const std::vector<std::uint32_t>& leaver_ids, net::Network& network,
                        const char* label, bool refresh_all) {
  RunResult result;
  check_ring_order(members);
  const std::vector<std::uint32_t>& old_ring = members[0].ring;

  // Survivor ring in original order, with original 1-based positions.
  std::vector<std::uint32_t> survivors;
  std::vector<std::size_t> survivor_pos;
  for (std::size_t i = 0; i < old_ring.size(); ++i) {
    if (std::find(leaver_ids.begin(), leaver_ids.end(), old_ring[i]) == leaver_ids.end()) {
      survivors.push_back(old_ring[i]);
      survivor_pos.push_back(i + 1);  // 1-based, paper indexing
    }
  }
  if (survivors.size() < 2) {
    throw std::invalid_argument("run_departure: fewer than 2 survivors");
  }
  if (survivors.size() == old_ring.size()) {
    throw std::invalid_argument("run_departure: no listed leaver is in the ring");
  }
  const std::size_t m_count = survivors.size();
  const std::size_t z_bits = params.element_bits();
  const std::size_t t_bits = params.gq_t_bits();
  const std::size_t s_bits = params.gq_s_bits();

  // Refresh set: odd-indexed survivors (paper) plus any survivor without a
  // stored GQ commitment (recent joiners — see header).
  auto needs_refresh = [&](std::size_t k) {
    if (refresh_all) return true;
    if (survivor_pos[k] % 2 == 1) return true;
    const MemberCtx* m = find_member(members, survivors[k]);
    return m != nullptr && m->tau.is_zero();
  };

  // ---------------- Round 1: refreshers broadcast new (z', t').
  std::vector<RoundSend> round1;
  for (std::size_t k = 0; k < m_count; ++k) {
    if (!needs_refresh(k)) continue;
    MemberCtx& m = *find_member(members, survivors[k]);
    m.r = mpint::random_range(*m.rng, BigInt{1}, params.grp.q);
    m.ledger.record(Op::kModExp);
    const BigInt z = params.gpow(m.r);
    const sig::GqSigner signer(params.gq, m.cred.id, m.cred.gq_secret, params.ctx_n);
    const auto commitment = signer.commit(*m.rng);  // charged within SignGenGq
    m.tau = commitment.tau;
    m.t = commitment.t;
    m.z_map[m.cred.id] = z;
    m.t_map[m.cred.id] = m.t;

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = std::string(label) + "-r1";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("z", z);
    msg.payload.put_int("t", m.t);
    msg.declared_bits = energy::wire::kIdBits + z_bits + t_bits;
    round1.push_back(RoundSend{std::move(msg), survivors});
  }
  {
    const RoundResult r1 = exchange_round(network, round1, survivors);
    result.retransmissions += r1.retransmissions;
    if (!r1.complete) return result;
    ++result.rounds;
    for (const std::uint32_t id : survivors) {
      MemberCtx& m = *find_member(members, id);
      const auto it = r1.collected.find(id);
      if (it == r1.collected.end()) continue;
      for (const auto& [sender, msg] : it->second) {
        m.z_map[sender] = msg.payload.get_int("z");
        m.t_map[sender] = msg.payload.get_int("t");
      }
    }
  }

  // ---------------- Round 2: X' over the survivor ring + shared-challenge
  // signatures (Eqs. 10/12).
  struct LocalR2 {
    BigInt x;
    BigInt s;
    BigInt z_prod;
    BigInt c;
  };
  std::vector<LocalR2> locals(m_count);
  std::vector<RoundSend> round2;
  for (std::size_t k = 0; k < m_count; ++k) {
    MemberCtx& m = *find_member(members, survivors[k]);
    const BigInt& z_next = m.z_map.at(survivors[(k + 1) % m_count]);
    const BigInt& z_prev = m.z_map.at(survivors[(k + m_count - 1) % m_count]);
    m.ledger.record(Op::kModExp);
    locals[k].x = bd::compute_x(params.group(), z_next, z_prev, m.r);

    std::vector<BigInt> z_vals;
    std::vector<BigInt> t_vals;
    z_vals.reserve(m_count);
    t_vals.reserve(m_count);
    for (const std::uint32_t id : survivors) {
      z_vals.push_back(m.z_map.at(id));
      t_vals.push_back(m.t_map.at(id));
    }
    const BigInt z_prod = params.ctx_p->product(z_vals);
    const BigInt t_prod = params.ctx_n->product(t_vals);
    locals[k].z_prod = z_prod;
    locals[k].c = sig::gq_challenge(t_prod.to_bytes_be(), z_prod.to_bytes_be());
    m.ledger.record(Op::kSignGenGq);
    const sig::GqSigner signer(params.gq, m.cred.id, m.cred.gq_secret, params.ctx_n);
    locals[k].s = signer.respond({m.tau, m.t}, locals[k].c);

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = std::string(label) + "-r2";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("x", locals[k].x);
    msg.payload.put_int("s", locals[k].s);
    msg.declared_bits = energy::wire::kIdBits + z_bits + s_bits;
    round2.push_back(RoundSend{std::move(msg), survivors});
  }
  // Controller (first survivor) broadcasts last.
  std::rotate(round2.begin(), round2.begin() + 1, round2.end());
  const RoundResult r2 = exchange_round(network, round2, survivors);
  result.retransmissions += r2.retransmissions;
  if (!r2.complete) return result;
  ++result.rounds;

  // ---------------- Verification + key.
  BigInt agreed_key;
  for (std::size_t k = 0; k < m_count; ++k) {
    MemberCtx& m = *find_member(members, survivors[k]);
    std::vector<BigInt> x_ring(m_count);
    std::vector<BigInt> s_ring(m_count);
    x_ring[k] = locals[k].x;
    s_ring[k] = locals[k].s;
    for (const auto& [sender, msg] : r2.collected.at(m.cred.id)) {
      const auto it = std::find(survivors.begin(), survivors.end(), sender);
      const std::size_t j = static_cast<std::size_t>(it - survivors.begin());
      x_ring[j] = msg.payload.get_int("x");
      s_ring[j] = msg.payload.get_int("s");
    }
    m.ledger.record(Op::kSignVerGq);
    if (!sig::gq_batch_verify(params.gq, *params.ctx_n, survivors, s_ring, locals[k].c,
                               locals[k].z_prod.to_bytes_be())) {
      return result;
    }
    if (!bd::lemma1_holds(params.group(), x_ring)) return result;

    m.ledger.record(Op::kModExp);
    std::vector<BigInt> z_ring(m_count);
    for (std::size_t j = 0; j < m_count; ++j) z_ring[j] = m.z_map.at(survivors[j]);
    m.key = bd::compute_key(params.group(), z_ring, x_ring, k, m.r);
    if (k == 0) {
      agreed_key = m.key;
    } else if (m.key != agreed_key) {
      throw std::logic_error("run_departure: members disagree on the key");
    }

    // State update: shrink the ring and drop the leavers.
    m.ring = survivors;
    for (const std::uint32_t gone : leaver_ids) {
      m.z_map.erase(gone);
      m.t_map.erase(gone);
    }
  }

  result.success = true;
  result.key = agreed_key;
  return result;
}

}  // namespace

RunResult run_leave(const SystemParams& params, std::span<MemberCtx> members,
                    std::uint32_t leaver_id, net::Network& network,
                    bool refresh_all_commitments) {
  return run_departure(params, members, {leaver_id}, network, "leave",
                       refresh_all_commitments);
}

RunResult run_partition(const SystemParams& params, std::span<MemberCtx> members,
                        const std::vector<std::uint32_t>& leaver_ids, net::Network& network,
                        bool refresh_all_commitments) {
  return run_departure(params, members, leaver_ids, network, "part",
                       refresh_all_commitments);
}

// ---------------------------------------------------------------------------
// Merge protocol (3 rounds)
// ---------------------------------------------------------------------------

RunResult run_merge(const SystemParams& params, std::span<MemberCtx> group_a,
                    std::span<MemberCtx> group_b, net::Network& network) {
  RunResult result;
  check_ring_order(group_a);
  check_ring_order(group_b);
  const std::size_t n = group_a.size();
  const std::size_t m_sz = group_b.size();
  if (n < 2 || m_sz < 2) throw std::invalid_argument("run_merge: both groups need >= 2");

  MemberCtx& u1 = group_a[0];
  MemberCtx& ub = group_b[0];  // the paper's U_{n+1}
  const std::vector<std::uint32_t> ring_a = u1.ring;
  const std::vector<std::uint32_t> ring_b = ub.ring;
  std::vector<std::uint32_t> merged = ring_a;
  merged.insert(merged.end(), ring_b.begin(), ring_b.end());
  const BigInt key_a = u1.key;
  const BigInt key_b = ub.key;
  const std::size_t z_bits = params.element_bits();
  const std::size_t sig_bits = params.gq_s_bits() + 160;

  const BigInt& z_n = u1.z_map.at(ring_a[n - 1]);        // A's last member
  const BigInt& z_nm = ub.z_map.at(ring_b[m_sz - 1]);    // B's last member

  // ---------------- Round 1: both controllers refresh and cross-announce.
  const BigInt r1_old = u1.r;
  const BigInt r1_new = mpint::random_range(*u1.rng, BigInt{1}, params.grp.q);
  u1.ledger.record(Op::kModExp);
  const BigInt z1_new = params.gpow(r1_new);
  u1.ledger.record(Op::kSignGenGq);
  const sig::GqSigner u1_signer(params.gq, u1.cred.id, u1.cred.gq_secret, params.ctx_n);
  const auto sig_u1 = u1_signer.sign(blob_z_bytes(id_z_bytes(u1.cred.id, z1_new), z_n), *u1.rng);

  const BigInt rb_old = ub.r;
  const BigInt rb_new = mpint::random_range(*ub.rng, BigInt{1}, params.grp.q);
  ub.ledger.record(Op::kModExp);
  const BigInt zb_new = params.gpow(rb_new);
  ub.ledger.record(Op::kSignGenGq);
  const sig::GqSigner ub_signer(params.gq, ub.cred.id, ub.cred.gq_secret, params.ctx_n);
  const auto sig_ub =
      ub_signer.sign(blob_z_bytes(id_z_bytes(ub.cred.id, zb_new), z_nm), *ub.rng);

  net::Message m1a;
  m1a.sender = u1.cred.id;
  m1a.type = "merge-r1-a";
  m1a.payload.put_u32("id", u1.cred.id);
  m1a.payload.put_int("z_new", z1_new);
  m1a.payload.put_int("z_last", z_n);
  m1a.payload.put_int("sig_s", sig_u1.s);
  m1a.payload.put_int("sig_c", sig_u1.c);
  put_ring_table(m1a.payload, u1);  // metadata for B's future state
  m1a.declared_bits = energy::wire::kIdBits + 2 * z_bits + sig_bits;

  net::Message m1b;
  m1b.sender = ub.cred.id;
  m1b.type = "merge-r1-b";
  m1b.payload.put_u32("id", ub.cred.id);
  m1b.payload.put_int("z_new", zb_new);
  m1b.payload.put_int("z_last", z_nm);
  m1b.payload.put_int("sig_s", sig_ub.s);
  m1b.payload.put_int("sig_c", sig_ub.c);
  put_ring_table(m1b.payload, ub);
  m1b.declared_bits = energy::wire::kIdBits + 2 * z_bits + sig_bits;

  std::vector<RoundSend> r1_sends;
  r1_sends.push_back(RoundSend{m1a, merged});
  r1_sends.push_back(RoundSend{m1b, merged});
  const RoundResult r1 = exchange_round(network, r1_sends, merged);
  result.retransmissions += r1.retransmissions;
  if (!r1.complete) return result;
  ++result.rounds;

  // Received copies used for all cross-group verification.
  const net::Message& m1b_at_u1 = r1.collected.at(u1.cred.id).at(ub.cred.id);
  const net::Message& m1a_at_ub = r1.collected.at(ub.cred.id).at(u1.cred.id);

  // ---------------- Round 2: controllers bridge and re-key.
  // U_1: verify sigma'_{n+1} (received copy), DH with the B controller, Eq. (7).
  u1.ledger.record(Op::kSignVerGq);
  {
    const sig::GqSignature s{m1b_at_u1.payload.get_int("sig_s"),
                             m1b_at_u1.payload.get_int("sig_c")};
    if (!sig::gq_verify(
            params.gq, *params.ctx_n, ub.cred.id,
            blob_z_bytes(id_z_bytes(ub.cred.id, m1b_at_u1.payload.get_int("z_new")),
                         m1b_at_u1.payload.get_int("z_last")),
            s)) {
      return result;
    }
  }
  u1.ledger.record(Op::kModExp);
  const BigInt bridge_at_a =
      params.ctx_p->exp(m1b_at_u1.payload.get_int("z_new"), r1_new);  // g^{r1' rb'}
  const BigInt& z2 = u1.z_map.at(ring_a[1 % n]);
  u1.ledger.record(Op::kModExp, 2);
  const BigInt k_star_a =
      rekey_star(*params.ctx_p, key_a, z2, z_n, params.grp.q - r1_old, z2,
                 m1b_at_u1.payload.get_int("z_last"), r1_new);
  u1.r = r1_new;

  net::Message m2a;
  m2a.sender = u1.cred.id;
  m2a.type = "merge-r2-a";
  m2a.payload.put_u32("id", u1.cred.id);
  {
    auto eg = seal_counted(u1, key_a, k_star_a, /*sequence=*/0);
    auto eb = seal_counted(u1, bridge_at_a, k_star_a, /*sequence=*/1);
    m2a.declared_bits = energy::wire::kIdBits + (eg.size() + eb.size()) * 8;
    m2a.payload.put_blob("ek_group", std::move(eg));
    m2a.payload.put_blob("ek_bridge", std::move(eb));
  }

  // U_{n+1}: verify sigma'_1 (received copy), DH, Eq. (8).
  ub.ledger.record(Op::kSignVerGq);
  {
    const sig::GqSignature s{m1a_at_ub.payload.get_int("sig_s"),
                             m1a_at_ub.payload.get_int("sig_c")};
    if (!sig::gq_verify(
            params.gq, *params.ctx_n, u1.cred.id,
            blob_z_bytes(id_z_bytes(u1.cred.id, m1a_at_ub.payload.get_int("z_new")),
                         m1a_at_ub.payload.get_int("z_last")),
            s)) {
      return result;
    }
  }
  ub.ledger.record(Op::kModExp);
  const BigInt bridge_at_b =
      params.ctx_p->exp(m1a_at_ub.payload.get_int("z_new"), rb_new);
  const BigInt& z_n2 = ub.z_map.at(ring_b[1 % m_sz]);  // z_{n+2}
  ub.ledger.record(Op::kModExp, 2);
  const BigInt k_star_b =
      rekey_star(*params.ctx_p, key_b, m1a_at_ub.payload.get_int("z_last"), z_n2, rb_new,
                 z_n2, z_nm, params.grp.q - rb_old);
  ub.r = rb_new;

  net::Message m2b;
  m2b.sender = ub.cred.id;
  m2b.type = "merge-r2-b";
  m2b.payload.put_u32("id", ub.cred.id);
  {
    auto eg = seal_counted(ub, key_b, k_star_b, /*sequence=*/0);
    auto eb = seal_counted(ub, bridge_at_b, k_star_b, /*sequence=*/1);
    m2b.declared_bits = energy::wire::kIdBits + (eg.size() + eb.size()) * 8;
    m2b.payload.put_blob("ek_group", std::move(eg));
    m2b.payload.put_blob("ek_bridge", std::move(eb));
  }

  std::vector<std::uint32_t> rx_a = ring_a;
  rx_a.push_back(ub.cred.id);
  std::vector<std::uint32_t> rx_b = ring_b;
  rx_b.push_back(u1.cred.id);
  std::vector<RoundSend> r2_sends;
  r2_sends.push_back(RoundSend{m2a, rx_a});
  r2_sends.push_back(RoundSend{m2b, rx_b});
  const RoundResult r2 = exchange_round(network, r2_sends, merged);
  result.retransmissions += r2.retransmissions;
  if (!r2.complete) return result;
  ++result.rounds;

  // ---------------- Round 3: controllers relay the peer group's K*
  // (decrypted from their received copies).
  const auto k_star_b_at_u1 = open_counted(
      u1, bridge_at_a,
      r2.collected.at(u1.cred.id).at(ub.cred.id).payload.get_blob("ek_bridge"),
      ub.cred.id, /*sequence=*/1);
  if (!k_star_b_at_u1.has_value()) return result;
  net::Message m3a;
  m3a.sender = u1.cred.id;
  m3a.type = "merge-r3-a";
  m3a.payload.put_u32("id", u1.cred.id);
  {
    auto ep = seal_counted(u1, key_a, *k_star_b_at_u1, /*sequence=*/2);
    m3a.declared_bits = energy::wire::kIdBits + ep.size() * 8;
    m3a.payload.put_blob("ek_peer", std::move(ep));
  }

  const auto k_star_a_at_ub = open_counted(
      ub, bridge_at_b,
      r2.collected.at(ub.cred.id).at(u1.cred.id).payload.get_blob("ek_bridge"),
      u1.cred.id, /*sequence=*/1);
  if (!k_star_a_at_ub.has_value()) return result;
  net::Message m3b;
  m3b.sender = ub.cred.id;
  m3b.type = "merge-r3-b";
  m3b.payload.put_u32("id", ub.cred.id);
  {
    auto ep = seal_counted(ub, key_b, *k_star_a_at_ub, /*sequence=*/2);
    m3b.declared_bits = energy::wire::kIdBits + ep.size() * 8;
    m3b.payload.put_blob("ek_peer", std::move(ep));
  }

  std::vector<RoundSend> r3_sends;
  r3_sends.push_back(RoundSend{m3a, ring_a});
  r3_sends.push_back(RoundSend{m3b, ring_b});
  const RoundResult r3 = exchange_round(network, r3_sends, merged);
  result.retransmissions += r3.retransmissions;
  if (!r3.complete) return result;
  ++result.rounds;

  // ---------------- Key computation: K' = K*_A * K*_B for everyone.
  const BigInt new_key = params.ctx_p->mul(k_star_a, *k_star_b_at_u1);

  const RingTable tbl_a = get_ring_table(m1a.payload);
  const RingTable tbl_b = get_ring_table(m1b.payload);

  auto finalize = [&](MemberCtx& m, const BigInt& star_own, const BigInt& star_peer) {
    m.key = params.ctx_p->mul(star_own, star_peer);
    if (m.key != new_key) throw std::logic_error("run_merge: key mismatch");
    m.ring = merged;
    // Union the z/t tables (metadata from the controllers' announcements).
    for (const auto& [id, z] : tbl_a.z) m.z_map.try_emplace(id, z);
    for (const auto& [id, z] : tbl_b.z) m.z_map.try_emplace(id, z);
    for (const auto& [id, t] : tbl_a.t) {
      if (!t.is_zero()) m.t_map.try_emplace(id, t);
    }
    for (const auto& [id, t] : tbl_b.t) {
      if (!t.is_zero()) m.t_map.try_emplace(id, t);
    }
    m.z_map[u1.cred.id] = z1_new;
    m.z_map[ub.cred.id] = zb_new;
  };

  for (MemberCtx& m : group_a) {
    if (m.cred.id == u1.cred.id) {
      finalize(m, k_star_a, *k_star_b_at_u1);
      continue;
    }
    const auto star_a = open_counted(
        m, key_a, r2.collected.at(m.cred.id).at(u1.cred.id).payload.get_blob("ek_group"),
        u1.cred.id, /*sequence=*/0);
    const auto star_b = open_counted(
        m, key_a, r3.collected.at(m.cred.id).at(u1.cred.id).payload.get_blob("ek_peer"),
        u1.cred.id, /*sequence=*/2);
    if (!star_a.has_value() || !star_b.has_value()) return result;
    finalize(m, *star_a, *star_b);
  }
  for (MemberCtx& m : group_b) {
    if (m.cred.id == ub.cred.id) {
      finalize(m, k_star_b, *k_star_a_at_ub);
      continue;
    }
    const auto star_b = open_counted(
        m, key_b, r2.collected.at(m.cred.id).at(ub.cred.id).payload.get_blob("ek_group"),
        ub.cred.id, /*sequence=*/0);
    const auto star_a = open_counted(
        m, key_b, r3.collected.at(m.cred.id).at(ub.cred.id).payload.get_blob("ek_peer"),
        ub.cred.id, /*sequence=*/2);
    if (!star_a.has_value() || !star_b.has_value()) return result;
    finalize(m, *star_b, *star_a);
  }

  result.success = true;
  result.key = new_key;
  return result;
}

}  // namespace idgka::gka
