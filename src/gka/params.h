// System parameters and the trust authority (PKG + certificate authority).
//
// The paper's Setup: a PKG generates the GQ modulus (n = p'q', e, d) and the
// key-agreement group (1024-bit p, 160-bit q | p-1, generator g). The same
// authority object also provisions the baselines' credentials: SOK pairing
// parameters and master key, DSA/ECDSA key pairs and certificates — so one
// `Authority` can enroll a member for every protocol variant under test.
#pragma once

#include <cstdint>
#include <memory>

#include "ec/curve.h"
#include "mpint/mod_context.h"
#include "mpint/prime.h"
#include "pairing/tate.h"
#include "pki/certificate.h"
#include "sig/dsa.h"
#include "sig/ecdsa.h"
#include "sig/gq.h"
#include "sig/sok.h"

namespace idgka::gka {

using mpint::BigInt;

/// Parameter size profiles.
enum class SecurityProfile {
  kPaper,  ///< the paper's sizes: |p| = 1024, |q| = 160, |n| = 1024
  kTest,   ///< fast CI sizes: |p| = 256, |q| = 160, |n| = 256
  kTiny,   ///< property-sweep sizes: |p| = 192, |q| = 128, |n| = 192
};

/// Modular-arithmetic view of the (p, q, g) key-agreement group, threaded
/// down into the ring computations (gka::bd) so they never re-derive
/// per-modulus state or re-exponentiate the generator from scratch.
struct GroupCtx {
  const mpint::ModContext& p;       ///< mod-p context
  const BigInt& q;                  ///< exponent group order
  const mpint::FixedBaseTable& g;   ///< comb table for the generator

  /// Fixed-base g^e mod p through the comb table.
  [[nodiscard]] BigInt gpow(const BigInt& e) const { return p.exp(g, e); }
};

/// Shared public parameters for the key-agreement group and GQ signatures.
struct SystemParams {
  mpint::SchnorrGroup grp;  ///< (p, q, g) — BD exponentiation group
  sig::GqParams gq;         ///< (n, e) — GQ verification parameters
  SecurityProfile profile = SecurityProfile::kTest;

  /// Cached modular context for mod-p arithmetic (shared, immutable).
  std::shared_ptr<const mpint::ModContext> ctx_p;
  /// Cached modular context for mod-n arithmetic.
  std::shared_ptr<const mpint::ModContext> ctx_n;
  /// Fixed-base comb table for the group generator g (exponents mod q).
  std::shared_ptr<const mpint::FixedBaseTable> g_comb;
  /// SSN authenticator base h in Z_n^* (pure function of the GQ params) and
  /// its comb table (exponents up to |n| bits).
  BigInt h_ssn;
  std::shared_ptr<const mpint::FixedBaseTable> h_comb;

  /// g^e mod p through the cached comb table — the protocols' hottest call.
  [[nodiscard]] BigInt gpow(const BigInt& e) const { return ctx_p->exp(*g_comb, e); }
  /// h^e mod n through the cached comb table (SSN authenticators).
  [[nodiscard]] BigInt hpow(const BigInt& e) const { return ctx_n->exp(*h_comb, e); }
  /// The ring-computation view handed to gka::bd.
  [[nodiscard]] GroupCtx group() const { return GroupCtx{*ctx_p, grp.q, *g_comb}; }

  [[nodiscard]] std::size_t element_bits() const { return grp.p.bit_length(); }
  [[nodiscard]] std::size_t gq_t_bits() const { return gq.n.bit_length(); }
  [[nodiscard]] std::size_t gq_s_bits() const { return gq.n.bit_length(); }
};

/// Per-member credential bundle covering every protocol variant.
struct MemberCredentials {
  std::uint32_t id = 0;
  // Proposed scheme (GQ ID-based).
  BigInt gq_secret;  ///< S_U = H(U)^d mod n
  // SOK baseline.
  ec::Point sok_secret;  ///< S_ID = s * MapToPoint(ID)
  // Certificate-based baselines.
  sig::DsaKeyPair dsa_key;
  pki::Certificate dsa_cert;
  sig::EcdsaKeyPair ecdsa_key;
  pki::Certificate ecdsa_cert;
};

/// The trusted authority: GQ PKG + SOK PKG + DSA/ECDSA CAs.
///
/// Deterministic under (profile, seed); a fixed seed reproduces identical
/// parameters and credentials, which the tests and benches rely on.
class Authority {
 public:
  Authority(SecurityProfile profile, std::uint64_t seed);

  [[nodiscard]] const SystemParams& params() const { return params_; }
  [[nodiscard]] const pairing::SsGroup& ss_group() const { return *ss_group_; }
  [[nodiscard]] const pairing::TatePairing& tate() const { return *tate_; }
  [[nodiscard]] const ec::Point& sok_public_key() const { return sok_pkg_->public_key(); }
  [[nodiscard]] const sig::DsaParams& dsa_params() const { return dsa_params_; }
  /// Cached mod-p context for the DSA baseline parameters.
  [[nodiscard]] const mpint::ModContext& dsa_ctx() const { return *dsa_ctx_; }
  [[nodiscard]] const ec::Curve& curve() const { return *curve_; }
  [[nodiscard]] const pki::CertificateAuthority& dsa_ca() const { return *dsa_ca_; }
  [[nodiscard]] const pki::CertificateAuthority& ecdsa_ca() const { return *ecdsa_ca_; }

  /// Enrolls a member: extracts ID-based keys and issues certificates.
  [[nodiscard]] MemberCredentials enroll(std::uint32_t id);

 private:
  SystemParams params_;
  std::unique_ptr<sig::GqPkg> gq_pkg_;
  std::unique_ptr<pairing::SsGroup> ss_group_;
  std::unique_ptr<pairing::TatePairing> tate_;
  std::unique_ptr<sig::SokPkg> sok_pkg_;
  sig::DsaParams dsa_params_;
  std::shared_ptr<const mpint::ModContext> dsa_ctx_;
  const ec::Curve* curve_ = nullptr;
  std::unique_ptr<pki::CertificateAuthority> dsa_ca_;
  std::unique_ptr<pki::CertificateAuthority> ecdsa_ca_;
  std::unique_ptr<mpint::Rng> rng_;
};

/// Size triple for a profile: (|p|, |q|, |n|) bits.
struct ProfileSizes {
  std::size_t p_bits;
  std::size_t q_bits;
  std::size_t gq_bits;
  std::size_t ss_p_bits;
  std::size_t ss_q_bits;
};
[[nodiscard]] ProfileSizes profile_sizes(SecurityProfile profile);

}  // namespace idgka::gka
