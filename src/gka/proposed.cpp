#include "gka/proposed.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "energy/profiles.h"
#include "gka/bd_math.h"
#include "hash/hmac.h"
#include "net/parallel.h"

namespace idgka::gka {

namespace {

using energy::Op;

// HMAC_{K}(confirm || U_i): the key-confirmation tag.
hash::Sha256::Digest key_confirmation_tag(const BigInt& key, std::uint32_t id) {
  const auto key_bytes = key.to_bytes_be();
  std::vector<std::uint8_t> msg = {'k', 'c', '|'};
  for (int i = 3; i >= 0; --i) msg.push_back(static_cast<std::uint8_t>(id >> (i * 8)));
  return hash::hmac_sha256(key_bytes, msg);
}

}  // namespace

RunResult run_proposed(const SystemParams& params, std::span<MemberCtx> members,
                       net::Network& network, const ProposedOptions& options) {
  RunResult result;
  const std::size_t n = members.size();
  if (n < 2) throw std::invalid_argument("run_proposed: need at least 2 members");

  std::vector<std::uint32_t> ring;
  ring.reserve(n);
  for (const MemberCtx& m : members) ring.push_back(m.cred.id);

  const gka::GroupCtx grp = params.group();
  const std::size_t z_bits = params.element_bits();
  const std::size_t t_bits = params.gq_t_bits();
  const std::size_t s_bits = params.gq_s_bits();

  // ---------------------------------------------------------------- Round 1
  // z_i = g^{r_i}, t_i = tau_i^e; broadcast m_i = U_i || z_i || t_i.
  std::vector<RoundSend> round1;
  round1.reserve(n);
  for (MemberCtx& m : members) {
    m.ring = ring;
    m.r = mpint::random_range(*m.rng, BigInt{1}, params.grp.q);
    m.ledger.record(Op::kModExp);  // z_i = g^{r_i}
    const BigInt z = params.gpow(m.r);

    // GQ commitment; the exponentiation t = tau^e is half of the GQ
    // signature generation, charged as part of kSignGenGq in Round 2.
    const sig::GqSigner signer(params.gq, m.cred.id, m.cred.gq_secret, params.ctx_n);
    const auto commitment = signer.commit(*m.rng);
    m.tau = commitment.tau;
    m.t = commitment.t;

    m.z_map.clear();
    m.t_map.clear();
    m.z_map[m.cred.id] = z;
    m.t_map[m.cred.id] = m.t;

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = "proposed-r1";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("z", z);
    msg.payload.put_int("t", m.t);
    msg.declared_bits = energy::wire::kIdBits + z_bits + t_bits;
    round1.push_back(RoundSend{std::move(msg), ring});
  }
  const RoundResult r1 = exchange_round(network, round1, ring);
  result.retransmissions += r1.retransmissions;
  if (!r1.complete) return result;
  ++result.rounds;

  for (MemberCtx& m : members) {
    for (const auto& [sender, msg] : r1.collected.at(m.cred.id)) {
      m.z_map[sender] = msg.payload.get_int("z");
      m.t_map[sender] = msg.payload.get_int("t");
    }
  }

  // ---------------------------------------------------------------- Round 2
  // X_i, Z, T, c = H(T || Z), s_i; broadcast m'_i = U_i || X_i || s_i.
  // U_1 (ring[0], the trusted controller) broadcasts last; the exchange
  // helper preserves the send order.
  std::vector<RoundSend> round2;
  round2.reserve(n);
  struct LocalR2 {
    BigInt x;
    BigInt s;
    BigInt z_prod;
    BigInt c;
  };
  std::vector<LocalR2> locals(n);
  for (std::size_t idx = 0; idx < n; ++idx) {
    MemberCtx& m = members[idx];
    const std::size_t i = m.ring_index();
    const BigInt& z_next = m.z_map.at(ring[(i + 1) % n]);
    const BigInt& z_prev = m.z_map.at(ring[(i + n - 1) % n]);
    m.ledger.record(Op::kModExp);  // X_i
    locals[idx].x = bd::compute_x(grp, z_next, z_prev, m.r);

    std::vector<BigInt> z_vals;
    std::vector<BigInt> t_vals;
    z_vals.reserve(n);
    t_vals.reserve(n);
    for (const std::uint32_t id : ring) {
      z_vals.push_back(m.z_map.at(id));
      t_vals.push_back(m.t_map.at(id));
    }
    const BigInt z_prod = params.ctx_p->product(z_vals);
    const BigInt t_prod = params.ctx_n->product(t_vals);
    locals[idx].z_prod = z_prod;
    locals[idx].c = sig::gq_challenge(t_prod.to_bytes_be(), z_prod.to_bytes_be());

    // s_i = tau_i * S_{U_i}^c — together with t_i this is one GQ signature
    // generation (paper: one Sign Gen per member).
    m.ledger.record(Op::kSignGenGq);
    const sig::GqSigner signer(params.gq, m.cred.id, m.cred.gq_secret, params.ctx_n);
    locals[idx].s = signer.respond({m.tau, m.t}, locals[idx].c);

    net::Message msg;
    msg.sender = m.cred.id;
    msg.type = "proposed-r2";
    msg.payload.put_u32("id", m.cred.id);
    msg.payload.put_int("x", locals[idx].x);
    msg.payload.put_int("s", locals[idx].s);
    msg.declared_bits = energy::wire::kIdBits + z_bits + s_bits;
    round2.push_back(RoundSend{std::move(msg), ring});
  }
  // Trusted-controller ordering: U_1 transmits after everyone else.
  std::rotate(round2.begin(), round2.begin() + 1, round2.end());
  const RoundResult r2 = exchange_round(network, round2, ring);
  result.retransmissions += r2.retransmissions;
  if (!r2.complete) return result;
  ++result.rounds;

  // ------------------------------------------- Authentication + Key
  // Per-member verification is share-nothing (own state + received
  // messages) and runs fork-join parallel across the simulated nodes.
  std::atomic<bool> all_ok{true};
  net::parallel_for_each(n, [&](std::size_t idx) {
    MemberCtx& m = members[idx];
    // Collect X_j and s_j in ring order (own values from locals).
    std::vector<BigInt> x_ring(n);
    std::vector<BigInt> s_ring(n);
    std::vector<std::uint32_t> ids = ring;
    const std::size_t own = m.ring_index();
    x_ring[own] = locals[idx].x;
    s_ring[own] = locals[idx].s;
    for (const auto& [sender, msg] : r2.collected.at(m.cred.id)) {
      const std::size_t j = m.ring_index_of(sender);
      x_ring[j] = msg.payload.get_int("x");
      s_ring[j] = msg.payload.get_int("s");
    }

    // Equation (2): one batch verification per member.
    m.ledger.record(Op::kSignVerGq);
    if (!sig::gq_batch_verify(params.gq, *params.ctx_n, ids, s_ring, locals[idx].c,
                              locals[idx].z_prod.to_bytes_be())) {
      all_ok.store(false, std::memory_order_relaxed);
      return;  // protocol-level failure (driver may retry from scratch)
    }
    // Lemma 1.
    if (!bd::lemma1_holds(grp, x_ring)) {
      all_ok.store(false, std::memory_order_relaxed);
      return;
    }

    // Equation (3): key reconstruction (the third exponentiation).
    m.ledger.record(Op::kModExp);
    std::vector<BigInt> z_ring(n);
    for (std::size_t j = 0; j < n; ++j) z_ring[j] = m.z_map.at(ring[j]);
    m.key = bd::compute_key(grp, z_ring, x_ring, own, m.r);
  });
  if (!all_ok.load()) return result;
  for (const MemberCtx& m : members) {
    if (m.key != members[0].key) {
      throw std::logic_error("run_proposed: members disagree on the key");
    }
  }

  // ------------------------------------------- Optional key confirmation.
  if (options.key_confirmation) {
    std::vector<RoundSend> round3;
    round3.reserve(n);
    for (MemberCtx& m : members) {
      net::Message msg;
      msg.sender = m.cred.id;
      msg.type = "proposed-kc";
      m.ledger.record(Op::kHashBlock, 2);  // one HMAC = two compression calls
      const auto tag = key_confirmation_tag(m.key, m.cred.id);
      msg.payload.put_blob("tag", std::vector<std::uint8_t>(tag.begin(), tag.end()));
      msg.declared_bits = energy::wire::kIdBits + 256;
      round3.push_back(RoundSend{std::move(msg), ring});
    }
    const RoundResult r3 = exchange_round(network, round3, ring);
    result.retransmissions += r3.retransmissions;
    if (!r3.complete) return result;
    ++result.rounds;

    std::atomic<bool> confirmed{true};
    net::parallel_for_each(n, [&](std::size_t idx) {
      MemberCtx& m = members[idx];
      for (const auto& [sender, msg] : r3.collected.at(m.cred.id)) {
        m.ledger.record(Op::kHashBlock, 2);
        const auto want = key_confirmation_tag(m.key, sender);
        const auto& got = msg.payload.get_blob("tag");
        if (got.size() != want.size() || !std::equal(want.begin(), want.end(), got.begin())) {
          confirmed.store(false, std::memory_order_relaxed);
          return;
        }
      }
    });
    if (!confirmed.load()) return result;
  }

  result.success = true;
  result.key = members[0].key;
  return result;
}

}  // namespace idgka::gka
