#include "gka/member.h"

#include <algorithm>
#include <stdexcept>

namespace idgka::gka {

std::size_t MemberCtx::ring_index() const { return ring_index_of(cred.id); }

std::size_t MemberCtx::ring_index_of(std::uint32_t member_id) const {
  const auto it = std::find(ring.begin(), ring.end(), member_id);
  if (it == ring.end()) throw std::logic_error("MemberCtx: id not in ring");
  return static_cast<std::size_t>(it - ring.begin());
}

MemberCtx make_member(MemberCredentials cred, std::uint64_t seed) {
  MemberCtx m;
  const std::uint64_t node_seed = seed ^ (0x9E3779B97F4A7C15ULL * (cred.id + 1));
  m.rng = std::make_unique<hash::HmacDrbg>(node_seed, "idgka-member");
  m.cred = std::move(cred);
  return m;
}

}  // namespace idgka::gka
