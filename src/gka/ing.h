// The Ingemarsson-Tang-Wong (ING) conference key protocol — the first GKA
// (IEEE Trans. IT 1982), cited by the paper as the origin of the field.
//
// Included as an extension baseline: it contrasts the BD family's 2-round
// broadcast structure with the original n-1-round unicast ring:
//   round k (k = 1..n-1): U_i raises the value received from U_{i-1} to
//   r_i and forwards it to U_{i+1}; the value U_i receives in the final
//   round, raised to r_i, is K = g^{r_1 r_2 ... r_n}.
// Per member: n-1 unicast transmissions/receptions and n-1 modular
// exponentiations (n-2 forwarding + 1 final), with no authentication —
// which is exactly why the paper's comparison set moved on to
// authenticated BD variants.
#pragma once

#include <span>

#include "gka/exchange.h"
#include "gka/member.h"

namespace idgka::gka {

/// Executes ING among `members` (>= 2). Unauthenticated (historical
/// baseline). On success all members share the key g^{prod r_i}.
[[nodiscard]] RunResult run_ing(const SystemParams& params, std::span<MemberCtx> members,
                                net::Network& network);

/// Per-member predicted ledger for ING at size n (paper-style accounting).
[[nodiscard]] energy::Ledger ing_ledger(std::size_t n);

}  // namespace idgka::gka
