#include "gka/bd_math.h"

#include <stdexcept>

namespace idgka::gka::bd {

BigInt compute_x(const GroupCtx& grp, const BigInt& z_next, const BigInt& z_prev,
                 const BigInt& r) {
  const mpint::ModContext& mp = grp.p;
  // (z_next / z_prev)^r as one residue chain: convert in, multiply and
  // exponentiate in Montgomery domain, convert out once.
  mpint::Residue ratio = mp.to_residue(z_next);
  const mpint::Residue inv_prev = mp.to_residue(mp.inv(z_prev));
  mp.mul(ratio, inv_prev, ratio);
  mp.exp(ratio, r, ratio);
  return mp.from_residue(ratio);
}

BigInt compute_key(const GroupCtx& grp, std::span<const BigInt> z,
                   std::span<const BigInt> x, std::size_t index, const BigInt& r) {
  const std::size_t n = z.size();
  if (x.size() != n || n < 2 || index >= n) {
    throw std::invalid_argument("bd::compute_key: inconsistent ring sizes");
  }
  const mpint::ModContext& mp = grp.p;

  // K = z_{i-1}^{n r_i} * prod_{j=0}^{n-2} X_{i+j}^{n-1-j}, evaluated as one
  // joint multi-exponentiation: the z term is the lone wide exponent, the
  // X powers are tiny integers (n-1 down to 1) that Pippenger bucketing
  // absorbs almost for free.
  std::vector<BigInt> bases;
  std::vector<BigInt> exps;
  bases.reserve(n);
  exps.reserve(n);
  bases.push_back(z[(index + n - 1) % n]);
  exps.push_back((BigInt{static_cast<std::uint64_t>(n)} * r).mod(grp.q));
  for (std::size_t j = 0; j + 1 < n; ++j) {
    bases.push_back(x[(index + j) % n]);
    exps.push_back(BigInt{static_cast<std::uint64_t>(n - 1 - j)});
  }
  return mp.multi_exp(bases, exps);
}

bool lemma1_holds(const GroupCtx& grp, std::span<const BigInt> x) {
  return grp.p.product(x).is_one();
}

BigInt direct_key(const GroupCtx& grp, std::span<const BigInt> r) {
  const std::size_t n = r.size();
  if (n < 2) throw std::invalid_argument("bd::direct_key: need at least 2 members");
  BigInt exp{};
  for (std::size_t i = 0; i < n; ++i) {
    exp = (exp + r[i] * r[(i + 1) % n]).mod(grp.q);
  }
  return grp.gpow(exp);
}

}  // namespace idgka::gka::bd
