#include "gka/bd_math.h"

#include <stdexcept>

namespace idgka::gka::bd {

BigInt compute_x(const GroupCtx& grp, const BigInt& z_next, const BigInt& z_prev,
                 const BigInt& r) {
  const mpint::ModContext& mp = grp.p;
  const BigInt ratio = mp.mul(z_next, mp.inv(z_prev));
  return mp.exp(ratio, r);
}

BigInt compute_key(const GroupCtx& grp, std::span<const BigInt> z,
                   std::span<const BigInt> x, std::size_t index, const BigInt& r) {
  const std::size_t n = z.size();
  if (x.size() != n || n < 2 || index >= n) {
    throw std::invalid_argument("bd::compute_key: inconsistent ring sizes");
  }
  const mpint::ModContext& mp = grp.p;

  // K = z_{i-1}^{n r_i} * prod_{j=0}^{n-2} X_{i+j}^{n-1-j}
  // The product is accumulated as prod of running prefixes:
  //   prod_j prod_{k<=j} X_{i+k} = prod_k X_{i+k}^{n-1-k}.
  const BigInt exponent = (BigInt{static_cast<std::uint64_t>(n)} * r).mod(grp.q);
  BigInt key = mp.exp(z[(index + n - 1) % n], exponent);
  BigInt prefix{1};
  for (std::size_t j = 0; j + 1 < n; ++j) {
    prefix = mp.mul(prefix, x[(index + j) % n]);
    key = mp.mul(key, prefix);
  }
  return key;
}

bool lemma1_holds(const GroupCtx& grp, std::span<const BigInt> x) {
  const mpint::ModContext& mp = grp.p;
  BigInt prod{1};
  for (const BigInt& xi : x) prod = mp.mul(prod, xi);
  return prod.is_one();
}

BigInt direct_key(const GroupCtx& grp, std::span<const BigInt> r) {
  const std::size_t n = r.size();
  if (n < 2) throw std::invalid_argument("bd::direct_key: need at least 2 members");
  BigInt exp{};
  for (std::size_t i = 0; i < n; ++i) {
    exp = (exp + r[i] * r[(i + 1) % n]).mod(grp.q);
  }
  return grp.gpow(exp);
}

}  // namespace idgka::gka::bd
