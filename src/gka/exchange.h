// Reliable round exchange over the lossy broadcast network.
//
// The paper's protocols assume every member eventually holds every round
// message ("if equation (2) is incorrect, then all members will retransmit
// again"). This helper runs one protocol round: everyone broadcasts, and
// senders whose message failed to reach some receiver rebroadcast (the
// radio cost of every attempt is accounted) until all inboxes are complete
// or the retry cap is hit.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"

namespace idgka::gka {

/// One sender's contribution to a round.
struct RoundSend {
  net::Message message;
  /// Receiver set for the broadcast (ring or subgroup).
  std::vector<std::uint32_t> group;
};

/// Result of a reliable round: per-receiver, per-sender message map.
struct RoundResult {
  bool complete = false;
  int retransmissions = 0;
  /// collected[receiver][sender] = message.
  std::map<std::uint32_t, std::map<std::uint32_t, net::Message>> collected;
};

/// Executes one reliable broadcast round. `receivers` lists every node that
/// must end up with all messages addressed to it. A sender that is also a
/// receiver implicitly "has" its own message. Between transmitting and
/// draining the round calls Network::await_delivery(), so a timed driver
/// can advance the clock by its round timeout; `max_retries` is overridden
/// by Network::retry_cap() when the driver bounds retransmission.
[[nodiscard]] RoundResult exchange_round(net::Network& network,
                                         const std::vector<RoundSend>& sends,
                                         const std::vector<std::uint32_t>& receivers,
                                         int max_retries = 64);

}  // namespace idgka::gka
