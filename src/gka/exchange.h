// Reliable round exchange over the lossy broadcast network.
//
// The paper's protocols assume every member eventually holds every round
// message ("if equation (2) is incorrect, then all members will retransmit
// again"). This helper runs one protocol round: everyone broadcasts, and
// senders whose message failed to reach some receiver rebroadcast (the
// radio cost of every attempt is accounted) until all inboxes are complete
// or the retry cap is hit.
//
// The round itself is the resumable engine::RoundTask state machine
// (kTransmit -> kAwait -> kDrain -> kRetransmit/kDone); exchange_round is
// the thin synchronous shim the protocol code calls: it steps the task and
// maps each kAwait onto Network::await_delivery(), so blocking callers see
// the exact seed behaviour while an engine-hosted run yields its thread at
// every await and interleaves with other groups on one virtual clock.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/round_task.h"
#include "net/network.h"

namespace idgka::gka {

/// One sender's contribution to a round (engine type, re-exported).
using RoundSend = engine::RoundSend;

/// Result of a reliable round: per-receiver, per-sender message map
/// (engine type, re-exported).
using RoundResult = engine::RoundResult;

/// Executes one reliable broadcast round. `receivers` lists every node that
/// must end up with all messages addressed to it. A sender that is also a
/// receiver implicitly "has" its own message. Between transmitting and
/// draining the round calls Network::await_delivery(), so a timed driver
/// can advance the clock by its round timeout.
///
/// Retry-cap precedence (resolved once, via Network::effective_retry_cap):
/// a driver-installed Network::retry_cap() ALWAYS overrides the `max_retries`
/// argument; `max_retries` is only the default for networks no driver has
/// bounded. Every reliable loop in the codebase (this one and the cluster
/// rekey distribution) resolves its budget the same way.
[[nodiscard]] RoundResult exchange_round(net::Network& network,
                                         const std::vector<RoundSend>& sends,
                                         const std::vector<std::uint32_t>& receivers,
                                         int max_retries = 64);

}  // namespace idgka::gka
