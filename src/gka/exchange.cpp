#include "gka/exchange.h"

namespace idgka::gka {

RoundResult exchange_round(net::Network& network, const std::vector<RoundSend>& sends,
                           const std::vector<std::uint32_t>& receivers, int max_retries) {
  engine::RoundTask task(network, sends, receivers,
                         network.effective_retry_cap(max_retries));
  while (!task.done()) {
    if (task.step() == engine::RoundTask::State::kAwait) {
      // Under a timed driver this yields the hosting ProtocolRun (or
      // advances the virtual clock by one round timeout when no engine is
      // attached) so scheduled deposits land; lockstep networks no-op.
      network.await_delivery();
    }
  }
  return task.take_result();
}

}  // namespace idgka::gka
