#include "gka/exchange.h"

#include <algorithm>
#include <map>

namespace idgka::gka {

RoundResult exchange_round(net::Network& network, const std::vector<RoundSend>& sends,
                           const std::vector<std::uint32_t>& receivers, int max_retries) {
  RoundResult result;

  // Round label each sender transmits under. A timed medium can deliver a
  // straggler duplicate from an earlier round during this round's drain
  // window; collecting an off-label message would feed the wrong payload
  // schema into the protocol, so those are ignored and retransmission
  // covers the gap. A straggler carrying the *same* label (a previous
  // operation's run of this round) is indistinguishable to a real receiver
  // and is deliberately collected — the paper's protocols bind freshness
  // into the challenge verification, which rejects the stale data and
  // fails the run rather than agreeing on a mixed-epoch key.
  std::map<std::uint32_t, const std::string*> round_label;
  for (const RoundSend& send : sends) {
    round_label.emplace(send.message.sender, &send.message.type);
  }
  const auto on_label = [&](const net::Message& msg) {
    const auto it = round_label.find(msg.sender);
    return it != round_label.end() && *it->second == msg.type;
  };

  // Which receivers still miss which sender's message?
  auto expects = [&](std::uint32_t receiver, const RoundSend& send) {
    if (send.message.sender == receiver) return false;
    if (send.message.recipient.has_value()) return *send.message.recipient == receiver;
    return std::find(send.group.begin(), send.group.end(), receiver) != send.group.end();
  };

  auto missing_somewhere = [&](const RoundSend& send) {
    for (const std::uint32_t rx : receivers) {
      if (expects(rx, send) && !result.collected[rx].contains(send.message.sender)) {
        return true;
      }
    }
    return false;
  };

  const int retries = network.retry_cap().value_or(max_retries);
  for (int attempt = 0; attempt <= retries; ++attempt) {
    // Transmit every message still missing at one or more receivers.
    bool sent_any = false;
    for (const RoundSend& send : sends) {
      if (!missing_somewhere(send)) continue;
      sent_any = true;
      if (attempt > 0) ++result.retransmissions;
      if (send.message.recipient.has_value()) {
        network.unicast(send.message);
      } else {
        network.broadcast(send.message, send.group);
      }
    }
    if (!sent_any) {
      result.complete = true;
      return result;
    }
    // Under a timed driver this advances the virtual clock by one round
    // timeout so scheduled deposits land; lockstep networks no-op.
    network.await_delivery();
    // Drain inboxes: keep the first on-label copy of each (sender,
    // receiver) pair.
    for (const std::uint32_t rx : receivers) {
      for (net::Message& msg : network.drain(rx)) {
        if (!on_label(msg)) continue;  // straggler from an earlier round
        result.collected[rx].try_emplace(msg.sender, std::move(msg));
      }
    }
    // Completion check.
    bool all_done = true;
    for (const RoundSend& send : sends) {
      if (missing_somewhere(send)) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      result.complete = true;
      return result;
    }
  }
  return result;  // incomplete after cap
}

}  // namespace idgka::gka
