#include "wire/codec.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "obs/trace.h"
#include "wire/frame_pool.h"

namespace idgka::wire {

namespace {

constexpr std::size_t kMaxNameLen = 255;
constexpr std::size_t kMaxTypeLen = 255;
// Accounting values above this would overflow downstream energy sums long
// before any real radio could transmit them.
constexpr std::uint64_t kMaxDeclaredBits = 1ULL << 48;

// ----------------------------------------------------------- encode side ---

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::uint8_t* write_varint(std::uint8_t* p, std::uint64_t v) {
  // Unrolled for the 1- and 2-byte encodings that cover every length and id
  // a round frame carries; the loop tail only runs for >14-bit values.
  if (v < 0x80) {
    *p++ = static_cast<std::uint8_t>(v);
    return p;
  }
  if (v < 0x4000) {
    *p++ = static_cast<std::uint8_t>(v | 0x80);
    *p++ = static_cast<std::uint8_t>(v >> 7);
    return p;
  }
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

void check_name(const std::string& name) {
  if (name.empty() || name.size() > kMaxNameLen) {
    throw std::invalid_argument("wire::encode: field name must be 1..255 bytes: '" + name +
                                "'");
  }
}

std::uint8_t* write_name(std::uint8_t* p, const std::string& name) {
  p = write_varint(p, name.size());
  std::memcpy(p, name.data(), name.size());
  return p + name.size();
}

// Big-endian minimal magnitude straight from the limb array — the byte
// count comes from bit_length(), so nothing is materialised up front. The
// partial top limb goes out byte-by-byte; every full limb below it is one
// byte-swapped 8-byte store.
std::uint8_t* write_int_mag(std::uint8_t* p, const mpint::BigInt& v, std::size_t nbytes) {
  std::size_t i = nbytes;
  while (i & 7) {
    --i;
    *p++ = static_cast<std::uint8_t>(v.limb(i >> 3) >> ((i & 7) * 8));
  }
  while (i != 0) {
    i -= 8;
    const std::uint64_t w = __builtin_bswap64(static_cast<std::uint64_t>(v.limb(i >> 3)));
    std::memcpy(p, &w, 8);
    p += 8;
  }
  return p;
}

// Payload::put_* appends unconditionally; a duplicate name within a kind
// would encode into a frame the strict decoder rejects at every receiver,
// so it must fail loudly at the sender instead. Quadratic scan for the
// typical handful of fields, sort-based above that.
template <typename Vec>
void reject_duplicates(const Vec& fields, const char* kind) {
  if (fields.size() <= 12) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      for (std::size_t j = i + 1; j < fields.size(); ++j) {
        if (fields[i].first == fields[j].first) {
          throw std::invalid_argument(std::string("wire::encode: duplicate ") + kind +
                                      " field '" + fields[i].first + "'");
        }
      }
    }
    return;
  }
  std::vector<const std::string*> names;
  names.reserve(fields.size());
  for (const auto& f : fields) names.push_back(&f.first);
  std::sort(names.begin(), names.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  for (std::size_t i = 0; i + 1 < names.size(); ++i) {
    if (*names[i] == *names[i + 1]) {
      throw std::invalid_argument(std::string("wire::encode: duplicate ") + kind + " field '" +
                                  *names[i] + "'");
    }
  }
}

// ----------------------------------------------------------- decode side ---
//
// The decoder is one validating left-to-right scan over a raw cursor pair
// (p, end): each primitive checks the remaining window exactly once and
// advances p, the varint reader is unrolled for the 1- and 2-byte
// encodings that cover every length and id a round frame carries, and
// integer magnitudes go to BigInt::from_bytes_be, which bulk-loads eight
// bytes per limb. Strictness is unchanged from the historical
// Reader-class decoder: truncation, non-minimal varints/integers,
// out-of-order or duplicate fields and trailing bytes all throw.

struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;

  [[nodiscard]] std::size_t remaining() const { return static_cast<std::size_t>(end - p); }
  [[nodiscard]] bool done() const { return p == end; }
};

[[noreturn]] void fail_truncated(const char* what) {
  throw DecodeError(std::string("wire: truncated ") + what);
}

std::uint8_t read_u8(Cursor& c, const char* what) {
  if (c.p == c.end) fail_truncated(what);
  return *c.p++;
}

std::span<const std::uint8_t> take(Cursor& c, std::size_t n, const char* what) {
  if (c.remaining() < n) fail_truncated(what);
  const std::span<const std::uint8_t> out(c.p, n);
  c.p += n;
  return out;
}

/// Minimal unsigned LEB128; rejects >64-bit values and padded encodings.
std::uint64_t read_varint(Cursor& c, const char* what) {
  if (c.p == c.end) fail_truncated(what);
  const std::uint8_t b0 = *c.p;
  if (b0 < 0x80) {  // 1-byte fast path: every kind/len byte in practice
    ++c.p;
    return b0;
  }
  if (c.end - c.p >= 2 && c.p[1] < 0x80) {  // 2-byte fast path
    const std::uint8_t b1 = c.p[1];
    if (b1 == 0) throw DecodeError(std::string("wire: non-minimal varint in ") + what);
    c.p += 2;
    return (static_cast<std::uint64_t>(b1) << 7) | (b0 & 0x7F);
  }
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = read_u8(c, what);
    const std::uint64_t group = byte & 0x7F;
    if (shift == 63 && group > 1) {
      throw DecodeError(std::string("wire: varint overflow in ") + what);
    }
    value |= group << shift;
    if ((byte & 0x80) == 0) {
      if (byte == 0 && shift != 0) {
        throw DecodeError(std::string("wire: non-minimal varint in ") + what);
      }
      return value;
    }
  }
  throw DecodeError(std::string("wire: varint overflow in ") + what);
}

std::uint32_t read_varint_u32(Cursor& c, const char* what) {
  const std::uint64_t v = read_varint(c, what);
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    throw DecodeError(std::string("wire: value exceeds 32 bits in ") + what);
  }
  return static_cast<std::uint32_t>(v);
}

/// A length that must fit in the remaining buffer.
std::size_t read_length(Cursor& c, const char* what) {
  const std::uint64_t v = read_varint(c, what);
  if (v > c.remaining()) {
    throw DecodeError(std::string("wire: declared length exceeds frame in ") + what);
  }
  return static_cast<std::size_t>(v);
}

Header read_header(Cursor& c) {
  if (read_u8(c, "magic") != kMagic) throw DecodeError("wire: bad magic");
  if (read_u8(c, "version") != kVersion) throw DecodeError("wire: unsupported version");
  const std::uint8_t flags = read_u8(c, "flags");
  if ((flags & ~kFlagRecipient) != 0) throw DecodeError("wire: unknown flags");

  Header h;
  h.sender = read_varint_u32(c, "sender");
  if ((flags & kFlagRecipient) != 0) h.recipient = read_varint_u32(c, "recipient");
  h.declared_bits = read_varint(c, "declared_bits");
  if (h.declared_bits > kMaxDeclaredBits) throw DecodeError("wire: declared_bits too large");
  const std::size_t type_len = read_length(c, "type");
  if (type_len > kMaxTypeLen) throw DecodeError("wire: type label too long");
  const auto type = take(c, type_len, "type");
  h.type.assign(type.begin(), type.end());
  h.field_count = read_varint(c, "field_count");
  return h;
}

std::string read_name(Cursor& c) {
  const std::size_t len = read_length(c, "field name");
  if (len == 0 || len > kMaxNameLen) throw DecodeError("wire: field name must be 1..255 bytes");
  const auto bytes = take(c, len, "field name");
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

Frame encode(const net::Message& msg) {
  if (msg.type.size() > kMaxTypeLen) {
    throw std::invalid_argument("wire::encode: type label exceeds 255 bytes");
  }
  if (msg.declared_bits > kMaxDeclaredBits) {
    throw std::invalid_argument("wire::encode: declared_bits too large");
  }
  const auto& ints = msg.payload.ints();
  const auto& blobs = msg.payload.blobs();
  const auto& u32s = msg.payload.u32s();
  reject_duplicates(ints, "int");
  reject_duplicates(blobs, "blob");
  reject_duplicates(u32s, "u32");

  // Sizing pass: every field's exact wire width (int magnitudes straight
  // from bit_length), so the single allocation below is the final buffer —
  // no push_back growth and no intermediate byte vectors.
  const std::size_t field_count = ints.size() + blobs.size() + u32s.size();
  std::size_t total = 3 + varint_size(msg.sender) + varint_size(msg.declared_bits) +
                      varint_size(msg.type.size()) + msg.type.size() +
                      varint_size(field_count);
  if (msg.recipient.has_value()) total += varint_size(*msg.recipient);
  std::vector<std::size_t> int_lens;
  int_lens.reserve(ints.size());
  for (const auto& [name, value] : ints) {
    if (value.negative()) {
      throw std::invalid_argument("wire::encode: negative integer field '" + name + "'");
    }
    check_name(name);
    const std::size_t mag = (value.bit_length() + 7) / 8;  // minimal; zero => empty
    int_lens.push_back(mag);
    total += 1 + varint_size(name.size()) + name.size() + varint_size(mag) + mag;
  }
  for (const auto& [name, value] : blobs) {
    check_name(name);
    total += 1 + varint_size(name.size()) + name.size() + varint_size(value.size()) +
             value.size();
  }
  for (const auto& [name, value] : u32s) {
    (void)value;
    check_name(name);
    total += 1 + varint_size(name.size()) + name.size() + 4;
  }

  // Pooled buffer: on the deposit path frames are born and dropped at a
  // rate that makes this the hottest allocation in a big run — recycling
  // through the frame pool makes steady-state encode malloc-free.
  const std::shared_ptr<std::vector<std::uint8_t>> out_buf = acquire_buffer(total);
  std::vector<std::uint8_t>& out = *out_buf;
  std::uint8_t* p = out.data();
  *p++ = kMagic;
  *p++ = kVersion;
  *p++ = msg.recipient.has_value() ? kFlagRecipient : 0;
  p = write_varint(p, msg.sender);
  if (msg.recipient.has_value()) p = write_varint(p, *msg.recipient);
  p = write_varint(p, msg.declared_bits);
  p = write_varint(p, msg.type.size());
  if (!msg.type.empty()) {
    std::memcpy(p, msg.type.data(), msg.type.size());
    p += msg.type.size();
  }
  p = write_varint(p, field_count);

  std::size_t idx = 0;
  for (const auto& [name, value] : ints) {
    *p++ = kKindInt;
    p = write_name(p, name);
    const std::size_t mag = int_lens[idx++];
    p = write_varint(p, mag);
    p = write_int_mag(p, value, mag);
  }
  for (const auto& [name, value] : blobs) {
    *p++ = kKindBlob;
    p = write_name(p, name);
    p = write_varint(p, value.size());
    if (!value.empty()) {
      std::memcpy(p, value.data(), value.size());
      p += value.size();
    }
  }
  for (const auto& [name, value] : u32s) {
    *p++ = kKindU32;
    p = write_name(p, name);
    *p++ = static_cast<std::uint8_t>(value >> 24);
    *p++ = static_cast<std::uint8_t>(value >> 16);
    *p++ = static_cast<std::uint8_t>(value >> 8);
    *p++ = static_cast<std::uint8_t>(value);
  }
  if (p != out.data() + total) {
    throw std::logic_error("wire::encode: sizing pass disagrees with writer");
  }
  OBS_COUNT("wire.encodes", 1);
  OBS_COUNT("wire.encoded_bytes", out.size());
  OBS_RECORD("wire.frame_bytes", out.size());
  OBS_INSTANT_ARG("wire.encode", "wire", out.size());
  return Frame(out_buf, msg.accounted_bits(), msg.sender);
}

net::Message decode(std::span<const std::uint8_t> bytes) {
  // Decode-error accounting rides the exception path: every DecodeError
  // that escapes this frame is one rejected frame, wherever it was thrown.
  struct DecodeScope {
    std::size_t bytes;
    bool ok = false;
    ~DecodeScope() {
      if (ok) {
        OBS_COUNT("wire.decodes", 1);
        OBS_COUNT("wire.decoded_bytes", bytes);
      } else {
        OBS_COUNT("wire.decode_errors", 1);
        OBS_INSTANT("wire.decode_error", "wire");
      }
    }
  } scope{bytes.size()};

  Cursor c{bytes.data(), bytes.data() + bytes.size()};
  const Header h = read_header(c);

  net::Message msg;
  msg.sender = h.sender;
  msg.recipient = h.recipient;
  msg.type = h.type;
  msg.declared_bits = static_cast<std::size_t>(h.declared_bits);

  std::uint8_t last_kind = 0;
  for (std::uint64_t i = 0; i < h.field_count; ++i) {
    const std::uint8_t kind = read_u8(c, "field kind");
    if (kind != kKindInt && kind != kKindBlob && kind != kKindU32) {
      throw DecodeError("wire: unknown field kind");
    }
    if (kind < last_kind) throw DecodeError("wire: field kinds out of canonical order");
    last_kind = kind;
    std::string name = read_name(c);
    switch (kind) {
      case kKindInt: {
        if (msg.payload.has_int(name)) throw DecodeError("wire: duplicate int '" + name + "'");
        const std::size_t len = read_length(c, "int value");
        const auto mag = take(c, len, "int value");
        if (!mag.empty() && mag.front() == 0) {
          throw DecodeError("wire: non-minimal integer '" + name + "'");
        }
        msg.payload.put_int(std::move(name), mpint::BigInt::from_bytes_be(mag));
        break;
      }
      case kKindBlob: {
        if (msg.payload.has_blob(name)) {
          throw DecodeError("wire: duplicate blob '" + name + "'");
        }
        const std::size_t len = read_length(c, "blob value");
        const auto blob = take(c, len, "blob value");
        msg.payload.put_blob(std::move(name), std::vector<std::uint8_t>(blob.begin(), blob.end()));
        break;
      }
      default: {  // kKindU32
        if (msg.payload.has_u32(name)) throw DecodeError("wire: duplicate u32 '" + name + "'");
        const auto be = take(c, 4, "u32 value");
        std::uint32_t value;
        std::memcpy(&value, be.data(), 4);
        value = __builtin_bswap32(value);
        msg.payload.put_u32(std::move(name), value);
        break;
      }
    }
  }
  if (!c.done()) throw DecodeError("wire: trailing garbage after payload");
  scope.ok = true;
  return msg;
}

net::Message decode(const Frame& frame) { return decode(frame.bytes()); }

Header peek(std::span<const std::uint8_t> bytes) {
  Cursor c{bytes.data(), bytes.data() + bytes.size()};
  return read_header(c);
}

void assert_roundtrip(const net::Message& msg, const Frame& frame) {
  const net::Message back = decode(frame);
  if (!(back == msg)) {
    throw std::logic_error("wire: frame does not decode back to the message (type '" +
                           msg.type + "')");
  }
  const Frame again = encode(back);
  const auto a = frame.bytes();
  const auto b = again.bytes();
  if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
    throw std::logic_error("wire: re-encode is not byte-identical (type '" + msg.type + "')");
  }
  if (msg.payload.wire_bytes() * 8 > frame.size_bits()) {
    throw std::logic_error("wire: payload size model exceeds the true frame size (type '" +
                           msg.type + "')");
  }
  // The paper accounting is either the sender's declared override or the
  // size model — a frame carrying any third value means a layer rewrote
  // accounting silently.
  if (frame.accounted_bits() != msg.accounted_bits()) {
    throw std::logic_error("wire: accounted bits drifted from the message (type '" + msg.type +
                           "')");
  }
}

}  // namespace idgka::wire
