#include "wire/codec.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"

namespace idgka::wire {

namespace {

constexpr std::size_t kMaxNameLen = 255;
constexpr std::size_t kMaxTypeLen = 255;
// Accounting values above this would overflow downstream energy sums long
// before any real radio could transmit them.
constexpr std::uint64_t kMaxDeclaredBits = 1ULL << 48;

// ----------------------------------------------------------- encode side ---

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_name(std::vector<std::uint8_t>& out, const std::string& name) {
  if (name.empty() || name.size() > kMaxNameLen) {
    throw std::invalid_argument("wire::encode: field name must be 1..255 bytes: '" + name +
                                "'");
  }
  put_varint(out, name.size());
  out.insert(out.end(), name.begin(), name.end());
}

// Payload::put_* appends unconditionally; a duplicate name within a kind
// would encode into a frame the strict decoder rejects at every receiver,
// so it must fail loudly at the sender instead.
template <typename Vec>
void reject_duplicates(const Vec& fields, const char* kind) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    for (std::size_t j = i + 1; j < fields.size(); ++j) {
      if (fields[i].first == fields[j].first) {
        throw std::invalid_argument(std::string("wire::encode: duplicate ") + kind +
                                    " field '" + fields[i].first + "'");
      }
    }
  }
}

// ----------------------------------------------------------- decode side ---

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

  std::uint8_t u8(const char* what) {
    if (remaining() < 1) throw DecodeError(std::string("wire: truncated ") + what);
    return bytes_[pos_++];
  }

  std::span<const std::uint8_t> take(std::size_t n, const char* what) {
    if (remaining() < n) throw DecodeError(std::string("wire: truncated ") + what);
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Minimal unsigned LEB128; rejects >64-bit values and padded encodings.
  std::uint64_t varint(const char* what) {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8(what);
      const std::uint64_t group = byte & 0x7F;
      if (shift == 63 && group > 1) {
        throw DecodeError(std::string("wire: varint overflow in ") + what);
      }
      value |= group << shift;
      if ((byte & 0x80) == 0) {
        if (byte == 0 && shift != 0) {
          throw DecodeError(std::string("wire: non-minimal varint in ") + what);
        }
        return value;
      }
    }
    throw DecodeError(std::string("wire: varint overflow in ") + what);
  }

  std::uint32_t varint_u32(const char* what) {
    const std::uint64_t v = varint(what);
    if (v > std::numeric_limits<std::uint32_t>::max()) {
      throw DecodeError(std::string("wire: value exceeds 32 bits in ") + what);
    }
    return static_cast<std::uint32_t>(v);
  }

  /// A length that must fit in the remaining buffer.
  std::size_t length(const char* what) {
    const std::uint64_t v = varint(what);
    if (v > remaining()) {
      throw DecodeError(std::string("wire: declared length exceeds frame in ") + what);
    }
    return static_cast<std::size_t>(v);
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

Header read_header(Reader& r) {
  if (r.u8("magic") != kMagic) throw DecodeError("wire: bad magic");
  if (r.u8("version") != kVersion) throw DecodeError("wire: unsupported version");
  const std::uint8_t flags = r.u8("flags");
  if ((flags & ~kFlagRecipient) != 0) throw DecodeError("wire: unknown flags");

  Header h;
  h.sender = r.varint_u32("sender");
  if ((flags & kFlagRecipient) != 0) h.recipient = r.varint_u32("recipient");
  h.declared_bits = r.varint("declared_bits");
  if (h.declared_bits > kMaxDeclaredBits) throw DecodeError("wire: declared_bits too large");
  const std::size_t type_len = r.length("type");
  if (type_len > kMaxTypeLen) throw DecodeError("wire: type label too long");
  const auto type = r.take(type_len, "type");
  h.type.assign(type.begin(), type.end());
  h.field_count = r.varint("field_count");
  return h;
}

std::string read_name(Reader& r) {
  const std::size_t len = r.length("field name");
  if (len == 0 || len > kMaxNameLen) throw DecodeError("wire: field name must be 1..255 bytes");
  const auto bytes = r.take(len, "field name");
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

Frame encode(const net::Message& msg) {
  if (msg.type.size() > kMaxTypeLen) {
    throw std::invalid_argument("wire::encode: type label exceeds 255 bytes");
  }
  if (msg.declared_bits > kMaxDeclaredBits) {
    throw std::invalid_argument("wire::encode: declared_bits too large");
  }
  reject_duplicates(msg.payload.ints(), "int");
  reject_duplicates(msg.payload.blobs(), "blob");
  reject_duplicates(msg.payload.u32s(), "u32");
  std::vector<std::uint8_t> out;
  out.reserve(16 + msg.type.size() + msg.payload.wire_bytes() +
              12 * (msg.payload.ints().size() + msg.payload.blobs().size() +
                    msg.payload.u32s().size()));
  out.push_back(kMagic);
  out.push_back(kVersion);
  out.push_back(msg.recipient.has_value() ? kFlagRecipient : 0);
  put_varint(out, msg.sender);
  if (msg.recipient.has_value()) put_varint(out, *msg.recipient);
  put_varint(out, msg.declared_bits);
  put_varint(out, msg.type.size());
  out.insert(out.end(), msg.type.begin(), msg.type.end());
  put_varint(out, msg.payload.ints().size() + msg.payload.blobs().size() +
                      msg.payload.u32s().size());

  for (const auto& [name, value] : msg.payload.ints()) {
    if (value.negative()) {
      throw std::invalid_argument("wire::encode: negative integer field '" + name + "'");
    }
    out.push_back(kKindInt);
    put_name(out, name);
    const std::vector<std::uint8_t> mag = value.to_bytes_be();  // minimal; zero => empty
    put_varint(out, mag.size());
    out.insert(out.end(), mag.begin(), mag.end());
  }
  for (const auto& [name, value] : msg.payload.blobs()) {
    out.push_back(kKindBlob);
    put_name(out, name);
    put_varint(out, value.size());
    out.insert(out.end(), value.begin(), value.end());
  }
  for (const auto& [name, value] : msg.payload.u32s()) {
    out.push_back(kKindU32);
    put_name(out, name);
    out.push_back(static_cast<std::uint8_t>(value >> 24));
    out.push_back(static_cast<std::uint8_t>(value >> 16));
    out.push_back(static_cast<std::uint8_t>(value >> 8));
    out.push_back(static_cast<std::uint8_t>(value));
  }
  OBS_COUNT("wire.encodes", 1);
  OBS_COUNT("wire.encoded_bytes", out.size());
  OBS_RECORD("wire.frame_bytes", out.size());
  OBS_INSTANT_ARG("wire.encode", "wire", out.size());
  return Frame(std::move(out), msg.accounted_bits(), msg.sender);
}

net::Message decode(std::span<const std::uint8_t> bytes) {
  // Decode-error accounting rides the exception path: every DecodeError
  // that escapes this frame is one rejected frame, wherever it was thrown.
  struct DecodeScope {
    std::size_t bytes;
    bool ok = false;
    ~DecodeScope() {
      if (ok) {
        OBS_COUNT("wire.decodes", 1);
        OBS_COUNT("wire.decoded_bytes", bytes);
      } else {
        OBS_COUNT("wire.decode_errors", 1);
        OBS_INSTANT("wire.decode_error", "wire");
      }
    }
  } scope{bytes.size()};

  Reader r(bytes);
  const Header h = read_header(r);

  net::Message msg;
  msg.sender = h.sender;
  msg.recipient = h.recipient;
  msg.type = h.type;
  msg.declared_bits = static_cast<std::size_t>(h.declared_bits);

  std::uint8_t last_kind = 0;
  for (std::uint64_t i = 0; i < h.field_count; ++i) {
    const std::uint8_t kind = r.u8("field kind");
    if (kind != kKindInt && kind != kKindBlob && kind != kKindU32) {
      throw DecodeError("wire: unknown field kind");
    }
    if (kind < last_kind) throw DecodeError("wire: field kinds out of canonical order");
    last_kind = kind;
    std::string name = read_name(r);
    switch (kind) {
      case kKindInt: {
        if (msg.payload.has_int(name)) throw DecodeError("wire: duplicate int '" + name + "'");
        const std::size_t len = r.length("int value");
        const auto mag = r.take(len, "int value");
        if (!mag.empty() && mag.front() == 0) {
          throw DecodeError("wire: non-minimal integer '" + name + "'");
        }
        msg.payload.put_int(std::move(name), mpint::BigInt::from_bytes_be(mag));
        break;
      }
      case kKindBlob: {
        if (msg.payload.has_blob(name)) {
          throw DecodeError("wire: duplicate blob '" + name + "'");
        }
        const std::size_t len = r.length("blob value");
        const auto blob = r.take(len, "blob value");
        msg.payload.put_blob(std::move(name), std::vector<std::uint8_t>(blob.begin(), blob.end()));
        break;
      }
      default: {  // kKindU32
        if (msg.payload.has_u32(name)) throw DecodeError("wire: duplicate u32 '" + name + "'");
        const auto be = r.take(4, "u32 value");
        const std::uint32_t value = (static_cast<std::uint32_t>(be[0]) << 24) |
                                    (static_cast<std::uint32_t>(be[1]) << 16) |
                                    (static_cast<std::uint32_t>(be[2]) << 8) |
                                    static_cast<std::uint32_t>(be[3]);
        msg.payload.put_u32(std::move(name), value);
        break;
      }
    }
  }
  if (!r.done()) throw DecodeError("wire: trailing garbage after payload");
  scope.ok = true;
  return msg;
}

net::Message decode(const Frame& frame) { return decode(frame.bytes()); }

Header peek(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  return read_header(r);
}

void assert_roundtrip(const net::Message& msg, const Frame& frame) {
  const net::Message back = decode(frame);
  if (!(back == msg)) {
    throw std::logic_error("wire: frame does not decode back to the message (type '" +
                           msg.type + "')");
  }
  const Frame again = encode(back);
  const auto a = frame.bytes();
  const auto b = again.bytes();
  if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
    throw std::logic_error("wire: re-encode is not byte-identical (type '" + msg.type + "')");
  }
  if (msg.payload.wire_bytes() * 8 > frame.size_bits()) {
    throw std::logic_error("wire: payload size model exceeds the true frame size (type '" +
                           msg.type + "')");
  }
  // The paper accounting is either the sender's declared override or the
  // size model — a frame carrying any third value means a layer rewrote
  // accounting silently.
  if (frame.accounted_bits() != msg.accounted_bits()) {
    throw std::logic_error("wire: accounted bits drifted from the message (type '" + msg.type +
                           "')");
  }
}

}  // namespace idgka::wire
