// Recycling pool for encoded-frame byte buffers.
//
// Every message that touches the medium is serialized into one heap
// buffer; under the deposit-path churn of a large simulation that is the
// single hottest allocation site (one buffer per broadcast, dropped as
// soon as every receiver has drained its copy). acquire_buffer() hands
// out a buffer whose release — the last Frame copy going away, on
// whichever executor shard thread that happens — returns it to a
// mutex-striped free list instead of the allocator, so steady-state
// encode costs no malloc/free round trip. Stripes are picked by thread,
// keeping cross-shard contention to the occasional work-stealing miss;
// each stripe is bounded, so a burst can only park a fixed number of
// buffers (beyond that they free normally).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace idgka::wire {

/// A buffer of exactly `size` bytes (contents unspecified — the caller
/// overwrites every byte). Reuses a pooled buffer when one is available
/// on the calling thread's stripe; the custom deleter returns the buffer
/// to the pool when the last shared reference drops.
[[nodiscard]] std::shared_ptr<std::vector<std::uint8_t>> acquire_buffer(std::size_t size);

/// Lifetime pool counters (merged across stripes; monotonic).
struct FramePoolStats {
  std::uint64_t hits = 0;     ///< acquires served from the free list
  std::uint64_t misses = 0;   ///< acquires that had to allocate
  std::uint64_t returns = 0;  ///< buffers parked back on a stripe
  std::uint64_t dropped = 0;  ///< releases that freed (stripe full / oversized)
};
[[nodiscard]] FramePoolStats frame_pool_stats();

}  // namespace idgka::wire
