// Canonical binary wire codec for net::Message.
//
// Every message that touches the broadcast medium is serialized into one
// byte-accurate frame; the frame — not the typed C++ object — is what the
// network fans out, what the link model prices, and what an adversary can
// sniff, flip or truncate. The format is canonical (one valid encoding per
// message: deterministic field order, minimal varints, minimal big-integer
// bytes), so encode(decode(encode(m))) == encode(m) byte for byte and a
// frame can double as a protocol transcript for challenge hashing.
//
// Frame layout (all multi-byte scalars explicit, see README "Wire format"):
//
//   0xD6 0x01 flags            magic, version, flags (bit0: has recipient)
//   varint sender
//   [varint recipient]         iff flags bit0
//   varint declared_bits       paper-accounting override (0 = none)
//   varint type_len, bytes     protocol label ("round1", "join-r2", ...)
//   varint field_count
//   field*:
//     kind byte                0x01 INT | 0x02 BLOB | 0x03 U32,
//                              non-decreasing across the frame
//     varint name_len, bytes   1..255 bytes
//     INT : varint len, big-endian magnitude (minimal; zero => len 0)
//     BLOB: varint len, bytes
//     U32 : 4 bytes big-endian
//
// Varints are unsigned LEB128, minimal encoding required. decode() is
// strict: every length is bounds-checked against the remaining buffer, a
// duplicate (kind, name) pair, an out-of-order kind, a non-minimal varint
// or integer, an unknown flag/kind/version and trailing garbage all throw
// DecodeError — never UB, never a partial message.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.h"

namespace idgka::wire {

inline constexpr std::uint8_t kMagic = 0xD6;
inline constexpr std::uint8_t kVersion = 0x01;
inline constexpr std::uint8_t kFlagRecipient = 0x01;
inline constexpr std::uint8_t kKindInt = 0x01;
inline constexpr std::uint8_t kKindBlob = 0x02;
inline constexpr std::uint8_t kKindU32 = 0x03;

/// A malformed frame was rejected by the strict decoder.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable, ref-counted frame: one encoded message plus the accounting
/// metadata pinned at encode time. Copies share the byte buffer (a
/// broadcast fans one buffer out to every receiver), and the metadata is
/// deliberately *not* recomputed when an adversary rewrites the bytes —
/// radio energy was spent on the frame as transmitted.
class Frame {
 public:
  Frame() = default;
  Frame(std::vector<std::uint8_t> bytes, std::uint64_t accounted_bits,
        std::uint32_t sender)
      : buf_(std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes))),
        accounted_bits_(accounted_bits),
        sender_(sender) {}
  /// Adopts an already-shared buffer — the encoder's pooled-buffer path
  /// (wire/frame_pool.h): the buffer returns to the pool, not the
  /// allocator, when the last Frame copy drops.
  Frame(std::shared_ptr<const std::vector<std::uint8_t>> bytes,
        std::uint64_t accounted_bits, std::uint32_t sender)
      : buf_(std::move(bytes)), accounted_bits_(accounted_bits), sender_(sender) {}

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return buf_ ? std::span<const std::uint8_t>(*buf_) : std::span<const std::uint8_t>();
  }
  [[nodiscard]] const std::uint8_t* data() const { return buf_ ? buf_->data() : nullptr; }
  [[nodiscard]] std::size_t size() const { return buf_ ? buf_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  /// True (codec-accurate) size on air.
  [[nodiscard]] std::size_t size_bits() const { return size() * 8; }
  /// Paper-accounted size: the sender's declared_bits override, or the
  /// Payload size model at encode time (Message::accounted_bits()).
  [[nodiscard]] std::uint64_t accounted_bits() const { return accounted_bits_; }
  /// Originating node, pinned at encode time.
  [[nodiscard]] std::uint32_t sender() const { return sender_; }
  /// Number of Frame copies sharing this buffer (fan-out introspection).
  [[nodiscard]] long use_count() const { return buf_ ? buf_.use_count() : 0; }

  /// Same shared buffer, different pinned metadata — used when a rewritten
  /// copy must keep the original frame's accounting.
  [[nodiscard]] Frame with_metadata(std::uint64_t accounted_bits, std::uint32_t sender) const {
    Frame f = *this;
    f.accounted_bits_ = accounted_bits;
    f.sender_ = sender;
    return f;
  }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> buf_;
  std::uint64_t accounted_bits_ = 0;
  std::uint32_t sender_ = 0;
};

/// Serializes a message into its unique canonical frame. Throws
/// std::invalid_argument on unencodable input (negative integer value,
/// empty or oversized field name, oversized type label).
[[nodiscard]] Frame encode(const net::Message& msg);

/// Strict decode; throws DecodeError on any malformed input.
[[nodiscard]] net::Message decode(std::span<const std::uint8_t> bytes);
[[nodiscard]] net::Message decode(const Frame& frame);

/// Fixed header fields, parsed without materializing the payload.
struct Header {
  std::uint32_t sender = 0;
  std::optional<std::uint32_t> recipient;
  std::string type;
  std::uint64_t declared_bits = 0;
  std::uint64_t field_count = 0;
};
[[nodiscard]] Header peek(std::span<const std::uint8_t> bytes);

/// Debug-build guard on every transmission: the frame must decode back to
/// the exact message, re-encode to the exact bytes, the Payload size model
/// must never exceed the true frame size, and the paper accounting must be
/// a declared override or the model — never a silent third value. Throws
/// std::logic_error on violation.
void assert_roundtrip(const net::Message& msg, const Frame& frame);

}  // namespace idgka::wire
