#include "wire/frame_pool.h"

#include <array>
#include <atomic>
#include <mutex>
#include <thread>

namespace idgka::wire {

namespace {

// Buffers above this never enter the pool: a synthetic megaframe must not
// pin megabytes of idle capacity for the rest of the process.
constexpr std::size_t kMaxPooledBytes = 64 * 1024;
constexpr std::size_t kStripeCount = 8;     // power of two, hashed by thread
constexpr std::size_t kStripeCapacity = 32;  // parked buffers per stripe

struct Stripe {
  std::mutex mutex;
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> free_list;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> returns{0};
  std::atomic<std::uint64_t> dropped{0};
};

// Leaked on purpose: Frame deleters may run during static destruction of
// whatever still holds a frame (test fixtures, global networks).
Stripe* stripes() {
  static auto* s = new std::array<Stripe, kStripeCount>();
  return s->data();
}

Stripe& my_stripe() {
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes()[h & (kStripeCount - 1)];
}

void release(std::vector<std::uint8_t>* buf) {
  std::unique_ptr<std::vector<std::uint8_t>> owned(buf);
  Stripe& stripe = my_stripe();
  if (buf->capacity() > kMaxPooledBytes) {
    stripe.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.free_list.size() >= kStripeCapacity) {
    stripe.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stripe.returns.fetch_add(1, std::memory_order_relaxed);
  stripe.free_list.push_back(std::move(owned));
}

}  // namespace

std::shared_ptr<std::vector<std::uint8_t>> acquire_buffer(std::size_t size) {
  Stripe& stripe = my_stripe();
  std::unique_ptr<std::vector<std::uint8_t>> buf;
  {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    if (!stripe.free_list.empty()) {
      buf = std::move(stripe.free_list.back());
      stripe.free_list.pop_back();
    }
  }
  if (buf) {
    stripe.hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    stripe.misses.fetch_add(1, std::memory_order_relaxed);
    buf = std::make_unique<std::vector<std::uint8_t>>();
  }
  buf->resize(size);
  return {buf.release(), &release};
}

FramePoolStats frame_pool_stats() {
  FramePoolStats stats;
  for (std::size_t i = 0; i < kStripeCount; ++i) {
    Stripe& s = stripes()[i];
    stats.hits += s.hits.load(std::memory_order_relaxed);
    stats.misses += s.misses.load(std::memory_order_relaxed);
    stats.returns += s.returns.load(std::memory_order_relaxed);
    stats.dropped += s.dropped.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace idgka::wire
