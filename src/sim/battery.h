// Battery / radio power model: joules over virtual time, death at zero.
//
// The energy layer (src/energy) prices a node's lifetime operation ledger
// in millijoules under a CPU + radio profile; the BatteryBank integrates
// that price over virtual time, adds a constant idle draw while the node
// lives, and declares the node dead the moment the total crosses the
// configured capacity. First-node-death time is the paper-style lifetime
// metric for a sensor deployment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "energy/profiles.h"
#include "sim/scheduler.h"

namespace idgka::sim {

struct PowerConfig {
  /// CPU profile pricing the operation counts (default: the paper's
  /// StrongARM SA-1110).
  const energy::CpuProfile* cpu = &energy::strongarm();
  /// Radio profile pricing tx/rx bits (default: the paper's 100 kbps
  /// transceiver).
  const energy::RadioProfile* radio = &energy::radio_100kbps();
  /// Battery capacity in millijoules; 0 disables depletion entirely.
  double capacity_mj = 0.0;
  /// Constant draw (milliwatts) while the node is alive — sleep current,
  /// sensing, timers.
  double idle_mw = 0.0;

  [[nodiscard]] bool depletes() const { return capacity_mj > 0.0; }
};

class BatteryBank {
 public:
  explicit BatteryBank(PowerConfig config);

  void add_node(std::uint32_t id, SimTime now);

  /// Updates the node's protocol cost to `ledger` (its lifetime operation +
  /// traffic ledger, priced under the configured profiles) and integrates
  /// idle draw since the last update. Returns true when exactly this update
  /// depleted the battery — the node just died. Dead nodes stop draining.
  bool update(std::uint32_t id, const energy::Ledger& ledger, SimTime now);

  /// Integrates idle draw only, keeping the last known protocol cost (for
  /// nodes currently outside the session, whose ledger is unreachable).
  bool tick(std::uint32_t id, SimTime now);

  [[nodiscard]] bool alive(std::uint32_t id) const;
  [[nodiscard]] double consumed_mj(std::uint32_t id) const;
  [[nodiscard]] double total_consumed_mj() const;
  [[nodiscard]] std::size_t deaths() const { return deaths_; }
  [[nodiscard]] std::optional<SimTime> first_death_us() const { return first_death_; }
  [[nodiscard]] const PowerConfig& config() const { return cfg_; }

 private:
  struct Cell {
    SimTime last_us = 0;
    double idle_mj = 0.0;
    double ledger_mj = 0.0;
    /// Protocol energy folded in from tenures whose ledger has since reset
    /// (rejoins, cluster splits retiring per-member ledgers).
    double banked_mj = 0.0;
    bool alive = true;
  };

  bool settle(Cell& cell, SimTime now);

  PowerConfig cfg_;
  std::map<std::uint32_t, Cell> cells_;
  std::size_t deaths_ = 0;
  std::optional<SimTime> first_death_;
};

}  // namespace idgka::sim
