#include "sim/link.h"

#include <cmath>
#include <stdexcept>

namespace idgka::sim {

double LinkConfig::average_loss() const {
  const double denom = p_good_bad + p_bad_good;
  const double pi_bad = denom > 0.0 ? p_good_bad / denom : 0.0;
  return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
}

LinkConfig LinkConfig::bursty(double average_loss, double mean_burst) {
  if (average_loss < 0.0 || average_loss >= 0.4) {
    throw std::invalid_argument("LinkConfig::bursty: average_loss must be in [0, 0.4)");
  }
  if (mean_burst < 1.0) {
    throw std::invalid_argument("LinkConfig::bursty: mean_burst must be >= 1");
  }
  LinkConfig cfg;
  if (average_loss == 0.0) return cfg;
  cfg.loss_bad = 0.5;
  cfg.p_bad_good = 1.0 / mean_burst;
  // Stationary bad probability pi solves pi * loss_bad = average_loss;
  // p_good_bad = pi / (1 - pi) * p_bad_good keeps the chain stationary.
  const double pi_bad = average_loss / cfg.loss_bad;
  cfg.p_good_bad = pi_bad / (1.0 - pi_bad) * cfg.p_bad_good;
  return cfg;
}

void LinkConfig::validate() const {
  if (bandwidth_bps <= 0.0) throw std::invalid_argument("LinkConfig: bandwidth_bps <= 0");
  for (const double p : {p_good_bad, p_bad_good, loss_good, loss_bad}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("LinkConfig: probabilities must be in [0, 1]");
    }
  }
  if (loss_good >= 1.0 && loss_bad >= 1.0) {
    throw std::invalid_argument("LinkConfig: at least one state must deliver");
  }
}

LinkModel::LinkModel(LinkConfig config, std::uint64_t seed)
    : cfg_(config), rng_(seed ^ 0x73696d6c696e6bULL) {
  cfg_.validate();
}

double LinkModel::uniform() { return rng_.next_double(); }

LinkModel::Verdict LinkModel::transmit(std::size_t bits, std::uint32_t sender,
                                       std::uint32_t receiver) {
  ++offered_;
  Verdict verdict;

  const std::uint64_t key = (static_cast<std::uint64_t>(sender) << 32) | receiver;
  bool& bad = bad_[key];
  if (bad) {
    if (cfg_.p_bad_good > 0.0 && uniform() < cfg_.p_bad_good) bad = false;
  } else {
    if (cfg_.p_good_bad > 0.0 && uniform() < cfg_.p_good_bad) bad = true;
  }
  const double loss = bad ? cfg_.loss_bad : cfg_.loss_good;
  if (loss > 0.0 && uniform() < loss) {
    ++dropped_;
    verdict.dropped = true;
    return verdict;
  }

  const double serialization_us = static_cast<double>(bits) * 1e6 / cfg_.bandwidth_bps;
  SimTime delay = static_cast<SimTime>(std::llround(serialization_us)) + cfg_.latency_us;
  if (cfg_.jitter_us > 0) {
    delay += static_cast<SimTime>(uniform() * static_cast<double>(cfg_.jitter_us + 1));
  }
  verdict.delay_us = delay;
  return verdict;
}

}  // namespace idgka::sim
