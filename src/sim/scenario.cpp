#include "sim/scenario.h"

#include "ec/curve.h"
#include "mpint/mod_context.h"
#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>

namespace idgka::sim {

namespace {

#if IDGKA_OBS
/// Trace clock over the run's scheduler, so every event of a sim run
/// carries virtual time and same-seed runs export byte-identical traces.
/// Reads Scheduler::now() directly — NOT Executor::now(): deposit events
/// emit trace instants while the executor mutex is held, and a clock that
/// re-took it would self-deadlock. The raw read is safe in practice: the
/// clock only advances on the host thread while every run is parked.
std::uint64_t scheduler_clock(const void* ctx) {
  return static_cast<std::uint64_t>(static_cast<const Scheduler*>(ctx)->now());
}
#endif

// --- Churn helpers shared by the single-scenario Run and the multi-group
// --- Group (identical rekey recording and membership-guard rules).

/// Records one rekey attempt; `kind_sample` is the per-kind latency vector
/// of the operation actually performed, feeding the JSON `latency` block.
void record_rekey(Metrics& metrics, const ProtocolDriver& driver, const OpOutcome& outcome,
                  std::vector<SimTime>& kind_sample) {
  ++metrics.rekeys_attempted;
  if (outcome.success && driver.agreed()) {
    ++metrics.rekeys_completed;
    metrics.rekey_latencies_us.push_back(outcome.latency_us());
    metrics.op_latencies_us.all.push_back(outcome.latency_us());
    kind_sample.push_back(outcome.latency_us());
  }
}

void remove_members(ProtocolDriver& driver, Metrics& metrics,
                    std::vector<std::uint32_t> ids, std::size_t& event_counter) {
  std::erase_if(ids, [&](std::uint32_t id) { return !driver.contains(id); });
  // Protocols need >= 2 survivors; keep the overflow in the group.
  while (!ids.empty() && driver.size() - ids.size() < 2) ids.pop_back();
  if (ids.empty()) return;
  const bool single = ids.size() == 1;
  const OpOutcome outcome = single ? driver.leave(ids.front()) : driver.partition(ids);
  event_counter += ids.size();
  record_rekey(metrics, driver, outcome,
               single ? metrics.op_latencies_us.leave : metrics.op_latencies_us.partition);
}

/// `eligible` filters candidates beyond the already-a-member check (the
/// battery-backed scenario registers nodes and rejects dead ones; the
/// multi-group runner admits everyone).
void admit_members(ProtocolDriver& driver, Metrics& metrics, std::vector<std::uint32_t> ids,
                   std::size_t& event_counter,
                   const std::function<bool(std::uint32_t)>& eligible) {
  std::erase_if(ids, [&](std::uint32_t id) {
    return (eligible && !eligible(id)) || driver.contains(id);
  });
  if (ids.empty()) return;
  const bool single = ids.size() == 1;
  const OpOutcome outcome = single ? driver.join(ids.front()) : driver.admit(ids);
  event_counter += ids.size();
  record_rekey(metrics, driver, outcome,
               single ? metrics.op_latencies_us.join : metrics.op_latencies_us.merge);
}

void apply_trace_event(ProtocolDriver& driver, Metrics& metrics, TraceEvent::Kind kind,
                       std::vector<std::uint32_t> ids,
                       const std::function<bool(std::uint32_t)>& eligible) {
  switch (kind) {
    case TraceEvent::Kind::kJoin:
      admit_members(driver, metrics, {ids.front()}, metrics.events_join, eligible);
      break;
    case TraceEvent::Kind::kLeave:
      remove_members(driver, metrics, {ids.front()}, metrics.events_leave);
      break;
    case TraceEvent::Kind::kPartition:
      remove_members(driver, metrics, std::move(ids), metrics.events_partition);
      break;
    case TraceEvent::Kind::kMerge:
      admit_members(driver, metrics, std::move(ids), metrics.events_merge, eligible);
      break;
  }
}

struct Mobile {
  double x = 0.0;
  double y = 0.0;
  double wx = 0.0;
  double wy = 0.0;
  bool in_range = true;
};

/// Everything one run owns; lives exactly as long as run().
struct Run {
  const ScenarioConfig& cfg;
  Metrics metrics;

  // Captured before the authority runs prime generation so the delta covers
  // the whole run (declaration order matters).
  mpint::OpCounts ops_start;
  gka::Authority authority;
  Scheduler scheduler;
  ProtocolDriver driver;
  std::optional<gka::GroupSession> flat;
  std::optional<cluster::HierarchicalSession> hier;
  BatteryBank bank;

  mpint::XoshiroRng rng;
  std::map<std::uint32_t, Mobile> mobiles;
  std::set<std::uint32_t> known_ids;
  SimTime last_move_us = 0;

  explicit Run(const ScenarioConfig& config)
      : cfg(config),
        ops_start(mpint::op_counts()),
        authority(config.profile, config.seed),
        driver(scheduler, config.driver, config.seed ^ 0x73696d647276ULL),
        bank(config.power),
        rng(config.seed ^ 0x776179706f696e74ULL) {}

  double uniform() { return rng.next_double(); }

  [[nodiscard]] double base() const { return cfg.waypoint.field_m / 2.0; }

  [[nodiscard]] bool in_range(const Mobile& m) const {
    const double dx = m.x - base();
    const double dy = m.y - base();
    return std::sqrt(dx * dx + dy * dy) <= cfg.waypoint.range_m;
  }

  void place(std::uint32_t id, bool force_in_range) {
    Mobile m;
    for (int attempt = 0; attempt < 64; ++attempt) {
      m.x = uniform() * cfg.waypoint.field_m;
      m.y = uniform() * cfg.waypoint.field_m;
      if (!force_in_range || in_range(m)) break;
    }
    m.wx = uniform() * cfg.waypoint.field_m;
    m.wy = uniform() * cfg.waypoint.field_m;
    m.in_range = in_range(m);
    mobiles[id] = m;
  }

  void move_all(SimTime now) {
    const double dt = static_cast<double>(now - last_move_us) / static_cast<double>(kUsPerSec);
    last_move_us = now;
    if (dt <= 0.0) return;
    for (auto& [id, m] : mobiles) {
      double budget = cfg.waypoint.speed_mps * dt;
      for (int leg = 0; leg < 8 && budget > 0.0; ++leg) {
        const double dx = m.wx - m.x;
        const double dy = m.wy - m.y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        if (dist <= budget) {
          m.x = m.wx;
          m.y = m.wy;
          budget -= dist;
          m.wx = uniform() * cfg.waypoint.field_m;
          m.wy = uniform() * cfg.waypoint.field_m;
        } else {
          m.x += dx / dist * budget;
          m.y += dy / dist * budget;
          budget = 0.0;
        }
      }
      m.in_range = in_range(m);
    }
  }

  void register_node(std::uint32_t id) {
    if (known_ids.insert(id).second) {
      bank.add_node(id, scheduler.now());
      if (cfg.waypoint.enabled) place(id, /*force_in_range=*/true);
    }
  }

  /// Folds every known node's energy up to `now`; returns in-session nodes
  /// that just died (they must be removed from the group).
  std::vector<std::uint32_t> sample_batteries(SimTime now) {
    std::vector<std::uint32_t> dead_members;
    for (const std::uint32_t id : known_ids) {
      const bool member = driver.contains(id);
      const bool died = member ? bank.update(id, driver.member_ledger(id), now)
                               : bank.tick(id, now);
      if (died && member) dead_members.push_back(id);
    }
    return dead_members;
  }

  /// Admission filter: register the node with the battery bank (and the
  /// mobility field) and reject it while its battery is dead.
  [[nodiscard]] std::function<bool(std::uint32_t)> admission() {
    return [this](std::uint32_t id) {
      register_node(id);
      return bank.alive(id);
    };
  }

  void apply_trace(const TraceEvent& event) {
    OBS_INSTANT_ARG("sim.trace_event", "sim", event.ids.size());
    apply_trace_event(driver, metrics, event.kind, event.ids, admission());
  }

  void apply_mobility_churn() {
    std::vector<std::uint32_t> outs;
    std::vector<std::uint32_t> ins;
    for (const auto& [id, m] : mobiles) {
      if (!bank.alive(id)) continue;
      const bool member = driver.contains(id);
      if (member && !m.in_range) outs.push_back(id);
      if (!member && m.in_range) ins.push_back(id);
    }
    remove_members(driver, metrics, std::move(outs), metrics.events_leave);
    admit_members(driver, metrics, std::move(ins), metrics.events_join, admission());
  }

  void handle_deaths(const std::vector<std::uint32_t>& dead_members) {
    if (!dead_members.empty()) {
      OBS_INSTANT_ARG("sim.death", "sim", dead_members.size());
    }
    remove_members(driver, metrics, dead_members, metrics.events_leave);
  }

  void finalize() {
    metrics.members_final = driver.size();
    metrics.clusters_final = driver.cluster_count();
    metrics.all_members_agree = driver.agreed();
    metrics.frames_on_air = driver.frames_on_air();
    metrics.bits_on_air = driver.bits_on_air();
    metrics.encoded_bits_on_air = driver.encoded_bits_on_air();
    metrics.copies_dropped = driver.copies_dropped();
    metrics.bits_dropped = driver.bits_dropped();
    metrics.deaths = bank.deaths();
    metrics.first_death_us = bank.first_death_us();
    metrics.energy_total_mj = bank.total_consumed_mj();
    const mpint::OpCounts ops_end = mpint::op_counts();
    metrics.crypto_exps = ops_end.exps - ops_start.exps;
    metrics.crypto_mod_muls = ops_end.mod_muls - ops_start.mod_muls;
    metrics.crypto_mod_sqrs = ops_end.mod_sqrs - ops_start.mod_sqrs;
    metrics.crypto_multi_exps = ops_end.multi_exps - ops_start.multi_exps;
    metrics.end_time_us = scheduler.now();
  }
};

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioConfig config) : cfg_(std::move(config)) {
  if (cfg_.initial_members < 2) {
    throw std::invalid_argument("Scenario: need at least 2 initial members");
  }
  if (cfg_.topology == Topology::kHierarchical) cfg_.cluster.validate();
  std::stable_sort(cfg_.trace.begin(), cfg_.trace.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at_us < b.at_us; });
  for (const TraceEvent& event : cfg_.trace) {
    if (event.ids.empty()) throw std::invalid_argument("Scenario: trace event without ids");
  }
}

Metrics ScenarioRunner::run() {
  // Defensive: the named curves are lazily-initialized statics; force them
  // out of the crypto-counter window so that any counted work their setup
  // may ever perform cannot make the first run's delta differ from a
  // same-seed repeat in the same process.
  (void)ec::secp160r1();
  (void)ec::p256();

  Run run(cfg_);
#if IDGKA_OBS
  const obs::ScopedClock obs_clock(&scheduler_clock, &run.scheduler);
  const obs::Span obs_span("sim.scenario", "sim");
#endif
  run.metrics.scenario = cfg_.name;
  run.metrics.topology = cfg_.topology == Topology::kFlat ? "flat" : "hierarchical";
  run.metrics.seed = cfg_.seed;
  run.metrics.members_initial = cfg_.initial_members;

  std::vector<std::uint32_t> ids(cfg_.initial_members);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = cfg_.base_id + static_cast<std::uint32_t>(i);
  }
  if (cfg_.topology == Topology::kFlat) {
    run.flat.emplace(run.authority, cfg_.cluster.scheme, ids, cfg_.seed);
    run.driver.attach(*run.flat);
  } else {
    // Label the session's registry counters with the scenario name so
    // matrix cells running in one process stay distinguishable.
    cluster::ClusterConfig cluster_cfg = cfg_.cluster;
    if (cluster_cfg.label.empty()) cluster_cfg.label = cfg_.name;
    run.hier.emplace(run.authority, std::move(cluster_cfg), ids, cfg_.seed);
    run.driver.attach(*run.hier);
  }
  for (const std::uint32_t id : ids) run.register_node(id);

  const OpOutcome formed = run.driver.form();
  run.metrics.form_success = formed.success;
  run.metrics.form_latency_us = formed.latency_us();
  if (formed.success) run.metrics.op_latencies_us.all.push_back(formed.latency_us());
  if (!formed.success) {
    run.finalize();
    return run.metrics;
  }
  run.handle_deaths(run.sample_batteries(run.scheduler.now()));

  const bool ticking =
      cfg_.waypoint.enabled || (cfg_.power.depletes() && cfg_.power.idle_mw > 0.0);
  SimTime next_tick = ticking ? cfg_.waypoint.tick_us : 0;
  std::size_t trace_idx = 0;
  run.last_move_us = run.scheduler.now();

  while (!(cfg_.stop_on_first_death && run.bank.deaths() > 0)) {
    const bool have_trace = trace_idx < cfg_.trace.size();
    const bool have_tick = ticking && next_tick <= cfg_.duration_us;
    const bool trace_due =
        have_trace && cfg_.trace[trace_idx].at_us <= cfg_.duration_us &&
        (!have_tick || cfg_.trace[trace_idx].at_us <= next_tick);
    if (trace_due) {
      const TraceEvent& event = cfg_.trace[trace_idx++];
      run.scheduler.run_until(event.at_us);
      run.apply_trace(event);
    } else if (have_tick) {
      run.scheduler.run_until(next_tick);
      next_tick += cfg_.waypoint.tick_us;
      OBS_INSTANT("sim.tick", "sim");
      if (cfg_.waypoint.enabled) {
        run.move_all(run.scheduler.now());
        run.apply_mobility_churn();
      }
    } else {
      break;
    }
    run.handle_deaths(run.sample_batteries(run.scheduler.now()));
  }

  // A lifetime run ends at the first death; otherwise idle out the clock.
  if (!(cfg_.stop_on_first_death && run.bank.deaths() > 0)) {
    run.scheduler.run_until(cfg_.duration_us);
    run.handle_deaths(run.sample_batteries(run.scheduler.now()));
  }
  run.finalize();
  return run.metrics;
}

// ------------------------------------------------------------- Multi-group

namespace {

/// One group of a multi-group run: owns everything the group's ProtocolRun
/// body touches, so concurrent group bodies share only the executor.
struct Group {
  const MultiGroupConfig& cfg;
  std::size_t index;
  Metrics metrics;

  gka::Authority authority;
  ProtocolDriver driver;
  std::optional<gka::GroupSession> flat;
  std::optional<cluster::HierarchicalSession> hier;

  Group(const MultiGroupConfig& config, std::size_t g, engine::Executor& executor)
      : cfg(config),
        index(g),
        authority(config.profile, config.authority_seed(g)),
        driver(executor, config.driver, config.driver_seed(g)) {
    std::vector<std::uint32_t> ids(cfg.members_per_group);
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = map_id(static_cast<std::uint32_t>(i));
    metrics.scenario = cfg.name + "/g" + std::to_string(g);
    if (cfg.topology == Topology::kFlat) {
      flat.emplace(authority, cfg.cluster.scheme, ids, cfg.session_seed(g));
      driver.attach(*flat);
    } else {
      // Per-group label ("name/gN") so concurrent groups' rekey counters
      // stay separable in the shared process registry.
      cluster::ClusterConfig cluster_cfg = cfg.cluster;
      if (cluster_cfg.label.empty()) cluster_cfg.label = metrics.scenario;
      hier.emplace(authority, std::move(cluster_cfg), ids, cfg.session_seed(g));
      driver.attach(*hier);
    }
    metrics.topology = cfg.topology == Topology::kFlat ? "flat" : "hierarchical";
    metrics.seed = cfg.seed;
    metrics.members_initial = cfg.members_per_group;
  }

  /// Offset in the template trace -> this group's id space.
  [[nodiscard]] std::uint32_t map_id(std::uint32_t offset) const {
    return cfg.group_base_id(index) + offset;
  }

  void apply_trace(const TraceEvent& event) {
    std::vector<std::uint32_t> ids;
    ids.reserve(event.ids.size());
    for (const std::uint32_t offset : event.ids) ids.push_back(map_id(offset));
    // No extra admission filter: the multi-group runner has no batteries.
    apply_trace_event(driver, metrics, event.kind, std::move(ids), nullptr);
  }

  /// The group's ProtocolRun body: form, then the (staggered) trace.
  void script(engine::ProtocolRun& run) {
    const SimTime t0 = static_cast<SimTime>(index) * cfg.stagger_us;
    if (t0 > 0) run.sleep_until(t0);
    const OpOutcome formed = driver.form();
    metrics.form_success = formed.success;
    metrics.form_latency_us = formed.latency_us();
    if (formed.success) {
      metrics.op_latencies_us.all.push_back(formed.latency_us());
      for (const TraceEvent& event : cfg.trace) {
        run.sleep_until(event.at_us + t0);
        apply_trace(event);
      }
    }
    finalize(run.now());
  }

  void finalize(SimTime now) {
    metrics.members_final = driver.size();
    metrics.clusters_final = driver.cluster_count();
    metrics.all_members_agree = driver.agreed();
    metrics.frames_on_air = driver.frames_on_air();
    metrics.bits_on_air = driver.bits_on_air();
    metrics.encoded_bits_on_air = driver.encoded_bits_on_air();
    metrics.copies_dropped = driver.copies_dropped();
    metrics.bits_dropped = driver.bits_dropped();
    metrics.end_time_us = now;
  }
};

}  // namespace

MultiGroupRunner::MultiGroupRunner(MultiGroupConfig config) : cfg_(std::move(config)) {
  if (cfg_.groups < 1) throw std::invalid_argument("MultiGroup: need at least 1 group");
  if (cfg_.members_per_group < 2) {
    throw std::invalid_argument("MultiGroup: need at least 2 members per group");
  }
  if (cfg_.id_stride <= cfg_.members_per_group) {
    throw std::invalid_argument("MultiGroup: id_stride must exceed members_per_group");
  }
  if (cfg_.topology == Topology::kHierarchical) cfg_.cluster.validate();
  std::stable_sort(cfg_.trace.begin(), cfg_.trace.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.at_us < b.at_us; });
  for (const TraceEvent& event : cfg_.trace) {
    if (event.ids.empty()) throw std::invalid_argument("MultiGroup: trace event without ids");
  }
}

MultiGroupMetrics MultiGroupRunner::run() {
  // Same static-initialization hygiene as ScenarioRunner::run().
  (void)ec::secp160r1();
  (void)ec::p256();

  const mpint::OpCounts ops_start = mpint::op_counts();
  Scheduler scheduler;
  engine::Executor executor(scheduler, cfg_.shards);
#if IDGKA_OBS
  const obs::ScopedClock obs_clock(&scheduler_clock, &scheduler);
  const obs::Span obs_span("sim.multigroup", "sim");
#endif

  // Group construction (authorities, sessions) is serial and cheap next to
  // the runs; bodies then only touch their own group + the executor.
  std::vector<std::unique_ptr<Group>> groups;
  groups.reserve(cfg_.groups);
  for (std::size_t g = 0; g < cfg_.groups; ++g) {
    groups.push_back(std::make_unique<Group>(cfg_, g, executor));
  }
  for (const auto& group : groups) {
    executor.submit(group->metrics.scenario,
                    [grp = group.get()](engine::ProtocolRun& run) { grp->script(run); });
  }
  executor.drain();

  MultiGroupMetrics metrics;
  metrics.scenario = cfg_.name;
  metrics.seed = cfg_.seed;
  metrics.per_group.reserve(groups.size());
  for (const auto& group : groups) metrics.per_group.push_back(std::move(group->metrics));
  metrics.engine_resumes = executor.resumes();
  metrics.max_concurrent_runs = executor.max_batch();
  metrics.end_time_us = scheduler.now();
  const mpint::OpCounts ops_end = mpint::op_counts();
  metrics.crypto_exps = ops_end.exps - ops_start.exps;
  metrics.crypto_mod_muls = ops_end.mod_muls - ops_start.mod_muls;
  metrics.crypto_mod_sqrs = ops_end.mod_sqrs - ops_start.mod_sqrs;
  metrics.crypto_multi_exps = ops_end.multi_exps - ops_start.multi_exps;
  return metrics;
}

}  // namespace idgka::sim
