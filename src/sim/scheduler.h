// Deterministic discrete-event scheduler.
//
// A virtual clock in microseconds plus an ordered event queue. Events with
// equal timestamps run in insertion order (a strictly increasing sequence
// number breaks ties), so a whole simulation is a pure function of its
// seeds — the determinism the scenario metrics tests rely on.
//
// The protocol layer runs synchronously; time advances *inside* a protocol
// call through Network round barriers that invoke run_until(). Event
// callbacks themselves must therefore never re-enter the protocol layer —
// in this codebase they only ever deposit in-flight message copies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

namespace idgka::sim {

/// Virtual time in microseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kUsPerMs = 1'000;
inline constexpr SimTime kUsPerSec = 1'000'000;

class Scheduler {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (clamped to now for past times).
  void at(SimTime when, std::function<void()> fn);
  /// Schedules `fn` at now() + delay.
  void after(SimTime delay, std::function<void()> fn) { at(now_ + delay, std::move(fn)); }

  /// Runs every event with timestamp <= horizon in (time, insertion) order
  /// — including events those events schedule inside the window — then
  /// advances the clock to `horizon` (never backwards).
  void run_until(SimTime horizon);

  /// Drains the queue completely; returns the final clock value.
  SimTime run_all();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  /// (time, seq) -> callback; unique keys make this a stable priority queue.
  std::map<std::pair<SimTime, std::uint64_t>, std::function<void()>> queue_;
};

}  // namespace idgka::sim
