// Deterministic discrete-event scheduler.
//
// A virtual clock in microseconds plus an ordered event queue. Events with
// equal timestamps run in insertion order (a strictly increasing sequence
// number breaks ties), so a whole simulation is a pure function of its
// seeds — the determinism the scenario metrics tests rely on.
//
// Protocol execution is hosted on engine::ProtocolRun threads whose wake
// timers are ordinary events in this queue; the engine relies on the FIFO
// tie-break for determinism (pinned by the Scheduler regression tests).
// Event callbacks must never re-enter the protocol layer — in this
// codebase they only ever deposit in-flight message copies and mark runs
// runnable.
//
// Threading: the queue is externally synchronized (the sharded executor
// guards each scheduler with its shard mutex), but the clock is an atomic
// so any thread may read now() without a lock — trace clocks and the
// engine's cross-shard barrier logic rely on that.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>

namespace idgka::sim {

/// Virtual time in microseconds since simulation start.
using SimTime = std::uint64_t;

inline constexpr SimTime kUsPerMs = 1'000;
inline constexpr SimTime kUsPerSec = 1'000'000;

class Scheduler {
 public:
  [[nodiscard]] SimTime now() const { return now_.load(std::memory_order_relaxed); }

  /// Schedules `fn` at absolute time `when` (clamped to now for past times).
  void at(SimTime when, std::function<void()> fn);
  /// Schedules `fn` at now() + delay.
  void after(SimTime delay, std::function<void()> fn) { at(now() + delay, std::move(fn)); }

  /// Runs every event with timestamp <= horizon in (time, insertion) order
  /// — including events those events schedule inside the window — then
  /// advances the clock to `horizon` (never backwards).
  void run_until(SimTime horizon);

  /// Advances the clock only (never backwards, executes nothing). The
  /// sharded executor uses this to bring every shard clock to the global
  /// barrier time before any shard resumes a run.
  void advance_to(SimTime when) {
    if (when > now()) now_.store(when, std::memory_order_relaxed);
  }

  /// Drains the queue completely; returns the final clock value.
  SimTime run_all();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  /// Timestamp of the earliest pending event, or nullopt when idle. The
  /// engine's main loop advances the clock one occupied timestamp at a
  /// time with run_until(*next_event_time()).
  [[nodiscard]] std::optional<SimTime> next_event_time() const {
    if (queue_.empty()) return std::nullopt;
    return queue_.begin()->first.first;
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  std::atomic<SimTime> now_{0};
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  /// (time, seq) -> callback; unique keys make this a stable priority queue.
  std::map<std::pair<SimTime, std::uint64_t>, std::function<void()>> queue_;
};

}  // namespace idgka::sim
