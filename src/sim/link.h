// Per-link radio channel model: serialization + latency + bursty loss.
//
// Every (sender, receiver) copy handed to the timed transport is priced by
// one LinkModel::transmit() call: the delay is the bandwidth-derived
// serialization time of the frame plus a base propagation/MAC latency plus
// optional uniform jitter, and loss is drawn from a two-state
// Gilbert–Elliott chain kept per directed link — so losses cluster into
// bursts the way real radio fades do, instead of the seed network's
// independent uniform drops.
#pragma once

#include <cstdint>
#include <map>

#include "mpint/random.h"
#include "sim/scheduler.h"

namespace idgka::sim {

struct LinkConfig {
  /// Bandwidth used for serialization delay (paper radio: 100 kbps).
  double bandwidth_bps = 100'000.0;
  /// Fixed propagation + MAC latency per copy.
  SimTime latency_us = 2'000;
  /// Extra uniform delay in [0, jitter_us] per copy.
  SimTime jitter_us = 0;

  // Gilbert–Elliott channel, advanced once per copy on each directed link:
  // in the Good state a copy is lost with `loss_good`, in the Bad state
  // with `loss_bad`; the state flips Good->Bad with `p_good_bad` and
  // Bad->Good with `p_bad_good` before each draw.
  double p_good_bad = 0.0;
  double p_bad_good = 0.25;
  double loss_good = 0.0;
  double loss_bad = 0.0;

  /// Stationary average loss probability of the chain.
  [[nodiscard]] double average_loss() const;

  /// A bursty channel with the given stationary average loss: bad bursts
  /// last `mean_burst` copies and lose half the copies inside a burst.
  /// Requires average_loss in [0, 0.4) and mean_burst >= 1.
  [[nodiscard]] static LinkConfig bursty(double average_loss, double mean_burst = 4.0);

  void validate() const;
};

class LinkModel {
 public:
  LinkModel(LinkConfig config, std::uint64_t seed);

  struct Verdict {
    bool dropped = false;
    SimTime delay_us = 0;
  };

  /// Prices one (message, receiver) copy of `bits` over the directed link
  /// sender -> receiver: advances the link's Gilbert–Elliott state, draws
  /// loss and computes the arrival delay. Deterministic under the seed and
  /// call order.
  Verdict transmit(std::size_t bits, std::uint32_t sender, std::uint32_t receiver);

  [[nodiscard]] const LinkConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t copies_offered() const { return offered_; }
  [[nodiscard]] std::uint64_t copies_dropped() const { return dropped_; }

 private:
  double uniform();

  LinkConfig cfg_;
  mpint::XoshiroRng rng_;
  /// Directed link (sender << 32 | receiver) -> currently in the Bad state.
  std::map<std::uint64_t, bool> bad_;
  std::uint64_t offered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace idgka::sim
