#include "sim/matrix.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/json_writer.h"

namespace idgka::sim {

namespace {

/// Member id space every cell shares (same group, different environment).
constexpr std::uint32_t kBaseId = 1000;

std::string format_ms(SimTime us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(us) / 1000.0);
  return buf;
}

std::string format_pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", ratio * 100.0);
  return buf;
}

const char* topology_name(Topology t) {
  return t == Topology::kFlat ? "flat" : "hier";
}

std::uint64_t delta_counter(const obs::Snapshot& delta, const std::string& name) {
  const auto it = delta.counters.find(name);
  return it == delta.counters.end() ? 0 : it->second;
}

}  // namespace

// ---------------------------------------------------------------- presets

LinkClass LinkClass::manet() {
  // The seed's defaults: the paper's 100 kbps radio with 2 ms MAC latency.
  LinkClass c;
  c.name = "manet";
  c.round_timeout_us = 60'000;
  return c;
}

LinkClass LinkClass::leo() {
  LinkClass c;
  c.name = "leo";
  c.link.bandwidth_bps = 1'000'000.0;
  c.link.latency_us = 30'000;
  c.link.jitter_us = 2'000;
  c.round_timeout_us = 150'000;
  return c;
}

LinkClass LinkClass::geo() {
  LinkClass c;
  c.name = "geo";
  c.link.bandwidth_bps = 1'000'000.0;
  c.link.latency_us = 250'000;
  c.link.jitter_us = 5'000;
  // Worst-case copy delay is ~260 ms (serialization + propagation +
  // jitter); the default 60 ms timeout would expire every round before a
  // single copy could land.
  c.round_timeout_us = 700'000;
  return c;
}

std::vector<LinkClass> LinkClass::all() { return {manet(), leo(), geo()}; }

LinkConfig LossModel::apply(const LinkConfig& base) const {
  if (average_loss <= 0.0) {
    LinkConfig out = base;
    out.p_good_bad = 0.0;
    out.loss_good = 0.0;
    out.loss_bad = 0.0;
    return out;
  }
  LinkConfig out;
  if (bursty) {
    out = LinkConfig::bursty(average_loss);
  } else {
    // Independent uniform loss: the chain never leaves the Good state.
    out.p_good_bad = 0.0;
    out.loss_good = average_loss;
    out.loss_bad = average_loss;
  }
  out.bandwidth_bps = base.bandwidth_bps;
  out.latency_us = base.latency_us;
  out.jitter_us = base.jitter_us;
  return out;
}

// ----------------------------------------------------------- MatrixRunner

MatrixRunner::MatrixRunner(MatrixConfig config) : cfg_(std::move(config)) {
  if (cfg_.members < 4) {
    throw std::invalid_argument("MatrixRunner: need at least 4 members");
  }
  if (cfg_.topologies.empty() || cfg_.link_classes.empty() || cfg_.loss_models.empty() ||
      cfg_.churn_levels.empty()) {
    throw std::invalid_argument("MatrixRunner: every matrix dimension needs >= 1 entry");
  }
  for (const LinkClass& link : cfg_.link_classes) link.link.validate();
}

std::vector<TraceEvent> MatrixRunner::churn_trace(const ChurnLevel& level,
                                                  const MatrixConfig& cfg) {
  // Deterministic generator, a pure function of (level, cfg): leave/rejoin
  // pairs with every second pair widened into a partition + merge batch,
  // evenly spaced over the run. The scenario runner's membership guards
  // make the pattern safe regardless of group size (it never empties the
  // group below 2, never re-admits a member twice).
  std::vector<TraceEvent> trace;
  const SimTime step = cfg.duration_us / static_cast<SimTime>(level.events + 1);
  const auto id = [&](std::size_t offset) {
    return kBaseId + static_cast<std::uint32_t>(offset % cfg.members);
  };
  for (std::size_t i = 0; i < level.events; ++i) {
    TraceEvent event;
    event.at_us = step * static_cast<SimTime>(i + 1);
    const std::size_t pair = i / 2;
    if (pair % 2 == 0) {
      event.kind = i % 2 == 0 ? TraceEvent::Kind::kLeave : TraceEvent::Kind::kJoin;
      event.ids = {id(pair)};
    } else {
      event.kind = i % 2 == 0 ? TraceEvent::Kind::kPartition : TraceEvent::Kind::kMerge;
      event.ids = {id(pair + 1), id(pair + 2)};
    }
    trace.push_back(std::move(event));
  }
  return trace;
}

MatrixReport MatrixRunner::run() {
  MatrixReport report;
  report.name = cfg_.name;
  report.seed = cfg_.seed;
  report.members = cfg_.members;

  for (const Topology topology : cfg_.topologies) {
    for (const LinkClass& link : cfg_.link_classes) {
      for (const LossModel& loss : cfg_.loss_models) {
        for (const ChurnLevel& churn : cfg_.churn_levels) {
          MatrixCell cell;
          cell.topology = topology_name(topology);
          cell.link_class = link.name;
          cell.loss_model = loss.name;
          cell.churn = churn.name;
          cell.id = cell.topology + "/" + link.name + "/" + loss.name + "/" + churn.name;

          ScenarioConfig scenario;
          scenario.name = cfg_.name + "/" + cell.id;
          scenario.topology = topology;
          scenario.profile = cfg_.profile;
          scenario.initial_members = cfg_.members;
          scenario.base_id = kBaseId;
          scenario.seed = cfg_.seed;  // same seed per cell: only the
                                      // environment differs across cells
          scenario.duration_us = cfg_.duration_us;
          scenario.cluster = cfg_.cluster;
          scenario.driver.link = loss.apply(link.link);
          scenario.driver.round_timeout_us = link.round_timeout_us;
          scenario.trace = churn_trace(churn, cfg_);

          // Scope the registry delta to this cell: labeled drop / retry
          // counters land in the cell whose run incremented them.
          const obs::ScopedSnapshotDelta guard;
          cell.metrics = ScenarioRunner(std::move(scenario)).run();
          cell.delta = guard.delta();

          std::vector<SimTime> sample = cell.metrics.op_latencies_us.all;
          std::sort(sample.begin(), sample.end());
          cell.latency_p50_us = percentile_sorted_us(sample, 50.0);
          cell.latency_p90_us = percentile_sorted_us(sample, 90.0);
          cell.latency_p99_us = percentile_sorted_us(sample, 99.0);
          cell.latency_max_us = percentile_sorted_us(sample, 100.0);
          report.cells.push_back(std::move(cell));
        }
      }
    }
  }
  return report;
}

// ----------------------------------------------------------- MatrixReport

std::string MatrixReport::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("matrix", name);
  w.kv("seed", seed);
  w.kv("members", members);
  w.key("cells").begin_array();
  for (const MatrixCell& cell : cells) {
    w.begin_object();
    w.kv("id", cell.id);
    w.kv("topology", cell.topology);
    w.kv("link_class", cell.link_class);
    w.kv("loss_model", cell.loss_model);
    w.kv("churn", cell.churn);
    w.key("latency").begin_object();
    w.kv("p50_us", cell.latency_p50_us);
    w.kv("p90_us", cell.latency_p90_us);
    w.kv("p99_us", cell.latency_p99_us);
    w.kv("max_us", cell.latency_max_us);
    w.end_object();
    w.key("metrics").raw(cell.metrics.to_json());
    w.key("delta");
    cell.delta.write(w);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string MatrixReport::to_markdown() const {
  std::string md;
  md += "# Scenario matrix: " + name + "\n\n";
  md += "- seed: " + std::to_string(seed) + ", members: " + std::to_string(members) +
        ", cells: " + std::to_string(cells.size()) + "\n\n";
  md += "| cell | form ms | p50 ms | p90 ms | p99 ms | rekeys | convergence % | "
        "copies dropped | rekey retries | agree |\n";
  md += "|---|---:|---:|---:|---:|---:|---:|---:|---:|---|\n";
  for (const MatrixCell& cell : cells) {
    md += "| " + cell.id + " | " + format_ms(cell.metrics.form_latency_us) + " | " +
          format_ms(cell.latency_p50_us) + " | " + format_ms(cell.latency_p90_us) + " | " +
          format_ms(cell.latency_p99_us) + " | " +
          std::to_string(cell.metrics.rekeys_completed) + "/" +
          std::to_string(cell.metrics.rekeys_attempted) + " | " +
          format_pct(cell.metrics.convergence()) + " | " +
          std::to_string(cell.metrics.copies_dropped) + " | " +
          std::to_string(delta_counter(cell.delta, "cluster.rekey_retries")) + " | " +
          (cell.metrics.all_members_agree ? "yes" : "NO") + " |\n";
  }

  md += "\n## Labeled metric deltas\n\n";
  bool any = false;
  for (const MatrixCell& cell : cells) {
    std::string lines;
    for (const auto& [counter, v] : cell.delta.counters) {
      if (counter.find('{') == std::string::npos) continue;
      lines += "  - `" + counter + "` = " + std::to_string(v) + "\n";
    }
    if (lines.empty()) continue;
    any = true;
    md += "- " + cell.id + "\n" + lines;
  }
  if (!any) md += "_no labeled counters incremented_\n";
  return md;
}

// ---------------------------------------------------------------- compare

namespace {

const obs::json::JsonValue& require_report(const obs::json::JsonValue& doc,
                                           const char* which) {
  if (!doc.is_object() || !doc.has("cells") || !doc.has("matrix")) {
    throw std::invalid_argument(std::string("matrix compare: ") + which +
                                " is not a matrix report");
  }
  return doc;
}

/// Growth check with both a relative and an absolute allowance: values may
/// grow by `slack` unconditionally, and beyond that by `pct` percent of
/// the baseline.
void check_growth(const std::string& cell, const char* field, double base, double cur,
                  double pct, double slack, std::vector<Regression>& out) {
  if (cur <= base + slack) return;
  if (base > 0.0 && (cur - base) / base * 100.0 <= pct) return;
  out.push_back({cell, field, base, cur});
}

}  // namespace

CompareResult compare(const obs::json::JsonValue& baseline, const obs::json::JsonValue& current,
                      const CompareThresholds& thresholds) {
  require_report(baseline, "baseline");
  require_report(current, "current");

  std::map<std::string, const obs::json::JsonValue*> current_cells;
  for (const obs::json::JsonValue& cell : current.at("cells").as_array()) {
    current_cells.emplace(cell.at("id").as_string(), &cell);
  }

  CompareResult result;
  std::map<std::string, bool> seen;
  for (const obs::json::JsonValue& base_cell : baseline.at("cells").as_array()) {
    const std::string& id = base_cell.at("id").as_string();
    const auto it = current_cells.find(id);
    if (it == current_cells.end()) {
      result.missing_cells.push_back(id);
      continue;
    }
    seen[id] = true;
    const obs::json::JsonValue& cur_cell = *it->second;

    for (const char* q : {"p50_us", "p90_us", "p99_us"}) {
      check_growth(id, q, base_cell.at("latency").at(q).as_double(),
                   cur_cell.at("latency").at(q).as_double(), thresholds.latency_pct,
                   static_cast<double>(thresholds.latency_slack_us), result.regressions);
    }
    check_growth(id, "copies_dropped",
                 base_cell.at("metrics").at("air").at("copies_dropped").as_double(),
                 cur_cell.at("metrics").at("air").at("copies_dropped").as_double(),
                 thresholds.counter_pct, thresholds.counter_slack, result.regressions);
    const auto retries = [](const obs::json::JsonValue& cell) {
      const obs::json::JsonValue& v = cell.at("delta").at("counters")["cluster.rekey_retries"];
      return v.is_null() ? 0.0 : v.as_double();
    };
    check_growth(id, "cluster.rekey_retries", retries(base_cell), retries(cur_cell),
                 thresholds.counter_pct, thresholds.counter_slack, result.regressions);

    const double base_conv = base_cell.at("metrics").at("rekeys").at("convergence").as_double();
    const double cur_conv = cur_cell.at("metrics").at("rekeys").at("convergence").as_double();
    if (cur_conv < base_conv - thresholds.convergence_drop_pct / 100.0 - 1e-9) {
      result.regressions.push_back({id, "convergence", base_conv, cur_conv});
    }
  }
  for (const auto& [id, cell] : current_cells) {
    if (!seen.contains(id)) result.new_cells.push_back(id);
  }
  return result;
}

std::string CompareResult::to_markdown() const {
  std::string md;
  md += "# Matrix baseline comparison\n\n";
  if (ok()) {
    md += "No regressions against baseline";
    if (!new_cells.empty()) {
      md += " (" + std::to_string(new_cells.size()) + " new cell(s))";
    }
    md += ".\n";
  } else {
    if (!regressions.empty()) {
      md += "## Regressions\n\n| cell | field | baseline | current |\n|---|---|---:|---:|\n";
      for (const Regression& r : regressions) {
        char base_buf[32];
        char cur_buf[32];
        std::snprintf(base_buf, sizeof base_buf, "%.3f", r.baseline);
        std::snprintf(cur_buf, sizeof cur_buf, "%.3f", r.current);
        md += "| " + r.cell + " | " + r.field + " | " + base_buf + " | " + cur_buf + " |\n";
      }
      md += "\n";
    }
    if (!missing_cells.empty()) {
      md += "## Cells missing from the current report\n\n";
      for (const std::string& id : missing_cells) md += "- " + id + "\n";
      md += "\n";
    }
  }
  if (!new_cells.empty()) {
    md += "## New cells (not in baseline)\n\n";
    for (const std::string& id : new_cells) md += "- " + id + "\n";
  }
  return md;
}

}  // namespace idgka::sim
