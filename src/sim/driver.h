// Timed protocol driver: runs GKA sessions over the discrete-event engine.
//
// The driver attaches to a flat gka::GroupSession or a hierarchical
// cluster::HierarchicalSession and installs, on every broadcast network the
// session touches (now and in the future — head-tier rebuilds, cluster
// splits), three hooks:
//
//   * a Transport that prices each (message, receiver) copy through the
//     LinkModel and schedules its arrival (Network::deposit) on the
//     Scheduler — or records the drop;
//   * a RoundBarrier that advances the virtual clock by one round timeout
//     between a reliable round's transmit and drain phases, so the
//     protocols run against timeouts and bounded retransmission instead of
//     lockstep inbox drains;
//   * sniffer/drop observers that accumulate bits-on-air and lost copies
//     across the whole run, surviving internal network teardown.
//
// A membership operation then executes synchronously while virtual time
// advances inside it; the OpOutcome captures its start/end timestamps —
// the key-agreement latency the scenario metrics aggregate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/hierarchical_session.h"
#include "gka/session.h"
#include "sim/link.h"
#include "sim/scheduler.h"

namespace idgka::sim {

struct DriverConfig {
  LinkConfig link;
  /// Virtual time one reliable-round attempt waits before the senders
  /// declare the round lossy and retransmit. Must exceed the worst-case
  /// copy delay (serialization + latency + jitter) or every round times
  /// out at least once.
  SimTime round_timeout_us = 60'000;
  /// Bounded retransmission: attempts per reliable round before the
  /// protocol run is declared failed (overrides the protocols' default cap
  /// on every attached network).
  int retry_cap = 32;
};

/// Outcome of one timed membership operation.
struct OpOutcome {
  bool success = false;
  SimTime start_us = 0;
  SimTime end_us = 0;
  /// Communication rounds / extra attempts (flat sessions only; the
  /// hierarchy aggregates many leaf runs and reports 0 here).
  int rounds = 0;
  int retransmissions = 0;

  [[nodiscard]] SimTime latency_us() const { return end_us - start_us; }
};

class ProtocolDriver {
 public:
  ProtocolDriver(Scheduler& scheduler, const DriverConfig& config, std::uint64_t seed);

  /// Attaches a session (exactly one, before any traffic flows).
  void attach(gka::GroupSession& session);
  void attach(cluster::HierarchicalSession& session);

  // --- Timed membership operations ---
  OpOutcome form();
  OpOutcome join(std::uint32_t id);
  OpOutcome leave(std::uint32_t id);
  /// Batch departure; one rekey round for the whole set.
  OpOutcome partition(const std::vector<std::uint32_t>& ids);
  /// Batch (re-)admission. Hierarchical sessions pay one rekey for the
  /// whole batch; flat sessions join sequentially inside one timed span.
  OpOutcome admit(const std::vector<std::uint32_t>& ids);

  // --- Session pass-throughs ---
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool contains(std::uint32_t id) const;
  [[nodiscard]] std::vector<std::uint32_t> member_ids() const;
  /// Every current member holds the (same) group key.
  [[nodiscard]] bool agreed() const;
  /// Lifetime ledger of a current member (leaf + head tier + retired
  /// tenures under the hierarchy; current tenure only under a flat
  /// session, whose departed ledgers are dropped — the BatteryBank banks
  /// the difference on rejoin).
  [[nodiscard]] energy::Ledger member_ledger(std::uint32_t id) const;
  [[nodiscard]] std::size_t cluster_count() const;

  // --- Cumulative on-air accounting ---
  [[nodiscard]] std::uint64_t frames_on_air() const { return frames_; }
  /// Paper-accounted bits (declared override or size model).
  [[nodiscard]] std::uint64_t bits_on_air() const { return bits_; }
  /// Codec-true encoded frame bits actually serialized on air.
  [[nodiscard]] std::uint64_t encoded_bits_on_air() const { return encoded_bits_; }
  [[nodiscard]] std::uint64_t copies_dropped() const { return drop_copies_; }
  [[nodiscard]] std::uint64_t bits_dropped() const { return drop_bits_; }
  [[nodiscard]] const LinkModel& link() const { return link_; }
  [[nodiscard]] const DriverConfig& config() const { return cfg_; }

 private:
  void install(net::Network& network);
  OpOutcome timed(const std::function<bool(OpOutcome&)>& op);

  Scheduler& scheduler_;
  DriverConfig cfg_;
  LinkModel link_;
  gka::GroupSession* flat_ = nullptr;
  cluster::HierarchicalSession* hier_ = nullptr;

  std::uint64_t frames_ = 0;
  std::uint64_t bits_ = 0;
  std::uint64_t encoded_bits_ = 0;
  std::uint64_t drop_copies_ = 0;
  std::uint64_t drop_bits_ = 0;
};

}  // namespace idgka::sim
