// Timed protocol driver: runs GKA sessions over the discrete-event engine.
//
// The driver attaches to a flat gka::GroupSession or a hierarchical
// cluster::HierarchicalSession and installs, on every broadcast network the
// session touches (now and in the future — head-tier rebuilds, cluster
// splits), three hooks:
//
//   * a Transport that prices each (message, receiver) copy through the
//     LinkModel and posts its arrival through the engine::Executor (the
//     event is attributed to the posting ProtocolRun for frame-arrival
//     resumption) — or records the drop;
//   * a RoundBarrier that yields the hosting ProtocolRun for one round
//     timeout between a reliable round's transmit and drain phases, so the
//     protocols run against timeouts and bounded retransmission while other
//     groups' runs interleave on the same clock;
//   * sniffer/drop observers that accumulate bits-on-air and lost copies
//     across the whole run, surviving internal network teardown.
//
// Execution is event-driven end to end: every membership operation is an
// engine::ProtocolRun. Called from a plain thread, the driver submits the
// operation to its executor and drains it — the call stays synchronous and
// virtual time advances inside it, exactly the seed behaviour. Called from
// inside a run body (a multi-group scenario script), the operation executes
// inline on the calling run, yielding at each await so the executor can
// interleave many groups' rounds. The OpOutcome captures the operation's
// start/end timestamps — the key-agreement latency the scenario metrics
// aggregate.
//
// One driver serves one session and must only be used from one run (or the
// host thread) at a time; concurrent groups get one driver each, sharing an
// Executor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/hierarchical_session.h"
#include "engine/executor.h"
#include "gka/session.h"
#include "sim/link.h"
#include "sim/scheduler.h"

namespace idgka::sim {

struct DriverConfig {
  LinkConfig link;
  /// Virtual time one reliable-round attempt waits before the senders
  /// declare the round lossy and retransmit. Must exceed the worst-case
  /// copy delay (serialization + latency + jitter) or every round times
  /// out at least once.
  SimTime round_timeout_us = 60'000;
  /// Bounded retransmission: attempts per reliable round before the
  /// protocol run is declared failed. Installed as Network::retry_cap on
  /// every attached network, which overrides the protocols' call-site
  /// defaults (see Network::effective_retry_cap for the precedence rule).
  int retry_cap = 32;
  /// Opt-in frame-arrival resumption: a round await returns as soon as the
  /// last in-flight copy this run posted has landed (and an incomplete
  /// round retransmits immediately on a quiet channel) instead of always
  /// burning the full round timeout. Same protocol outcomes — loss is
  /// drawn at transmit time — but latencies become arrival-true rather
  /// than timeout-quantized, so it is off by default to preserve the
  /// seed's timing model.
  bool resume_on_arrival = false;
};

/// Outcome of one timed membership operation.
struct OpOutcome {
  bool success = false;
  SimTime start_us = 0;
  SimTime end_us = 0;
  /// Communication rounds / extra attempts (flat sessions only; the
  /// hierarchy aggregates many leaf runs and reports 0 here).
  int rounds = 0;
  int retransmissions = 0;

  [[nodiscard]] SimTime latency_us() const { return end_us - start_us; }
};

class ProtocolDriver {
 public:
  /// Standalone driver: owns a private engine::Executor over `scheduler`.
  ProtocolDriver(Scheduler& scheduler, const DriverConfig& config, std::uint64_t seed);
  /// Concurrent-group driver: shares `executor` (and its scheduler) with
  /// other drivers; membership operations invoked from inside that
  /// executor's run bodies interleave with every other registered run.
  ProtocolDriver(engine::Executor& executor, const DriverConfig& config,
                 std::uint64_t seed);

  /// Attaches a session (exactly one, before any traffic flows). The
  /// driver keeps a pointer to `session` for its lifetime: the session
  /// must outlive the driver and must not be moved-from while attached
  /// (GroupSession is movable — hand the driver its final home).
  void attach(gka::GroupSession& session);
  void attach(cluster::HierarchicalSession& session);

  // --- Timed membership operations ---
  OpOutcome form();
  OpOutcome join(std::uint32_t id);
  OpOutcome leave(std::uint32_t id);
  /// Batch departure; one rekey round for the whole set.
  OpOutcome partition(const std::vector<std::uint32_t>& ids);
  /// Batch (re-)admission. Hierarchical sessions pay one rekey for the
  /// whole batch; flat sessions join sequentially inside one timed span.
  OpOutcome admit(const std::vector<std::uint32_t>& ids);

  // --- Session pass-throughs ---
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool contains(std::uint32_t id) const;
  [[nodiscard]] std::vector<std::uint32_t> member_ids() const;
  /// Every current member holds the (same) group key.
  [[nodiscard]] bool agreed() const;
  /// Lifetime ledger of a current member (leaf + head tier + retired
  /// tenures under the hierarchy; current tenure only under a flat
  /// session, whose departed ledgers are dropped — the BatteryBank banks
  /// the difference on rejoin).
  [[nodiscard]] energy::Ledger member_ledger(std::uint32_t id) const;
  [[nodiscard]] std::size_t cluster_count() const;

  // --- Cumulative on-air accounting ---
  [[nodiscard]] std::uint64_t frames_on_air() const { return frames_; }
  /// Paper-accounted bits (declared override or size model).
  [[nodiscard]] std::uint64_t bits_on_air() const { return bits_; }
  /// Codec-true encoded frame bits actually serialized on air.
  [[nodiscard]] std::uint64_t encoded_bits_on_air() const { return encoded_bits_; }
  [[nodiscard]] std::uint64_t copies_dropped() const { return drop_copies_; }
  [[nodiscard]] std::uint64_t bits_dropped() const { return drop_bits_; }
  [[nodiscard]] const LinkModel& link() const { return link_; }
  [[nodiscard]] const DriverConfig& config() const { return cfg_; }
  [[nodiscard]] engine::Executor& executor() { return *exec_; }

 private:
  void install(net::Network& network);
  /// `label` must be a string literal (stored by pointer in trace events).
  OpOutcome timed(const char* label, const std::function<bool(OpOutcome&)>& op);

  engine::Executor* exec_ = nullptr;
  DriverConfig cfg_;
  LinkModel link_;
  gka::GroupSession* flat_ = nullptr;
  cluster::HierarchicalSession* hier_ = nullptr;

  std::uint64_t frames_ = 0;
  std::uint64_t bits_ = 0;
  std::uint64_t encoded_bits_ = 0;
  std::uint64_t drop_copies_ = 0;
  std::uint64_t drop_bits_ = 0;

  /// Declared last: a standalone driver's executor must be destroyed first
  /// (its teardown aborts any still-parked run, which may unwind through
  /// frames referencing link_/cfg_ above).
  std::unique_ptr<engine::Executor> owned_exec_;
};

}  // namespace idgka::sim
