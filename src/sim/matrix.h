// Scenario-matrix runner: one comparative sweep over {topology x link
// class x loss model x churn level}.
//
// Each cell of the matrix is one ScenarioRunner run of the same group
// under a different environment: a link-class preset (MANET two-hop radio,
// LEO ~30 ms, GEO ~250 ms — each carrying its own round timeout, since a
// 60 ms default timeout under a 250 ms propagation delay would time every
// round out), a loss model (clean / independent uniform / Gilbert-Elliott
// bursty at the same average), and a churn level (a deterministically
// generated join/leave/partition/merge trace). The runner captures, per
// cell, the scenario metrics, the latency percentiles over every completed
// operation, and the obs::Registry snapshot *delta* scoped to the cell —
// so per-link drop counters and per-group rekey retries land in the cell
// that caused them even though the registry is process-global.
//
// The report serializes to deterministic JSON (same seed -> byte-identical
// bytes; pinned by sim_matrix_test) and to a markdown summary table, and
// compare() diffs a current report against a committed baseline with
// configurable regression thresholds — the CI matrix smoke job fails on
// threshold breaches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_reader.h"
#include "obs/registry.h"
#include "sim/scenario.h"

namespace idgka::sim {

/// A named link-environment preset: channel parameters plus the round
/// timeout that makes reliable rounds viable on that channel.
struct LinkClass {
  std::string name;
  LinkConfig link;
  SimTime round_timeout_us = 60'000;

  /// Paper radio: 100 kbps, 2 ms MAC+propagation, light jitter.
  [[nodiscard]] static LinkClass manet();
  /// Low-earth-orbit relay: ~30 ms one-way propagation.
  [[nodiscard]] static LinkClass leo();
  /// Geostationary relay: ~250 ms one-way propagation; rounds need a
  /// timeout well above the worst-case copy delay.
  [[nodiscard]] static LinkClass geo();
  [[nodiscard]] static std::vector<LinkClass> all();
};

/// How loss is drawn on top of a link class's delay model.
struct LossModel {
  std::string name;
  /// Stationary average loss probability; must be in [0, 0.4).
  double average_loss = 0.0;
  /// false: independent uniform loss at `average_loss` per copy;
  /// true: Gilbert-Elliott bursts (mean burst 4 copies) at the same
  /// stationary average.
  bool bursty = false;

  /// Overlays this loss model on a link class's delay parameters.
  [[nodiscard]] LinkConfig apply(const LinkConfig& base) const;
};

/// A named churn intensity: `events` membership events are generated at
/// evenly spaced virtual timestamps (leave / join alternating, with every
/// fourth pair widened into a partition + merge batch).
struct ChurnLevel {
  std::string name;
  std::size_t events = 0;
};

struct MatrixConfig {
  std::string name = "matrix";
  std::uint64_t seed = 1;
  std::size_t members = 12;
  gka::SecurityProfile profile = gka::SecurityProfile::kTiny;
  SimTime duration_us = 120 * kUsPerSec;
  /// Hierarchical cells shard with these bounds (scheme applies to flat
  /// cells too); small bounds so matrix-sized groups actually shard.
  cluster::ClusterConfig cluster = [] {
    cluster::ClusterConfig c;
    c.min_cluster = 2;
    c.max_cluster = 8;
    return c;
  }();

  std::vector<Topology> topologies = {Topology::kFlat, Topology::kHierarchical};
  std::vector<LinkClass> link_classes = LinkClass::all();
  std::vector<LossModel> loss_models = {{"clean", 0.0, false},
                                        {"uniform10", 0.10, false},
                                        {"bursty10", 0.10, true}};
  std::vector<ChurnLevel> churn_levels = {{"calm", 2}, {"churny", 8}};
};

/// One cell's results: scenario metrics + scoped registry delta + latency
/// percentiles over every completed operation (form included).
struct MatrixCell {
  std::string id;  ///< "topology/link/loss/churn"
  std::string topology;
  std::string link_class;
  std::string loss_model;
  std::string churn;

  Metrics metrics;
  obs::Snapshot delta;  ///< registry increments attributable to this cell

  SimTime latency_p50_us = 0;
  SimTime latency_p90_us = 0;
  SimTime latency_p99_us = 0;
  SimTime latency_max_us = 0;
};

struct MatrixReport {
  std::string name;
  std::uint64_t seed = 0;
  std::size_t members = 0;
  std::vector<MatrixCell> cells;

  /// Deterministic JSON: same config + seed -> byte-identical output.
  [[nodiscard]] std::string to_json() const;
  /// Markdown summary: one row per cell plus per-cell labeled-delta notes.
  [[nodiscard]] std::string to_markdown() const;
};

class MatrixRunner {
 public:
  explicit MatrixRunner(MatrixConfig config);

  /// Runs every cell sequentially (each under its own ScopedSnapshotDelta)
  /// and returns the comparative report.
  [[nodiscard]] MatrixReport run();

  /// The deterministic churn trace a cell with `level` runs; exposed for
  /// tests and for anyone replaying a single cell.
  [[nodiscard]] static std::vector<TraceEvent> churn_trace(const ChurnLevel& level,
                                                           const MatrixConfig& cfg);

 private:
  MatrixConfig cfg_;
};

// ------------------------------------------------------- baseline compare

/// Regression thresholds for compare(); percentages are relative to the
/// baseline value (a 0 baseline regresses only via `absolute_slack_us`).
struct CompareThresholds {
  /// Max allowed growth of latency percentiles (p50/p90/p99), in percent.
  double latency_pct = 10.0;
  /// Latency growth below this many microseconds never regresses (guards
  /// tiny baselines against percentage noise).
  SimTime latency_slack_us = 2'000;
  /// Max allowed growth of drop / retry counters, in percent.
  double counter_pct = 25.0;
  double counter_slack = 4.0;
  /// Convergence (completed/attempted) must not fall below baseline minus
  /// this many percentage points.
  double convergence_drop_pct = 0.0;
};

struct Regression {
  std::string cell;
  std::string field;
  double baseline = 0.0;
  double current = 0.0;
};

struct CompareResult {
  std::vector<Regression> regressions;
  std::vector<std::string> missing_cells;  ///< in baseline, not in current
  std::vector<std::string> new_cells;      ///< in current, not in baseline
  [[nodiscard]] bool ok() const { return regressions.empty() && missing_cells.empty(); }
  [[nodiscard]] std::string to_markdown() const;
};

/// Compares two parsed MatrixReport JSON documents cell-by-cell (matched
/// on id). Throws std::invalid_argument when either document is not a
/// matrix report.
[[nodiscard]] CompareResult compare(const obs::json::JsonValue& baseline,
                                    const obs::json::JsonValue& current,
                                    const CompareThresholds& thresholds = {});

}  // namespace idgka::sim
