#include "sim/scheduler.h"

namespace idgka::sim {

void Scheduler::at(SimTime when, std::function<void()> fn) {
  queue_.emplace(std::make_pair(when < now_ ? now_ : when, seq_++), std::move(fn));
}

void Scheduler::run_until(SimTime horizon) {
  while (!queue_.empty() && queue_.begin()->first.first <= horizon) {
    auto node = queue_.extract(queue_.begin());
    if (node.key().first > now_) now_ = node.key().first;
    ++executed_;
    node.mapped()();
  }
  if (horizon > now_) now_ = horizon;
}

SimTime Scheduler::run_all() {
  while (!queue_.empty()) {
    auto node = queue_.extract(queue_.begin());
    if (node.key().first > now_) now_ = node.key().first;
    ++executed_;
    node.mapped()();
  }
  return now_;
}

}  // namespace idgka::sim
