#include "sim/scheduler.h"

namespace idgka::sim {

void Scheduler::at(SimTime when, std::function<void()> fn) {
  const SimTime n = now();
  queue_.emplace(std::make_pair(when < n ? n : when, seq_++), std::move(fn));
}

void Scheduler::run_until(SimTime horizon) {
  while (!queue_.empty() && queue_.begin()->first.first <= horizon) {
    auto node = queue_.extract(queue_.begin());
    advance_to(node.key().first);
    ++executed_;
    node.mapped()();
  }
  advance_to(horizon);
}

SimTime Scheduler::run_all() {
  while (!queue_.empty()) {
    auto node = queue_.extract(queue_.begin());
    advance_to(node.key().first);
    ++executed_;
    node.mapped()();
  }
  return now();
}

}  // namespace idgka::sim
