#include "sim/driver.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "obs/trace.h"

namespace idgka::sim {

namespace {

void validate(const DriverConfig& cfg) {
  if (cfg.round_timeout_us == 0) {
    throw std::invalid_argument("ProtocolDriver: round_timeout_us must be > 0");
  }
  if (cfg.retry_cap < 0) throw std::invalid_argument("ProtocolDriver: retry_cap < 0");
}

}  // namespace

ProtocolDriver::ProtocolDriver(Scheduler& scheduler, const DriverConfig& config,
                               std::uint64_t seed)
    : cfg_(config),
      link_(config.link, seed),
      owned_exec_(std::make_unique<engine::Executor>(scheduler)) {
  exec_ = owned_exec_.get();
  validate(cfg_);
}

ProtocolDriver::ProtocolDriver(engine::Executor& executor, const DriverConfig& config,
                               std::uint64_t seed)
    : exec_(&executor), cfg_(config), link_(config.link, seed) {
  validate(cfg_);
}

void ProtocolDriver::install(net::Network& network) {
  // The token is owned by the transport closure, which the network owns:
  // when the network is torn down mid-flight (head-tier rebuilds), pending
  // deposit events see the expired token and become no-ops instead of
  // touching a dead network.
  auto token = std::make_shared<int>(0);
  net::Network* net = &network;
  network.set_transport([this, net, token](const wire::Frame& frame, std::uint32_t to) {
    // The link serializes the actual frame bytes; paper-accounted bits are
    // for the energy model only. Capturing the frame in the deposit event
    // is an O(1) buffer reference — every in-flight copy of a broadcast
    // shares one encoding. The event is attributed to the posting run so a
    // resume_on_arrival await can fire the moment the channel goes quiet.
    const LinkModel::Verdict verdict = link_.transmit(frame.size_bits(), frame.sender(), to);
    if (verdict.dropped) {
      net->record_drop(frame, to);
      return;
    }
    exec_->post(verdict.delay_us,
                [net, frame, to, weak = std::weak_ptr<int>(token)] {
                  if (weak.expired()) return;
                  net->deposit(frame, to);
                },
                engine::ProtocolRun::current());
  });
  network.set_round_barrier([this] {
    if (engine::ProtocolRun* run = engine::ProtocolRun::current()) {
      run->await_round(cfg_.round_timeout_us, cfg_.resume_on_arrival);
    } else {
      // No engine on this thread (an op invoked outside any driver/run —
      // e.g. direct session calls in tests): advance the clock directly.
      Scheduler& sched = exec_->scheduler();
      sched.run_until(sched.now() + cfg_.round_timeout_us);
    }
  });
  network.set_retry_cap(cfg_.retry_cap);
  network.set_frame_sniffer([this](const wire::Frame& frame) {
    ++frames_;
    bits_ += frame.accounted_bits();
    encoded_bits_ += frame.size_bits();
  });
  network.set_drop_observer([this](const wire::Frame& frame, std::uint32_t) {
    ++drop_copies_;
    drop_bits_ += frame.accounted_bits();
  });
}

void ProtocolDriver::attach(gka::GroupSession& session) {
  if (flat_ != nullptr || hier_ != nullptr) {
    throw std::logic_error("ProtocolDriver: already attached");
  }
  flat_ = &session;
  flat_->set_network_hook([this](net::Network& network) { install(network); });
}

void ProtocolDriver::attach(cluster::HierarchicalSession& session) {
  if (flat_ != nullptr || hier_ != nullptr) {
    throw std::logic_error("ProtocolDriver: already attached");
  }
  hier_ = &session;
  hier_->set_network_hook([this](net::Network& network) { install(network); });
}

OpOutcome ProtocolDriver::timed(const char* label,
                               const std::function<bool(OpOutcome&)>& op) {
  if (flat_ == nullptr && hier_ == nullptr) {
    throw std::logic_error("ProtocolDriver: no session attached");
  }
  OpOutcome outcome;
  const auto body = [this, label, &op, &outcome](engine::ProtocolRun& run) {
#if IDGKA_OBS
    // Span begins/ends on the run thread while it has the floor, so the
    // virtual timestamps bracket exactly [start_us, end_us].
    const obs::Span span(label, "sim");
#else
    (void)label;
#endif
    outcome.start_us = run.now();
    try {
      outcome.success = op(outcome);
    } catch (const std::runtime_error&) {
      // A protocol run exhausted its retransmission budget (or a dependent
      // leaf/tier rekey did). The clock still advanced; report failure.
      outcome.success = false;
    }
    outcome.end_us = run.now();
  };
  if (engine::ProtocolRun* run = engine::ProtocolRun::current()) {
    // Already hosted (a multi-group scenario script): execute inline on
    // the calling run; its awaits interleave with other registered runs.
    body(*run);
  } else {
    // Plain-thread call: host the operation as a fresh ProtocolRun and
    // drive the engine until it (and any sibling runs) completes.
    exec_->submit("op", body);
    exec_->drain();
  }
  return outcome;
}

OpOutcome ProtocolDriver::form() {
  return timed("sim.op.form", [this](OpOutcome& out) {
    if (flat_ != nullptr) {
      const gka::RunResult result = flat_->form();
      out.rounds = result.rounds;
      out.retransmissions = result.retransmissions;
      return result.success;
    }
    return hier_->form().success;
  });
}

OpOutcome ProtocolDriver::join(std::uint32_t id) {
  return timed("sim.op.join", [this, id](OpOutcome& out) {
    if (flat_ != nullptr) {
      const gka::RunResult result = flat_->join(id);
      out.rounds = result.rounds;
      out.retransmissions = result.retransmissions;
      return result.success;
    }
    return hier_->join(id).success;
  });
}

OpOutcome ProtocolDriver::leave(std::uint32_t id) {
  return timed("sim.op.leave", [this, id](OpOutcome& out) {
    if (flat_ != nullptr) {
      const gka::RunResult result = flat_->leave(id);
      out.rounds = result.rounds;
      out.retransmissions = result.retransmissions;
      return result.success;
    }
    return hier_->leave(id).success;
  });
}

OpOutcome ProtocolDriver::partition(const std::vector<std::uint32_t>& ids) {
  return timed("sim.op.partition", [this, &ids](OpOutcome& out) {
    if (flat_ != nullptr) {
      const gka::RunResult result = flat_->partition(ids);
      out.rounds = result.rounds;
      out.retransmissions = result.retransmissions;
      return result.success;
    }
    return hier_->partition(ids).success;
  });
}

OpOutcome ProtocolDriver::admit(const std::vector<std::uint32_t>& ids) {
  return timed("sim.op.admit", [this, &ids](OpOutcome& out) {
    if (flat_ != nullptr) {
      bool all = true;
      for (const std::uint32_t id : ids) {
        const gka::RunResult result = flat_->join(id);
        out.rounds += result.rounds;
        out.retransmissions += result.retransmissions;
        all = all && result.success;
      }
      return all;
    }
    // One rekey round for the whole batch: queue everything, flush once.
    // enqueue_join may auto-flush at batch capacity; that still yields at
    // most ceil(|ids| / capacity) rekeys instead of |ids|.
    bool all = true;
    for (const std::uint32_t id : ids) {
      if (const auto summary = hier_->enqueue_join(id)) all = all && summary->success;
    }
    const cluster::EventSummary final_summary = hier_->flush();
    return all && final_summary.success;
  });
}

std::size_t ProtocolDriver::size() const {
  return flat_ != nullptr ? flat_->size() : hier_->size();
}

bool ProtocolDriver::contains(std::uint32_t id) const {
  if (flat_ != nullptr) {
    const auto ids = flat_->member_ids();
    return std::find(ids.begin(), ids.end(), id) != ids.end();
  }
  return hier_->contains(id);
}

std::vector<std::uint32_t> ProtocolDriver::member_ids() const {
  return flat_ != nullptr ? flat_->member_ids() : hier_->member_ids();
}

bool ProtocolDriver::agreed() const {
  if (flat_ != nullptr) return flat_->has_key();
  return hier_->all_members_agree();
}

energy::Ledger ProtocolDriver::member_ledger(std::uint32_t id) const {
  if (flat_ != nullptr) return flat_->ledger(id);
  return hier_->member_ledger(id);
}

std::size_t ProtocolDriver::cluster_count() const {
  return flat_ != nullptr ? 1 : hier_->cluster_count();
}

}  // namespace idgka::sim
