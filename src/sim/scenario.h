// Declarative scenario runner: churn traces + mobility over the sim engine.
//
// A Scenario owns everything a run needs — authority, session (flat or
// hierarchical), scheduler, timed driver, batteries — so a run is a pure
// function of its config: two runs of the same config emit bit-identical
// metrics JSON.
//
// Membership churn comes from two composable sources, applied in timestamp
// order:
//   * an explicit trace of events (join/leave/partition/merge-style batch
//     re-admission at virtual timestamps);
//   * random-waypoint mobility: every node walks a square field at constant
//     speed toward uniformly re-drawn waypoints; nodes outside the base
//     station's radio range drop out of the group and re-join when they
//     wander back in. Evaluated at a fixed tick.
// Batteries are sampled after every operation and at every tick; a node
// whose battery depletes dies and is removed from the group (one more
// rekey), and first-node-death time is reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "gka/params.h"
#include "sim/battery.h"
#include "sim/driver.h"
#include "sim/metrics.h"

namespace idgka::sim {

enum class Topology { kFlat, kHierarchical };

/// One declarative churn event.
struct TraceEvent {
  enum class Kind { kJoin, kLeave, kPartition, kMerge };
  SimTime at_us = 0;
  Kind kind = Kind::kJoin;
  /// kJoin/kLeave use ids.front(); kPartition departs the batch at once;
  /// kMerge (re-)admits the batch at once (a departed subgroup coming back
  /// into radio contact).
  std::vector<std::uint32_t> ids;
};

struct WaypointConfig {
  bool enabled = false;
  /// Square field side (metres); the base station sits at the centre.
  double field_m = 1000.0;
  /// Radio range from the base station; outside = out of the group.
  double range_m = 600.0;
  double speed_mps = 5.0;
  /// Mobility / battery-sampling tick.
  SimTime tick_us = 5 * kUsPerSec;
};

struct ScenarioConfig {
  std::string name = "scenario";
  Topology topology = Topology::kHierarchical;
  gka::SecurityProfile profile = gka::SecurityProfile::kTiny;
  std::size_t initial_members = 16;
  std::uint32_t base_id = 1000;
  std::uint64_t seed = 1;
  SimTime duration_us = 60 * kUsPerSec;
  /// End the run at the first battery death (sensor-lifetime experiments).
  bool stop_on_first_death = false;

  DriverConfig driver;
  /// Hierarchical sharding knobs; `cluster.scheme` also selects the flat
  /// scheme. Leave `cluster.loss_rate` at 0 — the link model owns loss.
  cluster::ClusterConfig cluster;
  PowerConfig power;
  WaypointConfig waypoint;
  /// Explicit churn; sorted by at_us internally (stable for equal stamps).
  std::vector<TraceEvent> trace;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioConfig config);

  /// Executes the scenario once and returns its metrics.
  [[nodiscard]] Metrics run();

 private:
  ScenarioConfig cfg_;
};

/// Multi-group scenario: M independent clusters — each with its own
/// authority, session, timed driver and link RNG — run overlapping churn
/// traces on ONE virtual clock. Every group is an engine::ProtocolRun on a
/// shared Executor, so rounds of different groups interleave by
/// virtual-time events (and execute in parallel across the worker pool
/// when their wakes coincide). Results are deterministic under the seed
/// for any IDGKA_THREADS value: each group owns all of its mutable state,
/// and the shared clock orders wakes FIFO per timestamp.
struct MultiGroupConfig {
  std::string name = "multi";
  std::size_t groups = 4;
  Topology topology = Topology::kFlat;
  gka::SecurityProfile profile = gka::SecurityProfile::kTiny;
  std::size_t members_per_group = 8;
  std::uint32_t base_id = 1000;
  /// Id-space stride between groups: group g's members start at
  /// base_id + g * id_stride. Must comfortably exceed members_per_group
  /// plus any joiner offsets used in the trace.
  std::uint32_t id_stride = 100'000;
  std::uint64_t seed = 1;
  /// Executor scheduler shards (0 = one per worker thread, the default).
  /// Metrics are bit-identical for every value — tests pin 1 vs many.
  std::size_t shards = 0;

  DriverConfig driver;
  /// Hierarchical sharding knobs; `cluster.scheme` also selects the flat
  /// scheme. Leave `cluster.loss_rate` at 0 — the link model owns loss.
  cluster::ClusterConfig cluster;

  /// Template churn trace every group runs in its own id space: event ids
  /// are OFFSETS (offset < members_per_group names an initial member;
  /// larger offsets name joiners), mapped to base_id + g*id_stride +
  /// offset for group g. Sorted by at_us internally (stable).
  std::vector<TraceEvent> trace;
  /// Group g starts (forms and fires its trace) shifted by g * stagger_us
  /// — overlapping rather than identical schedules across groups.
  SimTime stagger_us = 0;

  // --- Per-group derivations (single source of truth; the concurrency
  // --- bench replays these to build its sequential baseline, so the two
  // --- legs run identical RNG streams) ---
  /// Distinct authority parameters/credentials per group.
  [[nodiscard]] std::uint64_t authority_seed(std::size_t g) const {
    return seed + 0x9e3779b97f4a7c15ULL * (g + 1);
  }
  /// Link-model RNG stream of group g's driver.
  [[nodiscard]] std::uint64_t driver_seed(std::size_t g) const {
    return seed ^ (0x6d67727670ULL + g);
  }
  /// Member-DRBG seed of group g's session.
  [[nodiscard]] std::uint64_t session_seed(std::size_t g) const { return seed + g; }
  /// First member id of group g's id space.
  [[nodiscard]] std::uint32_t group_base_id(std::size_t g) const {
    return base_id + static_cast<std::uint32_t>(g) * id_stride;
  }
};

class MultiGroupRunner {
 public:
  explicit MultiGroupRunner(MultiGroupConfig config);

  /// Executes all groups to completion on one clock and returns per-group
  /// + aggregate metrics.
  [[nodiscard]] MultiGroupMetrics run();

 private:
  MultiGroupConfig cfg_;
};

}  // namespace idgka::sim
