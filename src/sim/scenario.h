// Declarative scenario runner: churn traces + mobility over the sim engine.
//
// A Scenario owns everything a run needs — authority, session (flat or
// hierarchical), scheduler, timed driver, batteries — so a run is a pure
// function of its config: two runs of the same config emit bit-identical
// metrics JSON.
//
// Membership churn comes from two composable sources, applied in timestamp
// order:
//   * an explicit trace of events (join/leave/partition/merge-style batch
//     re-admission at virtual timestamps);
//   * random-waypoint mobility: every node walks a square field at constant
//     speed toward uniformly re-drawn waypoints; nodes outside the base
//     station's radio range drop out of the group and re-join when they
//     wander back in. Evaluated at a fixed tick.
// Batteries are sampled after every operation and at every tick; a node
// whose battery depletes dies and is removed from the group (one more
// rekey), and first-node-death time is reported.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "gka/params.h"
#include "sim/battery.h"
#include "sim/driver.h"
#include "sim/metrics.h"

namespace idgka::sim {

enum class Topology { kFlat, kHierarchical };

/// One declarative churn event.
struct TraceEvent {
  enum class Kind { kJoin, kLeave, kPartition, kMerge };
  SimTime at_us = 0;
  Kind kind = Kind::kJoin;
  /// kJoin/kLeave use ids.front(); kPartition departs the batch at once;
  /// kMerge (re-)admits the batch at once (a departed subgroup coming back
  /// into radio contact).
  std::vector<std::uint32_t> ids;
};

struct WaypointConfig {
  bool enabled = false;
  /// Square field side (metres); the base station sits at the centre.
  double field_m = 1000.0;
  /// Radio range from the base station; outside = out of the group.
  double range_m = 600.0;
  double speed_mps = 5.0;
  /// Mobility / battery-sampling tick.
  SimTime tick_us = 5 * kUsPerSec;
};

struct ScenarioConfig {
  std::string name = "scenario";
  Topology topology = Topology::kHierarchical;
  gka::SecurityProfile profile = gka::SecurityProfile::kTiny;
  std::size_t initial_members = 16;
  std::uint32_t base_id = 1000;
  std::uint64_t seed = 1;
  SimTime duration_us = 60 * kUsPerSec;
  /// End the run at the first battery death (sensor-lifetime experiments).
  bool stop_on_first_death = false;

  DriverConfig driver;
  /// Hierarchical sharding knobs; `cluster.scheme` also selects the flat
  /// scheme. Leave `cluster.loss_rate` at 0 — the link model owns loss.
  cluster::ClusterConfig cluster;
  PowerConfig power;
  WaypointConfig waypoint;
  /// Explicit churn; sorted by at_us internally (stable for equal stamps).
  std::vector<TraceEvent> trace;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioConfig config);

  /// Executes the scenario once and returns its metrics.
  [[nodiscard]] Metrics run();

 private:
  ScenarioConfig cfg_;
};

}  // namespace idgka::sim
