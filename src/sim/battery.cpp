#include "sim/battery.h"

#include <stdexcept>

namespace idgka::sim {

BatteryBank::BatteryBank(PowerConfig config) : cfg_(config) {
  if (cfg_.cpu == nullptr || cfg_.radio == nullptr) {
    throw std::invalid_argument("BatteryBank: cpu/radio profile must be set");
  }
  if (cfg_.capacity_mj < 0.0 || cfg_.idle_mw < 0.0) {
    throw std::invalid_argument("BatteryBank: capacity/idle must be >= 0");
  }
}

void BatteryBank::add_node(std::uint32_t id, SimTime now) {
  auto [it, inserted] = cells_.try_emplace(id);
  if (inserted) it->second.last_us = now;
}

bool BatteryBank::settle(Cell& cell, SimTime now) {
  if (!cell.alive) return false;
  if (now > cell.last_us) {
    cell.idle_mj +=
        cfg_.idle_mw * (static_cast<double>(now - cell.last_us) / static_cast<double>(kUsPerSec));
    cell.last_us = now;
  }
  if (cfg_.depletes() &&
      cell.idle_mj + cell.banked_mj + cell.ledger_mj >= cfg_.capacity_mj) {
    cell.alive = false;
    ++deaths_;
    if (!first_death_ || now < *first_death_) first_death_ = now;
    return true;
  }
  return false;
}

bool BatteryBank::update(std::uint32_t id, const energy::Ledger& ledger, SimTime now) {
  const auto it = cells_.find(id);
  if (it == cells_.end()) throw std::invalid_argument("BatteryBank: unknown node");
  Cell& cell = it->second;
  const double mj = energy::ledger_energy_mj(ledger, *cfg_.cpu, *cfg_.radio);
  // A ledger that shrank means the member's per-session state was rebuilt
  // (a flat session drops departed ledgers, so a rejoin restarts near
  // zero); bank exactly the lost difference so the integral stays
  // continuous and monotonic without double-counting the share the fresh
  // ledger still holds.
  if (mj + 1e-9 < cell.ledger_mj) cell.banked_mj += cell.ledger_mj - mj;
  cell.ledger_mj = mj;
  return settle(cell, now);
}

bool BatteryBank::tick(std::uint32_t id, SimTime now) {
  const auto it = cells_.find(id);
  if (it == cells_.end()) throw std::invalid_argument("BatteryBank: unknown node");
  return settle(it->second, now);
}

bool BatteryBank::alive(std::uint32_t id) const {
  const auto it = cells_.find(id);
  if (it == cells_.end()) throw std::invalid_argument("BatteryBank: unknown node");
  return it->second.alive;
}

double BatteryBank::consumed_mj(std::uint32_t id) const {
  const auto it = cells_.find(id);
  if (it == cells_.end()) throw std::invalid_argument("BatteryBank: unknown node");
  const Cell& cell = it->second;
  return cell.idle_mj + cell.banked_mj + cell.ledger_mj;
}

double BatteryBank::total_consumed_mj() const {
  double total = 0.0;
  for (const auto& [id, cell] : cells_) {
    total += cell.idle_mj + cell.banked_mj + cell.ledger_mj;
  }
  return total;
}

}  // namespace idgka::sim
