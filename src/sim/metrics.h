// Per-run scenario metrics and their deterministic JSON serialization.
//
// Everything here is a pure function of the scenario config and seeds: no
// wall-clock time, no pointers, integer microsecond timestamps, and doubles
// printed with a fixed format — so two same-seed runs emit bit-identical
// JSON (which the determinism test and the bench assert).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace idgka::sim {

/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample; 0 when
/// empty.
[[nodiscard]] SimTime percentile_us(std::vector<SimTime> sample, double q);

struct Metrics {
  std::string scenario;
  std::string topology;
  std::uint64_t seed = 0;

  std::size_t members_initial = 0;
  std::size_t members_final = 0;
  std::size_t clusters_final = 0;  ///< 1 for flat topologies

  /// Initial key agreement.
  bool form_success = false;
  SimTime form_latency_us = 0;

  /// Membership-event rekeys (everything after form).
  std::size_t rekeys_attempted = 0;
  std::size_t rekeys_completed = 0;
  std::size_t events_join = 0;
  std::size_t events_leave = 0;
  std::size_t events_partition = 0;
  std::size_t events_merge = 0;
  /// Latency of each completed rekey, in event order.
  std::vector<SimTime> rekey_latencies_us;

  /// On-air accounting (per transmission, not per copy) and per-copy drops.
  /// bits_on_air is paper-accounted; encoded_bits_on_air is the codec-true
  /// total of the canonical frames actually serialized.
  std::uint64_t frames_on_air = 0;
  std::uint64_t bits_on_air = 0;
  std::uint64_t encoded_bits_on_air = 0;
  std::uint64_t copies_dropped = 0;
  std::uint64_t bits_dropped = 0;

  /// Battery integration.
  std::size_t deaths = 0;
  std::optional<SimTime> first_death_us;
  double energy_total_mj = 0.0;

  /// Crypto work performed by the run (mpint::op_counts deltas, covering
  /// authority setup + every protocol execution) — separates big-integer
  /// cost from event-loop cost in bench trajectories.
  std::uint64_t crypto_exps = 0;
  std::uint64_t crypto_mod_muls = 0;

  bool all_members_agree = false;
  SimTime end_time_us = 0;

  [[nodiscard]] double convergence() const {
    return rekeys_attempted == 0
               ? 1.0
               : static_cast<double>(rekeys_completed) / static_cast<double>(rekeys_attempted);
  }

  /// One-line deterministic JSON object.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace idgka::sim
