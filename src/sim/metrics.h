// Per-run scenario metrics and their deterministic JSON serialization.
//
// Everything here is a pure function of the scenario config and seeds: no
// wall-clock time, no pointers, integer microsecond timestamps, and doubles
// printed with a fixed format — so two same-seed runs emit bit-identical
// JSON (which the determinism test and the bench assert).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace idgka::sim {

/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample; 0 when
/// empty. Sorts a copy internally — when taking several percentiles of one
/// sample, sort once and use percentile_sorted_us instead.
[[nodiscard]] SimTime percentile_us(const std::vector<SimTime>& sample, double q);

/// Same, over an already-sorted (ascending) sample — no copy, no sort.
[[nodiscard]] SimTime percentile_sorted_us(const std::vector<SimTime>& sorted_sample,
                                           double q);

struct Metrics {
  std::string scenario;
  std::string topology;
  std::uint64_t seed = 0;

  std::size_t members_initial = 0;
  std::size_t members_final = 0;
  std::size_t clusters_final = 0;  ///< 1 for flat topologies

  /// Initial key agreement.
  bool form_success = false;
  SimTime form_latency_us = 0;

  /// Membership-event rekeys (everything after form).
  std::size_t rekeys_attempted = 0;
  std::size_t rekeys_completed = 0;
  std::size_t events_join = 0;
  std::size_t events_leave = 0;
  std::size_t events_partition = 0;
  std::size_t events_merge = 0;
  /// Latency of each completed rekey, in event order.
  std::vector<SimTime> rekey_latencies_us;
  /// Per-operation latency samples feeding the JSON `latency` block:
  /// `all` covers every completed operation including form; the per-kind
  /// vectors split the rekeys by membership-event kind.
  struct OpLatencies {
    std::vector<SimTime> all;
    std::vector<SimTime> join;
    std::vector<SimTime> leave;
    std::vector<SimTime> partition;
    std::vector<SimTime> merge;
  };
  OpLatencies op_latencies_us;

  /// On-air accounting (per transmission, not per copy) and per-copy drops.
  /// bits_on_air is paper-accounted; encoded_bits_on_air is the codec-true
  /// total of the canonical frames actually serialized.
  std::uint64_t frames_on_air = 0;
  std::uint64_t bits_on_air = 0;
  std::uint64_t encoded_bits_on_air = 0;
  std::uint64_t copies_dropped = 0;
  std::uint64_t bits_dropped = 0;

  /// Battery integration.
  std::size_t deaths = 0;
  std::optional<SimTime> first_death_us;
  double energy_total_mj = 0.0;

  /// Crypto work performed by the run (mpint::op_counts deltas, covering
  /// authority setup + every protocol execution) — separates big-integer
  /// cost from event-loop cost in bench trajectories.
  std::uint64_t crypto_exps = 0;
  std::uint64_t crypto_mod_muls = 0;
  std::uint64_t crypto_mod_sqrs = 0;
  std::uint64_t crypto_multi_exps = 0;

  bool all_members_agree = false;
  SimTime end_time_us = 0;

  [[nodiscard]] double convergence() const {
    return rekeys_attempted == 0
               ? 1.0
               : static_cast<double>(rekeys_completed) / static_cast<double>(rekeys_attempted);
  }

  /// One-line deterministic JSON object.
  [[nodiscard]] std::string to_json() const;
};

/// Metrics of one multi-group run: M independent clusters with overlapping
/// churn traces interleaved by the engine on one virtual clock. Per-group
/// metrics are ordinary Metrics (deterministic regardless of worker
/// count); the aggregate block sums them and adds engine bookkeeping.
struct MultiGroupMetrics {
  std::string scenario;
  std::uint64_t seed = 0;
  std::vector<Metrics> per_group;

  /// Engine bookkeeping: total ProtocolRun resumptions and the widest
  /// same-instant batch (> 1 proves rounds of independent groups
  /// genuinely interleaved).
  std::uint64_t engine_resumes = 0;
  std::size_t max_concurrent_runs = 0;

  /// Crypto work across the whole run (all groups + authority setup).
  std::uint64_t crypto_exps = 0;
  std::uint64_t crypto_mod_muls = 0;
  std::uint64_t crypto_mod_sqrs = 0;
  std::uint64_t crypto_multi_exps = 0;
  /// Clock value when the last group settled.
  SimTime end_time_us = 0;

  // --- Aggregates over per_group ---
  [[nodiscard]] std::size_t rekeys_attempted() const;
  [[nodiscard]] std::size_t rekeys_completed() const;
  [[nodiscard]] double convergence() const;
  [[nodiscard]] bool all_groups_agree() const;
  /// Every group's per-operation latency samples, in group order.
  [[nodiscard]] std::vector<SimTime> all_op_latencies_us() const;

  /// One-line deterministic JSON: aggregate block + per-group array.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace idgka::sim
