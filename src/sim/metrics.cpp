#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace idgka::sim {

namespace {

void append_kv(std::string& out, const char* key, const std::string& value, bool quote) {
  out += '"';
  out += key;
  out += "\":";
  if (quote) out += '"';
  out += value;
  if (quote) out += '"';
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// `{"count":N,"p50_us":...,"p99_us":...}` over one latency sample.
void append_percentile_block(std::string& out, const std::vector<SimTime>& sample) {
  out += '{';
  append_kv(out, "count", std::to_string(sample.size()), false);
  out += ',';
  append_kv(out, "p50_us", std::to_string(percentile_us(sample, 50.0)), false);
  out += ',';
  append_kv(out, "p99_us", std::to_string(percentile_us(sample, 99.0)), false);
  out += '}';
}

}  // namespace

SimTime percentile_us(std::vector<SimTime> sample, double q) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const double rank = q / 100.0 * static_cast<double>(sample.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sample.size()) idx = sample.size() - 1;
  return sample[idx];
}

std::string Metrics::to_json() const {
  std::string out = "{";
  append_kv(out, "scenario", scenario, true);
  out += ',';
  append_kv(out, "topology", topology, true);
  out += ',';
  append_kv(out, "seed", std::to_string(seed), false);
  out += ",\"members\":{";
  append_kv(out, "initial", std::to_string(members_initial), false);
  out += ',';
  append_kv(out, "final", std::to_string(members_final), false);
  out += ',';
  append_kv(out, "clusters", std::to_string(clusters_final), false);
  out += "},\"form\":{";
  append_kv(out, "success", form_success ? "true" : "false", false);
  out += ',';
  append_kv(out, "latency_us", std::to_string(form_latency_us), false);
  out += "},\"rekeys\":{";
  append_kv(out, "attempted", std::to_string(rekeys_attempted), false);
  out += ',';
  append_kv(out, "completed", std::to_string(rekeys_completed), false);
  out += ',';
  append_kv(out, "convergence", fmt_double(convergence()), false);
  out += ',';
  append_kv(out, "join", std::to_string(events_join), false);
  out += ',';
  append_kv(out, "leave", std::to_string(events_leave), false);
  out += ',';
  append_kv(out, "partition", std::to_string(events_partition), false);
  out += ',';
  append_kv(out, "merge", std::to_string(events_merge), false);
  out += "},\"latency_us\":{";
  append_kv(out, "count", std::to_string(rekey_latencies_us.size()), false);
  out += ',';
  append_kv(out, "p50", std::to_string(percentile_us(rekey_latencies_us, 50.0)), false);
  out += ',';
  append_kv(out, "p90", std::to_string(percentile_us(rekey_latencies_us, 90.0)), false);
  out += ',';
  append_kv(out, "p99", std::to_string(percentile_us(rekey_latencies_us, 99.0)), false);
  out += ',';
  append_kv(out, "max", std::to_string(percentile_us(rekey_latencies_us, 100.0)), false);
  // Per-operation latency percentiles: `all` spans every completed
  // operation including form (whose start/end stamps stay in the `form`
  // block above); the kind keys split the rekeys by membership event.
  out += "},\"latency\":{";
  append_kv(out, "count", std::to_string(op_latencies_us.all.size()), false);
  out += ',';
  append_kv(out, "p50_us", std::to_string(percentile_us(op_latencies_us.all, 50.0)), false);
  out += ',';
  append_kv(out, "p99_us", std::to_string(percentile_us(op_latencies_us.all, 99.0)), false);
  out += ",\"join\":";
  append_percentile_block(out, op_latencies_us.join);
  out += ",\"leave\":";
  append_percentile_block(out, op_latencies_us.leave);
  out += ",\"partition\":";
  append_percentile_block(out, op_latencies_us.partition);
  out += ",\"merge\":";
  append_percentile_block(out, op_latencies_us.merge);
  out += "},\"air\":{";
  append_kv(out, "frames", std::to_string(frames_on_air), false);
  out += ',';
  append_kv(out, "bits", std::to_string(bits_on_air), false);
  out += ',';
  append_kv(out, "encoded_bits", std::to_string(encoded_bits_on_air), false);
  out += ',';
  append_kv(out, "copies_dropped", std::to_string(copies_dropped), false);
  out += ',';
  append_kv(out, "bits_dropped", std::to_string(bits_dropped), false);
  out += "},\"battery\":{";
  append_kv(out, "deaths", std::to_string(deaths), false);
  out += ',';
  append_kv(out, "first_death_us",
            first_death_us ? std::to_string(*first_death_us) : std::string("null"), false);
  out += ',';
  append_kv(out, "energy_total_mj", fmt_double(energy_total_mj), false);
  out += "},\"crypto\":{";
  append_kv(out, "exps", std::to_string(crypto_exps), false);
  out += ',';
  append_kv(out, "mod_muls", std::to_string(crypto_mod_muls), false);
  out += "},";
  append_kv(out, "all_members_agree", all_members_agree ? "true" : "false", false);
  out += ',';
  append_kv(out, "end_time_us", std::to_string(end_time_us), false);
  out += '}';
  return out;
}

std::size_t MultiGroupMetrics::rekeys_attempted() const {
  std::size_t total = 0;
  for (const Metrics& g : per_group) total += g.rekeys_attempted;
  return total;
}

std::size_t MultiGroupMetrics::rekeys_completed() const {
  std::size_t total = 0;
  for (const Metrics& g : per_group) total += g.rekeys_completed;
  return total;
}

double MultiGroupMetrics::convergence() const {
  const std::size_t attempted = rekeys_attempted();
  return attempted == 0 ? 1.0
                        : static_cast<double>(rekeys_completed()) /
                              static_cast<double>(attempted);
}

bool MultiGroupMetrics::all_groups_agree() const {
  if (per_group.empty()) return false;
  return std::all_of(per_group.begin(), per_group.end(),
                     [](const Metrics& g) { return g.all_members_agree; });
}

std::vector<SimTime> MultiGroupMetrics::all_op_latencies_us() const {
  std::vector<SimTime> all;
  for (const Metrics& g : per_group) {
    all.insert(all.end(), g.op_latencies_us.all.begin(), g.op_latencies_us.all.end());
  }
  return all;
}

std::string MultiGroupMetrics::to_json() const {
  std::uint64_t frames = 0;
  std::uint64_t bits = 0;
  std::uint64_t encoded = 0;
  std::uint64_t drops = 0;
  for (const Metrics& g : per_group) {
    frames += g.frames_on_air;
    bits += g.bits_on_air;
    encoded += g.encoded_bits_on_air;
    drops += g.copies_dropped;
  }

  std::string out = "{";
  append_kv(out, "scenario", scenario, true);
  out += ',';
  append_kv(out, "seed", std::to_string(seed), false);
  out += ',';
  append_kv(out, "groups", std::to_string(per_group.size()), false);
  out += ",\"aggregate\":{\"rekeys\":{";
  append_kv(out, "attempted", std::to_string(rekeys_attempted()), false);
  out += ',';
  append_kv(out, "completed", std::to_string(rekeys_completed()), false);
  out += ',';
  append_kv(out, "convergence", fmt_double(convergence()), false);
  out += "},\"latency\":{";
  const std::vector<SimTime> all = all_op_latencies_us();
  append_kv(out, "count", std::to_string(all.size()), false);
  out += ',';
  append_kv(out, "p50_us", std::to_string(percentile_us(all, 50.0)), false);
  out += ',';
  append_kv(out, "p90_us", std::to_string(percentile_us(all, 90.0)), false);
  out += ',';
  append_kv(out, "p99_us", std::to_string(percentile_us(all, 99.0)), false);
  out += ',';
  append_kv(out, "max_us", std::to_string(percentile_us(all, 100.0)), false);
  out += "},\"air\":{";
  append_kv(out, "frames", std::to_string(frames), false);
  out += ',';
  append_kv(out, "bits", std::to_string(bits), false);
  out += ',';
  append_kv(out, "encoded_bits", std::to_string(encoded), false);
  out += ',';
  append_kv(out, "copies_dropped", std::to_string(drops), false);
  out += "},\"engine\":{";
  append_kv(out, "resumes", std::to_string(engine_resumes), false);
  out += ',';
  append_kv(out, "max_concurrent_runs", std::to_string(max_concurrent_runs), false);
  out += "},\"crypto\":{";
  append_kv(out, "exps", std::to_string(crypto_exps), false);
  out += ',';
  append_kv(out, "mod_muls", std::to_string(crypto_mod_muls), false);
  out += "},";
  append_kv(out, "all_groups_agree", all_groups_agree() ? "true" : "false", false);
  out += ',';
  append_kv(out, "end_time_us", std::to_string(end_time_us), false);
  out += "},\"per_group\":[";
  for (std::size_t i = 0; i < per_group.size(); ++i) {
    if (i > 0) out += ',';
    out += per_group[i].to_json();
  }
  out += "]}";
  return out;
}

}  // namespace idgka::sim
