#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json_writer.h"

namespace idgka::sim {

namespace {

/// Sorted copy of a latency sample: one sort per block; every percentile
/// of the block reuses it (the by-value-per-call sort this replaced showed
/// up in bench profiles at large n).
std::vector<SimTime> sorted_copy(const std::vector<SimTime>& sample) {
  std::vector<SimTime> s = sample;
  std::sort(s.begin(), s.end());
  return s;
}

/// `{"count":N,"p50_us":...,"p99_us":...}` over one latency sample.
void append_percentile_block(obs::JsonWriter& w, const std::vector<SimTime>& sample) {
  const std::vector<SimTime> s = sorted_copy(sample);
  w.begin_object();
  w.kv("count", s.size());
  w.kv("p50_us", percentile_sorted_us(s, 50.0));
  w.kv("p99_us", percentile_sorted_us(s, 99.0));
  w.end_object();
}

}  // namespace

SimTime percentile_sorted_us(const std::vector<SimTime>& sorted_sample, double q) {
  if (sorted_sample.empty()) return 0;
  const double rank = q / 100.0 * static_cast<double>(sorted_sample.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted_sample.size()) idx = sorted_sample.size() - 1;
  return sorted_sample[idx];
}

SimTime percentile_us(const std::vector<SimTime>& sample, double q) {
  return percentile_sorted_us(sorted_copy(sample), q);
}

std::string Metrics::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("scenario", scenario);
  w.kv("topology", topology);
  w.kv("seed", seed);
  w.key("members").begin_object();
  w.kv("initial", members_initial);
  w.kv("final", members_final);
  w.kv("clusters", clusters_final);
  w.end_object();
  w.key("form").begin_object();
  w.kv("success", form_success);
  w.kv("latency_us", form_latency_us);
  w.end_object();
  w.key("rekeys").begin_object();
  w.kv("attempted", rekeys_attempted);
  w.kv("completed", rekeys_completed);
  w.kv("convergence", convergence());
  w.kv("join", events_join);
  w.kv("leave", events_leave);
  w.kv("partition", events_partition);
  w.kv("merge", events_merge);
  w.end_object();
  {
    const std::vector<SimTime> rekeys = sorted_copy(rekey_latencies_us);
    w.key("latency_us").begin_object();
    w.kv("count", rekeys.size());
    w.kv("p50", percentile_sorted_us(rekeys, 50.0));
    w.kv("p90", percentile_sorted_us(rekeys, 90.0));
    w.kv("p99", percentile_sorted_us(rekeys, 99.0));
    w.kv("max", percentile_sorted_us(rekeys, 100.0));
    w.end_object();
  }
  // Per-operation latency percentiles: `all` spans every completed
  // operation including form (whose start/end stamps stay in the `form`
  // block above); the kind keys split the rekeys by membership event.
  {
    const std::vector<SimTime> all = sorted_copy(op_latencies_us.all);
    w.key("latency").begin_object();
    w.kv("count", all.size());
    w.kv("p50_us", percentile_sorted_us(all, 50.0));
    w.kv("p99_us", percentile_sorted_us(all, 99.0));
    w.key("join");
    append_percentile_block(w, op_latencies_us.join);
    w.key("leave");
    append_percentile_block(w, op_latencies_us.leave);
    w.key("partition");
    append_percentile_block(w, op_latencies_us.partition);
    w.key("merge");
    append_percentile_block(w, op_latencies_us.merge);
    w.end_object();
  }
  w.key("air").begin_object();
  w.kv("frames", frames_on_air);
  w.kv("bits", bits_on_air);
  w.kv("encoded_bits", encoded_bits_on_air);
  w.kv("copies_dropped", copies_dropped);
  w.kv("bits_dropped", bits_dropped);
  w.end_object();
  w.key("battery").begin_object();
  w.kv("deaths", deaths);
  w.key("first_death_us");
  if (first_death_us) {
    w.value(*first_death_us);
  } else {
    w.null();
  }
  w.kv("energy_total_mj", energy_total_mj);
  w.end_object();
  w.key("crypto").begin_object();
  w.kv("exps", crypto_exps);
  w.kv("mod_muls", crypto_mod_muls);
  w.kv("mod_sqrs", crypto_mod_sqrs);
  w.kv("multi_exps", crypto_multi_exps);
  w.end_object();
  w.kv("all_members_agree", all_members_agree);
  w.kv("end_time_us", end_time_us);
  w.end_object();
  return w.take();
}

std::size_t MultiGroupMetrics::rekeys_attempted() const {
  std::size_t total = 0;
  for (const Metrics& g : per_group) total += g.rekeys_attempted;
  return total;
}

std::size_t MultiGroupMetrics::rekeys_completed() const {
  std::size_t total = 0;
  for (const Metrics& g : per_group) total += g.rekeys_completed;
  return total;
}

double MultiGroupMetrics::convergence() const {
  const std::size_t attempted = rekeys_attempted();
  return attempted == 0 ? 1.0
                        : static_cast<double>(rekeys_completed()) /
                              static_cast<double>(attempted);
}

bool MultiGroupMetrics::all_groups_agree() const {
  if (per_group.empty()) return false;
  return std::all_of(per_group.begin(), per_group.end(),
                     [](const Metrics& g) { return g.all_members_agree; });
}

std::vector<SimTime> MultiGroupMetrics::all_op_latencies_us() const {
  std::vector<SimTime> all;
  for (const Metrics& g : per_group) {
    all.insert(all.end(), g.op_latencies_us.all.begin(), g.op_latencies_us.all.end());
  }
  return all;
}

std::string MultiGroupMetrics::to_json() const {
  std::uint64_t frames = 0;
  std::uint64_t bits = 0;
  std::uint64_t encoded = 0;
  std::uint64_t drops = 0;
  for (const Metrics& g : per_group) {
    frames += g.frames_on_air;
    bits += g.bits_on_air;
    encoded += g.encoded_bits_on_air;
    drops += g.copies_dropped;
  }

  obs::JsonWriter w;
  w.begin_object();
  w.kv("scenario", scenario);
  w.kv("seed", seed);
  w.kv("groups", per_group.size());
  w.key("aggregate").begin_object();
  w.key("rekeys").begin_object();
  w.kv("attempted", rekeys_attempted());
  w.kv("completed", rekeys_completed());
  w.kv("convergence", convergence());
  w.end_object();
  {
    std::vector<SimTime> all = all_op_latencies_us();
    std::sort(all.begin(), all.end());
    w.key("latency").begin_object();
    w.kv("count", all.size());
    w.kv("p50_us", percentile_sorted_us(all, 50.0));
    w.kv("p90_us", percentile_sorted_us(all, 90.0));
    w.kv("p99_us", percentile_sorted_us(all, 99.0));
    w.kv("max_us", percentile_sorted_us(all, 100.0));
    w.end_object();
  }
  w.key("air").begin_object();
  w.kv("frames", frames);
  w.kv("bits", bits);
  w.kv("encoded_bits", encoded);
  w.kv("copies_dropped", drops);
  w.end_object();
  w.key("engine").begin_object();
  w.kv("resumes", engine_resumes);
  w.kv("max_concurrent_runs", max_concurrent_runs);
  w.end_object();
  w.key("crypto").begin_object();
  w.kv("exps", crypto_exps);
  w.kv("mod_muls", crypto_mod_muls);
  w.kv("mod_sqrs", crypto_mod_sqrs);
  w.kv("multi_exps", crypto_multi_exps);
  w.end_object();
  w.kv("all_groups_agree", all_groups_agree());
  w.kv("end_time_us", end_time_us);
  w.end_object();
  w.key("per_group").begin_array();
  for (const Metrics& g : per_group) w.raw(g.to_json());
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace idgka::sim
