#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace idgka::sim {

namespace {

void append_kv(std::string& out, const char* key, const std::string& value, bool quote) {
  out += '"';
  out += key;
  out += "\":";
  if (quote) out += '"';
  out += value;
  if (quote) out += '"';
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

SimTime percentile_us(std::vector<SimTime> sample, double q) {
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  const double rank = q / 100.0 * static_cast<double>(sample.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sample.size()) idx = sample.size() - 1;
  return sample[idx];
}

std::string Metrics::to_json() const {
  std::string out = "{";
  append_kv(out, "scenario", scenario, true);
  out += ',';
  append_kv(out, "topology", topology, true);
  out += ',';
  append_kv(out, "seed", std::to_string(seed), false);
  out += ",\"members\":{";
  append_kv(out, "initial", std::to_string(members_initial), false);
  out += ',';
  append_kv(out, "final", std::to_string(members_final), false);
  out += ',';
  append_kv(out, "clusters", std::to_string(clusters_final), false);
  out += "},\"form\":{";
  append_kv(out, "success", form_success ? "true" : "false", false);
  out += ',';
  append_kv(out, "latency_us", std::to_string(form_latency_us), false);
  out += "},\"rekeys\":{";
  append_kv(out, "attempted", std::to_string(rekeys_attempted), false);
  out += ',';
  append_kv(out, "completed", std::to_string(rekeys_completed), false);
  out += ',';
  append_kv(out, "convergence", fmt_double(convergence()), false);
  out += ',';
  append_kv(out, "join", std::to_string(events_join), false);
  out += ',';
  append_kv(out, "leave", std::to_string(events_leave), false);
  out += ',';
  append_kv(out, "partition", std::to_string(events_partition), false);
  out += ',';
  append_kv(out, "merge", std::to_string(events_merge), false);
  out += "},\"latency_us\":{";
  append_kv(out, "count", std::to_string(rekey_latencies_us.size()), false);
  out += ',';
  append_kv(out, "p50", std::to_string(percentile_us(rekey_latencies_us, 50.0)), false);
  out += ',';
  append_kv(out, "p90", std::to_string(percentile_us(rekey_latencies_us, 90.0)), false);
  out += ',';
  append_kv(out, "p99", std::to_string(percentile_us(rekey_latencies_us, 99.0)), false);
  out += ',';
  append_kv(out, "max", std::to_string(percentile_us(rekey_latencies_us, 100.0)), false);
  out += "},\"air\":{";
  append_kv(out, "frames", std::to_string(frames_on_air), false);
  out += ',';
  append_kv(out, "bits", std::to_string(bits_on_air), false);
  out += ',';
  append_kv(out, "encoded_bits", std::to_string(encoded_bits_on_air), false);
  out += ',';
  append_kv(out, "copies_dropped", std::to_string(copies_dropped), false);
  out += ',';
  append_kv(out, "bits_dropped", std::to_string(bits_dropped), false);
  out += "},\"battery\":{";
  append_kv(out, "deaths", std::to_string(deaths), false);
  out += ',';
  append_kv(out, "first_death_us",
            first_death_us ? std::to_string(*first_death_us) : std::string("null"), false);
  out += ',';
  append_kv(out, "energy_total_mj", fmt_double(energy_total_mj), false);
  out += "},\"crypto\":{";
  append_kv(out, "exps", std::to_string(crypto_exps), false);
  out += ',';
  append_kv(out, "mod_muls", std::to_string(crypto_mod_muls), false);
  out += "},";
  append_kv(out, "all_members_agree", all_members_agree ? "true" : "false", false);
  out += ',';
  append_kv(out, "end_time_us", std::to_string(end_time_us), false);
  out += '}';
  return out;
}

}  // namespace idgka::sim
