// Tuning knobs for the hierarchical (cluster-based) session.
//
// The flat protocol's per-event cost grows with the whole group size n; the
// hierarchical layer bounds every leaf ring to [min_cluster, max_cluster]
// members so membership events stay cluster-local, with only the (much
// smaller) head tier rekeyed globally. max_cluster >= 2 * min_cluster is
// required so a split never immediately produces an underflowing half.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "gka/session.h"

namespace idgka::cluster {

struct ClusterConfig {
  /// Clusters below this size are merged into a neighbour (when more than
  /// one cluster exists).
  std::size_t min_cluster = 8;
  /// Clusters above this size are split into two halves.
  std::size_t max_cluster = 48;
  /// Enqueued events auto-flush into one rekey round at this queue depth.
  std::size_t batch_capacity = 32;
  /// Protocol run inside every leaf cluster and in the head tier.
  gka::Scheme scheme = gka::Scheme::kProposed;
  /// Loss rate applied to every leaf (and head-tier) network.
  double loss_rate = 0.0;
  /// Maximum tree depth (tiers of sessions). When the head set outgrows
  /// max_cluster and the budget allows, the head tier becomes a nested
  /// HierarchicalSession of its own (heads-of-heads), recursively — depth-k
  /// trees give fan-out^k membership with every ring still bounded by
  /// max_cluster. 0 means unbounded; 2 pins the historical two-tier shape
  /// (one flat head ring regardless of head count). 1 is invalid: any
  /// multi-cluster session already has two tiers.
  std::size_t max_depth = 0;
  /// Observability dimension for this session's registry counters: when
  /// non-empty, rekeys and rekey retries are additionally counted as
  /// `cluster.rekeys{label}` / `cluster.rekey_retries{label}`. The sim
  /// runners set this to the scenario (or scenario/group) name so matrix
  /// cells and concurrent groups stay distinguishable in one registry.
  std::string label;

  /// Initial shard size used by form() (midpoint of the bounds).
  [[nodiscard]] std::size_t target_size() const { return (min_cluster + max_cluster) / 2; }

  void validate() const {
    if (min_cluster < 2) throw std::invalid_argument("ClusterConfig: min_cluster < 2");
    if (max_cluster < 2 * min_cluster) {
      throw std::invalid_argument("ClusterConfig: max_cluster must be >= 2 * min_cluster");
    }
    if (batch_capacity == 0) throw std::invalid_argument("ClusterConfig: batch_capacity == 0");
    if (max_depth == 1) {
      throw std::invalid_argument("ClusterConfig: max_depth must be 0 (unbounded) or >= 2");
    }
  }
};

}  // namespace idgka::cluster
