// Membership-event batching queue.
//
// A churn burst (mass arrivals, a moving partition front) is cheapest when
// coalesced: all leaf-local changes are applied first and the expensive
// global step — head-tier rekey + downward key distribution — runs once for
// the whole batch, the same way the paper's Partition generalizes a run of
// Leaves. The queue also cancels join/leave pairs that would be a no-op.
#pragma once

#include <cstdint>
#include <vector>

namespace idgka::cluster {

enum class EventType : std::uint8_t { kJoin, kLeave };

struct Event {
  EventType type;
  std::uint32_t id;
};

class EventQueue {
 public:
  /// Queues an event. A leave cancels a pending join of the same id (the
  /// member never materializes); duplicate (type, id) pairs are dropped.
  void push(Event event);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Removes and returns all pending events in arrival order.
  [[nodiscard]] std::vector<Event> drain();

 private:
  std::vector<Event> events_;
};

}  // namespace idgka::cluster
