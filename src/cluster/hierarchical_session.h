// Depth-k (cluster-based) group key agreement.
//
// The flat GroupSession runs one ring over all n members, so every
// membership event broadcasts over — and rekeys — the whole group. A
// HierarchicalSession shards the group into clusters bounded by
// [min_cluster, max_cluster]; each cluster runs the paper's protocol as an
// independent leaf GroupSession on its own broadcast domain, and the
// cluster heads (first ring member of each cluster) run a second-tier GKA
// among themselves. When the head set itself outgrows max_cluster (and
// config.max_depth allows), the head tier is a nested HierarchicalSession
// — heads-of-heads, recursively — so a depth-k tree covers fan-out^k
// members with every ring still bounded by max_cluster. The global group
// key is derived from the top tier's key with symc::derive_key and pushed
// downward as one SealedBox broadcast per cluster, sealed under that
// cluster's leaf key — intermediate tiers repeat the same sealed push for
// their own tier keys, and plain leaf members perform only symmetric
// decryptions, never an extra exponentiation.
//
// Membership events stay cluster-local: a leave rekeys one leaf ring
// (O(cluster) work) plus the tier path above it, instead of O(n).
// Clusters split when they outgrow max_cluster and are merged into a
// neighbour when they underflow min_cluster, so the bound holds under
// arbitrary churn — at every tier, because each tier applies the same
// rules to its own cluster set. A burst of events can be enqueued and
// flushed as one batch: all leaf-local changes are applied first and the
// tier rekey + downward distribution run once for the whole batch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/batch.h"
#include "cluster/config.h"
#include "cluster/report.h"
#include "gka/session.h"
#include "obs/trace.h"

namespace idgka::cluster {

using mpint::BigInt;

/// Outcome of one hierarchical operation (form or a flushed batch).
struct EventSummary {
  bool success = false;
  /// Membership events applied in this round.
  std::size_t events_applied = 0;
  /// Leaf clusters that ran a protocol (event, split or merge).
  std::size_t clusters_touched = 0;
  std::size_t splits = 0;
  std::size_t merges = 0;
  /// Rekey epoch after the round (increments once per distribution).
  std::uint64_t epoch = 0;
};

class HierarchicalSession {
 public:
  /// Shards `ids` into clusters of ~config.target_size(). Deterministic
  /// under `seed`. Throws if `ids.size() < 2` or the config is invalid.
  HierarchicalSession(gka::Authority& authority, ClusterConfig config,
                      std::vector<std::uint32_t> ids, std::uint64_t seed);

  /// Runs the initial GKA in every leaf cluster and the head tier, then
  /// distributes the first group key.
  EventSummary form();

  // --- Immediate membership events (enqueue + flush one event) ---
  EventSummary join(std::uint32_t id);
  EventSummary leave(std::uint32_t id);
  /// Batch departure (the paper's Partition, generalized across clusters).
  EventSummary partition(const std::vector<std::uint32_t>& leaver_ids);
  /// Adopts every cluster of `other` wholesale (same authority / scheme
  /// required), rebuilds the head tier and rekeys. `other` is drained.
  EventSummary merge(HierarchicalSession& other);

  // --- Batched membership events ---
  /// Queues an event; flushes automatically (returning the summary) when
  /// the queue reaches config.batch_capacity.
  std::optional<EventSummary> enqueue_join(std::uint32_t id);
  std::optional<EventSummary> enqueue_leave(std::uint32_t id);
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Applies all queued events as one rekey round.
  EventSummary flush();

  // --- Introspection ---
  /// The authoritative group key (derived from the head-tier key).
  [[nodiscard]] const BigInt& group_key() const;
  /// The group key as decrypted by one member from its head's rekey
  /// broadcast — what the member would actually encrypt traffic with.
  [[nodiscard]] const BigInt& member_key_view(std::uint32_t id) const;
  /// True when every current member's decrypted view equals group_key().
  [[nodiscard]] bool all_members_agree() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool contains(std::uint32_t id) const;
  /// Leaf clusters of this tier (nested tiers have their own).
  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  /// Number of session tiers: 1 for a single borderless cluster, 2 for the
  /// classic leaf + flat-head shape, 3+ when heads-of-heads tiers exist.
  [[nodiscard]] std::size_t depth() const;
  /// Member count per tier, leaves first: {n, #heads, #heads-of-heads, ...}.
  [[nodiscard]] std::vector<std::size_t> tier_sizes() const;
  [[nodiscard]] std::vector<std::uint32_t> member_ids() const;
  [[nodiscard]] std::vector<std::size_t> cluster_sizes() const;
  [[nodiscard]] std::vector<std::uint32_t> cluster_heads() const;
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// Rolls up per-member ledgers (leaf + head tier + retired) and network
  /// counters into one deployment-wide report.
  [[nodiscard]] AggregateReport report() const;

  /// Lifetime ledger of one *current* member: its leaf-cluster ledger, its
  /// head-tier ledger when it leads a cluster, plus every tenure of its
  /// that was retired along the way (cluster splits, head-tier rebuilds,
  /// departures before a rejoin) — monotonic over the node's lifetime, so
  /// a battery can integrate it directly. Throws for unknown ids.
  [[nodiscard]] energy::Ledger member_ledger(std::uint32_t id) const;

  /// Hook applied to every leaf and head-tier network, current and future
  /// (head-tier rebuilds, cluster splits, adopted clusters on merge). The
  /// discrete-event driver (src/sim) installs its timed transport this way.
  using NetworkHook = gka::GroupSession::NetworkHook;
  void set_network_hook(NetworkHook hook);

 private:
  [[nodiscard]] std::uint64_t next_seed() { return seed_ ^ (0x9e3779b97f4a7c15ULL * ++seed_ctr_); }

  void apply_leaves(const std::vector<std::uint32_t>& leaver_ids, EventSummary& summary);
  void apply_joins(const std::vector<std::uint32_t>& joiner_ids, EventSummary& summary);
  void rebalance(EventSummary& summary);
  void update_head_tier();
  void rebuild_head_tier();
  void retire_member(std::uint32_t id, const energy::Ledger& ledger);
  void retire_ledgers(const gka::GroupSession& session);
  void rekey_and_distribute();
  /// True when `head_count` heads need a nested tier (head ring would
  /// overflow max_cluster and the depth budget allows another level).
  [[nodiscard]] bool want_nested(std::size_t head_count) const;
  /// Config for a nested head tier: one depth level fewer, no label (tier
  /// rekeys are plumbing, not group-level events).
  [[nodiscard]] ClusterConfig nested_config() const;
  /// Key the group key derives from: the top tier's agreed key.
  [[nodiscard]] const BigInt& tier_key() const;
  /// Folds the nested tier's complete energy history into the retired pots
  /// and destroys it (tier collapse, merge absorption).
  void dissolve_nested();
  /// Retired energy attributed to `id` at this tier and below-tier nests
  /// (zero ledger when none) — lets an enclosing tier account a departed
  /// head's history without reaching into private pots.
  [[nodiscard]] energy::Ledger retired_ledger(std::uint32_t id) const;
  /// Complete per-member energy accounting of this session: every current
  /// member's lifetime ledger plus every departed member's retired tenure,
  /// nested tiers included. Used when this session is dissolved wholesale.
  [[nodiscard]] std::map<std::uint32_t, energy::Ledger> lifetime_ledgers() const;

  gka::Authority& authority_;
  ClusterConfig config_;
  std::uint64_t seed_;
  std::uint64_t seed_ctr_ = 0;

  std::vector<std::unique_ptr<gka::GroupSession>> clusters_;
  /// Second-tier session among cluster heads; null while only one cluster
  /// exists (the group key then derives from the single leaf key). At most
  /// one of head_tier_ / head_hier_ is set: flat ring while the head set
  /// fits max_cluster, nested hierarchy (heads-of-heads) beyond that.
  std::unique_ptr<gka::GroupSession> head_tier_;
  std::unique_ptr<HierarchicalSession> head_hier_;

  EventQueue queue_;
  NetworkHook network_hook_;
  std::uint64_t epoch_ = 0;
  BigInt group_key_;
  /// Per-member decrypted view of the group key (tests verify consistency).
  std::map<std::uint32_t, BigInt> member_view_;
  /// Ledgers of departed members and of per-member state retired by cluster
  /// splits / head-tier rebuilds — kept so report() stays a lifetime total.
  energy::Ledger retired_;
  /// The same retired energy attributed per node, so member_ledger() stays
  /// monotonic across splits / tier rebuilds / rejoins (battery accounting).
  std::map<std::uint32_t, energy::Ledger> retired_by_member_;
#if IDGKA_OBS
  /// Labeled registry dimensions (`cluster.rekeys{config.label}` etc),
  /// resolved once at construction when config.label is set so the rekey
  /// path pays only a relaxed atomic add per event.
  obs::Counter* labeled_rekeys_ = nullptr;
  obs::Counter* labeled_rekey_retries_ = nullptr;
#endif
};

}  // namespace idgka::cluster
