#include "cluster/report.h"

namespace idgka::cluster {

double AggregateReport::energy_mj(const energy::CpuProfile& cpu,
                                  const energy::RadioProfile& radio) const {
  return energy::ledger_energy_mj(total, cpu, radio);
}

}  // namespace idgka::cluster
