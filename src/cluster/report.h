// Aggregate energy / traffic roll-up for a hierarchical session.
//
// Every leaf member, every head-tier participant and every member that has
// since departed (or whose per-member ledger was retired by a cluster
// split / head-tier rebuild) contributed operations and radio traffic; the
// report sums all of it so scaling experiments can price a whole deployment
// with one call.
#pragma once

#include "energy/ops.h"
#include "energy/profiles.h"
#include "net/network.h"

namespace idgka::cluster {

struct AggregateReport {
  std::size_t members = 0;
  std::size_t clusters = 0;
  /// Everything: current leaf members + head tier + retired ledgers.
  energy::Ledger total;
  /// Head-tier participants only (the extra cost of the hierarchy).
  energy::Ledger head_tier;
  /// Live network counters summed over every leaf network + the head net.
  net::TrafficStats traffic;

  /// Whole-deployment energy under a device profile, in millijoules.
  [[nodiscard]] double energy_mj(const energy::CpuProfile& cpu,
                                 const energy::RadioProfile& radio) const;
  /// Total broadcast payload volume (tx side), in bits.
  [[nodiscard]] std::uint64_t tx_bits() const { return total.tx_bits; }
};

}  // namespace idgka::cluster
