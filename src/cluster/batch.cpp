#include "cluster/batch.h"

#include <algorithm>

namespace idgka::cluster {

void EventQueue::push(Event event) {
  // Coalesce against the *latest* queued event for this id, so any push
  // sequence collapses to one of: [], [join], [leave], [leave, join].
  const auto same_id = [&](const Event& e) { return e.id == event.id; };
  const auto rit = std::find_if(events_.rbegin(), events_.rend(), same_id);
  if (rit == events_.rend()) {
    events_.push_back(event);
    return;
  }
  if (rit->type == event.type) return;  // duplicate of the latest intent
  if (rit->type == EventType::kJoin && event.type == EventType::kLeave) {
    // A leave cancels the pending join it follows (the join was either a
    // new member that never materializes, or a re-enrollment now revoked).
    events_.erase(std::next(rit).base());
    return;
  }
  // leave + join of an existing member: keep both (the member departs and
  // re-enrolls within one batch, forcing fresh key material).
  events_.push_back(event);
}

std::vector<Event> EventQueue::drain() {
  std::vector<Event> out;
  out.swap(events_);
  return out;
}

}  // namespace idgka::cluster
